/**
 * @file
 * Tests for the sharded parallel profiling engine: a parallel run over
 * the whole workload suite must produce per-instruction results
 * identical to running every job sequentially, in job order.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "workloads/parallel_runner.hpp"

using workloads::ParallelRunner;
using workloads::ProfileJob;
using workloads::ProfileJobResult;

namespace
{

/** Serialize a snapshot so shard results can be compared verbatim. */
std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

void
expectIdenticalResults(const ProfileJobResult &a,
                       const ProfileJobResult &b)
{
    ASSERT_EQ(a.workload, b.workload);
    ASSERT_EQ(a.dataset, b.dataset);
    EXPECT_EQ(a.run.dynamicInsts, b.run.dynamicInsts);
    EXPECT_EQ(a.totalExecutions, b.totalExecutions);
    EXPECT_EQ(a.profiledExecutions, b.profiledExecutions);
    EXPECT_DOUBLE_EQ(a.invTop, b.invTop);
    EXPECT_DOUBLE_EQ(a.invAll, b.invAll);
    EXPECT_DOUBLE_EQ(a.lvp, b.lvp);
    EXPECT_DOUBLE_EQ(a.zeroFraction, b.zeroFraction);
    EXPECT_DOUBLE_EQ(a.meanDistinct, b.meanDistinct);
    EXPECT_EQ(a.staticInsts, b.staticInsts);
    EXPECT_EQ(a.programOutput, b.programOutput);
    // Byte-identical per-instruction snapshots (Inv-Top, Inv-All,
    // LVP, top values for every profiled pc).
    EXPECT_EQ(snapshotText(a.snapshot), snapshotText(b.snapshot));
}

TEST(ParallelRunner, ParallelSuiteMatchesSequentialExactly)
{
    const auto jobs = workloads::suiteJobs("test");
    ASSERT_FALSE(jobs.empty());

    const auto parallel = ParallelRunner(4).run(jobs);
    const auto sequential = ParallelRunner(1).run(jobs);

    ASSERT_EQ(parallel.size(), jobs.size());
    ASSERT_EQ(sequential.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].workload->name());
        expectIdenticalResults(parallel[i], sequential[i]);
    }
}

TEST(ParallelRunner, ResultsComeBackInJobOrder)
{
    const auto jobs = workloads::suiteJobs("train");
    const auto results = ParallelRunner(3).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].workload, jobs[i].workload);
        EXPECT_EQ(results[i].dataset, "train");
        EXPECT_GT(results[i].totalExecutions, 0u);
    }
}

TEST(ParallelRunner, RunOneMatchesBatchOfOne)
{
    ProfileJob job;
    job.workload = workloads::allWorkloads().front();
    job.dataset = "train";
    const auto batch = ParallelRunner(2).run({job});
    ASSERT_EQ(batch.size(), 1u);
    const auto solo = ParallelRunner::runOne(job);
    expectIdenticalResults(batch.front(), solo);
}

TEST(ParallelRunner, ShardSnapshotsOfSameProgramMerge)
{
    // Profile the same workload on two inputs and merge the shard
    // snapshots — the aggregate a multi-input profiling session
    // reports. Execution counts must sum per pc.
    const auto *w = workloads::allWorkloads().front();
    ProfileJob train, test;
    train.workload = test.workload = w;
    train.dataset = "train";
    test.dataset = "test";
    auto results = ParallelRunner(2).run({train, test});
    ASSERT_EQ(results.size(), 2u);

    core::ProfileSnapshot merged = results[0].snapshot;
    merged.merge(results[1].snapshot);
    ASSERT_GE(merged.size(), results[0].snapshot.size());
    for (const auto &[pc, s] : results[0].snapshot.entities) {
        const auto &m = merged.entities.at(pc);
        std::uint64_t expect = s.totalExecutions;
        auto it = results[1].snapshot.entities.find(pc);
        if (it != results[1].snapshot.entities.end())
            expect += it->second.totalExecutions;
        EXPECT_EQ(m.totalExecutions, expect) << "pc " << pc;
    }
}

TEST(ParallelRunner, ZeroMeansHardwareThreads)
{
    EXPECT_GE(ParallelRunner(0).jobCount(), 1u);
    EXPECT_EQ(ParallelRunner(5).jobCount(), 5u);
}

} // namespace
