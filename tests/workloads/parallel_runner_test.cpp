/**
 * @file
 * Tests for the sharded parallel profiling engine: a parallel run over
 * the whole workload suite must produce per-instruction results
 * identical to running every job sequentially, in job order.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/stats_registry.hpp"
#include "support/trace.hpp"
#include "workloads/parallel_runner.hpp"

using workloads::ParallelRunner;
using workloads::ProfileJob;
using workloads::ProfileJobResult;

namespace
{

/** Serialize a snapshot so shard results can be compared verbatim. */
std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

void
expectIdenticalResults(const ProfileJobResult &a,
                       const ProfileJobResult &b)
{
    ASSERT_EQ(a.workload, b.workload);
    ASSERT_EQ(a.dataset, b.dataset);
    EXPECT_EQ(a.run.dynamicInsts, b.run.dynamicInsts);
    EXPECT_EQ(a.totalExecutions, b.totalExecutions);
    EXPECT_EQ(a.profiledExecutions, b.profiledExecutions);
    EXPECT_DOUBLE_EQ(a.invTop, b.invTop);
    EXPECT_DOUBLE_EQ(a.invAll, b.invAll);
    EXPECT_DOUBLE_EQ(a.lvp, b.lvp);
    EXPECT_DOUBLE_EQ(a.zeroFraction, b.zeroFraction);
    EXPECT_DOUBLE_EQ(a.meanDistinct, b.meanDistinct);
    EXPECT_EQ(a.staticInsts, b.staticInsts);
    EXPECT_EQ(a.programOutput, b.programOutput);
    // Byte-identical per-instruction snapshots (Inv-Top, Inv-All,
    // LVP, top values for every profiled pc).
    EXPECT_EQ(snapshotText(a.snapshot), snapshotText(b.snapshot));
}

TEST(ParallelRunner, ParallelSuiteMatchesSequentialExactly)
{
    const auto jobs = workloads::suiteJobs("test");
    ASSERT_FALSE(jobs.empty());

    const auto parallel = ParallelRunner(4).run(jobs);
    const auto sequential = ParallelRunner(1).run(jobs);

    ASSERT_EQ(parallel.size(), jobs.size());
    ASSERT_EQ(sequential.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        SCOPED_TRACE(jobs[i].workload->name());
        expectIdenticalResults(parallel[i], sequential[i]);
    }
}

TEST(ParallelRunner, ResultsComeBackInJobOrder)
{
    const auto jobs = workloads::suiteJobs("train");
    const auto results = ParallelRunner(3).run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(results[i].workload, jobs[i].workload);
        EXPECT_EQ(results[i].dataset, "train");
        EXPECT_GT(results[i].totalExecutions, 0u);
    }
}

TEST(ParallelRunner, RunOneMatchesBatchOfOne)
{
    ProfileJob job;
    job.workload = workloads::allWorkloads().front();
    job.dataset = "train";
    const auto batch = ParallelRunner(2).run({job});
    ASSERT_EQ(batch.size(), 1u);
    const auto solo = ParallelRunner::runOne(job);
    expectIdenticalResults(batch.front(), solo);
}

TEST(ParallelRunner, ShardSnapshotsOfSameProgramMerge)
{
    // Profile the same workload on two inputs and merge the shard
    // snapshots — the aggregate a multi-input profiling session
    // reports. Execution counts must sum per pc.
    const auto *w = workloads::allWorkloads().front();
    ProfileJob train, test;
    train.workload = test.workload = w;
    train.dataset = "train";
    test.dataset = "test";
    auto results = ParallelRunner(2).run({train, test});
    ASSERT_EQ(results.size(), 2u);

    core::ProfileSnapshot merged = results[0].snapshot;
    merged.merge(results[1].snapshot);
    ASSERT_GE(merged.size(), results[0].snapshot.size());
    for (const auto &[pc, s] : results[0].snapshot.entities) {
        const auto &m = merged.entities.at(pc);
        std::uint64_t expect = s.totalExecutions;
        auto it = results[1].snapshot.entities.find(pc);
        if (it != results[1].snapshot.entities.end())
            expect += it->second.totalExecutions;
        EXPECT_EQ(m.totalExecutions, expect) << "pc " << pc;
    }
}

TEST(ParallelRunner, ZeroMeansHardwareThreads)
{
    EXPECT_GE(ParallelRunner(0).jobCount(), 1u);
    EXPECT_EQ(ParallelRunner(5).jobCount(), 5u);
}

/** Counters collected by one whole-suite run with `workers` shards. */
vp::stats::Registry
suiteStats(unsigned workers)
{
    vp::stats::Registry parent;
    vp::stats::ScopedRegistry scope(parent);
    ParallelRunner(workers).run(workloads::suiteJobs("train"));
    return parent;
}

TEST(ParallelRunnerStats, MergedCountersIndependentOfJobCount)
{
    // The acceptance bar for the stats subsystem: exact-mergeable
    // counters must total the same however the suite is sharded.
    vp::stats::setEnabled(true);
    const auto seq = suiteStats(1);
    const auto par = suiteStats(4);
    vp::stats::setEnabled(false);

    for (unsigned c = 0;
         c < static_cast<unsigned>(vp::stats::Cid::NumCounters); ++c) {
        const auto id = static_cast<vp::stats::Cid>(c);
        EXPECT_EQ(seq.counter(id), par.counter(id))
            << vp::stats::counterName(id);
    }
    EXPECT_GT(seq.counter(vp::stats::Cid::SimInsts), 0u);
    EXPECT_GT(seq.counter(vp::stats::Cid::TnvInserts), 0u);
    EXPECT_EQ(seq.counter(vp::stats::Cid::RunnerJobs),
              workloads::allWorkloads().size());

    // Per-shard timing distributions: one sample per job either way.
    EXPECT_EQ(seq.distribution("runner.shard_wall_us").count(),
              workloads::allWorkloads().size());
    EXPECT_EQ(par.distribution("runner.shard_wall_us").count(),
              workloads::allWorkloads().size());
}

TEST(ParallelRunnerStats, ShardRegistriesSumToParent)
{
    vp::stats::Registry parent;
    vp::stats::setEnabled(true);
    std::vector<ProfileJobResult> results;
    {
        vp::stats::ScopedRegistry scope(parent);
        results = ParallelRunner(3).run(workloads::suiteJobs("test"));
    }
    vp::stats::setEnabled(false);

    vp::stats::Registry summed;
    for (const auto &res : results)
        summed.merge(res.stats);
    for (unsigned c = 0;
         c < static_cast<unsigned>(vp::stats::Cid::NumCounters); ++c) {
        const auto id = static_cast<vp::stats::Cid>(c);
        EXPECT_EQ(summed.counter(id), parent.counter(id))
            << vp::stats::counterName(id);
    }
}

TEST(ParallelRunnerStats, DisabledCollectionRecordsNothing)
{
    vp::stats::setEnabled(false);
    vp::stats::Registry parent;
    vp::stats::ScopedRegistry scope(parent);
    ProfileJob job;
    job.workload = workloads::allWorkloads().front();
    ParallelRunner(2).run({job});
    EXPECT_EQ(parent.counter(vp::stats::Cid::RunnerJobs), 0u);
    EXPECT_EQ(parent.counter(vp::stats::Cid::SimInsts), 0u);
    EXPECT_TRUE(parent.distributionNames().empty());
}

TEST(ParallelRunnerTrace, JobSpansLandOnWorkerLanes)
{
    auto &tc = vp::trace::TraceCollector::global();
    tc.clear();
    tc.setEnabled(true);
    ParallelRunner(2).run(workloads::suiteJobs("test"));
    tc.setEnabled(false);

    const auto evs = tc.events();
    ASSERT_EQ(evs.size(), workloads::allWorkloads().size());
    for (const auto &ev : evs) {
        // Pool lanes are 1..N; every span is annotated with its shard.
        EXPECT_GE(ev.tid, 1);
        EXPECT_LE(ev.tid, 2);
        ASSERT_FALSE(ev.args.empty());
        EXPECT_EQ(ev.args.front().first, "shard");
        EXPECT_NE(ev.name.find(":test"), std::string::npos) << ev.name;
    }
    tc.clear();
}

} // namespace
