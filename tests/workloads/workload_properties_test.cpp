/**
 * @file
 * Qualitative value-behaviour properties of each benchmark — the
 * characteristics each workload was designed to contribute to the
 * suite (DESIGN.md substitution table). If a future edit to a
 * workload erases its role (e.g. the interpreter loses its
 * semi-invariant dispatch), these tests catch it.
 */

#include <gtest/gtest.h>

#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "workloads/workload.hpp"

using namespace core;
using namespace vpsim;
using workloads::findWorkload;
using workloads::runToCompletion;

namespace
{

CpuConfig
cfg()
{
    return CpuConfig{16u << 20, 100'000'000};
}

/**
 * TNV configuration for stream characterization: periodic clearing
 * disabled, so a table that can hold every distinct value covers the
 * stream exactly. These tests measure what the workload *produces*;
 * the clearing policy's own estimation effects are covered by the TNV
 * table and profiler tests.
 */
InstProfilerConfig
noClearConfig()
{
    InstProfilerConfig c;
    c.profile.tnv.clearInterval = 1u << 30;
    return c;
}

struct Profiles
{
    explicit Profiles(const std::string &name,
                      const InstProfilerConfig &icfg = {})
        : workload(findWorkload(name)), img(workload.program()),
          mgr(img), cpu(workload.program(), cfg()), iprof(img, icfg)
    {
        iprof.profileAllWrites(mgr);
        mprof.instrument(mgr);
        pprof.instrument(mgr);
        mgr.attach(cpu);
        runToCompletion(cpu, workload, "train");
    }

    /** Highest-executed record satisfying a predicate, or nullptr. */
    template <typename Pred>
    const InstructionProfiler::Record *
    findRecord(Pred pred) const
    {
        const InstructionProfiler::Record *best = nullptr;
        for (const auto &rec : iprof.records()) {
            if (!pred(rec))
                continue;
            if (!best || rec.totalExecutions > best->totalExecutions)
                best = &rec;
        }
        return best;
    }

    const workloads::Workload &workload;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    InstructionProfiler iprof;
    MemoryProfiler mprof;
    ParameterProfiler pprof;
};

TEST(WorkloadProperties, LispDispatchTableLoadIsSemiInvariant)
{
    Profiles p("lisp", noClearConfig());
    // Some hot load (the opcode fetch / dispatch-table fetch) must
    // concentrate on a handful of values with near-total coverage.
    const auto *rec = p.findRecord([&](const auto &r) {
        return isLoad(p.workload.program().code[r.pc].op) &&
               r.totalExecutions > 10000 &&
               r.profile.distinct() <= 16 && r.profile.invAll() > 0.95;
    });
    ASSERT_NE(rec, nullptr);
    EXPECT_GE(rec->totalExecutions, 18000u);
}

TEST(WorkloadProperties, CrcTableIsWriteOnceMemory)
{
    Profiles p("crc");
    // All 256 CRC table entries are written exactly once.
    std::size_t write_once = 0;
    for (const auto *loc :
         p.mprof.topLocationsByWrites(p.mprof.numLocations())) {
        write_once += loc->totalWrites == 1;
    }
    EXPECT_GE(write_once, 256u);
}

TEST(WorkloadProperties, CompressEmitRunLengthIsSemiInvariant)
{
    Profiles p("compress");
    const auto *emit = p.pprof.recordFor("emit");
    ASSERT_NE(emit, nullptr);
    ASSERT_GE(emit->args.size(), 1u);
    // Most runs have length 1.
    EXPECT_GT(emit->args[0].invTop(), 0.6);
    EXPECT_EQ(emit->args[0].tnv().top()->value, 1u);
}

TEST(WorkloadProperties, LifeNeighborLoadsAreMostlyZero)
{
    Profiles p("life");
    const auto *rec = p.findRecord([&](const auto &r) {
        return p.workload.program().code[r.pc].op == Opcode::LBU &&
               r.totalExecutions > 50000;
    });
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->profile.zeroFraction(), 0.5);
}

TEST(WorkloadProperties, NqueensConflictFlagsAreOftenZero)
{
    // During deep search much of the board is occupied, but the
    // conflict-flag loads still see zero a substantial fraction of
    // the time (that's what lets the search descend at all).
    Profiles p("nqueens", noClearConfig());
    const auto *rec = p.findRecord([&](const auto &r) {
        return p.workload.program().code[r.pc].op == Opcode::LBU;
    });
    ASSERT_NE(rec, nullptr);
    EXPECT_GT(rec->profile.zeroFraction(), 0.25);
    // Flags are two-valued: an uncleared table covers everything.
    EXPECT_DOUBLE_EQ(rec->profile.invAll(), 1.0);
}

TEST(WorkloadProperties, MatmulScaleFactorIsPerfectlyInvariant)
{
    Profiles p("matmul");
    const auto *scale = p.pprof.recordFor("scale");
    ASSERT_NE(scale, nullptr);
    ASSERT_EQ(scale->args.size(), 2u);
    EXPECT_DOUBLE_EQ(scale->args[1].invTop(), 1.0);
    EXPECT_LT(scale->args[0].invTop(), 0.5);
}

TEST(WorkloadProperties, HuffmanParentWalkIsInvariantOnceBuilt)
{
    Profiles p("huffman");
    // depth()'s parent-link load: the tree never changes after build,
    // and a skewed input concentrates the walks on few nodes.
    const auto *depth = p.pprof.recordFor("depth");
    ASSERT_NE(depth, nullptr);
    EXPECT_GT(depth->calls, 5000u);
    // The symbol argument is skewed: the TNV's eight entries cover
    // far more mass than 8 of ~96 symbols would under uniformity.
    EXPECT_GT(depth->args[0].invAll(), 0.3);
}

TEST(WorkloadProperties, QsortBinarySearchFirstProbeIsInvariant)
{
    Profiles p("qsort");
    // bsearch's first mid-probe always reads the same element; among
    // the 8-byte loads there must be one fully-invariant hot load.
    const auto *rec = p.findRecord([&](const auto &r) {
        return p.workload.program().code[r.pc].op == Opcode::LD &&
               r.totalExecutions >= 1000 && r.profile.invTop() > 0.9;
    });
    EXPECT_NE(rec, nullptr);
}

TEST(WorkloadProperties, DijkstraRelaxWeightIsSkewed)
{
    Profiles p("dijkstra");
    const auto *relax = p.pprof.recordFor("relax");
    ASSERT_NE(relax, nullptr);
    ASSERT_EQ(relax->args.size(), 3u);
    // Edge weights concentrate on 1 and 2 by construction.
    EXPECT_GT(relax->args[2].invAll(), 0.6);
}

TEST(WorkloadProperties, AnagramQuerySitesPassConstantPointers)
{
    // Context-sensitive view: the two query call sites of hash_word
    // pass fixed probe pointers.
    const auto &w = findWorkload("anagram");
    instr::Image img(w.program());
    instr::InstrumentManager mgr(img);
    Cpu cpu(w.program(), cfg());
    ParamProfilerConfig pcfg;
    pcfg.contextSensitive = true;
    ParameterProfiler pprof(pcfg);
    pprof.instrument(mgr);
    mgr.attach(cpu);
    runToCompletion(cpu, w, "train");

    std::size_t invariant_sites = 0;
    for (const auto *site : pprof.sitesFor("hash_word")) {
        if (!site->args.empty() && site->args[0].invTop() == 1.0)
            ++invariant_sites;
    }
    EXPECT_GE(invariant_sites, 2u);
}

} // namespace
