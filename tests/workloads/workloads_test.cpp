/**
 * @file
 * Tests for the benchmark workload suite: every workload must
 * assemble, run to a clean exit on both data sets, behave
 * deterministically, and exercise real program structure (procedures,
 * loads, stores, calls).
 */

#include <gtest/gtest.h>

#include "instrument/manager.hpp"
#include "workloads/inject.hpp"
#include "workloads/workload.hpp"

using namespace workloads;
using namespace vpsim;

namespace
{

CpuConfig
testConfig()
{
    return CpuConfig{16u << 20, 100'000'000};
}

TEST(Workloads, RegistryHasTenEntries)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
}

TEST(Workloads, FindByName)
{
    EXPECT_EQ(findWorkload("compress").name(), "compress");
    EXPECT_EQ(findWorkload("matmul").name(), "matmul");
}

TEST(WorkloadsDeath, FindUnknownIsFatal)
{
    EXPECT_EXIT(findWorkload("nonesuch"),
                ::testing::ExitedWithCode(1), "unknown workload");
}

struct RunCase
{
    std::string workload;
    std::string dataset;
};

void
PrintTo(const RunCase &c, std::ostream *os)
{
    *os << c.workload << "/" << c.dataset;
}

class WorkloadRuns : public ::testing::TestWithParam<RunCase>
{
};

TEST_P(WorkloadRuns, RunsToCleanExit)
{
    const Workload &w = findWorkload(GetParam().workload);
    Cpu cpu(w.program(), testConfig());
    const RunResult res = runToCompletion(cpu, w, GetParam().dataset);
    EXPECT_TRUE(res.exited());
    EXPECT_EQ(res.exitCode, 0);
    // Real programs: substantial dynamic footprint and memory traffic.
    EXPECT_GT(res.dynamicInsts, 100'000u);
    EXPECT_LT(res.dynamicInsts, 50'000'000u);
    EXPECT_GT(res.dynamicLoads, 1'000u);
    EXPECT_GT(res.dynamicStores, 10u);
    // Every workload reports a checksum through puti.
    EXPECT_FALSE(cpu.outputValues().empty());
}

TEST_P(WorkloadRuns, DeterministicAcrossRuns)
{
    const Workload &w = findWorkload(GetParam().workload);
    Cpu cpu(w.program(), testConfig());
    runToCompletion(cpu, w, GetParam().dataset);
    const std::string first = cpu.output();
    runToCompletion(cpu, w, GetParam().dataset);
    EXPECT_EQ(cpu.output(), first);
}

std::vector<RunCase>
allRunCases()
{
    std::vector<RunCase> cases;
    for (const auto *w : allWorkloads())
        for (const auto &ds : w->datasets())
            cases.push_back({w->name(), ds});
    return cases;
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadRuns, ::testing::ValuesIn(allRunCases()),
    [](const ::testing::TestParamInfo<RunCase> &info) {
        return info.param.workload + "_" + info.param.dataset;
    });

class WorkloadStructure
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadStructure, HasProceduresWithMain)
{
    const Workload &w = findWorkload(GetParam());
    const Program &prog = w.program();
    EXPECT_GE(prog.procs.size(), 2u) << "need main + helpers";
    EXPECT_NE(prog.findProc("main"), nullptr);
    EXPECT_EQ(prog.validate(), "");
    EXPECT_GT(prog.numInsts(), 20u);
}

TEST_P(WorkloadStructure, TrainAndTestDiffer)
{
    const Workload &w = findWorkload(GetParam());
    Cpu cpu(w.program(), testConfig());
    runToCompletion(cpu, w, "train");
    const std::string train_out = cpu.output();
    const auto train_insts = cpu.dynamicInsts();
    runToCompletion(cpu, w, "test");
    // Different inputs: different checksums and different lengths.
    EXPECT_NE(cpu.output(), train_out);
    EXPECT_NE(cpu.dynamicInsts(), train_insts);
}

TEST_P(WorkloadStructure, MakesProcedureCalls)
{
    struct CallCounter : ExecListener
    {
        std::uint64_t calls = 0;
        void
        onCall(std::uint32_t, std::uint32_t,
               const std::uint64_t *) override
        {
            ++calls;
        }
    };
    const Workload &w = findWorkload(GetParam());
    Cpu cpu(w.program(), testConfig());
    CallCounter counter;
    cpu.addListener(&counter);
    runToCompletion(cpu, w, "test");
    EXPECT_GT(counter.calls, 3u);
}

INSTANTIATE_TEST_SUITE_P(
    All, WorkloadStructure,
    ::testing::Values("compress", "crc", "lisp", "anagram", "life",
                      "dijkstra", "qsort", "matmul", "huffman",
                      "nqueens"));

TEST(Workloads, DatasetSeedsAreDistinct)
{
    EXPECT_NE(datasetSeed("compress", "train"),
              datasetSeed("compress", "test"));
    EXPECT_NE(datasetSeed("compress", "train"),
              datasetSeed("crc", "train"));
}

} // namespace
