/**
 * @file
 * Randomized robustness and equivalence tests, driven by the shared
 * vp::check generators (src/check/generator.hpp) — the same machinery
 * the vpcheck differential harness uses, so any program shape that
 * trips these tests is reproducible there from the printed seed.
 *
 * - SpecializerFuzz: generates random (terminating) procedures,
 *   specializes them on a random argument binding, and checks that
 *   the guarded program produces byte-identical output for call
 *   streams that both match and miss the binding. Any divergence is
 *   a soundness bug in the constant folder, DCE, or compaction.
 * - AssemblerFuzz: mutated and garbage inputs must be rejected
 *   gracefully (no crash), and accepted programs must validate.
 * - CpuFuzz: arbitrary (structurally valid) instruction sequences
 *   must always halt with a defined reason and never touch host
 *   state.
 *
 * Every suite derives its seed through vp::check::testSeed, so
 * VP_TEST_SEED=N re-runs any failure with the exact stream that
 * failed.
 */

#include <gtest/gtest.h>

#include "check/generator.hpp"
#include "check/seed.hpp"
#include "specialize/specializer.hpp"
#include "support/rng.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

using namespace vpsim;

namespace
{

class SpecializerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SpecializerFuzz, RandomProceduresStayEquivalent)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
    SCOPED_TRACE(vp::check::seedMessage(seed));

    // The straight-line envelope: one procedure, no loops or memory
    // traffic — the specializer's supported input shape.
    const auto cfg = vp::check::GenConfig::straightLine();
    for (int round = 0; round < 20; ++round) {
        const auto gen = vp::check::generate(
            vp::check::trialSeed(seed, static_cast<std::uint64_t>(round)),
            cfg);

        Cpu orig(gen.program, CpuConfig{1u << 18, 2'000'000});
        const RunResult orig_res = orig.run();
        ASSERT_TRUE(orig_res.exited()) << gen.source;

        const auto spec = specialize::specializeProcedure(
            gen.program, "f0", {{regA0 + 1, 7}});
        Cpu specialized(spec.program, CpuConfig{1u << 18, 2'000'000});
        const RunResult spec_res = specialized.run();
        ASSERT_TRUE(spec_res.exited()) << gen.source;
        ASSERT_EQ(specialized.output(), orig.output())
            << "divergence in round " << round << " (generator seed "
            << gen.seed << "):\n"
            << gen.source;
        // The specialized run must never be grossly slower (guard
        // overhead is bounded by 3 instructions per call).
        EXPECT_LE(spec_res.dynamicInsts,
                  orig_res.dynamicInsts + 24 * 4);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecializerFuzz,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Assembler robustness
// ---------------------------------------------------------------------

class AssemblerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AssemblerFuzz, MutatedSourceNeverCrashes)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 7 + 99);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    const std::string base = R"(
    .data
buf:    .space 64
val:    .word 1, 2, 3
    .text
    .proc main args=0
main:
    la   t0, buf
    ld   t1, val
loop:
    addi t1, t1, -1
    bnez t1, loop
    li   a0, 0
    syscall exit
    .endp
)";
    for (int round = 0; round < 200; ++round) {
        const std::string mutated = vp::check::mutateSource(
            rng, base, 1 + static_cast<unsigned>(rng.below(6)));
        Program prog;
        std::string err;
        if (tryAssemble(mutated, prog, err)) {
            // Whatever assembled must be structurally valid.
            EXPECT_EQ(prog.validate(), "");
        } else {
            EXPECT_FALSE(err.empty());
        }
    }
}

TEST_P(AssemblerFuzz, GarbageInputRejectedGracefully)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int round = 0; round < 100; ++round) {
        const std::string garbage = vp::check::garbageSource(rng, 400);
        Program prog;
        std::string err;
        if (tryAssemble(garbage, prog, err)) {
            EXPECT_EQ(prog.validate(), "");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// Cpu robustness
// ---------------------------------------------------------------------

class CpuFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuFuzz, RandomProgramsAlwaysHalt)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 127 + 3);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int round = 0; round < 50; ++round) {
        const Program prog = vp::check::randomRawProgram(rng, 4, 63);
        if (!prog.validate().empty())
            continue; // validator rejected: also a fine outcome
        Cpu cpu(prog, CpuConfig{1u << 16, 20'000});
        const RunResult res = cpu.run();
        // Must halt with one of the defined reasons; dynamic count is
        // bounded by the budget.
        EXPECT_LE(res.dynamicInsts, 20'000u);
        EXPECT_TRUE(res.reason == StopReason::Exited ||
                    res.reason == StopReason::MaxInsts ||
                    res.reason == StopReason::MemFault ||
                    res.reason == StopReason::BadInst);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range(0, 4));

} // namespace
