/**
 * @file
 * Randomized robustness and equivalence tests.
 *
 * - SpecializerFuzz: generates random (terminating) procedures,
 *   specializes them on a random argument binding, and checks that
 *   the guarded program produces byte-identical output for call
 *   streams that both match and miss the binding. Any divergence is
 *   a soundness bug in the constant folder, DCE, or compaction.
 * - AssemblerFuzz: mutated and garbage inputs must be rejected
 *   gracefully (no crash), and accepted programs must validate.
 * - CpuFuzz: arbitrary (structurally valid) instruction sequences
 *   must always halt with a defined reason and never touch host
 *   state.
 */

#include <gtest/gtest.h>

#include "specialize/specializer.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

using namespace vpsim;

namespace
{

// ---------------------------------------------------------------------
// Random procedure generation for the specializer fuzz
// ---------------------------------------------------------------------

/**
 * Builds a random procedure of `num_blocks` basic blocks with only
 * forward control flow (guaranteed termination), using a0..a2 as
 * inputs and t0..t5 as scratch. Returns the full program text: main
 * calls f for each of 24 argument triples and prints a0 after each
 * call.
 */
std::string
randomProgram(vp::Rng &rng)
{
    const int num_blocks = 3 + static_cast<int>(rng.below(5));
    std::string f_body;

    static const char *const regs[] = {"a0", "a1", "a2", "t0",
                                       "t1", "t2", "t3", "t4", "t5"};
    auto any_reg = [&]() { return regs[rng.below(std::size(regs))]; };
    auto dest_reg = [&]() {
        // Bias destinations toward scratch but allow a0 so the result
        // depends on the computation.
        return rng.chance(0.3) ? "a0"
                               : regs[3 + rng.below(6)];
    };

    // Respect the ABI contract the optimizer relies on (and every
    // sane compiler provides): scratch registers are not live across
    // procedure boundaries, so initialize them before use instead of
    // reading whatever the previous call left behind.
    f_body += "    mov  t0, a0\n";
    f_body += "    mov  t1, a1\n";
    f_body += "    mov  t2, a2\n";
    f_body += "    xor  t3, a0, a1\n";
    f_body += "    add  t4, a1, a2\n";
    f_body += "    li   t5, 17\n";

    for (int b = 0; b < num_blocks; ++b) {
        f_body += vp::format("f_b%d:\n", b);
        const int num_insts = 2 + static_cast<int>(rng.below(6));
        for (int i = 0; i < num_insts; ++i) {
            switch (rng.below(8)) {
              case 0:
                f_body += vp::format("    add  %s, %s, %s\n",
                                     dest_reg(), any_reg(), any_reg());
                break;
              case 1:
                f_body += vp::format("    sub  %s, %s, %s\n",
                                     dest_reg(), any_reg(), any_reg());
                break;
              case 2:
                f_body += vp::format("    mul  %s, %s, %s\n",
                                     dest_reg(), any_reg(), any_reg());
                break;
              case 3:
                f_body += vp::format("    xor  %s, %s, %s\n",
                                     dest_reg(), any_reg(), any_reg());
                break;
              case 4:
                f_body += vp::format("    addi %s, %s, %lld\n",
                                     dest_reg(), any_reg(),
                                     static_cast<long long>(
                                         rng.range(-64, 64)));
                break;
              case 5:
                f_body += vp::format("    andi %s, %s, %llu\n",
                                     dest_reg(), any_reg(),
                                     static_cast<unsigned long long>(
                                         rng.below(256)));
                break;
              case 6:
                f_body += vp::format("    slli %s, %s, %llu\n",
                                     dest_reg(), any_reg(),
                                     static_cast<unsigned long long>(
                                         rng.below(8)));
                break;
              default:
                f_body += vp::format("    li   %s, %lld\n",
                                     dest_reg(),
                                     static_cast<long long>(
                                         rng.range(-100, 100)));
                break;
            }
        }
        // Forward branch to a strictly later block (or fall through).
        if (b + 1 < num_blocks && rng.chance(0.7)) {
            const int target =
                b + 1 +
                static_cast<int>(rng.below(
                    static_cast<std::uint64_t>(num_blocks - b - 1)));
            static const char *const cond[] = {"beq", "bne", "blt",
                                               "bge"};
            f_body += vp::format("    %s  %s, %s, f_b%d\n",
                                 cond[rng.below(4)], any_reg(),
                                 any_reg(), target);
        }
    }
    f_body += "    ret\n";

    std::string main_body;
    // 24 calls: some with a1 == 7 (the binding), some not.
    for (int c = 0; c < 24; ++c) {
        const long long a0 = rng.range(-50, 50);
        const long long a1 = rng.chance(0.5) ? 7 : rng.range(-50, 50);
        const long long a2 = rng.range(-50, 50);
        main_body += vp::format("    li   a0, %lld\n", a0);
        main_body += vp::format("    li   a1, %lld\n", a1);
        main_body += vp::format("    li   a2, %lld\n", a2);
        main_body += "    call f\n";
        main_body += "    syscall puti\n";
        main_body += "    li   a0, 10\n    syscall putc\n";
    }

    return vp::format(R"(
    .proc main args=0
main:
%s    li   a0, 0
    syscall exit
    .endp
    .proc f args=3
f:
%s    .endp
)",
                      main_body.c_str(), f_body.c_str());
}

class SpecializerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(SpecializerFuzz, RandomProceduresStayEquivalent)
{
    vp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
    for (int round = 0; round < 20; ++round) {
        const std::string src = randomProgram(rng);
        Program prog;
        std::string err;
        ASSERT_TRUE(tryAssemble(src, prog, err)) << err << "\n" << src;

        Cpu orig(prog, CpuConfig{1u << 18, 2'000'000});
        const RunResult orig_res = orig.run();
        ASSERT_TRUE(orig_res.exited()) << src;

        const auto spec = specialize::specializeProcedure(
            prog, "f", {{regA0 + 1, 7}});
        Cpu specialized(spec.program, CpuConfig{1u << 18, 2'000'000});
        const RunResult spec_res = specialized.run();
        ASSERT_TRUE(spec_res.exited()) << src;
        ASSERT_EQ(specialized.output(), orig.output())
            << "divergence in round " << round << ":\n"
            << src;
        // The specialized run must never be grossly slower (guard
        // overhead is bounded by 3 instructions per call).
        EXPECT_LE(spec_res.dynamicInsts,
                  orig_res.dynamicInsts + 24 * 4);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecializerFuzz,
                         ::testing::Range(0, 6));

// ---------------------------------------------------------------------
// Assembler robustness
// ---------------------------------------------------------------------

class AssemblerFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(AssemblerFuzz, MutatedSourceNeverCrashes)
{
    vp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 99);
    const std::string base = R"(
    .data
buf:    .space 64
val:    .word 1, 2, 3
    .text
    .proc main args=0
main:
    la   t0, buf
    ld   t1, val
loop:
    addi t1, t1, -1
    bnez t1, loop
    li   a0, 0
    syscall exit
    .endp
)";
    for (int round = 0; round < 200; ++round) {
        std::string mutated = base;
        const int edits = 1 + static_cast<int>(rng.below(6));
        for (int e = 0; e < edits; ++e) {
            const std::size_t pos = rng.below(mutated.size());
            switch (rng.below(3)) {
              case 0:
                mutated[pos] = static_cast<char>(rng.below(128));
                break;
              case 1:
                mutated.erase(pos, 1);
                break;
              default:
                mutated.insert(pos, 1,
                               static_cast<char>(32 + rng.below(95)));
                break;
            }
        }
        Program prog;
        std::string err;
        if (tryAssemble(mutated, prog, err)) {
            // Whatever assembled must be structurally valid.
            EXPECT_EQ(prog.validate(), "");
        } else {
            EXPECT_FALSE(err.empty());
        }
    }
}

TEST_P(AssemblerFuzz, GarbageInputRejectedGracefully)
{
    vp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 5);
    for (int round = 0; round < 100; ++round) {
        std::string garbage;
        const std::size_t len = rng.below(400);
        for (std::size_t i = 0; i < len; ++i)
            garbage.push_back(static_cast<char>(rng.below(256)));
        Program prog;
        std::string err;
        if (tryAssemble(garbage, prog, err)) {
            EXPECT_EQ(prog.validate(), "");
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssemblerFuzz, ::testing::Range(0, 4));

// ---------------------------------------------------------------------
// Cpu robustness
// ---------------------------------------------------------------------

class CpuFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuFuzz, RandomProgramsAlwaysHalt)
{
    vp::Rng rng(static_cast<std::uint64_t>(GetParam()) * 127 + 3);
    for (int round = 0; round < 50; ++round) {
        Program prog;
        const std::size_t n = 4 + rng.below(60);
        for (std::size_t i = 0; i < n; ++i) {
            Inst inst;
            inst.op =
                static_cast<Opcode>(rng.below(static_cast<std::uint64_t>(
                    Opcode::NumOpcodes)));
            inst.rd = static_cast<std::uint8_t>(rng.below(numRegs));
            inst.ra = static_cast<std::uint8_t>(rng.below(numRegs));
            inst.rb = static_cast<std::uint8_t>(rng.below(numRegs));
            if (isControl(inst.op) && inst.op != Opcode::JALR) {
                inst.imm = static_cast<std::int64_t>(rng.below(n));
            } else if (inst.op == Opcode::SYSCALL) {
                inst.imm = static_cast<std::int64_t>(rng.below(4));
            } else {
                inst.imm = static_cast<std::int64_t>(rng.next() >> 40);
            }
            prog.code.push_back(inst);
        }
        if (!prog.validate().empty())
            continue; // validator rejected: also a fine outcome
        Cpu cpu(prog, CpuConfig{1u << 16, 20'000});
        const RunResult res = cpu.run();
        // Must halt with one of the defined reasons; dynamic count is
        // bounded by the budget.
        EXPECT_LE(res.dynamicInsts, 20'000u);
        EXPECT_TRUE(res.reason == StopReason::Exited ||
                    res.reason == StopReason::MaxInsts ||
                    res.reason == StopReason::MemFault ||
                    res.reason == StopReason::BadInst);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpuFuzz, ::testing::Range(0, 4));

} // namespace
