/**
 * @file
 * The online-patching protocol: requestPatchPoint() parks the
 * interpreter between instructions, onPatchPoint is the one legal
 * moment to install call redirects, and redirects steer procedure
 * entry without the guest noticing anything but a different callee.
 */

#include <gtest/gtest.h>

#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

namespace
{

// main prints f() three times; f and g return distinguishable values,
// so the output spells out exactly which entry each call reached.
const char *const twoProcs = R"(
    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    li   s0, 3
again:
    beqz s0, done
    call f
    syscall puti
    addi s0, s0, -1
    jmp  again
done:
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

    .proc f args=0
f:
    li   a0, 111
    ret
    .endp

    .proc g args=0
g:
    li   a0, 222
    ret
    .endp
)";

struct Procs
{
    vpsim::Program prog;
    std::uint32_t f = 0;
    std::uint32_t g = 0;
};

Procs
assembleTwoProcs()
{
    Procs p;
    p.prog = vpsim::assemble(twoProcs);
    p.f = p.prog.findProc("f")->entry;
    p.g = p.prog.findProc("g")->entry;
    return p;
}

/** Records the interleaving of instruction retire and patch events. */
struct PatchRecorder final : vpsim::ExecListener
{
    std::uint64_t instsBeforePatch = 0;
    std::uint64_t instsSeen = 0;
    int patches = 0;

    void
    onInst(std::uint32_t, const vpsim::Inst &, bool,
           std::uint64_t) override
    {
        ++instsSeen;
    }

    void
    onPatchPoint(vpsim::Cpu &) override
    {
        ++patches;
        instsBeforePatch = instsSeen;
    }
};

TEST(PatchPoint, RedirectSteersCallsToAnotherEntry)
{
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    cpu.setCallRedirect(p.f, p.g);
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(cpu.output(), "222222222");
}

TEST(PatchPoint, ClearCallRedirectRestoresTheOriginalCallee)
{
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    cpu.setCallRedirect(p.f, p.g);
    cpu.clearCallRedirect(p.f);
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(cpu.output(), "111111111");
}

TEST(PatchPoint, RedirectsSurviveResetAsHostConfiguration)
{
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    cpu.setCallRedirect(p.f, p.g);
    cpu.reset();
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(cpu.output(), "222222222");
}

TEST(PatchPoint, PreRunRequestIsServicedBeforeTheFirstInstruction)
{
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    PatchRecorder rec;
    cpu.addListener(&rec);
    cpu.requestPatchPoint();
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(rec.patches, 1);
    EXPECT_EQ(rec.instsBeforePatch, 0u);
}

TEST(PatchPoint, ResetDropsAPendingRequest)
{
    // A pending patch point dies with the run it was requested in;
    // only installed redirects are durable host configuration.
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    PatchRecorder rec;
    cpu.addListener(&rec);
    cpu.requestPatchPoint();
    cpu.reset();
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(rec.patches, 0);
}

/** Requests a patch point from inside an event callback and installs
 *  a redirect when it is serviced — the adaptive engine's exact
 *  sequence, minus the profiling. */
struct MidRunPatcher final : vpsim::ExecListener
{
    vpsim::Cpu &cpu;
    std::uint32_t from, to;
    bool requested = false;
    int patches = 0;

    MidRunPatcher(vpsim::Cpu &c, std::uint32_t f, std::uint32_t g)
        : cpu(c), from(f), to(g)
    {
    }

    void
    onInst(std::uint32_t, const vpsim::Inst &, bool,
           std::uint64_t) override
    {
        // Ask once the first call has produced output, so the run
        // demonstrably switches callee mid-stream.
        if (!requested && !cpu.output().empty()) {
            requested = true;
            cpu.requestPatchPoint();
        }
    }

    void
    onPatchPoint(vpsim::Cpu &patched) override
    {
        ++patches;
        patched.setCallRedirect(from, to);
    }
};

TEST(PatchPoint, MidRunRequestPatchesTheRemainingCalls)
{
    Procs p = assembleTwoProcs();
    vpsim::Cpu cpu(p.prog);
    MidRunPatcher patcher(cpu, p.f, p.g);
    cpu.addListener(&patcher);
    const auto res = cpu.run();
    ASSERT_TRUE(res.exited());
    EXPECT_EQ(patcher.patches, 1);
    // The request lands during the event flush inside call #2's JAL,
    // whose target is already latched — so call #2 still reaches f,
    // and the redirect installed at the patch point takes effect from
    // call #3 on. One in-flight call of latency, never a torn call.
    EXPECT_EQ(cpu.output(), "111111222");
}

} // namespace
