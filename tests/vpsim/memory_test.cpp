/**
 * @file
 * Tests for the guest memory model.
 */

#include <gtest/gtest.h>

#include "vpsim/memory.hpp"

using namespace vpsim;

namespace
{

TEST(Memory, LittleEndianRoundTrip)
{
    Memory mem(64);
    mem.store(0, 8, 0x0102030405060708ull);
    EXPECT_EQ(mem.load(0, 8), 0x0102030405060708ull);
    EXPECT_EQ(mem.load(0, 1), 0x08u); // low byte first
    EXPECT_EQ(mem.load(7, 1), 0x01u);
    EXPECT_EQ(mem.load(0, 4), 0x05060708u);
}

TEST(Memory, NarrowStoreLeavesNeighbors)
{
    Memory mem(16);
    mem.store(0, 8, ~0ull);
    mem.store(2, 2, 0);
    EXPECT_EQ(mem.load(0, 2), 0xFFFFu);
    EXPECT_EQ(mem.load(2, 2), 0u);
    EXPECT_EQ(mem.load(4, 4), 0xFFFFFFFFu);
}

TEST(Memory, OutOfBoundsSetsFault)
{
    Memory mem(16);
    EXPECT_FALSE(mem.hasFault());
    EXPECT_EQ(mem.load(12, 8), 0u);
    EXPECT_TRUE(mem.hasFault());
    EXPECT_EQ(mem.faultAddress(), 12u);
}

TEST(Memory, StoreOutOfBoundsFaultsWithoutWriting)
{
    Memory mem(16);
    mem.store(15, 8, 0xDEAD);
    EXPECT_TRUE(mem.hasFault());
}

TEST(Memory, AddressOverflowFaults)
{
    Memory mem(16);
    mem.load(~0ull - 2, 8);
    EXPECT_TRUE(mem.hasFault());
}

TEST(Memory, ClearZeroesAndResetsFault)
{
    Memory mem(16);
    mem.store(0, 8, 42);
    mem.load(100, 1);
    EXPECT_TRUE(mem.hasFault());
    mem.clear();
    EXPECT_FALSE(mem.hasFault());
    EXPECT_EQ(mem.load(0, 8), 0u);
}

TEST(Memory, BlockTransfer)
{
    Memory mem(64);
    const std::uint8_t src[4] = {1, 2, 3, 4};
    mem.writeBlock(8, src, 4);
    std::uint8_t dst[4] = {};
    mem.readBlock(8, dst, 4);
    EXPECT_EQ(dst[0], 1);
    EXPECT_EQ(dst[3], 4);
    EXPECT_EQ(mem.load(8, 1), 1u);
}

TEST(MemoryDeath, HostBlockOverflowIsFatal)
{
    Memory mem(16);
    std::uint8_t buf[8] = {};
    EXPECT_EXIT(mem.writeBlock(12, buf, 8),
                ::testing::ExitedWithCode(1), "out of bounds");
    EXPECT_EXIT(mem.readBlock(12, buf, 8),
                ::testing::ExitedWithCode(1), "out of bounds");
}

} // namespace
