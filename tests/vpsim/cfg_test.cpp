/**
 * @file
 * Tests for basic-block discovery and CFG edges.
 */

#include <gtest/gtest.h>

#include "vpsim/assembler.hpp"
#include "vpsim/cfg.hpp"

using namespace vpsim;

namespace
{

TEST(Cfg, StraightLineIsOneBlock)
{
    Program p = assemble(R"(
    li t0, 1
    addi t0, t0, 1
    syscall exit
)");
    Cfg cfg(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].begin, 0u);
    EXPECT_EQ(cfg.blocks()[0].end, 3u);
}

TEST(Cfg, LoopMakesBackEdge)
{
    Program p = assemble(R"(
    li   t0, 0
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    syscall exit
)");
    Cfg cfg(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    // blocks: [0,1) preheader, [1,3) loop, [3,4) exit
    ASSERT_EQ(cfg.blocks().size(), 3u);
    const auto &loop = cfg.blocks()[1];
    ASSERT_EQ(loop.succs.size(), 2u);
    EXPECT_EQ(cfg.blockOf(1), 1u);
    // loop has itself as predecessor
    bool self_pred = false;
    for (auto pr : loop.preds)
        self_pred |= pr == 1u;
    EXPECT_TRUE(self_pred);
}

TEST(Cfg, DiamondShape)
{
    Program p = assemble(R"(
    beq  t0, t1, right
    addi t2, t2, 1
    jmp  join
right:
    addi t2, t2, 2
join:
    syscall exit
)");
    Cfg cfg(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    ASSERT_EQ(cfg.blocks().size(), 4u);
    EXPECT_EQ(cfg.blocks()[0].succs.size(), 2u);
    const auto &join = cfg.blocks()[3];
    EXPECT_EQ(join.preds.size(), 2u);
}

TEST(Cfg, CallFallsThrough)
{
    Program p = assemble(R"(
main:
    call f
    syscall exit
f:
    ret
)");
    // CFG over main only
    Cfg cfg(p, 0, 2);
    ASSERT_EQ(cfg.blocks().size(), 2u);
    // the call block links to the post-call block
    ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u);
    EXPECT_EQ(cfg.blocks()[0].succs[0], 1u);
}

TEST(Cfg, ReturnHasNoSuccessor)
{
    Program p = assemble(R"(
f:
    addi a0, a0, 1
    ret
)");
    Cfg cfg(p, 0, 2);
    ASSERT_EQ(cfg.blocks().size(), 1u);
    EXPECT_TRUE(cfg.blocks()[0].succs.empty());
}

TEST(Cfg, BranchOutOfRegionIgnored)
{
    Program p = assemble(R"(
    beq t0, t1, out
    nop
out:
    syscall exit
)");
    // Region covers only the first two instructions; the branch target
    // is outside and contributes no edge.
    Cfg cfg(p, 0, 2);
    ASSERT_EQ(cfg.blocks().size(), 2u);
    ASSERT_EQ(cfg.blocks()[0].succs.size(), 1u); // fall-through only
}

TEST(Cfg, EmptyRegion)
{
    Program p = assemble("nop\n");
    Cfg cfg(p, 0, 0);
    EXPECT_TRUE(cfg.blocks().empty());
}

TEST(Cfg, ProcedureConstructor)
{
    Program p = assemble(R"(
    .proc main args=0
main:
    li a0, 0
    syscall exit
    .endp
    .proc f args=1
f:
    addi a0, a0, 1
    ret
    .endp
)");
    const Procedure *f = p.findProc("f");
    ASSERT_NE(f, nullptr);
    Cfg cfg(p, *f);
    EXPECT_EQ(cfg.rangeBegin(), f->entry);
    EXPECT_EQ(cfg.rangeEnd(), f->end);
    ASSERT_EQ(cfg.blocks().size(), 1u);
}

} // namespace
