/**
 * @file
 * Tests for the disassembler.
 */

#include <gtest/gtest.h>

#include "vpsim/assembler.hpp"
#include "vpsim/disasm.hpp"

using namespace vpsim;

namespace
{

TEST(Disasm, AluForms)
{
    EXPECT_EQ(disassemble({Opcode::ADD, 10, 11, 12, 0}),
              "add    t0, t1, t2");
    EXPECT_EQ(disassemble({Opcode::ADDI, 10, 10, 0, -4}),
              "addi   t0, t0, -4");
    EXPECT_EQ(disassemble({Opcode::LI, 4, 0, 0, 99}), "li     a0, 99");
}

TEST(Disasm, MemoryForms)
{
    EXPECT_EQ(disassemble({Opcode::LD, 10, 29, 0, 8}),
              "ld     t0, 8(sp)");
    EXPECT_EQ(disassemble({Opcode::SB, 0, 29, 11, 1}),
              "sb     t1, 1(sp)");
}

TEST(Disasm, ControlFormsWithLabels)
{
    Program p = assemble(R"(
top:
    beq t0, t1, top
    jmp top
    jal f
    jalr t0
f:
    ret
)");
    EXPECT_EQ(disassemble(p, 0), "beq    t0, t1, top");
    EXPECT_EQ(disassemble(p, 1), "jmp    top");
    EXPECT_EQ(disassemble(p, 2), "jal    ra, f");
    EXPECT_EQ(disassemble(p, 3), "jalr   ra, t0");
}

TEST(Disasm, SystemAndNop)
{
    EXPECT_EQ(disassemble({Opcode::SYSCALL, 0, 0, 0, 2}), "syscall 2");
    EXPECT_EQ(disassemble({Opcode::NOP, 0, 0, 0, 0}), "nop");
}

TEST(Disasm, RangeIncludesLabels)
{
    Program p = assemble(R"(
main:
    li a0, 0
    syscall exit
)");
    const std::string text =
        disassembleRange(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("li     a0, 0"), std::string::npos);
}

TEST(Disasm, EveryOpcodeHasStableOutput)
{
    // Smoke: disassembling any opcode must not crash and must start
    // with its mnemonic.
    for (int op = 0; op < static_cast<int>(Opcode::NumOpcodes); ++op) {
        Inst inst;
        inst.op = static_cast<Opcode>(op);
        inst.rd = 1;
        inst.ra = 2;
        inst.rb = 3;
        inst.imm = 0;
        const std::string text = disassemble(inst);
        EXPECT_EQ(text.rfind(opcodeName(inst.op), 0), 0u) << text;
    }
}

} // namespace
