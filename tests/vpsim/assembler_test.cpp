/**
 * @file
 * Tests for the assembler: syntax forms, pseudo-instructions, data
 * directives, symbol resolution, and error reporting.
 */

#include <gtest/gtest.h>

#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

using namespace vpsim;

namespace
{

Program
mustAssemble(const std::string &src)
{
    Program prog;
    std::string err;
    bool ok = tryAssemble(src, prog, err);
    EXPECT_TRUE(ok) << err;
    return prog;
}

std::string
mustFail(const std::string &src)
{
    Program prog;
    std::string err;
    EXPECT_FALSE(tryAssemble(src, prog, err));
    return err;
}

TEST(Assembler, MinimalProgram)
{
    const Program p = mustAssemble("li a0, 0\nsyscall exit\n");
    ASSERT_EQ(p.numInsts(), 2u);
    EXPECT_EQ(p.code[0].op, Opcode::LI);
    EXPECT_EQ(p.code[0].rd, regA0);
    EXPECT_EQ(p.code[1].op, Opcode::SYSCALL);
    EXPECT_EQ(p.code[1].imm, 0);
}

TEST(Assembler, CommentsAndBlankLines)
{
    const Program p = mustAssemble(R"(
# full-line comment
    li a0, 1   # trailing comment
    ; semicolon comment
    syscall exit ; done
)");
    EXPECT_EQ(p.numInsts(), 2u);
}

TEST(Assembler, ThreeRegForm)
{
    const Program p = mustAssemble("add t0, t1, t2\nsyscall exit\n");
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_EQ(p.code[0].rd, regT0);
    EXPECT_EQ(p.code[0].ra, regT0 + 1);
    EXPECT_EQ(p.code[0].rb, regT0 + 2);
}

TEST(Assembler, ImmediateForms)
{
    const Program p = mustAssemble(
        "addi t0, t0, -4\nandi t1, t2, 0xff\nsyscall exit\n");
    EXPECT_EQ(p.code[0].imm, -4);
    EXPECT_EQ(p.code[1].imm, 0xff);
}

TEST(Assembler, MemoryOperandForms)
{
    const Program p = mustAssemble(R"(
    .data
buf:    .space 16
    .text
    ld  t0, 8(sp)
    ld  t1, (sp)
    st  t2, buf(zero)
    lbu t3, buf
    syscall exit
)");
    EXPECT_EQ(p.code[0].op, Opcode::LD);
    EXPECT_EQ(p.code[0].ra, regSp);
    EXPECT_EQ(p.code[0].imm, 8);
    EXPECT_EQ(p.code[1].imm, 0);
    // Symbolic offsets resolve to the data address.
    const auto buf = static_cast<std::int64_t>(p.dataAddress("buf"));
    EXPECT_EQ(p.code[2].imm, buf);
    EXPECT_EQ(p.code[2].rb, regT0 + 2); // store data register
    EXPECT_EQ(p.code[3].ra, regZero);   // absolute addressing
    EXPECT_EQ(p.code[3].imm, buf);
}

TEST(Assembler, BranchTargetsResolveForwardAndBackward)
{
    const Program p = mustAssemble(R"(
top:
    addi t0, t0, 1
    beq  t0, t1, done
    jmp  top
done:
    syscall exit
)");
    EXPECT_EQ(p.code[1].imm, 3); // done
    EXPECT_EQ(p.code[2].imm, 0); // top
}

TEST(Assembler, PseudoInstructions)
{
    const Program p = mustAssemble(R"(
    mov  t0, t1
    neg  t2, t3
    not  t4, t5
    b    skip
skip:
    beqz t0, skip
    bnez t0, skip
    ret
    syscall exit
)");
    EXPECT_EQ(p.code[0].op, Opcode::ADD);
    EXPECT_EQ(p.code[0].rb, regZero);
    EXPECT_EQ(p.code[1].op, Opcode::SUB);
    EXPECT_EQ(p.code[1].ra, regZero);
    EXPECT_EQ(p.code[2].op, Opcode::XORI);
    EXPECT_EQ(p.code[2].imm, -1);
    EXPECT_EQ(p.code[3].op, Opcode::JMP);
    EXPECT_EQ(p.code[4].op, Opcode::BEQ);
    EXPECT_EQ(p.code[4].rb, regZero);
    EXPECT_EQ(p.code[5].op, Opcode::BNE);
    EXPECT_EQ(p.code[6].op, Opcode::JALR);
    EXPECT_EQ(p.code[6].rd, regZero);
    EXPECT_EQ(p.code[6].ra, regRa);
}

TEST(Assembler, CallAndJalForms)
{
    const Program p = mustAssemble(R"(
    call f
    jal  f
    jal  t0, f
    jalr t1
    jalr t2, t3
    syscall exit
f:  ret
)");
    EXPECT_EQ(p.code[0].op, Opcode::JAL);
    EXPECT_EQ(p.code[0].rd, regRa);
    EXPECT_EQ(p.code[1].rd, regRa);
    EXPECT_EQ(p.code[2].rd, regT0);
    EXPECT_EQ(p.code[3].op, Opcode::JALR);
    EXPECT_EQ(p.code[3].rd, regRa);
    EXPECT_EQ(p.code[3].ra, regT0 + 1);
    EXPECT_EQ(p.code[4].rd, regT0 + 2);
    EXPECT_EQ(p.code[4].ra, regT0 + 3);
}

TEST(Assembler, DataDirectives)
{
    const Program p = mustAssemble(R"(
    .data
words:  .word 1, 2, -1
bytes:  .byte 0x41, 'b', 10
        .align 8
aligned: .word 99
text:   .asciiz "hi\n"
blank:  .space 5
    .text
    syscall exit
)");
    // words at data base
    EXPECT_EQ(p.dataAddress("words"), Program::defaultDataBase);
    EXPECT_EQ(p.dataAddress("bytes"), Program::defaultDataBase + 24);
    EXPECT_EQ(p.dataAddress("aligned") % 8, 0u);
    // initialized image contents
    EXPECT_EQ(p.dataInit[0], 1u);
    EXPECT_EQ(p.dataInit[8], 2u);
    EXPECT_EQ(p.dataInit[16], 0xffu); // -1 little-endian
    EXPECT_EQ(p.dataInit[24], 0x41u);
    EXPECT_EQ(p.dataInit[25], 'b');
    const auto text_off = p.dataAddress("text") - p.dataBase;
    EXPECT_EQ(p.dataInit[text_off], 'h');
    EXPECT_EQ(p.dataInit[text_off + 2], '\n');
    EXPECT_EQ(p.dataInit[text_off + 3], 0u);
}

TEST(Assembler, WordWithCodeAndDataSymbols)
{
    const Program p = mustAssemble(R"(
    .data
tbl:    .word handler, tbl
    .text
    syscall exit
handler:
    ret
)");
    // first word: code label (instruction index 1)
    std::uint64_t w0 = 0, w1 = 0;
    for (int i = 0; i < 8; ++i) {
        w0 |= std::uint64_t(p.dataInit[i]) << (8 * i);
        w1 |= std::uint64_t(p.dataInit[8 + i]) << (8 * i);
    }
    EXPECT_EQ(w0, 1u);
    EXPECT_EQ(w1, p.dataAddress("tbl"));
}

TEST(Assembler, ProceduresRecorded)
{
    const Program p = mustAssemble(R"(
    .proc main args=0
main:
    li a0, 0
    syscall exit
    .endp
    .proc helper args=2
helper:
    ret
    .endp
)");
    ASSERT_EQ(p.procs.size(), 2u);
    EXPECT_EQ(p.procs[0].name, "main");
    EXPECT_EQ(p.procs[0].entry, 0u);
    EXPECT_EQ(p.procs[0].end, 2u);
    EXPECT_EQ(p.procs[1].numArgs, 2u);
    EXPECT_EQ(p.entryPoint, 0u);
    EXPECT_NE(p.findProc("helper"), nullptr);
    EXPECT_EQ(p.findProc("nope"), nullptr);
}

TEST(Assembler, EntryPointIsMainEvenWhenNotFirst)
{
    const Program p = mustAssemble(R"(
helper:
    ret
main:
    syscall exit
)");
    EXPECT_EQ(p.entryPoint, 1u);
}

TEST(Assembler, SyscallByNameAndNumber)
{
    const Program p = mustAssemble(
        "syscall putc\nsyscall puti\nsyscall 0\n");
    EXPECT_EQ(p.code[0].imm, 1);
    EXPECT_EQ(p.code[1].imm, 2);
    EXPECT_EQ(p.code[2].imm, 0);
}

struct ErrorCase
{
    const char *src;
    const char *needle;
};

class AssemblerErrors : public ::testing::TestWithParam<ErrorCase>
{
};

TEST_P(AssemblerErrors, Reports)
{
    const std::string err = mustFail(GetParam().src);
    EXPECT_NE(err.find(GetParam().needle), std::string::npos)
        << "error was: " << err;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AssemblerErrors,
    ::testing::Values(
        ErrorCase{"frobnicate t0\n", "unknown mnemonic"},
        ErrorCase{"add t0, t1\n", "expects 3 operands"},
        ErrorCase{"add t0, t1, bogus\n", "bad register"},
        ErrorCase{"jmp nowhere\n", "undefined symbol"},
        ErrorCase{"dup: nop\ndup: nop\n", "duplicate label"},
        ErrorCase{".data\n.word\n", "empty .word operand"},
        ErrorCase{".data\n.space -2\n", "bad .space"},
        ErrorCase{".data\n.align 3\n", "power of two"},
        ErrorCase{".data\nnop\n", "instruction inside .data"},
        ErrorCase{".word 1\n", "outside .data"},
        ErrorCase{".proc f\nnop\n", "missing .endp"},
        ErrorCase{".endp\n", ".endp without .proc"},
        ErrorCase{".proc a\n.proc b\n", "nested .proc"},
        ErrorCase{".proc f args=9\nnop\n.endp\n", "bad args="},
        ErrorCase{"syscall frob\n", "unknown syscall"},
        ErrorCase{".data\n.asciiz oops\n", "bad string"}));

TEST(Assembler, ErrorIncludesLineNumber)
{
    const std::string err = mustFail("nop\nnop\nbogus_op t0\n");
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
}

TEST(AssemblerDeath, AssembleFatalsOnBadSource)
{
    EXPECT_EXIT(assemble("bad_mnemonic\n"),
                ::testing::ExitedWithCode(1), "assembly failed");
}

} // namespace
