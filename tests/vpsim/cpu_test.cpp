/**
 * @file
 * Interpreter tests: ALU semantics, memory, control flow, syscalls,
 * traps, listeners — plus a property test cross-checking evalPure()
 * against Cpu execution on randomized instructions.
 */

#include <gtest/gtest.h>

#include "check/seed.hpp"
#include "support/rng.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"
#include "vpsim/eval.hpp"

using namespace vpsim;

namespace
{

RunResult
runSrc(const std::string &src, Cpu **cpu_out = nullptr)
{
    static std::unique_ptr<Program> prog;
    static std::unique_ptr<Cpu> cpu;
    prog = std::make_unique<Program>(assemble(src));
    cpu = std::make_unique<Cpu>(*prog, CpuConfig{1u << 20, 10'000'000});
    if (cpu_out)
        *cpu_out = cpu.get();
    return cpu->run();
}

TEST(Cpu, ExitCodeAndCounts)
{
    Cpu *cpu = nullptr;
    const RunResult res = runSrc(R"(
    li a0, 7
    syscall exit
)", &cpu);
    EXPECT_TRUE(res.exited());
    EXPECT_EQ(res.exitCode, 7);
    EXPECT_EQ(res.dynamicInsts, 2u);
}

TEST(Cpu, ArithmeticSemantics)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    li   t0, 10
    li   t1, -3
    add  s0, t0, t1          # 7
    sub  s1, t0, t1          # 13
    mul  s2, t0, t1          # -30
    div  s3, t0, t1          # -3 (C++ truncation)
    rem  s4, t0, t1          # 1
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(cpu->readReg(regS0), 7u);
    EXPECT_EQ(cpu->readReg(regS0 + 1), 13u);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 2)), -30);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 3)), -3);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 4)), 1);
}

TEST(Cpu, ShiftAndCompareSemantics)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    li   t0, -8
    srai s0, t0, 1           # -4 arithmetic
    srli s1, t0, 60          # logical: high bits come down
    li   t1, 3
    sll  s2, t1, t1          # 24
    slt  s3, t0, t1          # 1 (signed)
    sltu s4, t0, t1          # 0 (unsigned: -8 is huge)
    seqi s5, t1, 3           # 1
    snei s6, t1, 3           # 0
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0)), -4);
    EXPECT_EQ(cpu->readReg(regS0 + 1), 0xFull);
    EXPECT_EQ(cpu->readReg(regS0 + 2), 24u);
    EXPECT_EQ(cpu->readReg(regS0 + 3), 1u);
    EXPECT_EQ(cpu->readReg(regS0 + 4), 0u);
    EXPECT_EQ(cpu->readReg(regS0 + 5), 1u);
    EXPECT_EQ(cpu->readReg(regS0 + 6), 0u);
}

TEST(Cpu, RegZeroIsImmutable)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    li   zero, 99
    addi zero, zero, 5
    mov  s0, zero
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(cpu->readReg(regZero), 0u);
    EXPECT_EQ(cpu->readReg(regS0), 0u);
}

TEST(Cpu, LoadStoreWidthsAndSignExtension)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    .data
buf:    .space 32
    .text
    la   t0, buf
    li   t1, -2
    st   t1, 0(t0)
    ld   s0, 0(t0)           # -2
    lw   s1, 0(t0)           # -2 sign extended from 32
    lwu  s2, 0(t0)           # 0xFFFFFFFE
    lh   s3, 0(t0)           # -2
    lhu  s4, 0(t0)           # 0xFFFE
    lb   s5, 0(t0)           # -2
    lbu  s6, 0(t0)           # 0xFE
    li   t2, 0x1234
    sh   t2, 8(t0)
    lhu  s7, 8(t0)
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0)), -2);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 1)), -2);
    EXPECT_EQ(cpu->readReg(regS0 + 2), 0xFFFFFFFEull);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 3)), -2);
    EXPECT_EQ(cpu->readReg(regS0 + 4), 0xFFFEull);
    EXPECT_EQ(static_cast<std::int64_t>(cpu->readReg(regS0 + 5)), -2);
    EXPECT_EQ(cpu->readReg(regS0 + 6), 0xFEull);
    EXPECT_EQ(cpu->readReg(regS0 + 7), 0x1234ull);
}

TEST(Cpu, LoopAndBranches)
{
    Cpu *cpu = nullptr;
    const RunResult res = runSrc(R"(
    li   t0, 0
    li   t1, 10
loop:
    addi t0, t0, 1
    blt  t0, t1, loop
    mov  a0, t0
    syscall puti
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_TRUE(res.exited());
    EXPECT_EQ(cpu->output(), "10");
    ASSERT_EQ(cpu->outputValues().size(), 1u);
    EXPECT_EQ(cpu->outputValues()[0], 10);
}

TEST(Cpu, CallAndReturn)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
main:
    li   a0, 20
    li   a1, 22
    call addup
    mov  s0, a0
    li   a0, 0
    syscall exit
addup:
    add  a0, a0, a1
    ret
)", &cpu);
    EXPECT_EQ(cpu->readReg(regS0), 42u);
}

TEST(Cpu, PutcBuildsOutput)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    li a0, 'h'
    syscall putc
    li a0, 'i'
    syscall putc
    li a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(cpu->output(), "hi");
}

TEST(Cpu, ComputedJumpThroughDispatchTable)
{
    // The interpreter idiom: a table of code addresses in the data
    // segment, indexed and jumped through with jalr zero.
    Cpu *cpu = nullptr;
    runSrc(R"(
    .data
table:  .word h0, h1, h2
    .text
main:
    li   s0, 2              # select handler 2
    la   t0, table
    slli t1, s0, 3
    add  t0, t0, t1
    ld   t2, 0(t0)
    jalr zero, t2
h0:
    li   s1, 100
    jmp  done
h1:
    li   s1, 200
    jmp  done
h2:
    li   s1, 300
done:
    li   a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(cpu->readReg(regS0 + 1), 300u);
}

TEST(Cpu, JalrToWildTargetTraps)
{
    const RunResult res = runSrc(R"(
    li   t0, 999999
    jalr zero, t0
)");
    EXPECT_EQ(res.reason, StopReason::BadInst);
}

TEST(Cpu, FallingOffCodeEndTraps)
{
    Program prog = assemble("nop\nnop\n");
    Cpu cpu(prog, CpuConfig{4096, 100});
    const RunResult res = cpu.run();
    EXPECT_EQ(res.reason, StopReason::BadInst);
}

TEST(Cpu, StepExecutesExactlyOneInstruction)
{
    Program prog = assemble("li t0, 1\nli t0, 2\nsyscall exit\n");
    Cpu cpu(prog, CpuConfig{4096, 100});
    EXPECT_EQ(cpu.pc(), 0u);
    cpu.step();
    EXPECT_EQ(cpu.pc(), 1u);
    EXPECT_EQ(cpu.readReg(regT0), 1u);
    EXPECT_FALSE(cpu.halted());
    cpu.step();
    cpu.step();
    EXPECT_TRUE(cpu.halted());
    cpu.step(); // no-op once halted
    EXPECT_EQ(cpu.dynamicInsts(), 3u);
}

TEST(ProgramDeath, UnknownSymbolsAreFatal)
{
    Program prog = assemble("syscall exit\n");
    EXPECT_EXIT(prog.dataAddress("nope"),
                ::testing::ExitedWithCode(1), "unknown data symbol");
    EXPECT_EXIT(prog.codeAddress("nope"),
                ::testing::ExitedWithCode(1), "unknown code label");
}

TEST(Program, ValidateCatchesBadPrograms)
{
    Program prog;
    prog.code.push_back({Opcode::JMP, 0, 0, 0, 99});
    EXPECT_NE(prog.validate(), "");

    Program regs;
    regs.code.push_back({Opcode::ADD, 40, 0, 0, 0});
    EXPECT_NE(regs.validate(), "");

    Program procs = assemble("syscall exit\n");
    vpsim::Procedure bad;
    bad.name = "bad";
    bad.entry = 5;
    bad.end = 9;
    procs.procs.push_back(bad);
    EXPECT_NE(procs.validate(), "");
}

TEST(Cpu, DivideByZeroTraps)
{
    const RunResult res = runSrc(R"(
    li  t0, 1
    li  t1, 0
    div t2, t0, t1
    syscall exit
)");
    EXPECT_EQ(res.reason, StopReason::BadInst);
}

// INT64_MIN / -1 is the one signed division whose quotient is not
// representable; hardware faults on it and the interpreter must trap
// (BadInst) rather than execute the host's UB divide. Regression for
// a bug the UBSan CI leg flagged: the pre-check only tested b == 0.
TEST(Cpu, DivOverflowTraps)
{
    const RunResult res = runSrc(R"(
    li  t0, -9223372036854775808
    li  t1, -1
    div t2, t0, t1
    syscall exit
)");
    EXPECT_EQ(res.reason, StopReason::BadInst);
}

TEST(Cpu, RemOverflowTraps)
{
    const RunResult res = runSrc(R"(
    li  t0, -9223372036854775808
    li  t1, -1
    rem t2, t0, t1
    syscall exit
)");
    EXPECT_EQ(res.reason, StopReason::BadInst);
}

// The trapping instruction must not retire: no icount bump, no
// destination write.
TEST(Cpu, DivOverflowDoesNotRetire)
{
    Cpu *cpu = nullptr;
    runSrc(R"(
    li  t0, -9223372036854775808
    li  t1, -1
    li  t2, 42
    div t2, t0, t1
    syscall exit
)", &cpu);
    EXPECT_EQ(cpu->readReg(regT0 + 2), 42u);
    EXPECT_EQ(cpu->dynamicInsts(), 3u);
}

TEST(Cpu, OutOfBoundsLoadTraps)
{
    const RunResult res = runSrc(R"(
    li  t0, 0x7fffffff
    ld  t1, 0(t0)
    syscall exit
)");
    EXPECT_EQ(res.reason, StopReason::MemFault);
}

TEST(Cpu, RunawayLoopHitsBudget)
{
    Program prog = assemble("spin: jmp spin\n");
    Cpu cpu(prog, CpuConfig{1u << 16, 1000});
    const RunResult res = cpu.run();
    EXPECT_EQ(res.reason, StopReason::MaxInsts);
    EXPECT_EQ(res.dynamicInsts, 1000u);
}

TEST(Cpu, ResetRestoresInitialState)
{
    Program prog = assemble(R"(
    .data
v:  .word 5
    .text
    la  t0, v
    ld  t1, 0(t0)
    addi t1, t1, 1
    st  t1, 0(t0)
    mov a0, t1
    syscall puti
    li  a0, 0
    syscall exit
)");
    Cpu cpu(prog, CpuConfig{1u << 16, 100000});
    cpu.run();
    EXPECT_EQ(cpu.output(), "6");
    cpu.reset();
    cpu.run();
    EXPECT_EQ(cpu.output(), "6"); // memory image reloaded, not 7
}

TEST(Cpu, LoadStoreCountsTracked)
{
    Cpu *cpu = nullptr;
    const RunResult res = runSrc(R"(
    .data
b:  .space 8
    .text
    la  t0, b
    st  t1, 0(t0)
    ld  t2, 0(t0)
    ld  t3, 0(t0)
    li  a0, 0
    syscall exit
)", &cpu);
    EXPECT_EQ(res.dynamicStores, 1u);
    EXPECT_EQ(res.dynamicLoads, 2u);
}

// ---------------------------------------------------------------------
// Listener observation
// ---------------------------------------------------------------------

struct RecordingListener : ExecListener
{
    std::uint64_t insts = 0, writes = 0, loads = 0, stores = 0,
                  calls = 0;
    std::uint64_t lastValue = 0;
    std::uint64_t lastLoadAddr = 0;
    std::uint64_t callee = 0;
    std::uint64_t arg0 = 0;

    void
    onInst(std::uint32_t, const Inst &, bool wrote,
           std::uint64_t value) override
    {
        ++insts;
        if (wrote) {
            ++writes;
            lastValue = value;
        }
    }

    void
    onLoad(std::uint32_t, std::uint64_t addr, unsigned,
           std::uint64_t) override
    {
        ++loads;
        lastLoadAddr = addr;
    }

    void
    onStore(std::uint32_t, std::uint64_t, unsigned,
            std::uint64_t) override
    {
        ++stores;
    }

    void
    onCall(std::uint32_t, std::uint32_t callee_entry,
           const std::uint64_t *args) override
    {
        ++calls;
        callee = callee_entry;
        arg0 = args[0];
    }
};

TEST(CpuListener, SeesAllEventKinds)
{
    Program prog = assemble(R"(
    .data
b:  .space 8
    .text
main:
    li   a0, 5
    call f
    la   t0, b
    st   a0, 0(t0)
    ld   t1, 0(t0)
    li   a0, 0
    syscall exit
f:
    addi a0, a0, 1
    ret
)");
    Cpu cpu(prog, CpuConfig{1u << 16, 100000});
    RecordingListener rec;
    cpu.addListener(&rec);
    const RunResult res = cpu.run();
    EXPECT_TRUE(res.exited());
    EXPECT_EQ(rec.insts, res.dynamicInsts);
    EXPECT_EQ(rec.loads, 1u);
    EXPECT_EQ(rec.stores, 1u);
    EXPECT_EQ(rec.calls, 1u);
    EXPECT_EQ(rec.callee, prog.codeAddress("f"));
    EXPECT_EQ(rec.arg0, 5u); // argument value at call time
}

TEST(CpuListener, RetIsNotACall)
{
    Program prog = assemble(R"(
main:
    call f
    li   a0, 0
    syscall exit
f:
    ret
)");
    Cpu cpu(prog, CpuConfig{1u << 16, 1000});
    RecordingListener rec;
    cpu.addListener(&rec);
    cpu.run();
    EXPECT_EQ(rec.calls, 1u); // only the call, not the ret
}

TEST(CpuListener, RemoveListenerStopsEvents)
{
    Program prog = assemble("li a0, 0\nsyscall exit\n");
    Cpu cpu(prog, CpuConfig{1u << 16, 1000});
    RecordingListener rec;
    cpu.addListener(&rec);
    cpu.removeListener(&rec);
    cpu.run();
    EXPECT_EQ(rec.insts, 0u);
}

// ---------------------------------------------------------------------
// Property test: evalPure agrees with the interpreter
// ---------------------------------------------------------------------

class EvalAgreement : public ::testing::TestWithParam<int>
{
};

TEST_P(EvalAgreement, PureOpsMatchInterpreter)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    static const Opcode pure_ops[] = {
        Opcode::ADD, Opcode::SUB, Opcode::MUL, Opcode::DIV,
        Opcode::REM, Opcode::AND, Opcode::OR, Opcode::XOR,
        Opcode::SLL, Opcode::SRL, Opcode::SRA, Opcode::SLT,
        Opcode::SLTU, Opcode::SEQ, Opcode::SNE, Opcode::ADDI,
        Opcode::MULI, Opcode::ANDI, Opcode::ORI, Opcode::XORI,
        Opcode::SLLI, Opcode::SRLI, Opcode::SRAI, Opcode::SLTI,
        Opcode::SEQI, Opcode::SNEI, Opcode::LI,
    };
    for (int iter = 0; iter < 200; ++iter) {
        Inst inst;
        inst.op = pure_ops[rng.below(std::size(pure_ops))];
        inst.rd = 5;
        inst.ra = 6;
        inst.rb = 7;
        inst.imm = static_cast<std::int64_t>(rng.next() >> 32) -
                   (1ll << 31);
        const std::uint64_t a = rng.chance(0.3) ? rng.below(16)
                                                : rng.next();
        const std::uint64_t b = rng.chance(0.3) ? rng.below(16)
                                                : rng.next();

        std::uint64_t expected = 0;
        const bool ok = evalPure(inst, a, b, expected);

        Program prog;
        prog.code = {inst, Inst{Opcode::SYSCALL, 0, 0, 0, 0}};
        Cpu cpu(prog, CpuConfig{4096, 10});
        cpu.writeReg(6, a);
        cpu.writeReg(7, b);
        const RunResult res = cpu.run();
        if (!ok) {
            // evalPure refuses exactly when the Cpu traps (div by 0).
            EXPECT_EQ(res.reason, StopReason::BadInst);
        } else {
            EXPECT_TRUE(res.exited());
            EXPECT_EQ(cpu.readReg(5), expected)
                << opcodeName(inst.op) << " a=" << a << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvalAgreement, ::testing::Range(0, 5));

TEST(Eval, BranchSemantics)
{
    bool taken = false;
    ASSERT_TRUE(evalBranch(Opcode::BLT, static_cast<std::uint64_t>(-1),
                           1, taken));
    EXPECT_TRUE(taken); // signed
    ASSERT_TRUE(evalBranch(Opcode::BLTU, static_cast<std::uint64_t>(-1),
                           1, taken));
    EXPECT_FALSE(taken); // unsigned
    EXPECT_FALSE(evalBranch(Opcode::ADD, 0, 0, taken));
}

} // namespace
