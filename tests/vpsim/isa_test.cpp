/**
 * @file
 * Tests for ISA metadata: classes, register naming, predicates.
 */

#include <gtest/gtest.h>

#include "vpsim/isa.hpp"

using namespace vpsim;

namespace
{

TEST(Isa, OpcodeNamesRoundTrip)
{
    EXPECT_STREQ(opcodeName(Opcode::ADD), "add");
    EXPECT_STREQ(opcodeName(Opcode::LBU), "lbu");
    EXPECT_STREQ(opcodeName(Opcode::SYSCALL), "syscall");
}

TEST(Isa, Classes)
{
    EXPECT_EQ(opcodeClass(Opcode::LD), InstClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::SB), InstClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::MUL), InstClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::DIV), InstClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::SLLI), InstClass::Shift);
    EXPECT_EQ(opcodeClass(Opcode::SEQ), InstClass::Compare);
    EXPECT_EQ(opcodeClass(Opcode::BNE), InstClass::Branch);
    EXPECT_EQ(opcodeClass(Opcode::JAL), InstClass::Jump);
    EXPECT_EQ(opcodeClass(Opcode::ADD), InstClass::IntAlu);
    EXPECT_EQ(opcodeClass(Opcode::LI), InstClass::IntAlu);
}

TEST(Isa, Predicates)
{
    EXPECT_TRUE(isLoad(Opcode::LBU));
    EXPECT_FALSE(isLoad(Opcode::SB));
    EXPECT_TRUE(isStore(Opcode::SW));
    EXPECT_TRUE(isCondBranch(Opcode::BGEU));
    EXPECT_FALSE(isCondBranch(Opcode::JMP));
    EXPECT_TRUE(isControl(Opcode::JMP));
    EXPECT_TRUE(isControl(Opcode::JALR));
    EXPECT_FALSE(isControl(Opcode::ADD));
}

TEST(Isa, MemAccessSizes)
{
    EXPECT_EQ(memAccessSize(Opcode::LD), 8u);
    EXPECT_EQ(memAccessSize(Opcode::LW), 4u);
    EXPECT_EQ(memAccessSize(Opcode::LH), 2u);
    EXPECT_EQ(memAccessSize(Opcode::SB), 1u);
}

TEST(IsaDeath, MemAccessSizeOnAluPanics)
{
    EXPECT_DEATH(memAccessSize(Opcode::ADD), "not a memory opcode");
}

TEST(Isa, WritesDest)
{
    EXPECT_TRUE(writesDest({Opcode::ADD, 5, 1, 2, 0}));
    EXPECT_FALSE(writesDest({Opcode::ADD, 0, 1, 2, 0})); // rd == zero
    EXPECT_TRUE(writesDest({Opcode::LD, 5, 1, 0, 0}));
    EXPECT_FALSE(writesDest({Opcode::ST, 5, 1, 2, 0}));
    EXPECT_FALSE(writesDest({Opcode::BEQ, 0, 1, 2, 0}));
    EXPECT_TRUE(writesDest({Opcode::JAL, regRa, 0, 0, 0}));
    EXPECT_FALSE(writesDest({Opcode::JALR, 0, regRa, 0, 0})); // ret
    EXPECT_FALSE(writesDest({Opcode::SYSCALL, 0, 0, 0, 0}));
    EXPECT_FALSE(writesDest({Opcode::NOP, 5, 0, 0, 0}));
}

TEST(Isa, RegNames)
{
    EXPECT_EQ(regName(0), "zero");
    EXPECT_EQ(regName(regA0), "a0");
    EXPECT_EQ(regName(regT0), "t0");
    EXPECT_EQ(regName(regS0), "s0");
    EXPECT_EQ(regName(regSp), "sp");
    EXPECT_EQ(regName(regRa), "ra");
    EXPECT_EQ(regName(1), "r1");
}

TEST(Isa, ParseRegNamesAllForms)
{
    std::uint8_t r = 0;
    ASSERT_TRUE(parseRegName("zero", r));
    EXPECT_EQ(r, regZero);
    ASSERT_TRUE(parseRegName("a3", r));
    EXPECT_EQ(r, regA0 + 3);
    ASSERT_TRUE(parseRegName("t9", r));
    EXPECT_EQ(r, regT0 + 9);
    ASSERT_TRUE(parseRegName("s7", r));
    EXPECT_EQ(r, regS0 + 7);
    ASSERT_TRUE(parseRegName("r31", r));
    EXPECT_EQ(r, 31);
    ASSERT_TRUE(parseRegName("sp", r));
    EXPECT_EQ(r, regSp);
}

TEST(Isa, ParseRegNameRejectsGarbage)
{
    std::uint8_t r = 0;
    EXPECT_FALSE(parseRegName("", r));
    EXPECT_FALSE(parseRegName("r32", r));
    EXPECT_FALSE(parseRegName("a6", r));
    EXPECT_FALSE(parseRegName("t10", r));
    EXPECT_FALSE(parseRegName("s8", r));
    EXPECT_FALSE(parseRegName("x1", r));
    EXPECT_FALSE(parseRegName("r1x", r));
}

TEST(Isa, RegNameParseRoundTripAllRegisters)
{
    for (unsigned reg = 0; reg < numRegs; ++reg) {
        std::uint8_t parsed = 255;
        ASSERT_TRUE(parseRegName(regName(reg), parsed)) << regName(reg);
        EXPECT_EQ(parsed, reg);
    }
}

} // namespace
