/**
 * @file
 * Oracle-vs-TNV metric bounds on hand-built value streams — the
 * soundness core of the differential checkers, verified on streams
 * whose exact behaviour is known by construction:
 *
 *  - an invariant stream (one value): the TNV table is exact;
 *  - a bimodal stream (two alternating values): exact, invTop = 1/2,
 *    LVP = 0;
 *  - an adversarial LFU-eviction stream: two late-hot values thrash a
 *    full pure-LFU table, so their TNV counts strictly undercount the
 *    truth while never exceeding it — the bound the checkers rely on.
 */

#include <gtest/gtest.h>

#include "check/oracle.hpp"
#include "core/value_profile.hpp"

using core::ProfileConfig;
using core::TnvConfig;
using core::ValueProfile;
using vp::check::OracleEntity;

namespace
{

/** Feed the same stream to a profile and the oracle. */
void
feed(ValueProfile &prof, OracleEntity &oracle,
     const std::vector<std::uint64_t> &stream)
{
    for (const auto v : stream) {
        prof.record(v);
        oracle.record(v);
    }
}

/** The sound containment bounds every checker asserts. */
void
expectBounds(const ValueProfile &prof, const OracleEntity &oracle)
{
    EXPECT_EQ(prof.executions(), oracle.total);
    EXPECT_EQ(prof.zeroCount(), oracle.zeros);
    EXPECT_EQ(prof.lvpHits(), oracle.lastHits);
    if (!prof.distinctSaturated())
        EXPECT_EQ(prof.distinct(), oracle.distinct());
    std::uint64_t covered = 0;
    for (const auto &e : prof.tnv().raw()) {
        EXPECT_LE(e.count, oracle.countFor(e.value))
            << "TNV invented occurrences of value " << e.value;
        covered += e.count;
    }
    EXPECT_LE(covered, oracle.total);
}

TEST(OracleBoundsTest, InvariantStreamIsExact)
{
    ValueProfile prof;
    OracleEntity oracle;
    feed(prof, oracle, std::vector<std::uint64_t>(1000, 42));
    expectBounds(prof, oracle);

    EXPECT_EQ(prof.tnv().size(), 1u);
    EXPECT_EQ(prof.tnv().countFor(42), 1000u);
    EXPECT_DOUBLE_EQ(prof.invTop(), 1.0);
    EXPECT_DOUBLE_EQ(oracle.invTop(), 1.0);
    EXPECT_EQ(oracle.topValue(), 42u);
    // 999 of 1000 executions repeat the previous value.
    EXPECT_DOUBLE_EQ(prof.lvp(), 0.999);
    EXPECT_DOUBLE_EQ(oracle.lvp(), 0.999);
}

TEST(OracleBoundsTest, BimodalStreamIsExact)
{
    ValueProfile prof;
    OracleEntity oracle;
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 500; ++i) {
        stream.push_back(5);
        stream.push_back(9);
    }
    feed(prof, oracle, stream);
    expectBounds(prof, oracle);

    EXPECT_EQ(prof.tnv().countFor(5), 500u);
    EXPECT_EQ(prof.tnv().countFor(9), 500u);
    EXPECT_DOUBLE_EQ(prof.invTop(), 0.5);
    EXPECT_DOUBLE_EQ(oracle.invTop(), 0.5);
    // Alternating values never repeat back-to-back.
    EXPECT_EQ(prof.lvpHits(), 0u);
    EXPECT_EQ(oracle.lastHits, 0u);
    // Smallest-value tie-break makes the oracle's top deterministic.
    EXPECT_EQ(oracle.topValue(), 5u);
}

TEST(OracleBoundsTest, ZeroHeavyStreamCountsZerosExactly)
{
    ValueProfile prof;
    OracleEntity oracle;
    feed(prof, oracle, {0, 0, 7, 0, 7, 0, 0});
    expectBounds(prof, oracle);
    EXPECT_EQ(oracle.zeros, 5u);
    EXPECT_DOUBLE_EQ(oracle.zeroFraction(), 5.0 / 7.0);
    EXPECT_DOUBLE_EQ(prof.zeroFraction(), 5.0 / 7.0);
}

TEST(OracleBoundsTest, AdversarialThrashingUndercountsButNeverInvents)
{
    // A 4-entry pure-LFU table: residents 1..4 establish count 2
    // each, then 50 and 60 alternate. Each newcomer lands in the
    // slot the other newcomer just reclaimed, so both end with count
    // 1 while the oracle counts 10 each — lossy accounting at its
    // worst, but still a lower bound of the truth.
    ProfileConfig cfg;
    cfg.tnv.policy = TnvConfig::Policy::PureLfu;
    cfg.tnv.capacity = 4;
    ValueProfile prof(cfg);
    OracleEntity oracle;

    std::vector<std::uint64_t> stream = {1, 2, 3, 4, 1, 2, 3, 4};
    for (int i = 0; i < 10; ++i) {
        stream.push_back(50);
        stream.push_back(60);
    }
    feed(prof, oracle, stream);
    expectBounds(prof, oracle);

    EXPECT_EQ(oracle.countFor(50), 10u);
    EXPECT_EQ(oracle.countFor(60), 10u);
    const std::uint64_t seen50 = prof.tnv().countFor(50);
    const std::uint64_t seen60 = prof.tnv().countFor(60);
    // At most one of the thrashing pair is resident, with a count far
    // below the truth; the old residents keep their exact counts.
    EXPECT_LT(seen50 + seen60, 10u);
    for (std::uint64_t v = 1; v <= 4; ++v)
        if (prof.tnv().countFor(v) != 0)
            EXPECT_EQ(prof.tnv().countFor(v), 2u);
    // The exact side counters are untouched by the thrashing.
    EXPECT_EQ(prof.distinct(), oracle.distinct());
    EXPECT_EQ(prof.executions(), oracle.total);
}

TEST(OracleBoundsTest, SteadyClearRecoversFromPhaseChange)
{
    // Same adversarial shape, but with the paper's clearing policy and
    // a short interval: after the bottom half is cleared, one of the
    // newly-hot values can establish a real count.
    ProfileConfig cfg;
    cfg.tnv.capacity = 4;
    cfg.tnv.clearInterval = 8;
    ValueProfile prof(cfg);
    OracleEntity oracle;

    std::vector<std::uint64_t> stream = {1, 2, 3, 4, 1, 2, 3, 4};
    for (int i = 0; i < 40; ++i)
        stream.push_back(50);
    feed(prof, oracle, stream);

    // Containment still holds, and the hot newcomer now dominates.
    for (const auto &e : prof.tnv().raw())
        EXPECT_LE(e.count, oracle.countFor(e.value));
    EXPECT_GT(prof.tnv().countFor(50), 20u);
    EXPECT_EQ(prof.tnv().top()->value, 50u);
}

} // namespace
