/**
 * @file
 * Tests of the seeded program generator and the seed plumbing
 * (src/check/generator.hpp, src/check/seed.hpp): determinism, the
 * termination/validity guarantees the differential harness relies on,
 * and the VP_TEST_SEED override.
 */

#include <cstdlib>

#include <gtest/gtest.h>

#include "check/generator.hpp"
#include "check/seed.hpp"
#include "support/rng.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

using namespace vp::check;

namespace
{

/** RAII VP_TEST_SEED override, restored on scope exit. */
class ScopedSeedEnv
{
  public:
    explicit ScopedSeedEnv(const char *value)
    {
        const char *old = std::getenv("VP_TEST_SEED");
        hadOld = old != nullptr;
        if (hadOld)
            oldValue = old;
        setenv("VP_TEST_SEED", value, 1);
    }
    ~ScopedSeedEnv()
    {
        if (hadOld)
            setenv("VP_TEST_SEED", oldValue.c_str(), 1);
        else
            unsetenv("VP_TEST_SEED");
    }

  private:
    bool hadOld = false;
    std::string oldValue;
};

TEST(GeneratorTest, SameSeedSameSource)
{
    EXPECT_EQ(generateSource(42), generateSource(42));
    EXPECT_NE(generateSource(42), generateSource(43));
}

TEST(GeneratorTest, GeneratedProgramsAssembleValidateAndExit)
{
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        SCOPED_TRACE(seedMessage(seed));
        const auto gen = generate(seed);
        EXPECT_EQ(gen.seed, seed);
        EXPECT_EQ(gen.program.validate(), "");

        // The source must reassemble to the shipped program — the
        // replay-bundle contract.
        vpsim::Program again;
        std::string err;
        ASSERT_TRUE(vpsim::tryAssemble(gen.source, again, err)) << err;
        EXPECT_EQ(again.code.size(), gen.program.code.size());

        // Termination guarantee: a generous budget, a clean exit 0.
        vpsim::Cpu cpu(gen.program,
                       vpsim::CpuConfig{1u << 20, 16'000'000});
        const auto res = cpu.run();
        EXPECT_TRUE(res.exited()) << gen.source;
        EXPECT_EQ(res.exitCode, 0);
    }
}

TEST(GeneratorTest, StraightLineEnvelopeHasNoLoopsCallsOrMemory)
{
    const auto cfg = GenConfig::straightLine();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        SCOPED_TRACE(seedMessage(seed));
        const auto gen = generate(seed, cfg);
        EXPECT_EQ(gen.source.find("_loop"), std::string::npos);
        EXPECT_EQ(gen.source.find("(s0)"), std::string::npos);
        EXPECT_EQ(gen.source.find(".data"), std::string::npos);
        // Exactly one callee procedure: f0 exists, f1 does not.
        EXPECT_NE(gen.source.find(".proc f0"), std::string::npos);
        EXPECT_EQ(gen.source.find(".proc f1"), std::string::npos);
    }
}

TEST(GeneratorTest, RawProgramsRespectSizeBounds)
{
    vp::Rng rng(7);
    for (int i = 0; i < 50; ++i) {
        const auto prog = randomRawProgram(rng, 4, 63);
        EXPECT_GE(prog.code.size(), 4u);
        EXPECT_LE(prog.code.size(), 63u);
    }
}

TEST(GeneratorTest, MutateAndGarbageAreDeterministicPerSeed)
{
    const std::string base = generateSource(3);
    vp::Rng a(11), b(11);
    EXPECT_EQ(mutateSource(a, base, 5), mutateSource(b, base, 5));
    vp::Rng c(12), d(12);
    EXPECT_EQ(garbageSource(c, 200), garbageSource(d, 200));
}

TEST(SeedTest, TrialSeedReplaysAsShiftedBase)
{
    for (std::uint64_t base : {1ull, 42ull, 0xDEADBEEFull}) {
        for (std::uint64_t i = 0; i < 20; ++i)
            EXPECT_EQ(trialSeed(base, i), trialSeed(base + i, 0));
    }
    // Adjacent trials must not share a generator seed.
    EXPECT_NE(trialSeed(1, 0), trialSeed(1, 1));
}

TEST(SeedTest, EnvOverrideWinsOverFallback)
{
    {
        ScopedSeedEnv env("12345");
        EXPECT_EQ(testSeed(7), 12345u);
    }
    {
        ScopedSeedEnv env("0x10");
        EXPECT_EQ(testSeed(7), 16u);
    }
    // Fallback only applies when the variable is absent — skip the
    // assertion when the developer is running under an override.
    if (!std::getenv("VP_TEST_SEED"))
        EXPECT_EQ(testSeed(7), 7u);
}

TEST(SeedTest, MalformedOverrideIsFatal)
{
    ScopedSeedEnv env("not-a-seed");
    EXPECT_EXIT(testSeed(7), ::testing::ExitedWithCode(1),
                "VP_TEST_SEED");
}

TEST(SeedTest, SeedMessageNamesTheVariable)
{
    const std::string msg = seedMessage(99);
    EXPECT_NE(msg.find("VP_TEST_SEED=99"), std::string::npos);
}

} // namespace
