/**
 * @file
 * Determinism tests for the hostile-world soak harness: the same seed
 * must derive the identical fault schedule, and two full soak runs of
 * the same seed must converge to byte-identical root aggregates even
 * though fault timing interacts with real process scheduling.
 *
 * The binaries under test are the real vpd/vpcheck executables, baked
 * in at configure time (VP_VPD_BIN / VP_VPCHECK_BIN).
 */

#include <gtest/gtest.h>

#include "check/seed.hpp"
#include "check/soak.hpp"

using namespace vp::check;

namespace
{

SoakConfig
tinyConfig(std::uint64_t seed)
{
    SoakConfig cfg;
    cfg.seed = seed;
    cfg.levels = 2;
    cfg.producers = 3;
    cfg.leaves = 2;
    cfg.deltasPerProducer = 2;
    cfg.faultEvents = 3;
    cfg.eventGapMs = 40;
    cfg.producerDwellMs = 15;
    cfg.vpdPath = VP_VPD_BIN;
    cfg.vpcheckPath = VP_VPCHECK_BIN;
    return cfg;
}

TEST(SoakTest, SameSeedDerivesIdenticalSchedule)
{
    const std::uint64_t seed = testSeed(11);
    SCOPED_TRACE(seedMessage(seed));
    const SoakConfig cfg = tinyConfig(seed);
    const std::string a = buildSoakSchedule(cfg).text();
    const std::string b = buildSoakSchedule(cfg).text();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    // Every enabled fault class must be reachable from some seed —
    // scan a few: the schedule generator must emit each kind.
    bool saw_kill = false, saw_daemon = false, saw_corrupt = false;
    for (std::uint64_t s = 1; s <= 32; ++s) {
        SoakConfig probe = tinyConfig(s);
        probe.faultEvents = 16;
        for (const auto &e : buildSoakSchedule(probe).events) {
            saw_kill |= e.kind == SoakEvent::Kind::KillProducer;
            saw_daemon |= e.kind == SoakEvent::Kind::KillDaemon;
            saw_corrupt |= e.kind == SoakEvent::Kind::CorruptFrame;
        }
    }
    EXPECT_TRUE(saw_kill && saw_daemon && saw_corrupt);
}

TEST(SoakTest, DisabledFaultClassesNeverScheduled)
{
    SoakConfig cfg = tinyConfig(5);
    cfg.killDaemons = false;
    cfg.corruptFrames = false;
    cfg.faultEvents = 12;
    for (const auto &e : buildSoakSchedule(cfg).events)
        EXPECT_EQ(e.kind, SoakEvent::Kind::KillProducer);
    cfg.killProducers = false;
    EXPECT_TRUE(buildSoakSchedule(cfg).events.empty());
}

TEST(SoakTest, ProducerDeltasAreDeterministic)
{
    const std::uint64_t seed = testSeed(3);
    SCOPED_TRACE(seedMessage(seed));
    const auto a = soakProducerDeltas(seed, 1, 3);
    const auto b = soakProducerDeltas(seed, 1, 3);
    ASSERT_EQ(a.size(), 3u);
    ASSERT_EQ(b.size(), 3u);
    for (unsigned k = 0; k < 3; ++k) {
        EXPECT_EQ(a[k].producerId, 2u);
        EXPECT_EQ(a[k].seq, k + 1);
        EXPECT_FALSE(a[k].entities.entities.empty());
        const auto fa = vp::serve::encodeDelta(a[k]);
        const auto fb = vp::serve::encodeDelta(b[k]);
        EXPECT_EQ(fa, fb) << "delta " << k << " differs between runs";
    }
    // Different producers must profile different programs.
    const auto c = soakProducerDeltas(seed, 2, 1);
    EXPECT_NE(vp::serve::encodeDelta(a[0]), vp::serve::encodeDelta(c[0]));
}

TEST(SoakTest, TinySoakIsDeterministicAcrossRuns)
{
    const std::uint64_t seed = testSeed(7);
    SCOPED_TRACE(seedMessage(seed));
    const SoakConfig cfg = tinyConfig(seed);

    const SoakResult first = runSoak(cfg);
    ASSERT_TRUE(first.ok) << first.detail
                          << " (artifacts: " << first.workDir << ")";
    EXPECT_FALSE(first.rootText.empty());

    const SoakResult second = runSoak(cfg);
    ASSERT_TRUE(second.ok) << second.detail
                           << " (artifacts: " << second.workDir
                           << ")";
    EXPECT_EQ(first.scheduleText, second.scheduleText)
        << "same seed derived different fault schedules";
    EXPECT_EQ(first.rootText, second.rootText)
        << "same seed converged to different root aggregates";
}

} // namespace
