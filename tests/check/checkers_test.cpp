/**
 * @file
 * Tests of the differential checkers themselves: they pass on healthy
 * code across seeded random programs, the mutation canary (a
 * deliberately broken TnvTable::merge) is detected and shrinks to a
 * small replayable program, and the shrinker preserves failure.
 */

#include <gtest/gtest.h>

#include "check/checkers.hpp"
#include "check/generator.hpp"
#include "check/seed.hpp"
#include "check/shrink.hpp"
#include "core/tnv_table.hpp"
#include "vpsim/assembler.hpp"

using namespace vp::check;

namespace
{

/** RAII guard: the canary never leaks into other tests. */
class ScopedMergeCanary
{
  public:
    ScopedMergeCanary() { core::TnvTable::setMergeCanaryForTest(true); }
    ~ScopedMergeCanary()
    {
        core::TnvTable::setMergeCanaryForTest(false);
    }
};

TEST(CheckersTest, NamesRoundTrip)
{
    for (const auto c : allCheckers()) {
        Checker parsed;
        ASSERT_TRUE(parseCheckerName(checkerName(c), parsed));
        EXPECT_EQ(parsed, c);
    }
    Checker ignored;
    EXPECT_FALSE(parseCheckerName("bogus", ignored));
    EXPECT_FALSE(parseCheckerName("all", ignored));
}

TEST(CheckersTest, AllCheckersPassOnSeededPrograms)
{
    const std::uint64_t base = testSeed(1);
    SCOPED_TRACE(seedMessage(base));
    for (std::uint64_t i = 0; i < 5; ++i) {
        const auto gen = generate(trialSeed(base, i));
        for (const auto c : allCheckers()) {
            const auto res = runChecker(c, gen.program);
            EXPECT_TRUE(res.ok)
                << "[" << checkerName(c) << "] seed " << (base + i)
                << ": " << res.detail;
        }
    }
}

TEST(CheckersTest, MergeCanaryIsDetected)
{
    const std::uint64_t base = testSeed(1);
    SCOPED_TRACE(seedMessage(base));

    // Healthy merge on the probe program first.
    const auto gen = generate(trialSeed(base, 0));
    ASSERT_TRUE(checkShardMerge(gen.program).ok);

    ScopedMergeCanary canary;
    bool caught = false;
    for (std::uint64_t i = 0; i < 20 && !caught; ++i)
        caught = !checkShardMerge(generate(trialSeed(base, i)).program)
                      .ok;
    EXPECT_TRUE(caught)
        << "a merge that drops counts survived 20 random programs";
}

TEST(CheckersTest, CanaryFailureShrinksToSmallerStillFailingProgram)
{
    const std::uint64_t base = testSeed(1);
    SCOPED_TRACE(seedMessage(base));
    ScopedMergeCanary canary;

    // Find a failing program (the canary test above shows one exists).
    std::string failing;
    for (std::uint64_t i = 0; i < 20 && failing.empty(); ++i) {
        const auto gen = generate(trialSeed(base, i));
        if (!checkShardMerge(gen.program).ok)
            failing = gen.source;
    }
    ASSERT_FALSE(failing.empty());

    const auto still_fails = [](const std::string &src) {
        vpsim::Program prog;
        std::string err;
        if (!vpsim::tryAssemble(src, prog, err) ||
            !prog.validate().empty())
            return false;
        return !checkShardMerge(prog).ok;
    };
    const auto shrunk = shrinkSource(failing, still_fails, 300);
    EXPECT_LT(shrunk.finalLines, shrunk.originalLines);
    EXPECT_TRUE(still_fails(shrunk.source))
        << "shrinking lost the failure:\n" << shrunk.source;
}

TEST(CheckersTest, CheckersStillPassWithMoreShardsAndJobs)
{
    const std::uint64_t base = testSeed(5);
    SCOPED_TRACE(seedMessage(base));
    CheckOptions opts;
    opts.shards = 5;
    opts.mergeJobs = 2;
    const auto gen = generate(trialSeed(base, 0));
    const auto res = checkShardMerge(gen.program, opts);
    EXPECT_TRUE(res.ok) << res.detail;
}

TEST(ShrinkTest, RemovesIrrelevantLines)
{
    // Failure criterion: the source still contains the magic line.
    const std::string source = "alpha\nbeta\nMAGIC\ngamma\ndelta\n";
    const auto still_fails = [](const std::string &s) {
        return s.find("MAGIC") != std::string::npos;
    };
    const auto res = shrinkSource(source, still_fails, 100);
    EXPECT_EQ(res.source, "MAGIC\n");
    EXPECT_EQ(res.finalLines, 1u);
    EXPECT_EQ(res.originalLines, 5u);
    EXPECT_TRUE(res.shrank());
}

TEST(ShrinkTest, BudgetZeroLeavesSourceUntouched)
{
    const std::string source = "a\nb\n";
    const auto res = shrinkSource(
        source, [](const std::string &) { return true; }, 0);
    EXPECT_EQ(res.source, source);
    EXPECT_EQ(res.attempts, 0u);
}

} // namespace
