/**
 * @file
 * The online adaptive specialization engine: convergence-driven
 * install, guard accounting, phase-change deoptimization and
 * re-specialization, blacklisting after repeated deopts, and the
 * fleet-PGO export/preseed round trip. Every test also asserts the
 * transparency contract — the adaptive leg must print exactly what
 * plain interpretation prints.
 */

#include <gtest/gtest.h>

#include "adapt/engine.hpp"
#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "support/strings.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

namespace
{

/**
 * A guest whose hot kernel(a0=config, a1=i) re-validates its config
 * argument through a foldable arithmetic chain before a never-taken
 * slow path, then does per-call payload work that clobbers the chain
 * temporaries (so the bound clone keeps only the payload).
 *
 * The config value is a function of the call index: phase
 * `i / phase_len`, cycling through `cycle` distinct values. cycle=1
 * is a perfectly invariant argument; larger cycles shift phase every
 * `phase_len` calls.
 */
std::string
phasedProgram(unsigned calls, unsigned phase_len, unsigned cycle)
{
    return vp::format(R"(
    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    li   s0, 0                 # i
    li   s1, %u                # calls
    li   s5, %u                # phase length
    li   s6, %u                # value cycle
    li   s3, 0                 # checksum
loop:
    bge  s0, s1, done
    div  t0, s0, s5
    rem  t1, t0, s6
    muli t2, t1, 1001
    addi a0, t2, 7             # config for this phase
    mov  a1, s0
    call kernel
    add  s3, s3, a0
    addi s0, s0, 1
    jmp  loop
done:
    mov  a0, s3
    syscall puti
    li   a0, 0
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

    .proc kernel args=2
kernel:
    # config re-validation: two routes to the same value, compared
    mul  t0, a0, a0
    xori t1, t0, 85
    add  t2, t1, a0
    muli t3, t2, 3
    srli t4, t3, 2
    muli t5, a0, 3
    muli t6, a0, 5
    add  t5, t5, t6
    muli t6, a0, 8
    sub  t5, t5, t6            # == 0 for every a0
    add  t5, t5, t4
    bne  t4, t5, slow
    # payload on the call index; redefines every chain temporary
    mul  t0, a1, a1
    xori t1, a1, 9
    add  t2, t0, t1
    andi t3, t2, 63
    add  t4, t3, a1
    xor  t5, t4, a1
    mov  t6, t5
    add  a0, t5, a0
    ret
slow:
    muli t0, a0, 13
    mov  a0, t0
    ret
    .endp
)",
                      calls, phase_len, cycle);
}

/** Aggressive test shape: converge within ~30 calls, deopt within 8
 *  misses, so short programs exercise the whole state machine. */
adapt::AdaptConfig
smallConfig(unsigned blacklist_after = 100)
{
    adapt::AdaptConfig cfg;
    cfg.invariance = 0.60;
    cfg.minCalls = 8;
    cfg.deoptWindow = 8;
    cfg.deoptMissRate = 0.5;
    cfg.blacklistAfter = blacklist_after;
    cfg.sampler.burstSize = 6;
    cfg.sampler.initialSkip = 2;
    cfg.sampler.convergeRounds = 2;
    cfg.sampler.maxSkip = 32;
    cfg.sampler.retriggerDelta = 0.05;
    return cfg;
}

struct Outcome
{
    std::string plainOut;
    std::string adaptOut;
    std::uint64_t installs = 0;
    std::uint64_t deopts = 0;
    std::uint64_t blacklists = 0;
    std::uint64_t respecs = 0;
    std::uint64_t guardHits = 0;
    std::uint64_t guardMisses = 0;
    std::uint64_t plainInsts = 0;
    std::uint64_t adaptInsts = 0;
    bool kernelBlacklisted = false;
    bool kernelEverInstalled = false;
};

Outcome
runBoth(const std::string &source, const adapt::AdaptConfig &cfg)
{
    Outcome out;

    vpsim::Program plain = vpsim::assemble(source);
    vpsim::Cpu pcpu(plain);
    const auto pres = pcpu.run();
    EXPECT_TRUE(pres.exited());
    out.plainOut = pcpu.output();
    out.plainInsts = pres.dynamicInsts;

    vpsim::Program aprog = vpsim::assemble(source);
    instr::Image image(aprog);
    instr::InstrumentManager manager(image);
    vpsim::Cpu acpu(aprog);
    adapt::AdaptiveEngine engine(aprog, manager, acpu, cfg);
    manager.attach(acpu);
    const auto ares = acpu.run();
    EXPECT_TRUE(ares.exited());
    out.adaptOut = acpu.output();
    out.adaptInsts = ares.dynamicInsts;

    out.installs = engine.installs();
    out.deopts = engine.deopts();
    out.blacklists = engine.blacklists();
    out.respecs = engine.respecializations();
    out.guardHits = engine.guardHits();
    out.guardMisses = engine.guardMisses();
    if (const auto *site = engine.siteFor("kernel")) {
        out.kernelBlacklisted = site->blacklisted;
        out.kernelEverInstalled = site->everInstalled;
    }
    return out;
}

TEST(AdaptiveEngine, InstallsOnInvariantArgumentAndStaysTransparent)
{
    const Outcome out =
        runBoth(phasedProgram(400, 400, 1), smallConfig());
    EXPECT_EQ(out.adaptOut, out.plainOut);
    EXPECT_EQ(out.installs, 1u);
    EXPECT_EQ(out.deopts, 0u);
    EXPECT_EQ(out.guardMisses, 0u);
    EXPECT_GT(out.guardHits, 300u);
    // The specialized calls must actually be cheaper.
    EXPECT_LT(out.adaptInsts, out.plainInsts);
}

TEST(AdaptiveEngine, PhaseShiftDeoptsReprofilesAndRespecializes)
{
    // Three phases, two value changes. The sampler's retrigger (or
    // the guard miss-rate window, whichever notices first) must tear
    // the stale clone out, re-profile, and re-install for the new
    // value — and do it once per change, not once per miss: a deopt
    // storm would show up as deopts far above the change count.
    const Outcome out =
        runBoth(phasedProgram(1200, 400, 3), smallConfig());
    EXPECT_EQ(out.adaptOut, out.plainOut);
    EXPECT_GE(out.installs, 2u);
    EXPECT_GE(out.respecs, 1u);
    EXPECT_GE(out.deopts, 1u);
    EXPECT_LE(out.deopts, 2u); // bounded: at most one per phase change
    EXPECT_EQ(out.blacklists, 0u);
    // Most calls in each phase still run specialized.
    EXPECT_GT(out.guardHits, 900u);
    EXPECT_LT(out.adaptInsts, out.plainInsts);
}

TEST(AdaptiveEngine, RepeatedFlappingHitsTheBlacklist)
{
    // The value flips every 100 calls, far faster than specialization
    // pays off. After K=2 deopts the site must be blacklisted: no
    // further installs, no further deopts, guard gone for good.
    const Outcome out =
        runBoth(phasedProgram(1500, 100, 2), smallConfig(2));
    EXPECT_EQ(out.adaptOut, out.plainOut);
    EXPECT_EQ(out.deopts, 2u);
    EXPECT_EQ(out.blacklists, 1u);
    EXPECT_EQ(out.installs, 2u);
    EXPECT_EQ(out.respecs, 1u);
    EXPECT_TRUE(out.kernelBlacklisted);
}

TEST(AdaptiveEngine, ExportedProfilesPreseedAFreshEngine)
{
    const std::string source = phasedProgram(400, 400, 1);
    const adapt::AdaptConfig cfg = smallConfig();

    // First replica: learn online and export the tagged aggregate.
    core::ProfileSnapshot snap;
    {
        vpsim::Program prog = vpsim::assemble(source);
        instr::Image image(prog);
        instr::InstrumentManager manager(image);
        vpsim::Cpu cpu(prog);
        adapt::AdaptiveEngine engine(prog, manager, cpu, cfg);
        manager.attach(cpu);
        ASSERT_TRUE(cpu.run().exited());
        ASSERT_GE(engine.installs(), 1u);
        engine.exportProfiles(snap);
    }
    ASSERT_GE(snap.size(), 1u);
    for (const auto &[key, summary] : snap.entities)
        EXPECT_TRUE(key >> 63) << "exported key is not kind-tagged";

    // Second replica: pre-seed before the first guest instruction.
    vpsim::Program prog = vpsim::assemble(source);
    instr::Image image(prog);
    instr::InstrumentManager manager(image);
    vpsim::Cpu cpu(prog);
    adapt::AdaptiveEngine engine(prog, manager, cpu, cfg);
    EXPECT_EQ(engine.preseedFrom(snap), 1u);
    manager.attach(cpu);
    ASSERT_TRUE(cpu.run().exited());

    // The install landed up front: every kernel call went through the
    // guard, with none spent waiting for the sampler to converge.
    EXPECT_GE(engine.installs(), 1u);
    EXPECT_EQ(engine.guardHits() + engine.guardMisses(), 400u);
    EXPECT_EQ(engine.guardMisses(), 0u);

    vpsim::Program plain = vpsim::assemble(source);
    vpsim::Cpu pcpu(plain);
    ASSERT_TRUE(pcpu.run().exited());
    EXPECT_EQ(cpu.output(), pcpu.output());
}

TEST(AdaptiveEngine, EntityKeysAreTaggedAndRoundTrip)
{
    const std::uint64_t key =
        adapt::AdaptiveEngine::entityKey(0x1234, 3);
    EXPECT_EQ(key >> 63, 1u);
    EXPECT_EQ((key >> 8) & 0xffffffffull, 0x1234u);
    EXPECT_EQ(key & 0xff, 3u);
    // Distinct args and entries yield distinct keys.
    EXPECT_NE(key, adapt::AdaptiveEngine::entityKey(0x1234, 4));
    EXPECT_NE(key, adapt::AdaptiveEngine::entityKey(0x1235, 3));
}

} // namespace
