/**
 * @file
 * Tests for the ATOM-like Image queries.
 */

#include <gtest/gtest.h>

#include "instrument/image.hpp"
#include "vpsim/assembler.hpp"

using namespace vpsim;

namespace
{

const char *const sampleSrc = R"(
    .data
buf:    .space 16
    .text
    .proc main args=0
main:
    la   t0, buf
    ld   t1, 0(t0)
    addi t1, t1, 1
    st   t1, 0(t0)
    call f
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    add  a0, a0, a1
    ret
    .endp
)";

class ImageTest : public ::testing::Test
{
  protected:
    ImageTest() : prog(assemble(sampleSrc)), img(prog) {}
    Program prog;
    instr::Image img;
};

TEST_F(ImageTest, ProceduresListed)
{
    ASSERT_EQ(img.procedures().size(), 2u);
    EXPECT_EQ(img.procedures()[0].name, "main");
    EXPECT_EQ(img.procedures()[1].name, "f");
    EXPECT_EQ(img.procedures()[1].numArgs, 2u);
}

TEST_F(ImageTest, ProcAtEntry)
{
    const Procedure *f = prog.findProc("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(img.procAtEntry(f->entry), f);
    EXPECT_EQ(img.procAtEntry(f->entry + 1), nullptr);
}

TEST_F(ImageTest, ProcContaining)
{
    const Procedure *f = prog.findProc("f");
    EXPECT_EQ(img.procContaining(f->entry + 1), f);
}

TEST_F(ImageTest, CfgCachedPerProcedure)
{
    const Procedure *main_proc = prog.findProc("main");
    const Cfg &a = img.cfg(*main_proc);
    const Cfg &b = img.cfg(*main_proc);
    EXPECT_EQ(&a, &b); // same cached object
    EXPECT_GE(a.blocks().size(), 2u);
}

TEST_F(ImageTest, RegWritingInsts)
{
    const auto pcs = img.regWritingInsts();
    // la, ld, addi, call (jal links ra), li a0, add in f
    EXPECT_EQ(pcs.size(), 6u);
    for (auto pc : pcs)
        EXPECT_TRUE(writesDest(prog.code[pc]));
}

TEST_F(ImageTest, LoadInsts)
{
    const auto pcs = img.loadInsts();
    ASSERT_EQ(pcs.size(), 1u);
    EXPECT_EQ(prog.code[pcs[0]].op, Opcode::LD);
}

TEST_F(ImageTest, InstsWherePredicate)
{
    const auto stores = img.instsWhere(
        [](std::uint32_t, const Inst &inst) {
            return isStore(inst.op);
        });
    EXPECT_EQ(stores.size(), 1u);
}

} // namespace
