/**
 * @file
 * Tests for the instrumentation manager's event routing.
 */

#include <gtest/gtest.h>

#include "instrument/manager.hpp"
#include "vpsim/assembler.hpp"

using namespace vpsim;

namespace
{

struct CountingTool : instr::Tool
{
    std::uint64_t instValues = 0, instNoValues = 0;
    std::uint64_t loads = 0, stores = 0, calls = 0;
    std::uint64_t lastValue = 0;
    std::string lastProc;
    std::uint64_t lastArg0 = 0;
    std::uint32_t lastCaller = 0;

    void
    onInstValue(std::uint32_t, const Inst &, std::uint64_t v) override
    {
        ++instValues;
        lastValue = v;
    }

    void
    onInstNoValue(std::uint32_t, const Inst &) override
    {
        ++instNoValues;
    }

    void
    onLoadValue(std::uint32_t, std::uint64_t, unsigned,
                std::uint64_t) override
    {
        ++loads;
    }

    void
    onStoreValue(std::uint32_t, std::uint64_t, unsigned,
                 std::uint64_t) override
    {
        ++stores;
    }

    void
    onProcCall(const Procedure &proc, const std::uint64_t *args,
               std::uint32_t caller_pc) override
    {
        ++calls;
        lastProc = proc.name;
        lastArg0 = args[0];
        lastCaller = caller_pc;
    }
};

const char *const src = R"(
    .data
b:      .space 8
    .text
    .proc main args=0
main:
    li   t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    la   t1, b
    st   t0, 0(t1)
    ld   t2, 0(t1)
    li   a0, 9
    call f
    li   a0, 0
    syscall exit
    .endp
    .proc f args=1
f:
    addi a0, a0, 1
    ret
    .endp
)";

class ManagerTest : public ::testing::Test
{
  protected:
    ManagerTest()
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000})
    {
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    CountingTool tool;
};

TEST_F(ManagerTest, PerPcRoutingOnlyFiresForRoutedPc)
{
    // Instrument only the addi in the loop (pc 1).
    mgr.instrumentInst(1, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 3u); // loop ran 3 times
    EXPECT_EQ(tool.loads, 0u);
    EXPECT_EQ(tool.stores, 0u);
}

TEST_F(ManagerTest, NoValueCallbackForNonWritingInst)
{
    // Instrument the bnez (pc 2): it never writes a register.
    mgr.instrumentInst(2, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 0u);
    EXPECT_EQ(tool.instNoValues, 3u);
}

TEST_F(ManagerTest, GlobalLoadStoreRouting)
{
    mgr.instrumentLoads(&tool);
    mgr.instrumentStores(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.loads, 1u);
    EXPECT_EQ(tool.stores, 1u);
}

TEST_F(ManagerTest, CallRoutingResolvesProcedureAndArgs)
{
    mgr.instrumentCalls(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.calls, 1u);
    EXPECT_EQ(tool.lastProc, "f");
    EXPECT_EQ(tool.lastArg0, 9u);
    EXPECT_EQ(tool.lastCaller, 7u); // the `call f` instruction
}

TEST_F(ManagerTest, RemoveToolSilencesEverything)
{
    mgr.instrumentInst(1, &tool);
    mgr.instrumentLoads(&tool);
    mgr.instrumentStores(&tool);
    mgr.instrumentCalls(&tool);
    mgr.removeTool(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues + tool.loads + tool.stores + tool.calls,
              0u);
}

TEST_F(ManagerTest, MultipleToolsEachSeeEvents)
{
    CountingTool second;
    mgr.instrumentInst(1, &tool);
    mgr.instrumentInst(1, &second);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 3u);
    EXPECT_EQ(second.instValues, 3u);
}

TEST_F(ManagerTest, InstrumentInstsBatch)
{
    mgr.instrumentInsts(img.regWritingInsts(), &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_GT(tool.instValues, 5u);
}

TEST_F(ManagerTest, DetachStopsEvents)
{
    mgr.instrumentInst(1, &tool);
    mgr.attach(cpu);
    mgr.detach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 0u);
}

TEST_F(ManagerTest, ValuePassedIsArchitecturalResult)
{
    // pc 0 is li t0, 3
    mgr.instrumentInst(0, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 1u);
    EXPECT_EQ(tool.lastValue, 3u);
}

} // namespace
