/**
 * @file
 * Tests for the instrumentation manager's event routing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "check/generator.hpp"
#include "core/instruction_profiler.hpp"
#include "core/snapshot.hpp"
#include "instrument/manager.hpp"
#include "vpsim/assembler.hpp"

using namespace vpsim;

namespace
{

struct CountingTool : instr::Tool
{
    std::uint64_t instValues = 0, instNoValues = 0;
    std::uint64_t loads = 0, stores = 0, calls = 0;
    std::uint64_t lastValue = 0;
    std::string lastProc;
    std::uint64_t lastArg0 = 0;
    std::uint32_t lastCaller = 0;

    void
    onInstValue(std::uint32_t, const Inst &, std::uint64_t v) override
    {
        ++instValues;
        lastValue = v;
    }

    void
    onInstNoValue(std::uint32_t, const Inst &) override
    {
        ++instNoValues;
    }

    void
    onLoadValue(std::uint32_t, std::uint64_t, unsigned,
                std::uint64_t) override
    {
        ++loads;
    }

    void
    onStoreValue(std::uint32_t, std::uint64_t, unsigned,
                 std::uint64_t) override
    {
        ++stores;
    }

    void
    onProcCall(const Procedure &proc, const std::uint64_t *args,
               std::uint32_t caller_pc) override
    {
        ++calls;
        lastProc = proc.name;
        lastArg0 = args[0];
        lastCaller = caller_pc;
    }
};

const char *const src = R"(
    .data
b:      .space 8
    .text
    .proc main args=0
main:
    li   t0, 3
loop:
    addi t0, t0, -1
    bnez t0, loop
    la   t1, b
    st   t0, 0(t1)
    ld   t2, 0(t1)
    li   a0, 9
    call f
    li   a0, 0
    syscall exit
    .endp
    .proc f args=1
f:
    addi a0, a0, 1
    ret
    .endp
)";

class ManagerTest : public ::testing::Test
{
  protected:
    ManagerTest()
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000})
    {
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    CountingTool tool;
};

TEST_F(ManagerTest, PerPcRoutingOnlyFiresForRoutedPc)
{
    // Instrument only the addi in the loop (pc 1).
    mgr.instrumentInst(1, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 3u); // loop ran 3 times
    EXPECT_EQ(tool.loads, 0u);
    EXPECT_EQ(tool.stores, 0u);
}

TEST_F(ManagerTest, NoValueCallbackForNonWritingInst)
{
    // Instrument the bnez (pc 2): it never writes a register.
    mgr.instrumentInst(2, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 0u);
    EXPECT_EQ(tool.instNoValues, 3u);
}

TEST_F(ManagerTest, GlobalLoadStoreRouting)
{
    mgr.instrumentLoads(&tool);
    mgr.instrumentStores(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.loads, 1u);
    EXPECT_EQ(tool.stores, 1u);
}

TEST_F(ManagerTest, CallRoutingResolvesProcedureAndArgs)
{
    mgr.instrumentCalls(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.calls, 1u);
    EXPECT_EQ(tool.lastProc, "f");
    EXPECT_EQ(tool.lastArg0, 9u);
    EXPECT_EQ(tool.lastCaller, 7u); // the `call f` instruction
}

TEST_F(ManagerTest, RemoveToolSilencesEverything)
{
    mgr.instrumentInst(1, &tool);
    mgr.instrumentLoads(&tool);
    mgr.instrumentStores(&tool);
    mgr.instrumentCalls(&tool);
    mgr.removeTool(&tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues + tool.loads + tool.stores + tool.calls,
              0u);
}

TEST_F(ManagerTest, MultipleToolsEachSeeEvents)
{
    CountingTool second;
    mgr.instrumentInst(1, &tool);
    mgr.instrumentInst(1, &second);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 3u);
    EXPECT_EQ(second.instValues, 3u);
}

TEST_F(ManagerTest, InstrumentInstsBatch)
{
    mgr.instrumentInsts(img.regWritingInsts(), &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_GT(tool.instValues, 5u);
}

TEST_F(ManagerTest, DetachStopsEvents)
{
    mgr.instrumentInst(1, &tool);
    mgr.attach(cpu);
    mgr.detach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 0u);
}

TEST_F(ManagerTest, ValuePassedIsArchitecturalResult)
{
    // pc 0 is li t0, 3
    mgr.instrumentInst(0, &tool);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(tool.instValues, 1u);
    EXPECT_EQ(tool.lastValue, 3u);
}

// ---------------------------------------------------------------------
// Event-interest mask and per-pc filter
// ---------------------------------------------------------------------

TEST_F(ManagerTest, EventInterestTracksRegistrations)
{
    EXPECT_EQ(mgr.eventInterest(), 0u); // idle manager: native speed
    mgr.instrumentInst(1, &tool);
    EXPECT_EQ(mgr.eventInterest(), ExecListener::kInterestInst);
    mgr.instrumentLoads(&tool);
    mgr.instrumentStores(&tool);
    EXPECT_EQ(mgr.eventInterest(),
              ExecListener::kInterestInst | ExecListener::kInterestLoad |
                  ExecListener::kInterestStore);
    mgr.instrumentCalls(&tool);
    EXPECT_EQ(mgr.eventInterest(), ExecListener::kInterestAll);
    mgr.removeTool(&tool);
    EXPECT_EQ(mgr.eventInterest(), 0u);
}

TEST_F(ManagerTest, InstEventFilterMirrorsInstrumentedPcs)
{
    mgr.instrumentInst(1, &tool);
    mgr.instrumentInst(4, &tool);
    const std::uint8_t *filter = mgr.instEventFilter();
    ASSERT_NE(filter, nullptr);
    for (std::uint32_t pc = 0; pc < img.numInsts(); ++pc)
        EXPECT_EQ(filter[pc] != 0, pc == 1 || pc == 4) << "pc " << pc;
    mgr.removeTool(&tool);
    for (std::uint32_t pc = 0; pc < img.numInsts(); ++pc)
        EXPECT_EQ(filter[pc], 0) << "pc " << pc;
}

// ---------------------------------------------------------------------
// Batched vs routed delivery equivalence
// ---------------------------------------------------------------------

/**
 * Listener that receives events through the base ExecListener's
 * per-event replay (default onEvents) and forwards them to a manager's
 * fine-grained hooks — the pre-batching delivery path, preserved here
 * as a reference implementation.
 */
struct FineGrainedRelay : ExecListener
{
    explicit FineGrainedRelay(instr::InstrumentManager &m) : mgr(m) {}

    void
    onInst(std::uint32_t pc, const Inst &inst, bool wrote,
           std::uint64_t value) override
    {
        mgr.onInst(pc, inst, wrote, value);
    }

    void
    onLoad(std::uint32_t pc, std::uint64_t addr, unsigned size,
           std::uint64_t value) override
    {
        mgr.onLoad(pc, addr, size, value);
    }

    void
    onStore(std::uint32_t pc, std::uint64_t addr, unsigned size,
            std::uint64_t value) override
    {
        mgr.onStore(pc, addr, size, value);
    }

    void
    onCall(std::uint32_t caller_pc, std::uint32_t callee_entry,
           const std::uint64_t *arg_regs) override
    {
        mgr.onCall(caller_pc, callee_entry, arg_regs);
    }

    instr::InstrumentManager &mgr;
};

enum class Delivery
{
    SoleToolBlock, ///< one tool, wantsEventBlocks → onEventBlock
    GenericRouted, ///< second tool registered → per-event routing
    FineGrained,   ///< relay through the manager's per-event hooks
};

/** Profile `prog` via one delivery mechanism; return the snapshot. */
std::string
profileVia(const Program &prog, Delivery how, core::ProfileMode mode)
{
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, CpuConfig{1u << 16, 10'000'000});

    core::InstProfilerConfig cfg;
    cfg.mode = mode;
    core::InstructionProfiler prof(img, cfg);
    prof.profileAllWrites(mgr);

    instr::Tool dummy; // never fires; forces the generic routed path
    FineGrainedRelay relay(mgr);
    switch (how) {
      case Delivery::SoleToolBlock:
        mgr.attach(cpu);
        break;
      case Delivery::GenericRouted:
        mgr.instrumentCalls(&dummy);
        mgr.attach(cpu);
        break;
      case Delivery::FineGrained:
        cpu.addListener(&relay);
        break;
    }
    cpu.run();

    std::ostringstream os;
    core::ProfileSnapshot::fromInstructionProfiler(prof).save(os);
    return os.str();
}

class DeliveryEquivalence
    : public ::testing::TestWithParam<core::ProfileMode>
{
};

TEST_P(DeliveryEquivalence, SnapshotsIdenticalAcrossDeliveryPaths)
{
    // The contract behind the whole hot path: batching, sole-tool
    // block delivery, and the per-pc event filter are pure transport
    // optimizations. For generated programs the resulting profile
    // must be byte-identical however events travel.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        SCOPED_TRACE("generator seed " + std::to_string(seed));
        const auto gen = vp::check::generate(seed);
        const std::string block =
            profileVia(gen.program, Delivery::SoleToolBlock, GetParam());
        const std::string routed =
            profileVia(gen.program, Delivery::GenericRouted, GetParam());
        const std::string fine =
            profileVia(gen.program, Delivery::FineGrained, GetParam());
        EXPECT_EQ(block, routed);
        EXPECT_EQ(block, fine);
        EXPECT_FALSE(block.empty());
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, DeliveryEquivalence,
                         ::testing::Values(core::ProfileMode::Full,
                                           core::ProfileMode::Random,
                                           core::ProfileMode::Sampled));

} // namespace
