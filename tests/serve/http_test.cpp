/**
 * @file
 * The HTTP query & metrics plane, both layers:
 *
 *  - HttpRequestParser / serializeHttpResponse as pure byte-level
 *    units: byte-at-a-time feeding, pipelining, oversized and
 *    malformed heads, percent-decoding, keep-alive negotiation,
 *    Content-Length vs chunked framing;
 *  - a live VpdServer with the plane enabled: paging cursors that
 *    partition the aggregate exactly, /entity and /stats.json
 *    contents, error statuses, the slowloris 408, /watch wakeup on
 *    delta apply and /watch park timeout, keep-alive sessions.
 */

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/server.hpp"
#include "support/socket.hpp"

using namespace vp::serve;

namespace
{

// --- parser-level helpers ------------------------------------------------

HttpParseStatus
feedAll(HttpRequestParser &parser, const std::string &bytes,
        HttpRequest &req)
{
    parser.append(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                  bytes.size());
    std::string error;
    return parser.next(req, error);
}

// --- socket-level helpers ------------------------------------------------

int
connectTcp(const std::string &addr_text)
{
    vp::net::Address addr;
    std::string error;
    EXPECT_TRUE(vp::net::parseAddress(addr_text, addr, error)) << error;
    const int fd = vp::net::connectTo(addr, error);
    EXPECT_GE(fd, 0) << error;
    return fd;
}

void
sendAll(int fd, const std::string &bytes)
{
    std::size_t sent = 0;
    while (sent < bytes.size()) {
        const long n = ::send(fd, bytes.data() + sent,
                              bytes.size() - sent, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue;
        ASSERT_GT(n, 0) << std::strerror(errno);
        sent += static_cast<std::size_t>(n);
    }
}

/** Read until the peer closes. */
std::string
recvToEof(int fd)
{
    std::string out;
    char buf[4096];
    while (true) {
        const long n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
}

/** Read exactly one Content-Length-framed response (keep-alive). */
std::string
recvOneResponse(int fd)
{
    std::string out;
    char buf[4096];
    std::size_t need = std::string::npos;
    while (true) {
        if (need == std::string::npos) {
            const auto head_end = out.find("\r\n\r\n");
            if (head_end != std::string::npos) {
                const auto cl = out.find("Content-Length: ");
                EXPECT_NE(cl, std::string::npos) << out;
                need = head_end + 4 +
                       static_cast<std::size_t>(
                           std::atol(out.c_str() + cl + 16));
            }
        }
        if (need != std::string::npos && out.size() >= need)
            return out.substr(0, need);
        const long n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            return out;
        out.append(buf, static_cast<std::size_t>(n));
    }
}

int
statusOf(const std::string &reply)
{
    if (reply.rfind("HTTP/1.", 0) != 0 || reply.size() < 12)
        return -1;
    return std::atoi(reply.c_str() + 9);
}

std::string
bodyOf(const std::string &reply)
{
    const auto p = reply.find("\r\n\r\n");
    return p == std::string::npos ? "" : reply.substr(p + 4);
}

/** Blocking HTTP/1.0 GET (no chunking, close delimits the body). */
std::string
get(const std::string &addr, const std::string &target)
{
    const int fd = connectTcp(addr);
    sendAll(fd, "GET " + target + " HTTP/1.0\r\n\r\n");
    const std::string reply = recvToEof(fd);
    vp::net::closeFd(fd);
    return reply;
}

// --- a live daemon fixture ----------------------------------------------

struct LiveVpd
{
    ServerConfig cfg;
    std::unique_ptr<VpdServer> server;
    std::thread loop;
    std::string ingest;
    std::string http;

    explicit LiveVpd(HttpConfig http_cfg = HttpConfig{})
    {
        cfg.listenAddrs = {"127.0.0.1:0"};
        cfg.httpAddrs = {"127.0.0.1:0"};
        cfg.http = http_cfg;
        server = std::make_unique<VpdServer>(cfg);
        std::string error;
        if (!server->start(error))
            ADD_FAILURE() << error;
        ingest = server->boundAddresses().front().str();
        http = server->boundHttpAddresses().front().str();
        loop = std::thread([this] {
            std::string run_error;
            if (!server->run(run_error))
                ADD_FAILURE() << run_error;
        });
    }

    ~LiveVpd()
    {
        server->requestStop();
        loop.join();
    }

    /** Emit one snapshot as producer `id`, waiting for the ack. */
    void emit(std::uint64_t id, core::ProfileSnapshot snap)
    {
        EmitterConfig ecfg;
        ecfg.addr = ingest;
        ecfg.producerId = id;
        ProfileEmitter emitter(ecfg);
        emitter.emit(std::move(snap));
        EXPECT_TRUE(emitter.close());
    }
};

core::EntitySummary
makeSummary(std::uint64_t salt)
{
    core::EntitySummary s;
    s.totalExecutions = 100 + salt * 13;
    s.profiledExecutions = 90 + salt * 11;
    s.invTop = 1.0 / static_cast<double>(salt % 7 + 2);
    s.invAll = 0.25;
    s.lvp = 0.5;
    s.distinct = 1 + salt % 5;
    s.topValues = {{salt * 17 + 1, 60 + salt}};
    return s;
}

core::ProfileSnapshot
makeSnapshot(std::uint64_t first_key, unsigned entities,
             std::uint64_t salt)
{
    core::ProfileSnapshot snap;
    for (unsigned e = 0; e < entities; ++e)
        snap.entities[first_key + e] = makeSummary(salt + e);
    return snap;
}

} // namespace

// ---- parser units -------------------------------------------------------

TEST(HttpParser, ParsesOneByteAtATime)
{
    const std::string raw = "GET /top?n=25&by=invariance HTTP/1.1\r\n"
                            "Host: vpd\r\n"
                            "X-Weird:   spaced value  \r\n"
                            "\r\n";
    HttpRequestParser parser;
    HttpRequest req;
    std::string error;
    for (std::size_t i = 0; i < raw.size(); ++i) {
        const auto byte = static_cast<std::uint8_t>(raw[i]);
        parser.append(&byte, 1);
        const auto st = parser.next(req, error);
        if (i + 1 < raw.size())
            ASSERT_EQ(st, HttpParseStatus::NeedMore) << i;
        else
            ASSERT_EQ(st, HttpParseStatus::Ok);
    }
    EXPECT_EQ(req.method, "GET");
    EXPECT_EQ(req.path, "/top");
    EXPECT_EQ(req.param("n", ""), "25");
    EXPECT_EQ(req.param("by", ""), "invariance");
    EXPECT_EQ(req.headers.at("host"), "vpd");
    EXPECT_EQ(req.headers.at("x-weird"), "spaced value");
    EXPECT_TRUE(req.keepAlive);
    EXPECT_FALSE(parser.midRequest());
}

TEST(HttpParser, YieldsPipelinedRequestsInOrder)
{
    HttpRequestParser parser;
    HttpRequest req;
    ASSERT_EQ(feedAll(parser,
                      "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
                      req),
              HttpParseStatus::Ok);
    EXPECT_EQ(req.path, "/a");
    std::string error;
    ASSERT_EQ(parser.next(req, error), HttpParseStatus::Ok);
    EXPECT_EQ(req.path, "/b");
    ASSERT_EQ(parser.next(req, error), HttpParseStatus::NeedMore);
}

TEST(HttpParser, RejectsOversizedHeadAndStaysDead)
{
    HttpRequestParser parser(64);
    HttpRequest req;
    const std::string huge =
        "GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a');
    ASSERT_EQ(feedAll(parser, huge, req), HttpParseStatus::TooLarge);
    // The verdict is sticky even if a complete head arrives later.
    ASSERT_EQ(feedAll(parser, "\r\n\r\n", req),
              HttpParseStatus::TooLarge);
}

TEST(HttpParser, RejectsMalformedInput)
{
    {
        HttpRequestParser parser;
        HttpRequest req;
        EXPECT_EQ(feedAll(parser, "NONSENSE\r\n\r\n", req),
                  HttpParseStatus::Malformed);
    }
    {
        HttpRequestParser parser;
        HttpRequest req;
        EXPECT_EQ(feedAll(parser, "GET / HTTP/2.0\r\n\r\n", req),
                  HttpParseStatus::Malformed);
    }
    {
        HttpRequestParser parser;
        HttpRequest req; // bodies are not accepted on the query plane
        EXPECT_EQ(feedAll(parser,
                          "GET / HTTP/1.1\r\nContent-Length: 5\r\n"
                          "\r\nhello",
                          req),
                  HttpParseStatus::Malformed);
    }
    {
        HttpRequestParser parser;
        HttpRequest req; // a bad escape in the path poisons the request
        EXPECT_EQ(feedAll(parser, "GET /%zz HTTP/1.1\r\n\r\n", req),
                  HttpParseStatus::Malformed);
    }
}

TEST(HttpParser, NegotiatesKeepAlive)
{
    struct Case
    {
        const char *raw;
        bool keepAlive;
    };
    const Case cases[] = {
        {"GET / HTTP/1.1\r\n\r\n", true},
        {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
        {"GET / HTTP/1.0\r\n\r\n", false},
        {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
    };
    for (const auto &c : cases) {
        HttpRequestParser parser;
        HttpRequest req;
        ASSERT_EQ(feedAll(parser, c.raw, req), HttpParseStatus::Ok)
            << c.raw;
        EXPECT_EQ(req.keepAlive, c.keepAlive) << c.raw;
    }
}

TEST(HttpParser, PercentDecodes)
{
    std::string out;
    EXPECT_TRUE(percentDecode("/a%20b%2Fc", out));
    EXPECT_EQ(out, "/a b/c");
    EXPECT_TRUE(percentDecode("a+b", out, true));
    EXPECT_EQ(out, "a b");
    EXPECT_TRUE(percentDecode("a+b", out, false));
    EXPECT_EQ(out, "a+b");
    EXPECT_FALSE(percentDecode("bad%2", out));
    EXPECT_FALSE(percentDecode("bad%zz", out));
}

TEST(HttpSerialize, FramesWithContentLengthAndChunks)
{
    HttpConfig cfg;
    cfg.chunkThreshold = 16;
    cfg.chunkBytes = 8;
    HttpRequest req;
    req.method = "GET";
    req.minorVersion = 1;
    req.keepAlive = true;

    HttpResponse small;
    small.body = "tiny";
    const auto plain = serializeHttpResponse(req, small, cfg);
    const std::string plain_text(plain.begin(), plain.end());
    EXPECT_NE(plain_text.find("Content-Length: 4"), std::string::npos);
    EXPECT_NE(plain_text.find("Connection: keep-alive"),
              std::string::npos);
    EXPECT_EQ(plain_text.substr(plain_text.size() - 4), "tiny");

    HttpResponse big;
    big.body = std::string(20, 'x');
    const auto chunked = serializeHttpResponse(req, big, cfg);
    const std::string chunk_text(chunked.begin(), chunked.end());
    EXPECT_NE(chunk_text.find("Transfer-Encoding: chunked"),
              std::string::npos);
    EXPECT_NE(chunk_text.find("8\r\nxxxxxxxx\r\n"), std::string::npos);
    EXPECT_NE(chunk_text.find("4\r\nxxxx\r\n"), std::string::npos);
    EXPECT_NE(chunk_text.find("0\r\n\r\n"), std::string::npos);

    // HTTP/1.0 requests never get chunked framing.
    req.minorVersion = 0;
    req.keepAlive = false;
    const auto old = serializeHttpResponse(req, big, cfg);
    const std::string old_text(old.begin(), old.end());
    EXPECT_EQ(old_text.find("Transfer-Encoding"), std::string::npos);
    EXPECT_NE(old_text.find("Content-Length: 20"), std::string::npos);

    // HEAD gets the same headers and no body.
    req.method = "HEAD";
    req.minorVersion = 1;
    const auto head = serializeHttpResponse(req, big, cfg);
    const std::string head_text(head.begin(), head.end());
    EXPECT_NE(head_text.find("Content-Length: 20"), std::string::npos);
    EXPECT_EQ(head_text.find("xxxx"), std::string::npos);
}

// ---- end-to-end against a live daemon ----------------------------------

TEST(HttpServe, ServesStatusAndErrors)
{
    LiveVpd vpd;
    vpd.emit(1, makeSnapshot(100, 6, 1));

    const std::string metrics = get(vpd.http, "/metrics");
    EXPECT_EQ(statusOf(metrics), 200);
    EXPECT_NE(bodyOf(metrics).find("vp_serve_entities 6"),
              std::string::npos);
    EXPECT_NE(bodyOf(metrics).find("vp_producer_last_seq{producer="
                                   "\"1\"} 1"),
              std::string::npos);

    const std::string stats = get(vpd.http, "/stats.json");
    EXPECT_EQ(statusOf(stats), 200);
    EXPECT_NE(bodyOf(stats).find("\"entities\":6"), std::string::npos);
    EXPECT_NE(bodyOf(stats).find("\"producers\":1"),
              std::string::npos);

    const std::string producers = get(vpd.http, "/producers");
    EXPECT_EQ(statusOf(producers), 200);
    EXPECT_NE(bodyOf(producers).find("\"last_seq\":1"),
              std::string::npos);

    const std::string entity = get(vpd.http, "/entity/100");
    EXPECT_EQ(statusOf(entity), 200);
    EXPECT_NE(bodyOf(entity).find("\"key\":100"), std::string::npos);
    EXPECT_EQ(statusOf(get(vpd.http, "/entity/0x64")), 200);

    EXPECT_EQ(statusOf(get(vpd.http, "/entity/999")), 404);
    EXPECT_EQ(statusOf(get(vpd.http, "/entity/notakey")), 400);
    EXPECT_EQ(statusOf(get(vpd.http, "/nosuch")), 404);
    EXPECT_EQ(statusOf(get(vpd.http, "/top?n=0")), 400);
    EXPECT_EQ(statusOf(get(vpd.http, "/top?by=magic")), 400);
    EXPECT_EQ(statusOf(get(vpd.http, "/top?kind=banana")), 400);
    // The wire format has no entity-kind tag yet, so even well-formed
    // kind filters must be refused loudly instead of silently ignored
    // (a 200 carrying unfiltered entries would look like a filtered
    // reply to the caller).
    const std::string kinded = get(vpd.http, "/top?kind=load");
    EXPECT_EQ(statusOf(kinded), 400);
    EXPECT_NE(bodyOf(kinded).find("kind filtering requires wire v3"),
              std::string::npos);
    EXPECT_EQ(statusOf(get(vpd.http, "/top?kind=inst")), 400);
    // The do-nothing default stays accepted, spelled out or implied.
    EXPECT_EQ(statusOf(get(vpd.http, "/top?kind=any")), 200);
    EXPECT_EQ(statusOf(get(vpd.http, "/watch?since=bogus")), 400);

    const int fd = connectTcp(vpd.http);
    sendAll(fd, "POST /top HTTP/1.0\r\nContent-Length: 0\r\n\r\n");
    EXPECT_EQ(statusOf(recvToEof(fd)), 405);
    vp::net::closeFd(fd);
}

TEST(HttpServe, PagingCursorsPartitionTheAggregate)
{
    LiveVpd vpd;
    vpd.emit(1, makeSnapshot(1000, 23, 3));
    vpd.emit(2, makeSnapshot(1010, 23, 9)); // overlaps producer 1

    const core::ProfileSnapshot agg = vpd.server->aggregate();
    for (const char *by : {"count", "invariance"}) {
        std::set<std::uint64_t> seen;
        std::string cursor;
        while (true) {
            std::string target =
                std::string("/top?n=7&by=") + by;
            if (!cursor.empty())
                target += "&cursor=" + cursor;
            const std::string reply = get(vpd.http, target);
            ASSERT_EQ(statusOf(reply), 200) << target;
            const std::string body = bodyOf(reply);
            // Collect every "key":N of the page; they must be new.
            std::size_t pos = 0;
            while ((pos = body.find("\"key\":", pos)) !=
                   std::string::npos) {
                const std::uint64_t key = std::strtoull(
                    body.c_str() + pos + 6, nullptr, 10);
                EXPECT_TRUE(seen.insert(key).second)
                    << "duplicate key " << key << " (by=" << by << ")";
                pos += 6;
            }
            const auto next = body.find("\"next_cursor\":\"");
            if (next == std::string::npos)
                break;
            const auto start = next + 15;
            cursor = body.substr(start,
                                 body.find('"', start) - start);
        }
        // The union of all pages is exactly the aggregate.
        EXPECT_EQ(seen.size(), agg.size()) << "by=" << by;
        for (const auto &[key, summary] : agg.entities)
            EXPECT_TRUE(seen.count(key)) << key << " by=" << by;
    }
}

TEST(HttpServe, SlowlorisGets408)
{
    HttpConfig http;
    http.headerTimeoutMs = 60;
    LiveVpd vpd(http);

    const int fd = connectTcp(vpd.http);
    sendAll(fd, "GET /metrics HTTP/1.1\r\nX-Dribble: a"); // no end
    const std::string reply = recvToEof(fd); // server must kill us
    EXPECT_EQ(statusOf(reply), 408);
    vp::net::closeFd(fd);
}

TEST(HttpServe, OversizedHeadGets431)
{
    HttpConfig http;
    http.maxHeaderBytes = 256;
    LiveVpd vpd(http);

    const int fd = connectTcp(vpd.http);
    sendAll(fd, "GET / HTTP/1.1\r\nX-Pad: " +
                    std::string(1024, 'a') + "\r\n\r\n");
    EXPECT_EQ(statusOf(recvToEof(fd)), 431);
    vp::net::closeFd(fd);
}

TEST(HttpServe, WatchWakesOnDeltaApply)
{
    LiveVpd vpd;
    std::string reply;
    std::thread watcher([&] {
        reply = get(vpd.http, "/watch?since=0");
    });
    // Give the long-poll time to park, then apply a delta.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    vpd.emit(7, makeSnapshot(500, 3, 2));
    watcher.join();
    EXPECT_EQ(statusOf(reply), 200);
    EXPECT_NE(bodyOf(reply).find("\"changed\":true"),
              std::string::npos);
    EXPECT_NE(bodyOf(reply).find("\"id\":7"), std::string::npos);
}

TEST(HttpServe, WatchParkTimesOutUnchanged)
{
    HttpConfig http;
    http.watchTimeoutMs = 60;
    LiveVpd vpd(http);

    const auto before = std::chrono::steady_clock::now();
    const std::string reply = get(vpd.http, "/watch");
    const auto waited = std::chrono::steady_clock::now() - before;
    EXPECT_EQ(statusOf(reply), 200);
    EXPECT_NE(bodyOf(reply).find("\"changed\":false"),
              std::string::npos);
    EXPECT_GE(waited, std::chrono::milliseconds(40));
}

TEST(HttpServe, KeepAliveSessionServesSequentialRequests)
{
    LiveVpd vpd;
    vpd.emit(1, makeSnapshot(10, 2, 1));

    const int fd = connectTcp(vpd.http);
    sendAll(fd, "GET /producers HTTP/1.1\r\n\r\n");
    const std::string first = recvOneResponse(fd);
    EXPECT_EQ(statusOf(first), 200);
    EXPECT_NE(first.find("Connection: keep-alive"), std::string::npos);

    sendAll(fd, "GET /entity/10 HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string second = recvToEof(fd);
    EXPECT_EQ(statusOf(second), 200);
    EXPECT_NE(second.find("\"key\":10"), std::string::npos);
    vp::net::closeFd(fd);
}
