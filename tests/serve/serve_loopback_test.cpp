/**
 * @file
 * End-to-end tests of the profile-streaming service: concurrent
 * emitters through a live vpd daemon must aggregate byte-identically
 * to a serial merge; duplicate and out-of-order deltas are handled per
 * the delivery contract; corrupt bytes get an ERROR and never kill the
 * daemon; an unreachable daemon spills locally and the spill replays
 * losslessly; a full client queue applies backpressure.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"
#include "support/stats_registry.hpp"

using namespace vp::serve;

namespace
{

std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

/** Deterministic synthetic summary, parameterized so different
 *  (producer, entity) pairs disagree in every field. */
core::EntitySummary
makeSummary(std::uint64_t salt)
{
    core::EntitySummary s;
    s.totalExecutions = 100 + salt * 13;
    s.profiledExecutions = 90 + salt * 11;
    s.invTop = 1.0 / static_cast<double>(salt + 2);
    s.invAll = 0.5 / static_cast<double>(salt + 1);
    s.lvp = 0.25;
    s.zeroFraction = static_cast<double>(salt % 3) / 7.0;
    s.distinct = 1 + salt % 5;
    s.topValues = {{salt * 17 + 1, 60 + salt}, {salt, 30}};
    return s;
}

/** Producer k's delta stream: `deltas` snapshots with entity keys
 *  overlapping across producers (so the daemon really merges). */
std::vector<core::ProfileSnapshot>
producerDeltas(unsigned k, unsigned deltas)
{
    std::vector<core::ProfileSnapshot> out;
    for (unsigned d = 0; d < deltas; ++d) {
        core::ProfileSnapshot snap;
        for (unsigned e = 0; e < 4; ++e) {
            const std::uint64_t key = 100 * d + e; // shared across k
            snap.entities[key] = makeSummary(k * 7 + d * 3 + e);
        }
        out.push_back(std::move(snap));
    }
    return out;
}

/** The canonical serial merge the daemon must reproduce: per-producer
 *  deltas folded in seq order, producers folded in ascending id. */
core::ProfileSnapshot
serialReference(unsigned producers, unsigned deltas)
{
    core::ProfileSnapshot reference;
    for (unsigned k = 0; k < producers; ++k) {
        core::ProfileSnapshot partial;
        for (const auto &delta : producerDeltas(k, deltas))
            partial.merge(delta);
        reference.merge(partial);
    }
    return reference;
}

struct RunningServer
{
    VpdServer server;
    std::thread loop;
    std::string addr;

    explicit RunningServer(ServerConfig cfg = makeConfig())
        : server(std::move(cfg))
    {
        std::string error;
        if (!server.start(error))
            ADD_FAILURE() << "server start failed: " << error;
        addr = server.boundAddresses().front().str();
        loop = std::thread([this] {
            std::string run_error;
            if (!server.run(run_error))
                ADD_FAILURE() << "server loop: " << run_error;
        });
    }

    ~RunningServer()
    {
        server.requestStop();
        loop.join();
    }

    static ServerConfig
    makeConfig()
    {
        ServerConfig cfg;
        cfg.listenAddrs = {"127.0.0.1:0"};
        return cfg;
    }
};

TEST(ServeLoopback, ConcurrentEmittersMatchSerialMerge)
{
    constexpr unsigned kProducers = 4, kDeltas = 3;
    const std::string want =
        snapshotText(serialReference(kProducers, kDeltas));

    const std::string agg_path =
        ::testing::TempDir() + "serve_loopback_agg.vprof";
    std::remove(agg_path.c_str());
    auto cfg = RunningServer::makeConfig();
    cfg.snapshotPath = agg_path;
    RunningServer rs(std::move(cfg));

    std::atomic<unsigned> undelivered{0};
    std::vector<std::thread> threads;
    for (unsigned k = 0; k < kProducers; ++k) {
        threads.emplace_back([&, k] {
            EmitterConfig ecfg;
            ecfg.addr = rs.addr;
            ecfg.producerId = k + 1;
            ProfileEmitter emitter(ecfg);
            for (auto &delta : producerDeltas(k, kDeltas))
                emitter.emit(std::move(delta));
            if (!emitter.close())
                undelivered.fetch_add(1);
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(undelivered.load(), 0u);

    core::ProfileSnapshot served;
    std::string error;
    ASSERT_TRUE(requestSnapshot(rs.addr, served, error)) << error;
    EXPECT_EQ(snapshotText(served), want)
        << "served aggregate diverged from the serial merge";

    // Status text reflects the stream.
    std::string status;
    ASSERT_TRUE(requestQuery(rs.addr, status, error)) << error;
    EXPECT_NE(status.find("producers 4"), std::string::npos) << status;
    EXPECT_NE(status.find("deltas 12"), std::string::npos) << status;

    // FLUSH persists the same bytes, atomically.
    ASSERT_TRUE(requestFlush(rs.addr, error)) << error;
    core::ProfileSnapshot persisted;
    ASSERT_TRUE(
        core::ProfileSnapshot::tryLoadFile(agg_path, persisted, error))
        << error;
    EXPECT_EQ(snapshotText(persisted), want);
    std::remove(agg_path.c_str());
}

/** Raw-socket helper: send the frames, read replies until `want`
 *  frames arrived or the peer closes; returns the replies. */
std::vector<Frame>
rawExchange(const std::string &addr,
            const std::vector<std::vector<std::uint8_t>> &frames,
            std::size_t want)
{
    std::vector<Frame> replies;
    vp::net::Address parsed;
    std::string error;
    EXPECT_TRUE(vp::net::parseAddress(addr, parsed, error)) << error;
    vp::net::FdGuard fd(vp::net::connectTo(parsed, error));
    EXPECT_TRUE(fd.valid()) << error;
    if (!fd.valid())
        return replies;
    for (const auto &f : frames)
        EXPECT_TRUE(vp::net::sendAll(fd.get(), f.data(), f.size(),
                                     error))
            << error;
    FrameReader reader;
    while (replies.size() < want) {
        Frame frame;
        const DecodeStatus st = reader.next(frame, error);
        if (st == DecodeStatus::Ok) {
            replies.push_back(std::move(frame));
            continue;
        }
        if (st == DecodeStatus::Corrupt) {
            ADD_FAILURE() << "corrupt reply: " << error;
            break;
        }
        std::uint8_t buf[4096];
        const long n =
            vp::net::recvSome(fd.get(), buf, sizeof(buf), error);
        if (n <= 0)
            break; // peer closed (expected after ERROR replies)
        reader.append(buf, static_cast<std::size_t>(n));
    }
    return replies;
}

TEST(ServeLoopback, DuplicateDeltaIsReackedNotRemerged)
{
    RunningServer rs;
    Delta delta;
    delta.producerId = 9;
    delta.seq = 1;
    delta.entities.entities[5] = makeSummary(1);
    const auto frame = encodeDelta(delta);

    // The same seq twice: two acks, one merge.
    const auto replies = rawExchange(rs.addr, {frame, frame}, 2);
    ASSERT_EQ(replies.size(), 2u);
    for (const auto &r : replies) {
        EXPECT_EQ(r.type, MsgType::Ack);
        std::uint64_t seq = 0;
        std::string error;
        ASSERT_TRUE(decodeAck(r.payload, seq, error)) << error;
        EXPECT_EQ(seq, 1u);
    }
    const auto agg = rs.server.aggregate();
    ASSERT_EQ(agg.size(), 1u);
    // Merged once: the counts are the single delta's, not doubled.
    EXPECT_EQ(agg.entities.at(5).totalExecutions,
              delta.entities.entities.at(5).totalExecutions);
}

TEST(ServeLoopback, SequenceGapIsRejected)
{
    RunningServer rs;
    Delta delta;
    delta.producerId = 3;
    delta.seq = 2; // producer 3 never sent seq 1
    delta.entities.entities[1] = makeSummary(0);

    const auto replies =
        rawExchange(rs.addr, {encodeDelta(delta)}, 1);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, MsgType::Error);
    EXPECT_NE(payloadText(replies[0].payload).find("gap"),
              std::string::npos);
    // The gapped delta must not have been applied.
    EXPECT_EQ(rs.server.aggregate().size(), 0u);
}

TEST(ServeLoopback, CorruptBytesGetErrorAndDaemonSurvives)
{
    RunningServer rs;
    const std::uint8_t garbage[] = "complete nonsense, not a frame";
    std::vector<std::uint8_t> junk(garbage, garbage + sizeof(garbage));

    const auto replies = rawExchange(rs.addr, {junk}, 1);
    ASSERT_EQ(replies.size(), 1u);
    EXPECT_EQ(replies[0].type, MsgType::Error);

    // The daemon shrugged off the bad client and still serves others.
    std::string status, error;
    ASSERT_TRUE(requestQuery(rs.addr, status, error)) << error;
    EXPECT_NE(status.find("producers 0"), std::string::npos);
}

TEST(ServeLoopback, BackpressureBoundsTheQueue)
{
    vp::stats::setEnabled(true);
    EmitterConfig ecfg;
    ecfg.addr = "127.0.0.1:1"; // nothing listens here
    ecfg.maxQueue = 3;
    ecfg.maxRetries = 3;
    ecfg.backoffBaseMs = 50;
    ecfg.backoffMaxMs = 200;
    ecfg.spillPath =
        ::testing::TempDir() + "serve_backpressure.spill";
    std::remove(ecfg.spillPath.c_str());

    ProfileEmitter emitter(ecfg);
    // While the sender burns its retry budget on the dead address the
    // queue must cap at maxQueue and tryEmit must start refusing.
    unsigned accepted = 0;
    bool saw_backpressure = false;
    for (unsigned i = 0; i < 200; ++i) {
        core::ProfileSnapshot delta;
        delta.entities[i] = makeSummary(i);
        if (emitter.tryEmit(std::move(delta))) {
            ++accepted;
        } else {
            saw_backpressure = true;
            break;
        }
    }
    EXPECT_TRUE(saw_backpressure);
    EXPECT_LE(accepted, 200u);

    // Nothing was delivered; everything must land in the spill file.
    EXPECT_FALSE(emitter.close());
    EXPECT_EQ(emitter.ackedDeltas(), 0u);
    EXPECT_EQ(emitter.spilledDeltas(), accepted);

    const auto gauges = vp::stats::global().gaugeValues();
    const auto it = gauges.find("serve.client.queue_depth");
    ASSERT_NE(it, gauges.end());
    EXPECT_LE(it->second, static_cast<double>(ecfg.maxQueue));
    EXPECT_GE(it->second, 1.0);

    std::remove(ecfg.spillPath.c_str());
    vp::stats::setEnabled(false);
}

TEST(ServeLoopback, SpillReplaysLosslesslyIntoALateDaemon)
{
    const std::string spill_path =
        ::testing::TempDir() + "serve_replay.spill";
    std::remove(spill_path.c_str());

    constexpr unsigned kDeltas = 3;
    // Daemon down: every delta spills.
    {
        EmitterConfig ecfg;
        ecfg.addr = "127.0.0.1:1";
        ecfg.producerId = 5;
        ecfg.maxRetries = 1;
        ecfg.backoffBaseMs = 1;
        ecfg.spillPath = spill_path;
        ProfileEmitter emitter(ecfg);
        for (auto &delta : producerDeltas(0, kDeltas))
            emitter.emit(std::move(delta));
        EXPECT_FALSE(emitter.close());
        EXPECT_EQ(emitter.spilledDeltas(), kDeltas);
    }

    // The spill file holds the exact frames, in order.
    std::vector<Delta> spilled;
    std::string error;
    ASSERT_TRUE(readSpill(spill_path, spilled, error));
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_EQ(spilled.size(), kDeltas);
    for (unsigned d = 0; d < kDeltas; ++d) {
        EXPECT_EQ(spilled[d].producerId, 5u);
        EXPECT_EQ(spilled[d].seq, d + 1);
    }

    // Replaying them into a live daemon recovers the full profile.
    RunningServer rs;
    EmitterConfig ecfg;
    ecfg.addr = rs.addr;
    ecfg.producerId = 5;
    ProfileEmitter emitter(ecfg);
    for (auto &delta : spilled)
        emitter.emit(std::move(delta.entities));
    EXPECT_TRUE(emitter.close());

    core::ProfileSnapshot want;
    for (const auto &delta : producerDeltas(0, kDeltas))
        want.merge(delta);
    EXPECT_EQ(snapshotText(rs.server.aggregate()),
              snapshotText(want));
    std::remove(spill_path.c_str());
}

TEST(ServeLoopback, EmittersSurviveMidStreamDaemonDeath)
{
    const std::string spill_path =
        ::testing::TempDir() + "serve_death.spill";
    std::remove(spill_path.c_str());

    auto rs = std::make_unique<RunningServer>();
    EmitterConfig ecfg;
    ecfg.addr = rs->addr;
    ecfg.producerId = 2;
    ecfg.maxRetries = 1;
    ecfg.backoffBaseMs = 1;
    ecfg.spillPath = spill_path;
    ProfileEmitter emitter(ecfg);

    core::ProfileSnapshot first;
    first.entities[1] = makeSummary(1);
    emitter.emit(std::move(first));
    // Let the first delta land, then kill the daemon mid-stream.
    for (int i = 0; i < 500 && emitter.ackedDeltas() == 0; ++i)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_EQ(emitter.ackedDeltas(), 1u);
    rs.reset(); // daemon gone

    core::ProfileSnapshot second;
    second.entities[2] = makeSummary(2);
    emitter.emit(std::move(second));
    // close() must not hang and must account for every delta: one
    // acked, one spilled — never silently dropped.
    EXPECT_FALSE(emitter.close());
    EXPECT_EQ(emitter.ackedDeltas(), 1u);
    EXPECT_EQ(emitter.spilledDeltas(), 1u);

    std::vector<Delta> spilled;
    std::string error;
    ASSERT_TRUE(readSpill(spill_path, spilled, error));
    ASSERT_EQ(spilled.size(), 1u);
    EXPECT_EQ(spilled[0].seq, 2u);
    std::remove(spill_path.c_str());
}

} // namespace
