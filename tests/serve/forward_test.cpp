/**
 * @file
 * Hierarchical-aggregation tests: a two-level vpd tree must reproduce
 * the serial merge byte for byte; a leaf that died with a spilled
 * forward queue must replay it into the upstream after restart;
 * forwarding loops and producer-id clashes (a forwarded partial
 * colliding with a live direct producer, in either order) must be
 * rejected with fatal error frames and counted.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"
#include "support/stats_registry.hpp"

using namespace vp::serve;

namespace
{

std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

core::EntitySummary
makeSummary(std::uint64_t salt)
{
    core::EntitySummary s;
    s.totalExecutions = 100 + salt * 13;
    s.profiledExecutions = 90 + salt * 11;
    s.invTop = 1.0 / static_cast<double>(salt + 2);
    s.invAll = 0.5 / static_cast<double>(salt + 1);
    s.lvp = 0.25;
    s.zeroFraction = static_cast<double>(salt % 3) / 7.0;
    s.distinct = 1 + salt % 5;
    s.topValues = {{salt * 17 + 1, 60 + salt}, {salt, 30}};
    return s;
}

std::vector<core::ProfileSnapshot>
producerDeltas(unsigned k, unsigned deltas)
{
    std::vector<core::ProfileSnapshot> out;
    for (unsigned d = 0; d < deltas; ++d) {
        core::ProfileSnapshot snap;
        for (unsigned e = 0; e < 4; ++e) {
            const std::uint64_t key = 100 * d + e; // shared across k
            snap.entities[key] = makeSummary(k * 7 + d * 3 + e);
        }
        out.push_back(std::move(snap));
    }
    return out;
}

core::ProfileSnapshot
serialReference(unsigned producers, unsigned deltas)
{
    core::ProfileSnapshot reference;
    for (unsigned k = 0; k < producers; ++k) {
        core::ProfileSnapshot partial;
        for (const auto &delta : producerDeltas(k, deltas))
            partial.merge(delta);
        reference.merge(partial);
    }
    return reference;
}

struct RunningServer
{
    VpdServer server;
    std::thread loop;
    std::string addr;

    explicit RunningServer(ServerConfig cfg)
        : server(std::move(cfg))
    {
        std::string error;
        if (!server.start(error)) {
            ADD_FAILURE() << "server start failed: " << error;
            return;
        }
        addr = server.boundAddresses().front().str();
        loop = std::thread([this] {
            std::string run_error;
            if (!server.run(run_error))
                ADD_FAILURE() << "server loop: " << run_error;
        });
    }

    ~RunningServer()
    {
        if (loop.joinable()) {
            server.requestStop();
            loop.join();
        }
    }
};

ServerConfig
basicConfig()
{
    ServerConfig cfg;
    cfg.listenAddrs = {"127.0.0.1:0"};
    return cfg;
}

/** Poll the daemon at `addr` until its aggregate matches `want` (or
 *  the budget runs out); returns the last snapshot text seen. */
std::string
pollForAggregate(const std::string &addr, const std::string &want,
                 unsigned budget_ms = 10000)
{
    std::string got, error;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(budget_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        core::ProfileSnapshot snap;
        if (requestSnapshot(addr, snap, error)) {
            got = snapshotText(snap);
            if (got == want)
                return got;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return got;
}

TEST(ServeForwardTest, TwoLevelTreeMatchesSerialMergeByteForByte)
{
    constexpr unsigned kProducers = 3, kDeltas = 3;
    const std::string want =
        snapshotText(serialReference(kProducers, kDeltas));

    RunningServer root(basicConfig());
    auto leaf_cfg = basicConfig();
    leaf_cfg.forwardAddr = root.addr;
    leaf_cfg.forwardId = 200;
    leaf_cfg.forwardIntervalSec = 0.05;
    RunningServer leaf(std::move(leaf_cfg));

    for (unsigned k = 0; k < kProducers; ++k) {
        EmitterConfig ecfg;
        ecfg.addr = leaf.addr;
        ecfg.producerId = k + 1;
        ProfileEmitter emitter(ecfg);
        for (auto &delta : producerDeltas(k, kDeltas))
            emitter.emit(std::move(delta));
        EXPECT_TRUE(emitter.close());
    }

    // The leaf aggregates immediately; the relay then re-emits each
    // producer's merged partial upstream, where REPLACE (not merge)
    // keeps the root byte-identical to the serial fold.
    EXPECT_EQ(snapshotText(leaf.server.aggregate()), want);
    EXPECT_EQ(pollForAggregate(root.addr, want), want)
        << "root never converged to the serial merge";

    // The root sees the original producer ids, not the forwarder's.
    std::string status, error;
    ASSERT_TRUE(requestQuery(root.addr, status, error)) << error;
    EXPECT_NE(status.find("producers 3"), std::string::npos) << status;
    EXPECT_NE(status.find("forwarding 0"), std::string::npos)
        << status;
    ASSERT_TRUE(requestQuery(leaf.addr, status, error)) << error;
    EXPECT_NE(status.find("forwarding 1"), std::string::npos)
        << status;
}

TEST(ServeForwardTest, LeafDeathSpillReplaysIntoUpstreamOnRestart)
{
    vp::stats::setEnabled(true);
    const std::string spill =
        ::testing::TempDir() + "fwd_leaf_restart.spill";
    std::remove(spill.c_str());

    constexpr unsigned kProducers = 2, kDeltas = 2;
    const std::string want =
        snapshotText(serialReference(kProducers, kDeltas));

    // Incarnation 1: the upstream is dead, so every forwarded partial
    // lands in the forward spill. (No state file — the restart must
    // recover the partials from the spill alone.)
    {
        auto cfg = basicConfig();
        cfg.forwardAddr = "127.0.0.1:1"; // nothing listens here
        cfg.forwardId = 201;
        cfg.forwardIntervalSec = 0.05;
        cfg.forwardSpillPath = spill;
        RunningServer leaf(std::move(cfg));
        for (unsigned k = 0; k < kProducers; ++k) {
            EmitterConfig ecfg;
            ecfg.addr = leaf.addr;
            ecfg.producerId = k + 1;
            ProfileEmitter emitter(ecfg);
            for (auto &delta : producerDeltas(k, kDeltas))
                emitter.emit(std::move(delta));
            EXPECT_TRUE(emitter.close());
        }
        // Destructor stops the leaf: the final forward tick queues
        // the complete partials and the emitter drain spills them.
    }
    {
        std::vector<Delta> spilled;
        std::string error;
        ASSERT_TRUE(readSpill(spill, spilled, error)) << error;
        EXPECT_FALSE(spilled.empty());
    }

    // Incarnation 2: same spill path, but a live upstream. The
    // restart replays the spill into its partials and the relay
    // delivers everything the first life acknowledged.
    const auto replayed_before =
        vp::stats::global().counter(vp::stats::Cid::ServeForwardReplayed);
    RunningServer root(basicConfig());
    auto cfg = basicConfig();
    cfg.forwardAddr = root.addr;
    cfg.forwardId = 201;
    cfg.forwardIntervalSec = 0.05;
    cfg.forwardSpillPath = spill;
    RunningServer leaf(std::move(cfg));
    EXPECT_EQ(snapshotText(leaf.server.aggregate()), want)
        << "restart lost acknowledged deltas";
    EXPECT_GT(vp::stats::global().counter(
                  vp::stats::Cid::ServeForwardReplayed),
              replayed_before);
    EXPECT_EQ(pollForAggregate(root.addr, want), want)
        << "root never received the replayed partials";

    std::remove(spill.c_str());
    vp::stats::setEnabled(false);
}

TEST(ServeForwardTest, ForwardLoopIsRejectedFatally)
{
    vp::stats::setEnabled(true);
    const auto loops_before =
        vp::stats::global().counter(vp::stats::Cid::ServeForwardLoops);

    // A is a mid-tier daemon (it has a tree identity, 301); B relays
    // into it as forwarder 302. The legitimate hop B -> A must work;
    // a hello whose downstream path already contains the receiver's
    // own id must be rejected fatally.
    auto cfg_a = basicConfig();
    cfg_a.forwardId = 301; // identity only: A itself relays nowhere
    RunningServer a(std::move(cfg_a));
    auto cfg_b = basicConfig();
    cfg_b.forwardId = 302;
    cfg_b.forwardIntervalSec = 0.05;
    cfg_b.forwardAddr = a.addr;
    RunningServer b(std::move(cfg_b));

    Delta d;
    d.producerId = 9;
    d.seq = 1;
    d.entities.entities[1] = makeSummary(1);
    {
        EmitterConfig ecfg;
        ecfg.addr = b.addr;
        ecfg.producerId = 9;
        ProfileEmitter emitter(ecfg);
        emitter.emitDelta(std::move(d));
        EXPECT_TRUE(emitter.close());
    }
    // B's relay forwards producer 9 to A (allowed: path {302}).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    bool a_has_it = false;
    while (std::chrono::steady_clock::now() < deadline && !a_has_it) {
        a_has_it = a.server.aggregate().size() > 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_TRUE(a_has_it) << "legitimate forward B->A never landed";

    EmitterConfig ecfg;
    ecfg.addr = b.addr;
    ecfg.producerId = 302;
    ecfg.helloProvider = [] {
        return encodeHello(999, {999, 302});
    };
    ProfileEmitter looper(ecfg);
    Delta d2;
    d2.producerId = 77;
    d2.seq = 1;
    d2.entities.entities[2] = makeSummary(2);
    looper.emitDelta(std::move(d2));
    EXPECT_FALSE(looper.close());
    EXPECT_TRUE(looper.permanentFailure());
    EXPECT_NE(looper.permanentFailureReason().find("forward loop"),
              std::string::npos)
        << looper.permanentFailureReason();
    EXPECT_GT(
        vp::stats::global().counter(vp::stats::Cid::ServeForwardLoops),
        loops_before);
    vp::stats::setEnabled(false);
}

TEST(ServeForwardTest, SelfForwardRefusedAtStartup)
{
    const std::string sock =
        ::testing::TempDir() + "fwd_self.sock";
    std::remove(sock.c_str());
    ServerConfig cfg;
    cfg.listenAddrs = {"unix:" + sock};
    cfg.forwardAddr = "unix:" + sock;
    cfg.forwardId = 7;
    VpdServer server(cfg);
    std::string error;
    EXPECT_FALSE(server.start(error));
    EXPECT_NE(error.find("own listen"), std::string::npos) << error;
    std::remove(sock.c_str());
}

TEST(ServeForwardTest, ForwardWithoutIdRefusedAtStartup)
{
    ServerConfig cfg = basicConfig();
    cfg.forwardAddr = "127.0.0.1:1";
    VpdServer server(cfg);
    std::string error;
    EXPECT_FALSE(server.start(error));
    EXPECT_NE(error.find("forward-id"), std::string::npos) << error;
}

/** One raw exchange: send `frames`, collect replies until `want`
 *  frames arrive or the peer closes. */
std::vector<Frame>
rawExchange(const std::string &addr,
            const std::vector<std::vector<std::uint8_t>> &frames,
            std::size_t want)
{
    std::vector<Frame> replies;
    vp::net::Address parsed;
    std::string error;
    EXPECT_TRUE(vp::net::parseAddress(addr, parsed, error)) << error;
    vp::net::FdGuard fd(vp::net::connectTo(parsed, error));
    EXPECT_TRUE(fd.valid()) << error;
    if (!fd.valid())
        return replies;
    for (const auto &f : frames)
        EXPECT_TRUE(
            vp::net::sendAll(fd.get(), f.data(), f.size(), error))
            << error;
    FrameReader reader;
    while (replies.size() < want) {
        Frame frame;
        const DecodeStatus st = reader.next(frame, error);
        if (st == DecodeStatus::Ok) {
            replies.push_back(std::move(frame));
            continue;
        }
        if (st == DecodeStatus::Corrupt) {
            ADD_FAILURE() << "corrupt reply: " << error;
            break;
        }
        std::uint8_t buf[4096];
        const long n =
            vp::net::recvSome(fd.get(), buf, sizeof(buf), error);
        if (n <= 0)
            break;
        reader.append(buf, static_cast<std::size_t>(n));
    }
    return replies;
}

Delta
clashDelta(std::uint64_t producer, std::uint64_t seq)
{
    Delta d;
    d.producerId = producer;
    d.seq = seq;
    d.entities.entities[1] = makeSummary(producer + seq);
    return d;
}

TEST(ServeForwardTest, ForwardedThenDirectIdClashRejected)
{
    vp::stats::setEnabled(true);
    const auto clashes_before = vp::stats::global().counter(
        vp::stats::Cid::ServeForwardIdClash);
    RunningServer rs(basicConfig());

    // Producer 7 arrives via forwarder 55 first...
    auto via = rawExchange(
        rs.addr,
        {encodeHello(55, {55}), encodeDelta(clashDelta(7, 1))}, 2);
    ASSERT_EQ(via.size(), 2u);
    EXPECT_EQ(via[0].type, MsgType::Ack);
    EXPECT_EQ(via[1].type, MsgType::Ack);

    // ...then a direct connection claims the same producer id: fatal.
    auto direct =
        rawExchange(rs.addr, {encodeDelta(clashDelta(7, 2))}, 1);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(direct[0].type, MsgType::Error);
    const std::string text = payloadText(direct[0].payload);
    EXPECT_NE(text.find("fatal: forward id clash"), std::string::npos)
        << text;
    EXPECT_NE(text.find("forwarder 55"), std::string::npos) << text;
    EXPECT_GT(vp::stats::global().counter(
                  vp::stats::Cid::ServeForwardIdClash),
              clashes_before);

    // The daemon survives and the clashing delta was not applied.
    std::string status, error;
    ASSERT_TRUE(requestQuery(rs.addr, status, error)) << error;
    EXPECT_NE(status.find("deltas 1"), std::string::npos) << status;
    vp::stats::setEnabled(false);
}

TEST(ServeForwardTest, DirectThenForwardedIdClashRejected)
{
    vp::stats::setEnabled(true);
    const auto clashes_before = vp::stats::global().counter(
        vp::stats::Cid::ServeForwardIdClash);
    RunningServer rs(basicConfig());

    // Producer 8 streams directly first...
    auto direct =
        rawExchange(rs.addr, {encodeDelta(clashDelta(8, 1))}, 1);
    ASSERT_EQ(direct.size(), 1u);
    EXPECT_EQ(direct[0].type, MsgType::Ack);

    // ...then a forwarder claims to relay the same producer: fatal.
    auto via = rawExchange(
        rs.addr,
        {encodeHello(66, {66}), encodeDelta(clashDelta(8, 2))}, 2);
    ASSERT_EQ(via.size(), 2u);
    EXPECT_EQ(via[0].type, MsgType::Ack); // the hello itself is fine
    EXPECT_EQ(via[1].type, MsgType::Error);
    const std::string text = payloadText(via[1].payload);
    EXPECT_NE(text.find("fatal: forward id clash"), std::string::npos)
        << text;
    EXPECT_NE(text.find("direct"), std::string::npos) << text;
    EXPECT_GT(vp::stats::global().counter(
                  vp::stats::Cid::ServeForwardIdClash),
              clashes_before);
    vp::stats::setEnabled(false);
}

} // namespace
