/**
 * @file
 * Tests for the vpd delta wire format: round-trips for every frame
 * type, bit-exact double transport, incremental stream reading, and
 * the strictness guarantees — every prefix is NeedMore, every
 * single-byte mutation of a valid frame is rejected, unknown
 * versions/types/flags are Corrupt.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "check/seed.hpp"
#include "core/profile_codec.hpp"
#include "serve/wire.hpp"
#include "support/rng.hpp"

using namespace vp::serve;

namespace
{

core::ProfileSnapshot
sampleSnapshot()
{
    core::ProfileSnapshot snap;
    core::EntitySummary a;
    a.totalExecutions = 1000;
    a.profiledExecutions = 900;
    a.invTop = 1.0 / 3.0; // not exactly representable in decimal
    a.invAll = 0.1;
    a.lvp = 0.7;
    a.zeroFraction = 1e-300; // denormal-adjacent magnitude
    a.distinct = 17;
    a.topValues = {{42, 600}, {7, 200}, {0, 100}};
    snap.entities[3] = a;

    core::EntitySummary b;
    b.totalExecutions = 5;
    b.profiledExecutions = 5;
    b.invTop = 1.0;
    b.distinct = 1;
    b.topValues = {{0xFFFFFFFFFFFFFFFFull, 5}};
    snap.entities[0xDEADBEEFCAFEull] = b;
    return snap;
}

std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

Frame
decodeWhole(const std::vector<std::uint8_t> &bytes)
{
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    const DecodeStatus st =
        tryDecode(bytes.data(), bytes.size(), frame, consumed, error);
    EXPECT_EQ(st, DecodeStatus::Ok) << error;
    EXPECT_EQ(consumed, bytes.size());
    return frame;
}

TEST(Wire, DeltaRoundTripIsBitExact)
{
    Delta delta;
    delta.producerId = 0x1122334455667788ull;
    delta.seq = 9;
    delta.entities = sampleSnapshot();

    const auto bytes = encodeDelta(delta);
    const Frame frame = decodeWhole(bytes);
    EXPECT_EQ(frame.type, MsgType::Delta);

    Delta out;
    std::string error;
    ASSERT_TRUE(decodeDelta(frame, out, error)) << error;
    EXPECT_EQ(out.producerId, delta.producerId);
    EXPECT_EQ(out.seq, delta.seq);
    // Byte-identical snapshot text = bit-exact doubles survived the
    // wire (save() prints with 17 significant digits).
    EXPECT_EQ(snapshotText(out.entities), snapshotText(delta.entities));
}

TEST(Wire, AckTextAndEmptyRoundTrips)
{
    const Frame ack = decodeWhole(encodeAck(12345));
    EXPECT_EQ(ack.type, MsgType::Ack);
    std::uint64_t seq = 0;
    std::string error;
    ASSERT_TRUE(decodeAck(ack.payload, seq, error)) << error;
    EXPECT_EQ(seq, 12345u);

    const Frame err =
        decodeWhole(encodeText(MsgType::Error, "delta gap"));
    EXPECT_EQ(err.type, MsgType::Error);
    EXPECT_EQ(payloadText(err.payload), "delta gap");

    const Frame query = decodeWhole(encodeText(
        MsgType::QueryReply, "producers 3\n"));
    EXPECT_EQ(query.type, MsgType::QueryReply);
    EXPECT_EQ(payloadText(query.payload), "producers 3\n");

    for (const MsgType t : {MsgType::Query, MsgType::Snapshot,
                            MsgType::Flush, MsgType::Shutdown}) {
        const Frame f = decodeWhole(encodeEmpty(t));
        EXPECT_EQ(f.type, t);
        EXPECT_TRUE(f.payload.empty());
    }
}

TEST(Wire, SnapshotReplyRoundTrip)
{
    const auto snap = sampleSnapshot();
    const Frame frame = decodeWhole(encodeSnapshotReply(snap));
    EXPECT_EQ(frame.type, MsgType::SnapshotReply);
    core::ProfileSnapshot out;
    std::string error;
    ASSERT_TRUE(decodeSnapshotReply(frame, out, error)) << error;
    EXPECT_EQ(snapshotText(out), snapshotText(snap));
}

TEST(Wire, EveryProperPrefixNeedsMore)
{
    Delta delta;
    delta.producerId = 1;
    delta.seq = 1;
    delta.entities = sampleSnapshot();
    const auto bytes = encodeDelta(delta);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        Frame frame;
        std::size_t consumed = 0;
        std::string error;
        EXPECT_EQ(tryDecode(bytes.data(), len, frame, consumed, error),
                  DecodeStatus::NeedMore)
            << "prefix length " << len;
    }
}

TEST(Wire, EverySingleByteMutationIsRejected)
{
    Delta delta;
    delta.producerId = 2;
    delta.seq = 7;
    delta.entities = sampleSnapshot();
    const std::vector<std::vector<std::uint8_t>> frames = {
        encodeDelta(delta),    // v2, compressed entity block
        encodeDelta(delta, 1), // v1, fixed-width payload
        encodeSnapshotReply(delta.entities),
        encodeAck(99),
        encodeEmpty(MsgType::Flush),
        encodeText(MsgType::Error, "x"),
    };
    for (const auto &good : frames) {
        for (std::size_t i = 0; i < good.size(); ++i) {
            for (const std::uint8_t delta_byte :
                 {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
                auto bad = good;
                bad[i] = static_cast<std::uint8_t>(bad[i] ^ delta_byte);
                Frame frame;
                std::size_t consumed = 0;
                std::string error;
                // A mutated frame may be Corrupt outright or look
                // like a longer frame (NeedMore) — it must NEVER
                // decode as Ok.
                EXPECT_NE(tryDecode(bad.data(), bad.size(), frame,
                                    consumed, error),
                          DecodeStatus::Ok)
                    << "byte " << i << " xor "
                    << static_cast<int>(delta_byte);
            }
        }
    }
}

TEST(Wire, SeededRandomDeltasSurviveRoundTripAndRejectMutations)
{
    // Same property as above, but over randomized delta contents
    // (vp::check-seeded, reproducible via VP_TEST_SEED): arbitrary
    // keys, counts and double bit patterns must round-trip
    // byte-identically, and no single-byte mutation of their encoding
    // may ever decode as Ok.
    const std::uint64_t seed = vp::check::testSeed(0x5EEDF00Dull);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);

    for (int trial = 0; trial < 8; ++trial) {
        Delta delta;
        delta.producerId = rng.next() | 1;
        delta.seq = rng.below(1000) + 1;
        const std::size_t n_entities = rng.below(4) + 1;
        for (std::size_t e = 0; e < n_entities; ++e) {
            core::EntitySummary s;
            s.totalExecutions = rng.below(1u << 20) + 1;
            s.profiledExecutions = rng.below(s.totalExecutions + 1);
            s.invTop = rng.uniform();
            s.invAll = rng.uniform();
            s.lvp = rng.uniform();
            s.zeroFraction = rng.uniform();
            s.distinct = rng.below(1000);
            const std::size_t n_top = rng.below(8) + 1;
            for (std::size_t v = 0; v < n_top; ++v)
                s.topValues.emplace_back(rng.next(),
                                         rng.below(1u << 20));
            delta.entities.entities[rng.next()] = s;
        }

        const auto bytes = encodeDelta(delta);
        const Frame frame = decodeWhole(bytes);
        Delta out;
        std::string error;
        ASSERT_TRUE(decodeDelta(frame, out, error)) << error;
        EXPECT_EQ(out.producerId, delta.producerId);
        EXPECT_EQ(out.seq, delta.seq);
        EXPECT_EQ(snapshotText(out.entities),
                  snapshotText(delta.entities));

        const std::size_t i = rng.below(bytes.size());
        for (int bit = 0; bit < 8; ++bit) {
            auto bad = bytes;
            bad[i] = static_cast<std::uint8_t>(bad[i] ^ (1u << bit));
            Frame f;
            std::size_t consumed = 0;
            EXPECT_NE(tryDecode(bad.data(), bad.size(), f, consumed,
                                error),
                      DecodeStatus::Ok)
                << "trial " << trial << " byte " << i << " bit "
                << bit;
        }
    }
}

TEST(Wire, UnknownVersionTypeAndFlagsAreCorrupt)
{
    // Patch a header field, recompute the CRC so only the patched
    // field is wrong — the strictness must come from field
    // validation, not just the checksum.
    const auto patched = [](std::vector<std::uint8_t> f,
                            std::size_t off, std::uint8_t value) {
        f[off] = value;
        // Recompute the CRC the way encodeFrame does: header bytes
        // [0,12) chained with the payload.
        std::uint32_t c = crc32(f.data(), 12);
        if (f.size() > kHeaderSize)
            c = crc32(f.data() + kHeaderSize, f.size() - kHeaderSize,
                      c);
        f[12] = static_cast<std::uint8_t>(c);
        f[13] = static_cast<std::uint8_t>(c >> 8);
        f[14] = static_cast<std::uint8_t>(c >> 16);
        f[15] = static_cast<std::uint8_t>(c >> 24);
        return f;
    };

    const auto good = encodeAck(1);
    for (const auto &bad : {
             patched(good, 4, 3),    // version 3 (newest is 2)
             patched(good, 6, 42),   // unknown message type
             patched(good, 7, 1),    // reserved flags set
             patched(good, 0, 'X'),  // bad magic
         }) {
        Frame frame;
        std::size_t consumed = 0;
        std::string error;
        EXPECT_EQ(tryDecode(bad.data(), bad.size(), frame, consumed,
                            error),
                  DecodeStatus::Corrupt);
        EXPECT_FALSE(error.empty());
    }
}

TEST(Wire, FrameReaderDecodesByteAtATime)
{
    const auto f1 = encodeAck(1);
    const auto f2 = encodeText(MsgType::QueryReply, "hello");
    std::vector<std::uint8_t> stream = f1;
    stream.insert(stream.end(), f2.begin(), f2.end());

    FrameReader reader;
    std::vector<Frame> got;
    for (const std::uint8_t byte : stream) {
        reader.append(&byte, 1);
        Frame frame;
        std::string error;
        const DecodeStatus st = reader.next(frame, error);
        if (st == DecodeStatus::Ok)
            got.push_back(std::move(frame));
        else
            EXPECT_EQ(st, DecodeStatus::NeedMore) << error;
    }
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].type, MsgType::Ack);
    EXPECT_EQ(got[1].type, MsgType::QueryReply);
    EXPECT_EQ(payloadText(got[1].payload), "hello");
    EXPECT_EQ(reader.pending(), 0u);
}

TEST(Wire, FrameReaderStaysDeadAfterCorruption)
{
    FrameReader reader;
    const std::uint8_t garbage[] = "this is not a frame at all!";
    reader.append(garbage, sizeof(garbage));
    Frame frame;
    std::string error;
    EXPECT_EQ(reader.next(frame, error), DecodeStatus::Corrupt);
    EXPECT_FALSE(error.empty());

    // A condemned stream never yields frames again, even if valid
    // bytes arrive later — resynchronizing inside a binary stream
    // would risk mis-framing.
    const auto good = encodeAck(5);
    reader.append(good.data(), good.size());
    EXPECT_EQ(reader.next(frame, error), DecodeStatus::Corrupt);
}

TEST(Wire, DeltaPayloadRejectsZeroSeqAndTrailingBytes)
{
    Delta delta;
    delta.producerId = 1;
    delta.seq = 1;
    delta.entities = sampleSnapshot();
    const auto frame = decodeWhole(encodeDelta(delta));

    Frame trailing = frame;
    trailing.payload.push_back(0);
    Delta out;
    std::string error;
    EXPECT_FALSE(decodeDelta(trailing, out, error));

    Delta zero_seq = delta;
    zero_seq.seq = 0;
    const Frame zf = decodeWhole(encodeDelta(zero_seq));
    EXPECT_FALSE(decodeDelta(zf, out, error));
    EXPECT_FALSE(error.empty());
}

TEST(Wire, OversizedLengthFieldIsCorrupt)
{
    auto f = encodeAck(1);
    const std::uint32_t huge = kMaxPayload + 1;
    std::memcpy(f.data() + 8, &huge, 4); // little-endian hosts only
    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(tryDecode(f.data(), f.size(), frame, consumed, error),
              DecodeStatus::Corrupt);
}

TEST(Wire, V1FramesStillRoundTrip)
{
    // Backward compatibility: a v1 (fixed-width) delta produced by an
    // older emitter decodes bit-exactly on a v2 build, and the frame
    // carries its version so replies can be encoded in kind.
    Delta delta;
    delta.producerId = 3;
    delta.seq = 4;
    delta.entities = sampleSnapshot();

    const Frame v1 = decodeWhole(encodeDelta(delta, 1));
    EXPECT_EQ(v1.version, 1u);
    const Frame v2 = decodeWhole(encodeDelta(delta));
    EXPECT_EQ(v2.version, 2u);

    Delta out1, out2;
    std::string error;
    ASSERT_TRUE(decodeDelta(v1, out1, error)) << error;
    ASSERT_TRUE(decodeDelta(v2, out2, error)) << error;
    EXPECT_EQ(snapshotText(out1.entities), snapshotText(out2.entities));
    EXPECT_EQ(snapshotText(out1.entities),
              snapshotText(delta.entities));
}

TEST(Wire, CompressedDeltaIsSmallerThanV1)
{
    // A constant-heavy snapshot (the memory-profile shape) must shrink
    // by at least 4x on the wire — the PR's headline budget.
    core::ProfileSnapshot snap;
    for (std::uint64_t i = 0; i < 1000; ++i) {
        core::EntitySummary s;
        s.totalExecutions = 16;
        s.profiledExecutions = 16;
        s.distinct = 1;
        s.topValues = {{i * 8, 16}};
        s.invTop = 1.0;
        s.invAll = 1.0;
        s.lvp = 15.0 / 16.0;
        s.zeroFraction = i == 0 ? 1.0 : 0.0;
        snap.entities[0x1000 + i * 8] = s;
    }
    Delta delta;
    delta.producerId = 1;
    delta.seq = 1;
    delta.entities = snap;
    const auto v1 = encodeDelta(delta, 1);
    const auto v2 = encodeDelta(delta);
    EXPECT_GE(v1.size(), 4 * v2.size())
        << "v1 " << v1.size() << " bytes, v2 " << v2.size();

    Delta out;
    std::string error;
    ASSERT_TRUE(decodeDelta(decodeWhole(v2), out, error)) << error;
    EXPECT_EQ(snapshotText(out.entities), snapshotText(snap));
}

TEST(Wire, DroppedCountersRideV2NotV1)
{
    Delta delta;
    delta.producerId = 1;
    delta.seq = 1;
    delta.entities = sampleSnapshot();
    delta.entities.droppedStores = 123;
    delta.entities.droppedLoads = 45;

    Delta out;
    std::string error;
    ASSERT_TRUE(decodeDelta(decodeWhole(encodeDelta(delta)), out,
                            error))
        << error;
    EXPECT_EQ(out.entities.droppedStores, 123u);
    EXPECT_EQ(out.entities.droppedLoads, 45u);
    EXPECT_TRUE(out.entities.overflowed());

    // The v1 payload has no field for them: they decode as zero (and
    // a stale output object is scrubbed, not inherited).
    ASSERT_TRUE(decodeDelta(decodeWhole(encodeDelta(delta, 1)), out,
                            error))
        << error;
    EXPECT_EQ(out.entities.droppedStores, 0u);
    EXPECT_EQ(out.entities.droppedLoads, 0u);
}

TEST(Wire, DecompressionBombIsCorrupt)
{
    // A CRC-valid v2 delta whose constant-run would inflate past
    // kMaxInflatedPayload must be Corrupt at the frame level — before
    // any snapshot is allocated.
    const std::uint64_t entities =
        kMaxInflatedPayload / 84 + 1000; // just past the cap
    std::vector<std::uint8_t> payload;
    core::codec::putVarint(payload, 1); // producerId
    core::codec::putVarint(payload, 1); // seq
    core::codec::putVarint(payload, entities);
    core::codec::putVarint(payload, 0); // droppedStores
    core::codec::putVarint(payload, 0); // droppedLoads
    payload.push_back(3); // ConstantRun
    core::codec::putVarint(payload, 1);        // first key
    core::codec::putVarint(payload, 1);        // stride
    core::codec::putVarint(payload, entities); // runLen
    core::codec::putVarint(payload, 2);        // total
    core::codec::putVarint(payload, 0);        // total - profiled
    for (std::uint64_t i = 0; i < entities; ++i)
        payload.push_back(0); // value 0
    ASSERT_LE(payload.size(), kMaxPayload);
    const auto bytes = encodeFrame(MsgType::Delta, payload);

    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(tryDecode(bytes.data(), bytes.size(), frame, consumed,
                        error),
              DecodeStatus::Corrupt);
    EXPECT_NE(error.find("inflates"), std::string::npos) << error;
}

TEST(Wire, LargeRunBelowInflationCapIsAccepted)
{
    // The bomb guard must not reject legitimate scale: a million-entity
    // constant run inflates to ~84 MB, well under the cap.
    const std::uint64_t entities = 1u << 20;
    std::vector<std::uint8_t> payload;
    core::codec::putVarint(payload, 1);
    core::codec::putVarint(payload, 1);
    core::codec::putVarint(payload, entities);
    core::codec::putVarint(payload, 0);
    core::codec::putVarint(payload, 0);
    payload.push_back(3); // ConstantRun
    core::codec::putVarint(payload, 1);
    core::codec::putVarint(payload, 1);
    core::codec::putVarint(payload, entities);
    core::codec::putVarint(payload, 2);
    core::codec::putVarint(payload, 0);
    for (std::uint64_t i = 0; i < entities; ++i)
        payload.push_back(0);
    const auto bytes = encodeFrame(MsgType::Delta, payload);

    Frame frame;
    std::size_t consumed = 0;
    std::string error;
    EXPECT_EQ(tryDecode(bytes.data(), bytes.size(), frame, consumed,
                        error),
              DecodeStatus::Ok)
        << error;
}

} // namespace
