/**
 * @file
 * Tests for the worker-thread pool behind the sharded profiling
 * engine: task completion, wait() semantics, pool reuse, and the
 * parallelFor index coverage guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "support/stats_registry.hpp"
#include "support/thread_pool.hpp"

using vp::ThreadPool;

namespace
{

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> ran{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitOnIdlePoolReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait(); // must not deadlock
    SUCCEED();
}

TEST(ThreadPool, PoolIsReusableAfterWait)
{
    ThreadPool pool(3);
    std::atomic<int> ran{0};
    for (int round = 0; round < 5; ++round) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { ++ran; });
        pool.wait();
        EXPECT_EQ(ran.load(), (round + 1) * 20);
    }
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(100));
                ++ran;
            });
    } // ~ThreadPool must finish all 50
    EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), ThreadPool::hardwareThreads());
    EXPECT_GE(ThreadPool::hardwareThreads(), 1u);
}

TEST(ThreadPool, TasksSubmittedFromWorkerThreadsComplete)
{
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
        pool.submit([&] {
            ++ran;
            pool.submit([&] { ++ran; });
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 16);
}

TEST(ThreadPoolParallelFor, CoversEveryIndexExactlyOnce)
{
    const std::size_t n = 257;
    std::vector<std::atomic<int>> hits(n);
    for (auto &h : hits)
        h = 0;
    ThreadPool::parallelFor(4, n, [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolParallelFor, SingleThreadRunsInlineInOrder)
{
    // threads <= 1 must run on the calling thread, in index order —
    // this is what makes --jobs 1 exactly the pre-pool behavior.
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    ThreadPool::parallelFor(1, 10, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 10u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolParallelFor, HandlesZeroAndOneItems)
{
    int ran = 0;
    ThreadPool::parallelFor(8, 0, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 0);
    ThreadPool::parallelFor(8, 1, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolParallelFor, MoreThreadsThanItems)
{
    std::atomic<int> ran{0};
    ThreadPool::parallelFor(16, 3, [&](std::size_t) { ++ran; });
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, QueueDepthIsObservableAndExportedAsGauge)
{
    vp::stats::global().reset();
    vp::stats::setEnabled(true);
    {
        ThreadPool pool(1);
        std::atomic<bool> release{false};
        pool.submit([&] {
            while (!release.load())
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
        });
        // Wait for the single worker to pick up the blocker so the
        // next submissions are pure backlog.
        for (int i = 0; i < 1000 && pool.queueDepth() != 0; ++i)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ASSERT_EQ(pool.queueDepth(), 0u);

        for (int i = 0; i < 5; ++i)
            pool.submit([] {});
        EXPECT_EQ(pool.queueDepth(), 5u);

        release = true;
        pool.wait();
        EXPECT_EQ(pool.queueDepth(), 0u);
    }
    vp::stats::setEnabled(false);

    const auto gauges = vp::stats::global().gaugeValues();
    const auto it = gauges.find("support.pool.queue_depth");
    ASSERT_NE(it, gauges.end())
        << "submit() must export the backlog high-water mark";
    EXPECT_GE(it->second, 5.0);
}

} // namespace
