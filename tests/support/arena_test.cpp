/**
 * @file
 * Tests for SlabArena: stable addresses across growth, insertion-order
 * iteration and indexing, and element lifetime.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "support/arena.hpp"

namespace
{

TEST(SlabArena, EmptyArena)
{
    vp::SlabArena<int> a;
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.size(), 0u);
    EXPECT_TRUE(a.begin() == a.end());
}

TEST(SlabArena, IndexingFollowsInsertionOrder)
{
    vp::SlabArena<int, 4> a;
    for (int i = 0; i < 10; ++i)
        a.emplaceBack(i * 7);
    ASSERT_EQ(a.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a[static_cast<std::size_t>(i)], i * 7);
}

TEST(SlabArena, AddressesStableAcrossSlabGrowth)
{
    // The contract the memory profiler depends on: a pointer handed
    // out early must stay valid while the arena keeps growing.
    vp::SlabArena<std::uint64_t, 8> a;
    std::vector<std::uint64_t *> ptrs;
    for (std::uint64_t i = 0; i < 1000; ++i)
        ptrs.push_back(&a.emplaceBack(i));
    for (std::uint64_t i = 0; i < 1000; ++i) {
        ASSERT_EQ(*ptrs[i], i);
        ASSERT_EQ(&a[i], ptrs[i]);
    }
}

TEST(SlabArena, RangeForVisitsInInsertionOrder)
{
    vp::SlabArena<int, 4> a;
    for (int i = 0; i < 9; ++i) // crosses slab boundaries at 4 and 8
        a.emplaceBack(i);
    int expect = 0;
    for (const int &v : a)
        EXPECT_EQ(v, expect++);
    EXPECT_EQ(expect, 9);

    // Mutation through the non-const iterator sticks.
    for (int &v : a)
        v += 100;
    EXPECT_EQ(a[0], 100);
    EXPECT_EQ(a[8], 108);

    // Const iteration sees the same sequence.
    const auto &ca = a;
    expect = 100;
    for (const int &v : ca)
        EXPECT_EQ(v, expect++);
}

TEST(SlabArena, EmplaceForwardsConstructorArgs)
{
    struct Rec
    {
        std::string name;
        int tag;
        Rec(std::string n, int t) : name(std::move(n)), tag(t) {}
    };
    vp::SlabArena<Rec, 2> a;
    Rec &r = a.emplaceBack("alpha", 3);
    a.emplaceBack("beta", 4);
    a.emplaceBack("gamma", 5);
    EXPECT_EQ(r.name, "alpha");
    EXPECT_EQ(a[2].name, "gamma");
    EXPECT_EQ(a[2].tag, 5);
}

TEST(SlabArena, DestructorsRunOnceEach)
{
    static int live = 0;
    struct Counted
    {
        Counted() { ++live; }
        ~Counted() { --live; }
    };
    {
        vp::SlabArena<Counted, 4> a;
        for (int i = 0; i < 11; ++i)
            a.emplaceBack();
        EXPECT_EQ(live, 11);
        a.clear();
        EXPECT_EQ(live, 0);
        for (int i = 0; i < 3; ++i)
            a.emplaceBack();
        EXPECT_EQ(live, 3);
    }
    EXPECT_EQ(live, 0); // arena destructor finishes the rest
}

TEST(SlabArena, ForEachMatchesIndexing)
{
    vp::SlabArena<int, 4> a;
    for (int i = 0; i < 7; ++i)
        a.emplaceBack(i);
    std::vector<int> seen;
    a.forEach([&](int v) { seen.push_back(v); });
    ASSERT_EQ(seen.size(), 7u);
    for (int i = 0; i < 7; ++i)
        EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

} // namespace
