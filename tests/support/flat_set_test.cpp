/**
 * @file
 * Tests for FlatSet64: inline/spill behaviour, the zero-key flag, and
 * differential equivalence against std::unordered_set.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "check/seed.hpp"
#include "support/flat_set.hpp"
#include "support/rng.hpp"

using vp::FlatSet64;

namespace
{

TEST(FlatSet64, EmptySet)
{
    FlatSet64 s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.size(), 0u);
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(42));
}

TEST(FlatSet64, InsertReportsNovelty)
{
    FlatSet64 s;
    EXPECT_TRUE(s.insert(5));
    EXPECT_FALSE(s.insert(5));
    EXPECT_TRUE(s.insert(6));
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.contains(5));
    EXPECT_TRUE(s.contains(6));
    EXPECT_FALSE(s.contains(7));
}

TEST(FlatSet64, ZeroIsAValidKey)
{
    // 0 is the spill table's empty sentinel, so it gets special
    // handling — it must still behave like any other element.
    FlatSet64 s;
    EXPECT_TRUE(s.insert(0));
    EXPECT_FALSE(s.insert(0));
    EXPECT_TRUE(s.contains(0));
    EXPECT_EQ(s.size(), 1u);
    // And it survives a spill to the table.
    for (std::uint64_t k = 1; k <= 100; ++k)
        s.insert(k);
    EXPECT_TRUE(s.contains(0));
    EXPECT_EQ(s.size(), 101u);
}

TEST(FlatSet64, SpillBoundaryPreservesMembership)
{
    // Cross the inline capacity (8) one element at a time; membership
    // and size must be seamless across the spill.
    FlatSet64 s;
    for (std::uint64_t k = 1; k <= 32; ++k) {
        EXPECT_TRUE(s.insert(k * 1000));
        EXPECT_EQ(s.size(), k);
        for (std::uint64_t j = 1; j <= k; ++j)
            ASSERT_TRUE(s.contains(j * 1000)) << "after " << k;
        EXPECT_FALSE(s.contains(999));
    }
}

TEST(FlatSet64, ClearForgets)
{
    FlatSet64 s;
    s.insert(0);
    for (std::uint64_t k = 1; k <= 50; ++k)
        s.insert(k);
    s.clear();
    EXPECT_TRUE(s.empty());
    EXPECT_FALSE(s.contains(0));
    EXPECT_FALSE(s.contains(7));
    EXPECT_TRUE(s.insert(7));
}

TEST(FlatSet64, ForEachVisitsEveryKeyOnce)
{
    FlatSet64 s;
    std::unordered_set<std::uint64_t> want;
    const std::uint64_t seed = vp::check::testSeed(11);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t k = rng.below(300); // collisions likely
        s.insert(k);
        want.insert(k);
    }
    std::vector<std::uint64_t> seen;
    s.forEach([&](std::uint64_t k) { seen.push_back(k); });
    EXPECT_EQ(seen.size(), want.size());
    std::sort(seen.begin(), seen.end());
    EXPECT_TRUE(std::adjacent_find(seen.begin(), seen.end()) ==
                seen.end());
    for (auto k : seen)
        EXPECT_TRUE(want.count(k));
}

TEST(FlatSet64, DifferentialAgainstStdSet)
{
    // Random interleaving of inserts and lookups, mirrored against
    // std::unordered_set: every return value must agree.
    const std::uint64_t seed = vp::check::testSeed(12);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    FlatSet64 s;
    std::unordered_set<std::uint64_t> ref;
    for (int i = 0; i < 20000; ++i) {
        // Small key space early, huge later — exercises inline, the
        // spill, several growths, and heavy duplicate traffic.
        const std::uint64_t k = rng.chance(0.3)
                                    ? rng.below(16)
                                    : rng.next();
        if (rng.chance(0.7)) {
            ASSERT_EQ(s.insert(k), ref.insert(k).second) << "key " << k;
        } else {
            ASSERT_EQ(s.contains(k), ref.count(k) != 0) << "key " << k;
        }
        ASSERT_EQ(s.size(), ref.size());
    }
}

} // namespace
