/**
 * @file
 * Tests for FlatIndexMap64: lookup/insert semantics, the zero key,
 * growth, and differential equivalence against std::unordered_map.
 */

#include <gtest/gtest.h>

#include <unordered_map>

#include "check/seed.hpp"
#include "support/flat_map.hpp"
#include "support/rng.hpp"

using vp::FlatIndexMap64;

namespace
{

TEST(FlatIndexMap64, EmptyMap)
{
    FlatIndexMap64 m;
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.size(), 0u);
    EXPECT_EQ(m.lookup(0), FlatIndexMap64::kNoIndex);
    EXPECT_EQ(m.lookup(42), FlatIndexMap64::kNoIndex);
}

TEST(FlatIndexMap64, InsertThenLookup)
{
    FlatIndexMap64 m;
    m.insert(100, 0);
    m.insert(200, 1);
    EXPECT_EQ(m.lookup(100), 0u);
    EXPECT_EQ(m.lookup(200), 1u);
    EXPECT_EQ(m.lookup(300), FlatIndexMap64::kNoIndex);
    EXPECT_EQ(m.size(), 2u);
}

TEST(FlatIndexMap64, ZeroIsAValidKey)
{
    // Emptiness is tracked on the value side precisely so that key 0
    // (a real bucketed address) needs no special casing.
    FlatIndexMap64 m;
    m.insert(0, 7);
    EXPECT_EQ(m.lookup(0), 7u);
    for (std::uint64_t k = 1; k <= 200; ++k)
        m.insert(k, static_cast<std::uint32_t>(k));
    EXPECT_EQ(m.lookup(0), 7u); // survives growth
}

TEST(FlatIndexMap64, GrowthPreservesEveryEntry)
{
    FlatIndexMap64 m;
    // Well past the initial 64-slot table and several doublings.
    for (std::uint32_t i = 0; i < 5000; ++i)
        m.insert(static_cast<std::uint64_t>(i) * 0x9E3779B9u, i);
    EXPECT_EQ(m.size(), 5000u);
    for (std::uint32_t i = 0; i < 5000; ++i)
        ASSERT_EQ(m.lookup(static_cast<std::uint64_t>(i) * 0x9E3779B9u),
                  i);
}

TEST(FlatIndexMap64, ClearForgets)
{
    FlatIndexMap64 m;
    m.insert(1, 1);
    m.insert(2, 2);
    m.clear();
    EXPECT_TRUE(m.empty());
    EXPECT_EQ(m.lookup(1), FlatIndexMap64::kNoIndex);
    m.insert(1, 9);
    EXPECT_EQ(m.lookup(1), 9u);
}

TEST(FlatIndexMap64, DifferentialAgainstStdMap)
{
    const std::uint64_t seed = vp::check::testSeed(13);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    FlatIndexMap64 m;
    std::unordered_map<std::uint64_t, std::uint32_t> ref;
    std::uint32_t next_index = 0;
    for (int i = 0; i < 20000; ++i) {
        // The profiler's access pattern: look a key up, insert it with
        // the next dense index on a miss.
        const std::uint64_t k =
            rng.chance(0.5) ? rng.below(64) : rng.next();
        const auto it = ref.find(k);
        const std::uint32_t want =
            it == ref.end() ? FlatIndexMap64::kNoIndex : it->second;
        ASSERT_EQ(m.lookup(k), want) << "key " << k;
        if (it == ref.end()) {
            m.insert(k, next_index);
            ref.emplace(k, next_index);
            ++next_index;
        }
        ASSERT_EQ(m.size(), ref.size());
    }
    EXPECT_GT(m.size(), 64u); // growth definitely exercised
}

TEST(FlatIndexMap64Death, ReservedValuePanics)
{
    FlatIndexMap64 m;
    EXPECT_DEATH(m.insert(5, FlatIndexMap64::kNoIndex), "reserved");
}

} // namespace
