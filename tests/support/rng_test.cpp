/**
 * @file
 * Tests for the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <set>

#include "support/rng.hpp"

namespace
{

TEST(Rng, SameSeedSameSequence)
{
    vp::Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    vp::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsSequence)
{
    vp::Rng a(99);
    const auto first = a.next();
    a.next();
    a.reseed(99);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    vp::Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllResidues)
{
    vp::Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusiveBounds)
{
    vp::Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    vp::Rng rng(3);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    vp::Rng rng(42);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

} // namespace
