/**
 * @file
 * Tests for the trace-event timeline: spans land on the right worker
 * lane and the serialized JSON follows the Chrome trace-event shape
 * Perfetto loads (complete "X" events plus thread_name metadata).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "support/trace.hpp"

using vp::trace::ScopedSpan;
using vp::trace::TraceCollector;
using vp::trace::TraceEvent;

namespace
{

/** Resets the global collector around each test. */
struct CollectorGuard
{
    CollectorGuard()
    {
        TraceCollector::global().clear();
        TraceCollector::global().setEnabled(true);
    }
    ~CollectorGuard()
    {
        TraceCollector::global().setEnabled(false);
        TraceCollector::global().clear();
    }
};

TEST(Trace, DisabledCollectorRecordsNothing)
{
    auto &tc = TraceCollector::global();
    tc.setEnabled(false);
    tc.clear();
    TraceEvent ev;
    ev.name = "dropped";
    tc.addComplete(ev);
    { ScopedSpan span("also dropped"); }
    EXPECT_EQ(tc.size(), 0u);
    EXPECT_EQ(tc.nowUs(), 0u);
}

TEST(Trace, ScopedSpanRecordsOnCallingThreadLane)
{
    CollectorGuard guard;
    {
        ScopedSpan span("main work");
        span.arg("k", "v");
    }
    std::thread worker([] {
        vp::trace::setWorkerId(3);
        ScopedSpan span("worker work");
    });
    worker.join();

    const auto evs = TraceCollector::global().events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].name, "main work");
    EXPECT_EQ(evs[0].tid, 0);
    ASSERT_EQ(evs[0].args.size(), 1u);
    EXPECT_EQ(evs[0].args[0].first, "k");
    EXPECT_EQ(evs[1].name, "worker work");
    EXPECT_EQ(evs[1].tid, 3);
}

TEST(Trace, JsonHasMetadataAndCompleteEvents)
{
    CollectorGuard guard;
    TraceEvent a;
    a.name = "job \"quoted\"";
    a.tid = 2;
    a.tsUs = 10;
    a.durUs = 5;
    a.args.emplace_back("shard", "0");
    TraceCollector::global().addComplete(a);

    std::ostringstream os;
    TraceCollector::global().writeJson(os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
    EXPECT_NE(json.find("\"worker 2\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ts\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 5"), std::string::npos);
    // Quotes in names must be escaped or the file won't load.
    EXPECT_NE(json.find("job \\\"quoted\\\""), std::string::npos);
    EXPECT_NE(json.find("\"shard\": \"0\""), std::string::npos);
}

TEST(Trace, EventsAreSerializedInTimeOrder)
{
    CollectorGuard guard;
    TraceEvent late, early;
    late.name = "late";
    late.tsUs = 100;
    early.name = "early";
    early.tsUs = 1;
    TraceCollector::global().addComplete(late);
    TraceCollector::global().addComplete(early);

    std::ostringstream os;
    TraceCollector::global().writeJson(os);
    const std::string json = os.str();
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));
}

TEST(Trace, EnableResetsEpoch)
{
    CollectorGuard guard;
    const std::uint64_t t0 = TraceCollector::global().nowUs();
    EXPECT_LT(t0, 1'000'000u); // fresh epoch: well under a second old
}

} // namespace
