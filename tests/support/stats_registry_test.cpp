/**
 * @file
 * Tests for the runtime stats registry: exact concurrent counting,
 * reference-checked quantiles, and shard-merge algebra (counters and
 * moments must merge associatively, like the TNV tables).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "support/stats_registry.hpp"

using vp::stats::Cid;
using vp::stats::Distribution;
using vp::stats::Registry;
using vp::stats::ScopedRegistry;

namespace
{

/** Restores the global enable flag whatever a test does to it. */
struct EnabledGuard
{
    EnabledGuard() { vp::stats::setEnabled(true); }
    ~EnabledGuard() { vp::stats::setEnabled(false); }
};

TEST(StatsRegistry, CounterNamesAreDottedAndUnique)
{
    std::vector<std::string> names;
    for (unsigned c = 0; c < static_cast<unsigned>(Cid::NumCounters);
         ++c) {
        const std::string n = vp::stats::counterName(
            static_cast<Cid>(c));
        EXPECT_NE(n.find('.'), std::string::npos) << n;
        names.push_back(n);
    }
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(StatsRegistry, ConcurrentIncrementsAreExact)
{
    // The counters are the hot path: N threads hammering the same
    // counter must lose nothing (relaxed atomics, not racy loads).
    Registry reg;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 50'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                reg.add(Cid::TnvInserts);
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.counter(Cid::TnvInserts), kThreads * kPerThread);
}

TEST(StatsRegistry, ConcurrentObserveAndGaugeAreSafe)
{
    Registry reg;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 2'000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&reg, t] {
            for (int i = 0; i < kPerThread; ++i) {
                reg.observe("d", static_cast<double>(i));
                reg.gaugeMax("g", static_cast<double>(t));
            }
        });
    }
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(reg.distribution("d").count(),
              std::uint64_t(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(reg.gaugeValues().at("g"), kThreads - 1);
}

TEST(StatsDistribution, MomentsAreExact)
{
    Distribution d;
    for (int i = 1; i <= 100; ++i)
        d.add(i);
    EXPECT_EQ(d.count(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
}

TEST(StatsDistribution, QuantilesMatchNearestRankReference)
{
    // Below the reservoir cap the quantiles must be exact nearest-rank
    // order statistics, not an approximation.
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(static_cast<double>((i * 7919) % 1000));
    Distribution d;
    for (double v : values)
        d.add(v);

    std::sort(values.begin(), values.end());
    auto reference = [&](double q) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(values.size())));
        return values[rank == 0 ? 0 : rank - 1];
    };
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0})
        EXPECT_DOUBLE_EQ(d.quantile(q), reference(q)) << "q=" << q;
}

TEST(StatsDistribution, ReservoirStaysBoundedAndQuantilesStaySane)
{
    Distribution d;
    const std::size_t n = Distribution::kSampleCap * 5;
    for (std::size_t i = 0; i < n; ++i)
        d.add(static_cast<double>(i));
    EXPECT_EQ(d.count(), n);
    EXPECT_LE(d.samples().size(), Distribution::kSampleCap);
    // Decimated quantiles are approximate but must stay in the ballpark
    // for a uniform ramp.
    EXPECT_NEAR(d.quantile(0.5), static_cast<double>(n) / 2,
                static_cast<double>(n) * 0.05);
}

Registry
makeRegistry(std::uint64_t inserts, double gauge,
             const std::vector<double> &samples)
{
    Registry r;
    r.add(Cid::TnvInserts, inserts);
    r.gaugeMax("g", gauge);
    for (double s : samples)
        r.observe("d", s);
    return r;
}

TEST(StatsRegistry, MergeIsAssociative)
{
    const Registry a = makeRegistry(3, 1.0, {1, 2, 3});
    const Registry b = makeRegistry(5, 9.0, {4, 5});
    const Registry c = makeRegistry(7, 4.0, {6, 7, 8, 9});

    Registry left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    Registry bc = b;     // a + (b + c)
    bc.merge(c);
    Registry right = a;
    right.merge(bc);

    EXPECT_EQ(left.counter(Cid::TnvInserts),
              right.counter(Cid::TnvInserts));
    EXPECT_EQ(left.counter(Cid::TnvInserts), 15u);
    EXPECT_DOUBLE_EQ(left.gaugeValues().at("g"),
                     right.gaugeValues().at("g"));
    const Distribution dl = left.distribution("d");
    const Distribution dr = right.distribution("d");
    EXPECT_EQ(dl.count(), dr.count());
    EXPECT_DOUBLE_EQ(dl.min(), dr.min());
    EXPECT_DOUBLE_EQ(dl.max(), dr.max());
    EXPECT_DOUBLE_EQ(dl.mean(), dr.mean());
    EXPECT_DOUBLE_EQ(dl.quantile(0.5), dr.quantile(0.5));
}

TEST(StatsRegistry, MergedMomentsMatchUnshardedStream)
{
    // Shard a stream three ways, merge, and compare against profiling
    // the whole stream in one registry — the job-count-independence
    // guarantee for distributions.
    std::vector<double> stream;
    for (int i = 0; i < 3000; ++i)
        stream.push_back(std::sin(i) * 100.0);

    Registry whole;
    for (double v : stream)
        whole.observe("d", v);

    Registry shards[3];
    for (std::size_t i = 0; i < stream.size(); ++i)
        shards[i % 3].observe("d", stream[i]);
    Registry merged = shards[0];
    merged.merge(shards[1]);
    merged.merge(shards[2]);

    const Distribution dw = whole.distribution("d");
    const Distribution dm = merged.distribution("d");
    EXPECT_EQ(dw.count(), dm.count());
    EXPECT_DOUBLE_EQ(dw.min(), dm.min());
    EXPECT_DOUBLE_EQ(dw.max(), dm.max());
    EXPECT_NEAR(dw.mean(), dm.mean(), 1e-9);
}

TEST(StatsRegistry, ResetZeroesEverything)
{
    Registry r = makeRegistry(4, 2.0, {1.0});
    r.reset();
    EXPECT_EQ(r.counter(Cid::TnvInserts), 0u);
    EXPECT_TRUE(r.gaugeValues().empty());
    EXPECT_EQ(r.distribution("d").count(), 0u);
}

// The macro-behavior tests only apply when the hooks are compiled in.
#ifndef VP_NO_STATS

TEST(StatsRegistry, MacrosRespectEnableFlagAndCurrentRegistry)
{
    Registry local;
    const std::uint64_t before =
        vp::stats::global().counter(Cid::SimInsts);
    {
        ScopedRegistry scope(local);
        // Disabled: nothing recorded anywhere.
        vp::stats::setEnabled(false);
        VP_STAT_INC(Cid::SimInsts);
        EXPECT_EQ(local.counter(Cid::SimInsts), 0u);

        // Enabled: lands in the scoped (current) registry only.
        EnabledGuard on;
        VP_STAT_INC(Cid::SimInsts);
        VP_STAT_OBSERVE("scoped.dist", 1.5);
        EXPECT_EQ(local.counter(Cid::SimInsts), 1u);
        EXPECT_EQ(local.distribution("scoped.dist").count(), 1u);
    }
    EXPECT_EQ(vp::stats::global().counter(Cid::SimInsts), before);
    EXPECT_EQ(&vp::stats::current(), &vp::stats::global());
}

TEST(StatsRegistry, ScopedTimerRecordsMicroseconds)
{
    Registry local;
    ScopedRegistry scope(local);
    EnabledGuard on;
    {
        VP_STAT_TIMER(t, "timer.dist");
    }
    EXPECT_EQ(local.distribution("timer.dist").count(), 1u);
    EXPECT_GE(local.distribution("timer.dist").min(), 0.0);
}

#endif // VP_NO_STATS

TEST(StatsRegistry, JsonIncludesEveryCounterAndParses)
{
    Registry r = makeRegistry(2, 3.0, {1, 2, 3, 4});
    std::ostringstream os;
    r.writeJson(os);
    const std::string json = os.str();
    // Stable schema: every well-known counter present, zero or not.
    for (unsigned c = 0; c < static_cast<unsigned>(Cid::NumCounters);
         ++c) {
        EXPECT_NE(json.find(std::string("\"") +
                            vp::stats::counterName(
                                static_cast<Cid>(c)) +
                            "\""),
                  std::string::npos);
    }
    EXPECT_NE(json.find("\"version\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(StatsRegistry, TextDumpShowsOnlyNonzero)
{
    Registry r;
    r.add(Cid::TnvClears, 2);
    std::ostringstream os;
    r.writeText(os);
    EXPECT_NE(os.str().find("core.tnv.clears = 2"), std::string::npos);
    EXPECT_EQ(os.str().find("core.tnv.inserts"), std::string::npos);
}

} // namespace
