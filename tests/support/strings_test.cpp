/**
 * @file
 * Tests for string utilities, especially integer-literal parsing used
 * by the assembler.
 */

#include <gtest/gtest.h>

#include "support/strings.hpp"

namespace
{

TEST(Strings, Trim)
{
    EXPECT_EQ(vp::trim("  abc \t"), "abc");
    EXPECT_EQ(vp::trim(""), "");
    EXPECT_EQ(vp::trim("   "), "");
    EXPECT_EQ(vp::trim("x"), "x");
}

TEST(Strings, SplitKeepsEmptyFields)
{
    const auto parts = vp::split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWhitespaceDropsEmpty)
{
    const auto parts = vp::splitWhitespace("  a \t b  c ");
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, StartsWith)
{
    EXPECT_TRUE(vp::startsWith("0x12", "0x"));
    EXPECT_FALSE(vp::startsWith("x", "0x"));
}

struct IntCase
{
    const char *text;
    std::int64_t expected;
};

class ParseIntValid : public ::testing::TestWithParam<IntCase>
{
};

TEST_P(ParseIntValid, Parses)
{
    std::int64_t v = 0;
    ASSERT_TRUE(vp::parseInt(GetParam().text, v)) << GetParam().text;
    EXPECT_EQ(v, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Literals, ParseIntValid,
    ::testing::Values(IntCase{"0", 0}, IntCase{"42", 42},
                      IntCase{"-17", -17}, IntCase{"+5", 5},
                      IntCase{"0x10", 16}, IntCase{"0XfF", 255},
                      IntCase{"0b101", 5}, IntCase{"1_000", 1000},
                      IntCase{"'a'", 97}, IntCase{"'\\n'", 10},
                      IntCase{"'\\0'", 0}, IntCase{"'\\\\'", 92},
                      IntCase{"  7 ", 7},
                      IntCase{"0xEDB88320", 0xEDB88320}));

class ParseIntInvalid : public ::testing::TestWithParam<const char *>
{
};

TEST_P(ParseIntInvalid, Rejects)
{
    std::int64_t v = 0;
    EXPECT_FALSE(vp::parseInt(GetParam(), v)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Garbage, ParseIntInvalid,
                         ::testing::Values("", "-", "0x", "abc", "12x",
                                           "0b2", "''", "'ab'", "--3"));

TEST(Strings, Format)
{
    EXPECT_EQ(vp::format("%d-%s", 3, "x"), "3-x");
    EXPECT_EQ(vp::format("%s", ""), "");
}

TEST(Strings, Hex64)
{
    EXPECT_EQ(vp::hex64(0x1234), "0x0000000000001234");
}

} // namespace
