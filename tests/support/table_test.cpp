/**
 * @file
 * Tests for the text-table renderer.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "support/table.hpp"

namespace
{

TEST(TextTable, RendersHeadersAndRows)
{
    vp::TextTable t({"name", "value"});
    t.row().cell("alpha").cell(std::int64_t(42));
    t.row().cell("b").cell(std::int64_t(7));
    std::ostringstream os;
    t.print(os, "Title");
    const std::string out = os.str();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("42"), std::string::npos);
}

TEST(TextTable, NumbersRightAligned)
{
    vp::TextTable t({"n"});
    t.row().cell(std::int64_t(5));
    t.row().cell(std::int64_t(12345));
    std::ostringstream os;
    t.print(os);
    // The short number must be padded on the left to the column width.
    EXPECT_NE(os.str().find("    5"), std::string::npos);
}

TEST(TextTable, PercentFormatsFraction)
{
    vp::TextTable t({"p"});
    t.row().percent(0.1234, 1);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("12.3"), std::string::npos);
}

TEST(TextTable, DoublePrecision)
{
    vp::TextTable t({"x"});
    t.row().cell(3.14159, 3);
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("3.142"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecials)
{
    vp::TextTable t({"a", "b"});
    t.row().cell("x,y").cell("quote\"inside");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"quote\"\"inside\"\n");
}

TEST(TextTable, MissingTrailingCellsRenderEmpty)
{
    vp::TextTable t({"a", "b", "c"});
    t.row().cell("only");
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(TextTable, NumRows)
{
    vp::TextTable t({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.row().cell("x");
    EXPECT_EQ(t.numRows(), 1u);
}

TEST(TextTableDeath, TooManyCellsPanics)
{
    vp::TextTable t({"a"});
    t.row().cell("x");
    EXPECT_DEATH(t.cell("y"), "too many cells");
}

TEST(TextTableDeath, CellBeforeRowPanics)
{
    vp::TextTable t({"a"});
    EXPECT_DEATH(t.cell("x"), "cell\\(\\) before row\\(\\)");
}

} // namespace
