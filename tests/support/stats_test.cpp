/**
 * @file
 * Tests for RunningStat, UnitHistogram and correlation helpers.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "support/stats.hpp"

namespace
{

TEST(RunningStat, EmptyIsZero)
{
    vp::RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStat, BasicMoments)
{
    vp::RunningStat s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_DOUBLE_EQ(s.variance(), 4.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStat, WeightsActLikeRepeats)
{
    vp::RunningStat weighted, repeated;
    weighted.addWeighted(3.0, 4.0);
    weighted.addWeighted(7.0, 2.0);
    for (int i = 0; i < 4; ++i)
        repeated.add(3.0);
    for (int i = 0; i < 2; ++i)
        repeated.add(7.0);
    EXPECT_NEAR(weighted.mean(), repeated.mean(), 1e-12);
    EXPECT_NEAR(weighted.variance(), repeated.variance(), 1e-12);
}

TEST(RunningStat, ZeroWeightIgnored)
{
    vp::RunningStat s;
    s.addWeighted(100.0, 0.0);
    EXPECT_EQ(s.count(), 0u);
}

TEST(RunningStatDeath, NegativeWeightPanics)
{
    vp::RunningStat s;
    EXPECT_DEATH(s.addWeighted(1.0, -1.0), "negative weight");
}

TEST(UnitHistogram, BucketsPartitionUnitInterval)
{
    vp::UnitHistogram h(10);
    h.add(0.0);
    h.add(0.05);
    h.add(0.95);
    h.add(1.0); // lands in the top bucket
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(9), 2.0);
    EXPECT_DOUBLE_EQ(h.total(), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketFraction(0), 0.5);
}

TEST(UnitHistogram, WeightsAccumulate)
{
    vp::UnitHistogram h(4);
    h.add(0.1, 3.0);
    h.add(0.6, 1.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 3.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(2), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketFraction(2), 0.25);
}

TEST(UnitHistogram, OutOfRangeClamped)
{
    vp::UnitHistogram h(10);
    h.add(-0.5);
    h.add(1.5);
    EXPECT_DOUBLE_EQ(h.bucketWeight(0), 1.0);
    EXPECT_DOUBLE_EQ(h.bucketWeight(9), 1.0);
}

TEST(UnitHistogram, LabelsFormatAsPercentRanges)
{
    vp::UnitHistogram h(10);
    EXPECT_EQ(h.bucketLabel(0), "[0,10)");
    EXPECT_EQ(h.bucketLabel(9), "[90,100]");
}

TEST(Correlation, PerfectPositive)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    const std::vector<double> ys = {2, 4, 6, 8};
    EXPECT_NEAR(vp::pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Correlation, PerfectNegative)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    const std::vector<double> ys = {8, 6, 4, 2};
    EXPECT_NEAR(vp::pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Correlation, ConstantSeriesIsZero)
{
    const std::vector<double> xs = {1, 2, 3};
    const std::vector<double> ys = {5, 5, 5};
    EXPECT_EQ(vp::pearsonCorrelation(xs, ys), 0.0);
}

TEST(Correlation, ShortSeriesIsZero)
{
    EXPECT_EQ(vp::pearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(WeightedMean, Basic)
{
    EXPECT_DOUBLE_EQ(vp::weightedMean({1.0, 3.0}, {1.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(vp::weightedMean({}, {}), 0.0);
}

} // namespace
