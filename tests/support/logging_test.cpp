/**
 * @file
 * Tests for the logging/reporting helpers.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "support/logging.hpp"

namespace
{

TEST(Logging, QuietFlagRoundTrips)
{
    vp::setQuiet(true);
    EXPECT_TRUE(vp::isQuiet());
    vp::setQuiet(false);
    EXPECT_FALSE(vp::isQuiet());
}

TEST(Logging, WarnAndInformDoNotCrash)
{
    vp::setQuiet(true); // keep test output clean
    vp_warn("warning %d", 42);
    vp_inform("inform %s", "text");
    vp::setQuiet(false);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(vp_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(vp_assert(1 == 2, "math is broken: %d", 3),
                 "assertion '1 == 2' failed: math is broken: 3");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(vp_fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(Logging, ShardIdPrefixesWarnings)
{
    ::testing::internal::CaptureStderr();
    {
        vp::ScopedLogShard shard(7);
        EXPECT_EQ(vp::logShard(), 7);
        vp_warn("inside the shard");
    }
    vp_warn("outside the shard");
    const std::string err = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn: [shard 7] inside the shard"),
              std::string::npos)
        << err;
    EXPECT_NE(err.find("warn: outside the shard"), std::string::npos);
    EXPECT_EQ(err.find("[shard 7] outside"), std::string::npos);
}

TEST(Logging, ScopedLogShardRestoresOuterShard)
{
    vp::ScopedLogShard outer(1);
    {
        vp::ScopedLogShard inner(2);
        EXPECT_EQ(vp::logShard(), 2);
    }
    EXPECT_EQ(vp::logShard(), 1);
}

TEST(Logging, ShardIdIsPerThread)
{
    vp::ScopedLogShard main_shard(1);
    int seen_in_thread = -2;
    std::thread other([&] { seen_in_thread = vp::logShard(); });
    other.join();
    EXPECT_EQ(seen_in_thread, -1); // other threads are untagged
    EXPECT_EQ(vp::logShard(), 1);
}

TEST(Logging, ConcurrentWarningsAreLineAtomic)
{
    // Satellite guarantee: each message is one write, so parallel
    // warnings never interleave mid-line.
    constexpr int kThreads = 8;
    constexpr int kPerThread = 50;
    ::testing::internal::CaptureStderr();
    {
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([t] {
                vp::ScopedLogShard shard(t);
                for (int i = 0; i < kPerThread; ++i)
                    vp_warn("message %d from thread %d", i, t);
            });
        }
        for (auto &th : threads)
            th.join();
    }
    const std::string err = ::testing::internal::GetCapturedStderr();

    // Every line must be a complete, well-formed warning.
    std::size_t lines = 0, pos = 0;
    while (pos < err.size()) {
        const std::size_t eol = err.find('\n', pos);
        ASSERT_NE(eol, std::string::npos);
        const std::string line = err.substr(pos, eol - pos);
        EXPECT_EQ(line.rfind("warn: [shard ", 0), 0u) << line;
        EXPECT_NE(line.find("] message "), std::string::npos) << line;
        ++lines;
        pos = eol + 1;
    }
    EXPECT_EQ(lines, kThreads * kPerThread);
}

} // namespace
