/**
 * @file
 * Tests for the logging/reporting helpers.
 */

#include <gtest/gtest.h>

#include "support/logging.hpp"

namespace
{

TEST(Logging, QuietFlagRoundTrips)
{
    vp::setQuiet(true);
    EXPECT_TRUE(vp::isQuiet());
    vp::setQuiet(false);
    EXPECT_FALSE(vp::isQuiet());
}

TEST(Logging, WarnAndInformDoNotCrash)
{
    vp::setQuiet(true); // keep test output clean
    vp_warn("warning %d", 42);
    vp_inform("inform %s", "text");
    vp::setQuiet(false);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(vp_panic("boom %d", 7), "boom 7");
}

TEST(LoggingDeath, AssertMessageIncludesCondition)
{
    EXPECT_DEATH(vp_assert(1 == 2, "math is broken: %d", 3),
                 "assertion '1 == 2' failed: math is broken: 3");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(vp_fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

} // namespace
