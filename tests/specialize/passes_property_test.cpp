/**
 * @file
 * Property tests for the optimizer passes: idempotence (a second run
 * finds nothing new), semantic preservation on randomized straight-
 * line code, and stability of compaction bookkeeping.
 */

#include <gtest/gtest.h>

#include "check/seed.hpp"
#include "specialize/passes.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

using namespace specialize;
using namespace vpsim;

namespace
{

/** Random straight-line pure-ALU procedure ending in ret. */
std::string
randomStraightLine(vp::Rng &rng, int num_insts)
{
    static const char *const dests[] = {"t0", "t1", "t2", "t3", "a0"};
    static const char *const srcs[] = {"a0", "a1", "t0", "t1", "t2",
                                       "t3"};
    std::string body = "f:\n";
    // Initialize scratch so no instruction reads an undefined temp.
    body += "    mov  t0, a0\n    mov  t1, a1\n";
    body += "    xor  t2, a0, a1\n    li   t3, 5\n";
    for (int i = 0; i < num_insts; ++i) {
        const char *rd = dests[rng.below(std::size(dests))];
        const char *ra = srcs[rng.below(std::size(srcs))];
        const char *rb = srcs[rng.below(std::size(srcs))];
        switch (rng.below(6)) {
          case 0:
            body += vp::format("    add  %s, %s, %s\n", rd, ra, rb);
            break;
          case 1:
            body += vp::format("    sub  %s, %s, %s\n", rd, ra, rb);
            break;
          case 2:
            body += vp::format("    mul  %s, %s, %s\n", rd, ra, rb);
            break;
          case 3:
            body += vp::format("    xori %s, %s, %lld\n", rd, ra,
                               static_cast<long long>(
                                   rng.range(-32, 32)));
            break;
          case 4:
            body += vp::format("    slli %s, %s, %llu\n", rd, ra,
                               static_cast<unsigned long long>(
                                   rng.below(6)));
            break;
          default:
            body += vp::format("    li   %s, %lld\n", rd,
                               static_cast<long long>(
                                   rng.range(-99, 99)));
            break;
        }
    }
    body += "    ret\n";
    return body;
}

/** Wraps a procedure body in a runnable program printing f(x, y). */
Program
harness(const std::string &f_body, std::int64_t x, std::int64_t y)
{
    return assemble(vp::format(R"(
main:
    li   a0, %lld
    li   a1, %lld
    call f
    syscall puti
    li   a0, 0
    syscall exit
%s)",
                               static_cast<long long>(x),
                               static_cast<long long>(y),
                               f_body.c_str()));
}

std::string
run(const Program &prog)
{
    Cpu cpu(prog, CpuConfig{1u << 16, 100000});
    const RunResult res = cpu.run();
    EXPECT_TRUE(res.exited());
    return cpu.output();
}

class PassProperties : public ::testing::TestWithParam<int>
{
};

TEST_P(PassProperties, OptimizerPreservesSemanticsAndIsIdempotent)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int round = 0; round < 25; ++round) {
        const std::string body =
            randomStraightLine(rng, 3 + static_cast<int>(rng.below(12)));
        const std::int64_t x = rng.range(-1000, 1000);
        const std::int64_t y = rng.range(-1000, 1000);

        Program prog = harness(body, x, y);
        const std::string expected = run(prog);

        const Procedure *nothing = prog.findProc("f");
        (void)nothing; // f is a bare label here, not a .proc
        const std::uint32_t begin = prog.codeAddress("f");
        const auto end = static_cast<std::uint32_t>(prog.numInsts());

        // Optimize with both arguments bound to their actual values:
        // the whole body must fold, and the output stay identical.
        const std::vector<Binding> bindings = {
            {regA0, static_cast<std::uint64_t>(x)},
            {regA0 + 1, static_cast<std::uint64_t>(y)}};
        optimizeRegion(prog, begin, end, bindings);
        EXPECT_EQ(prog.validate(), "");
        EXPECT_EQ(run(prog), expected) << body;

        // Idempotence: a second pass finds nothing further.
        const std::uint32_t new_end =
            static_cast<std::uint32_t>(prog.numInsts());
        const PassStats again =
            optimizeRegion(prog, begin, new_end, bindings);
        EXPECT_EQ(again.total(), 0u) << body;
    }
}

TEST_P(PassProperties, UnboundOptimizationAlsoPreservesSemantics)
{
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(GetParam()) * 7211 + 9);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int round = 0; round < 25; ++round) {
        const std::string body =
            randomStraightLine(rng, 3 + static_cast<int>(rng.below(12)));
        const std::int64_t x = rng.range(-1000, 1000);
        const std::int64_t y = rng.range(-1000, 1000);

        Program prog = harness(body, x, y);
        const std::string expected = run(prog);
        const std::uint32_t begin = prog.codeAddress("f");
        const auto end = static_cast<std::uint32_t>(prog.numInsts());
        // No bindings: only li-chains fold; must stay equivalent for
        // ALL inputs, spot-checked with the harness values.
        optimizeRegion(prog, begin, end, {});
        EXPECT_EQ(run(prog), expected) << body;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PassProperties, ::testing::Range(0, 4));

} // namespace
