/**
 * @file
 * Tests for the static purity analysis.
 */

#include <gtest/gtest.h>

#include "specialize/purity.hpp"
#include "vpsim/assembler.hpp"
#include "workloads/workload.hpp"

using namespace specialize;
using namespace vpsim;

namespace
{

const char *const src = R"(
    .data
g:  .word 0
    .text
    .proc main args=0
main:
    li   a0, 0
    syscall exit
    .endp
    .proc pure_alu args=2
pure_alu:
    add  a0, a0, a1
    muli a0, a0, 3
    ret
    .endp
    .proc pure_branchy args=1
pure_branchy:
    beqz a0, pb_zero
    addi a0, a0, -1
pb_zero:
    ret
    .endp
    .proc pure_caller args=2
pure_caller:
    addi sp, sp, -8
    st   ra, 0(sp)      # note: stack traffic makes this impure
    call pure_alu
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
    .endp
    .proc leaf_caller args=2
leaf_caller:
    jal  t0, pure_alu   # leaf-style call, no stack traffic
    jalr zero, t0
    .endp
    .proc loader args=0
loader:
    lb   a0, g
    ret
    .endp
    .proc storer args=1
storer:
    sb   a0, g(zero)
    ret
    .endp
    .proc printer args=1
printer:
    syscall puti
    ret
    .endp
    .proc calls_impure args=1
calls_impure:
    mov  s7, ra         # keep ra in a callee-saved reg: no stores
    addi a0, a0, 1
    call storer
    mov  ra, s7
    ret
    .endp
    .proc calls_pure args=2
calls_pure:
    mov  s7, ra
    call pure_alu
    mov  ra, s7
    ret
    .endp
)";

class PurityTest : public ::testing::Test
{
  protected:
    PurityTest() : prog(assemble(src)), analysis(prog) {}
    Program prog;
    PurityAnalysis analysis;
};

TEST_F(PurityTest, PureAluProcedure)
{
    EXPECT_EQ(analysis.verdict("pure_alu"), Purity::Pure);
    EXPECT_TRUE(analysis.isPure("pure_alu"));
}

TEST_F(PurityTest, PureWithBranches)
{
    EXPECT_EQ(analysis.verdict("pure_branchy"), Purity::Pure);
}

TEST_F(PurityTest, StackTrafficIsImpure)
{
    // Conservative: spilling ra to the stack is a store.
    EXPECT_EQ(analysis.verdict("pure_caller"), Purity::HasStore);
}

TEST_F(PurityTest, LoadIsImpure)
{
    EXPECT_EQ(analysis.verdict("loader"), Purity::HasLoad);
}

TEST_F(PurityTest, StoreIsImpure)
{
    EXPECT_EQ(analysis.verdict("storer"), Purity::HasStore);
}

TEST_F(PurityTest, SyscallIsImpure)
{
    EXPECT_EQ(analysis.verdict("printer"), Purity::HasSyscall);
}

TEST_F(PurityTest, ImpurityPropagatesThroughCalls)
{
    EXPECT_EQ(analysis.verdict("calls_impure"), Purity::CallsImpure);
}

TEST_F(PurityTest, PurityPropagatesThroughPureCalls)
{
    EXPECT_EQ(analysis.verdict("calls_pure"), Purity::Pure);
}

TEST_F(PurityTest, PurityPropagatesThroughLeafCalls)
{
    // leaf_caller calls pure_alu without stack traffic and returns via
    // a non-ra link register: jalr zero, t0 is a computed jump.
    EXPECT_EQ(analysis.verdict("leaf_caller"),
              Purity::HasComputedJump);
}

TEST_F(PurityTest, UnknownProcedure)
{
    EXPECT_EQ(analysis.verdict("missing"), Purity::EscapesBody);
}

TEST_F(PurityTest, NameRoundTrip)
{
    EXPECT_STREQ(purityName(Purity::Pure), "pure");
    EXPECT_STREQ(purityName(Purity::HasStore), "stores memory");
    EXPECT_STREQ(purityName(Purity::CallsImpure), "calls impure");
}

TEST(PurityWorkloads, VerdictsOnRealSuite)
{
    // nqueens `safe` loads flags -> impure; matmul `scale` is pure.
    {
        const auto &w = workloads::findWorkload("nqueens");
        PurityAnalysis analysis(w.program());
        EXPECT_EQ(analysis.verdict("safe"), Purity::HasLoad);
    }
    {
        const auto &w = workloads::findWorkload("matmul");
        PurityAnalysis analysis(w.program());
        EXPECT_EQ(analysis.verdict("scale"), Purity::Pure);
    }
    {
        const auto &w = workloads::findWorkload("compress");
        PurityAnalysis analysis(w.program());
        EXPECT_EQ(analysis.verdict("emit"), Purity::HasStore);
    }
}

} // namespace
