/**
 * @file
 * Tests for the optimization passes and the procedure specializer:
 * semantic equivalence (guarded dispatch must preserve behaviour for
 * matching AND non-matching values), fold/DCE correctness, and
 * dynamic-count savings.
 */

#include <gtest/gtest.h>

#include "specialize/passes.hpp"
#include "specialize/specializer.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/disasm.hpp"

using namespace specialize;
using namespace vpsim;

namespace
{

// f(x, mode): branches on mode, computes different expressions.
const char *const calcSrc = R"(
    .proc main args=0
main:
    li   s0, 0              # checksum
    li   s1, 30             # iterations
    li   s2, 0              # x
loop:
    mov  a0, s2
    li   a1, 3
    call f
    add  s0, s0, a0
    addi s2, s2, 1
    addi s1, s1, -1
    bnez s1, loop
    mov  a0, s0
    syscall puti
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    andi t0, a1, 1
    beqz t0, even
    mul  t1, a0, a1         # odd mode: x*mode + mode*mode - mode/2 + 5
    mul  t2, a1, a1
    add  t1, t1, t2
    srai t3, a1, 1
    sub  t1, t1, t3
    addi a0, t1, 5
    jmp  done
even:
    slli t1, a0, 1          # even mode: 2x - mode
    sub  a0, t1, a1
done:
    seqi t4, a1, 7          # "lucky mode" tweak
    beqz t4, noluck
    addi a0, a0, 99
noluck:
    li   t2, 1000
    blt  a0, t2, small
    srai a0, a0, 1
small:
    ret
    .endp
)";

std::int64_t
runProgram(const Program &prog, std::string *output = nullptr)
{
    Cpu cpu(prog, CpuConfig{1u << 18, 10'000'000});
    const RunResult res = cpu.run();
    EXPECT_TRUE(res.exited());
    if (output)
        *output = cpu.output();
    return static_cast<std::int64_t>(res.dynamicInsts);
}

TEST(Specializer, PreservesSemanticsOnMatchingValue)
{
    Program orig = assemble(calcSrc);
    std::string orig_out;
    runProgram(orig, &orig_out);

    // main always calls f with a1 = 3: binding matches every call.
    const auto result = specializeProcedure(
        orig, "f", {{regA0 + 1, 3}});
    std::string spec_out;
    runProgram(result.program, &spec_out);
    EXPECT_EQ(spec_out, orig_out);
}

TEST(Specializer, ReducesDynamicInstructionsWhenGuardHits)
{
    Program orig = assemble(calcSrc);
    const auto before = runProgram(orig);
    const auto result =
        specializeProcedure(orig, "f", {{regA0 + 1, 3}});
    const auto after = runProgram(result.program);
    // Folding the mode test + immediating the mul must beat the
    // guard's own cost.
    EXPECT_LT(after, before);
    EXPECT_GT(result.stats.branchesFolded, 0u);
    EXPECT_GT(result.stats.total(), 0u);
}

TEST(Specializer, PreservesSemanticsOnMismatch)
{
    Program orig = assemble(calcSrc);
    std::string orig_out;
    runProgram(orig, &orig_out);
    // Bind a value that never occurs: guard always fails, the general
    // path must reproduce the original behaviour exactly.
    const auto result =
        specializeProcedure(orig, "f", {{regA0 + 1, 999}});
    std::string spec_out;
    std::int64_t insts = runProgram(result.program, &spec_out);
    EXPECT_EQ(spec_out, orig_out);
    EXPECT_GT(insts, 0);
}

TEST(Specializer, MultipleBindings)
{
    Program orig = assemble(calcSrc);
    std::string orig_out;
    runProgram(orig, &orig_out);
    // Bind both arguments; x varies so the guard only matches x==5
    // calls — output must still be identical.
    const auto result = specializeProcedure(
        orig, "f", {{regA0, 5}, {regA0 + 1, 3}});
    std::string spec_out;
    runProgram(result.program, &spec_out);
    EXPECT_EQ(spec_out, orig_out);
}

TEST(Specializer, ResultMetadata)
{
    Program orig = assemble(calcSrc);
    const auto result =
        specializeProcedure(orig, "f", {{regA0 + 1, 3}});
    const Program &p = result.program;
    EXPECT_NE(p.findProc("f$spec"), nullptr);
    EXPECT_EQ(p.codeLabels.at("f$spec"), result.specializedEntry);
    EXPECT_EQ(p.codeLabels.at("f$guard"), result.guardEntry);
    // The original body is untouched; call sites now reach the guard.
    const Procedure *f = p.findProc("f");
    EXPECT_EQ(p.code[f->entry].op, orig.code[f->entry].op);
    bool call_redirected = false;
    for (std::uint32_t pc = 0; pc < f->entry; ++pc) {
        if (p.code[pc].op == Opcode::JAL)
            call_redirected |=
                p.code[pc].imm ==
                static_cast<std::int64_t>(result.guardEntry);
    }
    EXPECT_TRUE(call_redirected);
    // Guard: 2 insts per binding + the dispatch jump.
    EXPECT_EQ(result.guardLength, 2u * 1 + 1u);
    EXPECT_EQ(p.validate(), "");
}

TEST(SpecializerDeath, UnknownProcedureIsFatal)
{
    Program orig = assemble(calcSrc);
    EXPECT_EXIT(specializeProcedure(orig, "nope", {{4, 1}}),
                ::testing::ExitedWithCode(1), "unknown procedure");
}

TEST(SpecializerDeath, EmptyBindingsFatal)
{
    Program orig = assemble(calcSrc);
    EXPECT_EXIT(specializeProcedure(orig, "f", {}),
                ::testing::ExitedWithCode(1), "no bindings");
}

TEST(SpecializerDeath, ZeroRegisterBindingFatal)
{
    Program orig = assemble(calcSrc);
    EXPECT_EXIT(specializeProcedure(orig, "f", {{0, 1}}),
                ::testing::ExitedWithCode(1), "not specializable");
}

// ---------------------------------------------------------------------
// Pass-level tests
// ---------------------------------------------------------------------

TEST(ConstantFold, FoldsStraightLineChain)
{
    Program p = assemble(R"(
f:
    li   t0, 6
    addi t1, t0, 4          # 10
    muli t2, t1, 3          # 30
    add  a0, t2, t0         # 36
    ret
)");
    const PassStats stats = constantFold(
        p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(stats.foldedToConst, 3u);
    EXPECT_EQ(p.code[3].op, Opcode::LI);
    EXPECT_EQ(p.code[3].imm, 36);
}

TEST(ConstantFold, SeedsBindings)
{
    Program p = assemble(R"(
f:
    muli t0, a1, 4
    add  a0, a0, t0
    ret
)");
    const PassStats stats =
        constantFold(p, 0, 3, {{regA0 + 1, 5}});
    EXPECT_EQ(stats.foldedToConst, 1u);
    EXPECT_EQ(p.code[0].op, Opcode::LI);
    EXPECT_EQ(p.code[0].imm, 20);
    // a0 stays unknown: add becomes add-immediate.
    EXPECT_EQ(p.code[1].op, Opcode::ADDI);
    EXPECT_EQ(p.code[1].imm, 20);
}

TEST(ConstantFold, FoldsTakenBranchToJmp)
{
    Program p = assemble(R"(
f:
    li   t0, 1
    bnez t0, target
    addi a0, a0, 1
target:
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[1].op, Opcode::JMP);
    EXPECT_EQ(p.code[1].imm, 3);
}

TEST(ConstantFold, FoldsUntakenBranchToNop)
{
    Program p = assemble(R"(
f:
    li   t0, 0
    bnez t0, target
    addi a0, a0, 1
target:
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[1].op, Opcode::NOP);
}

TEST(ConstantFold, MergesAtJoinPoints)
{
    // t0 is 7 on both arms -> foldable after the join; t1 differs ->
    // not foldable.
    Program p = assemble(R"(
f:
    beqz a0, other
    li   t0, 7
    li   t1, 1
    jmp  join
other:
    li   t0, 7
    li   t1, 2
join:
    addi a1, t0, 1
    add  a2, t1, t1
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[6].op, Opcode::LI) << disassemble(p.code[6]);
    EXPECT_EQ(p.code[6].imm, 8);
    EXPECT_NE(p.code[7].op, Opcode::LI);
}

TEST(ConstantFold, CallsInvalidateRegisters)
{
    Program p = assemble(R"(
f:
    li   t0, 5
    call g
    addi a0, t0, 1          # t0 may be clobbered: not foldable
    ret
g:
    ret
)");
    constantFold(p, 0, 4, {});
    EXPECT_EQ(p.code[2].op, Opcode::ADDI);
}

TEST(ConstantFold, LoadsAreUnknown)
{
    Program p = assemble(R"(
    .data
w:  .word 9
    .text
f:
    la   t0, w
    ld   t1, 0(t0)
    addi a0, t1, 1
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[2].op, Opcode::ADDI); // not folded
}

TEST(ConstantFold, DivByZeroConstantNotFolded)
{
    Program p = assemble(R"(
f:
    li   t0, 0
    li   t1, 8
    div  a0, t1, t0
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[2].op, Opcode::DIV); // must still trap at runtime
}

TEST(ConstantFold, SubWithConstRhsBecomesAddi)
{
    Program p = assemble(R"(
f:
    li   t0, 4
    sub  a0, a1, t0
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[1].op, Opcode::ADDI);
    EXPECT_EQ(p.code[1].imm, -4);
}

TEST(ConstantFold, CommutativeSwapForConstLhs)
{
    Program p = assemble(R"(
f:
    li   t0, 6
    mul  a0, t0, a1
    ret
)");
    constantFold(p, 0, static_cast<std::uint32_t>(p.numInsts()), {});
    EXPECT_EQ(p.code[1].op, Opcode::MULI);
    EXPECT_EQ(p.code[1].ra, regA0 + 1);
    EXPECT_EQ(p.code[1].imm, 6);
}

TEST(Dce, RemovesDeadTemporaries)
{
    Program p = assemble(R"(
f:
    li   t0, 5              # dead: t0 never used before overwrite
    li   t0, 6
    addi a0, t0, 0
    li   t5, 9              # dead: temp at exit
    ret
)");
    const PassStats stats =
        deadCodeEliminate(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    EXPECT_EQ(stats.removedDead, 2u);
    EXPECT_EQ(p.code[0].op, Opcode::NOP);
    EXPECT_EQ(p.code[3].op, Opcode::NOP);
    EXPECT_EQ(p.code[1].op, Opcode::LI); // live chain kept
}

TEST(Dce, KeepsCalleeSavedAndReturnRegisters)
{
    Program p = assemble(R"(
f:
    li   s0, 1              # callee-visible: kept
    li   a0, 2              # return value: kept
    ret
)");
    const PassStats stats = deadCodeEliminate(p, 0, 3);
    EXPECT_EQ(stats.removedDead, 0u);
}

TEST(Dce, KeepsValuesLiveAcrossBranches)
{
    Program p = assemble(R"(
f:
    li   t0, 5
    beqz a0, use
    li   a0, 0
    ret
use:
    mov  a0, t0
    ret
)");
    const PassStats stats =
        deadCodeEliminate(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    EXPECT_EQ(stats.removedDead, 0u);
}

TEST(Dce, CallArgumentsAreLive)
{
    Program p = assemble(R"(
f:
    li   a0, 3              # argument to g: live
    call g
    ret
g:
    ret
)");
    const PassStats stats = deadCodeEliminate(p, 0, 3);
    EXPECT_EQ(stats.removedDead, 0u);
}

TEST(Dce, TempDeadAfterCall)
{
    Program p = assemble(R"(
f:
    li   t3, 3              # dead: call clobbers t3, nobody reads it
    call g
    ret
g:
    ret
)");
    const PassStats stats = deadCodeEliminate(p, 0, 3);
    EXPECT_EQ(stats.removedDead, 1u);
}

TEST(CompactNops, RemovesAndRemaps)
{
    Program p = assemble(R"(
f:
    nop
    li   t0, 1
    nop
    bnez t0, target
    nop
target:
    li   a0, 0
    ret
)");
    const PassStats stats =
        compactNops(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    EXPECT_EQ(stats.nopsCompacted, 3u);
    ASSERT_EQ(p.numInsts(), 4u);
    EXPECT_EQ(p.code[0].op, Opcode::LI);
    EXPECT_EQ(p.code[1].op, Opcode::BNE);
    // Branch target remapped to the surviving li a0.
    EXPECT_EQ(p.code[1].imm, 2);
    EXPECT_EQ(p.codeLabels.at("target"), 2u);
    EXPECT_EQ(p.validate(), "");
}

TEST(CompactNops, NoNopsIsNoop)
{
    Program p = assemble("li a0, 0\nret\n");
    const PassStats stats = compactNops(p, 0, 2);
    EXPECT_EQ(stats.nopsCompacted, 0u);
    EXPECT_EQ(p.numInsts(), 2u);
}

TEST(Specializer, UnreachableArmIsDeletedFromClone)
{
    Program orig = assemble(calcSrc);
    const auto result =
        specializeProcedure(orig, "f", {{regA0 + 1, 3}});
    // Binding mode=3 folds the even/odd test; the even arm (slli+sub)
    // must be gone from the clone entirely.
    bool has_slli = false;
    for (std::uint32_t pc = result.specializedEntry;
         pc < result.specializedEnd; ++pc)
        has_slli |= result.program.code[pc].op == Opcode::SLLI;
    EXPECT_FALSE(has_slli);
    // And the clone is strictly smaller than the original body.
    const Procedure *f = orig.findProc("f");
    EXPECT_LT(result.specializedEnd - result.specializedEntry,
              f->end - f->entry);
}

TEST(Specializer, IndirectCallsKeepUsingOriginalBody)
{
    // A function pointer to f in a data word: the indirect call must
    // keep reaching the untouched original body, bypassing the guard,
    // and behaviour must be preserved.
    const char *const src = R"(
    .data
fptr:   .word f
    .text
    .proc main args=0
main:
    li   s0, 10
loop:
    mov  a0, s0
    li   a1, 4
    ld   t0, fptr(zero)
    jalr t0                 # indirect call to f
    syscall puti
    mov  a0, s0
    li   a1, 4
    call f                  # direct call: goes through the guard
    syscall puti
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    mul  a0, a0, a1
    addi a0, a0, 1
    ret
    .endp
)";
    Program orig = assemble(src);
    std::string orig_out;
    runProgram(orig, &orig_out);
    const auto result =
        specializeProcedure(orig, "f", {{regA0 + 1, 4}});
    std::string spec_out;
    runProgram(result.program, &spec_out);
    EXPECT_EQ(spec_out, orig_out);
    // The indirect call site still targets the original entry.
    const Procedure *f = orig.findProc("f");
    const auto fptr_off = orig.dataAddress("fptr") - orig.dataBase;
    std::uint64_t stored = 0;
    for (int b = 0; b < 8; ++b)
        stored |= std::uint64_t(
                      result.program.dataInit[fptr_off + b])
                  << (8 * b);
    EXPECT_EQ(stored, f->entry);
}

TEST(Specializer, RecursionReentersThroughGuard)
{
    // A recursive procedure specialized on an argument that changes
    // down the recursion: every level must re-test the guard, so the
    // output is identical.
    const char *const src = R"(
    .proc main args=0
main:
    li   a0, 10
    li   a1, 10
    call count
    syscall puti
    li   a0, 0
    syscall exit
    .endp
    .proc count args=2
count:
    beqz a0, base
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    mov  s0, a1
    addi a0, a0, -1
    addi a1, a1, -1        # the bound register changes per level
    call count
    add  a0, a0, s0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    ret
base:
    li   a0, 0
    ret
    .endp
)";
    Program orig = assemble(src);
    std::string orig_out;
    runProgram(orig, &orig_out);
    const auto result =
        specializeProcedure(orig, "count", {{regA0 + 1, 10}});
    std::string spec_out;
    runProgram(result.program, &spec_out);
    EXPECT_EQ(spec_out, orig_out);
    // The clone's recursive call must target the guard, not itself.
    bool recursion_guarded = false;
    for (std::uint32_t pc = result.specializedEntry;
         pc < result.specializedEnd; ++pc) {
        const Inst &inst = result.program.code[pc];
        if (inst.op == Opcode::JAL)
            recursion_guarded |=
                inst.imm ==
                static_cast<std::int64_t>(result.guardEntry);
    }
    EXPECT_TRUE(recursion_guarded);
}

TEST(RemoveUnreachable, DeletesDeadArm)
{
    Program p = assemble(R"(
f:
    jmp  live
dead:
    addi t0, t0, 1
    addi t0, t0, 2
live:
    li   a0, 0
    ret
)");
    const PassStats stats =
        removeUnreachable(p, 0, static_cast<std::uint32_t>(p.numInsts()));
    EXPECT_EQ(stats.removedDead, 2u);
    EXPECT_EQ(p.code[1].op, Opcode::NOP);
    EXPECT_EQ(p.code[2].op, Opcode::NOP);
    EXPECT_EQ(p.code[3].op, Opcode::LI);
}

TEST(OptimizeRegion, EndToEndOnScaleLikeChain)
{
    Program p = assemble(R"(
f:
    beqz a1, zero_mode
    andi t1, a1, 1
    beqz t1, even
    mul  t0, a0, a1
    srai t2, a0, 4
    add  t0, t0, t2
    jmp  done
even:
    mul  t0, a0, a1
    srai t2, a0, 2
    sub  t0, t0, t2
done:
    mov  a0, t0
    ret
zero_mode:
    ret
)");
    const std::uint32_t n = static_cast<std::uint32_t>(p.numInsts());
    const PassStats stats = optimizeRegion(p, 0, n, {{regA0 + 1, 3}});
    // mode tests fold; the even arm and zero arm become unreachable
    // but at minimum the branches and dead path shrink the region.
    EXPECT_GE(stats.branchesFolded, 2u);
    EXPECT_GT(stats.nopsCompacted, 0u);
    EXPECT_LT(p.numInsts(), n);
    EXPECT_EQ(p.validate(), "");
}

} // namespace
