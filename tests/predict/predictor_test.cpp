/**
 * @file
 * Tests for the value predictors and the profile-guided filter.
 */

#include <gtest/gtest.h>

#include "predict/harness.hpp"
#include "predict/predictor.hpp"
#include "support/rng.hpp"

using namespace predict;

namespace
{

TEST(Lvp, LearnsConstantStream)
{
    auto p = makeLastValuePredictor();
    for (int i = 0; i < 100; ++i)
        p->see(0x40, 7);
    // Warm-up misses only: insertion + confidence ramp.
    EXPECT_GT(p->stats().accuracy(), 0.9);
    EXPECT_EQ(p->stats().executions, 100u);
}

TEST(Lvp, ConfidenceSuppressesFlappyStreams)
{
    LvpConfig cfg;
    cfg.confidenceBits = 2;
    cfg.confidenceThreshold = 2;
    auto p = makeLastValuePredictor(cfg);
    vp::Rng rng(5);
    for (int i = 0; i < 2000; ++i)
        p->see(0x40, rng.next()); // white noise
    // With confidence gating the predictor rarely ventures at all.
    EXPECT_LT(p->stats().coverage(), 0.05);
}

TEST(Lvp, ZeroConfidenceBitsAlwaysPredicts)
{
    LvpConfig cfg;
    cfg.confidenceBits = 0;
    auto p = makeLastValuePredictor(cfg);
    p->see(1, 5);
    p->see(1, 5);
    EXPECT_EQ(p->stats().predictions, 1u); // from the 2nd on
    EXPECT_EQ(p->stats().correct, 1u);
}

TEST(Lvp, TagsPreventAliasingMispredictions)
{
    LvpConfig tagged;
    tagged.table.indexBits = 2; // force collisions
    tagged.table.tagged = true;
    tagged.confidenceBits = 0;
    LvpConfig untagged = tagged;
    untagged.table.tagged = false;

    auto pt = makeLastValuePredictor(tagged);
    auto pu = makeLastValuePredictor(untagged);
    // Two pcs that collide, producing different constants.
    for (int i = 0; i < 200; ++i) {
        const std::uint32_t pc = (i & 1) ? 0x10 : 0x30;
        const std::uint64_t v = (i & 1) ? 111 : 222;
        pt->see(pc, v);
        pu->see(pc, v);
    }
    // Check actual aliasing occurred for the untagged one to be a fair
    // comparison — if not, table geometry changed and the test must be
    // updated.
    EXPECT_GE(pt->stats().precision(), pu->stats().precision());
}

TEST(Stride, LearnsArithmeticSequence)
{
    auto p = makeStridePredictor();
    for (int i = 0; i < 100; ++i)
        p->see(0x8, 100 + 3 * i);
    // After two-delta confirmation everything is correct.
    EXPECT_GT(p->stats().accuracy(), 0.95);
}

TEST(Stride, HandlesNegativeStride)
{
    auto p = makeStridePredictor();
    for (int i = 0; i < 50; ++i)
        p->see(0x8, 1000 - 7 * i);
    EXPECT_GT(p->stats().accuracy(), 0.9);
}

TEST(Stride, ZeroStrideActsAsLastValue)
{
    auto p = makeStridePredictor();
    for (int i = 0; i < 50; ++i)
        p->see(0x8, 42);
    EXPECT_GT(p->stats().accuracy(), 0.9);
}

TEST(Stride, DoesNotPredictWhileUnsteady)
{
    auto p = makeStridePredictor();
    vp::Rng rng(9);
    for (int i = 0; i < 1000; ++i)
        p->see(0x8, rng.next());
    EXPECT_LT(p->stats().coverage(), 0.02);
}

TEST(TwoLevel, LearnsAlternatingPattern)
{
    auto p = makeTwoLevelPredictor();
    // Period-2 pattern is invisible to LVP but ideal for a context
    // predictor.
    for (int i = 0; i < 500; ++i)
        p->see(0x8, (i & 1) ? 10 : 20);
    EXPECT_GT(p->stats().accuracy(), 0.8);

    auto lvp = makeLastValuePredictor();
    for (int i = 0; i < 500; ++i)
        lvp->see(0x8, (i & 1) ? 10 : 20);
    EXPECT_LT(lvp->stats().accuracy(), 0.2);
}

TEST(TwoLevel, LearnsPeriodFourPattern)
{
    auto p = makeTwoLevelPredictor();
    const std::uint64_t vals[4] = {3, 9, 3, 27};
    for (int i = 0; i < 2000; ++i)
        p->see(0x8, vals[i & 3]);
    EXPECT_GT(p->stats().accuracy(), 0.8);
}

TEST(Hybrid, BeatsBothComponentsOnMixedStreams)
{
    // Stream A (pc 1): stride; stream B (pc 2): constant-heavy.
    auto make_hybrid = [] {
        return makeHybridPredictor(makeLastValuePredictor(),
                                   makeStridePredictor());
    };
    auto hybrid = make_hybrid();
    auto lvp = makeLastValuePredictor();
    auto stride = makeStridePredictor();
    vp::Rng rng(21);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t stride_v = 5 * i;
        const std::uint64_t const_v = rng.chance(0.95) ? 7 : rng.next();
        for (auto *p :
             {hybrid.get(), (ValuePredictor *)lvp.get(),
              (ValuePredictor *)stride.get()}) {
            p->see(1, stride_v);
            p->see(2, const_v);
        }
    }
    EXPECT_GT(hybrid->stats().accuracy(),
              lvp->stats().accuracy() - 0.02);
    EXPECT_GT(hybrid->stats().accuracy(),
              stride->stats().accuracy() - 0.02);
    EXPECT_GT(hybrid->stats().accuracy(), 0.85);
}

TEST(Predictors, ResetClearsState)
{
    auto p = makeStridePredictor();
    for (int i = 0; i < 10; ++i)
        p->see(1, i);
    p->reset();
    EXPECT_EQ(p->stats().executions, 0u);
    std::uint64_t guess = 0;
    EXPECT_FALSE(p->predict(1, guess));
}

TEST(Predictors, StatsArithmetic)
{
    PredictorStats s;
    s.executions = 100;
    s.predictions = 50;
    s.correct = 40;
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.4);
    EXPECT_DOUBLE_EQ(s.precision(), 0.8);
    EXPECT_DOUBLE_EQ(s.coverage(), 0.5);
    EXPECT_EQ(s.mispredictions(), 10u);
}

// ---------------------------------------------------------------------
// Profile-guided filtering
// ---------------------------------------------------------------------

core::ProfileSnapshot
snapshotWith(std::uint32_t pc, double lvp, double inv,
             std::uint64_t execs = 1000)
{
    core::ProfileSnapshot snap;
    core::EntitySummary s;
    s.totalExecutions = execs;
    s.profiledExecutions = execs;
    s.lvp = lvp;
    s.invTop = inv;
    snap.entities[pc] = s;
    return snap;
}

TEST(ProfileGuided, AdmitsOnlyPredictableInstructions)
{
    core::ProfileSnapshot snap = snapshotWith(1, 0.9, 0.9);
    auto extra = snapshotWith(2, 0.1, 0.1);
    snap.entities.insert(extra.entities.begin(), extra.entities.end());

    FilterConfig fcfg;
    fcfg.minLvp = 0.5;
    ProfileGuidedPredictor guided(makeLastValuePredictor(), snap, fcfg);
    EXPECT_EQ(guided.admitted(), 1u);

    // pc 2 (variant) is never predicted and never trains the table.
    vp::Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        guided.see(1, 42);
        guided.see(2, rng.next());
    }
    // Executions counted for both, predictions only for pc 1.
    EXPECT_EQ(guided.stats().executions, 1000u);
    EXPECT_GT(guided.stats().accuracy(), 0.45);
    EXPECT_GT(guided.stats().precision(), 0.98);
}

TEST(ProfileGuided, CutsMispredictionsVersusUnfiltered)
{
    // One predictable pc, three noisy ones.
    core::ProfileSnapshot snap = snapshotWith(1, 0.95, 0.95);
    for (std::uint32_t pc = 2; pc <= 4; ++pc) {
        auto s = snapshotWith(pc, 0.05, 0.05);
        snap.entities.insert(s.entities.begin(), s.entities.end());
    }
    LvpConfig cfg;
    cfg.confidenceBits = 0; // no confidence: filtering must do the work
    ProfileGuidedPredictor guided(makeLastValuePredictor(cfg), snap);
    auto plain = makeLastValuePredictor(cfg);

    vp::Rng rng(8);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t noise = rng.next();
        guided.see(1, 7);
        plain->see(1, 7);
        for (std::uint32_t pc = 2; pc <= 4; ++pc) {
            guided.see(pc, noise + pc);
            plain->see(pc, noise + pc);
        }
    }
    EXPECT_LT(guided.stats().mispredictions(),
              plain->stats().mispredictions() / 10);
}

TEST(ProfileGuided, MinExecutionFloorExcludesColdCode)
{
    core::ProfileSnapshot snap = snapshotWith(1, 0.99, 0.99, 10);
    FilterConfig fcfg;
    fcfg.minExecutions = 100;
    ProfileGuidedPredictor guided(makeLastValuePredictor(), snap, fcfg);
    EXPECT_EQ(guided.admitted(), 0u);
}

} // namespace
