/**
 * @file
 * Cross-module integration tests: full profiling pipelines over the
 * real workloads, validating the paper's qualitative claims end to
 * end — semi-invariant loads exist, sampled profiles approximate full
 * profiles at a fraction of the events, train/test profiles
 * correlate, parameter profiles drive a semantics-preserving
 * specialization with a dynamic win.
 */

#include <gtest/gtest.h>

#include "core/instruction_profiler.hpp"
#include "core/memory_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "core/snapshot.hpp"
#include "predict/harness.hpp"
#include "specialize/specializer.hpp"
#include "workloads/workload.hpp"

using namespace core;
using namespace vpsim;
using workloads::findWorkload;
using workloads::runToCompletion;

namespace
{

CpuConfig
bigConfig()
{
    return CpuConfig{16u << 20, 100'000'000};
}

ProfileSnapshot
profileRun(const workloads::Workload &w, const std::string &dataset,
           const InstProfilerConfig &cfg, bool loads_only,
           double *fraction_profiled = nullptr)
{
    const Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, bigConfig());
    InstructionProfiler prof(img, cfg);
    if (loads_only)
        prof.profileLoads(mgr);
    else
        prof.profileAllWrites(mgr);
    mgr.attach(cpu);
    runToCompletion(cpu, w, dataset);
    if (fraction_profiled)
        *fraction_profiled = prof.fractionProfiled();
    return ProfileSnapshot::fromInstructionProfiler(prof);
}

double
weightedInvTop(const ProfileSnapshot &snap)
{
    double num = 0, den = 0;
    for (const auto &[pc, s] : snap.entities) {
        num += s.invTop * static_cast<double>(s.totalExecutions);
        den += static_cast<double>(s.totalExecutions);
    }
    return den > 0 ? num / den : 0;
}

TEST(EndToEnd, LispDispatchLoadsAreSemiInvariant)
{
    // The interpreter's opcode fetch must show high Inv-All with a
    // small set of values — the paper's canonical observation. Use an
    // uncleared TNV table so coverage reflects the value stream, not
    // the clearing policy's periodic bottom-half eviction.
    InstProfilerConfig cfg;
    cfg.profile.tnv.clearInterval = 1u << 30;
    const auto snap = profileRun(findWorkload("lisp"), "train",
                                 cfg, true);
    bool found_semi_invariant_load = false;
    for (const auto &[pc, s] : snap.entities) {
        if (s.totalExecutions > 10000 && s.invAll > 0.95 &&
            s.distinct <= 16)
            found_semi_invariant_load = true;
    }
    EXPECT_TRUE(found_semi_invariant_load);
}

TEST(EndToEnd, LoadsShowSubstantialInvariance)
{
    // Across workloads, execution-weighted load Inv-Top must be
    // substantial (the paper reports ~50% for loads).
    double total = 0;
    int n = 0;
    for (const char *name : {"compress", "crc", "lisp", "qsort"}) {
        const auto snap = profileRun(findWorkload(name), "train",
                                     InstProfilerConfig{}, true);
        total += weightedInvTop(snap);
        ++n;
    }
    EXPECT_GT(total / n, 0.25);
}

TEST(EndToEnd, SampledProfileApproximatesFullProfile)
{
    const auto &w = findWorkload("crc");
    const auto full = profileRun(w, "train", InstProfilerConfig{}, false);

    InstProfilerConfig sampled_cfg;
    sampled_cfg.mode = ProfileMode::Sampled;
    double fraction = 1.0;
    const auto sampled =
        profileRun(w, "train", sampled_cfg, false, &fraction);

    EXPECT_LT(fraction, 0.35) << "sampling must skip most executions";

    // Execution-weighted invariance estimates agree closely.
    const auto cmp = compareSnapshots(full, sampled);
    EXPECT_EQ(cmp.commonEntities, full.size());
    EXPECT_LT(cmp.meanAbsInvTopDelta, 0.08);
    // Semi-invariant instructions must keep their top values; for
    // variant instructions the "top value" is an arbitrary sample and
    // says nothing.
    EXPECT_GT(cmp.invariantEntities, 0u);
    EXPECT_GT(cmp.topValueTransferInvariant, 0.85);
}

TEST(EndToEnd, TrainTestProfilesCorrelate)
{
    // The paper's cross-input result: value profiles transfer between
    // data sets (David Wall's observation, thesis Table V.5).
    const auto &w = findWorkload("compress");
    const auto train =
        profileRun(w, "train", InstProfilerConfig{}, false);
    const auto test = profileRun(w, "test", InstProfilerConfig{}, false);
    const auto cmp = compareSnapshots(train, test);
    EXPECT_GT(cmp.commonEntities, 20u);
    EXPECT_GT(cmp.invTopCorrelation, 0.7);
    EXPECT_GT(cmp.topValueTransferInvariant, 0.6);
    EXPECT_LT(cmp.meanAbsInvTopDelta, 0.2);
}

TEST(EndToEnd, MemoryLocationsIncludeInvariantOnes)
{
    const auto &w = findWorkload("crc");
    const Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, bigConfig());
    MemoryProfiler mprof;
    mprof.instrument(mgr);
    mgr.attach(cpu);
    runToCompletion(cpu, w, "train");

    // The CRC table locations are written once: perfectly invariant.
    std::size_t invariant_locations = 0;
    for (const auto *loc : mprof.topLocationsByWrites(1000)) {
        if (loc->writes.invTop() == 1.0)
            ++invariant_locations;
    }
    EXPECT_GE(invariant_locations, 250u);
}

TEST(EndToEnd, ParameterProfileFindsMatmulFactor)
{
    const auto &w = findWorkload("matmul");
    const Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, bigConfig());
    ParameterProfiler pprof;
    pprof.instrument(mgr);
    mgr.attach(cpu);
    runToCompletion(cpu, w, "train");

    const auto *scale = pprof.recordFor("scale");
    ASSERT_NE(scale, nullptr);
    ASSERT_EQ(scale->args.size(), 2u);
    // arg1 (the factor) is perfectly invariant and equals 3 on train.
    EXPECT_DOUBLE_EQ(scale->args[1].invTop(), 1.0);
    EXPECT_EQ(scale->args[1].tnv().top()->value, 3u);
    // arg0 (the data) is variant.
    EXPECT_LT(scale->args[0].invTop(), 0.9);
}

TEST(EndToEnd, ProfileGuidedSpecializationOfMatmulScale)
{
    // The full chapter-X pipeline: profile parameters, bind the
    // semi-invariant one, specialize, verify identical output and a
    // dynamic instruction reduction.
    const auto &w = findWorkload("matmul");
    const Program &prog = w.program();

    // 1. Profile.
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu pcpu(prog, bigConfig());
    ParameterProfiler pprof;
    pprof.instrument(mgr);
    mgr.attach(pcpu);
    runToCompletion(pcpu, w, "train");
    const auto *scale = pprof.recordFor("scale");
    ASSERT_NE(scale, nullptr);
    const std::uint64_t factor = scale->args[1].tnv().top()->value;

    // 2. Specialize on the profiled value.
    const auto spec = specialize::specializeProcedure(
        prog, "scale",
        {{static_cast<std::uint8_t>(regA0 + 1), factor}});

    // 3. Same input, both programs.
    Cpu orig_cpu(prog, bigConfig());
    orig_cpu.reset();
    w.inject(orig_cpu, "train");
    Cpu spec_cpu(spec.program, bigConfig());
    spec_cpu.reset();
    w.inject(spec_cpu, "train");

    const auto report = specialize::compareRuns(orig_cpu, spec_cpu);
    EXPECT_TRUE(report.outputsMatch);
    EXPECT_LT(report.specializedInsts, report.originalInsts);
    EXPECT_GT(report.speedup(), 1.0);
}

TEST(EndToEnd, ProfileGuidedPredictionImprovesPrecision)
{
    // Gabbay-style E11 pipeline: profile a run, then use the profile
    // to filter which instructions a last-value predictor handles.
    const auto &w = findWorkload("lisp");
    const Program &prog = w.program();
    const auto profile =
        profileRun(w, "train", InstProfilerConfig{}, false);

    auto run_predictor = [&](predict::ValuePredictor &pred) {
        instr::Image img(prog);
        instr::InstrumentManager mgr(img);
        Cpu cpu(prog, bigConfig());
        predict::PredictionHarness harness;
        harness.addPredictor(&pred);
        harness.instrument(mgr, img.regWritingInsts());
        mgr.attach(cpu);
        runToCompletion(cpu, w, "test");
    };

    predict::LvpConfig lcfg;
    lcfg.confidenceBits = 0;
    auto plain = predict::makeLastValuePredictor(lcfg);
    run_predictor(*plain);

    predict::ProfileGuidedPredictor guided(
        predict::makeLastValuePredictor(lcfg), profile);
    run_predictor(guided);

    EXPECT_GT(guided.stats().precision(), plain->stats().precision());
    EXPECT_LT(guided.stats().mispredictions(),
              plain->stats().mispredictions());
}

} // namespace
