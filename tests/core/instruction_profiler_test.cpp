/**
 * @file
 * Tests for the instruction value profiler in full and sampled modes,
 * driven through the real instrumentation stack on small programs.
 */

#include <gtest/gtest.h>

#include "core/instruction_profiler.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

// t0 counts down 100..1; t1 toggles 0/1; t2 is always 7.
const char *const src = R"(
    .proc main args=0
main:
    li   t0, 100
loop:
    li   t2, 7
    xori t1, t1, 1
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    syscall exit
    .endp
)";

struct Env
{
    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;

    explicit Env(const InstProfilerConfig &cfg = {})
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 10'000'000}), profiler(img, cfg)
    {
    }

    InstructionProfiler profiler;

    void
    runAllWrites()
    {
        profiler.profileAllWrites(mgr);
        mgr.attach(cpu);
        cpu.run();
    }
};

TEST(InstructionProfiler, FullModeCountsEveryExecution)
{
    Env env;
    env.runAllWrites();
    // pc1 = li t2, 7 runs 100 times.
    const auto *rec = env.profiler.recordFor(1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->totalExecutions, 100u);
    EXPECT_EQ(rec->profile.executions(), 100u);
    EXPECT_DOUBLE_EQ(rec->profile.invTop(), 1.0);
    EXPECT_EQ(rec->profile.tnv().top()->value, 7u);
}

TEST(InstructionProfiler, CountdownIsVariant)
{
    Env env;
    env.runAllWrites();
    // pc3 = addi t0, t0, -1 produces 99..0: 100 distinct values.
    const auto *rec = env.profiler.recordFor(3);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->profile.distinct(), 100u);
    EXPECT_LT(rec->profile.invTop(), 0.1);
    EXPECT_EQ(rec->profile.lvp(), 0.0);
}

TEST(InstructionProfiler, ToggleHasTwoValues)
{
    Env env;
    env.runAllWrites();
    const auto *rec = env.profiler.recordFor(2);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->profile.distinct(), 2u);
    EXPECT_DOUBLE_EQ(rec->profile.invAll(), 1.0);
    EXPECT_NEAR(rec->profile.invTop(), 0.5, 0.01);
}

TEST(InstructionProfiler, UninstrumentedPcHasNoRecord)
{
    Env env;
    env.runAllWrites();
    EXPECT_EQ(env.profiler.recordFor(4), nullptr); // bnez writes nothing
    EXPECT_EQ(env.profiler.recordFor(9999), nullptr);
}

TEST(InstructionProfiler, ProfileLoadsSelectsOnlyLoads)
{
    Program prog = assemble(R"(
    .data
w:  .word 5
    .text
    la  t0, w
    ld  t1, 0(t0)
    li  a0, 0
    syscall exit
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, CpuConfig{1u << 16, 1000});
    InstructionProfiler prof(img);
    prof.profileLoads(mgr);
    mgr.attach(cpu);
    cpu.run();
    EXPECT_EQ(prof.records().size(), 1u);
    EXPECT_EQ(prof.records()[0].pc, 1u);
    EXPECT_EQ(prof.records()[0].profile.tnv().top()->value, 5u);
}

TEST(InstructionProfiler, WeightedMetricWeighsByExecutions)
{
    Env env;
    env.runAllWrites();
    // Hand-computed: records are li(1x inv 1), li t2 (100x inv 1),
    // xori (100x inv ~.5), addi (100x inv .01), li a0 (1x inv 1),
    // plus nothing else. Weighted Inv-Top must sit strictly between
    // the countdown's and the constant's.
    const double w = env.profiler.weightedMetric(&ValueProfile::invTop);
    EXPECT_GT(w, 0.3);
    EXPECT_LT(w, 0.9);
}

TEST(InstructionProfiler, FractionProfiledIsOneInFullMode)
{
    Env env;
    env.runAllWrites();
    EXPECT_DOUBLE_EQ(env.profiler.fractionProfiled(), 1.0);
    EXPECT_EQ(env.profiler.totalExecutions(),
              env.profiler.profiledExecutions());
}

TEST(InstructionProfiler, SampledModeProfilesSubset)
{
    InstProfilerConfig cfg;
    cfg.mode = ProfileMode::Sampled;
    cfg.sampler.burstSize = 8;
    cfg.sampler.initialSkip = 32;
    cfg.sampler.convergeRounds = 2;
    Env env(cfg);
    env.runAllWrites();
    const auto *rec = env.profiler.recordFor(1);
    ASSERT_NE(rec, nullptr);
    EXPECT_EQ(rec->totalExecutions, 100u);
    EXPECT_LT(rec->profile.executions(), 100u);
    EXPECT_GT(rec->profile.executions(), 0u);
    // The estimate on a constant stream is still exact.
    EXPECT_DOUBLE_EQ(rec->profile.invTop(), 1.0);
    EXPECT_LT(env.profiler.fractionProfiled(), 1.0);
}

TEST(InstructionProfiler, RandomModeSamplesAtConfiguredRate)
{
    InstProfilerConfig cfg;
    cfg.mode = ProfileMode::Random;
    cfg.randomRate = 0.25;
    Env env(cfg);
    env.runAllWrites();
    // 301 profiled-instruction executions total; expect ~25% sampled.
    const double fraction = env.profiler.fractionProfiled();
    EXPECT_GT(fraction, 0.10);
    EXPECT_LT(fraction, 0.45);
    // The constant instruction's estimate stays exact.
    const auto *rec = env.profiler.recordFor(1);
    ASSERT_NE(rec, nullptr);
    if (rec->profile.executions() > 0) {
        EXPECT_DOUBLE_EQ(rec->profile.invTop(), 1.0);
    }
}

TEST(InstructionProfiler, RandomModeIsDeterministicPerSeed)
{
    auto run = [](std::uint64_t seed) {
        InstProfilerConfig cfg;
        cfg.mode = ProfileMode::Random;
        cfg.randomRate = 0.3;
        cfg.randomSeed = seed;
        Env env(cfg);
        env.runAllWrites();
        return env.profiler.profiledExecutions();
    };
    EXPECT_EQ(run(7), run(7));
}

TEST(InstructionProfilerDeath, BadRandomRatePanics)
{
    Program prog = assemble("li a0, 0\nsyscall exit\n");
    instr::Image img(prog);
    InstProfilerConfig cfg;
    cfg.mode = ProfileMode::Random;
    cfg.randomRate = 0.0;
    EXPECT_DEATH(InstructionProfiler prof(img, cfg), "randomRate");
}

TEST(InstructionProfiler, RecordsKeepPcAssociation)
{
    Env env;
    env.runAllWrites();
    for (const auto &rec : env.profiler.records())
        EXPECT_EQ(env.profiler.recordFor(rec.pc), &rec);
}

} // namespace
