/**
 * @file
 * Tests for ValueProfile metric math (thesis section III.C), including
 * parameterized closed-form property checks.
 */

#include <gtest/gtest.h>

#include "check/seed.hpp"
#include "core/value_profile.hpp"
#include "support/rng.hpp"

using core::ProfileConfig;
using core::ValueProfile;

namespace
{

TEST(ValueProfile, EmptyProfileIsAllZero)
{
    ValueProfile p;
    EXPECT_EQ(p.executions(), 0u);
    EXPECT_EQ(p.invTop(), 0.0);
    EXPECT_EQ(p.invAll(), 0.0);
    EXPECT_EQ(p.lvp(), 0.0);
    EXPECT_EQ(p.zeroFraction(), 0.0);
    EXPECT_EQ(p.distinct(), 0u);
}

TEST(ValueProfile, ConstantStream)
{
    ValueProfile p;
    for (int i = 0; i < 100; ++i)
        p.record(42);
    EXPECT_EQ(p.executions(), 100u);
    EXPECT_DOUBLE_EQ(p.invTop(), 1.0);
    EXPECT_DOUBLE_EQ(p.invAll(), 1.0);
    // first execution cannot be last-value predicted
    EXPECT_DOUBLE_EQ(p.lvp(), 0.99);
    EXPECT_EQ(p.distinct(), 1u);
    EXPECT_EQ(p.zeroFraction(), 0.0);
}

TEST(ValueProfile, ZeroFraction)
{
    ValueProfile p;
    p.record(0);
    p.record(0);
    p.record(0);
    p.record(5);
    EXPECT_DOUBLE_EQ(p.zeroFraction(), 0.75);
    EXPECT_EQ(p.zeroCount(), 3u);
}

TEST(ValueProfile, AlternatingStreamHasZeroLvp)
{
    ValueProfile p;
    for (int i = 0; i < 50; ++i)
        p.record(i & 1);
    EXPECT_DOUBLE_EQ(p.lvp(), 0.0);
    // Both values are in the TNV table -> InvAll = 1, InvTop = 0.5.
    EXPECT_DOUBLE_EQ(p.invAll(), 1.0);
    EXPECT_DOUBLE_EQ(p.invTop(), 0.5);
    EXPECT_EQ(p.distinct(), 2u);
}

TEST(ValueProfile, RunsGiveHighLvpButLowInvariance)
{
    // Long runs of distinct values: LVP high, Inv-Top low — the
    // paper's key distinction between value locality and invariance.
    ValueProfile p;
    for (std::uint64_t v = 0; v < 64; ++v)
        for (int r = 0; r < 16; ++r)
            p.record(v + 100);
    EXPECT_GT(p.lvp(), 0.9);
    EXPECT_LT(p.invTop(), 0.1);
    EXPECT_EQ(p.distinct(), 64u);
}

TEST(ValueProfile, DistinctSaturatesAtCap)
{
    ProfileConfig cfg;
    cfg.maxDistinct = 16;
    ValueProfile p(cfg);
    for (std::uint64_t v = 0; v < 100; ++v)
        p.record(v);
    EXPECT_TRUE(p.distinctSaturated());
    EXPECT_EQ(p.distinct(), 16u);
}

TEST(ValueProfile, TrackingCanBeDisabled)
{
    ProfileConfig cfg;
    cfg.trackLastValue = false;
    cfg.trackDistinct = false;
    ValueProfile p(cfg);
    for (int i = 0; i < 10; ++i)
        p.record(7);
    EXPECT_EQ(p.lvp(), 0.0);
    EXPECT_EQ(p.distinct(), 0u);
    EXPECT_DOUBLE_EQ(p.invTop(), 1.0); // TNV still works
}

TEST(ValueProfile, ResetClearsEverything)
{
    ValueProfile p;
    p.record(0);
    p.record(1);
    p.reset();
    EXPECT_EQ(p.executions(), 0u);
    EXPECT_EQ(p.distinct(), 0u);
    EXPECT_EQ(p.zeroCount(), 0u);
    p.record(5);
    EXPECT_DOUBLE_EQ(p.invTop(), 1.0);
}

TEST(ValueProfile, StrideTrackingDisabledByDefault)
{
    ValueProfile p;
    for (int i = 0; i < 10; ++i)
        p.record(static_cast<std::uint64_t>(3 * i));
    EXPECT_EQ(p.strideInvTop(), 0.0);
    EXPECT_EQ(p.topStride(), 0);
}

TEST(ValueProfile, StrideTrackingFindsConstantStride)
{
    ProfileConfig cfg;
    cfg.trackStrides = true;
    ValueProfile p(cfg);
    for (int i = 0; i < 100; ++i)
        p.record(static_cast<std::uint64_t>(1000 + 3 * i));
    // All 99 deltas equal 3; values themselves are fully variant.
    EXPECT_DOUBLE_EQ(p.strideInvTop(), 1.0);
    EXPECT_EQ(p.topStride(), 3);
    EXPECT_LT(p.invTop(), 0.05);
}

TEST(ValueProfile, StrideTrackingHandlesNegativeStride)
{
    ProfileConfig cfg;
    cfg.trackStrides = true;
    ValueProfile p(cfg);
    for (int i = 0; i < 50; ++i)
        p.record(static_cast<std::uint64_t>(5000 - 7 * i));
    EXPECT_DOUBLE_EQ(p.strideInvTop(), 1.0);
    EXPECT_EQ(p.topStride(), -7);
}

TEST(ValueProfile, ConstantStreamHasZeroTopStride)
{
    ProfileConfig cfg;
    cfg.trackStrides = true;
    ValueProfile p(cfg);
    for (int i = 0; i < 50; ++i)
        p.record(42);
    EXPECT_DOUBLE_EQ(p.strideInvTop(), 1.0);
    EXPECT_EQ(p.topStride(), 0);
}

TEST(ValueProfile, StridesWorkWithoutLastValueTracking)
{
    ProfileConfig cfg;
    cfg.trackStrides = true;
    cfg.trackLastValue = false;
    ValueProfile p(cfg);
    for (int i = 0; i < 20; ++i)
        p.record(static_cast<std::uint64_t>(2 * i));
    EXPECT_DOUBLE_EQ(p.strideInvTop(), 1.0);
    EXPECT_EQ(p.topStride(), 2);
    EXPECT_EQ(p.lvp(), 0.0); // LVP still off
}

// ---------------------------------------------------------------------
// Parameterized closed-form checks: a two-valued stream with dominant
// fraction q has Inv-Top ~= q, Inv-All = 1, LVP ~= q^2 + (1-q)^2.
// ---------------------------------------------------------------------

class TwoValuedStream : public ::testing::TestWithParam<double>
{
};

TEST_P(TwoValuedStream, MetricsMatchClosedForm)
{
    const double q = GetParam();
    // Disable periodic clearing: it evicts the minority value of a
    // two-entry table every interval (see the TnvTable clearing
    // tests), which would break the closed forms this test checks.
    ProfileConfig cfg;
    cfg.tnv.clearInterval = 1u << 30;
    ValueProfile p(cfg);
    const std::uint64_t seed = vp::check::testSeed(
        static_cast<std::uint64_t>(q * 1000) + 3);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        p.record(rng.chance(q) ? 11 : 22);
    EXPECT_NEAR(p.invTop(), std::max(q, 1 - q), 0.01);
    EXPECT_DOUBLE_EQ(p.invAll(), 1.0);
    const double lvp_expect = q * q + (1 - q) * (1 - q);
    EXPECT_NEAR(p.lvp(), lvp_expect, 0.01);
    EXPECT_EQ(p.distinct(), 2u);
}

INSTANTIATE_TEST_SUITE_P(Q, TwoValuedStream,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

// InvTop <= InvAll <= 1 must hold for arbitrary streams.
class MetricOrdering : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MetricOrdering, InvTopNeverExceedsInvAll)
{
    ValueProfile p;
    const std::uint64_t seed = vp::check::testSeed(GetParam());
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int i = 0; i < 30000; ++i) {
        const std::uint64_t v = rng.chance(0.5)
                                    ? rng.below(4)
                                    : rng.next();
        p.record(v);
        if (i % 1000 == 999) {
            ASSERT_LE(p.invTop(), p.invAll() + 1e-12);
            ASSERT_LE(p.invAll(), 1.0 + 1e-12);
            ASSERT_LE(p.lvp(), 1.0);
            ASSERT_LE(p.zeroFraction(), 1.0);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricOrdering,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------------------------------------------------------------------
// Shard-and-merge property: profiling K shards of a stream and merging
// must match the sequential profile within the tolerances documented
// on ValueProfile::merge (DESIGN.md, "Shard-and-merge semantics").
// ---------------------------------------------------------------------

struct MergeParam
{
    std::size_t shards;
    std::uint64_t alphabet; ///< distinct values in the stream
    std::uint64_t seed;
};

class ShardMerge : public ::testing::TestWithParam<MergeParam>
{
  protected:
    /** Skewed random stream: one dominant value plus uniform noise. */
    static std::vector<std::uint64_t>
    makeStream(std::uint64_t seed, std::uint64_t alphabet, std::size_t n)
    {
        vp::Rng rng(seed);
        std::vector<std::uint64_t> stream;
        stream.reserve(n);
        for (std::size_t i = 0; i < n; ++i)
            stream.push_back(rng.chance(0.55) ? 3
                                              : rng.below(alphabet));
        return stream;
    }

    static ValueProfile
    profileRange(const std::vector<std::uint64_t> &stream,
                 std::size_t lo, std::size_t hi,
                 const ProfileConfig &cfg)
    {
        ValueProfile p(cfg);
        for (std::size_t i = lo; i < hi; ++i)
            p.record(stream[i]);
        return p;
    }
};

TEST_P(ShardMerge, MergedMetricsMatchSequentialWithinTolerance)
{
    const auto &prm = GetParam();
    const std::uint64_t seed = vp::check::testSeed(prm.seed);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    const std::size_t n = 24000;
    const auto stream = makeStream(seed, prm.alphabet, n);

    ProfileConfig cfg;
    cfg.trackStrides = true;
    // Disable periodic clearing so that "alphabet fits the table"
    // really means no eviction anywhere; clear-timing drift between
    // shards and the sequential run is covered by the TnvTable merge
    // tests.
    cfg.tnv.clearInterval = 1u << 30;
    cfg.strideTnv.clearInterval = 1u << 30;
    const ValueProfile seq = profileRange(stream, 0, n, cfg);

    ValueProfile merged(cfg);
    for (std::size_t s = 0; s < prm.shards; ++s) {
        const auto shard = profileRange(stream,
                                        s * n / prm.shards,
                                        (s + 1) * n / prm.shards, cfg);
        merged.merge(shard);
    }

    EXPECT_EQ(merged.executions(), seq.executions());
    // Zero counting is exact: every shard counts its own zeros.
    EXPECT_EQ(merged.zeroCount(), seq.zeroCount());

    const bool fits = prm.alphabet <= 8; // no TNV eviction anywhere
    if (fits) {
        // Inv-Top/Inv-All/Diff are exact when no shard ever evicted.
        EXPECT_DOUBLE_EQ(merged.invTop(), seq.invTop());
        EXPECT_DOUBLE_EQ(merged.invAll(), seq.invAll());
        EXPECT_EQ(merged.distinct(), seq.distinct());
    } else {
        // With eviction, merged counts are a close lower bound.
        EXPECT_LE(merged.invTop(), seq.invTop() + 1e-12);
        EXPECT_NEAR(merged.invTop(), seq.invTop(), 0.05);
        EXPECT_NEAR(merged.invAll(), seq.invAll(), 0.05);
        EXPECT_EQ(merged.distinct(), seq.distinct());
    }

    // LVP: each shard boundary can drop at most one last-value hit,
    // so merged LVP is within (K-1)/n below the sequential value.
    const double slack =
        static_cast<double>(prm.shards - 1) / static_cast<double>(n);
    EXPECT_LE(merged.lvp(), seq.lvp() + 1e-12);
    EXPECT_GE(merged.lvp(), seq.lvp() - slack - 1e-12);

    // Stride tracking loses at most one delta per boundary too; the
    // dominant stride structure must survive the merge.
    EXPECT_NEAR(merged.strideInvTop(), seq.strideInvTop(),
                slack + 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardMerge,
    ::testing::Values(MergeParam{2, 6, 11}, MergeParam{4, 6, 12},
                      MergeParam{8, 6, 13}, MergeParam{2, 64, 14},
                      MergeParam{4, 64, 15}, MergeParam{8, 64, 16},
                      MergeParam{16, 256, 17}));

TEST(ValueProfileMerge, TakesOtherLastValueAcrossBoundary)
{
    // After a merge, the "last value" is the tail shard's last value:
    // recording it again must count as an LVP hit.
    ValueProfile a, b;
    a.record(1);
    b.record(2);
    a.merge(b);
    const auto hits_before = a.lvpHits();
    a.record(2);
    EXPECT_EQ(a.lvpHits(), hits_before + 1);
}

TEST(ValueProfileMerge, UnionsDistinctSetsWithoutDoubleCounting)
{
    ValueProfile a, b;
    for (std::uint64_t v = 0; v < 8; ++v)
        a.record(v);
    for (std::uint64_t v = 4; v < 12; ++v)
        b.record(v);
    a.merge(b);
    EXPECT_EQ(a.distinct(), 12u);
    EXPECT_FALSE(a.distinctSaturated());
}

TEST(ValueProfileMerge, DistinctUnionSaturatesAtCap)
{
    ProfileConfig cfg;
    cfg.maxDistinct = 10;
    ValueProfile a(cfg), b(cfg);
    for (std::uint64_t v = 0; v < 8; ++v)
        a.record(v);
    for (std::uint64_t v = 100; v < 108; ++v)
        b.record(v);
    a.merge(b);
    EXPECT_TRUE(a.distinctSaturated());
    EXPECT_EQ(a.distinct(), 10u);
}

} // namespace
