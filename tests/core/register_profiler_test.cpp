/**
 * @file
 * Tests for the architectural-register value profiler.
 */

#include <gtest/gtest.h>

#include "core/register_profiler.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

const char *const src = R"(
    .proc main args=0
main:
    li   s0, 25
loop:
    li   t0, 7              # t0: constant writes
    mov  t1, s0             # t1: countdown values
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    syscall exit
    .endp
)";

class RegProfTest : public ::testing::Test
{
  protected:
    RegProfTest()
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000})
    {
        profiler.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    RegisterProfiler profiler;
};

TEST_F(RegProfTest, PerRegisterStreamsAreSeparated)
{
    // t0 sees the constant 7 on all 25 writes.
    const auto &t0 = profiler.profileFor(regT0);
    EXPECT_EQ(t0.executions(), 25u);
    EXPECT_DOUBLE_EQ(t0.invTop(), 1.0);
    EXPECT_EQ(t0.tnv().top()->value, 7u);

    // t1 sees 25 distinct countdown values.
    const auto &t1 = profiler.profileFor(regT0 + 1);
    EXPECT_EQ(t1.executions(), 25u);
    EXPECT_EQ(t1.distinct(), 25u);
}

TEST_F(RegProfTest, S0AccumulatesInitAndDecrements)
{
    // s0: one li + 25 addi results.
    const auto &s0 = profiler.profileFor(regS0);
    EXPECT_EQ(s0.executions(), 26u);
}

TEST_F(RegProfTest, UnwrittenRegistersStayEmpty)
{
    EXPECT_EQ(profiler.profileFor(regSp).executions(), 0u);
    EXPECT_EQ(profiler.profileFor(regZero).executions(), 0u);
}

TEST_F(RegProfTest, TotalsAndWeightedMetric)
{
    // writes: s0 26 + t0 25 + t1 25 + a0 1 = 77
    EXPECT_EQ(profiler.totalWrites(), 77u);
    const double w = profiler.weightedMetric(&ValueProfile::invTop);
    EXPECT_GT(w, 0.3); // t0 and a0 fully invariant
    EXPECT_LT(w, 0.8);
}

TEST_F(RegProfTest, OutOfRangeRegisterPanics)
{
    EXPECT_DEATH(profiler.profileFor(32), "out of range");
}

} // namespace
