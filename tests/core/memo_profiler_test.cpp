/**
 * @file
 * Tests for the memoization-potential profiler.
 */

#include <gtest/gtest.h>

#include "core/memo_profiler.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

// f is called 30 times with tuples cycling over 3 distinct pairs;
// g is called 10 times with always-fresh arguments.
const char *const src = R"(
    .proc main args=0
main:
    li   s0, 10
loop:
    li   a0, 1
    li   a1, 2
    call f
    li   a0, 3
    li   a1, 4
    call f
    li   a0, 5
    li   a1, 6
    call f
    mov  a0, s0
    slli a1, s0, 4
    call g
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    add  a0, a0, a1
    ret
    .endp
    .proc g args=2
g:
    xor  a0, a0, a1
    ret
    .endp
)";

class MemoTest : public ::testing::Test
{
  protected:
    MemoTest()
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000})
    {
        memo.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    MemoProfiler memo;
};

TEST_F(MemoTest, RepetitiveTuplesAreDetected)
{
    const auto *f = memo.statsFor("f");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->calls, 30u);
    EXPECT_EQ(f->distinctTuples, 3u);
    // 27 of 30 calls repeat a tuple.
    EXPECT_DOUBLE_EQ(f->unboundedHitRate(), 0.9);
    // 3 tuples fit any cache: same hit rate (modulo index conflicts).
    EXPECT_GE(f->cacheHitRate(), 0.8);
}

TEST_F(MemoTest, FreshTuplesNeverHit)
{
    const auto *g = memo.statsFor("g");
    ASSERT_NE(g, nullptr);
    EXPECT_EQ(g->calls, 10u);
    EXPECT_EQ(g->distinctTuples, 10u);
    EXPECT_DOUBLE_EQ(g->unboundedHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(g->cacheHitRate(), 0.0);
}

TEST_F(MemoTest, UnknownProcedure)
{
    EXPECT_EQ(memo.statsFor("nope"), nullptr);
}

TEST_F(MemoTest, ByCallCountOrdering)
{
    const auto order = memo.byCallCount();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0]->proc->name, "f");
    EXPECT_EQ(order[1]->proc->name, "g");
}

TEST(MemoProfilerStandalone, CacheSmallerThanWorkingSetMissesMore)
{
    // 64 distinct tuples cycling: an unbounded history hits on every
    // repeat pass, a 2^2-entry cache thrashes.
    Procedure proc;
    proc.name = "p";
    proc.numArgs = 2;

    MemoProfilerConfig small_cfg;
    small_cfg.cacheIndexBits = 2;
    MemoProfiler small(small_cfg);
    MemoProfiler big; // 256 entries

    for (int pass = 0; pass < 4; ++pass) {
        for (std::uint64_t t = 0; t < 64; ++t) {
            const std::uint64_t args[6] = {t, t * 7, 0, 0, 0, 0};
            small.onProcCall(proc, args, 0);
            big.onProcCall(proc, args, 0);
        }
    }
    const auto *ss = small.statsFor("p");
    const auto *bs = big.statsFor("p");
    ASSERT_NE(ss, nullptr);
    ASSERT_NE(bs, nullptr);
    EXPECT_DOUBLE_EQ(ss->unboundedHitRate(), 0.75); // 192/256
    EXPECT_DOUBLE_EQ(bs->unboundedHitRate(), 0.75);
    EXPECT_LT(ss->cacheHitRate(), bs->cacheHitRate());
    EXPECT_GT(bs->cacheHitRate(), 0.6);
}

TEST(MemoProfilerDeath, BadCacheBitsPanics)
{
    MemoProfilerConfig cfg;
    cfg.cacheIndexBits = 0;
    EXPECT_DEATH(MemoProfiler memo(cfg), "cacheIndexBits");
}

} // namespace
