/**
 * @file
 * Tests for the human-readable report tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/report.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

const char *const src = R"(
    .data
buf:    .space 8
    .text
    .proc main args=0
main:
    li   s0, 50
loop:
    li   t0, 123          # invariant, hot
    mov  a1, s0
    li   a0, 4
    call f
    la   t1, buf
    st   a0, 0(t1)
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    add  a0, a0, a1
    ret
    .endp
)";

struct Env
{
    Program prog = assemble(src);
    instr::Image img{prog};
    instr::InstrumentManager mgr{img};
    Cpu cpu{prog, CpuConfig{1u << 16, 1'000'000}};
    InstructionProfiler iprof{img};
    MemoryProfiler mprof;
    ParameterProfiler pprof;

    Env()
    {
        iprof.profileAllWrites(mgr);
        mprof.instrument(mgr);
        pprof.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    static std::string
    render(const vp::TextTable &t)
    {
        std::ostringstream os;
        t.print(os);
        return os.str();
    }
};

TEST(Report, InstructionReportShowsHotInstructions)
{
    Env env;
    const auto table = instructionReport(env.iprof, 5);
    EXPECT_EQ(table.numRows(), 5u);
    const std::string text = Env::render(table);
    EXPECT_NE(text.find("li"), std::string::npos);
    EXPECT_NE(text.find("123"), std::string::npos);
}

TEST(Report, InstructionReportLimitRespected)
{
    Env env;
    EXPECT_LE(instructionReport(env.iprof, 2).numRows(), 2u);
}

TEST(Report, SemiInvariantFilters)
{
    Env env;
    // Only instructions with >= 10 executions and InvTop >= 0.9.
    const auto table = semiInvariantReport(env.iprof, 0.9, 10, 100);
    EXPECT_GE(table.numRows(), 1u);
    const std::string text = Env::render(table);
    // The countdown (addi s0) must not appear: variant.
    EXPECT_EQ(text.find("addi   s0"), std::string::npos);
    // The hot constant must appear.
    EXPECT_NE(text.find("123"), std::string::npos);
}

TEST(Report, MemoryReportListsLocations)
{
    Env env;
    const auto table = memoryReport(env.mprof, 10);
    EXPECT_EQ(table.numRows(), 1u);
    const std::string text = Env::render(table);
    EXPECT_NE(text.find("0x"), std::string::npos);
}

TEST(Report, ParameterReportListsProcArgs)
{
    Env env;
    const auto table = parameterReport(env.pprof, 10);
    const std::string text = Env::render(table);
    EXPECT_NE(text.find("f"), std::string::npos);
    EXPECT_NE(text.find("a0"), std::string::npos);
    EXPECT_NE(text.find("a1"), std::string::npos);
}

TEST(Report, EmptyProfilersProduceEmptyTables)
{
    Program prog = assemble("li a0, 0\nsyscall exit\n");
    instr::Image img(prog);
    InstructionProfiler iprof(img);
    MemoryProfiler mprof;
    ParameterProfiler pprof;
    EXPECT_EQ(instructionReport(iprof).numRows(), 0u);
    EXPECT_EQ(memoryReport(mprof).numRows(), 0u);
    EXPECT_EQ(parameterReport(pprof).numRows(), 0u);
}

} // namespace
