/**
 * @file
 * Tests for the memory-location value profiler.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/memory_profiler.hpp"
#include "core/snapshot.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

// Writes: addr A gets 7 ten times; addr B gets 0..9; addr C once.
const char *const src = R"(
    .data
a:  .space 8
b:  .space 8
c:  .space 8
    .text
main:
    li   t0, 10
    li   t3, 0
loop:
    la   t1, a
    li   t2, 7
    st   t2, 0(t1)
    la   t1, b
    st   t3, 0(t1)
    ld   t4, 0(t1)
    addi t3, t3, 1
    addi t0, t0, -1
    bnez t0, loop
    la   t1, c
    st   t0, 0(t1)
    li   a0, 0
    syscall exit
)";

struct Env
{
    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;

    explicit Env(MemProfilerConfig cfg = {})
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000}), profiler(cfg)
    {
        profiler.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    MemoryProfiler profiler;
};

TEST(MemoryProfiler, TracksPerLocationWrites)
{
    Env env;
    const auto addr_a = env.prog.dataAddress("a");
    const auto *loc = env.profiler.locationFor(addr_a);
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->writes.executions(), 10u);
    EXPECT_DOUBLE_EQ(loc->writes.invTop(), 1.0);
    EXPECT_EQ(loc->writes.tnv().top()->value, 7u);
}

TEST(MemoryProfiler, VariantLocation)
{
    Env env;
    const auto *loc =
        env.profiler.locationFor(env.prog.dataAddress("b"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->writes.executions(), 10u);
    EXPECT_EQ(loc->writes.distinct(), 10u);
    EXPECT_DOUBLE_EQ(loc->writes.invTop(), 0.1);
}

TEST(MemoryProfiler, CountsAndTopLocations)
{
    Env env;
    EXPECT_EQ(env.profiler.totalStores(), 21u);
    EXPECT_EQ(env.profiler.numLocations(), 3u);
    const auto top = env.profiler.topLocationsByWrites(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0]->writes.executions(), 10u);
    EXPECT_EQ(top[1]->writes.executions(), 10u);
}

TEST(MemoryProfiler, LoadsNotProfiledByDefault)
{
    Env env;
    EXPECT_EQ(env.profiler.totalLoads(), 0u);
}

TEST(MemoryProfiler, LoadProfilingWhenEnabled)
{
    MemProfilerConfig cfg;
    cfg.profileLoads = true;
    Env env(cfg);
    EXPECT_EQ(env.profiler.totalLoads(), 10u);
    const auto *loc =
        env.profiler.locationFor(env.prog.dataAddress("b"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->reads.executions(), 10u);
}

TEST(MemoryProfiler, AddressWindowFilters)
{
    MemProfilerConfig cfg;
    // Window covering only location "a" (first 8 data bytes).
    cfg.windowBegin = Program::defaultDataBase;
    cfg.windowEnd = Program::defaultDataBase + 8;
    Env env(cfg);
    EXPECT_EQ(env.profiler.numLocations(), 1u);
    EXPECT_EQ(env.profiler.totalStores(), 10u);
}

TEST(MemoryProfiler, GranularityBucketsNeighbors)
{
    MemProfilerConfig cfg;
    cfg.granularity = 16; // a and b fall into one bucket
    Env env(cfg);
    const auto *loc =
        env.profiler.locationFor(env.prog.dataAddress("a"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->writes.executions(), 20u);
    EXPECT_EQ(env.profiler.locationFor(env.prog.dataAddress("a")),
              env.profiler.locationFor(env.prog.dataAddress("b")));
}

TEST(MemoryProfiler, MaxLocationsOverflow)
{
    MemProfilerConfig cfg;
    cfg.maxLocations = 2;
    Env env(cfg);
    EXPECT_EQ(env.profiler.numLocations(), 2u);
    EXPECT_TRUE(env.profiler.overflowed());
}

TEST(MemoryProfiler, WeightedWriteMetric)
{
    Env env;
    // a: inv 1 (10 writes), b: inv .1 (10), c: inv 1 (1 write).
    const double w =
        env.profiler.weightedWriteMetric(&ValueProfile::invTop);
    EXPECT_NEAR(w, (10 * 1.0 + 10 * 0.1 + 1 * 1.0) / 21.0, 1e-9);
}

TEST(MemoryProfiler, TotalWritesCountedEvenWhenSampling)
{
    MemProfilerConfig cfg;
    cfg.mode = ProfileMode::Random;
    cfg.randomRate = 0.3;
    Env env(cfg);
    const auto *loc =
        env.profiler.locationFor(env.prog.dataAddress("a"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->totalWrites, 10u);
    EXPECT_LE(loc->writes.executions(), 10u);
    EXPECT_LE(env.profiler.fractionProfiled(), 1.0);
}

TEST(MemoryProfiler, FullModeProfilesEverything)
{
    Env env;
    EXPECT_DOUBLE_EQ(env.profiler.fractionProfiled(), 1.0);
}

TEST(MemoryProfiler, ConvergentSamplingOnHotLocation)
{
    // A location written many times with a constant: the sampler
    // converges and skips most writes while the estimate stays exact.
    MemProfilerConfig cfg;
    cfg.mode = ProfileMode::Sampled;
    cfg.sampler.burstSize = 8;
    cfg.sampler.initialSkip = 24;
    cfg.sampler.convergeRounds = 2;

    Program prog = assemble(R"(
    .data
hot:    .space 8
    .text
    li   t0, 5000
loop:
    la   t1, hot
    li   t2, 77
    st   t2, 0(t1)
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    syscall exit
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, CpuConfig{1u << 16, 1'000'000});
    MemoryProfiler prof(cfg);
    prof.instrument(mgr);
    mgr.attach(cpu);
    cpu.run();

    const auto *loc = prof.locationFor(prog.dataAddress("hot"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->totalWrites, 5000u);
    EXPECT_LT(loc->writes.executions(), 2000u);
    EXPECT_DOUBLE_EQ(loc->writes.invTop(), 1.0);
    EXPECT_TRUE(loc->sampler.converged());
    EXPECT_LT(prof.fractionProfiled(), 0.5);
}

// Regression: onLoadValue used to ignore cfg.mode and record every
// load unconditionally. Loads must obey the profiling mode, with an
// independent convergent sampler per location for the read stream.
TEST(MemoryProfiler, LoadsObeySampledMode)
{
    MemProfilerConfig cfg;
    cfg.profileLoads = true;
    cfg.mode = ProfileMode::Sampled;
    cfg.sampler.burstSize = 8;
    cfg.sampler.initialSkip = 24;
    cfg.sampler.convergeRounds = 2;

    Program prog = assemble(R"(
    .data
hot:    .space 8
    .text
    la   t1, hot
    li   t2, 77
    st   t2, 0(t1)
    li   t0, 5000
loop:
    ld   t3, 0(t1)
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    syscall exit
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, CpuConfig{1u << 16, 1'000'000});
    MemoryProfiler prof(cfg);
    prof.instrument(mgr);
    mgr.attach(cpu);
    cpu.run();

    const auto *loc = prof.locationFor(prog.dataAddress("hot"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->totalReads, 5000u);
    // An invariant read stream converges: most reads are skipped while
    // the estimate stays exact (the burst-end invariance report).
    EXPECT_LT(loc->reads.executions(), 2000u);
    EXPECT_GT(loc->reads.executions(), 0u);
    EXPECT_DOUBLE_EQ(loc->reads.invTop(), 1.0);
    EXPECT_TRUE(loc->readSampler.converged());
    // The write stream's sampler is untouched by reads.
    EXPECT_EQ(loc->totalWrites, 1u);
}

TEST(MemoryProfiler, LoadsObeyRandomMode)
{
    MemProfilerConfig cfg;
    cfg.profileLoads = true;
    cfg.mode = ProfileMode::Random;
    cfg.randomRate = 0.25;

    Program prog = assemble(R"(
    .data
hot:    .space 8
    .text
    la   t1, hot
    li   t0, 2000
loop:
    ld   t3, 0(t1)
    addi t0, t0, -1
    bnez t0, loop
    li   a0, 0
    syscall exit
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    Cpu cpu(prog, CpuConfig{1u << 16, 1'000'000});
    MemoryProfiler prof(cfg);
    prof.instrument(mgr);
    mgr.attach(cpu);
    cpu.run();

    const auto *loc = prof.locationFor(prog.dataAddress("hot"));
    ASSERT_NE(loc, nullptr);
    EXPECT_EQ(loc->totalReads, 2000u);
    // ~500 expected; any deterministic draw lands well inside this.
    EXPECT_GT(loc->reads.executions(), 100u);
    EXPECT_LT(loc->reads.executions(), 1500u);
}

// Regression: storeCount used to include stores dropped by the
// maxLocations cap, so fractionProfiled() dipped below 1 on
// overflowing Full-mode runs — misreporting a capacity problem as a
// sampling one. Dropped accesses are now reported separately.
TEST(MemoryProfiler, OverflowReportsDropsWithoutSkewingFraction)
{
    MemProfilerConfig cfg;
    cfg.maxLocations = 2;
    Env env(cfg);
    EXPECT_TRUE(env.profiler.overflowed());
    // All 21 in-window stores counted; c's single store was dropped.
    EXPECT_EQ(env.profiler.totalStores(), 21u);
    EXPECT_EQ(env.profiler.droppedStores(), 1u);
    EXPECT_DOUBLE_EQ(env.profiler.fractionProfiled(), 1.0);
}

// Regression: the dropped-access counters were neither serialized nor
// merged, so a shard-merged (or saved-and-reloaded) snapshot of
// overflowing runs silently forgot the drops and fractionProfiled()
// could no longer be reconstructed.
TEST(MemoryProfiler, ShardMergeCarriesDroppedCounters)
{
    MemProfilerConfig cfg;
    cfg.maxLocations = 2;
    Env shard1(cfg), shard2(cfg);
    ASSERT_TRUE(shard1.profiler.overflowed());

    ProfileSnapshot merged;
    merged.merge(ProfileSnapshot::fromMemoryProfiler(shard1.profiler));
    merged.merge(ProfileSnapshot::fromMemoryProfiler(shard2.profiler));
    EXPECT_EQ(merged.droppedStores, shard1.profiler.droppedStores() +
                                        shard2.profiler.droppedStores());
    EXPECT_TRUE(merged.overflowed());
    // Both shards profiled every in-window store, so the merged
    // fraction is exactly 1 — drops must not skew it.
    EXPECT_DOUBLE_EQ(merged.fractionProfiled(), 1.0);
    EXPECT_DOUBLE_EQ(merged.fractionProfiled(),
                     shard1.profiler.fractionProfiled());

    // And the counters survive a save/load round trip.
    std::stringstream ss;
    merged.save(ss);
    ProfileSnapshot reloaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(ss, reloaded, err)) << err;
    EXPECT_EQ(reloaded.droppedStores, merged.droppedStores);
    EXPECT_EQ(reloaded.droppedLoads, merged.droppedLoads);
    EXPECT_DOUBLE_EQ(reloaded.fractionProfiled(),
                     merged.fractionProfiled());
}

TEST(MemoryProfilerDeath, BadGranularityPanics)
{
    MemProfilerConfig cfg;
    cfg.granularity = 12;
    EXPECT_DEATH(MemoryProfiler prof(cfg), "power of two");
}

} // namespace
