/**
 * @file
 * Tests for the TNV table: hit counting, LFU replacement, the paper's
 * steady/clear policy, LRU ablation variant, and structural
 * invariants under randomized streams.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "check/seed.hpp"
#include "core/tnv_table.hpp"
#include "support/rng.hpp"

using core::TnvConfig;
using core::TnvTable;

namespace
{

TnvConfig
config(unsigned cap, std::uint64_t clear_interval,
       TnvConfig::Policy policy = TnvConfig::Policy::SteadyClear)
{
    TnvConfig cfg;
    cfg.capacity = cap;
    cfg.clearInterval = clear_interval;
    cfg.policy = policy;
    return cfg;
}

TEST(TnvTable, EmptyTable)
{
    TnvTable t;
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recordCount(), 0u);
    EXPECT_FALSE(t.top().has_value());
    EXPECT_EQ(t.coveredCount(), 0u);
}

TEST(TnvTable, CountsHits)
{
    TnvTable t(config(4, 1000));
    t.record(5);
    t.record(5);
    t.record(9);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.countFor(5), 2u);
    EXPECT_EQ(t.countFor(9), 1u);
    EXPECT_EQ(t.countFor(7), 0u);
    ASSERT_TRUE(t.top().has_value());
    EXPECT_EQ(t.top()->value, 5u);
    EXPECT_EQ(t.coveredCount(), 3u);
    EXPECT_EQ(t.recordCount(), 3u);
}

TEST(TnvTable, LfuReplacesLeastFrequent)
{
    TnvTable t(config(2, 1000, TnvConfig::Policy::PureLfu));
    t.record(1);
    t.record(1);
    t.record(2);
    t.record(3); // must evict 2 (count 1), not 1 (count 2)
    EXPECT_EQ(t.countFor(1), 2u);
    EXPECT_EQ(t.countFor(2), 0u);
    EXPECT_EQ(t.countFor(3), 1u);
}

TEST(TnvTable, LruReplacesOldest)
{
    TnvTable t(config(2, 1000, TnvConfig::Policy::Lru));
    t.record(1);
    t.record(1);
    t.record(2);
    t.record(3); // LRU victim is 1 despite its higher count
    EXPECT_EQ(t.countFor(1), 0u);
    EXPECT_EQ(t.countFor(2), 1u);
    EXPECT_EQ(t.countFor(3), 1u);
}

TEST(TnvTable, SteadyClearEvictsBottomHalf)
{
    TnvTable t(config(4, 1'000'000));
    for (int i = 0; i < 10; ++i)
        t.record(100);
    for (int i = 0; i < 6; ++i)
        t.record(200);
    t.record(300);
    t.record(400);
    EXPECT_EQ(t.size(), 4u);
    t.clearBottomHalf();
    // capacity 4 keeps ceil(4/2) = 2 entries: the two hottest.
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.countFor(100), 10u);
    EXPECT_EQ(t.countFor(200), 6u);
    EXPECT_EQ(t.countFor(300), 0u);
}

TEST(TnvTable, ClearBottomHalfUsesOccupiedSize)
{
    // Regression: clearBottomHalf used to keep ceil(capacity/2)
    // entries, making the periodic clear a silent no-op whenever the
    // table was at most half full. It must operate on the occupied
    // size: ceil(size/2) entries survive.
    TnvTable t(config(8, 1'000'000));
    for (int i = 0; i < 5; ++i)
        t.record(100);
    for (int i = 0; i < 3; ++i)
        t.record(200);
    t.record(300);
    ASSERT_EQ(t.size(), 3u);
    t.clearBottomHalf();
    EXPECT_EQ(t.size(), 2u); // ceil(3/2), not min(3, ceil(8/2)) = 3
    EXPECT_EQ(t.countFor(100), 5u);
    EXPECT_EQ(t.countFor(200), 3u);
    EXPECT_EQ(t.countFor(300), 0u);
}

TEST(TnvTable, PeriodicClearingFiresOnPartiallyFullTable)
{
    // Regression companion: across a clear interval, a partially-full
    // table must shed its stale one-shot entries so a newly-hot value
    // is left dominating a lean table.
    TnvTable t(config(8, 8));
    t.record(1);
    t.record(2);
    t.record(3);
    t.record(4);
    for (int i = 0; i < 4; ++i)
        t.record(777); // 8th record fires the clear at size 5
    EXPECT_EQ(t.size(), 3u); // ceil(5/2)
    EXPECT_EQ(t.countFor(777), 4u);
    // Ties among the cold values break toward older entries, so the
    // younger cold values are the ones evicted.
    EXPECT_EQ(t.countFor(3), 0u);
    EXPECT_EQ(t.countFor(4), 0u);
}

TEST(TnvTable, SparseTableClearingEvictsEarlyColdValues)
{
    // The paper's semi-invariant scenario in a sparse table: a few
    // early cold values must not survive forever just because the
    // table never fills — periodic clearing has to displace them in
    // favour of the later semi-invariant value.
    TnvTable t(config(8, 32));
    for (std::uint64_t v = 1; v <= 3; ++v)
        t.record(v); // early cold values
    for (int i = 0; i < 200; ++i)
        t.record(42); // semi-invariant phase
    EXPECT_EQ(t.top()->value, 42u);
    // Several clear intervals have elapsed; the one-shot entries from
    // the cold prologue are gone.
    EXPECT_EQ(t.countFor(1), 0u);
    EXPECT_EQ(t.countFor(2), 0u);
    EXPECT_EQ(t.countFor(3), 0u);
    EXPECT_EQ(t.size(), 1u);
}

TEST(TnvTable, AutomaticClearingAtInterval)
{
    TnvTable t(config(4, 8));
    // 8 records trigger a clear; fill with 4 distinct then repeat one.
    t.record(1);
    t.record(1);
    t.record(1);
    t.record(2);
    t.record(2);
    t.record(3);
    t.record(4);
    EXPECT_EQ(t.size(), 4u);
    t.record(1); // 8th record -> clear fires, bottom half evicted
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.countFor(1), 4u);
    EXPECT_EQ(t.countFor(2), 2u);
}

TEST(TnvTable, SteadyClearLetsNewHotValueIn)
{
    // The paper's motivation for periodic clearing: after a phase
    // change a pure-LFU table is locked by stale counts — any
    // newcomer enters at count 1 and is immediately the eviction
    // victim for the next newcomer, so the new hot value thrashes and
    // never accumulates. Clearing the bottom half frees slots in
    // which the new hot value can establish itself.
    const int phase = 6000;
    TnvTable steady(config(4, 4096, TnvConfig::Policy::SteadyClear));
    TnvTable lfu(config(4, 4096, TnvConfig::Policy::PureLfu));
    const std::uint64_t seed = vp::check::testSeed(99);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    // Phase 1: four values with large counts.
    for (int i = 0; i < phase; ++i) {
        const std::uint64_t v = 10 + (i & 3);
        steady.record(v);
        lfu.record(v);
    }
    // Phase 2: a new dominant value competing with a stream of
    // one-shot noise values.
    std::uint64_t fresh = 1000;
    for (int i = 0; i < phase; ++i) {
        const std::uint64_t v = rng.chance(0.7) ? 777 : ++fresh;
        steady.record(v);
        lfu.record(v);
    }
    ASSERT_TRUE(steady.top().has_value());
    EXPECT_EQ(steady.top()->value, 777u);
    // The pure-LFU table keeps evicting the newcomer at count ~1 while
    // the stale entries hold their phase-1 counts.
    EXPECT_NE(lfu.top()->value, 777u);
}

TEST(TnvTable, ResetForgets)
{
    TnvTable t(config(4, 100));
    t.record(1);
    t.reset();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.recordCount(), 0u);
}

TEST(TnvTable, SortedByCountDescending)
{
    TnvTable t(config(4, 1000));
    t.record(1);
    t.record(2);
    t.record(2);
    t.record(3);
    t.record(3);
    t.record(3);
    const auto sorted = t.sortedByCount();
    ASSERT_EQ(sorted.size(), 3u);
    EXPECT_EQ(sorted[0].value, 3u);
    EXPECT_EQ(sorted[1].value, 2u);
    EXPECT_EQ(sorted[2].value, 1u);
}

TEST(TnvTable, CapacityOneTracksLastDominantValue)
{
    TnvTable t(config(1, 4));
    for (int i = 0; i < 100; ++i)
        t.record(42);
    EXPECT_EQ(t.top()->value, 42u);
}

TEST(TnvTableDeath, ZeroCapacityPanics)
{
    EXPECT_DEATH(TnvTable t(config(0, 10)), "capacity");
}

// ---------------------------------------------------------------------
// Shard merging (TnvTable::merge)
// ---------------------------------------------------------------------

TEST(TnvTableMerge, SumsCountsWithinCapacity)
{
    TnvTable a(config(8, 1u << 30)), b(config(8, 1u << 30));
    for (int i = 0; i < 10; ++i)
        a.record(1);
    a.record(2);
    for (int i = 0; i < 5; ++i)
        b.record(1);
    for (int i = 0; i < 7; ++i)
        b.record(3);

    a.merge(b);
    EXPECT_EQ(a.recordCount(), 23u);
    EXPECT_EQ(a.countFor(1), 15u);
    EXPECT_EQ(a.countFor(2), 1u);
    EXPECT_EQ(a.countFor(3), 7u);
    EXPECT_EQ(a.size(), 3u);
    ASSERT_TRUE(a.top().has_value());
    EXPECT_EQ(a.top()->value, 1u);
}

TEST(TnvTableMerge, ReselectsTopByCountOnOverflow)
{
    // Disjoint value sets whose union exceeds capacity: the merged
    // table must keep exactly the top-capacity values by count.
    TnvTable a(config(4, 1u << 30)), b(config(4, 1u << 30));
    const std::uint64_t counts_a[] = {100, 10, 3, 2}; // values 0..3
    const std::uint64_t counts_b[] = {50, 40, 4, 1};  // values 10..13
    for (std::uint64_t v = 0; v < 4; ++v)
        for (std::uint64_t i = 0; i < counts_a[v]; ++i)
            a.record(v);
    for (std::uint64_t v = 0; v < 4; ++v)
        for (std::uint64_t i = 0; i < counts_b[v]; ++i)
            b.record(10 + v);

    a.merge(b);
    EXPECT_EQ(a.size(), 4u);
    EXPECT_EQ(a.countFor(0), 100u);
    EXPECT_EQ(a.countFor(10), 50u);
    EXPECT_EQ(a.countFor(11), 40u);
    EXPECT_EQ(a.countFor(1), 10u);
    // The four losers are gone.
    EXPECT_EQ(a.countFor(2), 0u);
    EXPECT_EQ(a.countFor(3), 0u);
    EXPECT_EQ(a.countFor(12), 0u);
    EXPECT_EQ(a.countFor(13), 0u);
    EXPECT_EQ(a.recordCount(), 115u + 95u);
}

TEST(TnvTableMerge, MergedCountsLowerBoundSequential)
{
    // Random skewed stream split into shards: for every value the
    // merged table retains, its count must never exceed the count the
    // sequential table accumulated (merging can only lose counts to
    // shard-local evictions, never invent them).
    const std::uint64_t seed = vp::check::testSeed(42);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 12000; ++i)
        stream.push_back(rng.chance(0.5) ? 7 : rng.below(48));

    TnvTable seq(config(8, 2048));
    for (auto v : stream)
        seq.record(v);

    const std::size_t shards = 4;
    TnvTable merged(config(8, 2048));
    for (std::size_t s = 0; s < shards; ++s) {
        TnvTable shard(config(8, 2048));
        for (std::size_t i = s * stream.size() / shards;
             i < (s + 1) * stream.size() / shards; ++i)
            shard.record(stream[i]);
        merged.merge(shard);
    }

    EXPECT_EQ(merged.recordCount(), seq.recordCount());
    ASSERT_LE(merged.size(), 8u);
    // The dominant value survives the merge with most of its mass.
    ASSERT_TRUE(merged.top().has_value());
    EXPECT_EQ(merged.top()->value, 7u);
    EXPECT_GT(static_cast<double>(merged.countFor(7)),
              0.9 * static_cast<double>(seq.countFor(7)));
}

TEST(TnvTableMerge, ExactWhenNoShardEverEvicted)
{
    // Small alphabet that fits every shard's table: merging must give
    // byte-for-byte the counts of the sequential run.
    const std::uint64_t seed = vp::check::testSeed(7);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 4000; ++i)
        stream.push_back(rng.below(6));

    TnvTable seq(config(8, 1u << 30));
    TnvTable merged(config(8, 1u << 30));
    for (auto v : stream)
        seq.record(v);
    for (std::size_t s = 0; s < 3; ++s) {
        TnvTable shard(config(8, 1u << 30));
        for (std::size_t i = s * stream.size() / 3;
             i < (s + 1) * stream.size() / 3; ++i)
            shard.record(stream[i]);
        merged.merge(shard);
    }

    EXPECT_EQ(merged.recordCount(), seq.recordCount());
    EXPECT_EQ(merged.size(), seq.size());
    for (std::uint64_t v = 0; v < 6; ++v)
        EXPECT_EQ(merged.countFor(v), seq.countFor(v)) << "value " << v;
}

TEST(TnvTableMerge, MergeIntoEmptyCopiesOther)
{
    TnvTable a(config(8, 2048)), b(config(8, 2048));
    for (int i = 0; i < 3; ++i)
        b.record(9);
    a.merge(b);
    EXPECT_EQ(a.recordCount(), 3u);
    EXPECT_EQ(a.countFor(9), 3u);
}

// ---------------------------------------------------------------------
// Fast-path equivalence
// ---------------------------------------------------------------------

/**
 * Reference model replicating record()'s pre-fast-path semantics: a
 * full linear scan on every record, with the same LFU/LRU victim
 * selection and SteadyClear policy. TnvTable's cached-hot-entry fast
 * path must be observationally identical to this.
 */
struct ReferenceTnv
{
    explicit ReferenceTnv(const TnvConfig &c) : cfg(c) {}

    void
    record(std::uint64_t value)
    {
        ++records;
        bool found = false;
        for (auto &e : entries) {
            if (e.value == value) {
                ++e.count;
                e.lastUse = records;
                found = true;
                break;
            }
        }
        if (!found) {
            if (entries.size() < cfg.capacity) {
                entries.push_back({value, 1, records});
            } else {
                std::size_t best = 0;
                for (std::size_t i = 1; i < entries.size(); ++i) {
                    const auto &e = entries[i];
                    const auto &b = entries[best];
                    if (cfg.policy == TnvConfig::Policy::Lru
                            ? e.lastUse < b.lastUse
                            : e.count < b.count ||
                                  (e.count == b.count &&
                                   e.lastUse < b.lastUse))
                        best = i;
                }
                entries[best] = {value, 1, records};
            }
        }
        if (cfg.policy == TnvConfig::Policy::SteadyClear &&
            ++sinceClear >= cfg.clearInterval) {
            sinceClear = 0;
            if (entries.size() > 1) {
                std::sort(entries.begin(), entries.end(),
                          [](const core::TnvEntry &a,
                             const core::TnvEntry &b) {
                              if (a.count != b.count)
                                  return a.count > b.count;
                              return a.lastUse < b.lastUse;
                          });
                entries.resize((entries.size() + 1) / 2);
            }
        }
    }

    TnvConfig cfg;
    std::vector<core::TnvEntry> entries;
    std::uint64_t records = 0;
    std::uint64_t sinceClear = 0;
};

class TnvFastPathEquivalence
    : public ::testing::TestWithParam<TnvConfig::Policy>
{
};

TEST_P(TnvFastPathEquivalence, MatchesReferenceScanOnRunHeavyStream)
{
    const TnvConfig cfg = config(8, 512, GetParam());
    TnvTable table(cfg);
    ReferenceTnv ref(cfg);

    const std::uint64_t seed = vp::check::testSeed(31);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);

    // Run-heavy stream (the pattern the hot-entry cache exploits),
    // interleaved with noise so insert/evict/clear paths all fire.
    std::uint64_t run_value = 7;
    std::uint64_t run_left = 0;
    for (int i = 0; i < 30000; ++i) {
        if (run_left == 0) {
            run_value = rng.below(40);
            run_left = 1 + rng.below(24);
        }
        const std::uint64_t v = rng.chance(0.9) ? run_value
                                                : rng.below(4096);
        --run_left;
        table.record(v);
        ref.record(v);

        if (i % 499 == 0) {
            // Entry-for-entry identical state, including recency.
            auto got = table.sortedByCount();
            auto want = ref.entries;
            std::sort(want.begin(), want.end(),
                      [](const core::TnvEntry &a,
                         const core::TnvEntry &b) {
                          if (a.count != b.count)
                              return a.count > b.count;
                          return a.lastUse < b.lastUse;
                      });
            ASSERT_EQ(got.size(), want.size()) << "at record " << i;
            for (std::size_t k = 0; k < got.size(); ++k) {
                ASSERT_EQ(got[k].value, want[k].value) << "slot " << k;
                ASSERT_EQ(got[k].count, want[k].count) << "slot " << k;
                ASSERT_EQ(got[k].lastUse, want[k].lastUse)
                    << "slot " << k;
            }
        }
    }
    EXPECT_EQ(table.recordCount(), ref.records);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, TnvFastPathEquivalence,
    ::testing::Values(TnvConfig::Policy::SteadyClear,
                      TnvConfig::Policy::PureLfu,
                      TnvConfig::Policy::Lru));

TEST(TnvTable, RecordReportsHits)
{
    TnvTable t(config(2, 1000, TnvConfig::Policy::PureLfu));
    EXPECT_FALSE(t.record(5)); // first sighting: miss
    EXPECT_TRUE(t.record(5));  // cached-entry fast path hit
    EXPECT_FALSE(t.record(9)); // insert
    EXPECT_TRUE(t.record(5));  // hit via slow-path scan (cache on 9)
    EXPECT_FALSE(t.record(7)); // evicts 9; still a miss
    EXPECT_TRUE(t.record(7));
}

TEST(TnvTable, RecordCanaryDoubleCountsFastPathOnly)
{
    // The canary must skew exactly the fast path: hits through the
    // cached entry add 2, every slow-path outcome stays honest.
    TnvTable t(config(4, 1000, TnvConfig::Policy::PureLfu));
    core::TnvTable::setRecordCanaryForTest(true);
    t.record(5); // miss: honest insert at count 1
    t.record(5); // fast-path hit: +2
    t.record(5); // fast-path hit: +2
    core::TnvTable::setRecordCanaryForTest(false);
    EXPECT_EQ(t.countFor(5), 5u);
    EXPECT_FALSE(core::TnvTable::recordCanaryForTest());
    t.record(5);
    EXPECT_EQ(t.countFor(5), 6u);
}

// ---------------------------------------------------------------------
// Property tests over randomized streams
// ---------------------------------------------------------------------

struct PropertyParam
{
    unsigned capacity;
    std::uint64_t clearInterval;
    TnvConfig::Policy policy;
    std::uint64_t seed;
};

class TnvProperties : public ::testing::TestWithParam<PropertyParam>
{
};

TEST_P(TnvProperties, StructuralInvariantsHold)
{
    const auto &prm = GetParam();
    TnvTable t(config(prm.capacity, prm.clearInterval, prm.policy));
    const std::uint64_t seed = vp::check::testSeed(prm.seed);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    std::map<std::uint64_t, std::uint64_t> oracle;

    for (int i = 0; i < 20000; ++i) {
        // Skewed stream: value 7 dominates.
        const std::uint64_t v =
            rng.chance(0.6) ? 7 : rng.below(64);
        t.record(v);
        ++oracle[v];

        if (i % 997 == 0) {
            // Size never exceeds capacity.
            ASSERT_LE(t.size(), prm.capacity);
            // Covered count never exceeds records.
            ASSERT_LE(t.coveredCount(), t.recordCount());
            // No entry's count exceeds the oracle count.
            for (const auto &e : t.raw())
                ASSERT_LE(e.count, oracle[e.value]);
            // No duplicate values in the table.
            std::map<std::uint64_t, int> dup;
            for (const auto &e : t.raw())
                ASSERT_EQ(++dup[e.value], 1);
        }
    }
    ASSERT_TRUE(t.top().has_value());
    // On a heavily skewed stationary stream, any multi-entry LFU-based
    // policy must end with the dominant value on top and retain most
    // of its count. LRU loses accumulated counts whenever a burst of
    // noise evicts the hot value, and a 1-entry table thrashes, so
    // those only get the structural checks above.
    const bool retains_counts =
        prm.capacity >= 2 && prm.policy != TnvConfig::Policy::Lru;
    if (retains_counts) {
        EXPECT_EQ(t.top()->value, 7u);
        EXPECT_GT(static_cast<double>(t.countFor(7)) /
                      static_cast<double>(oracle[7]),
                  0.75);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TnvProperties,
    ::testing::Values(
        PropertyParam{8, 2048, TnvConfig::Policy::SteadyClear, 1},
        PropertyParam{8, 256, TnvConfig::Policy::SteadyClear, 2},
        PropertyParam{4, 2048, TnvConfig::Policy::SteadyClear, 3},
        PropertyParam{16, 1024, TnvConfig::Policy::SteadyClear, 4},
        PropertyParam{8, 2048, TnvConfig::Policy::PureLfu, 5},
        PropertyParam{8, 2048, TnvConfig::Policy::Lru, 6},
        PropertyParam{2, 128, TnvConfig::Policy::SteadyClear, 7},
        PropertyParam{1, 64, TnvConfig::Policy::PureLfu, 8}));

// ---------------------------------------------------------------------
// Compact cold-entity form
// ---------------------------------------------------------------------

TEST(TnvInline, SingleValueStaysInOneSlotThenSpills)
{
    // A location that only ever saw one value lives in the inline
    // slot (size 1, view of one entry); the second distinct value
    // spills it to the full table with nothing lost.
    TnvTable t(config(8, 1u << 30));
    for (int i = 0; i < 100; ++i)
        t.record(42);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.countFor(42), 100u);
    EXPECT_EQ(t.raw().size(), 1u);
    EXPECT_EQ(t.raw()[0].value, 42u);
    ASSERT_TRUE(t.top().has_value());
    EXPECT_EQ(t.top()->value, 42u);
    EXPECT_EQ(t.coveredCount(), 100u);

    t.record(7);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.countFor(42), 100u);
    EXPECT_EQ(t.countFor(7), 1u);
    EXPECT_EQ(t.recordCount(), 101u);
}

TEST(TnvInline, ResetReturnsToInlineForm)
{
    TnvTable t(config(8, 1u << 30));
    t.record(1);
    t.record(2); // spilled
    EXPECT_EQ(t.size(), 2u);
    t.reset();
    EXPECT_EQ(t.size(), 0u);
    t.record(9);
    t.record(9);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.countFor(9), 2u);
    EXPECT_EQ(t.raw().size(), 1u);
}

TEST(TnvInline, MergeKeepsColdFormWhenValuesAgree)
{
    // Two shards that each saw only the same constant merge without
    // leaving the inline slot.
    TnvTable a(config(8, 1u << 30)), b(config(8, 1u << 30));
    for (int i = 0; i < 4; ++i)
        a.record(5);
    for (int i = 0; i < 3; ++i)
        b.record(5);
    a.merge(b);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a.countFor(5), 7u);
    EXPECT_EQ(a.recordCount(), 7u);
}

TEST(TnvInline, MergeSpillsWhenValuesDiffer)
{
    TnvTable a(config(8, 1u << 30)), b(config(8, 1u << 30));
    a.record(5);
    b.record(6);
    a.merge(b);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.countFor(5), 1u);
    EXPECT_EQ(a.countFor(6), 1u);
}

TEST(TnvInline, MergeSingleValueIntoEmptyAdoptsInline)
{
    TnvTable a(config(8, 1u << 30)), b(config(8, 1u << 30));
    for (int i = 0; i < 3; ++i)
        b.record(9);
    a.merge(b);
    EXPECT_EQ(a.size(), 1u);
    EXPECT_EQ(a.raw().size(), 1u);
    EXPECT_EQ(a.countFor(9), 3u);
    EXPECT_EQ(a.recordCount(), 3u);
    // The adopted slot behaves like any inline slot: a second value
    // still spills correctly.
    a.record(4);
    EXPECT_EQ(a.size(), 2u);
    EXPECT_EQ(a.countFor(9), 3u);
    EXPECT_EQ(a.countFor(4), 1u);
}

} // namespace
