/**
 * @file
 * Tests for the convergent-sampling state machine.
 */

#include <gtest/gtest.h>

#include "check/seed.hpp"
#include "core/sampler.hpp"
#include "core/value_profile.hpp"
#include "support/rng.hpp"

using core::SamplerConfig;
using core::SamplerState;

namespace
{

SamplerConfig
smallConfig()
{
    SamplerConfig cfg;
    cfg.burstSize = 10;
    cfg.initialSkip = 40;
    cfg.convergenceDelta = 0.05;
    cfg.convergeRounds = 2;
    cfg.backoffFactor = 2.0;
    cfg.maxSkip = 640;
    cfg.retriggerDelta = 0.2;
    return cfg;
}

TEST(Sampler, StartsInBurst)
{
    SamplerState s(smallConfig());
    for (int i = 0; i < 9; ++i) {
        EXPECT_TRUE(s.step());
        EXPECT_FALSE(s.burstJustEnded());
    }
    EXPECT_TRUE(s.step()); // 10th profiled execution ends the burst
    EXPECT_TRUE(s.burstJustEnded());
    EXPECT_EQ(s.profiledExecutions(), 10u);
    EXPECT_EQ(s.totalExecutions(), 10u);
}

TEST(Sampler, SkipsBetweenBursts)
{
    SamplerState s(smallConfig());
    for (int i = 0; i < 10; ++i)
        s.step();
    s.noteBurstEnd(0.5);
    for (int i = 0; i < 40; ++i)
        EXPECT_FALSE(s.step());
    EXPECT_TRUE(s.step()); // next burst begins
    EXPECT_EQ(s.profiledExecutions(), 11u);
}

TEST(Sampler, ConvergesAfterStableBursts)
{
    SamplerState s(smallConfig());
    auto run_burst = [&](double inv) {
        while (true) {
            s.step();
            if (s.burstJustEnded())
                break;
        }
        s.noteBurstEnd(inv);
    };
    run_burst(0.80);          // baseline
    EXPECT_FALSE(s.converged());
    run_burst(0.81);          // stable round 1
    EXPECT_FALSE(s.converged());
    run_burst(0.82);          // stable round 2 -> converged
    EXPECT_TRUE(s.converged());
    EXPECT_GT(s.currentSkip(), smallConfig().initialSkip);
}

TEST(Sampler, UnstableEstimateResetsProgress)
{
    SamplerState s(smallConfig());
    auto run_burst = [&](double inv) {
        while (true) {
            s.step();
            if (s.burstJustEnded())
                break;
        }
        s.noteBurstEnd(inv);
    };
    run_burst(0.8);
    run_burst(0.81); // stable round 1
    run_burst(0.5);  // jump: progress reset
    run_burst(0.51); // stable round 1 again
    EXPECT_FALSE(s.converged());
    run_burst(0.52); // stable round 2
    EXPECT_TRUE(s.converged());
}

TEST(Sampler, BackoffIsCappedAtMaxSkip)
{
    SamplerState s(smallConfig());
    auto run_burst = [&](double inv) {
        while (true) {
            s.step();
            if (s.burstJustEnded())
                break;
        }
        s.noteBurstEnd(inv);
    };
    for (int i = 0; i < 20; ++i)
        run_burst(0.9);
    EXPECT_TRUE(s.converged());
    EXPECT_LE(s.currentSkip(), smallConfig().maxSkip);
    EXPECT_EQ(s.currentSkip(), smallConfig().maxSkip);
}

TEST(Sampler, PhaseChangeRetriggersFullRateSampling)
{
    SamplerState s(smallConfig());
    auto run_burst = [&](double inv) {
        while (true) {
            s.step();
            if (s.burstJustEnded())
                break;
        }
        s.noteBurstEnd(inv);
    };
    run_burst(0.9);
    run_burst(0.9);
    run_burst(0.9);
    ASSERT_TRUE(s.converged());
    // Wake-up burst sees a very different invariance.
    run_burst(0.3);
    EXPECT_FALSE(s.converged());
    EXPECT_EQ(s.currentSkip(), smallConfig().initialSkip);
}

TEST(Sampler, RetriggerResumesBurstingImmediately)
{
    // Regression: after a phase-change retrigger at a wake-up burst the
    // sampler used to enter an initialSkip-length skip phase before the
    // next burst, contradicting "re-triggers full-rate sampling". The
    // very next execution after the retrigger must be profiled.
    SamplerState s(smallConfig());
    auto run_burst = [&](double inv) {
        while (true) {
            s.step();
            if (s.burstJustEnded())
                break;
        }
        s.noteBurstEnd(inv);
    };
    run_burst(0.9);
    run_burst(0.9);
    run_burst(0.9);
    ASSERT_TRUE(s.converged());
    run_burst(0.3); // wake-up burst sees a phase change
    ASSERT_FALSE(s.converged());
    // Full-rate sampling resumes now: a complete burst with no skips.
    for (std::uint64_t i = 0; i < smallConfig().burstSize; ++i) {
        EXPECT_TRUE(s.step());
    }
    EXPECT_TRUE(s.burstJustEnded());
    s.noteBurstEnd(0.3);
    // Subsequent inter-burst gaps are back at the initial skip.
    EXPECT_EQ(s.currentSkip(), smallConfig().initialSkip);
    for (std::uint64_t i = 0; i < smallConfig().initialSkip; ++i)
        EXPECT_FALSE(s.step());
    EXPECT_TRUE(s.step());
}

TEST(Sampler, FractionProfiledDropsAfterConvergence)
{
    SamplerState s(smallConfig());
    core::ValueProfile prof;
    const std::uint64_t seed = vp::check::testSeed(17);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int i = 0; i < 200000; ++i) {
        if (s.step()) {
            prof.record(rng.chance(0.9) ? 1 : 2);
            if (s.burstJustEnded())
                s.noteBurstEnd(prof.invTop());
        }
    }
    EXPECT_TRUE(s.converged());
    // Far fewer than the pre-convergence rate of 10/50 = 20%.
    EXPECT_LT(s.fractionProfiled(), 0.05);
    // Yet the estimate is accurate.
    EXPECT_NEAR(prof.invTop(), 0.9, 0.05);
}

TEST(SamplerDeath, MissingNoteBurstEndPanics)
{
    SamplerState s(smallConfig());
    for (int i = 0; i < 10; ++i)
        s.step();
    ASSERT_TRUE(s.burstJustEnded());
    EXPECT_DEATH(s.step(), "noteBurstEnd");
}

TEST(SamplerDeath, SpuriousNoteBurstEndPanics)
{
    SamplerState s(smallConfig());
    s.step();
    EXPECT_DEATH(s.noteBurstEnd(0.5), "no burst");
}

TEST(Sampler, WakeupsTrackPhaseChangesFrozenSamplersMiss)
{
    // A phased stream: constant A for the first half, constant B for
    // the second. True Inv-Top ~= 0.5. A sampler with bounded wake-up
    // period keeps tracking; a sampler whose back-off is effectively
    // unbounded freezes on the phase-1 estimate (~1.0).
    auto run = [](std::uint64_t max_skip, double backoff,
                  double retrigger) {
        SamplerConfig cfg;
        cfg.burstSize = 32;
        cfg.initialSkip = 224;
        cfg.maxSkip = max_skip;
        cfg.backoffFactor = backoff;
        cfg.retriggerDelta = retrigger;
        SamplerState s(cfg);
        core::ValueProfile prof;
        const int n = 400000;
        for (int i = 0; i < n; ++i) {
            const std::uint64_t v = i < n / 2 ? 111 : 222;
            if (s.step()) {
                prof.record(v);
                if (s.burstJustEnded())
                    s.noteBurstEnd(prof.invTop());
            }
        }
        return prof.invTop();
    };
    const double tracking = run(4096, 2.0, 0.08);
    // "Frozen": unbounded back-off and retriggering disabled — the
    // degenerate sampler that stops once converged.
    const double frozen = run(1u << 30, 8.0, 1.1);
    EXPECT_NEAR(tracking, 0.5, 0.15);
    EXPECT_GT(frozen, tracking + 0.25);
}

// Accuracy property: on stationary streams the sampled estimate of
// Inv-Top lands near the true invariance across a parameter sweep.
struct AccuracyParam
{
    double q;
    std::uint64_t seed;
};

class SamplerAccuracy : public ::testing::TestWithParam<AccuracyParam>
{
};

TEST_P(SamplerAccuracy, EstimateTracksTrueInvariance)
{
    SamplerState s; // default (paper-like) config
    core::ValueProfile sampled;
    core::ValueProfile full;
    const std::uint64_t seed = vp::check::testSeed(GetParam().seed);
    SCOPED_TRACE(vp::check::seedMessage(seed));
    vp::Rng rng(seed);
    for (int i = 0; i < 300000; ++i) {
        const std::uint64_t v =
            rng.chance(GetParam().q) ? 5 : rng.below(100);
        full.record(v);
        if (s.step()) {
            sampled.record(v);
            if (s.burstJustEnded())
                s.noteBurstEnd(sampled.invTop());
        }
    }
    EXPECT_NEAR(sampled.invTop(), full.invTop(), 0.05);
    EXPECT_LT(s.fractionProfiled(), 0.2);
}

INSTANTIATE_TEST_SUITE_P(Q, SamplerAccuracy,
                         ::testing::Values(AccuracyParam{0.95, 1},
                                           AccuracyParam{0.8, 2},
                                           AccuracyParam{0.5, 3},
                                           AccuracyParam{0.99, 4}));

} // namespace
