/**
 * @file
 * Tests for profile snapshots: summarization, serialization round
 * trips, and cross-run comparison.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "core/snapshot.hpp"
#include "vpsim/assembler.hpp"

using namespace core;

namespace
{

ValueProfile
makeProfile(std::initializer_list<std::uint64_t> values)
{
    ValueProfile p;
    for (auto v : values)
        p.record(v);
    return p;
}

TEST(Snapshot, SummarizeCapturesMetrics)
{
    const ValueProfile p = makeProfile({7, 7, 7, 0});
    const EntitySummary s = ProfileSnapshot::summarize(p, 4);
    EXPECT_EQ(s.totalExecutions, 4u);
    EXPECT_EQ(s.profiledExecutions, 4u);
    EXPECT_DOUBLE_EQ(s.invTop, 0.75);
    EXPECT_DOUBLE_EQ(s.invAll, 1.0);
    EXPECT_DOUBLE_EQ(s.zeroFraction, 0.25);
    EXPECT_EQ(s.distinct, 2u);
    ASSERT_EQ(s.topValues.size(), 2u);
    EXPECT_EQ(s.topValues[0].first, 7u);
    EXPECT_EQ(s.topValues[0].second, 3u);
    EXPECT_EQ(s.topValue(), 7u);
    EXPECT_TRUE(s.hasTopValue(0));
    EXPECT_FALSE(s.hasTopValue(42));
}

TEST(Snapshot, SaveLoadRoundTrip)
{
    ProfileSnapshot snap;
    snap.entities[3] =
        ProfileSnapshot::summarize(makeProfile({1, 1, 2}), 3);
    snap.entities[9] =
        ProfileSnapshot::summarize(makeProfile({5}), 10);

    std::stringstream ss;
    snap.save(ss);
    const ProfileSnapshot loaded = ProfileSnapshot::load(ss);

    ASSERT_EQ(loaded.size(), 2u);
    const auto &e3 = loaded.entities.at(3);
    EXPECT_EQ(e3.totalExecutions, 3u);
    EXPECT_NEAR(e3.invTop, 2.0 / 3.0, 1e-9);
    ASSERT_EQ(e3.topValues.size(), 2u);
    EXPECT_EQ(e3.topValues[0].first, 1u);
    const auto &e9 = loaded.entities.at(9);
    EXPECT_EQ(e9.totalExecutions, 10u);
    EXPECT_EQ(e9.profiledExecutions, 1u);
}

TEST(SnapshotDeath, LoadRejectsBadHeader)
{
    std::stringstream ss("not a snapshot\n");
    EXPECT_EXIT(ProfileSnapshot::load(ss),
                ::testing::ExitedWithCode(1), "bad snapshot header");
}

TEST(SnapshotDeath, LoadRejectsTruncation)
{
    ProfileSnapshot snap;
    snap.entities[1] =
        ProfileSnapshot::summarize(makeProfile({1, 2}), 2);
    std::stringstream ss;
    snap.save(ss);
    std::string text = ss.str();
    text.resize(text.size() / 2);
    std::stringstream cut(text);
    EXPECT_EXIT(ProfileSnapshot::load(cut),
                ::testing::ExitedWithCode(1), "truncated");
}

TEST(Snapshot, CompareIdenticalSnapshots)
{
    ProfileSnapshot snap;
    snap.entities[1] =
        ProfileSnapshot::summarize(makeProfile({7, 7, 8}), 3);
    snap.entities[2] =
        ProfileSnapshot::summarize(makeProfile({1, 2, 3}), 3);
    const SnapshotComparison cmp = compareSnapshots(snap, snap);
    EXPECT_EQ(cmp.commonEntities, 2u);
    EXPECT_NEAR(cmp.invTopCorrelation, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(cmp.meanAbsInvTopDelta, 0.0);
    EXPECT_DOUBLE_EQ(cmp.topValueTransfer, 1.0);
}

TEST(Snapshot, CompareDisjointSnapshots)
{
    ProfileSnapshot a, b;
    a.entities[1] = ProfileSnapshot::summarize(makeProfile({1}), 1);
    b.entities[2] = ProfileSnapshot::summarize(makeProfile({1}), 1);
    const SnapshotComparison cmp = compareSnapshots(a, b);
    EXPECT_EQ(cmp.commonEntities, 0u);
    EXPECT_DOUBLE_EQ(cmp.topValueTransfer, 0.0);
}

TEST(Snapshot, CompareDetectsShiftedValues)
{
    ProfileSnapshot a, b;
    // Same entity, completely different top values.
    a.entities[1] =
        ProfileSnapshot::summarize(makeProfile({5, 5, 5, 5}), 4);
    b.entities[1] =
        ProfileSnapshot::summarize(makeProfile({9, 9, 1, 2}), 4);
    const SnapshotComparison cmp = compareSnapshots(a, b);
    EXPECT_EQ(cmp.commonEntities, 1u);
    EXPECT_DOUBLE_EQ(cmp.topValueTransfer, 0.0); // 5 absent from b
    EXPECT_NEAR(cmp.meanAbsInvTopDelta, 0.5, 1e-9);
}

TEST(Snapshot, CompareWeightsByExecutionCount)
{
    ProfileSnapshot a, b;
    // Hot entity agrees; cold entity disagrees.
    a.entities[1] =
        ProfileSnapshot::summarize(makeProfile({3, 3, 3, 3}), 1000);
    b.entities[1] =
        ProfileSnapshot::summarize(makeProfile({3, 3, 3, 3}), 1000);
    a.entities[2] = ProfileSnapshot::summarize(makeProfile({4}), 1);
    b.entities[2] = ProfileSnapshot::summarize(makeProfile({8}), 1);
    const SnapshotComparison cmp = compareSnapshots(a, b);
    EXPECT_GT(cmp.topValueTransfer, 0.99);
}

TEST(Snapshot, FromMemoryAndParameterProfilers)
{
    vpsim::Program prog = vpsim::assemble(R"(
    .data
cell:   .space 8
    .text
    .proc main args=0
main:
    la   t0, cell
    li   t1, 9
    st   t1, 0(t0)
    li   a0, 4
    call f
    li   a0, 0
    syscall exit
    .endp
    .proc f args=1
f:
    ret
    .endp
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, vpsim::CpuConfig{1u << 16, 1000});
    MemoryProfiler mprof;
    ParameterProfiler pprof;
    mprof.instrument(mgr);
    pprof.instrument(mgr);
    mgr.attach(cpu);
    cpu.run();

    const auto msnap = ProfileSnapshot::fromMemoryProfiler(mprof);
    ASSERT_EQ(msnap.size(), 1u);
    EXPECT_EQ(msnap.entities.begin()->first,
              prog.dataAddress("cell"));
    EXPECT_EQ(msnap.entities.begin()->second.topValue(), 9u);

    const auto psnap = ProfileSnapshot::fromParameterProfiler(pprof);
    ASSERT_EQ(psnap.size(), 1u);
    EXPECT_EQ(psnap.entities.begin()->second.topValue(), 4u);
    EXPECT_EQ(psnap.entities.begin()->second.totalExecutions, 1u);
}

TEST(Snapshot, EntitySummaryMergeSumsCountsAndRecomputes)
{
    // Shard A: 7,7,7,0   shard B: 7,8,8,8
    EntitySummary a = ProfileSnapshot::summarize(
        makeProfile({7, 7, 7, 0}), 4);
    const EntitySummary b = ProfileSnapshot::summarize(
        makeProfile({7, 8, 8, 8}), 4);
    a.merge(b);

    EXPECT_EQ(a.totalExecutions, 8u);
    EXPECT_EQ(a.profiledExecutions, 8u);
    // Merged counts: 7->4, 8->3, 0->1; both shards listed two top
    // values, so the merged summary keeps the top two.
    EXPECT_EQ(a.topValue(), 7u);
    EXPECT_DOUBLE_EQ(a.invTop, 0.5);
    EXPECT_DOUBLE_EQ(a.invAll, 7.0 / 8.0);
    // %Zero: weighted mean of 0.25 and 0 over equal shards.
    EXPECT_DOUBLE_EQ(a.zeroFraction, 0.125);
    ASSERT_EQ(a.topValues.size(), 2u);
    EXPECT_EQ(a.topValues[0].second, 4u);
    EXPECT_EQ(a.topValues[1].first, 8u);
    EXPECT_EQ(a.topValues[1].second, 3u);
}

TEST(Snapshot, EntitySummaryMergeIsOrderIndependent)
{
    const EntitySummary a = ProfileSnapshot::summarize(
        makeProfile({1, 1, 2, 3}), 4);
    const EntitySummary b = ProfileSnapshot::summarize(
        makeProfile({2, 2, 4}), 3);
    EntitySummary ab = a, ba = b;
    ab.merge(b);
    ba.merge(a);
    EXPECT_EQ(ab.totalExecutions, ba.totalExecutions);
    EXPECT_DOUBLE_EQ(ab.invTop, ba.invTop);
    EXPECT_DOUBLE_EQ(ab.invAll, ba.invAll);
    ASSERT_EQ(ab.topValues.size(), ba.topValues.size());
    for (std::size_t i = 0; i < ab.topValues.size(); ++i) {
        EXPECT_EQ(ab.topValues[i].first, ba.topValues[i].first);
        EXPECT_EQ(ab.topValues[i].second, ba.topValues[i].second);
    }
}

TEST(Snapshot, SnapshotMergeUnionsEntities)
{
    ProfileSnapshot a, b;
    a.entities[1] = ProfileSnapshot::summarize(makeProfile({5, 5}), 2);
    a.entities[2] = ProfileSnapshot::summarize(makeProfile({6}), 1);
    b.entities[2] = ProfileSnapshot::summarize(makeProfile({6, 7}), 2);
    b.entities[3] = ProfileSnapshot::summarize(makeProfile({8}), 1);

    a.merge(b);
    ASSERT_EQ(a.size(), 3u);
    EXPECT_EQ(a.entities.at(1).totalExecutions, 2u);
    EXPECT_EQ(a.entities.at(2).totalExecutions, 3u);
    EXPECT_EQ(a.entities.at(2).topValue(), 6u);
    EXPECT_EQ(a.entities.at(3).totalExecutions, 1u);
}

// ---------------------------------------------------------------------
// Serialization edge cases: empty, full-capacity, extreme values, and
// graceful (tryLoad) rejection of corrupt input.
// ---------------------------------------------------------------------

std::string
saveToString(const ProfileSnapshot &snap)
{
    std::stringstream ss;
    snap.save(ss);
    return ss.str();
}

TEST(Snapshot, EmptySnapshotRoundTrips)
{
    const ProfileSnapshot empty;
    const std::string text = saveToString(empty);
    std::stringstream ss(text);
    ProfileSnapshot loaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(ss, loaded, err)) << err;
    EXPECT_EQ(loaded.size(), 0u);
    EXPECT_EQ(saveToString(loaded), text);
}

TEST(Snapshot, FullCapacityTnvRoundTrips)
{
    // Fill a default (capacity 8) table exactly; all 8 entries must
    // survive the round trip in order.
    ValueProfile p;
    for (std::uint64_t v = 1; v <= 8; ++v)
        for (std::uint64_t k = 0; k <= v; ++k)
            p.record(v * 100);
    ProfileSnapshot snap;
    snap.entities[5] = ProfileSnapshot::summarize(p, p.executions());
    ASSERT_EQ(snap.entities[5].topValues.size(), 8u);

    std::stringstream ss(saveToString(snap));
    ProfileSnapshot loaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(ss, loaded, err)) << err;
    const auto &e = loaded.entities.at(5);
    ASSERT_EQ(e.topValues.size(), 8u);
    EXPECT_EQ(e.topValue(), 800u);  // 9 occurrences of 8*100
    EXPECT_EQ(e.topValues.front().second, 9u);
    EXPECT_EQ(saveToString(loaded), saveToString(snap));
}

TEST(Snapshot, ExtremeValuesSurviveRoundTrip)
{
    // INT64_MIN's bit pattern and UINT64_MAX as profiled values, with
    // a UINT64_MAX execution count on the entity key side too.
    const std::uint64_t int64_min_bits = 1ull << 63;
    const std::uint64_t uint64_max = ~0ull;
    ValueProfile p;
    p.record(int64_min_bits);
    p.record(int64_min_bits);
    p.record(uint64_max);
    ProfileSnapshot snap;
    snap.entities[uint64_max] = ProfileSnapshot::summarize(p, 3);

    std::stringstream ss(saveToString(snap));
    ProfileSnapshot loaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(ss, loaded, err)) << err;
    const auto &e = loaded.entities.at(uint64_max);
    EXPECT_EQ(e.topValue(), int64_min_bits);
    EXPECT_TRUE(e.hasTopValue(uint64_max));
    EXPECT_EQ(saveToString(loaded), saveToString(snap));
}

TEST(Snapshot, TryLoadIsAFixedPoint)
{
    ProfileSnapshot snap;
    snap.entities[3] =
        ProfileSnapshot::summarize(makeProfile({1, 1, 2}), 3);
    const std::string first = saveToString(snap);
    std::stringstream in1(first);
    ProfileSnapshot l1;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(in1, l1, err)) << err;
    const std::string second = saveToString(l1);
    EXPECT_EQ(second, first);
    std::stringstream in2(second);
    ProfileSnapshot l2;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(in2, l2, err)) << err;
    EXPECT_EQ(saveToString(l2), second);
}

TEST(Snapshot, TryLoadRejectsCorruptInputGracefully)
{
    ProfileSnapshot snap;
    snap.entities[1] =
        ProfileSnapshot::summarize(makeProfile({1, 2, 3}), 3);
    const std::string good = saveToString(snap);

    const auto rejects = [](const std::string &text) {
        std::stringstream ss(text);
        ProfileSnapshot out;
        std::string err;
        const bool ok = ProfileSnapshot::tryLoad(ss, out, err);
        EXPECT_FALSE(ok) << "accepted: " << text;
        EXPECT_FALSE(err.empty());
        EXPECT_EQ(out.size(), 0u);  // failed loads leave `out` empty
        return err;
    };

    EXPECT_NE(rejects("").find("bad snapshot header"),
              std::string::npos);
    EXPECT_NE(rejects("not a snapshot\n" + good)
                  .find("bad snapshot header"),
              std::string::npos);
    EXPECT_NE(rejects("valueprof-snapshot v1\n").find("entity count"),
              std::string::npos);
    EXPECT_NE(rejects(good.substr(0, good.size() / 2))
                  .find("truncated"),
              std::string::npos);
    // A count that promises more entities than the file holds.
    EXPECT_NE(rejects("valueprof-snapshot v1\n3\n" +
                      good.substr(good.find('\n', 22) + 1))
                  .find("truncated"),
              std::string::npos);
    // An absurd per-entity top-value count must not drive a giant
    // allocation loop.
    EXPECT_NE(
        rejects("valueprof-snapshot v1\n1\n"
                "1 3 3 1 1 0 0 3 99999999999\n")
            .find("implausible"),
        std::string::npos);
}

TEST(Snapshot, TryLoadRejectsDuplicateKeys)
{
    const std::string text =
        "valueprof-snapshot v1\n2\n"
        "1 1 1 1 1 0 0 1 1 5 1\n"
        "1 1 1 1 1 0 0 1 1 6 1\n";
    std::stringstream ss(text);
    ProfileSnapshot out;
    std::string err;
    EXPECT_FALSE(ProfileSnapshot::tryLoad(ss, out, err));
    EXPECT_NE(err.find("duplicate"), std::string::npos);
}

TEST(Snapshot, SaveToFileRoundTripsAndIsAtomicUnderAbort)
{
    ProfileSnapshot snap;
    EntitySummary s;
    s.totalExecutions = 10;
    s.profiledExecutions = 10;
    s.invTop = 0.9;
    s.distinct = 2;
    s.topValues = {{7, 9}, {1, 1}};
    snap.entities[4] = s;

    const std::string path =
        ::testing::TempDir() + "snapshot_atomic_test.vprof";
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());

    std::string err;
    ASSERT_TRUE(snap.saveToFile(path, err)) << err;
    ProfileSnapshot loaded;
    ASSERT_TRUE(ProfileSnapshot::tryLoadFile(path, loaded, err)) << err;
    std::ostringstream a, b;
    snap.save(a);
    loaded.save(b);
    EXPECT_EQ(a.str(), b.str());

    // Simulate a crash mid-write of a NEW snapshot: the write aborts
    // before the rename, so the target must still hold the complete
    // OLD snapshot — never a torn file.
    ProfileSnapshot bigger = snap;
    bigger.entities[5] = s;
    core::testing::saveAbortAfterBytes = 10;
    EXPECT_FALSE(bigger.saveToFile(path, err));
    core::testing::saveAbortAfterBytes = 0;
    EXPECT_NE(err.find("simulated crash"), std::string::npos) << err;

    ProfileSnapshot survivor;
    ASSERT_TRUE(ProfileSnapshot::tryLoadFile(path, survivor, err))
        << err;
    std::ostringstream c;
    survivor.save(c);
    EXPECT_EQ(c.str(), a.str()) << "crash mid-write tore the target";

    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
}

TEST(Snapshot, TryLoadFileReportsMissingFile)
{
    ProfileSnapshot out;
    std::string err;
    EXPECT_FALSE(ProfileSnapshot::tryLoadFile(
        ::testing::TempDir() + "no_such_snapshot.vprof", out, err));
    EXPECT_FALSE(err.empty());
}

TEST(Snapshot, FromInstructionProfilerKeysByPc)
{
    vpsim::Program prog = vpsim::assemble(R"(
    li   t0, 9
    li   a0, 0
    syscall exit
)");
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, vpsim::CpuConfig{1u << 16, 1000});
    InstructionProfiler prof(img);
    prof.profileAllWrites(mgr);
    mgr.attach(cpu);
    cpu.run();
    const ProfileSnapshot snap =
        ProfileSnapshot::fromInstructionProfiler(prof);
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap.entities.at(0).topValue(), 9u);
    EXPECT_EQ(snap.entities.at(1).topValue(), 0u);
}

// ---------------------------------------------------------------------
// Format v2 (compressed binary) and cross-version behavior
// ---------------------------------------------------------------------

std::string
saveToStringV(const ProfileSnapshot &snap, int version)
{
    std::stringstream ss;
    snap.save(ss, version);
    return ss.str();
}

/** A snapshot exercising every v2 record kind: a constant run, a
 *  lone constant, and full records (one with non-canonical metrics). */
ProfileSnapshot
v2Sample()
{
    ProfileSnapshot snap;
    for (std::uint64_t i = 0; i < 5; ++i) // constant run, stride 4
        snap.entities[100 + 4 * i] =
            ProfileSnapshot::summarize(makeProfile({9, 9}), 2);
    snap.entities[500] = // lone constant, unprofiled tail
        ProfileSnapshot::summarize(makeProfile({0}), 3);
    snap.entities[600] = // full record, canonical metrics
        ProfileSnapshot::summarize(makeProfile({1, 1, 2, 3}), 4);
    EntitySummary odd = // full record, nothing canonical
        ProfileSnapshot::summarize(makeProfile({5, 5}), 2);
    odd.invTop = 0.123;
    odd.invAll = 0.456;
    snap.entities[700] = odd;
    snap.droppedStores = 11;
    snap.droppedLoads = 2;
    return snap;
}

TEST(SnapshotV2, RoundTripIsFixedPointAndMatchesV1Rendering)
{
    const ProfileSnapshot snap = v2Sample();
    const std::string v2 = saveToStringV(snap, 2);
    EXPECT_EQ(saveToString(snap), v2); // v2 is the default save

    std::stringstream in(v2);
    ProfileSnapshot loaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(in, loaded, err)) << err;
    EXPECT_EQ(saveToStringV(loaded, 2), v2);
    // The decoded snapshot is semantically identical: its v1 text
    // rendering matches the original's bit for bit.
    EXPECT_EQ(saveToStringV(loaded, 1), saveToStringV(snap, 1));
}

TEST(SnapshotV2, DroppedCountersSurviveV2NotV1)
{
    const ProfileSnapshot snap = v2Sample();
    ASSERT_TRUE(snap.overflowed());

    std::stringstream v2(saveToStringV(snap, 2));
    ProfileSnapshot via2;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(v2, via2, err)) << err;
    EXPECT_EQ(via2.droppedStores, 11u);
    EXPECT_EQ(via2.droppedLoads, 2u);
    EXPECT_TRUE(via2.overflowed());

    // The v1 text format predates the counters: they load as zero.
    std::stringstream v1(saveToStringV(snap, 1));
    ProfileSnapshot via1;
    via1.droppedStores = 999; // must be scrubbed, not inherited
    ASSERT_TRUE(ProfileSnapshot::tryLoad(v1, via1, err)) << err;
    EXPECT_EQ(via1.droppedStores, 0u);
    EXPECT_EQ(via1.droppedLoads, 0u);
    EXPECT_FALSE(via1.overflowed());
}

TEST(SnapshotV2, MergeSumsDroppedCounters)
{
    ProfileSnapshot a, b;
    a.droppedStores = 3;
    a.droppedLoads = 1;
    a.entities[1] = ProfileSnapshot::summarize(makeProfile({5}), 1);
    b.droppedStores = 4;
    b.droppedLoads = 2;
    b.entities[1] = ProfileSnapshot::summarize(makeProfile({5}), 1);
    a.merge(b);
    EXPECT_EQ(a.droppedStores, 7u);
    EXPECT_EQ(a.droppedLoads, 3u);
}

TEST(SnapshotV2, TryLoadRejectsCorruptBinary)
{
    const std::string good = saveToStringV(v2Sample(), 2);

    const auto rejects = [](const std::string &text) {
        std::stringstream ss(text);
        ProfileSnapshot out;
        std::string err;
        EXPECT_FALSE(ProfileSnapshot::tryLoad(ss, out, err));
        EXPECT_FALSE(err.empty());
        return err;
    };

    // Any flipped payload byte breaks the CRC.
    for (std::size_t i = 22; i < good.size(); i += 7) {
        std::string bad = good;
        bad[i] = static_cast<char>(bad[i] ^ 0x20);
        EXPECT_NE(rejects(bad).find("CRC"), std::string::npos)
            << "byte " << i;
    }
    // Cut anywhere: mid-header, mid-body, inside the CRC footer.
    for (const std::size_t len :
         {std::size_t{10}, std::size_t{23}, good.size() / 2,
          good.size() - 2}) {
        EXPECT_NE(rejects(good.substr(0, len)).find("truncated"),
                  std::string::npos)
            << "cut at " << len;
    }
    // Trailing garbage after the CRC footer shifts the footer window,
    // so the checksum no longer matches.
    EXPECT_NE(rejects(good + "x").find("corrupt"), std::string::npos);
}

TEST(SnapshotV2, TryLoadRejectsNtopExceedingDistinct)
{
    // Hand-build a v2 body claiming ntop 2 but distinct 1; the file
    // loader is strict about it (the summarizer can never emit it).
    ProfileSnapshot snap;
    EntitySummary s = ProfileSnapshot::summarize(makeProfile({1, 2}), 2);
    s.distinct = 1; // lie: fewer distinct values than table entries
    snap.entities[4] = s;
    std::stringstream ss(saveToStringV(snap, 2));
    ProfileSnapshot out;
    std::string err;
    EXPECT_FALSE(ProfileSnapshot::tryLoad(ss, out, err));
    EXPECT_NE(err.find("exceeds distinct"), std::string::npos) << err;
}

TEST(SnapshotV1, TryLoadRejectsNtopExceedingDistinct)
{
    const std::string text =
        "valueprof-snapshot v1\n1\n"
        "1 4 4 1 1 0 0 1 2 5 3 6 1\n"; // distinct 1, ntop 2
    std::stringstream ss(text);
    ProfileSnapshot out;
    std::string err;
    EXPECT_FALSE(ProfileSnapshot::tryLoad(ss, out, err));
    EXPECT_NE(err.find("exceeds distinct"), std::string::npos) << err;
}

TEST(SnapshotV1, TryLoadRejectsTrailingGarbage)
{
    const std::string text =
        "valueprof-snapshot v1\n1\n"
        "1 4 4 1 1 0 0 2 2 5 3 6 1\n"
        "99 1 1 1 1 0 0 1 1 5 1\n"; // an entity past the count
    std::stringstream ss(text);
    ProfileSnapshot out;
    std::string err;
    EXPECT_FALSE(ProfileSnapshot::tryLoad(ss, out, err));
    EXPECT_NE(err.find("trailing"), std::string::npos) << err;
}

TEST(SnapshotV2, ExtremeValuesRoundTrip)
{
    // UINT64_MAX keys/values/counts and denormal-adjacent doubles
    // through the varint/zigzag/bit-pattern paths.
    ProfileSnapshot snap;
    EntitySummary s;
    s.totalExecutions = 0xFFFFFFFFFFFFFFFFull;
    s.profiledExecutions = 0xFFFFFFFFFFFFFFFEull;
    s.distinct = 3;
    s.topValues = {{0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFF0ull},
                   {0, 7},
                   {1, 1}};
    s.invTop = 1e-300;
    s.invAll = 1.0 / 3.0;
    s.lvp = 0.9999999999999999;
    s.zeroFraction = 5e-324; // smallest denormal
    snap.entities[0xFFFFFFFFFFFFFFFFull] = s;
    snap.entities[0] =
        ProfileSnapshot::summarize(makeProfile({0, 0}), 2);
    const std::string v2 = saveToStringV(snap, 2);
    std::stringstream in(v2);
    ProfileSnapshot loaded;
    std::string err;
    ASSERT_TRUE(ProfileSnapshot::tryLoad(in, loaded, err)) << err;
    EXPECT_EQ(saveToStringV(loaded, 2), v2);
    EXPECT_EQ(saveToStringV(loaded, 1), saveToStringV(snap, 1));
}

} // namespace
