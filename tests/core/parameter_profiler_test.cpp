/**
 * @file
 * Tests for the procedure-parameter value profiler.
 */

#include <gtest/gtest.h>

#include "core/parameter_profiler.hpp"
#include "vpsim/assembler.hpp"

using namespace core;
using namespace vpsim;

namespace
{

// f(a0=constant 5, a1=loop counter); g(a0=counter parity); h no args.
const char *const src = R"(
    .proc main args=0
main:
    li   s0, 20
loop:
    li   a0, 5
    mov  a1, s0
    call f
    andi a0, s0, 1
    call g
    call h
    addi s0, s0, -1
    bnez s0, loop
    li   a0, 0
    syscall exit
    .endp
    .proc f args=2
f:
    add  a0, a0, a1
    ret
    .endp
    .proc g args=1
g:
    ret
    .endp
    .proc h args=0
h:
    ret
    .endp
)";

class ParamTest : public ::testing::Test
{
  protected:
    ParamTest()
        : prog(assemble(src)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000})
    {
        profiler.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    ParameterProfiler profiler;
};

TEST_F(ParamTest, CallCountsPerProcedure)
{
    ASSERT_NE(profiler.recordFor("f"), nullptr);
    EXPECT_EQ(profiler.recordFor("f")->calls, 20u);
    EXPECT_EQ(profiler.recordFor("g")->calls, 20u);
    EXPECT_EQ(profiler.recordFor("h")->calls, 20u);
    EXPECT_EQ(profiler.recordFor("main"), nullptr); // never called
    EXPECT_EQ(profiler.totalCalls(), 60u);
}

TEST_F(ParamTest, InvariantParameterDetected)
{
    const auto *f = profiler.recordFor("f");
    ASSERT_EQ(f->args.size(), 2u);
    EXPECT_DOUBLE_EQ(f->args[0].invTop(), 1.0);
    EXPECT_EQ(f->args[0].tnv().top()->value, 5u);
    // a1 is the countdown: fully variant.
    EXPECT_EQ(f->args[1].distinct(), 20u);
    EXPECT_DOUBLE_EQ(f->args[1].invTop(), 0.05);
}

TEST_F(ParamTest, SemiInvariantParameter)
{
    const auto *g = profiler.recordFor("g");
    ASSERT_EQ(g->args.size(), 1u);
    EXPECT_EQ(g->args[0].distinct(), 2u);
    EXPECT_DOUBLE_EQ(g->args[0].invAll(), 1.0);
    EXPECT_NEAR(g->args[0].invTop(), 0.5, 0.01);
}

TEST_F(ParamTest, NoArgProcedureHasNoArgProfiles)
{
    const auto *h = profiler.recordFor("h");
    EXPECT_TRUE(h->args.empty());
}

TEST_F(ParamTest, ByCallCountOrdering)
{
    const auto order = profiler.byCallCount();
    ASSERT_EQ(order.size(), 3u);
    // Equal counts break ties by name: f, g, h.
    EXPECT_EQ(order[0]->proc->name, "f");
    EXPECT_EQ(order[1]->proc->name, "g");
    EXPECT_EQ(order[2]->proc->name, "h");
}

TEST_F(ParamTest, WeightedArgMetric)
{
    // args: f.a0 (inv 1), f.a1 (.05), g.a0 (.5); each weighted 20.
    const double w = profiler.weightedArgMetric(&ValueProfile::invTop);
    EXPECT_NEAR(w, (1.0 + 0.05 + 0.5) / 3.0, 0.01);
}

TEST_F(ParamTest, ContextInsensitiveByDefault)
{
    EXPECT_TRUE(profiler.allSites().empty());
    EXPECT_TRUE(profiler.sitesFor("f").empty());
}

// ---------------------------------------------------------------------
// Context-sensitive mode: h(x) is called from two sites, each passing
// a different constant — variant globally, invariant per site.
// ---------------------------------------------------------------------

const char *const ctxSrc = R"(
    .proc main args=0
main:
    li   s0, 16
ctx_loop:
    li   a0, 111
    call h                 # site A: always 111
    li   a0, 222
    call h                 # site B: always 222
    addi s0, s0, -1
    bnez s0, ctx_loop
    li   a0, 0
    syscall exit
    .endp
    .proc h args=1
h:
    ret
    .endp
)";

class ContextParamTest : public ::testing::Test
{
  protected:
    ContextParamTest()
        : prog(assemble(ctxSrc)), img(prog), mgr(img),
          cpu(prog, CpuConfig{1u << 16, 100000}),
          profiler(ParamProfilerConfig{{}, true})
    {
        profiler.instrument(mgr);
        mgr.attach(cpu);
        cpu.run();
    }

    Program prog;
    instr::Image img;
    instr::InstrumentManager mgr;
    Cpu cpu;
    ParameterProfiler profiler;
};

TEST_F(ContextParamTest, GloballyVariantButPerSiteInvariant)
{
    // Global view: two values alternating -> InvTop ~= 0.5.
    const auto *h = profiler.recordFor("h");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->calls, 32u);
    EXPECT_NEAR(h->args[0].invTop(), 0.5, 0.01);

    // Per-site view: each of the two sites is perfectly invariant.
    const auto sites = profiler.sitesFor("h");
    ASSERT_EQ(sites.size(), 2u);
    for (const auto *site : sites) {
        EXPECT_EQ(site->calls, 16u);
        ASSERT_EQ(site->args.size(), 1u);
        EXPECT_DOUBLE_EQ(site->args[0].invTop(), 1.0);
    }
    // The two sites saw different constants.
    EXPECT_NE(sites[0]->args[0].tnv().top()->value,
              sites[1]->args[0].tnv().top()->value);
    EXPECT_NE(sites[0]->callerPc, sites[1]->callerPc);
}

TEST_F(ContextParamTest, SemiInvariantFractionsQuantifyTheGain)
{
    // At a 90% threshold: 0% of argument mass is semi-invariant
    // globally, 100% per call site.
    EXPECT_DOUBLE_EQ(profiler.semiInvariantArgFraction(0.9), 0.0);
    EXPECT_DOUBLE_EQ(profiler.semiInvariantArgFractionPerSite(0.9),
                     1.0);
}

TEST_F(ContextParamTest, AllSitesOrderedByCalls)
{
    const auto sites = profiler.allSites();
    ASSERT_EQ(sites.size(), 2u);
    EXPECT_GE(sites[0]->calls, sites[1]->calls);
}

} // namespace
