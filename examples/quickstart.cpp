/**
 * @file
 * Quickstart: the smallest end-to-end use of the library.
 *
 * 1. Assemble a VPSim program (here: a loop hashing bytes with a
 *    constant multiplier — one invariant instruction, one variant).
 * 2. Build the ATOM-like Image and the instrumentation manager.
 * 3. Attach an InstructionProfiler to every register-writing
 *    instruction and run.
 * 4. Print the per-instruction value profile and pick out the
 *    semi-invariant instructions a compiler would specialize on.
 *
 * Build and run:  ./examples/quickstart
 */

#include <iostream>

#include "core/instruction_profiler.hpp"
#include "core/report.hpp"
#include "vpsim/assembler.hpp"
#include "vpsim/cpu.hpp"

int
main()
{
    // A small program: hash 64 pseudo-random bytes. The multiplier
    // load (li) is invariant; the hash accumulator is variant.
    const vpsim::Program prog = vpsim::assemble(R"(
    .proc main args=0
main:
    li   s0, 64            # bytes to hash
    li   s1, 1             # "input" seed
    li   s2, 0             # hash accumulator
loop:
    muli s1, s1, 75        # next pseudo-random byte (BBS-ish)
    addi s1, s1, 74
    andi t0, s1, 0xff
    li   t1, 31            # hash multiplier: invariant
    mul  s2, s2, t1
    add  s2, s2, t0
    addi s0, s0, -1
    bnez s0, loop
    mov  a0, s2
    syscall puti
    li   a0, 0
    syscall exit
    .endp
)");

    // The static view (ATOM's instrumentation phase)...
    instr::Image image(prog);
    instr::InstrumentManager manager(image);

    // ...a value profiler over every register-writing instruction...
    core::InstructionProfiler profiler(image);
    profiler.profileAllWrites(manager);

    // ...and the run.
    vpsim::Cpu cpu(prog, {.memBytes = 1u << 20, .maxInsts = 1'000'000});
    manager.attach(cpu);
    const vpsim::RunResult result = cpu.run();

    std::cout << "program output: " << cpu.output() << "\n";
    std::cout << "dynamic instructions: " << result.dynamicInsts
              << "\n\n";

    core::instructionReport(profiler, 12)
        .print(std::cout, "value profile (most-executed first)");

    std::cout << "\n";
    core::semiInvariantReport(profiler, 0.9, 10)
        .print(std::cout,
               "semi-invariant instructions (InvTop >= 90%)");
    return 0;
}
