/**
 * @file
 * The full adaptive-execution pipeline the paper motivates (thesis
 * chapters II.B and X), on a real workload:
 *
 *   1. value-profile procedure parameters at run time;
 *   2. pick the hottest procedure with a semi-invariant argument;
 *   3. specialize it on the profiled value (guarded clone);
 *   4. re-run and verify identical behaviour plus the dynamic win.
 *
 * Usage:  ./examples/adaptive_specialize [workload] [procedure]
 *         (defaults: matmul scale)
 */

#include <iostream>

#include "core/parameter_profiler.hpp"
#include "specialize/specializer.hpp"
#include "vpsim/disasm.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "matmul";
    const std::string proc_name = argc > 2 ? argv[2] : "scale";

    const workloads::Workload &w = workloads::findWorkload(name);
    const vpsim::Program &prog = w.program();
    const vpsim::CpuConfig cpu_cfg{16u << 20, 200'000'000};

    // --- 1. profile parameters ---------------------------------------
    instr::Image image(prog);
    instr::InstrumentManager manager(image);
    core::ParameterProfiler pprof;
    pprof.instrument(manager);
    vpsim::Cpu profile_cpu(prog, cpu_cfg);
    manager.attach(profile_cpu);
    workloads::runToCompletion(profile_cpu, w, "train");

    const auto *record = pprof.recordFor(proc_name);
    if (!record) {
        std::cerr << "procedure '" << proc_name
                  << "' was never called\n";
        return 1;
    }

    // --- 2. pick the most invariant argument -------------------------
    int best_arg = -1;
    double best_inv = 0.0;
    for (std::size_t i = 0; i < record->args.size(); ++i) {
        const double inv = record->args[i].invTop();
        std::cout << proc_name << " a" << i << ": InvTop "
                  << inv * 100 << "%, top value "
                  << record->args[i].tnv().top()->value << "\n";
        if (inv > best_inv) {
            best_inv = inv;
            best_arg = static_cast<int>(i);
        }
    }
    if (best_arg < 0 || best_inv < 0.5) {
        std::cout << "no semi-invariant argument (threshold 50%); "
                     "not specializing\n";
        return 0;
    }
    const std::uint64_t bound_value =
        record->args[static_cast<std::size_t>(best_arg)]
            .tnv()
            .top()
            ->value;
    std::cout << "\nspecializing " << proc_name << " on a" << best_arg
              << " == " << bound_value << " (" << record->calls
              << " profiled calls)\n\n";

    // --- 3. specialize ------------------------------------------------
    const auto spec = specialize::specializeProcedure(
        prog, proc_name,
        {{static_cast<std::uint8_t>(vpsim::regA0 + best_arg),
          bound_value}});
    std::cout << "optimizer: " << spec.stats.foldedToConst
              << " folded, " << spec.stats.branchesFolded
              << " branches decided, " << spec.stats.removedDead
              << " dead, " << spec.stats.nopsCompacted
              << " compacted\n\n";
    std::cout << "specialized body:\n"
              << vpsim::disassembleRange(spec.program,
                                         spec.specializedEntry,
                                         spec.specializedEnd)
              << "\n";

    // --- 4. verify ------------------------------------------------------
    vpsim::Cpu orig_cpu(prog, cpu_cfg);
    orig_cpu.reset();
    w.inject(orig_cpu, "train");
    vpsim::Cpu spec_cpu(spec.program, cpu_cfg);
    spec_cpu.reset();
    w.inject(spec_cpu, "train");
    const auto report =
        specialize::compareRuns(orig_cpu, spec_cpu, &spec);

    std::cout << "original:    " << report.originalInsts
              << " dynamic instructions\n";
    std::cout << "specialized: " << report.specializedInsts
              << " dynamic instructions\n";
    std::cout << "guard:       " << report.guardInvocations
              << " invocations, " << report.guardHits << " hits, "
              << report.guardMisses() << " misses\n";
    std::cout << "outputs "
              << (report.outputsMatch ? "match" : "MISMATCH") << ", "
              << (report.speedup() - 1.0) * 100.0 << "% saving\n";
    return report.outputsMatch ? 0 : 1;
}
