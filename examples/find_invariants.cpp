/**
 * @file
 * Invariance explorer: profile one of the bundled benchmark workloads
 * and report everything a specializing compiler would want — the
 * semi-invariant instructions, the hot procedures with semi-invariant
 * parameters, and the full profile saved to a snapshot file that can
 * be reloaded by other tools.
 *
 * Usage:  ./examples/find_invariants [workload] [dataset]
 *         (defaults: lisp train; see --list)
 */

#include <cstring>
#include <fstream>
#include <iostream>

#include "core/instruction_profiler.hpp"
#include "core/parameter_profiler.hpp"
#include "core/report.hpp"
#include "core/snapshot.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        for (const auto *w : workloads::allWorkloads())
            std::cout << w->name() << " - " << w->description() << "\n";
        return 0;
    }
    const std::string name = argc > 1 ? argv[1] : "lisp";
    const std::string dataset = argc > 2 ? argv[2] : "train";

    const workloads::Workload &w = workloads::findWorkload(name);
    const vpsim::Program &prog = w.program();

    instr::Image image(prog);
    instr::InstrumentManager manager(image);
    core::InstructionProfiler iprof(image);
    core::ParameterProfiler pprof;
    iprof.profileAllWrites(manager);
    pprof.instrument(manager);

    vpsim::Cpu cpu(prog, {.memBytes = 16u << 20,
                          .maxInsts = 200'000'000});
    manager.attach(cpu);
    const auto result = workloads::runToCompletion(cpu, w, dataset);

    std::cout << "workload " << name << " (" << dataset << "): "
              << result.dynamicInsts << " instructions, "
              << result.dynamicLoads << " loads\n\n";

    core::semiInvariantReport(iprof, 0.8, 1000, 15)
        .print(std::cout,
               "semi-invariant instructions (InvTop >= 80%, >= 1000 "
               "executions)");
    std::cout << "\n";
    core::parameterReport(pprof, 6)
        .print(std::cout, "procedures by call count, with arguments");

    // Persist the snapshot for downstream tools.
    const std::string path = name + "." + dataset + ".vprof";
    std::ofstream out(path);
    core::ProfileSnapshot::fromInstructionProfiler(iprof).save(out);
    std::cout << "\nfull snapshot written to " << path << "\n";
    return 0;
}
