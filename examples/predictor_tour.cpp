/**
 * @file
 * Value-predictor tour: run the predictor family over one workload's
 * instruction stream, then show what a value profile buys a predictor
 * (the Gabbay & Mendelson flow the paper anticipates):
 *
 *   1. run every predictor on the same stream, print the ranking;
 *   2. profile the train input;
 *   3. re-run LVP on the test input, unfiltered vs profile-guided;
 *   4. show the misprediction reduction.
 *
 * Usage:  ./examples/predictor_tour [workload]   (default: qsort)
 */

#include <iostream>
#include <memory>
#include <vector>

#include "core/instruction_profiler.hpp"
#include "core/snapshot.hpp"
#include "predict/harness.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace
{

void
runStream(const workloads::Workload &w, const std::string &dataset,
          const std::vector<predict::ValuePredictor *> &preds)
{
    const vpsim::Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, {.memBytes = 16u << 20,
                          .maxInsts = 200'000'000});
    predict::PredictionHarness harness;
    for (auto *p : preds)
        harness.addPredictor(p);
    harness.instrument(mgr, img.regWritingInsts());
    mgr.attach(cpu);
    workloads::runToCompletion(cpu, w, dataset);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "qsort";
    const workloads::Workload &w = workloads::findWorkload(name);

    // --- 1. the predictor family on one stream -------------------------
    std::vector<std::unique_ptr<predict::ValuePredictor>> family;
    family.push_back(predict::makeLastValuePredictor());
    family.push_back(predict::makeStridePredictor());
    family.push_back(predict::makeTwoLevelPredictor());
    family.push_back(predict::makeHybridPredictor(
        predict::makeLastValuePredictor(),
        predict::makeStridePredictor()));

    std::vector<predict::ValuePredictor *> raw;
    for (auto &p : family)
        raw.push_back(p.get());
    runStream(w, "train", raw);

    vp::TextTable table({"predictor", "accuracy%", "coverage%",
                         "precision%"});
    for (auto &p : family) {
        table.row()
            .cell(p->name())
            .percent(p->stats().accuracy())
            .percent(p->stats().coverage())
            .percent(p->stats().precision());
    }
    table.print(std::cout,
                "predictor family on " + name + " (train input)");

    // --- 2-4. profile-guided filtering ----------------------------------
    const vpsim::Program &prog = w.program();
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    vpsim::Cpu cpu(prog, {.memBytes = 16u << 20,
                          .maxInsts = 200'000'000});
    core::InstructionProfiler prof(img);
    prof.profileAllWrites(mgr);
    mgr.attach(cpu);
    workloads::runToCompletion(cpu, w, "train");
    const auto profile =
        core::ProfileSnapshot::fromInstructionProfiler(prof);

    predict::LvpConfig lcfg;
    lcfg.confidenceBits = 0;
    auto plain = predict::makeLastValuePredictor(lcfg);
    predict::ProfileGuidedPredictor guided(
        predict::makeLastValuePredictor(lcfg), profile);
    runStream(w, "test", {plain.get(), &guided});

    std::cout << "\nprofile-guided LVP on the test input (profile "
                 "from train):\n";
    std::cout << "  admitted static instructions: " << guided.admitted()
              << "\n";
    std::cout << "  unfiltered: " << plain->stats().mispredictions()
              << " mispredictions, precision "
              << plain->stats().precision() * 100 << "%\n";
    std::cout << "  guided:     " << guided.stats().mispredictions()
              << " mispredictions, precision "
              << guided.stats().precision() * 100 << "%\n";
    return 0;
}
