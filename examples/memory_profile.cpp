/**
 * @file
 * Memory-location profiling walkthrough (the thesis's second profiled
 * entity class): which locations does a program write, how invariant
 * are their contents, and where do loads find zero?
 *
 * Usage:  ./examples/memory_profile [workload] [dataset]
 *         (defaults: crc train)
 */

#include <iostream>

#include "core/memory_profiler.hpp"
#include "core/report.hpp"
#include "workloads/workload.hpp"

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "crc";
    const std::string dataset = argc > 2 ? argv[2] : "train";

    const workloads::Workload &w = workloads::findWorkload(name);
    const vpsim::Program &prog = w.program();

    instr::Image image(prog);
    instr::InstrumentManager manager(image);

    // Profile stores AND loads, per 8-byte word.
    core::MemProfilerConfig cfg;
    cfg.profileLoads = true;
    core::MemoryProfiler mprof(cfg);
    mprof.instrument(manager);

    vpsim::Cpu cpu(prog, {.memBytes = 16u << 20,
                          .maxInsts = 200'000'000});
    manager.attach(cpu);
    workloads::runToCompletion(cpu, w, dataset);

    std::cout << "workload " << name << " (" << dataset << "): "
              << mprof.numLocations() << " distinct locations, "
              << mprof.totalStores() << " stores, "
              << mprof.totalLoads() << " loads profiled\n\n";

    core::memoryReport(mprof, 15)
        .print(std::cout, "top written locations");

    const double inv =
        mprof.weightedWriteMetric(&core::ValueProfile::invTop);
    const double zero =
        mprof.weightedWriteMetric(&core::ValueProfile::zeroFraction);
    std::cout << "\nexecution-weighted location invariance: "
              << inv * 100 << "%\n";
    std::cout << "fraction of stored values that are zero: "
              << zero * 100 << "%\n";

    std::size_t write_once = 0;
    for (const auto *loc :
         mprof.topLocationsByWrites(mprof.numLocations())) {
        if (loc->writes.executions() == 1)
            ++write_once;
    }
    std::cout << "write-once locations: " << write_once << " / "
              << mprof.numLocations() << "\n";
    return 0;
}
