/**
 * @file
 * Read-only query views over the vpd daemon's merged aggregate — the
 * handlers behind the HTTP query & metrics plane (serve/http.hpp).
 *
 * Endpoints (all GET/HEAD, all side-effect free):
 *
 *   /metrics        Prometheus text exposition: the whole vp::stats
 *                   registry plus server-level and per-producer gauges
 *   /stats.json     the registry as JSON wrapped with server totals
 *                   (the same numbers the control-protocol QUERY verb
 *                   reports — CI asserts they agree)
 *   /top            ranked entity list: ?n=&by=count|invariance
 *                   [&kind=any|inst|load][&cursor=...]; pages link via
 *                   an opaque `next_cursor`
 *   /entity/{id}    one entity's full TNV rendering (id decimal/0x hex)
 *   /producers      per-producer ingest health: seq, deltas, bytes,
 *                   duplicate resends, entity count, lag
 *   /watch          long-poll for change since a sequence number —
 *                   parked by the server, rendered here on wakeup
 *
 * Handlers take a ServerView the poll loop assembles under its state
 * lock: a borrowed reference to the *cached* aggregate fold plus
 * scalar totals. Nothing here blocks, allocates per-entity state per
 * session, or mutates server state — which is why a thousand
 * concurrent queries cannot perturb the ingest path beyond the shared
 * event loop's fairness (DESIGN.md, "Query & metrics plane").
 */

#ifndef VP_SERVE_QUERY_HPP
#define VP_SERVE_QUERY_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/http.hpp"

namespace vp::serve
{

/** One producer's ingest-health snapshot. */
struct ProducerInfo
{
    std::uint64_t id = 0;
    std::uint64_t lastSeq = 0;    ///< highest applied delta seq
    std::uint64_t deltas = 0;     ///< deltas applied (== lastSeq)
    std::uint64_t bytes = 0;      ///< delta payload bytes applied
    std::uint64_t duplicates = 0; ///< resends re-acked, not merged —
                                  ///< nonzero means the producer is
                                  ///< retrying (lost acks, flaps)
    std::size_t entities = 0;     ///< entities in its partial
    double lagSeconds = 0.0;      ///< now minus last applied delta
};

/** What the poll loop exposes to the query handlers. */
struct ServerView
{
    /** The cached canonical fold (never null while handling). */
    const core::ProfileSnapshot *aggregate = nullptr;
    /** Bumps once per applied delta — the /watch change clock. */
    std::uint64_t applySeq = 0;
    std::uint64_t deltasTotal = 0;
    std::vector<ProducerInfo> producers;
    std::size_t ingestClients = 0;
    std::size_t httpSessions = 0;
    double uptimeSeconds = 0.0;
    /** True when this daemon relays its partials upstream
     *  (--forward); the counts below then track that relay. */
    bool forwarding = false;
    std::uint64_t forwardAcked = 0;   ///< partials acked upstream
    std::uint64_t forwardSpilled = 0; ///< partials spilled locally
    /** Distinct daemon ids heard in downstream HELLO paths. */
    std::size_t forwardDownstream = 0;
};

/**
 * Route one parsed request to its endpoint and render the reply.
 * `/watch` is NOT handled here — the server parks those sessions and
 * calls renderWatch() when the apply seq moves (or the park times
 * out). Unknown paths get 404, non-GET/HEAD methods 405; every error
 * body is JSON `{"error": ...}`.
 */
HttpResponse handleQuery(const HttpRequest &req,
                         const ServerView &view);

/**
 * Validate a /watch request and extract its `since` parameter
 * (default: the current apply seq, i.e. "wake me on the next
 * change"). @return false with a ready 400 response in `error_resp`.
 */
bool parseWatchSince(const HttpRequest &req, std::uint64_t current_seq,
                     std::uint64_t &since, HttpResponse &error_resp);

/** Render the /watch reply for a client that watched `since`. */
HttpResponse renderWatch(const ServerView &view, std::uint64_t since);

} // namespace vp::serve

#endif // VP_SERVE_QUERY_HPP
