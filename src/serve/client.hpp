/**
 * @file
 * Client side of the profile-streaming service: the ProfileEmitter
 * used by `vpprof --emit`, plus one-shot request helpers for the
 * control verbs (QUERY / SNAPSHOT / FLUSH / SHUTDOWN) used by
 * `vpd --connect`.
 *
 * Reliability contract (DESIGN.md, "Profile streaming & aggregation
 * service"): an emitted delta is either (a) acknowledged by the
 * daemon, or (b) written to the local spill file — it is never
 * silently dropped, and a dead or flapping daemon never corrupts the
 * stream (unacknowledged deltas are resent with their original
 * sequence numbers; the daemon deduplicates by seq).
 *
 * Backpressure: emit() blocks once `maxQueue` deltas are waiting —
 * the producer runs at the speed the network drains. tryEmit() is the
 * non-blocking probe. The high-water mark is exported as the
 * `serve.client.queue_depth` gauge.
 */

#ifndef VP_SERVE_CLIENT_HPP
#define VP_SERVE_CLIENT_HPP

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"

namespace vp::serve
{

/** ProfileEmitter configuration. */
struct EmitterConfig
{
    /** Daemon address ("host:port" or "unix:PATH"). */
    std::string addr;
    /** Producer id — the shard identity of this emitter's stream.
     *  Concurrent emitters MUST use distinct ids (the daemon keys its
     *  deterministic partial merge on it). */
    std::uint64_t producerId = 1;
    /** Bounded-queue depth before emit() blocks. */
    std::size_t maxQueue = 64;
    /** Flush a batch once its encoded frames reach this many bytes. */
    std::size_t batchBytes = 256 * 1024;
    /** ... or once the oldest queued delta is this old (0 = flush
     *  immediately). */
    int batchIntervalMs = 20;
    /** Connection/send attempts per batch before spilling. */
    unsigned maxRetries = 5;
    /** Exponential backoff: base << attempt, capped, between tries. */
    int backoffBaseMs = 10;
    int backoffMaxMs = 2000;
    /** Local fallback: unacknowledged deltas are appended here (as
     *  wire frames) when the daemon is unreachable. "" disables
     *  spilling, turning exhausted retries into dropped deltas plus a
     *  loud warning — only tests do that. */
    std::string spillPath;
    /** Wire version this emitter's deltas are encoded in. The default
     *  is the newest; 1 talks to pre-compression daemons (and loses
     *  the dropped-access counters — the v1 payload can't carry
     *  them). */
    std::uint16_t wireVersion = kWireVersion;
    /**
     * Forwarding handshake: when set, every batch is preceded by the
     * frame this callback builds (a HELLO announcing the forwarding
     * daemon and its downstream path — see serve/wire.hpp). The
     * callback runs on the sender thread with no emitter lock held,
     * so it may take its own locks. The daemon acknowledges the HELLO
     * like a delta; a "fatal:"-prefixed ERROR reply (loop, id clash)
     * puts the emitter into permanent failure: every remaining batch
     * spills immediately instead of retrying against a daemon that
     * will never accept it.
     */
    std::function<std::vector<std::uint8_t>()> helloProvider;
};

/**
 * Batching, retrying, spilling delta emitter. One background sender
 * thread per emitter; emit() may be called from any one producer
 * thread at a time.
 */
class ProfileEmitter
{
  public:
    explicit ProfileEmitter(EmitterConfig config);

    /** close()s (best effort) if the caller did not. */
    ~ProfileEmitter();

    ProfileEmitter(const ProfileEmitter &) = delete;
    ProfileEmitter &operator=(const ProfileEmitter &) = delete;

    /**
     * Queue one delta for emission, blocking while the queue is full
     * (backpressure). The snapshot is the *delta* to merge — counts
     * since the previous emit, or a whole-run snapshot emitted once.
     */
    void emit(core::ProfileSnapshot delta);

    /** Non-blocking emit. @return false if the queue was full. */
    bool tryEmit(core::ProfileSnapshot delta);

    /**
     * Queue a fully-formed delta — producer id and sequence number
     * included — instead of stamping cfg.producerId and the next
     * internal seq. This is how a forwarding daemon relays another
     * producer's partial upstream, and how a restarted producer
     * replays spilled deltas under their original identities. The
     * internal sequence counter advances past d.seq so emit() calls
     * mixed in afterwards stay strictly increasing.
     */
    void emitDelta(Delta d);

    /** Non-blocking emitDelta. @return false if the queue was full. */
    bool tryEmitDelta(Delta d);

    /**
     * Flush everything, stop the sender thread, close the socket.
     * @return true when every delta was acknowledged by the daemon;
     * false when any were spilled (or dropped with no spill path).
     * Idempotent.
     */
    bool close();

    /** Deltas written to the spill file so far. */
    std::uint64_t spilledDeltas() const;

    /** Deltas acknowledged by the daemon so far. */
    std::uint64_t ackedDeltas() const;

    /** True once the daemon rejected this stream for good (a
     *  "fatal:"-prefixed ERROR: forwarding loop, producer-id clash).
     *  Subsequent batches spill without retrying. */
    bool permanentFailure() const;

    /** The daemon's fatal diagnosis ("" while healthy). */
    std::string permanentFailureReason() const;

  private:
    struct Pending
    {
        std::uint64_t seq = 0;
        std::vector<std::uint8_t> frame; ///< encoded Delta frame
    };

    void senderLoop();
    bool sendBatch(std::vector<Pending> &batch);
    bool ensureConnected(std::string &error);
    void spill(std::vector<Pending> &batch);

    EmitterConfig cfg;
    net::FdGuard sock;
    FrameReader reader;

    mutable std::mutex mu;
    std::condition_variable notFull;  ///< queue dropped below cap
    std::condition_variable hasWork;  ///< queue non-empty or closing
    std::condition_variable drained;  ///< queue empty (close())
    std::deque<Pending> queue;
    std::uint64_t nextSeq = 1;
    std::uint64_t queuedTotal = 0;
    std::uint64_t acked = 0;
    std::uint64_t spilledCount = 0;
    bool closing = false;
    bool senderDone = false;
    bool permFail = false;
    std::string permFailReason;

    std::thread sender;
};

/**
 * Send one control frame and wait for the reply.
 * @param cmd Query, Snapshot, Flush, or Shutdown.
 * @param reply the QueryReply/SnapshotReply frame payload (empty for
 *        Flush/Shutdown acks).
 * @return false with a diagnosis on connection failure, an ERROR
 *         reply, or a corrupt reply frame.
 */
bool request(const std::string &addr, MsgType cmd, Frame &reply,
             std::string &error);

/** Fetch the daemon's current aggregate snapshot. */
bool requestSnapshot(const std::string &addr,
                     core::ProfileSnapshot &out, std::string &error);

/** Fetch the daemon's text status (QUERY). */
bool requestQuery(const std::string &addr, std::string &text,
                  std::string &error);

/** Ask the daemon to persist now (FLUSH). */
bool requestFlush(const std::string &addr, std::string &error);

/** Ask the daemon to persist and exit (SHUTDOWN). */
bool requestShutdown(const std::string &addr, std::string &error);

/**
 * Read a spill file back into deltas, in written order. Trailing
 * torn/corrupt bytes (a crash mid-spill) stop the read; everything
 * before them is returned and `error` explains the tail.
 * @return false only when the file cannot be opened.
 */
bool readSpill(const std::string &path, std::vector<Delta> &out,
               std::string &error);

} // namespace vp::serve

#endif // VP_SERVE_CLIENT_HPP
