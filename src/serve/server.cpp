#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

VpdServer::VpdServer(ServerConfig config) : cfg(std::move(config)) {}

VpdServer::~VpdServer()
{
    net::closeFd(stopPipe[0]);
    net::closeFd(stopPipe[1]);
}

bool
VpdServer::start(std::string &error)
{
    if (cfg.listenAddrs.empty()) {
        error = "vpd needs at least one listen address";
        return false;
    }
    for (const auto &text : cfg.listenAddrs) {
        net::Address addr;
        if (!net::parseAddress(text, addr, error))
            return false;
        const int fd = net::listenOn(addr, error);
        if (fd < 0)
            return false;
        listeners.emplace_back(fd);
        bound.push_back(addr);
    }
    if (::pipe(stopPipe) != 0) {
        error = vp::format("pipe: %s", std::strerror(errno));
        return false;
    }
    return true;
}

void
VpdServer::requestStop()
{
    if (stopPipe[1] < 0)
        return;
    // Signal-safe: a single write(2), no locks, no allocation.
    const char byte = 's';
    [[maybe_unused]] const auto n =
        ::write(stopPipe[1], &byte, 1);
}

core::ProfileSnapshot
VpdServer::aggregate() const
{
    std::lock_guard<std::mutex> lock(stateMu);
    core::ProfileSnapshot agg;
    // std::map iterates in ascending producer id — the canonical fold
    // order that makes the aggregate independent of frame arrival.
    for (const auto &[producer, partial] : partials)
        agg.merge(partial.snapshot);
    return agg;
}

std::size_t
VpdServer::producerCount() const
{
    std::lock_guard<std::mutex> lock(stateMu);
    return partials.size();
}

void
VpdServer::persistIfConfigured()
{
    bool was_dirty;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        was_dirty = dirty;
        dirty = false;
    }
    if (cfg.snapshotPath.empty() || !was_dirty)
        return;
    std::string error;
    if (!aggregate().saveToFile(cfg.snapshotPath, error)) {
        vp_warn("vpd: persisting aggregate failed: %s", error.c_str());
        std::lock_guard<std::mutex> lock(stateMu);
        dirty = true; // retry on the next trigger
        return;
    }
    VP_STAT_INC(vp::stats::Cid::ServeSnapshotsSaved);
}

void
VpdServer::queueReply(Connection &conn, std::vector<std::uint8_t> bytes)
{
    VP_STAT_INC(vp::stats::Cid::ServeFramesOut);
    VP_STAT_ADD(vp::stats::Cid::ServeBytesOut, bytes.size());
    if (conn.out.empty()) {
        conn.out = std::move(bytes);
        conn.outPos = 0;
    } else {
        conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    }
}

/** @return false when the connection should be dropped. */
bool
VpdServer::handleFrame(Connection &conn, const Frame &frame)
{
    VP_STAT_INC(vp::stats::Cid::ServeFramesIn);
    switch (frame.type) {
      case MsgType::Delta: {
        Delta delta;
        std::string error;
        if (!decodeDelta(frame, delta, error)) {
            VP_STAT_INC(vp::stats::Cid::ServeDecodeErrors);
            vp_warn("vpd: bad delta frame: %s", error.c_str());
            queueReply(conn,
                       encodeText(MsgType::Error,
                                  "bad delta: " + error,
                                  frame.version));
            conn.closeAfterWrite = true;
            return true;
        }
        {
            std::lock_guard<std::mutex> lock(stateMu);
            Partial &p = partials[delta.producerId];
            if (delta.seq <= p.lastSeq) {
                // A resend after a lost ack: acknowledge, don't merge.
                VP_STAT_INC(vp::stats::Cid::ServeDeltaDuplicates);
                queueReply(conn, encodeAck(p.lastSeq, frame.version));
                return true;
            }
            if (delta.seq != p.lastSeq + 1) {
                queueReply(conn, encodeText(
                    MsgType::Error,
                    vp::format("delta gap for producer %llu: got seq "
                               "%llu after %llu",
                               static_cast<unsigned long long>(
                                   delta.producerId),
                               static_cast<unsigned long long>(
                                   delta.seq),
                               static_cast<unsigned long long>(
                                   p.lastSeq)),
                    frame.version));
                conn.closeAfterWrite = true;
                return true;
            }
            {
                VP_STAT_TIMER(merge_timer, "serve.merge_us");
                p.snapshot.merge(delta.entities);
            }
            p.lastSeq = delta.seq;
            dirty = true;
        }
        VP_STAT_INC(vp::stats::Cid::ServeDeltasMerged);
        queueReply(conn, encodeAck(delta.seq, frame.version));
        return true;
      }
      case MsgType::Query: {
        std::ostringstream os;
        {
            std::lock_guard<std::mutex> lock(stateMu);
            std::uint64_t deltas = 0;
            for (const auto &[producer, partial] : partials)
                deltas += partial.lastSeq;
            os << "producers " << partials.size() << "\n"
               << "deltas " << deltas << "\n";
        }
        const core::ProfileSnapshot agg = aggregate();
        os << "entities " << agg.size() << "\n"
           << "dropped_stores " << agg.droppedStores << "\n"
           << "dropped_loads " << agg.droppedLoads << "\n"
           << "clients " << conns.size() << "\n";
        queueReply(conn, encodeText(MsgType::QueryReply, os.str(),
                               frame.version));
        return true;
      }
      case MsgType::Snapshot:
        queueReply(conn,
                   encodeSnapshotReply(aggregate(), frame.version));
        return true;
      case MsgType::Flush:
        persistIfConfigured();
        queueReply(conn, encodeAck(0, frame.version));
        return true;
      case MsgType::Shutdown:
        queueReply(conn, encodeAck(0, frame.version));
        conn.closeAfterWrite = true;
        stopping = true;
        return true;
      case MsgType::Ack:
      case MsgType::QueryReply:
      case MsgType::SnapshotReply:
      case MsgType::Error:
        // Server-to-client frames arriving at the server: a confused
        // peer. Answer once, then drop it.
        queueReply(conn,
                   encodeText(MsgType::Error,
                              vp::format("unexpected %s frame",
                                         msgTypeName(frame.type)),
                              frame.version));
        conn.closeAfterWrite = true;
        return true;
    }
    return false;
}

/** @return false when the connection died (peer gone). */
bool
VpdServer::flushWrites(Connection &conn)
{
    while (conn.outPos < conn.out.size()) {
        const long n = ::send(conn.fd.get(), conn.out.data() + conn.outPos,
                              conn.out.size() - conn.outPos,
                              MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // poll for POLLOUT
            return false;
        }
        conn.outPos += static_cast<std::size_t>(n);
    }
    conn.out.clear();
    conn.outPos = 0;
    return !conn.closeAfterWrite;
}

void
VpdServer::acceptClients(int listen_fd)
{
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient error; poll again
        }
        VP_STAT_INC(vp::stats::Cid::ServeAccepts);
        auto conn = std::make_unique<Connection>();
        conn->fd.reset(fd);
        if (conns.size() >= cfg.maxClients) {
            queueReply(*conn, encodeText(MsgType::Error,
                                         "vpd: too many clients"));
            conn->closeAfterWrite = true;
        }
        conns.push_back(std::move(conn));
        VP_STAT_GAUGE_MAX("serve.clients",
                          static_cast<double>(conns.size()));
    }
}

bool
VpdServer::run(std::string &error)
{
    using clock = std::chrono::steady_clock;
    if (listeners.empty() || stopPipe[0] < 0) {
        error = "vpd loop started before start()";
        return false;
    }
    for (auto &l : listeners) {
        if (!net::setNonBlocking(l.get(), error))
            return false;
    }

    auto next_persist = clock::now();
    const bool periodic = cfg.snapshotIntervalSec > 0.0;
    const auto interval = std::chrono::microseconds(
        static_cast<long long>(cfg.snapshotIntervalSec * 1e6));
    if (periodic)
        next_persist += interval;

    std::vector<pollfd> fds;
    clock::time_point stop_deadline{};
    while (true) {
        // Exit once asked to stop and every goodbye reply is flushed
        // (or a stalled client has burned the shutdown grace period).
        if (stopping) {
            if (stop_deadline == clock::time_point{})
                stop_deadline = clock::now() + std::chrono::seconds(2);
            const bool drained = std::all_of(
                conns.begin(), conns.end(),
                [](const auto &c) { return c->out.empty(); });
            if (drained || clock::now() >= stop_deadline)
                break;
        }

        fds.clear();
        fds.push_back({stopPipe[0], POLLIN, 0});
        for (const auto &l : listeners)
            fds.push_back({l.get(), POLLIN, 0});
        for (const auto &c : conns) {
            short events = POLLIN;
            if (!c->out.empty())
                events |= POLLOUT;
            fds.push_back({c->fd.get(), events, 0});
        }

        int timeout_ms = stopping ? 20 : -1;
        if (periodic) {
            const auto now = clock::now();
            timeout_ms = std::max<int>(
                0, static_cast<int>(
                       std::chrono::duration_cast<
                           std::chrono::milliseconds>(next_persist -
                                                      now)
                           .count()));
        }
        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()),
                              timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            error = vp::format("poll: %s", std::strerror(errno));
            persistIfConfigured();
            return false;
        }

        if (periodic && clock::now() >= next_persist) {
            persistIfConfigured();
            next_persist = clock::now() + interval;
        }

        std::size_t idx = 0;
        if (fds[idx].revents & POLLIN) {
            char drainbuf[64];
            [[maybe_unused]] const auto n =
                ::read(stopPipe[0], drainbuf, sizeof(drainbuf));
            stopping = true;
        }
        ++idx;
        for (const auto &l : listeners) {
            if (fds[idx].revents & POLLIN)
                acceptClients(l.get());
            ++idx;
        }

        // Service clients; collect the dead for removal afterwards.
        // Only the prefix of conns that had a poll slot this round —
        // acceptClients above appends new connections past it, and
        // those have no revents until the next poll pass.
        const std::size_t polled = fds.size() - 1 - listeners.size();
        std::vector<Connection *> dead;
        for (std::size_t ci = 0; ci < polled; ++ci) {
            const short revents = fds[idx++].revents;
            Connection &conn = *conns[ci];
            bool alive = true;
            if (revents & (POLLIN | POLLHUP | POLLERR)) {
                std::uint8_t buf[64 * 1024];
                while (alive) {
                    const long n =
                        ::recv(conn.fd.get(), buf, sizeof(buf),
                               MSG_DONTWAIT);
                    if (n < 0) {
                        if (errno == EINTR)
                            continue;
                        if (errno != EAGAIN && errno != EWOULDBLOCK)
                            alive = false;
                        break;
                    }
                    if (n == 0) { // orderly close
                        alive = false;
                        break;
                    }
                    VP_STAT_ADD(vp::stats::Cid::ServeBytesIn,
                                static_cast<std::uint64_t>(n));
                    conn.reader.append(buf,
                                       static_cast<std::size_t>(n));
                    Frame frame;
                    std::string why;
                    DecodeStatus st;
                    while ((st = conn.reader.next(frame, why)) ==
                           DecodeStatus::Ok) {
                        if (!handleFrame(conn, frame)) {
                            alive = false;
                            break;
                        }
                    }
                    if (st == DecodeStatus::Corrupt) {
                        VP_STAT_INC(
                            vp::stats::Cid::ServeDecodeErrors);
                        vp_warn("vpd: corrupt frame stream: %s",
                                why.c_str());
                        queueReply(conn,
                                   encodeText(MsgType::Error,
                                              "corrupt frame: " +
                                                  why));
                        conn.closeAfterWrite = true;
                        break;
                    }
                }
            }
            if (alive && !conn.out.empty())
                alive = flushWrites(conn);
            else if (alive && conn.closeAfterWrite)
                alive = false;
            if (!alive)
                dead.push_back(&conn);
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [&](const auto &c) {
                                       return std::find(dead.begin(),
                                                        dead.end(),
                                                        c.get()) !=
                                              dead.end();
                                   }),
                    conns.end());
    }

    persistIfConfigured();
    // Remove unix socket files so a restart never sees a stale one.
    for (const auto &addr : bound) {
        if (addr.kind == net::Address::Kind::Unix)
            ::unlink(addr.path.c_str());
    }
    return true;
}

} // namespace vp::serve
