#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <poll.h>
#include <sstream>
#include <sys/socket.h>
#include <unistd.h>

#include "support/file.hpp"
#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

/** Drain one socket's out buffer without blocking.
 *  @return false when the peer is gone. */
bool
sendPending(int fd, std::vector<std::uint8_t> &out, std::size_t &pos)
{
    while (pos < out.size()) {
        const long n = ::send(fd, out.data() + pos, out.size() - pos,
                              MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK)
                return true; // poll for POLLOUT
            return false;
        }
        pos += static_cast<std::size_t>(n);
    }
    out.clear();
    pos = 0;
    return true;
}

} // namespace

VpdServer::VpdServer(ServerConfig config) : cfg(std::move(config)) {}

VpdServer::~VpdServer()
{
    net::closeFd(stopPipe[0]);
    net::closeFd(stopPipe[1]);
}

bool
VpdServer::start(std::string &error)
{
    if (cfg.listenAddrs.empty()) {
        error = "vpd needs at least one listen address";
        return false;
    }
    for (const auto &text : cfg.listenAddrs) {
        net::Address addr;
        if (!net::parseAddress(text, addr, error))
            return false;
        const int fd = net::listenOn(addr, error);
        if (fd < 0)
            return false;
        listeners.emplace_back(fd);
        bound.push_back(addr);
    }
    for (const auto &text : cfg.httpAddrs) {
        net::Address addr;
        if (!net::parseAddress(text, addr, error))
            return false;
        // Scrape fleets connect in bursts (the acceptance bench opens
        // 1000 sessions at once); the default backlog of 16 would
        // drop SYNs and stall such clients in kernel retry.
        const int fd = net::listenOn(addr, error, 512);
        if (fd < 0)
            return false;
        httpListeners.emplace_back(fd);
        boundHttp.push_back(addr);
    }
    if (::pipe(stopPipe) != 0) {
        error = vp::format("pipe: %s", std::strerror(errno));
        return false;
    }
    if (!cfg.forwardAddr.empty()) {
        if (cfg.forwardId == 0) {
            error = "forwarding needs a non-zero --forward-id";
            return false;
        }
        // A daemon forwarding to one of its own listen addresses
        // would ack its own partials forever; catch the textual form
        // here (the HELLO loop check catches the multi-hop cycles
        // this can't see).
        for (const auto &text : cfg.listenAddrs) {
            if (text == cfg.forwardAddr) {
                error = vp::format(
                    "forward address %s is this daemon's own listen "
                    "address",
                    cfg.forwardAddr.c_str());
                return false;
            }
        }
    }
    if (!loadState(error))
        return false;
    if (!replayForwardSpill(error))
        return false;
    if (!cfg.forwardAddr.empty()) {
        EmitterConfig ec;
        ec.addr = cfg.forwardAddr;
        ec.producerId = cfg.forwardId;
        ec.spillPath = cfg.forwardSpillPath;
        // Short retry budget: a dead upstream should spill fast and
        // let the periodic tick re-forward once it returns, not stall
        // the sender thread in long backoffs.
        ec.maxRetries = 2;
        ec.backoffBaseMs = 10;
        ec.backoffMaxMs = 200;
        ec.helloProvider = [this] {
            std::vector<std::uint64_t> path;
            {
                std::lock_guard<std::mutex> lock(stateMu);
                path.reserve(downstreamIds.size() + 1);
                path.push_back(cfg.forwardId);
                for (const auto id : downstreamIds)
                    if (id != cfg.forwardId)
                        path.push_back(id);
            }
            return encodeHello(cfg.forwardId, path);
        };
        forwarder = std::make_unique<ProfileEmitter>(std::move(ec));
        nextForward = clock::now();
    }
    return true;
}

void
VpdServer::requestStop()
{
    if (stopPipe[1] < 0)
        return;
    // Signal-safe: a single write(2), no locks, no allocation.
    const char byte = 's';
    [[maybe_unused]] const auto n =
        ::write(stopPipe[1], &byte, 1);
}

const core::ProfileSnapshot &
VpdServer::aggregateLocked() const
{
    if (cachedAtSeq != applySeq) {
        core::ProfileSnapshot agg;
        // std::map iterates in ascending producer id — the canonical
        // fold order that makes the aggregate independent of frame
        // arrival.
        for (const auto &[producer, partial] : partials)
            agg.merge(partial.snapshot);
        cachedAgg = std::move(agg);
        cachedAtSeq = applySeq;
    }
    return cachedAgg;
}

core::ProfileSnapshot
VpdServer::aggregate() const
{
    std::lock_guard<std::mutex> lock(stateMu);
    return aggregateLocked();
}

std::size_t
VpdServer::producerCount() const
{
    std::lock_guard<std::mutex> lock(stateMu);
    return partials.size();
}

ServerView
VpdServer::makeViewLocked(clock::time_point now) const
{
    ServerView view;
    view.aggregate = &aggregateLocked();
    view.applySeq = applySeq;
    view.ingestClients = conns.size();
    view.httpSessions = sessions.size();
    view.uptimeSeconds =
        std::chrono::duration<double>(now - startedAt).count();
    view.forwarding = forwarder != nullptr;
    view.forwardAcked = fwdAckedSeen;
    view.forwardSpilled = fwdSpilledSeen;
    view.forwardDownstream = downstreamIds.size();
    view.producers.reserve(partials.size());
    for (const auto &[producer, partial] : partials) {
        ProducerInfo info;
        info.id = producer;
        info.lastSeq = partial.lastSeq;
        info.deltas = partial.lastSeq;
        info.bytes = partial.bytes;
        info.duplicates = partial.duplicates;
        info.entities = partial.snapshot.size();
        info.lagSeconds =
            partial.lastDeltaAt == clock::time_point{}
                ? 0.0
                : std::chrono::duration<double>(now -
                                                partial.lastDeltaAt)
                      .count();
        view.producers.push_back(info);
        view.deltasTotal += partial.lastSeq;
    }
    return view;
}

void
VpdServer::persistIfConfigured()
{
    bool was_dirty;
    std::string state_bytes;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        was_dirty = dirty;
        dirty = false;
        // The state bytes must capture exactly the acked deltas at
        // the moment `dirty` cleared, so build them under the same
        // hold of stateMu.
        if (was_dirty && !cfg.statePath.empty())
            state_bytes = encodeStateLocked();
    }
    if (!was_dirty ||
        (cfg.snapshotPath.empty() && cfg.statePath.empty()))
        return;
    bool ok = true;
    std::string error;
    if (!cfg.snapshotPath.empty()) {
        if (aggregate().saveToFile(cfg.snapshotPath, error)) {
            VP_STAT_INC(vp::stats::Cid::ServeSnapshotsSaved);
        } else {
            vp_warn("vpd: persisting aggregate failed: %s",
                    error.c_str());
            ok = false;
        }
    }
    if (!cfg.statePath.empty() &&
        !atomicWriteFile(cfg.statePath, state_bytes, error)) {
        vp_warn("vpd: persisting state failed: %s", error.c_str());
        ok = false;
    }
    if (!ok) {
        std::lock_guard<std::mutex> lock(stateMu);
        dirty = true; // retry on the next trigger
    }
}

/**
 * Durable-state file format: the text line "vpd-state v1\n" followed
 * by CRC-framed wire frames — one QueryReply carrying a
 * "producer <id> via <hop|?>" line per producer (the id-clash
 * ownership map), then one v2 Delta frame per producer whose seq is
 * the producer's last acked sequence number and whose entities are
 * the whole partial. Reusing the wire codec gets CRC detection of
 * torn/corrupt state for free.
 */
static const char kStateHeader[] = "vpd-state v1\n";

std::string
VpdServer::encodeStateLocked() const
{
    std::string out = kStateHeader;
    std::ostringstream meta;
    for (const auto &[producer, partial] : partials) {
        meta << "producer " << producer << " via ";
        if (partial.viaHopKnown)
            meta << partial.viaHop;
        else
            meta << "?";
        meta << "\n";
    }
    const auto append = [&out](const std::vector<std::uint8_t> &f) {
        out.append(reinterpret_cast<const char *>(f.data()), f.size());
    };
    append(encodeText(MsgType::QueryReply, meta.str()));
    for (const auto &[producer, partial] : partials) {
        if (partial.lastSeq == 0)
            continue;
        Delta d;
        d.producerId = producer;
        d.seq = partial.lastSeq;
        d.entities = partial.snapshot;
        append(encodeDelta(d));
    }
    return out;
}

bool
VpdServer::loadState(std::string &error)
{
    if (cfg.statePath.empty())
        return true;
    std::ifstream in(cfg.statePath, std::ios::binary);
    if (!in.is_open())
        return true; // first run: nothing to restore
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    const std::size_t header_len = sizeof(kStateHeader) - 1;
    if (bytes.size() < header_len ||
        bytes.compare(0, header_len, kStateHeader) != 0) {
        error = vp::format("state file %s: bad header (not a "
                           "vpd-state file?)",
                           cfg.statePath.c_str());
        return false;
    }
    FrameReader rd;
    rd.append(reinterpret_cast<const std::uint8_t *>(bytes.data()) +
                  header_len,
              bytes.size() - header_len);
    // hop value per producer; absent key = hop unknown.
    std::map<std::uint64_t, std::uint64_t> hops;
    bool saw_meta = false;
    Frame frame;
    std::string why;
    DecodeStatus st;
    std::map<std::uint64_t, Partial> restored;
    while ((st = rd.next(frame, why)) == DecodeStatus::Ok) {
        if (!saw_meta) {
            if (frame.type != MsgType::QueryReply) {
                error = vp::format("state file %s: expected metadata "
                                   "frame, got %s",
                                   cfg.statePath.c_str(),
                                   msgTypeName(frame.type));
                return false;
            }
            std::istringstream lines(payloadText(frame.payload));
            std::string word, keyword, via;
            std::uint64_t producer = 0;
            while (lines >> word >> producer >> keyword >> via) {
                std::int64_t hop = 0;
                if (word != "producer" || keyword != "via" ||
                    (via != "?" &&
                     (!vp::parseInt(via, hop) || hop < 0))) {
                    error = vp::format(
                        "state file %s: bad metadata line",
                        cfg.statePath.c_str());
                    return false;
                }
                if (via != "?")
                    hops[producer] =
                        static_cast<std::uint64_t>(hop);
            }
            saw_meta = true;
            continue;
        }
        if (frame.type != MsgType::Delta) {
            error = vp::format("state file %s: unexpected %s frame",
                               cfg.statePath.c_str(),
                               msgTypeName(frame.type));
            return false;
        }
        Delta d;
        if (!decodeDelta(frame, d, why)) {
            error = vp::format("state file %s: %s",
                               cfg.statePath.c_str(), why.c_str());
            return false;
        }
        Partial p;
        p.snapshot = std::move(d.entities);
        p.lastSeq = d.seq;
        const auto it = hops.find(d.producerId);
        if (it != hops.end()) {
            p.viaHop = it->second;
            p.viaHopKnown = true;
        }
        restored[d.producerId] = std::move(p);
    }
    if (st == DecodeStatus::Corrupt || rd.pending() != 0 ||
        !saw_meta) {
        // Refuse to run: a daemon that starts from half a state file
        // would re-ack sequence numbers it no longer holds data for.
        error = vp::format(
            "state file %s is corrupt (%s) — refusing to start; "
            "remove it to begin from scratch",
            cfg.statePath.c_str(),
            st == DecodeStatus::Corrupt ? why.c_str()
                                        : "truncated");
        return false;
    }
    std::lock_guard<std::mutex> lock(stateMu);
    partials = std::move(restored);
    applySeq += 1; // queries must observe the restored aggregate
    return true;
}

bool
VpdServer::replayForwardSpill(std::string &error)
{
    if (cfg.forwardSpillPath.empty())
        return true;
    std::vector<Delta> spilled;
    std::string why;
    if (!readSpill(cfg.forwardSpillPath, spilled, why))
        return true; // no spill left behind: nothing to replay
    if (!why.empty())
        vp_warn("vpd: forward spill %s: %s (replaying the intact "
                "prefix)",
                cfg.forwardSpillPath.c_str(), why.c_str());
    std::uint64_t replayed = 0;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        for (auto &d : spilled) {
            Partial &p = partials[d.producerId];
            if (d.seq <= p.lastSeq)
                continue; // state file already holds newer data
            p.snapshot = std::move(d.entities);
            p.lastSeq = d.seq;
            // The spill frame doesn't record which hop the partial
            // came from; let the first live claimant adopt it.
            p.viaHopKnown = false;
            replayed += 1;
        }
        if (replayed > 0) {
            applySeq += 1;
            dirty = true;
        }
    }
    VP_STAT_ADD(vp::stats::Cid::ServeForwardReplayed, replayed);
    if (::unlink(cfg.forwardSpillPath.c_str()) != 0 &&
        errno != ENOENT) {
        error = vp::format("cannot remove replayed spill %s: %s",
                           cfg.forwardSpillPath.c_str(),
                           std::strerror(errno));
        return false;
    }
    if (replayed > 0)
        vp_warn("vpd: replayed %llu forward-spilled partial(s) from "
                "%s",
                static_cast<unsigned long long>(replayed),
                cfg.forwardSpillPath.c_str());
    return true;
}

void
VpdServer::sampleForwarderLocked()
{
    if (!forwarder)
        return;
    const std::uint64_t acked = forwarder->ackedDeltas();
    const std::uint64_t spilled = forwarder->spilledDeltas();
    if (acked > fwdAckedSeen) {
        VP_STAT_ADD(vp::stats::Cid::ServeForwardAcked,
                    acked - fwdAckedSeen);
        fwdAckedSeen = acked;
    }
    if (spilled > fwdSpilledSeen) {
        VP_STAT_ADD(vp::stats::Cid::ServeForwardSpilled,
                    spilled - fwdSpilledSeen);
        fwdSpilledSeen = spilled;
        // Some forwarded partials never arrived. We can't tell which,
        // so forget all forwarding progress: every partial re-forwards
        // on this tick. Harmless — the upstream replaces by seq and
        // re-acks duplicates.
        forwardedSeq.clear();
    }
}

void
VpdServer::forwardTick()
{
    if (!forwarder)
        return;
    if (forwarder->permanentFailure()) {
        // The upstream diagnosed a topology error (loop, id clash);
        // retrying would only grow the spill file. Stop relaying and
        // say why, once.
        if (!forwarderFailedWarned) {
            forwarderFailedWarned = true;
            vp_warn("vpd: upstream %s rejected this daemon for good "
                    "(%s); forwarding disabled until restart",
                    cfg.forwardAddr.c_str(),
                    forwarder->permanentFailureReason().c_str());
        }
        return;
    }
    std::vector<Delta> out;
    {
        std::lock_guard<std::mutex> lock(stateMu);
        sampleForwarderLocked();
        for (const auto &[producer, partial] : partials) {
            if (partial.lastSeq == 0)
                continue;
            const auto it = forwardedSeq.find(producer);
            if (it != forwardedSeq.end() &&
                it->second >= partial.lastSeq)
                continue;
            Delta d;
            d.producerId = producer;
            d.seq = partial.lastSeq;
            d.entities = partial.snapshot;
            out.push_back(std::move(d));
        }
    }
    if (out.empty())
        return;
    VP_STAT_INC(vp::stats::Cid::ServeForwardFlushes);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> queued;
    queued.reserve(out.size());
    for (auto &d : out) {
        const std::uint64_t producer = d.producerId;
        const std::uint64_t seq = d.seq;
        // Non-blocking: the event loop must not stall on a slow
        // upstream. Whatever doesn't fit retries next tick.
        if (!forwarder->tryEmitDelta(std::move(d)))
            break;
        queued.emplace_back(producer, seq);
    }
    if (queued.empty())
        return;
    VP_STAT_ADD(vp::stats::Cid::ServeForwardPartials, queued.size());
    std::lock_guard<std::mutex> lock(stateMu);
    for (const auto &[producer, seq] : queued) {
        std::uint64_t &forwarded = forwardedSeq[producer];
        forwarded = std::max(forwarded, seq);
    }
}

void
VpdServer::queueReply(Connection &conn, std::vector<std::uint8_t> bytes)
{
    VP_STAT_INC(vp::stats::Cid::ServeFramesOut);
    VP_STAT_ADD(vp::stats::Cid::ServeBytesOut, bytes.size());
    if (conn.out.empty()) {
        conn.out = std::move(bytes);
        conn.outPos = 0;
    } else {
        conn.out.insert(conn.out.end(), bytes.begin(), bytes.end());
    }
}

/** @return false when the connection should be dropped. */
bool
VpdServer::handleFrame(Connection &conn, const Frame &frame)
{
    VP_STAT_INC(vp::stats::Cid::ServeFramesIn);
    VP_STAT_INC(frame.version <= 1
                    ? vp::stats::Cid::ServeFramesInV1
                    : vp::stats::Cid::ServeFramesInV2);
    switch (frame.type) {
      case MsgType::Delta: {
        Delta delta;
        std::string error;
        if (!decodeDelta(frame, delta, error)) {
            VP_STAT_INC(vp::stats::Cid::ServeDecodeErrors);
            vp_warn("vpd: bad delta frame: %s", error.c_str());
            queueReply(conn,
                       encodeText(MsgType::Error,
                                  "bad delta: " + error,
                                  frame.version));
            conn.closeAfterWrite = true;
            return true;
        }
        {
            std::lock_guard<std::mutex> lock(stateMu);
            Partial &p = partials[delta.producerId];
            if (!p.viaHopKnown) {
                // First claimant of this producer id (or of a partial
                // restored from a forward-spill replay) owns it.
                p.viaHop = conn.helloId;
                p.viaHopKnown = true;
            } else if (p.viaHop != conn.helloId) {
                // Two sources claim one producer id: accepting both
                // would silently corrupt the stream (direct deltas
                // merge, forwarded partials replace — interleaving
                // them loses data either way). Fatal so the loser
                // spills instead of retrying forever.
                VP_STAT_INC(vp::stats::Cid::ServeForwardIdClash);
                const std::string owner =
                    p.viaHop == 0
                        ? std::string("a direct connection")
                        : vp::format("forwarder %llu",
                                     static_cast<unsigned long long>(
                                         p.viaHop));
                queueReply(conn, encodeText(
                    MsgType::Error,
                    vp::format("fatal: forward id clash: producer "
                               "%llu already streams via %s",
                               static_cast<unsigned long long>(
                                   delta.producerId),
                               owner.c_str()),
                    frame.version));
                conn.closeAfterWrite = true;
                return true;
            }
            if (delta.seq <= p.lastSeq) {
                // A resend after a lost ack: acknowledge, don't merge.
                VP_STAT_INC(conn.helloId != 0
                                ? vp::stats::Cid::ServeForwardDuplicates
                                : vp::stats::Cid::ServeDeltaDuplicates);
                p.duplicates += 1;
                queueReply(conn, encodeAck(p.lastSeq, frame.version));
                conn.pendingAcks.push_back(clock::now());
                return true;
            }
            if (conn.helloId != 0) {
                // A forwarded partial: the downstream daemon re-sent
                // the producer's *whole* merged prefix at seq =
                // lastSeq-at-leaf. Replace — never merge — so the
                // partial here equals the partial there and the root
                // fold stays byte-identical to the serial oracle.
                // Seq jumps are expected (one relay covers many
                // deltas), so there is no gap check on this path.
                p.snapshot = std::move(delta.entities);
                p.lastSeq = delta.seq;
                p.bytes += frame.payload.size();
                p.lastDeltaAt = clock::now();
                // Replacement can shrink or rewrite existing keys;
                // the incremental fold-cache update below only
                // handles additive merges, so drop the cache.
                cachedAtSeq = ~0ull;
                applySeq += 1;
                dirty = true;
                VP_STAT_INC(vp::stats::Cid::ServeForwardApplied);
                queueReply(conn, encodeAck(delta.seq, frame.version));
                conn.pendingAcks.push_back(clock::now());
                return true;
            }
            if (delta.seq != p.lastSeq + 1) {
                queueReply(conn, encodeText(
                    MsgType::Error,
                    vp::format("delta gap for producer %llu: got seq "
                               "%llu after %llu",
                               static_cast<unsigned long long>(
                                   delta.producerId),
                               static_cast<unsigned long long>(
                                   delta.seq),
                               static_cast<unsigned long long>(
                                   p.lastSeq)),
                    frame.version));
                conn.closeAfterWrite = true;
                return true;
            }
            {
                VP_STAT_TIMER(merge_timer, "serve.merge_us");
                p.snapshot.merge(delta.entities);
            }
            p.lastSeq = delta.seq;
            p.bytes += frame.payload.size();
            p.lastDeltaAt = clock::now();
            // Keep the fold cache warm incrementally: a delta only
            // touches its own keys, and ProfileSnapshot::merge is
            // per-entity with additive dropped counters, so
            // re-folding just those keys across the partials (in the
            // same ascending producer order) yields a byte-identical
            // aggregate without the O(total entities) refold that a
            // live query stream would otherwise trigger per delta.
            if (cachedAtSeq == applySeq) {
                cachedAgg.droppedStores +=
                    delta.entities.droppedStores;
                cachedAgg.droppedLoads += delta.entities.droppedLoads;
                for (const auto &[key, ignored] :
                     delta.entities.entities) {
                    core::EntitySummary folded;
                    bool have = false;
                    for (const auto &[producer, part] : partials) {
                        const auto it =
                            part.snapshot.entities.find(key);
                        if (it == part.snapshot.entities.end())
                            continue;
                        if (!have) {
                            folded = it->second;
                            have = true;
                        } else {
                            folded.merge(it->second);
                        }
                    }
                    cachedAgg.entities[key] = std::move(folded);
                }
                cachedAtSeq = applySeq + 1;
            }
            applySeq += 1; // wakes parked /watch sessions this pass
            dirty = true;
        }
        VP_STAT_INC(vp::stats::Cid::ServeDeltasMerged);
        queueReply(conn, encodeAck(delta.seq, frame.version));
        conn.pendingAcks.push_back(clock::now());
        return true;
      }
      case MsgType::Query: {
        std::ostringstream os;
        {
            std::lock_guard<std::mutex> lock(stateMu);
            std::uint64_t deltas = 0;
            for (const auto &[producer, partial] : partials)
                deltas += partial.lastSeq;
            const core::ProfileSnapshot &agg = aggregateLocked();
            os << "producers " << partials.size() << "\n"
               << "deltas " << deltas << "\n"
               << "entities " << agg.size() << "\n"
               << "dropped_stores " << agg.droppedStores << "\n"
               << "dropped_loads " << agg.droppedLoads << "\n"
               << "clients " << conns.size() << "\n"
               << "forwarding " << (forwarder ? 1 : 0) << "\n"
               << "forward_acked " << fwdAckedSeen << "\n"
               << "forward_spilled " << fwdSpilledSeen << "\n"
               << "forward_downstream " << downstreamIds.size()
               << "\n";
        }
        queueReply(conn, encodeText(MsgType::QueryReply, os.str(),
                               frame.version));
        return true;
      }
      case MsgType::Snapshot:
        queueReply(conn,
                   encodeSnapshotReply(aggregate(), frame.version));
        return true;
      case MsgType::Hello: {
        std::uint64_t fwd = 0;
        std::vector<std::uint64_t> path;
        std::string error;
        if (!decodeHello(frame.payload, fwd, path, error)) {
            VP_STAT_INC(vp::stats::Cid::ServeDecodeErrors);
            vp_warn("vpd: bad hello frame: %s", error.c_str());
            queueReply(conn,
                       encodeText(MsgType::Error,
                                  "bad hello: " + error,
                                  frame.version));
            conn.closeAfterWrite = true;
            return true;
        }
        if (cfg.forwardId != 0 &&
            (fwd == cfg.forwardId ||
             std::find(path.begin(), path.end(), cfg.forwardId) !=
                 path.end())) {
            // Our own id is downstream of the sender: accepting its
            // deltas would complete a forwarding cycle in which every
            // daemon acks everything and the data orbits forever.
            VP_STAT_INC(vp::stats::Cid::ServeForwardLoops);
            queueReply(conn, encodeText(
                MsgType::Error,
                vp::format("fatal: forward loop: daemon %llu is "
                           "already on the path below forwarder %llu",
                           static_cast<unsigned long long>(
                               cfg.forwardId),
                           static_cast<unsigned long long>(fwd)),
                frame.version));
            conn.closeAfterWrite = true;
            return true;
        }
        conn.helloId = fwd;
        {
            std::lock_guard<std::mutex> lock(stateMu);
            downstreamIds.insert(fwd);
            downstreamIds.insert(path.begin(), path.end());
        }
        VP_STAT_INC(vp::stats::Cid::ServeForwardHellos);
        queueReply(conn, encodeAck(0, frame.version));
        conn.pendingAcks.push_back(clock::now());
        return true;
      }
      case MsgType::Flush:
        persistIfConfigured();
        forwardTick(); // push what was just persisted upstream too
        queueReply(conn, encodeAck(0, frame.version));
        return true;
      case MsgType::Shutdown:
        queueReply(conn, encodeAck(0, frame.version));
        conn.closeAfterWrite = true;
        stopping = true;
        return true;
      case MsgType::Ack:
      case MsgType::QueryReply:
      case MsgType::SnapshotReply:
      case MsgType::Error:
        // Server-to-client frames arriving at the server: a confused
        // peer. Answer once, then drop it.
        queueReply(conn,
                   encodeText(MsgType::Error,
                              vp::format("unexpected %s frame",
                                         msgTypeName(frame.type)),
                              frame.version));
        conn.closeAfterWrite = true;
        return true;
    }
    return false;
}

/** @return false when the connection died (peer gone). */
bool
VpdServer::flushWrites(Connection &conn)
{
    if (!sendPending(conn.fd.get(), conn.out, conn.outPos))
        return false;
    if (conn.out.empty() && !conn.pendingAcks.empty()) {
        // The acks just left for the socket buffer: close the books on
        // their server-side latency.
        if (vp::stats::enabled()) {
            const auto now = clock::now();
            for (const auto &t : conn.pendingAcks)
                vp::stats::current().observe(
                    "serve.ack_us",
                    std::chrono::duration<double, std::micro>(now - t)
                        .count());
        }
        conn.pendingAcks.clear();
    }
    if (conn.out.empty())
        return !conn.closeAfterWrite;
    return true;
}

bool
VpdServer::serviceIngest(Connection &conn, short revents)
{
    bool alive = true;
    if (revents & (POLLIN | POLLHUP | POLLERR)) {
        std::uint8_t buf[64 * 1024];
        while (alive) {
            const long n = ::recv(conn.fd.get(), buf, sizeof(buf),
                                  MSG_DONTWAIT);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                if (errno != EAGAIN && errno != EWOULDBLOCK)
                    alive = false;
                break;
            }
            if (n == 0) { // orderly close
                alive = false;
                break;
            }
            VP_STAT_ADD(vp::stats::Cid::ServeBytesIn,
                        static_cast<std::uint64_t>(n));
            conn.reader.append(buf, static_cast<std::size_t>(n));
            Frame frame;
            std::string why;
            DecodeStatus st;
            while ((st = conn.reader.next(frame, why)) ==
                   DecodeStatus::Ok) {
                if (!handleFrame(conn, frame)) {
                    alive = false;
                    break;
                }
            }
            if (st == DecodeStatus::Corrupt) {
                VP_STAT_INC(vp::stats::Cid::ServeDecodeErrors);
                vp_warn("vpd: corrupt frame stream: %s", why.c_str());
                queueReply(conn,
                           encodeText(MsgType::Error,
                                      "corrupt frame: " + why));
                conn.closeAfterWrite = true;
                break;
            }
        }
    }
    if (alive && !conn.out.empty())
        alive = flushWrites(conn);
    else if (alive && conn.closeAfterWrite)
        alive = false;
    return alive;
}

void
VpdServer::pollIngestNow()
{
    httpSinceIngestPoll = 0;
    if (conns.empty())
        return;
    std::vector<pollfd> pfds;
    pfds.reserve(conns.size());
    for (const auto &c : conns) {
        short events = POLLIN;
        if (!c->out.empty())
            events |= POLLOUT;
        pfds.push_back({c->fd.get(), events, 0});
    }
    const int rc =
        ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), 0);
    if (rc <= 0)
        return;
    std::vector<Connection *> dead;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0)
            continue;
        if (!serviceIngest(*conns[i], pfds[i].revents))
            dead.push_back(conns[i].get());
    }
    if (!dead.empty())
        conns.erase(
            std::remove_if(conns.begin(), conns.end(),
                           [&](const auto &c) {
                               return std::find(dead.begin(),
                                                dead.end(), c.get()) !=
                                      dead.end();
                           }),
            conns.end());
}

void
VpdServer::acceptClients(int listen_fd)
{
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // EAGAIN or a transient error; poll again
        }
        VP_STAT_INC(vp::stats::Cid::ServeAccepts);
        auto conn = std::make_unique<Connection>();
        conn->fd.reset(fd);
        if (conns.size() >= cfg.maxClients) {
            queueReply(*conn, encodeText(MsgType::Error,
                                         "vpd: too many clients"));
            conn->closeAfterWrite = true;
        }
        conns.push_back(std::move(conn));
        VP_STAT_GAUGE_MAX("serve.clients",
                          static_cast<double>(conns.size()));
    }
}

void
VpdServer::acceptHttpSessions(int listen_fd)
{
    while (true) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return;
        }
        VP_STAT_INC(vp::stats::Cid::ServeHttpAccepts);
        auto s = std::make_unique<HttpSession>(cfg.http.maxHeaderBytes);
        s->fd.reset(fd);
        s->deadline = clock::now() + std::chrono::milliseconds(
                                         cfg.http.keepAliveTimeoutMs);
        if (sessions.size() >= cfg.http.maxSessions) {
            HttpRequest synth;
            synth.keepAlive = false;
            HttpResponse resp;
            resp.status = 503;
            resp.body = "{\"error\":\"too many sessions\"}\n";
            resp.closeConnection = true;
            queueHttp(*s, synth, resp);
            s->closeAfterWrite = true;
        }
        sessions.push_back(std::move(s));
        VP_STAT_GAUGE_MAX("serve.http.sessions",
                          static_cast<double>(sessions.size()));
    }
}

void
VpdServer::queueHttp(HttpSession &s, const HttpRequest &req,
                     const HttpResponse &resp)
{
    if (resp.status >= 400)
        VP_STAT_INC(vp::stats::Cid::ServeHttpErrors);
    std::vector<std::uint8_t> bytes =
        serializeHttpResponse(req, resp, cfg.http);
    VP_STAT_ADD(vp::stats::Cid::ServeHttpBytesOut, bytes.size());
    if (s.out.empty()) {
        s.out = std::move(bytes);
        s.outPos = 0;
    } else {
        s.out.insert(s.out.end(), bytes.begin(), bytes.end());
    }
}

void
VpdServer::drainHttpSession(HttpSession &s, clock::time_point now)
{
    while (!s.dead && !s.parked && !s.closeAfterWrite) {
        HttpRequest req;
        std::string why;
        const HttpParseStatus st = s.parser.next(req, why);
        if (st == HttpParseStatus::NeedMore) {
            // Arm the applicable timer: a dribbling request head gets
            // the slowloris window, an idle keep-alive session the
            // idle window.
            s.deadline =
                now + std::chrono::milliseconds(
                          s.parser.midRequest()
                              ? cfg.http.headerTimeoutMs
                              : cfg.http.keepAliveTimeoutMs);
            return;
        }
        if (st == HttpParseStatus::TooLarge ||
            st == HttpParseStatus::Malformed) {
            HttpRequest synth;
            synth.keepAlive = false;
            HttpResponse resp;
            resp.status =
                st == HttpParseStatus::TooLarge ? 431 : 400;
            resp.body = "{\"error\":\"" + why + "\"}\n";
            resp.closeConnection = true;
            queueHttp(s, synth, resp);
            s.closeAfterWrite = true;
            return;
        }

        VP_STAT_INC(vp::stats::Cid::ServeHttpRequests);
        const bool is_watch =
            req.path == "/watch" &&
            (req.method == "GET" || req.method == "HEAD");
        if (is_watch) {
            std::lock_guard<std::mutex> lock(stateMu);
            std::uint64_t since = 0;
            HttpResponse bad;
            if (!parseWatchSince(req, applySeq, since, bad)) {
                queueHttp(s, req, bad);
            } else if (applySeq > since) {
                // Already changed: answer without parking.
                queueHttp(s, req,
                          renderWatch(makeViewLocked(now), since));
            } else {
                s.parked = true;
                s.watchReq = req;
                s.watchSince = since;
                s.deadline =
                    now + std::chrono::milliseconds(
                              cfg.http.watchTimeoutMs);
                return;
            }
        } else {
            // /metrics and /stats.json expose registry counters that
            // move with every request, so only aggregate-derived
            // bodies are cacheable.
            const bool cacheable = req.path != "/metrics" &&
                                   req.path != "/stats.json";
            HttpResponse resp;
            {
                std::lock_guard<std::mutex> lock(stateMu);
                if (respCacheSeq != applySeq) {
                    respCache.clear();
                    respCacheSeq = applySeq;
                }
                const auto it = cacheable
                                    ? respCache.find(req.target)
                                    : respCache.end();
                if (it != respCache.end() &&
                    now - it->second.at <
                        std::chrono::milliseconds(250)) {
                    resp = it->second.resp;
                } else {
                    resp = handleQuery(req, makeViewLocked(now));
                    if (cacheable && respCache.size() < 128)
                        respCache[req.target] = {applySeq, now, resp};
                }
            }
            queueHttp(s, req, resp);
            if (resp.closeConnection) {
                s.closeAfterWrite = true;
                return;
            }
        }
        if (!req.keepAlive) {
            s.closeAfterWrite = true;
            return;
        }
        // A query burst must not fence off the ingest sockets: give
        // them a zero-timeout look every few served requests.
        if (++httpSinceIngestPoll >= 4)
            pollIngestNow();
    }
}

void
VpdServer::wakeWatchers(clock::time_point now, bool force)
{
    for (auto &sp : sessions) {
        HttpSession &s = *sp;
        if (s.dead || !s.parked)
            continue;
        bool changed;
        {
            std::lock_guard<std::mutex> lock(stateMu);
            changed = applySeq > s.watchSince;
        }
        if (!force && !changed && now < s.deadline)
            continue;
        {
            std::lock_guard<std::mutex> lock(stateMu);
            queueHttp(s, s.watchReq,
                      renderWatch(makeViewLocked(now), s.watchSince));
        }
        VP_STAT_INC(vp::stats::Cid::ServeHttpWatchWakeups);
        s.parked = false;
        if (force || !s.watchReq.keepAlive)
            s.closeAfterWrite = true;
        else
            drainHttpSession(s, now); // pipelined requests may wait
    }
}

bool
VpdServer::flushHttpWrites(HttpSession &s)
{
    if (!sendPending(s.fd.get(), s.out, s.outPos))
        return false;
    if (s.out.empty())
        return !s.closeAfterWrite;
    return true;
}

bool
VpdServer::run(std::string &error)
{
    if (listeners.empty() || stopPipe[0] < 0) {
        error = "vpd loop started before start()";
        return false;
    }
    for (auto &l : listeners) {
        if (!net::setNonBlocking(l.get(), error))
            return false;
    }
    for (auto &l : httpListeners) {
        if (!net::setNonBlocking(l.get(), error))
            return false;
    }
    startedAt = clock::now();

    auto next_persist = clock::now();
    const bool periodic = cfg.snapshotIntervalSec > 0.0;
    const auto interval = std::chrono::microseconds(
        static_cast<long long>(cfg.snapshotIntervalSec * 1e6));
    if (periodic)
        next_persist += interval;
    const auto fwd_interval = std::chrono::microseconds(
        static_cast<long long>(
            std::max(0.01, cfg.forwardIntervalSec) * 1e6));

    std::vector<pollfd> fds;
    clock::time_point stop_deadline{};
    while (true) {
        // Exit once asked to stop and every goodbye reply is flushed
        // (or a stalled client has burned the shutdown grace period).
        if (stopping) {
            // Parked long-polls are answered, not abandoned.
            wakeWatchers(clock::now(), /*force=*/true);
            if (stop_deadline == clock::time_point{})
                stop_deadline = clock::now() + std::chrono::seconds(2);
            const bool drained =
                std::all_of(conns.begin(), conns.end(),
                            [](const auto &c) {
                                return c->out.empty();
                            }) &&
                std::all_of(sessions.begin(), sessions.end(),
                            [](const auto &s) {
                                return s->out.empty();
                            });
            if (drained || clock::now() >= stop_deadline)
                break;
        }

        fds.clear();
        fds.push_back({stopPipe[0], POLLIN, 0});
        for (const auto &l : listeners)
            fds.push_back({l.get(), POLLIN, 0});
        for (const auto &l : httpListeners)
            fds.push_back({l.get(), POLLIN, 0});
        const std::size_t polled_conns = conns.size();
        for (const auto &c : conns) {
            short events = POLLIN;
            if (!c->out.empty())
                events |= POLLOUT;
            fds.push_back({c->fd.get(), events, 0});
        }
        const std::size_t polled_sessions = sessions.size();
        for (const auto &s : sessions) {
            short events = POLLIN;
            if (!s->out.empty())
                events |= POLLOUT;
            fds.push_back({s->fd.get(), events, 0});
        }

        int timeout_ms = stopping ? 20 : -1;
        const auto arm = [&](clock::time_point dl) {
            const auto now = clock::now();
            long long wait =
                dl <= now
                    ? 0
                    : std::chrono::duration_cast<
                          std::chrono::milliseconds>(dl - now)
                              .count() +
                          1;
            wait = std::min<long long>(wait, 3600 * 1000);
            if (timeout_ms < 0 || wait < timeout_ms)
                timeout_ms = static_cast<int>(wait);
        };
        if (periodic)
            arm(next_persist);
        if (forwarder)
            arm(nextForward);
        for (const auto &s : sessions)
            arm(s->deadline);

        const int rc = ::poll(fds.data(),
                              static_cast<nfds_t>(fds.size()),
                              timeout_ms);
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            error = vp::format("poll: %s", std::strerror(errno));
            persistIfConfigured();
            return false;
        }

        if (periodic && clock::now() >= next_persist) {
            persistIfConfigured();
            next_persist = clock::now() + interval;
        }
        if (forwarder && clock::now() >= nextForward) {
            forwardTick();
            nextForward = clock::now() + fwd_interval;
        }

        std::size_t idx = 0;
        if (fds[idx].revents & POLLIN) {
            char drainbuf[64];
            [[maybe_unused]] const auto n =
                ::read(stopPipe[0], drainbuf, sizeof(drainbuf));
            stopping = true;
        }
        ++idx;
        for (const auto &l : listeners) {
            if (fds[idx].revents & POLLIN)
                acceptClients(l.get());
            ++idx;
        }
        for (const auto &l : httpListeners) {
            if (fds[idx].revents & POLLIN)
                acceptHttpSessions(l.get());
            ++idx;
        }

        // Service ingest clients; collect the dead for removal
        // afterwards. Only the prefix of conns that had a poll slot
        // this round — accepts above appended new connections past it,
        // and those have no revents until the next poll pass.
        std::vector<Connection *> dead;
        for (std::size_t ci = 0; ci < polled_conns; ++ci) {
            const short revents = fds[idx++].revents;
            if (!serviceIngest(*conns[ci], revents))
                dead.push_back(conns[ci].get());
        }
        conns.erase(std::remove_if(conns.begin(), conns.end(),
                                   [&](const auto &c) {
                                       return std::find(dead.begin(),
                                                        dead.end(),
                                                        c.get()) !=
                                              dead.end();
                                   }),
                    conns.end());

        // Service HTTP sessions: read + parse + answer. Writes are
        // flushed in one pass at the end so responses queued outside a
        // session's own poll slot (watch wakeups, timeouts, 503s on
        // accept) go out this round too.
        const auto now = clock::now();
        for (std::size_t si = 0; si < polled_sessions; ++si) {
            const short revents = fds[idx++].revents;
            HttpSession &s = *sessions[si];
            if (!(revents & (POLLIN | POLLHUP | POLLERR)))
                continue;
            while (!s.dead) {
                std::uint8_t buf[16 * 1024];
                const long n = ::recv(s.fd.get(), buf, sizeof(buf),
                                      MSG_DONTWAIT);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    if (errno != EAGAIN && errno != EWOULDBLOCK)
                        s.dead = true;
                    break;
                }
                if (n == 0) { // orderly close
                    s.dead = true;
                    break;
                }
                VP_STAT_ADD(vp::stats::Cid::ServeHttpBytesIn,
                            static_cast<std::uint64_t>(n));
                s.parser.append(buf, static_cast<std::size_t>(n));
                drainHttpSession(s, now);
            }
        }

        // Enforce session deadlines (parked ones are handled by
        // wakeWatchers below).
        for (auto &sp : sessions) {
            HttpSession &s = *sp;
            if (s.dead || s.parked || s.closeAfterWrite ||
                now < s.deadline)
                continue;
            if (s.parser.midRequest()) {
                // Slowloris: the head has been dribbling too long.
                VP_STAT_INC(vp::stats::Cid::ServeHttpTimeouts);
                HttpRequest synth;
                synth.keepAlive = false;
                HttpResponse resp;
                resp.status = 408;
                resp.body = "{\"error\":\"request head timed out\"}\n";
                resp.closeConnection = true;
                queueHttp(s, synth, resp);
                s.closeAfterWrite = true;
            } else {
                s.dead = true; // idle keep-alive expired: just close
            }
        }

        wakeWatchers(now, /*force=*/false);

        // One write pass over every session with queued bytes.
        for (auto &sp : sessions) {
            HttpSession &s = *sp;
            if (s.dead)
                continue;
            if (!s.out.empty()) {
                if (!flushHttpWrites(s))
                    s.dead = true;
            } else if (s.closeAfterWrite) {
                s.dead = true;
            }
        }
        sessions.erase(
            std::remove_if(sessions.begin(), sessions.end(),
                           [](const auto &s) { return s->dead; }),
            sessions.end());
    }

    if (forwarder) {
        // Final relay: hand every still-dirty partial to the
        // forwarder, drain it (close() blocks until each is acked or
        // spilled for the next incarnation to replay), and fold the
        // last counter movements into the stats.
        forwardTick();
        forwarder->close();
        std::lock_guard<std::mutex> lock(stateMu);
        sampleForwarderLocked();
    }
    persistIfConfigured();
    // Remove unix socket files so a restart never sees a stale one.
    for (const auto &addr : bound) {
        if (addr.kind == net::Address::Kind::Unix)
            ::unlink(addr.path.c_str());
    }
    for (const auto &addr : boundHttp) {
        if (addr.kind == net::Address::Kind::Unix)
            ::unlink(addr.path.c_str());
    }
    return true;
}

} // namespace vp::serve
