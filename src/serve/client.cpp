#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sys/socket.h>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

/** Receive timeout so a wedged daemon can't hang a client forever. */
constexpr int kAckTimeoutMs = 5000;

void
setRecvTimeout(int fd, int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace

ProfileEmitter::ProfileEmitter(EmitterConfig config)
    : cfg(std::move(config))
{
    vp_assert(cfg.maxQueue > 0, "emitter queue cap must be positive");
    sender = std::thread([this] { senderLoop(); });
}

ProfileEmitter::~ProfileEmitter()
{
    close();
}

void
ProfileEmitter::emit(core::ProfileSnapshot delta)
{
    Delta d;
    d.producerId = cfg.producerId;
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "emit() on a closed ProfileEmitter");
    notFull.wait(lock, [this] {
        return queue.size() < cfg.maxQueue || closing;
    });
    if (closing)
        return;
    d.seq = nextSeq++;
    d.entities = std::move(delta);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    queuedTotal += 1;
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
}

bool
ProfileEmitter::tryEmit(core::ProfileSnapshot delta)
{
    Delta d;
    d.producerId = cfg.producerId;
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "tryEmit() on a closed ProfileEmitter");
    if (queue.size() >= cfg.maxQueue)
        return false;
    d.seq = nextSeq++;
    d.entities = std::move(delta);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    queuedTotal += 1;
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
    return true;
}

void
ProfileEmitter::emitDelta(Delta d)
{
    vp_assert(d.seq > 0, "delta sequence numbers are 1-based");
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "emitDelta() on a closed ProfileEmitter");
    notFull.wait(lock, [this] {
        return queue.size() < cfg.maxQueue || closing;
    });
    if (closing)
        return;
    nextSeq = std::max(nextSeq, d.seq + 1);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    queuedTotal += 1;
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
}

bool
ProfileEmitter::tryEmitDelta(Delta d)
{
    vp_assert(d.seq > 0, "delta sequence numbers are 1-based");
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "tryEmitDelta() on a closed ProfileEmitter");
    if (queue.size() >= cfg.maxQueue)
        return false;
    nextSeq = std::max(nextSeq, d.seq + 1);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    queuedTotal += 1;
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
    return true;
}

bool
ProfileEmitter::close()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!closing) {
            closing = true;
            hasWork.notify_all();
            notFull.notify_all();
        }
    }
    if (sender.joinable())
        sender.join();
    std::unique_lock<std::mutex> lock(mu);
    return spilledCount == 0 && acked == queuedTotal;
}

std::uint64_t
ProfileEmitter::spilledDeltas() const
{
    std::lock_guard<std::mutex> lock(mu);
    return spilledCount;
}

std::uint64_t
ProfileEmitter::ackedDeltas() const
{
    std::lock_guard<std::mutex> lock(mu);
    return acked;
}

bool
ProfileEmitter::permanentFailure() const
{
    std::lock_guard<std::mutex> lock(mu);
    return permFail;
}

std::string
ProfileEmitter::permanentFailureReason() const
{
    std::lock_guard<std::mutex> lock(mu);
    return permFailReason;
}

void
ProfileEmitter::senderLoop()
{
    using clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
        hasWork.wait(lock,
                     [this] { return closing || !queue.empty(); });
        if (queue.empty()) {
            if (closing)
                break;
            continue;
        }
        // Batch window: give the producer batchIntervalMs to add more
        // deltas, unless we are closing or the size cap is reached.
        if (cfg.batchIntervalMs > 0 && !closing) {
            const auto deadline =
                clock::now() +
                std::chrono::milliseconds(cfg.batchIntervalMs);
            auto bytes = [this] {
                std::size_t total = 0;
                for (const auto &p : queue)
                    total += p.frame.size();
                return total;
            };
            while (!closing && bytes() < cfg.batchBytes &&
                   hasWork.wait_until(lock, deadline) !=
                       std::cv_status::timeout)
                ;
        }
        std::vector<Pending> batch;
        std::size_t batch_bytes = 0;
        while (!queue.empty() &&
               (batch.empty() || batch_bytes < cfg.batchBytes)) {
            batch_bytes += queue.front().frame.size();
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
        }
        notFull.notify_all();
        lock.unlock();

        const bool delivered = sendBatch(batch);
        lock.lock();
        if (delivered) {
            acked += batch.size();
        } else {
            spilledCount += batch.size();
        }
    }
    senderDone = true;
}

bool
ProfileEmitter::ensureConnected(std::string &error)
{
    if (sock.valid())
        return true;
    net::Address addr;
    if (!net::parseAddress(cfg.addr, addr, error))
        return false;
    const int fd = net::connectTo(addr, error);
    if (fd < 0)
        return false;
    setRecvTimeout(fd, kAckTimeoutMs);
    sock.reset(fd);
    reader = FrameReader{}; // a fresh stream has fresh framing state
    return true;
}

/**
 * Deliver one batch: send every frame (preceded by a fresh HELLO when
 * a helloProvider is configured) and wait for the daemon to ack each
 * of them — the daemon answers every Delta (and HELLO) with exactly
 * one Ack on this connection, in order, so counting acks completes
 * the batch even when its deltas carry unrelated producer ids and
 * non-monotone seqs (the forwarding relay case). Retries with
 * exponential backoff and full-batch resend (the daemon deduplicates
 * by seq; every retry starts on a fresh connection, so stale acks
 * from an abandoned attempt can never be miscounted). On final
 * failure — or immediately, once the daemon has rejected this stream
 * for good — the batch is spilled. @return true iff acknowledged.
 */
bool
ProfileEmitter::sendBatch(std::vector<Pending> &batch)
{
    bool perm;
    {
        std::lock_guard<std::mutex> lock(mu);
        perm = permFail;
    }
    for (unsigned attempt = 0; !perm && attempt <= cfg.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            VP_STAT_INC(vp::stats::Cid::ServeClientRetries);
            const int shift = static_cast<int>(
                std::min(attempt - 1, 20u));
            const long long ms = std::min<long long>(
                static_cast<long long>(cfg.backoffBaseMs) << shift,
                cfg.backoffMaxMs);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
        }
        std::string error;
        if (!ensureConnected(error)) {
            vp_warn("vpd client: connect to %s failed: %s",
                    cfg.addr.c_str(), error.c_str());
            continue;
        }
        // A fresh HELLO precedes every batch so downstream-path growth
        // reaches the daemon without any connection juggling; the
        // daemon re-checks the loop invariant on each one.
        std::vector<std::uint8_t> hello;
        std::size_t expected_acks = batch.size();
        if (cfg.helloProvider) {
            hello = cfg.helloProvider();
            expected_acks += 1;
        }
        bool sent = true;
        const auto sendFrame =
            [&](const std::vector<std::uint8_t> &frame) {
                if (!net::sendAll(sock.get(), frame.data(),
                                  frame.size(), error)) {
                    vp_warn("vpd client: send failed: %s",
                            error.c_str());
                    sock.reset();
                    sent = false;
                    return false;
                }
                VP_STAT_INC(vp::stats::Cid::ServeClientFramesSent);
                VP_STAT_ADD(vp::stats::Cid::ServeClientBytesSent,
                            frame.size());
                return true;
            };
        if (!hello.empty() && !sendFrame(hello))
            continue;
        for (const auto &p : batch) {
            if (!sendFrame(p.frame))
                break;
        }
        if (!sent)
            continue;
        VP_STAT_INC(vp::stats::Cid::ServeClientBatches);

        // Await one ack per frame sent.
        std::size_t acks_seen = 0;
        bool stream_ok = true;
        while (stream_ok && acks_seen < expected_acks) {
            Frame frame;
            std::string why;
            const DecodeStatus st = reader.next(frame, why);
            if (st == DecodeStatus::Ok) {
                if (frame.type == MsgType::Ack) {
                    ++acks_seen;
                } else if (frame.type == MsgType::Error) {
                    const std::string text =
                        payloadText(frame.payload);
                    vp_warn("vpd client: daemon error: %s",
                            text.c_str());
                    if (text.rfind("fatal:", 0) == 0) {
                        std::lock_guard<std::mutex> lock(mu);
                        permFail = true;
                        permFailReason = text;
                        perm = true;
                    }
                    stream_ok = false;
                }
                continue;
            }
            if (st == DecodeStatus::Corrupt) {
                vp_warn("vpd client: corrupt reply: %s", why.c_str());
                stream_ok = false;
                break;
            }
            std::uint8_t buf[4096];
            const long n =
                net::recvSome(sock.get(), buf, sizeof(buf), why);
            if (n <= 0) {
                vp_warn("vpd client: daemon went away awaiting ack "
                        "of seq %llu%s%s",
                        static_cast<unsigned long long>(
                            batch.back().seq),
                        n < 0 ? ": " : "",
                        n < 0 ? why.c_str() : "");
                stream_ok = false;
                break;
            }
            reader.append(buf, static_cast<std::size_t>(n));
        }
        if (acks_seen >= expected_acks)
            return true;
        sock.reset();
    }
    spill(batch);
    return false;
}

void
ProfileEmitter::spill(std::vector<Pending> &batch)
{
    if (cfg.spillPath.empty()) {
        vp_warn("vpd client: dropping %zu unacknowledged delta(s) — "
                "no spill path configured",
                batch.size());
        return;
    }
    // Rewrite the whole spill file through a temp + rename so a crash
    // mid-spill can never tear previously spilled frames.
    std::vector<char> bytes;
    {
        std::ifstream in(cfg.spillPath, std::ios::binary);
        if (in) {
            bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        }
    }
    for (const auto &p : batch)
        bytes.insert(bytes.end(), p.frame.begin(), p.frame.end());
    const std::string tmp = cfg.spillPath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(bytes.data(),
                       static_cast<std::streamsize>(bytes.size()))) {
            vp_warn("vpd client: cannot write spill file '%s' — %zu "
                    "delta(s) lost",
                    tmp.c_str(), batch.size());
            return;
        }
    }
    if (std::rename(tmp.c_str(), cfg.spillPath.c_str()) != 0) {
        vp_warn("vpd client: cannot rename spill file '%s': %s",
                tmp.c_str(), std::strerror(errno));
        return;
    }
    VP_STAT_ADD(vp::stats::Cid::ServeClientSpilledDeltas,
                batch.size());
    vp_warn("vpd client: daemon unreachable at %s; spilled %zu "
            "delta(s) to %s",
            cfg.addr.c_str(), batch.size(), cfg.spillPath.c_str());
}

// --- one-shot control requests ---------------------------------------

bool
request(const std::string &addr, MsgType cmd, Frame &reply,
        std::string &error)
{
    net::Address parsed;
    if (!net::parseAddress(addr, parsed, error))
        return false;
    net::FdGuard fd(net::connectTo(parsed, error));
    if (!fd.valid())
        return false;
    setRecvTimeout(fd.get(), kAckTimeoutMs);
    const auto frame = encodeEmpty(cmd);
    if (!net::sendAll(fd.get(), frame.data(), frame.size(), error))
        return false;

    FrameReader reader;
    while (true) {
        Frame got;
        const DecodeStatus st = reader.next(got, error);
        if (st == DecodeStatus::Ok) {
            if (got.type == MsgType::Error) {
                error = "daemon: " + payloadText(got.payload);
                return false;
            }
            reply = std::move(got);
            return true;
        }
        if (st == DecodeStatus::Corrupt)
            return false;
        std::uint8_t buf[64 * 1024];
        const long n =
            net::recvSome(fd.get(), buf, sizeof(buf), error);
        if (n < 0)
            return false;
        if (n == 0) {
            error = "daemon closed the connection before replying";
            return false;
        }
        reader.append(buf, static_cast<std::size_t>(n));
    }
}

bool
requestSnapshot(const std::string &addr, core::ProfileSnapshot &out,
                std::string &error)
{
    Frame reply;
    if (!request(addr, MsgType::Snapshot, reply, error))
        return false;
    if (reply.type != MsgType::SnapshotReply) {
        error = vp::format("expected SNAPSHOT-REPLY, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    return decodeSnapshotReply(reply, out, error);
}

bool
requestQuery(const std::string &addr, std::string &text,
             std::string &error)
{
    Frame reply;
    if (!request(addr, MsgType::Query, reply, error))
        return false;
    if (reply.type != MsgType::QueryReply) {
        error = vp::format("expected QUERY-REPLY, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    text = payloadText(reply.payload);
    return true;
}

namespace
{

bool
requestAck(const std::string &addr, MsgType cmd, std::string &error)
{
    Frame reply;
    if (!request(addr, cmd, reply, error))
        return false;
    if (reply.type != MsgType::Ack) {
        error = vp::format("expected ACK, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    return true;
}

} // namespace

bool
requestFlush(const std::string &addr, std::string &error)
{
    return requestAck(addr, MsgType::Flush, error);
}

bool
requestShutdown(const std::string &addr, std::string &error)
{
    return requestAck(addr, MsgType::Shutdown, error);
}

bool
readSpill(const std::string &path, std::vector<Delta> &out,
          std::string &error)
{
    out.clear();
    error.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = vp::format("cannot open spill file '%s'",
                           path.c_str());
        return false;
    }
    const std::vector<char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    FrameReader reader;
    reader.append(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                  bytes.size());
    while (true) {
        Frame frame;
        std::string why;
        const DecodeStatus st = reader.next(frame, why);
        if (st == DecodeStatus::NeedMore) {
            if (reader.pending() > 0)
                error = vp::format("spill file ends in a torn frame "
                                   "(%zu trailing bytes)",
                                   reader.pending());
            return true;
        }
        if (st == DecodeStatus::Corrupt) {
            error = "spill file corrupt: " + why;
            return true;
        }
        if (frame.type != MsgType::Delta) {
            error = vp::format("spill file holds a %s frame",
                               msgTypeName(frame.type));
            return true;
        }
        Delta delta;
        if (!decodeDelta(frame, delta, why)) {
            error = "spill delta malformed: " + why;
            return true;
        }
        out.push_back(std::move(delta));
    }
}

} // namespace vp::serve
