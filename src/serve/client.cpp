#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <sys/socket.h>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

/** Receive timeout so a wedged daemon can't hang a client forever. */
constexpr int kAckTimeoutMs = 5000;

void
setRecvTimeout(int fd, int ms)
{
    timeval tv{};
    tv.tv_sec = ms / 1000;
    tv.tv_usec = (ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

} // namespace

ProfileEmitter::ProfileEmitter(EmitterConfig config)
    : cfg(std::move(config))
{
    vp_assert(cfg.maxQueue > 0, "emitter queue cap must be positive");
    sender = std::thread([this] { senderLoop(); });
}

ProfileEmitter::~ProfileEmitter()
{
    close();
}

void
ProfileEmitter::emit(core::ProfileSnapshot delta)
{
    Delta d;
    d.producerId = cfg.producerId;
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "emit() on a closed ProfileEmitter");
    notFull.wait(lock, [this] {
        return queue.size() < cfg.maxQueue || closing;
    });
    if (closing)
        return;
    d.seq = nextSeq++;
    d.entities = std::move(delta);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
}

bool
ProfileEmitter::tryEmit(core::ProfileSnapshot delta)
{
    Delta d;
    d.producerId = cfg.producerId;
    std::unique_lock<std::mutex> lock(mu);
    vp_assert(!closing, "tryEmit() on a closed ProfileEmitter");
    if (queue.size() >= cfg.maxQueue)
        return false;
    d.seq = nextSeq++;
    d.entities = std::move(delta);
    queue.push_back(Pending{d.seq, encodeDelta(d, cfg.wireVersion)});
    VP_STAT_GAUGE_MAX("serve.client.queue_depth",
                      static_cast<double>(queue.size()));
    hasWork.notify_one();
    return true;
}

bool
ProfileEmitter::close()
{
    {
        std::unique_lock<std::mutex> lock(mu);
        if (!closing) {
            closing = true;
            hasWork.notify_all();
            notFull.notify_all();
        }
    }
    if (sender.joinable())
        sender.join();
    std::unique_lock<std::mutex> lock(mu);
    return spilledCount == 0 && acked + 1 == nextSeq;
}

std::uint64_t
ProfileEmitter::spilledDeltas() const
{
    std::lock_guard<std::mutex> lock(mu);
    return spilledCount;
}

std::uint64_t
ProfileEmitter::ackedDeltas() const
{
    std::lock_guard<std::mutex> lock(mu);
    return acked;
}

void
ProfileEmitter::senderLoop()
{
    using clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
        hasWork.wait(lock,
                     [this] { return closing || !queue.empty(); });
        if (queue.empty()) {
            if (closing)
                break;
            continue;
        }
        // Batch window: give the producer batchIntervalMs to add more
        // deltas, unless we are closing or the size cap is reached.
        if (cfg.batchIntervalMs > 0 && !closing) {
            const auto deadline =
                clock::now() +
                std::chrono::milliseconds(cfg.batchIntervalMs);
            auto bytes = [this] {
                std::size_t total = 0;
                for (const auto &p : queue)
                    total += p.frame.size();
                return total;
            };
            while (!closing && bytes() < cfg.batchBytes &&
                   hasWork.wait_until(lock, deadline) !=
                       std::cv_status::timeout)
                ;
        }
        std::vector<Pending> batch;
        std::size_t batch_bytes = 0;
        while (!queue.empty() &&
               (batch.empty() || batch_bytes < cfg.batchBytes)) {
            batch_bytes += queue.front().frame.size();
            batch.push_back(std::move(queue.front()));
            queue.pop_front();
        }
        notFull.notify_all();
        lock.unlock();

        const bool delivered = sendBatch(batch);
        lock.lock();
        if (delivered) {
            acked += batch.size();
        } else {
            spilledCount += batch.size();
        }
    }
    senderDone = true;
}

bool
ProfileEmitter::ensureConnected(std::string &error)
{
    if (sock.valid())
        return true;
    net::Address addr;
    if (!net::parseAddress(cfg.addr, addr, error))
        return false;
    const int fd = net::connectTo(addr, error);
    if (fd < 0)
        return false;
    setRecvTimeout(fd, kAckTimeoutMs);
    sock.reset(fd);
    reader = FrameReader{}; // a fresh stream has fresh framing state
    return true;
}

/**
 * Deliver one batch: send every frame, wait for the daemon to ack the
 * batch's last sequence number. Retries with exponential backoff and
 * full-batch resend (the daemon deduplicates by seq). On final
 * failure the batch is spilled. @return true iff acknowledged.
 */
bool
ProfileEmitter::sendBatch(std::vector<Pending> &batch)
{
    const std::uint64_t last_seq = batch.back().seq;
    for (unsigned attempt = 0; attempt <= cfg.maxRetries; ++attempt) {
        if (attempt > 0) {
            VP_STAT_INC(vp::stats::Cid::ServeClientRetries);
            const int shift = static_cast<int>(
                std::min(attempt - 1, 20u));
            const long long ms = std::min<long long>(
                static_cast<long long>(cfg.backoffBaseMs) << shift,
                cfg.backoffMaxMs);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(ms));
        }
        std::string error;
        if (!ensureConnected(error)) {
            vp_warn("vpd client: connect to %s failed: %s",
                    cfg.addr.c_str(), error.c_str());
            continue;
        }
        bool sent = true;
        for (const auto &p : batch) {
            if (!net::sendAll(sock.get(), p.frame.data(),
                              p.frame.size(), error)) {
                vp_warn("vpd client: send failed: %s", error.c_str());
                sock.reset();
                sent = false;
                break;
            }
            VP_STAT_INC(vp::stats::Cid::ServeClientFramesSent);
            VP_STAT_ADD(vp::stats::Cid::ServeClientBytesSent,
                        p.frame.size());
        }
        if (!sent)
            continue;
        VP_STAT_INC(vp::stats::Cid::ServeClientBatches);

        // Await the ack for the last frame of the batch.
        bool acked_batch = false, stream_ok = true;
        while (stream_ok && !acked_batch) {
            Frame frame;
            std::string why;
            const DecodeStatus st = reader.next(frame, why);
            if (st == DecodeStatus::Ok) {
                if (frame.type == MsgType::Ack) {
                    std::uint64_t seq = 0;
                    if (decodeAck(frame.payload, seq, why) &&
                        seq >= last_seq)
                        acked_batch = true;
                } else if (frame.type == MsgType::Error) {
                    vp_warn("vpd client: daemon error: %s",
                            payloadText(frame.payload).c_str());
                    stream_ok = false;
                }
                continue;
            }
            if (st == DecodeStatus::Corrupt) {
                vp_warn("vpd client: corrupt reply: %s", why.c_str());
                stream_ok = false;
                break;
            }
            std::uint8_t buf[4096];
            const long n =
                net::recvSome(sock.get(), buf, sizeof(buf), why);
            if (n <= 0) {
                vp_warn("vpd client: daemon went away awaiting ack "
                        "of seq %llu%s%s",
                        static_cast<unsigned long long>(last_seq),
                        n < 0 ? ": " : "",
                        n < 0 ? why.c_str() : "");
                stream_ok = false;
                break;
            }
            reader.append(buf, static_cast<std::size_t>(n));
        }
        if (acked_batch)
            return true;
        sock.reset();
    }
    spill(batch);
    return false;
}

void
ProfileEmitter::spill(std::vector<Pending> &batch)
{
    if (cfg.spillPath.empty()) {
        vp_warn("vpd client: dropping %zu unacknowledged delta(s) — "
                "no spill path configured",
                batch.size());
        return;
    }
    // Rewrite the whole spill file through a temp + rename so a crash
    // mid-spill can never tear previously spilled frames.
    std::vector<char> bytes;
    {
        std::ifstream in(cfg.spillPath, std::ios::binary);
        if (in) {
            bytes.assign(std::istreambuf_iterator<char>(in),
                         std::istreambuf_iterator<char>());
        }
    }
    for (const auto &p : batch)
        bytes.insert(bytes.end(), p.frame.begin(), p.frame.end());
    const std::string tmp = cfg.spillPath + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out ||
            !out.write(bytes.data(),
                       static_cast<std::streamsize>(bytes.size()))) {
            vp_warn("vpd client: cannot write spill file '%s' — %zu "
                    "delta(s) lost",
                    tmp.c_str(), batch.size());
            return;
        }
    }
    if (std::rename(tmp.c_str(), cfg.spillPath.c_str()) != 0) {
        vp_warn("vpd client: cannot rename spill file '%s': %s",
                tmp.c_str(), std::strerror(errno));
        return;
    }
    VP_STAT_ADD(vp::stats::Cid::ServeClientSpilledDeltas,
                batch.size());
    vp_warn("vpd client: daemon unreachable at %s; spilled %zu "
            "delta(s) to %s",
            cfg.addr.c_str(), batch.size(), cfg.spillPath.c_str());
}

// --- one-shot control requests ---------------------------------------

bool
request(const std::string &addr, MsgType cmd, Frame &reply,
        std::string &error)
{
    net::Address parsed;
    if (!net::parseAddress(addr, parsed, error))
        return false;
    net::FdGuard fd(net::connectTo(parsed, error));
    if (!fd.valid())
        return false;
    setRecvTimeout(fd.get(), kAckTimeoutMs);
    const auto frame = encodeEmpty(cmd);
    if (!net::sendAll(fd.get(), frame.data(), frame.size(), error))
        return false;

    FrameReader reader;
    while (true) {
        Frame got;
        const DecodeStatus st = reader.next(got, error);
        if (st == DecodeStatus::Ok) {
            if (got.type == MsgType::Error) {
                error = "daemon: " + payloadText(got.payload);
                return false;
            }
            reply = std::move(got);
            return true;
        }
        if (st == DecodeStatus::Corrupt)
            return false;
        std::uint8_t buf[64 * 1024];
        const long n =
            net::recvSome(fd.get(), buf, sizeof(buf), error);
        if (n < 0)
            return false;
        if (n == 0) {
            error = "daemon closed the connection before replying";
            return false;
        }
        reader.append(buf, static_cast<std::size_t>(n));
    }
}

bool
requestSnapshot(const std::string &addr, core::ProfileSnapshot &out,
                std::string &error)
{
    Frame reply;
    if (!request(addr, MsgType::Snapshot, reply, error))
        return false;
    if (reply.type != MsgType::SnapshotReply) {
        error = vp::format("expected SNAPSHOT-REPLY, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    return decodeSnapshotReply(reply, out, error);
}

bool
requestQuery(const std::string &addr, std::string &text,
             std::string &error)
{
    Frame reply;
    if (!request(addr, MsgType::Query, reply, error))
        return false;
    if (reply.type != MsgType::QueryReply) {
        error = vp::format("expected QUERY-REPLY, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    text = payloadText(reply.payload);
    return true;
}

namespace
{

bool
requestAck(const std::string &addr, MsgType cmd, std::string &error)
{
    Frame reply;
    if (!request(addr, cmd, reply, error))
        return false;
    if (reply.type != MsgType::Ack) {
        error = vp::format("expected ACK, got %s",
                           msgTypeName(reply.type));
        return false;
    }
    return true;
}

} // namespace

bool
requestFlush(const std::string &addr, std::string &error)
{
    return requestAck(addr, MsgType::Flush, error);
}

bool
requestShutdown(const std::string &addr, std::string &error)
{
    return requestAck(addr, MsgType::Shutdown, error);
}

bool
readSpill(const std::string &path, std::vector<Delta> &out,
          std::string &error)
{
    out.clear();
    error.clear();
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        error = vp::format("cannot open spill file '%s'",
                           path.c_str());
        return false;
    }
    const std::vector<char> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    FrameReader reader;
    reader.append(reinterpret_cast<const std::uint8_t *>(bytes.data()),
                  bytes.size());
    while (true) {
        Frame frame;
        std::string why;
        const DecodeStatus st = reader.next(frame, why);
        if (st == DecodeStatus::NeedMore) {
            if (reader.pending() > 0)
                error = vp::format("spill file ends in a torn frame "
                                   "(%zu trailing bytes)",
                                   reader.pending());
            return true;
        }
        if (st == DecodeStatus::Corrupt) {
            error = "spill file corrupt: " + why;
            return true;
        }
        if (frame.type != MsgType::Delta) {
            error = vp::format("spill file holds a %s frame",
                               msgTypeName(frame.type));
            return true;
        }
        Delta delta;
        if (!decodeDelta(frame, delta, why)) {
            error = "spill delta malformed: " + why;
            return true;
        }
        out.push_back(std::move(delta));
    }
}

} // namespace vp::serve
