#include "serve/wire.hpp"

#include <algorithm>
#include <cstring>

#include "core/profile_codec.hpp"
#include "support/crc32.hpp"
#include "support/logging.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'V', 'P', 'D', 'F'};

// --- little-endian scalar codecs -------------------------------------

void
putU16(std::vector<std::uint8_t> &out, std::uint16_t v)
{
    out.push_back(static_cast<std::uint8_t>(v));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putF64(std::vector<std::uint8_t> &out, double v)
{
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

std::uint32_t
readU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | p[i];
    return v;
}

bool
getU32(const std::uint8_t *data, std::size_t len, std::size_t *pos,
       std::uint32_t &out)
{
    if (len - *pos < 4)
        return false;
    out = readU32(data + *pos);
    *pos += 4;
    return true;
}

bool
getU64(const std::uint8_t *data, std::size_t len, std::size_t *pos,
       std::uint64_t &out)
{
    if (len - *pos < 8)
        return false;
    out = 0;
    const std::uint8_t *p = data + *pos;
    for (int i = 7; i >= 0; --i)
        out = (out << 8) | p[i];
    *pos += 8;
    return true;
}

bool
getF64(const std::uint8_t *data, std::size_t len, std::size_t *pos,
       double &out)
{
    std::uint64_t bits;
    if (!getU64(data, len, pos, bits))
        return false;
    std::memcpy(&out, &bits, sizeof(out));
    return true;
}

} // namespace

bool
knownMsgType(std::uint8_t t)
{
    return t >= static_cast<std::uint8_t>(MsgType::Delta) &&
           t <= static_cast<std::uint8_t>(MsgType::Hello);
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::Delta: return "DELTA";
      case MsgType::Ack: return "ACK";
      case MsgType::Query: return "QUERY";
      case MsgType::QueryReply: return "QUERY-REPLY";
      case MsgType::Snapshot: return "SNAPSHOT";
      case MsgType::SnapshotReply: return "SNAPSHOT-REPLY";
      case MsgType::Flush: return "FLUSH";
      case MsgType::Shutdown: return "SHUTDOWN";
      case MsgType::Error: return "ERROR";
      case MsgType::Hello: return "HELLO";
    }
    return "?";
}

std::uint32_t
crc32(const std::uint8_t *data, std::size_t len, std::uint32_t seed)
{
    return vp::crc32(data, len, seed);
}

std::vector<std::uint8_t>
encodeFrame(MsgType type, const std::vector<std::uint8_t> &payload,
            std::uint16_t version)
{
    vp_assert(version >= kMinWireVersion && version <= kWireVersion,
              "unsupported wire version %u",
              static_cast<unsigned>(version));
    vp_assert(payload.size() <= kMaxPayload,
              "frame payload of %zu bytes exceeds the wire cap",
              payload.size());
    std::vector<std::uint8_t> out;
    out.reserve(kHeaderSize + payload.size());
    out.insert(out.end(), kMagic, kMagic + 4);
    putU16(out, version);
    out.push_back(static_cast<std::uint8_t>(type));
    out.push_back(0); // flags
    putU32(out, static_cast<std::uint32_t>(payload.size()));
    // CRC over the 12 header bytes so far, continued over the payload.
    std::uint32_t crc = crc32(out.data(), 12);
    crc = crc32(payload.data(), payload.size(), crc);
    putU32(out, crc);
    out.insert(out.end(), payload.begin(), payload.end());
    return out;
}

DecodeStatus
tryDecode(const std::uint8_t *data, std::size_t len, Frame &out,
          std::size_t &consumed, std::string &error)
{
    // Reject bad fixed fields as soon as their bytes are visible, so
    // garbage streams fail fast instead of stalling in NeedMore.
    for (std::size_t i = 0; i < std::min<std::size_t>(len, 4); ++i) {
        if (data[i] != kMagic[i]) {
            error = "bad frame magic";
            return DecodeStatus::Corrupt;
        }
    }
    if (len >= 6) {
        const std::uint16_t version = static_cast<std::uint16_t>(
            data[4] | (static_cast<std::uint16_t>(data[5]) << 8));
        if (version < kMinWireVersion || version > kWireVersion) {
            error = vp::format("unknown wire version %u",
                               static_cast<unsigned>(version));
            return DecodeStatus::Corrupt;
        }
    }
    if (len >= 7 && !knownMsgType(data[6])) {
        error = vp::format("unknown message type %u",
                           static_cast<unsigned>(data[6]));
        return DecodeStatus::Corrupt;
    }
    if (len >= 8 && data[7] != 0) {
        error = vp::format("nonzero reserved flags 0x%02x",
                           static_cast<unsigned>(data[7]));
        return DecodeStatus::Corrupt;
    }
    if (len < kHeaderSize)
        return DecodeStatus::NeedMore;

    const std::uint32_t payload_len = readU32(data + 8);
    if (payload_len > kMaxPayload) {
        error = vp::format("implausible payload length %u",
                           payload_len);
        return DecodeStatus::Corrupt;
    }
    if (len < kHeaderSize + payload_len)
        return DecodeStatus::NeedMore;

    const std::uint32_t want = readU32(data + 12);
    std::uint32_t got = crc32(data, 12);
    got = crc32(data + kHeaderSize, payload_len, got);
    if (got != want) {
        error = vp::format("frame CRC mismatch (got 0x%08x, frame "
                           "says 0x%08x)",
                           got, want);
        return DecodeStatus::Corrupt;
    }

    const std::uint16_t version = static_cast<std::uint16_t>(
        data[4] | (static_cast<std::uint16_t>(data[5]) << 8));
    const MsgType type = static_cast<MsgType>(data[6]);

    // Decompression-bomb guard: a version-2 snapshot-bearing payload
    // is validated (structure + inflation cap) before the frame is
    // surfaced, so a CRC-valid frame whose compressed block would
    // inflate into gigabytes is Corrupt here, not an allocation storm
    // in the payload decoder.
    if (version >= 2 &&
        (type == MsgType::Delta || type == MsgType::SnapshotReply)) {
        const std::uint8_t *p = data + kHeaderSize;
        std::size_t pos = 0;
        if (type == MsgType::Delta) {
            std::uint64_t producer = 0, seq = 0;
            if (!core::codec::getVarint(p, payload_len, &pos,
                                        producer) ||
                !core::codec::getVarint(p, payload_len, &pos, seq)) {
                error = "truncated delta header";
                return DecodeStatus::Corrupt;
            }
        }
        std::string scanError;
        if (!core::codec::decodeEntityBlock(
                p, payload_len, &pos, kMaxInflatedPayload,
                /*strictDistinct=*/false, /*out=*/nullptr, scanError)) {
            error = vp::format("invalid compressed payload: %s",
                               scanError.c_str());
            return DecodeStatus::Corrupt;
        }
        if (pos != payload_len) {
            error = vp::format("%zu trailing bytes after the entity "
                               "block",
                               static_cast<std::size_t>(payload_len) -
                                   pos);
            return DecodeStatus::Corrupt;
        }
    }

    out.type = type;
    out.version = version;
    out.payload.assign(data + kHeaderSize,
                       data + kHeaderSize + payload_len);
    consumed = kHeaderSize + payload_len;
    return DecodeStatus::Ok;
}

void
FrameReader::append(const std::uint8_t *data, std::size_t len)
{
    if (dead)
        return; // the stream is already condemned; drop the bytes
    // Compact once the dead prefix dominates the buffer.
    if (start > 4096 && start > buf.size() / 2) {
        buf.erase(buf.begin(),
                  buf.begin() + static_cast<std::ptrdiff_t>(start));
        start = 0;
    }
    buf.insert(buf.end(), data, data + len);
}

DecodeStatus
FrameReader::next(Frame &out, std::string &error)
{
    if (dead) {
        error = deadReason;
        return DecodeStatus::Corrupt;
    }
    std::size_t consumed = 0;
    const DecodeStatus st = tryDecode(buf.data() + start,
                                      buf.size() - start, out,
                                      consumed, error);
    switch (st) {
      case DecodeStatus::Ok:
        start += consumed;
        if (start == buf.size()) {
            buf.clear();
            start = 0;
        }
        return st;
      case DecodeStatus::NeedMore:
        return st;
      case DecodeStatus::Corrupt:
        dead = true;
        deadReason = error;
        return st;
    }
    vp_panic("bad decode status");
}

// --- payload codecs ---------------------------------------------------

void
encodeSnapshotPayload(const core::ProfileSnapshot &snap,
                      std::vector<std::uint8_t> &out)
{
    putU32(out, static_cast<std::uint32_t>(snap.entities.size()));
    for (const auto &[key, s] : snap.entities) {
        putU64(out, key);
        putU64(out, s.totalExecutions);
        putU64(out, s.profiledExecutions);
        putU64(out, s.distinct);
        putF64(out, s.invTop);
        putF64(out, s.invAll);
        putF64(out, s.lvp);
        putF64(out, s.zeroFraction);
        putU32(out, static_cast<std::uint32_t>(s.topValues.size()));
        for (const auto &[v, c] : s.topValues) {
            putU64(out, v);
            putU64(out, c);
        }
    }
}

bool
decodeSnapshotPayload(const std::uint8_t *data, std::size_t len,
                      std::size_t *pos, core::ProfileSnapshot &out,
                      std::string &error)
{
    out.entities.clear();
    // The v1 payload predates the dropped-access counters; don't let
    // stale values survive in a reused output snapshot.
    out.droppedStores = 0;
    out.droppedLoads = 0;
    std::uint32_t count = 0;
    if (!getU32(data, len, pos, count)) {
        error = "truncated snapshot payload: entity count";
        return false;
    }
    for (std::uint32_t i = 0; i < count; ++i) {
        std::uint64_t key = 0;
        core::EntitySummary s;
        std::uint32_t ntop = 0;
        if (!getU64(data, len, pos, key) ||
            !getU64(data, len, pos, s.totalExecutions) ||
            !getU64(data, len, pos, s.profiledExecutions) ||
            !getU64(data, len, pos, s.distinct) ||
            !getF64(data, len, pos, s.invTop) ||
            !getF64(data, len, pos, s.invAll) ||
            !getF64(data, len, pos, s.lvp) ||
            !getF64(data, len, pos, s.zeroFraction) ||
            !getU32(data, len, pos, ntop)) {
            error = vp::format("truncated snapshot payload at entity "
                               "%u of %u", i, count);
            return false;
        }
        // Each top value costs 16 payload bytes; bounding by the
        // remaining length rejects corrupt counts before allocating.
        if (ntop > (len - *pos) / 16) {
            error = vp::format("implausible top-value count %u at "
                               "entity %u", ntop, i);
            return false;
        }
        s.topValues.reserve(ntop);
        for (std::uint32_t j = 0; j < ntop; ++j) {
            std::uint64_t v = 0, c = 0;
            if (!getU64(data, len, pos, v) ||
                !getU64(data, len, pos, c)) {
                error = vp::format("truncated top values at entity %u",
                                   i);
                return false;
            }
            s.topValues.emplace_back(v, c);
        }
        if (out.entities.count(key)) {
            error = vp::format("duplicate entity key %llu",
                               static_cast<unsigned long long>(key));
            return false;
        }
        out.entities[key] = std::move(s);
    }
    return true;
}

std::vector<std::uint8_t>
encodeDelta(const Delta &delta, std::uint16_t version)
{
    std::vector<std::uint8_t> payload;
    if (version >= 2) {
        core::codec::putVarint(payload, delta.producerId);
        core::codec::putVarint(payload, delta.seq);
        core::codec::encodeEntityBlock(delta.entities, payload);
    } else {
        putU64(payload, delta.producerId);
        putU64(payload, delta.seq);
        encodeSnapshotPayload(delta.entities, payload);
    }
    return encodeFrame(MsgType::Delta, payload, version);
}

bool
decodeDelta(const Frame &frame, Delta &out, std::string &error)
{
    const std::vector<std::uint8_t> &payload = frame.payload;
    std::size_t pos = 0;
    if (frame.version >= 2) {
        if (!core::codec::getVarint(payload.data(), payload.size(),
                                    &pos, out.producerId) ||
            !core::codec::getVarint(payload.data(), payload.size(),
                                    &pos, out.seq)) {
            error = "truncated delta header";
            return false;
        }
    } else if (!getU64(payload.data(), payload.size(), &pos,
                       out.producerId) ||
               !getU64(payload.data(), payload.size(), &pos,
                       out.seq)) {
        error = "truncated delta header";
        return false;
    }
    if (out.seq == 0) {
        error = "delta sequence numbers are 1-based";
        return false;
    }
    if (frame.version >= 2) {
        if (!core::codec::decodeEntityBlock(
                payload.data(), payload.size(), &pos,
                kMaxInflatedPayload, /*strictDistinct=*/false,
                &out.entities, error))
            return false;
    } else if (!decodeSnapshotPayload(payload.data(), payload.size(),
                                      &pos, out.entities, error)) {
        return false;
    }
    if (pos != payload.size()) {
        error = vp::format("%zu trailing bytes after delta payload",
                           payload.size() - pos);
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeAck(std::uint64_t seq, std::uint16_t version)
{
    std::vector<std::uint8_t> payload;
    putU64(payload, seq);
    return encodeFrame(MsgType::Ack, payload, version);
}

bool
decodeAck(const std::vector<std::uint8_t> &payload, std::uint64_t &seq,
          std::string &error)
{
    std::size_t pos = 0;
    if (!getU64(payload.data(), payload.size(), &pos, seq) ||
        pos != payload.size()) {
        error = "malformed ack payload";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeSnapshotReply(const core::ProfileSnapshot &snap,
                    std::uint16_t version)
{
    std::vector<std::uint8_t> payload;
    if (version >= 2)
        core::codec::encodeEntityBlock(snap, payload);
    else
        encodeSnapshotPayload(snap, payload);
    return encodeFrame(MsgType::SnapshotReply, payload, version);
}

bool
decodeSnapshotReply(const Frame &frame, core::ProfileSnapshot &out,
                    std::string &error)
{
    std::size_t pos = 0;
    if (frame.version >= 2) {
        if (!core::codec::decodeEntityBlock(
                frame.payload.data(), frame.payload.size(), &pos,
                kMaxInflatedPayload, /*strictDistinct=*/false, &out,
                error))
            return false;
    } else if (!decodeSnapshotPayload(frame.payload.data(),
                                      frame.payload.size(), &pos, out,
                                      error)) {
        return false;
    }
    if (pos != frame.payload.size()) {
        error = "trailing bytes after snapshot reply";
        return false;
    }
    return true;
}

std::vector<std::uint8_t>
encodeText(MsgType type, const std::string &text, std::uint16_t version)
{
    vp_assert(type == MsgType::QueryReply || type == MsgType::Error,
              "text payloads are for QueryReply/Error frames");
    std::vector<std::uint8_t> payload(text.begin(), text.end());
    return encodeFrame(type, payload, version);
}

std::string
payloadText(const std::vector<std::uint8_t> &payload)
{
    return std::string(payload.begin(), payload.end());
}

std::vector<std::uint8_t>
encodeEmpty(MsgType type, std::uint16_t version)
{
    return encodeFrame(type, {}, version);
}

std::vector<std::uint8_t>
encodeHello(std::uint64_t forwarder,
            const std::vector<std::uint64_t> &path,
            std::uint16_t version)
{
    std::string text = vp::format(
        "forwarder %llu\npath ",
        static_cast<unsigned long long>(forwarder));
    for (std::size_t i = 0; i < path.size(); ++i) {
        if (i)
            text += ',';
        text += vp::format("%llu",
                           static_cast<unsigned long long>(path[i]));
    }
    text += '\n';
    std::vector<std::uint8_t> payload(text.begin(), text.end());
    return encodeFrame(MsgType::Hello, payload, version);
}

bool
decodeHello(const std::vector<std::uint8_t> &payload,
            std::uint64_t &forwarder, std::vector<std::uint64_t> &path,
            std::string &error)
{
    forwarder = 0;
    path.clear();
    const std::string text = payloadText(payload);
    bool have_forwarder = false, have_path = false;
    std::size_t pos = 0;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.rfind("forwarder ", 0) == 0) {
            std::int64_t v = 0;
            if (!vp::parseInt(line.substr(10), v) || v <= 0) {
                error = "hello: bad forwarder id";
                return false;
            }
            forwarder = static_cast<std::uint64_t>(v);
            have_forwarder = true;
        } else if (line.rfind("path ", 0) == 0) {
            const std::string list = line.substr(5);
            std::size_t at = 0;
            while (at <= list.size()) {
                std::size_t comma = list.find(',', at);
                if (comma == std::string::npos)
                    comma = list.size();
                const std::string item =
                    list.substr(at, comma - at);
                if (!item.empty()) {
                    std::int64_t v = 0;
                    if (!vp::parseInt(item, v) || v <= 0) {
                        error = "hello: bad path entry '" + item + "'";
                        return false;
                    }
                    path.push_back(static_cast<std::uint64_t>(v));
                }
                at = comma + 1;
            }
            have_path = true;
        } else if (!line.empty()) {
            error = "hello: unknown line '" + line + "'";
            return false;
        }
    }
    if (!have_forwarder || !have_path) {
        error = "hello: missing forwarder or path line";
        return false;
    }
    return true;
}

} // namespace vp::serve
