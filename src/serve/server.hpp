/**
 * @file
 * The vpd aggregation daemon core: a poll-based event loop that
 * accepts concurrent TCP and unix-socket clients speaking the delta
 * wire format (serve/wire.hpp), merges their deltas into live
 * per-producer partial snapshots, and answers QUERY / SNAPSHOT /
 * FLUSH / SHUTDOWN requests.
 *
 * Determinism contract (what the serve differential checker proves):
 * the daemon keeps one partial ProfileSnapshot *per producer id* and
 * applies each producer's deltas in sequence order, so a producer's
 * partial is independent of how its frames interleave with other
 * clients'. The served aggregate folds the partials in ascending
 * producer-id order. Both orders are total, so the aggregate is
 * byte-identical to a serial merge of the same delta stream no matter
 * how many clients raced — the networked restatement of DESIGN.md's
 * "Shard-and-merge semantics" (each producer is a shard).
 *
 * Delivery contract: deltas carry 1-based, strictly increasing
 * per-producer sequence numbers. The daemon applies seq N exactly
 * once: a duplicate (resent after a lost ack) is re-acknowledged
 * without merging, and a gap is answered with an ERROR frame — a
 * client that skips a sequence number has lost data and must spill.
 *
 * Crash consistency: the aggregate is persisted with the atomic
 * ProfileSnapshot::saveToFile (tmp + rename) on FLUSH, on SHUTDOWN,
 * on requestStop(), and every snapshotIntervalSec while dirty, so a
 * killed daemon leaves either the previous complete snapshot or the
 * new one, never a torn file.
 *
 * Query & metrics plane: when ServerConfig::httpAddrs is non-empty the
 * same loop also serves HTTP/1.1 (serve/http.hpp) with the read-only
 * views of serve/query.hpp — pazpar2-style single-threaded session
 * dispatch, no extra threads. Queries render from a fold of the
 * partials that is cached per applied-delta sequence number, so a
 * burst of /top requests between two deltas folds the aggregate once.
 * `GET /watch` long-polls park in the loop and are woken by the next
 * delta apply.
 */

#ifndef VP_SERVE_SERVER_HPP
#define VP_SERVE_SERVER_HPP

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/client.hpp"
#include "serve/http.hpp"
#include "serve/query.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"

namespace vp::serve
{

/** Daemon configuration. */
struct ServerConfig
{
    /** Listen endpoints: "host:port" and/or "unix:PATH" (at least
     *  one). TCP port 0 binds an ephemeral port. */
    std::vector<std::string> listenAddrs;
    /** HTTP query-plane endpoints, same syntax (may be empty). */
    std::vector<std::string> httpAddrs;
    /** HTTP plane tunables (timeouts, caps, chunking). */
    HttpConfig http;
    /** Persist target for the aggregate ("" = never persisted). */
    std::string snapshotPath;
    /** Persist-while-dirty interval in seconds (0 = only on
     *  FLUSH/SHUTDOWN/stop). */
    double snapshotIntervalSec = 0.0;
    /** Connection cap; accepts beyond it are refused with ERROR. */
    std::size_t maxClients = 64;

    /**
     * Hierarchical aggregation: when non-empty, this daemon is a
     * *leaf/mid* of a vpd tree — it periodically re-emits every dirty
     * producer partial upstream to this address (same syntax as
     * listenAddrs entries). The relay carries each partial whole,
     * under its original producer id, with seq = the producer's last
     * acked seq here; the upstream daemon *replaces* its copy rather
     * than merging, so the root's fold stays byte-identical to a
     * serial merge of every acked delta at any tree depth (see
     * DESIGN.md, "Hierarchical aggregation").
     */
    std::string forwardAddr;
    /** This daemon's identity in the tree — announced in the HELLO
     *  preceding every forwarded batch, used by upstream daemons to
     *  reject forwarding loops. Required (non-zero) with forwardAddr;
     *  must be unique among daemons *and* producer ids. */
    std::uint64_t forwardId = 0;
    /** Seconds between upstream re-emissions of dirty partials. */
    double forwardIntervalSec = 1.0;
    /** Spill file for partials the upstream never acked ("" disables
     *  — upstream death then drops forwarded data with a warning).
     *  Replayed (then unlinked) on the next start. */
    std::string forwardSpillPath;
    /**
     * Durable per-producer state ("" = none): partials + last acked
     * seqs, written atomically alongside the snapshot. A restarted
     * daemon reloads it so producers can keep emitting *their* next
     * seq instead of starting over — the soak harness's
     * kill-and-restore path. A corrupt state file refuses start()
     * rather than silently re-acking data it no longer holds.
     */
    std::string statePath;
};

/** The vpd daemon event loop. */
class VpdServer
{
  public:
    explicit VpdServer(ServerConfig config);
    ~VpdServer();

    VpdServer(const VpdServer &) = delete;
    VpdServer &operator=(const VpdServer &) = delete;

    /**
     * Bind and listen on every configured endpoint and arm the stop
     * pipe. @return false with a diagnosis; the server object is then
     * unusable.
     */
    bool start(std::string &error);

    /** Resolved listen addresses (ephemeral TCP ports filled in).
     *  Valid after start(). */
    const std::vector<net::Address> &boundAddresses() const
    {
        return bound;
    }

    /** Resolved HTTP listen addresses. Valid after start(). */
    const std::vector<net::Address> &boundHttpAddresses() const
    {
        return boundHttp;
    }

    /**
     * Run the event loop on the calling thread until SHUTDOWN is
     * received or requestStop() is called. Persists the aggregate on
     * the way out. Returns false if the loop died on an internal
     * error (diagnosis in `error`).
     */
    bool run(std::string &error);

    /**
     * Ask a running loop to exit (thread- and signal-safe: writes one
     * byte to the stop pipe).
     */
    void requestStop();

    /**
     * The current aggregate: partials folded in ascending producer-id
     * order. Thread-safe.
     */
    core::ProfileSnapshot aggregate() const;

    /** Producers seen so far. Thread-safe. */
    std::size_t producerCount() const;

  private:
    using clock = std::chrono::steady_clock;

    struct Connection
    {
        net::FdGuard fd;
        FrameReader reader;
        std::vector<std::uint8_t> out; ///< unwritten reply bytes
        std::size_t outPos = 0;
        bool closeAfterWrite = false;
        /** Queue times of acks not yet drained to the socket — the
         *  server-side half of the ack-latency distribution
         *  ("serve.ack_us", observed when the buffer drains). */
        std::vector<clock::time_point> pendingAcks;
        /** Forwarder identity from the connection's last HELLO; 0 for
         *  a direct producer. Deltas arriving on the connection are
         *  attributed to this hop for the id-clash guard. */
        std::uint64_t helloId = 0;
    };

    /** One HTTP query session (keep-alive, possibly parked). */
    struct HttpSession
    {
        net::FdGuard fd;
        HttpRequestParser parser;
        std::vector<std::uint8_t> out; ///< unwritten response bytes
        std::size_t outPos = 0;
        bool closeAfterWrite = false;
        bool dead = false;
        /** True while parked on `GET /watch` awaiting a delta. */
        bool parked = false;
        HttpRequest watchReq;        ///< the parked request
        std::uint64_t watchSince = 0;
        clock::time_point deadline;  ///< head/idle/park deadline

        explicit HttpSession(std::size_t max_header)
            : parser(max_header)
        {}
    };

    /** One producer's live state. */
    struct Partial
    {
        core::ProfileSnapshot snapshot;
        std::uint64_t lastSeq = 0;
        std::uint64_t bytes = 0;      ///< delta payload bytes applied
        std::uint64_t duplicates = 0; ///< resends re-acked, not merged
        clock::time_point lastDeltaAt{};
        /**
         * Which hop owns this producer id: 0 = a direct connection,
         * else the forwarding daemon's hello id. The first claimant
         * wins; a delta for the id from any *other* hop is a fatal
         * id clash (two producers sharing an id would silently
         * corrupt the replace-relay). viaHopKnown is false only for
         * partials restored from a forward-spill replay, whose true
         * hop is unknowable — the first live claimant adopts them.
         */
        std::uint64_t viaHop = 0;
        bool viaHopKnown = false;
    };

    bool handleFrame(Connection &conn, const Frame &frame);
    void queueReply(Connection &conn, std::vector<std::uint8_t> bytes);
    bool flushWrites(Connection &conn);
    void acceptClients(int listen_fd);
    /** Read, decode and answer one ready ingest connection. Returns
     *  false when the connection is dead and must be removed. */
    bool serviceIngest(Connection &conn, short revents);
    /**
     * Zero-timeout poll over the ingest connections, servicing any
     * that are ready. Called between HTTP requests so a burst of
     * query traffic cannot sit in front of inbound deltas for more
     * than a few requests' worth of work — this is what keeps the
     * ack-latency interference bounded (bench/table_serve).
     */
    void pollIngestNow();
    void persistIfConfigured();

    /**
     * One upstream relay pass: sample the forwarder's ack/spill
     * counters (a spill clears forwardedSeq so everything re-forwards
     * — replace semantics make that idempotent), then queue every
     * partial whose lastSeq moved past its last forwarded seq as a
     * full-partial Delta under the original producer id. Non-blocking:
     * a full forwarder queue defers the rest to the next tick.
     */
    void forwardTick();
    /** Fold forwarder ack/spill growth into the stats counters.
     *  Requires stateMu held. */
    void sampleForwarderLocked();
    /** Serialize the durable per-producer state. Requires stateMu. */
    std::string encodeStateLocked() const;
    /** Load cfg.statePath (missing file is fine; corrupt refuses). */
    bool loadState(std::string &error);
    /** Replay + unlink the forward spill left by a previous run. */
    bool replayForwardSpill(std::string &error);

    /**
     * The canonical fold of the partials, cached per apply seq.
     * Requires stateMu held; the reference is valid only while it is.
     */
    const core::ProfileSnapshot &aggregateLocked() const;
    /** Assemble the query-plane view. Requires stateMu held. */
    ServerView makeViewLocked(clock::time_point now) const;

    void acceptHttpSessions(int listen_fd);
    /** Serialize `resp` onto the session's out buffer. */
    void queueHttp(HttpSession &s, const HttpRequest &req,
                   const HttpResponse &resp);
    /** Parse-and-answer until the buffer runs dry or the session
     *  parks, dies, or backs up. */
    void drainHttpSession(HttpSession &s, clock::time_point now);
    /** Answer parked /watch sessions whose seq moved (or timed out). */
    void wakeWatchers(clock::time_point now, bool timed_out_only);
    bool flushHttpWrites(HttpSession &s);

    ServerConfig cfg;
    std::vector<net::FdGuard> listeners;
    std::vector<net::FdGuard> httpListeners;
    std::vector<net::Address> bound;
    std::vector<net::Address> boundHttp;
    std::vector<std::unique_ptr<Connection>> conns;
    std::vector<std::unique_ptr<HttpSession>> sessions;
    int stopPipe[2] = {-1, -1};
    bool stopping = false;
    clock::time_point startedAt{};

    /** Upstream relay client (forwardAddr configured), else null. */
    std::unique_ptr<ProfileEmitter> forwarder;
    clock::time_point nextForward{};
    bool forwarderFailedWarned = false;

    mutable std::mutex stateMu;
    std::map<std::uint64_t, Partial> partials;
    /** Per-producer seq last handed to the forwarder. Not persisted:
     *  a restart re-forwards every partial once (idempotent — the
     *  upstream replaces, and equal seqs are re-acked as dups). */
    std::map<std::uint64_t, std::uint64_t> forwardedSeq;
    /** Every forwarder id heard in a HELLO path — our downstream
     *  subtree, appended to our own upstream HELLOs so loop checks
     *  see the whole path even across daemon restarts. */
    std::set<std::uint64_t> downstreamIds;
    /** Forwarder counter values already folded into stats. */
    std::uint64_t fwdAckedSeen = 0;
    std::uint64_t fwdSpilledSeen = 0;
    /** Bumps once per applied delta — the /watch change clock and the
     *  aggregate-cache key. */
    std::uint64_t applySeq = 0;
    bool dirty = false; ///< aggregate changed since last persist
    /** Fold cache: rebuilt lazily when applySeq moved past it. */
    mutable core::ProfileSnapshot cachedAgg;
    mutable std::uint64_t cachedAtSeq = ~0ull;

    /**
     * Rendered-response cache for the read endpoints whose body only
     * depends on the aggregate: a scrape fleet asking the same /top
     * question between two deltas costs one render, not N. Entries
     * are keyed by raw request target, invalidated when applySeq
     * moves, and additionally aged out so wall-clock fields (lag,
     * uptime) cannot freeze on an idle daemon.
     */
    struct CachedResp
    {
        std::uint64_t seq = 0;
        clock::time_point at{};
        HttpResponse resp;
    };
    std::map<std::string, CachedResp> respCache;
    std::uint64_t respCacheSeq = ~0ull;
    /** Served-request count since the last ingest micro-poll. */
    std::uint32_t httpSinceIngestPoll = 0;
};

} // namespace vp::serve

#endif // VP_SERVE_SERVER_HPP
