/**
 * @file
 * The vpd aggregation daemon core: a poll-based event loop that
 * accepts concurrent TCP and unix-socket clients speaking the delta
 * wire format (serve/wire.hpp), merges their deltas into live
 * per-producer partial snapshots, and answers QUERY / SNAPSHOT /
 * FLUSH / SHUTDOWN requests.
 *
 * Determinism contract (what the serve differential checker proves):
 * the daemon keeps one partial ProfileSnapshot *per producer id* and
 * applies each producer's deltas in sequence order, so a producer's
 * partial is independent of how its frames interleave with other
 * clients'. The served aggregate folds the partials in ascending
 * producer-id order. Both orders are total, so the aggregate is
 * byte-identical to a serial merge of the same delta stream no matter
 * how many clients raced — the networked restatement of DESIGN.md's
 * "Shard-and-merge semantics" (each producer is a shard).
 *
 * Delivery contract: deltas carry 1-based, strictly increasing
 * per-producer sequence numbers. The daemon applies seq N exactly
 * once: a duplicate (resent after a lost ack) is re-acknowledged
 * without merging, and a gap is answered with an ERROR frame — a
 * client that skips a sequence number has lost data and must spill.
 *
 * Crash consistency: the aggregate is persisted with the atomic
 * ProfileSnapshot::saveToFile (tmp + rename) on FLUSH, on SHUTDOWN,
 * on requestStop(), and every snapshotIntervalSec while dirty, so a
 * killed daemon leaves either the previous complete snapshot or the
 * new one, never a torn file.
 */

#ifndef VP_SERVE_SERVER_HPP
#define VP_SERVE_SERVER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/snapshot.hpp"
#include "serve/wire.hpp"
#include "support/socket.hpp"

namespace vp::serve
{

/** Daemon configuration. */
struct ServerConfig
{
    /** Listen endpoints: "host:port" and/or "unix:PATH" (at least
     *  one). TCP port 0 binds an ephemeral port. */
    std::vector<std::string> listenAddrs;
    /** Persist target for the aggregate ("" = never persisted). */
    std::string snapshotPath;
    /** Persist-while-dirty interval in seconds (0 = only on
     *  FLUSH/SHUTDOWN/stop). */
    double snapshotIntervalSec = 0.0;
    /** Connection cap; accepts beyond it are refused with ERROR. */
    std::size_t maxClients = 64;
};

/** The vpd daemon event loop. */
class VpdServer
{
  public:
    explicit VpdServer(ServerConfig config);
    ~VpdServer();

    VpdServer(const VpdServer &) = delete;
    VpdServer &operator=(const VpdServer &) = delete;

    /**
     * Bind and listen on every configured endpoint and arm the stop
     * pipe. @return false with a diagnosis; the server object is then
     * unusable.
     */
    bool start(std::string &error);

    /** Resolved listen addresses (ephemeral TCP ports filled in).
     *  Valid after start(). */
    const std::vector<net::Address> &boundAddresses() const
    {
        return bound;
    }

    /**
     * Run the event loop on the calling thread until SHUTDOWN is
     * received or requestStop() is called. Persists the aggregate on
     * the way out. Returns false if the loop died on an internal
     * error (diagnosis in `error`).
     */
    bool run(std::string &error);

    /**
     * Ask a running loop to exit (thread- and signal-safe: writes one
     * byte to the stop pipe).
     */
    void requestStop();

    /**
     * The current aggregate: partials folded in ascending producer-id
     * order. Thread-safe.
     */
    core::ProfileSnapshot aggregate() const;

    /** Producers seen so far. Thread-safe. */
    std::size_t producerCount() const;

  private:
    struct Connection
    {
        net::FdGuard fd;
        FrameReader reader;
        std::vector<std::uint8_t> out; ///< unwritten reply bytes
        std::size_t outPos = 0;
        bool closeAfterWrite = false;
    };

    /** One producer's live state. */
    struct Partial
    {
        core::ProfileSnapshot snapshot;
        std::uint64_t lastSeq = 0;
    };

    bool handleFrame(Connection &conn, const Frame &frame);
    void queueReply(Connection &conn, std::vector<std::uint8_t> bytes);
    bool flushWrites(Connection &conn);
    void acceptClients(int listen_fd);
    void persistIfConfigured();

    ServerConfig cfg;
    std::vector<net::FdGuard> listeners;
    std::vector<net::Address> bound;
    std::vector<std::unique_ptr<Connection>> conns;
    int stopPipe[2] = {-1, -1};
    bool stopping = false;

    mutable std::mutex stateMu;
    std::map<std::uint64_t, Partial> partials;
    bool dirty = false; ///< aggregate changed since last persist
};

} // namespace vp::serve

#endif // VP_SERVE_SERVER_HPP
