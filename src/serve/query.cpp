#include "serve/query.hpp"

#include <algorithm>
#include <cinttypes>
#include <sstream>

#include "core/report.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

/** Parse a full-range unsigned 64-bit value, decimal or 0x hex. */
bool
parseU64(std::string_view s, std::uint64_t &out)
{
    if (s.empty())
        return false;
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
        if (s.empty())
            return false;
    }
    std::uint64_t v = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9')
            digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = c - 'a' + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = c - 'A' + 10;
        else
            return false;
        const std::uint64_t next =
            v * static_cast<unsigned>(base) +
            static_cast<unsigned>(digit);
        if (next / static_cast<unsigned>(base) != v)
            return false; // overflow
        v = next;
    }
    out = v;
    return true;
}

HttpResponse
errorResponse(int status, const std::string &what)
{
    HttpResponse resp;
    resp.status = status;
    resp.contentType = "application/json";
    std::ostringstream os;
    os << "{\"error\":\"" << what << "\"}\n";
    resp.body = os.str();
    return resp;
}

/**
 * The /top ranking metric as an order-preserving u64: execution
 * counts rank directly; Inv-Top is a non-negative double, whose
 * IEEE-754 bit pattern orders the same way the value does — which
 * lets one cursor format cover both axes.
 */
std::uint64_t
rankMetric(const core::EntitySummary &s, bool by_invariance)
{
    if (!by_invariance)
        return s.totalExecutions;
    double inv = s.invTop;
    if (!(inv >= 0.0))
        inv = 0.0; // negatives/NaN cannot occur, but keep bits ordered
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof inv);
    __builtin_memcpy(&bits, &inv, sizeof bits);
    return bits;
}

/** Page-resume position: strictly after (metric desc, key asc). */
struct Cursor
{
    std::uint64_t metric = 0;
    std::uint64_t key = 0;
};

bool
parseCursor(const std::string &text, Cursor &out)
{
    const auto dash = text.find('-');
    if (dash == std::string::npos)
        return false;
    std::uint64_t m = 0, k = 0;
    if (!parseU64("0x" + text.substr(0, dash), m) ||
        !parseU64("0x" + text.substr(dash + 1), k))
        return false;
    out.metric = m;
    out.key = k;
    return true;
}

std::string
formatCursor(std::uint64_t metric, std::uint64_t key)
{
    return vp::format("%016" PRIx64 "-%016" PRIx64, metric, key);
}

void
writeProducerJson(std::ostream &os, const ProducerInfo &p)
{
    os << "{\"id\":" << p.id << ",\"last_seq\":" << p.lastSeq
       << ",\"deltas\":" << p.deltas << ",\"bytes\":" << p.bytes
       << ",\"duplicates\":" << p.duplicates
       << ",\"entities\":" << p.entities << ",\"lag_seconds\":";
    core::writeJsonDouble(os, p.lagSeconds);
    os << "}";
}

/** The server-totals object shared by /stats.json and /watch — the
 *  same numbers the control-protocol QUERY verb reports. */
void
writeServerTotals(std::ostream &os, const ServerView &view)
{
    os << "{\"producers\":" << view.producers.size()
       << ",\"deltas\":" << view.deltasTotal
       << ",\"entities\":" << view.aggregate->size()
       << ",\"dropped_stores\":" << view.aggregate->droppedStores
       << ",\"dropped_loads\":" << view.aggregate->droppedLoads
       << ",\"apply_seq\":" << view.applySeq
       << ",\"ingest_clients\":" << view.ingestClients
       << ",\"http_sessions\":" << view.httpSessions
       << ",\"forwarding\":" << (view.forwarding ? "true" : "false")
       << ",\"forward_acked\":" << view.forwardAcked
       << ",\"forward_spilled\":" << view.forwardSpilled
       << ",\"forward_downstream\":" << view.forwardDownstream
       << ",\"uptime_seconds\":";
    core::writeJsonDouble(os, view.uptimeSeconds);
    os << "}";
}

HttpResponse
handleMetrics(const ServerView &view)
{
    std::ostringstream os;
    vp::stats::global().writeProm(os);

    // Server-level gauges the registry cannot know about.
    os << "# TYPE vp_serve_producers gauge\n"
       << "vp_serve_producers " << view.producers.size() << "\n"
       << "# TYPE vp_serve_entities gauge\n"
       << "vp_serve_entities " << view.aggregate->size() << "\n"
       << "# TYPE vp_serve_apply_seq gauge\n"
       << "vp_serve_apply_seq " << view.applySeq << "\n"
       << "# TYPE vp_serve_ingest_clients gauge\n"
       << "vp_serve_ingest_clients " << view.ingestClients << "\n"
       // The registry's serve.http.sessions is a high-water mark;
       // this is the live session count at scrape time.
       << "# TYPE vp_serve_http_open_sessions gauge\n"
       << "vp_serve_http_open_sessions " << view.httpSessions << "\n"
       << "# TYPE vp_serve_forwarding gauge\n"
       << "vp_serve_forwarding " << (view.forwarding ? 1 : 0) << "\n"
       << "# TYPE vp_serve_forward_acked gauge\n"
       << "vp_serve_forward_acked " << view.forwardAcked << "\n"
       << "# TYPE vp_serve_forward_spilled gauge\n"
       << "vp_serve_forward_spilled " << view.forwardSpilled << "\n"
       << "# TYPE vp_serve_forward_downstream gauge\n"
       << "vp_serve_forward_downstream " << view.forwardDownstream
       << "\n"
       << "# TYPE vp_serve_uptime_seconds gauge\n"
       << "vp_serve_uptime_seconds ";
    core::writeJsonDouble(os, view.uptimeSeconds);
    os << "\n";

    // Per-producer families: one TYPE line, one sample per producer.
    if (!view.producers.empty()) {
        os << "# TYPE vp_producer_last_seq gauge\n";
        for (const auto &p : view.producers)
            os << "vp_producer_last_seq{producer=\"" << p.id << "\"} "
               << p.lastSeq << "\n";
        os << "# TYPE vp_producer_bytes_total counter\n";
        for (const auto &p : view.producers)
            os << "vp_producer_bytes_total{producer=\"" << p.id
               << "\"} " << p.bytes << "\n";
        os << "# TYPE vp_producer_duplicates_total counter\n";
        for (const auto &p : view.producers)
            os << "vp_producer_duplicates_total{producer=\"" << p.id
               << "\"} " << p.duplicates << "\n";
        os << "# TYPE vp_producer_entities gauge\n";
        for (const auto &p : view.producers)
            os << "vp_producer_entities{producer=\"" << p.id << "\"} "
               << p.entities << "\n";
        os << "# TYPE vp_producer_lag_seconds gauge\n";
        for (const auto &p : view.producers) {
            os << "vp_producer_lag_seconds{producer=\"" << p.id
               << "\"} ";
            core::writeJsonDouble(os, p.lagSeconds);
            os << "\n";
        }
    }

    HttpResponse resp;
    resp.contentType = "text/plain; version=0.0.4";
    resp.body = os.str();
    return resp;
}

HttpResponse
handleStatsJson(const ServerView &view)
{
    std::ostringstream os;
    os << "{\"server\":";
    writeServerTotals(os, view);
    os << ",\"stats\":";
    std::ostringstream stats;
    vp::stats::global().writeJson(stats);
    std::string body = stats.str();
    while (!body.empty() &&
           (body.back() == '\n' || body.back() == '\r'))
        body.pop_back();
    os << body << "}\n";

    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
handleTop(const HttpRequest &req, const ServerView &view)
{
    std::int64_t n = 20;
    if (const std::string &raw = req.param("n", ""); !raw.empty()) {
        if (!vp::parseInt(raw, n) || n < 1 || n > 10000)
            return errorResponse(400, "n must be in [1, 10000]");
    }
    const std::string &by = req.param("by", "count");
    if (by != "count" && by != "invariance")
        return errorResponse(400, "by must be count or invariance");
    const bool by_inv = by == "invariance";
    // The delta wire format carries no entity-kind tag yet, so a kind
    // filter cannot be honored. Anything but the do-nothing default is
    // rejected outright — silently returning unfiltered entries to a
    // caller who asked for `kind=load` would be a lie with a 200 on it.
    const std::string &kind = req.param("kind", "any");
    if (kind != "any")
        return errorResponse(400, "kind filtering requires wire v3");

    Cursor cursor;
    bool have_cursor = false;
    if (const std::string &raw = req.param("cursor", "");
        !raw.empty()) {
        if (!parseCursor(raw, cursor))
            return errorResponse(400, "malformed cursor");
        have_cursor = true;
    }

    // One pass over the aggregate: count the entities still ahead of
    // the cursor and keep the best page of them. (metric desc, key
    // asc) is a strict total order, so pages never duplicate or skip
    // entities as long as the aggregate is unchanged between pages —
    // and `seq` tells the client when it was not.
    const auto after_cursor = [&](std::uint64_t metric,
                                  std::uint64_t key) {
        if (!have_cursor)
            return true;
        if (metric != cursor.metric)
            return metric < cursor.metric;
        return key > cursor.key;
    };
    const auto better = [](const std::pair<std::uint64_t,
                                           std::uint64_t> &a,
                           const std::pair<std::uint64_t,
                                           std::uint64_t> &b) {
        if (a.first != b.first)
            return a.first > b.first;
        return a.second < b.second;
    };

    std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked;
    ranked.reserve(view.aggregate->size());
    std::size_t matched = 0;
    for (const auto &[key, summary] : view.aggregate->entities) {
        const std::uint64_t metric = rankMetric(summary, by_inv);
        if (!after_cursor(metric, key))
            continue;
        ++matched;
        ranked.emplace_back(metric, key);
    }
    const std::size_t page =
        std::min(ranked.size(), static_cast<std::size_t>(n));
    std::partial_sort(ranked.begin(), ranked.begin() + page,
                      ranked.end(), better);
    ranked.resize(page);

    std::ostringstream os;
    os << "{\"seq\":" << view.applySeq << ",\"by\":\"" << by
       << "\",\"kind\":\"" << kind
       << "\",\"total\":" << view.aggregate->size()
       << ",\"matched\":" << matched << ",\"returned\":" << page
       << ",\"entries\":[";
    for (std::size_t i = 0; i < ranked.size(); ++i) {
        if (i)
            os << ",";
        const auto it = view.aggregate->entities.find(ranked[i].second);
        core::writeEntityJson(os, it->first, it->second);
    }
    os << "]";
    if (matched > page && page > 0)
        os << ",\"next_cursor\":\""
           << formatCursor(ranked.back().first, ranked.back().second)
           << "\"";
    os << "}\n";

    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
handleEntity(const HttpRequest &req, const ServerView &view)
{
    const std::string id_text =
        req.path.substr(std::string("/entity/").size());
    std::uint64_t key = 0;
    if (!parseU64(id_text, key))
        return errorResponse(400, "entity id must be decimal or 0x hex");
    const auto it = view.aggregate->entities.find(key);
    if (it == view.aggregate->entities.end())
        return errorResponse(404, "no such entity");

    std::ostringstream os;
    os << "{\"seq\":" << view.applySeq << ",\"entity\":";
    core::writeEntityJson(os, it->first, it->second);
    os << "}\n";

    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
handleProducers(const ServerView &view)
{
    std::ostringstream os;
    os << "{\"seq\":" << view.applySeq << ",\"producers\":[";
    for (std::size_t i = 0; i < view.producers.size(); ++i) {
        if (i)
            os << ",";
        writeProducerJson(os, view.producers[i]);
    }
    os << "]}\n";

    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

HttpResponse
handleIndex(const ServerView &view)
{
    std::ostringstream os;
    os << "vpd query & metrics plane (apply_seq "
       << view.applySeq << ")\n"
       << "  GET /metrics       Prometheus text exposition\n"
       << "  GET /stats.json    stats registry + server totals\n"
       << "  GET /top?n=&by=count|invariance[&cursor=]  ranked entities\n"
       << "  GET /entity/{id}   one entity, full TNV rendering\n"
       << "  GET /producers     per-producer ingest health\n"
       << "  GET /watch?since=  long-poll for change\n";
    HttpResponse resp;
    resp.contentType = "text/plain";
    resp.body = os.str();
    return resp;
}

} // namespace

HttpResponse
handleQuery(const HttpRequest &req, const ServerView &view)
{
    if (req.method != "GET" && req.method != "HEAD")
        return errorResponse(405, "only GET and HEAD are supported");

    if (req.path == "/metrics")
        return handleMetrics(view);
    if (req.path == "/stats.json")
        return handleStatsJson(view);
    if (req.path == "/top")
        return handleTop(req, view);
    if (req.path.rfind("/entity/", 0) == 0)
        return handleEntity(req, view);
    if (req.path == "/producers")
        return handleProducers(view);
    if (req.path == "/")
        return handleIndex(view);
    return errorResponse(404, "unknown path");
}

bool
parseWatchSince(const HttpRequest &req, std::uint64_t current_seq,
                std::uint64_t &since, HttpResponse &error_resp)
{
    since = current_seq;
    if (const std::string &raw = req.param("since", "");
        !raw.empty()) {
        if (!parseU64(raw, since)) {
            error_resp =
                errorResponse(400, "since must be a sequence number");
            return false;
        }
    }
    return true;
}

HttpResponse
renderWatch(const ServerView &view, std::uint64_t since)
{
    std::ostringstream os;
    os << "{\"seq\":" << view.applySeq << ",\"since\":" << since
       << ",\"changed\":"
       << (view.applySeq > since ? "true" : "false") << ",\"server\":";
    writeServerTotals(os, view);
    os << ",\"producers\":[";
    for (std::size_t i = 0; i < view.producers.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"id\":" << view.producers[i].id << ",\"last_seq\":"
           << view.producers[i].lastSeq << "}";
    }
    os << "]}\n";

    HttpResponse resp;
    resp.body = os.str();
    return resp;
}

} // namespace vp::serve
