/**
 * @file
 * Minimal event-driven HTTP/1.1 for the vpd query & metrics plane
 * (pazpar2-style: many keep-alive client sessions multiplexed on the
 * daemon's single poll(2) loop, zero threads).
 *
 * Scope is deliberately narrow — exactly what an observability plane
 * needs and nothing more:
 *
 *  - GET and HEAD only; requests with bodies are rejected (411/400).
 *  - Incremental request parsing: bytes arrive in arbitrary slices
 *    (the tests feed one byte at a time); a request head larger than
 *    HttpConfig::maxHeaderBytes is answered 431 and the session
 *    closed; a session that dribbles its head slower than
 *    headerTimeoutMs is answered 408 and closed (slowloris defense).
 *  - Keep-alive by default for HTTP/1.1, honored `Connection:` for
 *    both versions, pipelining supported (the parser yields queued
 *    requests in order).
 *  - Responses carry Content-Length, or Transfer-Encoding: chunked
 *    once the body crosses HttpConfig::chunkThreshold on an HTTP/1.1
 *    session — large /top pages stream without a copy of the whole
 *    rendering being pinned per client.
 *
 * The parser and serializer here are pure (no sockets, no clocks), so
 * they are unit-testable byte-for-byte; session lifecycle (timeouts,
 * parking for /watch, flow control) lives with the poll loop in
 * serve/server.cpp.
 */

#ifndef VP_SERVE_HTTP_HPP
#define VP_SERVE_HTTP_HPP

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace vp::serve
{

/** Tunables of the HTTP plane (defaults suit production; tests
 *  shrink the timeouts to milliseconds). */
struct HttpConfig
{
    /** Cap on one request head (request line + headers); beyond it
     *  the request is answered 431 and the session closed. */
    std::size_t maxHeaderBytes = 8 * 1024;
    /** A partial request head must complete within this window or the
     *  session is answered 408 and closed — the slowloris defense. */
    int headerTimeoutMs = 5000;
    /** Idle keep-alive sessions are closed after this long. */
    int keepAliveTimeoutMs = 30000;
    /** A parked `GET /watch` long-poll is answered (unchanged) after
     *  this long, so clients can re-arm and dead peers get flushed. */
    int watchTimeoutMs = 30000;
    /** Bodies at least this large stream as chunked transfer coding
     *  (HTTP/1.1 requests only; 1.0 always gets Content-Length). */
    std::size_t chunkThreshold = 64 * 1024;
    /** Chunk size used when streaming chunked bodies. */
    std::size_t chunkBytes = 32 * 1024;
    /** Session cap; accepts beyond it are answered 503 and closed. */
    std::size_t maxSessions = 1024;
};

/** One parsed request. */
struct HttpRequest
{
    std::string method; ///< uppercase ("GET", "HEAD", ...)
    std::string target; ///< raw request target ("/top?n=5")
    std::string path;   ///< percent-decoded path, query stripped
    /** Percent-decoded query parameters, last occurrence wins. */
    std::map<std::string, std::string> query;
    /** Header fields, keys lowercased, values trimmed. */
    std::map<std::string, std::string> headers;
    int minorVersion = 1;  ///< HTTP/1.<minorVersion>
    bool keepAlive = true; ///< after Connection: handling

    /**
     * Query parameter lookup with a default. Returns by value: the
     * fallback is usually a temporary at the call site, so returning
     * a reference would dangle once the full expression ends.
     */
    std::string param(const std::string &key,
                      const std::string &fallback) const
    {
        auto it = query.find(key);
        return it == query.end() ? fallback : it->second;
    }
};

/** Outcome of HttpRequestParser::next(). */
enum class HttpParseStatus
{
    Ok,        ///< one request parsed and consumed
    NeedMore,  ///< buffer holds only a partial request head
    TooLarge,  ///< head exceeds maxHeaderBytes — answer 431, close
    Malformed, ///< not HTTP — answer 400 (or 411/405), close
};

/**
 * Incremental request parser for one session's byte stream. Feed
 * whatever recv(2) produced with append(); drain complete requests
 * with next() (several, when the client pipelined). After Malformed
 * or TooLarge the stream is dead — every later next() repeats the
 * verdict.
 */
class HttpRequestParser
{
  public:
    explicit HttpRequestParser(std::size_t max_header_bytes = 8 * 1024)
        : maxHeader(max_header_bytes)
    {}

    /** Append raw bytes received from the peer. */
    void append(const std::uint8_t *data, std::size_t len);

    /**
     * Extract the next complete request. On Malformed, `error` holds
     * a diagnosis suitable for the 400 body.
     */
    HttpParseStatus next(HttpRequest &out, std::string &error);

    /** Bytes buffered but not yet consumed by a parsed request. */
    std::size_t pending() const { return buf.size() - start; }

    /**
     * True while the buffer holds the beginning of a request whose
     * head has not completed yet — the state the slowloris timer
     * (HttpConfig::headerTimeoutMs) runs against.
     */
    bool midRequest() const { return pending() > 0 && !deadVerdict; }

  private:
    std::string buf;
    std::size_t start = 0; ///< consumed-up-to offset into buf
    std::size_t maxHeader;
    bool deadVerdict = false; ///< Malformed/TooLarge is sticky
    HttpParseStatus verdict = HttpParseStatus::NeedMore;
    std::string verdictError;
};

/** One response to serialize. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "application/json";
    std::string body;
    /** Force Connection: close regardless of the request. */
    bool closeConnection = false;
};

/** Canonical reason phrase ("OK", "Not Found", ...). */
const char *httpStatusReason(int status);

/**
 * Serialize a response to wire bytes, honoring the request's version
 * and method (HEAD gets headers only), keep-alive negotiation, and
 * the chunked-streaming threshold. @return the exact bytes to queue.
 */
std::vector<std::uint8_t> serializeHttpResponse(
    const HttpRequest &req, const HttpResponse &resp,
    const HttpConfig &cfg);

/**
 * Decode %XX escapes (and '+' as space when `plusIsSpace`).
 * @return false on a truncated or non-hex escape.
 */
bool percentDecode(std::string_view in, std::string &out,
                   bool plusIsSpace = false);

} // namespace vp::serve

#endif // VP_SERVE_HTTP_HPP
