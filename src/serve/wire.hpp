/**
 * @file
 * The vpd delta wire format (versions 1 and 2).
 *
 * Every message on a vpd connection is one length-prefixed, CRC-framed
 * binary frame:
 *
 *   offset size field
 *   0      4    magic "VPDF"
 *   4      2    version (little-endian u16, 1 or 2)
 *   6      1    message type (MsgType)
 *   7      1    flags (reserved, must be 0)
 *   8      4    payload length (little-endian u32)
 *   12     4    CRC-32 (IEEE) over bytes [0,12) and the payload
 *   16     n    payload
 *
 * Integers are little-endian; doubles travel as their IEEE-754 bit
 * pattern, so an encode/decode round trip is bit-exact — the property
 * the serve differential checker's byte-identical comparison rests on.
 *
 * tryDecode is strict by contract: a frame with a bad magic, unknown
 * version or type, nonzero flags, implausible length, or mismatching
 * CRC is Corrupt, never silently skipped or partially applied. A
 * prefix of a valid frame is NeedMore so stream readers can buffer.
 * The wire fuzz test mutates every byte of valid frames (both
 * versions) and asserts none of them decodes (the CRC covers header
 * and payload, so any single-byte corruption is detected). A version-2
 * snapshot-bearing frame is additionally scanned before it is
 * surfaced: a compressed payload that would inflate past
 * kMaxInflatedPayload v1-equivalent bytes is Corrupt — the
 * decompression-bomb guard.
 *
 * Payloads:
 *   Delta         v1: producerId u64, seq u64, v1 snapshot payload
 *                 v2: producerId varint, seq varint, entity block
 *   Hello         UTF-8 text: "forwarder <id>\npath <id>,<id>,...\n" —
 *                 a forwarding daemon announces itself and the set of
 *                 daemon ids at or below it, so the receiver can
 *                 reject forwarding loops and treat the connection's
 *                 deltas as forwarded partials (replace semantics)
 *   Ack           seq u64 (highest contiguously applied delta)
 *   SnapshotReply v1: v1 snapshot payload; v2: entity block
 *   QueryReply    UTF-8 text (key value lines)
 *   Error         UTF-8 text diagnosis
 *   Query/Snapshot/Flush/Shutdown have empty payloads.
 *
 * A v1 "snapshot payload" serializes a core::ProfileSnapshot
 * fixed-width: entityCount u32, then per entity: key u64,
 * totalExecutions u64, profiledExecutions u64, distinct u64,
 * invTop/invAll/lvp/zeroFraction f64-bits, topCount u32, topCount *
 * (value u64, count u64). It predates the snapshot dropped-access
 * counters and cannot carry them.
 *
 * A v2 "entity block" is the compressed encoding shared with the v2
 * snapshot file format — see core/profile_codec.hpp. It is both
 * smaller (varint/delta coding, constant- and run-compressed record
 * kinds) and richer (dropped-access counters ride along).
 *
 * Version negotiation is per-frame and implicit: both versions are
 * always accepted, every reply is encoded in the version of the
 * request frame it answers, and encoders default to kWireVersion.
 */

#ifndef VP_SERVE_WIRE_HPP
#define VP_SERVE_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"

namespace vp::serve
{

/** Newest protocol version this build speaks (and the encode default). */
constexpr std::uint16_t kWireVersion = 2;

/** Oldest protocol version still decoded. */
constexpr std::uint16_t kMinWireVersion = 1;

/** Frame header size in bytes. */
constexpr std::size_t kHeaderSize = 16;

/** Upper bound on a sane payload (rejects garbage length fields). */
constexpr std::uint32_t kMaxPayload = 64u << 20;

/**
 * Upper bound on what a compressed (v2) snapshot-bearing payload may
 * inflate to, measured in v1 fixed-width bytes (~84 bytes per
 * constant entity, so roughly 6M entities per frame). tryDecode
 * rejects bigger blocks as Corrupt before any allocation happens —
 * the decompression-bomb guard.
 */
constexpr std::uint64_t kMaxInflatedPayload = 512u << 20;

/** Message types (wire byte values are part of the format). */
enum class MsgType : std::uint8_t
{
    Delta = 1,         ///< client -> daemon: a batch of entity deltas
    Ack = 2,           ///< daemon -> client: highest applied delta seq
    Query = 3,         ///< client -> daemon: text status request
    QueryReply = 4,    ///< daemon -> client
    Snapshot = 5,      ///< client -> daemon: send me the aggregate
    SnapshotReply = 6, ///< daemon -> client
    Flush = 7,         ///< client -> daemon: persist the aggregate now
    Shutdown = 8,      ///< client -> daemon: persist and exit
    Error = 9,         ///< daemon -> client: request failed, text says why
    Hello = 10,        ///< forwarder -> daemon: downstream-tree announce
};

/** True if `t` is a known MsgType wire value. */
bool knownMsgType(std::uint8_t t);

/** Human-readable message-type name (for diagnostics). */
const char *msgTypeName(MsgType t);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    /** The frame's wire version — payload decoders dispatch on it,
     *  and the daemon answers each request in the version it came
     *  in, so v1 peers keep working against a v2 daemon. */
    std::uint16_t version = kWireVersion;
    std::vector<std::uint8_t> payload;
};

/** Outcome of tryDecode on a byte buffer. */
enum class DecodeStatus
{
    Ok,       ///< one frame decoded, `consumed` bytes eaten
    NeedMore, ///< the buffer holds only a prefix of a valid frame
    Corrupt,  ///< the buffer can never become a valid frame
};

/** CRC-32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Encode a frame around an already-built payload. */
std::vector<std::uint8_t> encodeFrame(
    MsgType type, const std::vector<std::uint8_t> &payload,
    std::uint16_t version = kWireVersion);

/**
 * Strictly decode one frame from the front of [data, data+len).
 * On Ok, `out` holds the frame and `consumed` the bytes eaten; on
 * NeedMore/Corrupt both are untouched except `error` (Corrupt only).
 */
DecodeStatus tryDecode(const std::uint8_t *data, std::size_t len,
                       Frame &out, std::size_t &consumed,
                       std::string &error);

/** Incremental frame reader for a stream of bytes. */
class FrameReader
{
  public:
    /** Append raw bytes received from the peer. */
    void append(const std::uint8_t *data, std::size_t len);

    /**
     * Extract the next complete frame. Returns Ok with the frame,
     * NeedMore when the buffer holds no complete frame yet, or
     * Corrupt (with a diagnosis) — after which the stream is dead:
     * every subsequent call returns Corrupt.
     */
    DecodeStatus next(Frame &out, std::string &error);

    /** Bytes buffered but not yet decoded. */
    std::size_t pending() const { return buf.size() - start; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t start = 0; ///< decoded-up-to offset into buf
    bool dead = false;
    std::string deadReason;
};

// --- payload codecs ---------------------------------------------------

/** Serialize a snapshot into `out` (appends), v1 fixed-width form. */
void encodeSnapshotPayload(const core::ProfileSnapshot &snap,
                           std::vector<std::uint8_t> &out);

/**
 * Decode a v1 snapshot payload region [*pos, len). Advances *pos past
 * the snapshot. @return false with a diagnosis on malformed input.
 */
bool decodeSnapshotPayload(const std::uint8_t *data, std::size_t len,
                           std::size_t *pos, core::ProfileSnapshot &out,
                           std::string &error);

/** A decoded Delta frame body. */
struct Delta
{
    std::uint64_t producerId = 0;
    /** Per-producer sequence number, 1-based and strictly increasing;
     *  the daemon applies each seq at most once (resend-safe). */
    std::uint64_t seq = 0;
    core::ProfileSnapshot entities;
};

/** Build a Delta frame in the given wire version. */
std::vector<std::uint8_t> encodeDelta(
    const Delta &delta, std::uint16_t version = kWireVersion);

/** Decode a Delta frame (dispatches on frame.version).
 *  @return false with a diagnosis. */
bool decodeDelta(const Frame &frame, Delta &out, std::string &error);

/** Build an Ack frame for `seq`. */
std::vector<std::uint8_t> encodeAck(
    std::uint64_t seq, std::uint16_t version = kWireVersion);

/** Decode an Ack payload. */
bool decodeAck(const std::vector<std::uint8_t> &payload,
               std::uint64_t &seq, std::string &error);

/** Build a SnapshotReply frame in the given wire version. */
std::vector<std::uint8_t> encodeSnapshotReply(
    const core::ProfileSnapshot &snap,
    std::uint16_t version = kWireVersion);

/** Decode a SnapshotReply frame (dispatches on frame.version). */
bool decodeSnapshotReply(const Frame &frame,
                         core::ProfileSnapshot &out, std::string &error);

/** Build a text-payload frame (QueryReply or Error). */
std::vector<std::uint8_t> encodeText(
    MsgType type, const std::string &text,
    std::uint16_t version = kWireVersion);

/** Interpret a payload as UTF-8 text (QueryReply/Error). */
std::string payloadText(const std::vector<std::uint8_t> &payload);

/** Build an empty-payload frame (Query/Snapshot/Flush/Shutdown). */
std::vector<std::uint8_t> encodeEmpty(
    MsgType type, std::uint16_t version = kWireVersion);

/**
 * Build a Hello frame: `forwarder` is the sending daemon's id, `path`
 * the ids of every daemon at or below it in the aggregation tree
 * (itself included). A receiver that finds its own id in `path` is
 * part of a forwarding cycle and must reject the connection.
 */
std::vector<std::uint8_t> encodeHello(
    std::uint64_t forwarder, const std::vector<std::uint64_t> &path,
    std::uint16_t version = kWireVersion);

/** Decode a Hello payload. @return false with a diagnosis. */
bool decodeHello(const std::vector<std::uint8_t> &payload,
                 std::uint64_t &forwarder,
                 std::vector<std::uint64_t> &path, std::string &error);

} // namespace vp::serve

#endif // VP_SERVE_WIRE_HPP
