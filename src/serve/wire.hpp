/**
 * @file
 * The vpd delta wire format (version 1).
 *
 * Every message on a vpd connection is one length-prefixed, CRC-framed
 * binary frame:
 *
 *   offset size field
 *   0      4    magic "VPDF"
 *   4      2    version (little-endian u16, currently 1)
 *   6      1    message type (MsgType)
 *   7      1    flags (reserved, must be 0)
 *   8      4    payload length (little-endian u32)
 *   12     4    CRC-32 (IEEE) over bytes [0,12) and the payload
 *   16     n    payload
 *
 * Integers are little-endian; doubles travel as their IEEE-754 bit
 * pattern, so an encode/decode round trip is bit-exact — the property
 * the serve differential checker's byte-identical comparison rests on.
 *
 * tryDecode is strict by contract: a frame with a bad magic, unknown
 * version or type, nonzero flags, implausible length, or mismatching
 * CRC is Corrupt, never silently skipped or partially applied. A
 * prefix of a valid frame is NeedMore so stream readers can buffer.
 * The wire fuzz test mutates every byte of valid frames and asserts
 * none of them decodes (the CRC covers header and payload, so any
 * single-byte corruption is detected).
 *
 * Payloads:
 *   Delta         producerId u64, seq u64, snapshot payload
 *   Ack           seq u64 (highest contiguously applied delta)
 *   SnapshotReply snapshot payload (the daemon's current aggregate)
 *   QueryReply    UTF-8 text (key value lines)
 *   Error         UTF-8 text diagnosis
 *   Query/Snapshot/Flush/Shutdown have empty payloads.
 *
 * A "snapshot payload" serializes a core::ProfileSnapshot:
 *   entityCount u32, then per entity: key u64, totalExecutions u64,
 *   profiledExecutions u64, distinct u64, invTop/invAll/lvp/
 *   zeroFraction f64-bits, topCount u32, topCount * (value u64,
 *   count u64).
 */

#ifndef VP_SERVE_WIRE_HPP
#define VP_SERVE_WIRE_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/snapshot.hpp"

namespace vp::serve
{

/** Protocol version this build speaks. */
constexpr std::uint16_t kWireVersion = 1;

/** Frame header size in bytes. */
constexpr std::size_t kHeaderSize = 16;

/** Upper bound on a sane payload (rejects garbage length fields). */
constexpr std::uint32_t kMaxPayload = 64u << 20;

/** Message types (wire byte values are part of the format). */
enum class MsgType : std::uint8_t
{
    Delta = 1,         ///< client -> daemon: a batch of entity deltas
    Ack = 2,           ///< daemon -> client: highest applied delta seq
    Query = 3,         ///< client -> daemon: text status request
    QueryReply = 4,    ///< daemon -> client
    Snapshot = 5,      ///< client -> daemon: send me the aggregate
    SnapshotReply = 6, ///< daemon -> client
    Flush = 7,         ///< client -> daemon: persist the aggregate now
    Shutdown = 8,      ///< client -> daemon: persist and exit
    Error = 9,         ///< daemon -> client: request failed, text says why
};

/** True if `t` is a known MsgType wire value. */
bool knownMsgType(std::uint8_t t);

/** Human-readable message-type name (for diagnostics). */
const char *msgTypeName(MsgType t);

/** One decoded frame. */
struct Frame
{
    MsgType type = MsgType::Error;
    std::vector<std::uint8_t> payload;
};

/** Outcome of tryDecode on a byte buffer. */
enum class DecodeStatus
{
    Ok,       ///< one frame decoded, `consumed` bytes eaten
    NeedMore, ///< the buffer holds only a prefix of a valid frame
    Corrupt,  ///< the buffer can never become a valid frame
};

/** CRC-32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t *data, std::size_t len,
                    std::uint32_t seed = 0);

/** Encode a frame around an already-built payload. */
std::vector<std::uint8_t> encodeFrame(
    MsgType type, const std::vector<std::uint8_t> &payload);

/**
 * Strictly decode one frame from the front of [data, data+len).
 * On Ok, `out` holds the frame and `consumed` the bytes eaten; on
 * NeedMore/Corrupt both are untouched except `error` (Corrupt only).
 */
DecodeStatus tryDecode(const std::uint8_t *data, std::size_t len,
                       Frame &out, std::size_t &consumed,
                       std::string &error);

/** Incremental frame reader for a stream of bytes. */
class FrameReader
{
  public:
    /** Append raw bytes received from the peer. */
    void append(const std::uint8_t *data, std::size_t len);

    /**
     * Extract the next complete frame. Returns Ok with the frame,
     * NeedMore when the buffer holds no complete frame yet, or
     * Corrupt (with a diagnosis) — after which the stream is dead:
     * every subsequent call returns Corrupt.
     */
    DecodeStatus next(Frame &out, std::string &error);

    /** Bytes buffered but not yet decoded. */
    std::size_t pending() const { return buf.size() - start; }

  private:
    std::vector<std::uint8_t> buf;
    std::size_t start = 0; ///< decoded-up-to offset into buf
    bool dead = false;
    std::string deadReason;
};

// --- payload codecs ---------------------------------------------------

/** Serialize a snapshot into `out` (appends). */
void encodeSnapshotPayload(const core::ProfileSnapshot &snap,
                           std::vector<std::uint8_t> &out);

/**
 * Decode a snapshot payload region [*pos, len). Advances *pos past the
 * snapshot. @return false with a diagnosis on malformed input.
 */
bool decodeSnapshotPayload(const std::uint8_t *data, std::size_t len,
                           std::size_t *pos, core::ProfileSnapshot &out,
                           std::string &error);

/** A decoded Delta frame body. */
struct Delta
{
    std::uint64_t producerId = 0;
    /** Per-producer sequence number, 1-based and strictly increasing;
     *  the daemon applies each seq at most once (resend-safe). */
    std::uint64_t seq = 0;
    core::ProfileSnapshot entities;
};

/** Build a Delta frame. */
std::vector<std::uint8_t> encodeDelta(const Delta &delta);

/** Decode a Delta payload. @return false with a diagnosis. */
bool decodeDelta(const std::vector<std::uint8_t> &payload, Delta &out,
                 std::string &error);

/** Build an Ack frame for `seq`. */
std::vector<std::uint8_t> encodeAck(std::uint64_t seq);

/** Decode an Ack payload. */
bool decodeAck(const std::vector<std::uint8_t> &payload,
               std::uint64_t &seq, std::string &error);

/** Build a SnapshotReply frame. */
std::vector<std::uint8_t> encodeSnapshotReply(
    const core::ProfileSnapshot &snap);

/** Decode a SnapshotReply payload. */
bool decodeSnapshotReply(const std::vector<std::uint8_t> &payload,
                         core::ProfileSnapshot &out, std::string &error);

/** Build a text-payload frame (QueryReply or Error). */
std::vector<std::uint8_t> encodeText(MsgType type,
                                     const std::string &text);

/** Interpret a payload as UTF-8 text (QueryReply/Error). */
std::string payloadText(const std::vector<std::uint8_t> &payload);

/** Build an empty-payload frame (Query/Snapshot/Flush/Shutdown). */
std::vector<std::uint8_t> encodeEmpty(MsgType type);

} // namespace vp::serve

#endif // VP_SERVE_WIRE_HPP
