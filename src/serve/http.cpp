#include "serve/http.hpp"

#include <algorithm>
#include <cctype>

#include "support/strings.hpp"

namespace vp::serve
{

namespace
{

std::string
toLower(std::string_view s)
{
    std::string out(s);
    std::transform(out.begin(), out.end(), out.begin(), [](char c) {
        return static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
    });
    return out;
}

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

/** Split "a=1&b=2" into decoded key/value pairs. */
void
parseQueryString(std::string_view qs,
                 std::map<std::string, std::string> &out)
{
    for (std::string_view pair : vp::split(qs, '&')) {
        if (pair.empty())
            continue;
        const auto eq = pair.find('=');
        std::string key, value;
        if (!percentDecode(pair.substr(0, eq), key, true))
            continue; // a bad escape drops the pair, not the request
        if (eq != std::string_view::npos &&
            !percentDecode(pair.substr(eq + 1), value, true))
            continue;
        out[key] = value;
    }
}

} // namespace

bool
percentDecode(std::string_view in, std::string &out, bool plusIsSpace)
{
    out.clear();
    out.reserve(in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        const char c = in[i];
        if (c == '%') {
            if (i + 2 >= in.size())
                return false;
            const int hi = hexDigit(in[i + 1]);
            const int lo = hexDigit(in[i + 2]);
            if (hi < 0 || lo < 0)
                return false;
            out += static_cast<char>((hi << 4) | lo);
            i += 2;
        } else if (c == '+' && plusIsSpace) {
            out += ' ';
        } else {
            out += c;
        }
    }
    return true;
}

void
HttpRequestParser::append(const std::uint8_t *data, std::size_t len)
{
    buf.append(reinterpret_cast<const char *>(data), len);
    // Periodically drop the consumed prefix so a chatty keep-alive
    // session does not grow the buffer without bound.
    if (start > 4096 && start > buf.size() / 2) {
        buf.erase(0, start);
        start = 0;
    }
}

HttpParseStatus
HttpRequestParser::next(HttpRequest &out, std::string &error)
{
    if (deadVerdict) {
        error = verdictError;
        return verdict;
    }
    auto fail = [&](HttpParseStatus st, std::string why) {
        deadVerdict = true;
        verdict = st;
        verdictError = std::move(why);
        error = verdictError;
        return st;
    };

    const std::string_view view =
        std::string_view(buf).substr(start);
    if (view.empty())
        return HttpParseStatus::NeedMore;

    // Find the end of the request head: CRLFCRLF (or bare LFLF —
    // tolerated the way most servers do).
    std::size_t head_end = std::string_view::npos;
    std::size_t body_off = 0;
    const auto p_crlf = view.find("\r\n\r\n");
    const auto p_lf = view.find("\n\n");
    if (p_lf != std::string_view::npos &&
        (p_crlf == std::string_view::npos || p_lf < p_crlf)) {
        head_end = p_lf;
        body_off = p_lf + 2;
    } else if (p_crlf != std::string_view::npos) {
        head_end = p_crlf;
        body_off = p_crlf + 4;
    }
    if (head_end == std::string_view::npos) {
        if (view.size() > maxHeader)
            return fail(HttpParseStatus::TooLarge,
                        "request head exceeds the header cap");
        return HttpParseStatus::NeedMore;
    }
    if (head_end > maxHeader)
        return fail(HttpParseStatus::TooLarge,
                    "request head exceeds the header cap");

    const std::string_view head = view.substr(0, head_end);
    HttpRequest req;

    // --- request line --------------------------------------------------
    const auto line_end = head.find('\n');
    std::string_view request_line =
        vp::trim(head.substr(0, line_end));
    const auto words = vp::splitWhitespace(request_line);
    if (words.size() != 3)
        return fail(HttpParseStatus::Malformed,
                    "malformed request line");
    req.method = std::string(words[0]);
    req.target = std::string(words[1]);
    const std::string_view version = words[2];
    if (version == "HTTP/1.1") {
        req.minorVersion = 1;
    } else if (version == "HTTP/1.0") {
        req.minorVersion = 0;
    } else {
        return fail(HttpParseStatus::Malformed,
                    "unsupported HTTP version");
    }
    if (req.target.empty() || req.target[0] != '/')
        return fail(HttpParseStatus::Malformed,
                    "request target must be an absolute path");

    // --- header fields -------------------------------------------------
    std::string_view rest =
        line_end == std::string_view::npos ? std::string_view{}
                                           : head.substr(line_end + 1);
    while (!rest.empty()) {
        const auto nl = rest.find('\n');
        const std::string_view raw =
            nl == std::string_view::npos ? rest : rest.substr(0, nl);
        rest = nl == std::string_view::npos ? std::string_view{}
                                            : rest.substr(nl + 1);
        const std::string_view line = vp::trim(raw);
        if (line.empty())
            continue;
        const auto colon = line.find(':');
        if (colon == std::string_view::npos)
            return fail(HttpParseStatus::Malformed,
                        "header field without a colon");
        req.headers[toLower(vp::trim(line.substr(0, colon)))] =
            std::string(vp::trim(line.substr(colon + 1)));
    }

    // --- bodies are rejected (this is a GET-only query plane) ---------
    if (req.headers.count("transfer-encoding"))
        return fail(HttpParseStatus::Malformed,
                    "request bodies are not accepted");
    if (const auto it = req.headers.find("content-length");
        it != req.headers.end()) {
        std::int64_t n = 0;
        if (!vp::parseInt(it->second, n) || n != 0)
            return fail(HttpParseStatus::Malformed,
                        "request bodies are not accepted");
    }

    // --- keep-alive negotiation ---------------------------------------
    req.keepAlive = req.minorVersion >= 1;
    if (const auto it = req.headers.find("connection");
        it != req.headers.end()) {
        const std::string conn = toLower(it->second);
        if (conn.find("close") != std::string::npos)
            req.keepAlive = false;
        else if (conn.find("keep-alive") != std::string::npos)
            req.keepAlive = true;
    }

    // --- split the target into path + query ---------------------------
    const std::string_view target = req.target;
    const auto qmark = target.find('?');
    if (!percentDecode(target.substr(0, qmark), req.path))
        return fail(HttpParseStatus::Malformed,
                    "bad percent-escape in request path");
    if (qmark != std::string_view::npos)
        parseQueryString(target.substr(qmark + 1), req.query);

    start += body_off;
    out = std::move(req);
    return HttpParseStatus::Ok;
}

const char *
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 204: return "No Content";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Unknown";
    }
}

std::vector<std::uint8_t>
serializeHttpResponse(const HttpRequest &req, const HttpResponse &resp,
                      const HttpConfig &cfg)
{
    const bool head_only = req.method == "HEAD";
    const bool keep_alive = req.keepAlive && !resp.closeConnection;
    const bool chunked = !head_only && req.minorVersion >= 1 &&
                         resp.body.size() >= cfg.chunkThreshold;

    std::string out;
    out.reserve(resp.body.size() + 256);
    out += vp::format("HTTP/1.%d %d %s\r\n", req.minorVersion,
                      resp.status, httpStatusReason(resp.status));
    out += "Content-Type: " + resp.contentType + "\r\n";
    out += "Cache-Control: no-store\r\n";
    out += keep_alive ? "Connection: keep-alive\r\n"
                      : "Connection: close\r\n";
    if (chunked) {
        out += "Transfer-Encoding: chunked\r\n\r\n";
        std::size_t pos = 0;
        while (pos < resp.body.size()) {
            const std::size_t n = std::min(
                cfg.chunkBytes == 0 ? resp.body.size() - pos
                                    : cfg.chunkBytes,
                resp.body.size() - pos);
            out += vp::format("%zx\r\n", n);
            out.append(resp.body, pos, n);
            out += "\r\n";
            pos += n;
        }
        out += "0\r\n\r\n";
    } else {
        out += vp::format("Content-Length: %zu\r\n\r\n",
                          resp.body.size());
        if (!head_only)
            out += resp.body;
    }
    return std::vector<std::uint8_t>(out.begin(), out.end());
}

} // namespace vp::serve
