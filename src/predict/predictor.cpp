#include "predict/predictor.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace predict
{

void
ValuePredictor::see(std::uint32_t pc, std::uint64_t actual)
{
    ++statsData.executions;
    std::uint64_t guess = 0;
    if (predict(pc, guess)) {
        ++statsData.predictions;
        if (guess == actual)
            ++statsData.correct;
    }
    update(pc, actual);
}

namespace
{

/** Hash a pc into a table index. */
inline std::size_t
tableIndex(std::uint32_t pc, unsigned bits)
{
    const std::uint64_t h =
        static_cast<std::uint64_t>(pc) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> (64 - bits));
}

// ---------------------------------------------------------------------
// Last-value predictor
// ---------------------------------------------------------------------

class LastValuePredictor final : public ValuePredictor
{
  public:
    explicit LastValuePredictor(const LvpConfig &config) : cfg(config)
    {
        entries.resize(std::size_t(1) << cfg.table.indexBits);
    }

    std::string name() const override { return "lvp"; }

    bool
    predict(std::uint32_t pc, std::uint64_t &prediction) override
    {
        const Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        if (!e.valid || (cfg.table.tagged && e.tag != pc))
            return false;
        if (cfg.confidenceBits && e.confidence < cfg.confidenceThreshold)
            return false;
        prediction = e.value;
        return true;
    }

    void
    update(std::uint32_t pc, std::uint64_t actual) override
    {
        Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        const bool owner = e.valid && (!cfg.table.tagged || e.tag == pc);
        if (!owner) {
            if (e.valid)
                VP_STAT_INC(vp::stats::Cid::PredictTagEvictions);
            e = Entry{true, pc, actual, 0};
            return;
        }
        const unsigned max_conf = (1u << cfg.confidenceBits) - 1;
        if (e.value == actual) {
            e.confidence = std::min(e.confidence + 1, max_conf);
        } else {
            e.value = actual;
            e.confidence = e.confidence ? e.confidence - 1 : 0;
        }
    }

    void
    reset() override
    {
        std::fill(entries.begin(), entries.end(), Entry{});
        statsData = {};
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t value = 0;
        unsigned confidence = 0;
    };

    LvpConfig cfg;
    std::vector<Entry> entries;
};

// ---------------------------------------------------------------------
// Stride predictor (two-delta)
// ---------------------------------------------------------------------

class StridePredictor final : public ValuePredictor
{
  public:
    explicit StridePredictor(const StrideConfig &config) : cfg(config)
    {
        entries.resize(std::size_t(1) << cfg.table.indexBits);
    }

    std::string name() const override { return "stride"; }

    bool
    predict(std::uint32_t pc, std::uint64_t &prediction) override
    {
        const Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        if (!e.valid || (cfg.table.tagged && e.tag != pc))
            return false;
        if (!e.steady)
            return false;
        prediction = e.last + static_cast<std::uint64_t>(e.stride);
        return true;
    }

    void
    update(std::uint32_t pc, std::uint64_t actual) override
    {
        Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        const bool owner = e.valid && (!cfg.table.tagged || e.tag == pc);
        if (!owner) {
            if (e.valid)
                VP_STAT_INC(vp::stats::Cid::PredictTagEvictions);
            e = Entry{true, pc, actual, 0, false, false};
            return;
        }
        const auto new_stride = static_cast<std::int64_t>(actual - e.last);
        if (e.haveStride && new_stride == e.stride) {
            // Two-delta: a stride confirmed twice becomes steady.
            e.steady = true;
        } else {
            e.steady = false;
        }
        e.stride = new_stride;
        e.haveStride = true;
        e.last = actual;
    }

    void
    reset() override
    {
        std::fill(entries.begin(), entries.end(), Entry{});
        statsData = {};
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint64_t last = 0;
        std::int64_t stride = 0;
        bool haveStride = false;
        bool steady = false;
    };

    StrideConfig cfg;
    std::vector<Entry> entries;
};

// ---------------------------------------------------------------------
// Two-level context predictor (Wang & Franklin style)
// ---------------------------------------------------------------------

class TwoLevelPredictor final : public ValuePredictor
{
  public:
    explicit TwoLevelPredictor(const TwoLevelConfig &config)
        : cfg(config)
    {
        vp_assert(cfg.valuesPerEntry >= 2 && cfg.valuesPerEntry <= 8,
                  "valuesPerEntry out of range");
        vp_assert(cfg.historyLength >= 1 && cfg.historyLength <= 4,
                  "historyLength out of range");
        entries.resize(std::size_t(1) << cfg.table.indexBits);
        patternCount = 1;
        for (unsigned i = 0; i < cfg.historyLength; ++i)
            patternCount *= cfg.valuesPerEntry;
        for (auto &e : entries)
            e.counters.assign(patternCount * cfg.valuesPerEntry, 0);
    }

    std::string name() const override { return "2level"; }

    bool
    predict(std::uint32_t pc, std::uint64_t &prediction) override
    {
        const Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        if (!e.valid || (cfg.table.tagged && e.tag != pc))
            return false;
        const unsigned base = e.history * cfg.valuesPerEntry;
        unsigned best = 0;
        for (unsigned i = 1; i < e.numValues; ++i)
            if (e.counters[base + i] > e.counters[base + best])
                best = i;
        if (e.numValues == 0 ||
            e.counters[base + best] < cfg.predictThreshold)
            return false;
        prediction = e.values[best];
        return true;
    }

    void
    update(std::uint32_t pc, std::uint64_t actual) override
    {
        Entry &e = entries[tableIndex(pc, cfg.table.indexBits)];
        const bool owner = e.valid && (!cfg.table.tagged || e.tag == pc);
        if (!owner) {
            if (e.valid)
                VP_STAT_INC(vp::stats::Cid::PredictTagEvictions);
            e.valid = true;
            e.tag = pc;
            e.numValues = 0;
            e.history = 0;
            std::fill(e.counters.begin(), e.counters.end(), 0u);
        }
        // Find (or allocate) the slot of this value.
        unsigned slot = e.numValues;
        for (unsigned i = 0; i < e.numValues; ++i) {
            if (e.values[i] == actual) {
                slot = i;
                break;
            }
        }
        if (slot == e.numValues) {
            if (e.numValues < cfg.valuesPerEntry) {
                e.values[e.numValues++] = actual;
            } else {
                // Replace the value with the lowest total counter mass.
                std::vector<std::uint64_t> mass(cfg.valuesPerEntry, 0);
                for (unsigned p = 0; p < patternCount; ++p)
                    for (unsigned i = 0; i < cfg.valuesPerEntry; ++i)
                        mass[i] += e.counters[p * cfg.valuesPerEntry + i];
                slot = 0;
                for (unsigned i = 1; i < cfg.valuesPerEntry; ++i)
                    if (mass[i] < mass[slot])
                        slot = i;
                VP_STAT_INC(vp::stats::Cid::PredictSlotReplacements);
                e.values[slot] = actual;
                for (unsigned p = 0; p < patternCount; ++p)
                    e.counters[p * cfg.valuesPerEntry + slot] = 0;
            }
        }
        // Train the pattern counter for the current history.
        const unsigned base = e.history * cfg.valuesPerEntry;
        for (unsigned i = 0; i < cfg.valuesPerEntry; ++i) {
            auto &c = e.counters[base + i];
            if (i == slot)
                c = std::min(c + 1, cfg.counterMax);
            else if (c > 0)
                --c;
        }
        // Shift the outer history.
        e.history = (e.history * cfg.valuesPerEntry + slot) %
                    patternCount;
    }

    void
    reset() override
    {
        for (auto &e : entries) {
            e.valid = false;
            e.numValues = 0;
            e.history = 0;
            std::fill(e.counters.begin(), e.counters.end(), 0u);
        }
        statsData = {};
    }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint32_t tag = 0;
        unsigned numValues = 0;
        unsigned history = 0;
        std::uint64_t values[8] = {};
        std::vector<unsigned> counters;  ///< [pattern][value slot]
    };

    TwoLevelConfig cfg;
    unsigned patternCount = 1;
    std::vector<Entry> entries;
};

// ---------------------------------------------------------------------
// Hybrid predictor with per-entry chooser
// ---------------------------------------------------------------------

class HybridPredictor final : public ValuePredictor
{
  public:
    HybridPredictor(std::unique_ptr<ValuePredictor> first,
                    std::unique_ptr<ValuePredictor> second,
                    const TableConfig &chooser_cfg)
        : a(std::move(first)), b(std::move(second)), cfg(chooser_cfg)
    {
        chooser.assign(std::size_t(1) << cfg.indexBits, 1);
    }

    std::string
    name() const override
    {
        return "hybrid(" + a->name() + "+" + b->name() + ")";
    }

    bool
    predict(std::uint32_t pc, std::uint64_t &prediction) override
    {
        std::uint64_t pa = 0, pb = 0;
        const bool ha = a->predict(pc, pa);
        const bool hb = b->predict(pc, pb);
        if (!ha && !hb)
            return false;
        const unsigned sel = chooser[tableIndex(pc, cfg.indexBits)];
        const bool use_b = hb && (!ha || sel >= 2);
        prediction = use_b ? pb : pa;
        return true;
    }

    void
    update(std::uint32_t pc, std::uint64_t actual) override
    {
        // Re-query components to train the chooser on who was right.
        std::uint64_t pa = 0, pb = 0;
        const bool ha = a->predict(pc, pa);
        const bool hb = b->predict(pc, pb);
        const bool a_right = ha && pa == actual;
        const bool b_right = hb && pb == actual;
        auto &sel = chooser[tableIndex(pc, cfg.indexBits)];
        if (b_right && !a_right && sel < 3)
            ++sel;
        else if (a_right && !b_right && sel > 0)
            --sel;
        a->update(pc, actual);
        b->update(pc, actual);
    }

    void
    reset() override
    {
        a->reset();
        b->reset();
        std::fill(chooser.begin(), chooser.end(), 1u);
        statsData = {};
    }

  private:
    std::unique_ptr<ValuePredictor> a;
    std::unique_ptr<ValuePredictor> b;
    TableConfig cfg;
    std::vector<unsigned> chooser;
};

} // namespace

std::unique_ptr<ValuePredictor>
makeLastValuePredictor(const LvpConfig &cfg)
{
    return std::make_unique<LastValuePredictor>(cfg);
}

std::unique_ptr<ValuePredictor>
makeStridePredictor(const StrideConfig &cfg)
{
    return std::make_unique<StridePredictor>(cfg);
}

std::unique_ptr<ValuePredictor>
makeTwoLevelPredictor(const TwoLevelConfig &cfg)
{
    return std::make_unique<TwoLevelPredictor>(cfg);
}

std::unique_ptr<ValuePredictor>
makeHybridPredictor(std::unique_ptr<ValuePredictor> first,
                    std::unique_ptr<ValuePredictor> second,
                    const TableConfig &chooser)
{
    return std::make_unique<HybridPredictor>(std::move(first),
                                             std::move(second), chooser);
}

} // namespace predict
