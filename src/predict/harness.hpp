/**
 * @file
 * Drives value predictors from a live instruction stream, and the
 * profile-guided filter of Gabbay & Mendelson [18]: use a value
 * profile to decide which static instructions are worth predicting at
 * all, keeping variant instructions out of the prediction table.
 */

#ifndef VP_PREDICT_HARNESS_HPP
#define VP_PREDICT_HARNESS_HPP

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/snapshot.hpp"
#include "instrument/manager.hpp"
#include "predict/predictor.hpp"

namespace predict
{

/**
 * Instrumentation tool feeding every routed instruction's result to a
 * set of predictors (each sees the identical stream).
 */
class PredictionHarness : public instr::Tool
{
  public:
    /** Attach a predictor (not owned). */
    void
    addPredictor(ValuePredictor *pred)
    {
        predictors.push_back(pred);
    }

    /** Route the chosen instructions through the manager. */
    void
    instrument(instr::InstrumentManager &mgr,
               const std::vector<std::uint32_t> &pcs)
    {
        mgr.instrumentInsts(pcs, this);
    }

    void
    onInstValue(std::uint32_t pc, const vpsim::Inst &inst,
                std::uint64_t value) override
    {
        (void)inst;
        for (auto *p : predictors)
            p->see(pc, value);
    }

  private:
    std::vector<ValuePredictor *> predictors;
};

/** How the profile-guided filter selects predictable instructions. */
struct FilterConfig
{
    /** Minimum profiled Inv-Top (use 0 to filter on LVP only). */
    double minInvTop = 0.0;
    /** Minimum profiled LVP. */
    double minLvp = 0.5;
    /** Ignore instructions profiled fewer times than this. */
    std::uint64_t minExecutions = 50;
};

/**
 * A filtering wrapper: only the pcs classified predictable by the
 * profile reach the inner predictor; everything else is never
 * predicted and never pollutes the inner tables. Executions of
 * filtered-out instructions still count in stats().executions so
 * accuracies stay comparable with the unfiltered predictor.
 */
class ProfileGuidedPredictor final : public ValuePredictor
{
  public:
    ProfileGuidedPredictor(std::unique_ptr<ValuePredictor> inner_pred,
                           const core::ProfileSnapshot &profile,
                           const FilterConfig &cfg = {});

    std::string name() const override;
    bool predict(std::uint32_t pc, std::uint64_t &prediction) override;
    void update(std::uint32_t pc, std::uint64_t actual) override;
    void reset() override;

    /** Number of static instructions admitted by the filter. */
    std::size_t admitted() const { return allowed.size(); }

  private:
    std::unique_ptr<ValuePredictor> inner;
    std::unordered_set<std::uint32_t> allowed;
};

} // namespace predict

#endif // VP_PREDICT_HARNESS_HPP
