/**
 * @file
 * Value predictors (thesis chapter II context).
 *
 * The paper motivates value profiling partly through hardware value
 * prediction [17, 27, 28]: a profile that classifies instructions as
 * invariant/semi-invariant/variant lets the compiler tell the hardware
 * which instructions are worth predicting (Gabbay & Mendelson [18]),
 * raising prediction-table utilization and cutting mispredictions.
 *
 * This module implements the predictor families the thesis surveys —
 * last-value (VHT), stride, two-level context (Wang & Franklin [39]),
 * and hybrids — plus the profile-guided filter, so experiment E11 can
 * regenerate the comparison's shape.
 */

#ifndef VP_PREDICT_PREDICTOR_HPP
#define VP_PREDICT_PREDICTOR_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace predict
{

/** Outcome counters for one predictor run. */
struct PredictorStats
{
    std::uint64_t executions = 0;   ///< values offered to the predictor
    std::uint64_t predictions = 0;  ///< times it ventured a prediction
    std::uint64_t correct = 0;      ///< predictions that matched

    /** Fraction of executions predicted correctly (the paper's rate). */
    double
    accuracy() const
    {
        return executions
                   ? static_cast<double>(correct) /
                         static_cast<double>(executions)
                   : 0.0;
    }

    /** Fraction of ventured predictions that were correct. */
    double
    precision() const
    {
        return predictions
                   ? static_cast<double>(correct) /
                         static_cast<double>(predictions)
                   : 0.0;
    }

    /** Fraction of executions on which a prediction was ventured. */
    double
    coverage() const
    {
        return executions
                   ? static_cast<double>(predictions) /
                         static_cast<double>(executions)
                   : 0.0;
    }

    std::uint64_t
    mispredictions() const
    {
        return predictions - correct;
    }
};

/**
 * Abstract value predictor. Drive with predict() before each value
 * retires and update() after; see() bundles both and keeps stats.
 */
class ValuePredictor
{
  public:
    virtual ~ValuePredictor() = default;

    virtual std::string name() const = 0;

    /**
     * Predict the next value produced by static instruction `pc`.
     * @return true if a prediction is ventured (stored in prediction).
     */
    virtual bool predict(std::uint32_t pc, std::uint64_t &prediction) = 0;

    /** Train with the actual retired value. */
    virtual void update(std::uint32_t pc, std::uint64_t actual) = 0;

    /** Clear all tables and statistics. */
    virtual void reset() = 0;

    /** Predict + update + account one execution. */
    void see(std::uint32_t pc, std::uint64_t actual);

    const PredictorStats &stats() const { return statsData; }

  protected:
    PredictorStats statsData;
};

/** Common table-shape configuration. */
struct TableConfig
{
    unsigned indexBits = 12;  ///< 2^indexBits entries
    bool tagged = true;       ///< verify full pc match before predicting
};

/** Last-value predictor (the VHT of [17]). */
struct LvpConfig
{
    TableConfig table;
    /** Saturating-counter bits gating prediction (0 = always). */
    unsigned confidenceBits = 2;
    /** Counter value required to venture a prediction. */
    unsigned confidenceThreshold = 2;
};

std::unique_ptr<ValuePredictor> makeLastValuePredictor(
    const LvpConfig &cfg = {});

/** Stride predictor (two-delta). */
struct StrideConfig
{
    TableConfig table;
};

std::unique_ptr<ValuePredictor> makeStridePredictor(
    const StrideConfig &cfg = {});

/** Two-level context predictor after Wang & Franklin [39]. */
struct TwoLevelConfig
{
    TableConfig table;
    unsigned valuesPerEntry = 4;   ///< distinct values tracked
    unsigned historyLength = 2;    ///< outer history (occurrences)
    unsigned counterMax = 3;       ///< saturating pattern counters
    unsigned predictThreshold = 2; ///< counter needed to predict
};

std::unique_ptr<ValuePredictor> makeTwoLevelPredictor(
    const TwoLevelConfig &cfg = {});

/**
 * Hybrid of two component predictors with a per-entry chooser
 * (2-bit selector trained toward whichever component was correct).
 */
std::unique_ptr<ValuePredictor> makeHybridPredictor(
    std::unique_ptr<ValuePredictor> first,
    std::unique_ptr<ValuePredictor> second,
    const TableConfig &chooser = {});

} // namespace predict

#endif // VP_PREDICT_PREDICTOR_HPP
