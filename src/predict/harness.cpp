#include "predict/harness.hpp"

namespace predict
{

ProfileGuidedPredictor::ProfileGuidedPredictor(
    std::unique_ptr<ValuePredictor> inner_pred,
    const core::ProfileSnapshot &profile, const FilterConfig &cfg)
    : inner(std::move(inner_pred))
{
    for (const auto &[pc, summary] : profile.entities) {
        if (summary.profiledExecutions < cfg.minExecutions)
            continue;
        if (summary.invTop < cfg.minInvTop)
            continue;
        if (summary.lvp < cfg.minLvp)
            continue;
        allowed.insert(static_cast<std::uint32_t>(pc));
    }
}

std::string
ProfileGuidedPredictor::name() const
{
    return "guided(" + inner->name() + ")";
}

bool
ProfileGuidedPredictor::predict(std::uint32_t pc,
                                std::uint64_t &prediction)
{
    if (!allowed.count(pc))
        return false;
    return inner->predict(pc, prediction);
}

void
ProfileGuidedPredictor::update(std::uint32_t pc, std::uint64_t actual)
{
    if (!allowed.count(pc))
        return;
    inner->update(pc, actual);
}

void
ProfileGuidedPredictor::reset()
{
    inner->reset();
    statsData = {};
}

} // namespace predict
