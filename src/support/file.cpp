#include "support/file.hpp"

#include <cstdio>
#include <fstream>

#include "support/strings.hpp"

namespace vp
{

namespace testing
{
std::size_t atomicWriteAbortAfterBytes = 0;
} // namespace testing

bool
atomicWriteFile(const std::string &path, const std::string &bytes,
                std::string &error)
{
    error.clear();
    const std::string tmp = path + ".tmp";

    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
        error = vp::format("cannot open '%s' for writing", tmp.c_str());
        return false;
    }
    if (testing::atomicWriteAbortAfterBytes != 0 &&
        testing::atomicWriteAbortAfterBytes < bytes.size()) {
        // Simulated crash: the torn prefix stays in the tmp file and
        // the rename never happens, so `path` is untouched.
        out.write(bytes.data(),
                  static_cast<std::streamsize>(
                      testing::atomicWriteAbortAfterBytes));
        out.flush();
        error = vp::format("simulated crash after %zu bytes",
                           testing::atomicWriteAbortAfterBytes);
        return false;
    }
    if (!out.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()))) {
        error = vp::format("short write to '%s'", tmp.c_str());
        out.close();
        std::remove(tmp.c_str());
        return false;
    }
    out.flush();
    if (!out) {
        error = vp::format("flush of '%s' failed", tmp.c_str());
        out.close();
        std::remove(tmp.c_str());
        return false;
    }
    out.close();
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        error = vp::format("rename '%s' -> '%s' failed", tmp.c_str(),
                           path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace vp
