#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace vp
{

std::string_view
trim(std::string_view s)
{
    std::size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    std::size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    std::size_t start = 0;
    for (std::size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    std::size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        std::size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

namespace
{

bool
parseCharLiteral(std::string_view s, std::int64_t &out)
{
    // Forms: 'a'  '\n'  '\t'  '\0'  '\\'  '\''
    if (s.size() < 3 || s.front() != '\'' || s.back() != '\'')
        return false;
    std::string_view body = s.substr(1, s.size() - 2);
    if (body.size() == 1) {
        out = static_cast<unsigned char>(body[0]);
        return true;
    }
    if (body.size() == 2 && body[0] == '\\') {
        switch (body[1]) {
          case 'n': out = '\n'; return true;
          case 't': out = '\t'; return true;
          case 'r': out = '\r'; return true;
          case '0': out = '\0'; return true;
          case '\\': out = '\\'; return true;
          case '\'': out = '\''; return true;
          default: return false;
        }
    }
    return false;
}

} // namespace

bool
parseInt(std::string_view s, std::int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    if (s.front() == '\'')
        return parseCharLiteral(s, out);

    bool negative = false;
    if (s.front() == '-' || s.front() == '+') {
        negative = s.front() == '-';
        s.remove_prefix(1);
        if (s.empty())
            return false;
    }

    int base = 10;
    if (startsWith(s, "0x") || startsWith(s, "0X")) {
        base = 16;
        s.remove_prefix(2);
    } else if (startsWith(s, "0b") || startsWith(s, "0B")) {
        base = 2;
        s.remove_prefix(2);
    }
    if (s.empty())
        return false;

    std::uint64_t acc = 0;
    for (char ch : s) {
        int digit;
        if (ch >= '0' && ch <= '9')
            digit = ch - '0';
        else if (ch >= 'a' && ch <= 'f')
            digit = ch - 'a' + 10;
        else if (ch >= 'A' && ch <= 'F')
            digit = ch - 'A' + 10;
        else if (ch == '_')
            continue; // digit separators allowed
        else
            return false;
        if (digit >= base)
            return false;
        acc = acc * static_cast<std::uint64_t>(base) +
              static_cast<std::uint64_t>(digit);
    }
    out = negative ? -static_cast<std::int64_t>(acc)
                   : static_cast<std::int64_t>(acc);
    return true;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    const int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    std::string out(static_cast<std::size_t>(len), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
hex64(std::uint64_t v)
{
    return format("0x%016llx", static_cast<unsigned long long>(v));
}

} // namespace vp
