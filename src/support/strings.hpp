/**
 * @file
 * Small string utilities used by the assembler and report writers.
 */

#ifndef VP_SUPPORT_STRINGS_HPP
#define VP_SUPPORT_STRINGS_HPP

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vp
{

/** Strip leading and trailing ASCII whitespace. */
std::string_view trim(std::string_view s);

/** Split on a delimiter character; empty fields are kept. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split on runs of whitespace; empty fields are dropped. */
std::vector<std::string_view> splitWhitespace(std::string_view s);

/** True if s starts with the given prefix. */
bool startsWith(std::string_view s, std::string_view prefix);

/**
 * Parse a signed 64-bit integer. Accepts decimal, 0x hex, 0b binary,
 * a leading '-', and character literals like 'a' or '\n'.
 * @return true on success, storing the value in out.
 */
bool parseInt(std::string_view s, std::int64_t &out);

/** printf-style formatting into a std::string. */
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Render a value as 0x%016llx. */
std::string hex64(std::uint64_t v);

} // namespace vp

#endif // VP_SUPPORT_STRINGS_HPP
