/**
 * @file
 * Error and status reporting in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            malformed assembly, missing workload); exits cleanly.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output for the user.
 */

#ifndef VP_SUPPORT_LOGGING_HPP
#define VP_SUPPORT_LOGGING_HPP

#include <cstdarg>
#include <string>

namespace vp
{

/** Print "panic: ..." with source location and abort(). */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "panic: assertion 'cond' failed: ..." and abort(). */
[[noreturn]] void assertFailImpl(const char *file, int line,
                                 const char *cond, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

/** Print "fatal: ..." and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));

/** Print "warn: ..." to stderr. */
void warnImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print an informational message to stderr. */
void informImpl(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Globally silence warn()/inform() (used by benchmarks). */
void setQuiet(bool quiet);
bool isQuiet();

/**
 * Tag every warn()/inform() from the calling thread with "[shard N]"
 * so diagnostics from a parallel profiling run are attributable to
 * their job. -1 (the default) removes the tag. Thread-local.
 */
void setLogShard(int shard);
int logShard();

/** RAII shard tag for the duration of one profiling job. */
class ScopedLogShard
{
  public:
    explicit ScopedLogShard(int shard) : prev(logShard())
    {
        setLogShard(shard);
    }
    ~ScopedLogShard() { setLogShard(prev); }

    ScopedLogShard(const ScopedLogShard &) = delete;
    ScopedLogShard &operator=(const ScopedLogShard &) = delete;

  private:
    int prev;
};

} // namespace vp

#define vp_panic(...) ::vp::panicImpl(__FILE__, __LINE__, __VA_ARGS__)
#define vp_fatal(...) ::vp::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)
#define vp_warn(...) ::vp::warnImpl(__VA_ARGS__)
#define vp_inform(...) ::vp::informImpl(__VA_ARGS__)

/**
 * Internal invariant check that is kept in release builds. Use for
 * conditions that indicate library bugs, not user errors.
 */
#define vp_assert(cond, ...)                                                 \
    do {                                                                     \
        if (!(cond))                                                         \
            ::vp::assertFailImpl(__FILE__, __LINE__, #cond, __VA_ARGS__);    \
    } while (0)

#endif // VP_SUPPORT_LOGGING_HPP
