/**
 * @file
 * Scoped-span tracer emitting Chrome trace-event JSON.
 *
 * The collector records complete ("ph":"X") events — name, worker
 * lane, microsecond start offset and duration, plus string args — and
 * serializes them in the trace-event format that chrome://tracing and
 * Perfetto load directly, so a parallel profiling run renders as a
 * per-worker timeline of job spans (see DESIGN.md, "Observability").
 *
 * Tracing is off by default; enabling it stamps the epoch that all
 * span timestamps are measured from. Recording a span takes one mutex
 * acquisition at span end — spans bound whole jobs or phases, never
 * per-instruction work.
 */

#ifndef VP_SUPPORT_TRACE_HPP
#define VP_SUPPORT_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace vp::trace
{

/** One complete span, Chrome trace-event style. */
struct TraceEvent
{
    std::string name;
    int tid = 0;            ///< worker lane
    std::uint64_t tsUs = 0; ///< start, microseconds since the epoch
    std::uint64_t durUs = 0;
    /** Key/value annotations (rendered in the event's args pane). */
    std::vector<std::pair<std::string, std::string>> args;
};

/** Thread-safe trace-event sink. */
class TraceCollector
{
  public:
    /** The process-wide collector every span records into. */
    static TraceCollector &global();

    /** Enable/disable recording; enabling resets the time epoch. */
    void setEnabled(bool on);

    bool
    enabled() const
    {
        return on.load(std::memory_order_relaxed);
    }

    /** Microseconds elapsed since the epoch (0 when disabled). */
    std::uint64_t nowUs() const;

    /** Record one complete span. */
    void addComplete(TraceEvent event);

    /** Drop all recorded events. */
    void clear();

    std::size_t size() const;

    /** Snapshot of the recorded events (tests, reporting). */
    std::vector<TraceEvent> events() const;

    /**
     * Serialize as {"displayTimeUnit":"ms","traceEvents":[...]},
     * including thread_name metadata so each worker lane is labeled.
     */
    void writeJson(std::ostream &os) const;

  private:
    std::atomic<bool> on{false};
    std::chrono::steady_clock::time_point epoch;
    mutable std::mutex mu;
    std::vector<TraceEvent> recorded;
};

/**
 * The calling thread's worker lane for trace events: 0 for the main
 * thread, 1..N for pool workers (set by ThreadPool).
 */
int workerId();
void setWorkerId(int id);

/**
 * RAII span over the global collector: records a complete event from
 * construction to destruction on the calling thread's lane. No-op
 * when tracing is disabled at construction time.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Attach an annotation (shown in the trace viewer's args pane). */
    void arg(std::string key, std::string value);

  private:
    bool active;
    TraceEvent event;
    std::chrono::steady_clock::time_point start;
};

} // namespace vp::trace

#endif // VP_SUPPORT_TRACE_HPP
