/**
 * @file
 * FlatIndexMap64 — an open-addressing map from uint64 keys to dense
 * uint32 indices, for arena-backed entity tables on the profiling hot
 * path.
 *
 * The pattern it serves: entity records live in a SlabArena (stable
 * addresses, insertion-order iteration) and this map translates an
 * entity's key (e.g. a bucketed memory address) to its arena index.
 * Compared with unordered_map<uint64, Record> it removes the per-node
 * allocation and keeps the probe footprint at 12 bytes per slot, so
 * lookups for the hot, repeatedly-touched entities stay in cache.
 *
 * Keys may be any uint64 (0 included); emptiness is tracked on the
 * value side, so kNoIndex is the one reserved value. Not thread-safe.
 */

#ifndef VP_SUPPORT_FLAT_MAP_HPP
#define VP_SUPPORT_FLAT_MAP_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/logging.hpp"

namespace vp
{

/** Open-addressing uint64 -> uint32 map with power-of-two capacity. */
class FlatIndexMap64
{
  public:
    /** Returned by lookup() for absent keys; not a valid value. */
    static constexpr std::uint32_t kNoIndex = 0xFFFFFFFFu;

    FlatIndexMap64() = default;

    /** The value stored for `key`, or kNoIndex. */
    std::uint32_t
    lookup(std::uint64_t key) const
    {
        if (vals.empty())
            return kNoIndex;
        const std::size_t mask = vals.size() - 1;
        for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
            if (vals[i] == kNoIndex)
                return kNoIndex;
            if (keys[i] == key)
                return vals[i];
        }
    }

    /** Insert a key that is not present. */
    void
    insert(std::uint64_t key, std::uint32_t value)
    {
        vp_assert(value != kNoIndex, "kNoIndex is reserved");
        if (vals.empty())
            grow(64);
        const std::size_t mask = vals.size() - 1;
        for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
            if (vals[i] == kNoIndex) {
                keys[i] = key;
                vals[i] = value;
                ++count;
                if (count * 10 >= vals.size() * 7)  // ~70% occupancy
                    grow(vals.size() * 2);
                return;
            }
            vp_assert(keys[i] != key, "duplicate key");
        }
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    void
    clear()
    {
        keys.clear();
        keys.shrink_to_fit();
        vals.clear();
        vals.shrink_to_fit();
        count = 0;
    }

  private:
    static std::size_t
    mix(std::uint64_t x)
    {
        // splitmix64 finalizer — full-avalanche, cheap.
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }

    void
    grow(std::size_t new_cap)
    {
        std::vector<std::uint64_t> old_keys = std::move(keys);
        std::vector<std::uint32_t> old_vals = std::move(vals);
        keys.assign(new_cap, 0);
        vals.assign(new_cap, kNoIndex);
        const std::size_t mask = new_cap - 1;
        for (std::size_t j = 0; j < old_vals.size(); ++j) {
            if (old_vals[j] == kNoIndex)
                continue;
            for (std::size_t i = mix(old_keys[j]) & mask;;
                 i = (i + 1) & mask) {
                if (vals[i] == kNoIndex) {
                    keys[i] = old_keys[j];
                    vals[i] = old_vals[j];
                    break;
                }
            }
        }
    }

    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> vals;  ///< kNoIndex marks a free slot
    std::size_t count = 0;
};

} // namespace vp

#endif // VP_SUPPORT_FLAT_MAP_HPP
