/**
 * @file
 * SlabArena — a chunked object arena with stable addresses.
 *
 * The memory profiler hands out long-lived pointers to per-location
 * records while continuing to create new ones, so the container
 * backing those records must never relocate existing elements. A
 * std::vector can't promise that; per-record heap nodes (the old
 * std::unordered_map approach) promise it at the cost of an
 * allocation and a cache miss per record. SlabArena splits the
 * difference: objects are placement-new'd into fixed-size slabs, so
 * addresses are stable for the arena's lifetime, allocation is a
 * pointer bump on the common path, and sequential iteration walks
 * contiguous memory.
 *
 * Elements are indexed in insertion order and are never removed
 * individually — profiles only ever grow within a run. Not
 * thread-safe; one arena per profiling shard.
 */

#ifndef VP_SUPPORT_ARENA_HPP
#define VP_SUPPORT_ARENA_HPP

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace vp
{

/** Grow-only arena of T with stable addresses and index access. */
template <typename T, std::size_t SlabSize = 256>
class SlabArena
{
    static_assert(SlabSize > 0, "slabs must hold at least one element");

  public:
    SlabArena() = default;
    SlabArena(SlabArena &&) = default;
    SlabArena &operator=(SlabArena &&) = default;
    SlabArena(const SlabArena &) = delete;
    SlabArena &operator=(const SlabArena &) = delete;

    ~SlabArena() { destroyAll(); }

    /** Construct a new element in place; its address never moves. */
    template <typename... Args>
    T &
    emplaceBack(Args &&...args)
    {
        const std::size_t slab = count / SlabSize;
        const std::size_t off = count % SlabSize;
        if (slab == slabs.size())
            slabs.push_back(std::make_unique<Storage[]>(SlabSize));
        T *obj = new (&slabs[slab][off]) T(std::forward<Args>(args)...);
        ++count;
        return *obj;
    }

    T &
    operator[](std::size_t i)
    {
        return *std::launder(reinterpret_cast<T *>(
            &slabs[i / SlabSize][i % SlabSize]));
    }

    const T &
    operator[](std::size_t i) const
    {
        return *std::launder(reinterpret_cast<const T *>(
            &slabs[i / SlabSize][i % SlabSize]));
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Forward iterator over elements in insertion order. */
    template <typename Arena, typename Value>
    class Iter
    {
      public:
        Iter(Arena *arena, std::size_t index) : a(arena), i(index) {}
        Value &operator*() const { return (*a)[i]; }
        Value *operator->() const { return &(*a)[i]; }
        Iter &
        operator++()
        {
            ++i;
            return *this;
        }
        bool operator==(const Iter &o) const { return i == o.i; }
        bool operator!=(const Iter &o) const { return i != o.i; }

      private:
        Arena *a;
        std::size_t i;
    };

    using iterator = Iter<SlabArena, T>;
    using const_iterator = Iter<const SlabArena, const T>;

    iterator begin() { return {this, 0}; }
    iterator end() { return {this, count}; }
    const_iterator begin() const { return {this, 0}; }
    const_iterator end() const { return {this, count}; }

    /** Visit elements in insertion order. */
    template <typename Fn>
    void
    forEach(Fn &&fn)
    {
        for (std::size_t i = 0; i < count; ++i)
            fn((*this)[i]);
    }

    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < count; ++i)
            fn((*this)[i]);
    }

    void
    clear()
    {
        destroyAll();
        slabs.clear();
        count = 0;
    }

  private:
    using Storage =
        typename std::aligned_storage<sizeof(T), alignof(T)>::type;

    void
    destroyAll()
    {
        for (std::size_t i = count; i-- > 0;)
            (*this)[i].~T();
    }

    std::vector<std::unique_ptr<Storage[]>> slabs;
    std::size_t count = 0;
};

} // namespace vp

#endif // VP_SUPPORT_ARENA_HPP
