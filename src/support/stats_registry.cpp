#include "support/stats_registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/logging.hpp"

namespace vp::stats
{

namespace detail
{
std::atomic<bool> collectionEnabled{false};
} // namespace detail

const char *
counterName(Cid id)
{
    switch (id) {
      case Cid::TnvInserts: return "core.tnv.inserts";
      case Cid::TnvEvictions: return "core.tnv.evictions";
      case Cid::TnvClears: return "core.tnv.clears";
      case Cid::TnvClearEvictions: return "core.tnv.clear_evictions";
      case Cid::TnvMerges: return "core.tnv.merges";
      case Cid::TnvMergeDroppedEntries:
        return "core.tnv.merge_dropped_entries";
      case Cid::TnvMergeDroppedCount:
        return "core.tnv.merge_dropped_count";
      case Cid::SamplerBursts: return "core.sampler.bursts";
      case Cid::SamplerConvergences: return "core.sampler.convergences";
      case Cid::SamplerRetriggers: return "core.sampler.retriggers";
      case Cid::SamplerBackoffs: return "core.sampler.backoffs";
      case Cid::SimInsts: return "vpsim.insts";
      case Cid::SimLoads: return "vpsim.loads";
      case Cid::SimStores: return "vpsim.stores";
      case Cid::RunnerJobs: return "runner.jobs";
      case Cid::PredictTagEvictions: return "predict.tag_evictions";
      case Cid::PredictSlotReplacements:
        return "predict.slot_replacements";
      case Cid::SpecializeGuardsEmitted:
        return "specialize.guards_emitted";
      case Cid::SpecializeGuardHits: return "specialize.guard_hits";
      case Cid::SpecializeGuardMisses: return "specialize.guard_misses";
      case Cid::ServeFramesIn: return "serve.frames_in";
      case Cid::ServeFramesOut: return "serve.frames_out";
      case Cid::ServeBytesIn: return "serve.bytes_in";
      case Cid::ServeBytesOut: return "serve.bytes_out";
      case Cid::ServeDeltasMerged: return "serve.deltas_merged";
      case Cid::ServeDeltaDuplicates: return "serve.delta_duplicates";
      case Cid::ServeDecodeErrors: return "serve.decode_errors";
      case Cid::ServeSnapshotsSaved: return "serve.snapshots_saved";
      case Cid::ServeAccepts: return "serve.accepts";
      case Cid::ServeClientBatches: return "serve.client.batches";
      case Cid::ServeClientFramesSent: return "serve.client.frames_sent";
      case Cid::ServeClientBytesSent: return "serve.client.bytes_sent";
      case Cid::ServeClientRetries: return "serve.client.retries";
      case Cid::ServeClientSpilledDeltas:
        return "serve.client.spilled_deltas";
      case Cid::ServeFramesInV1: return "serve.frames_in_v1";
      case Cid::ServeFramesInV2: return "serve.frames_in_v2";
      case Cid::ServeHttpAccepts: return "serve.http.accepts";
      case Cid::ServeHttpRequests: return "serve.http.requests";
      case Cid::ServeHttpErrors: return "serve.http.errors";
      case Cid::ServeHttpTimeouts: return "serve.http.timeouts";
      case Cid::ServeHttpBytesIn: return "serve.http.bytes_in";
      case Cid::ServeHttpBytesOut: return "serve.http.bytes_out";
      case Cid::ServeHttpWatchWakeups:
        return "serve.http.watch_wakeups";
      case Cid::ServeForwardPartials: return "serve.forward_partials";
      case Cid::ServeForwardFlushes: return "serve.forward_flushes";
      case Cid::ServeForwardAcked: return "serve.forward_acked";
      case Cid::ServeForwardSpilled: return "serve.forward_spilled";
      case Cid::ServeForwardReplayed: return "serve.forward_replayed";
      case Cid::ServeForwardHellos: return "serve.forward_hellos";
      case Cid::ServeForwardApplied: return "serve.forward_applied";
      case Cid::ServeForwardDuplicates:
        return "serve.forward_duplicates";
      case Cid::ServeForwardLoops: return "serve.forward_loops";
      case Cid::ServeForwardIdClash: return "serve.forward_id_clash";
      case Cid::AdaptInstalls: return "adapt.installs";
      case Cid::AdaptGuardHits: return "adapt.guard_hits";
      case Cid::AdaptGuardMisses: return "adapt.guard_misses";
      case Cid::AdaptDeopts: return "adapt.deopts";
      case Cid::AdaptBlacklists: return "adapt.blacklists";
      case Cid::AdaptRespecializations:
        return "adapt.respecializations";
      case Cid::NumCounters: break;
    }
    vp_panic("bad counter id %u", static_cast<unsigned>(id));
}

// ---------------------------------------------------------------------
// Distribution
// ---------------------------------------------------------------------

void
Distribution::keep(double x)
{
    reservoir.push_back(x);
    if (reservoir.size() >= kSampleCap) {
        // Decimate: keep every other sample and double the stride.
        std::size_t out = 0;
        for (std::size_t i = 0; i < reservoir.size(); i += 2)
            reservoir[out++] = reservoir[i];
        reservoir.resize(out);
        sampleEvery *= 2;
    }
}

void
Distribution::add(double x)
{
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    const double delta = x - mu;
    mu += delta / static_cast<double>(n);
    m2 += delta * (x - mu);

    if (++sinceSample >= sampleEvery) {
        sinceSample = 0;
        keep(x);
    }
}

void
Distribution::merge(const Distribution &other)
{
    if (other.n == 0)
        return;
    if (n == 0) {
        *this = other;
        return;
    }
    lo = std::min(lo, other.lo);
    hi = std::max(hi, other.hi);
    // Chan et al. parallel moment combination.
    const double na = static_cast<double>(n);
    const double nb = static_cast<double>(other.n);
    const double delta = other.mu - mu;
    mu = (mu * na + other.mu * nb) / (na + nb);
    m2 = m2 + other.m2 + delta * delta * na * nb / (na + nb);
    n += other.n;

    sampleEvery = std::max(sampleEvery, other.sampleEvery);
    for (const double x : other.reservoir)
        keep(x);
}

double
Distribution::quantile(double q) const
{
    if (reservoir.empty())
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    std::vector<double> sorted = reservoir;
    std::sort(sorted.begin(), sorted.end());
    // Nearest-rank: the smallest sample with cumulative fraction >= q.
    const double rank = std::ceil(q * static_cast<double>(sorted.size()));
    const std::size_t idx =
        rank < 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
    return sorted[std::min(idx, sorted.size() - 1)];
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

Registry::Registry(const Registry &other)
{
    *this = other;
}

Registry &
Registry::operator=(const Registry &other)
{
    if (this == &other)
        return *this;
    for (unsigned i = 0; i < counters.size(); ++i)
        counters[i].store(
            other.counters[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    std::scoped_lock lock(mu, other.mu);
    gauges = other.gauges;
    dists = other.dists;
    return *this;
}

void
Registry::gaugeMax(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    auto [it, inserted] = gauges.emplace(name, value);
    if (!inserted)
        it->second = std::max(it->second, value);
}

void
Registry::observe(const std::string &name, double value)
{
    std::lock_guard<std::mutex> lock(mu);
    dists[name].add(value);
}

void
Registry::merge(const Registry &other)
{
    vp_assert(this != &other, "registry merged into itself");
    for (unsigned i = 0; i < counters.size(); ++i) {
        const std::uint64_t v =
            other.counters[i].load(std::memory_order_relaxed);
        if (v)
            counters[i].fetch_add(v, std::memory_order_relaxed);
    }
    std::scoped_lock lock(mu, other.mu);
    for (const auto &[name, value] : other.gauges) {
        auto [it, inserted] = gauges.emplace(name, value);
        if (!inserted)
            it->second = std::max(it->second, value);
    }
    for (const auto &[name, dist] : other.dists)
        dists[name].merge(dist);
}

void
Registry::reset()
{
    for (auto &c : counters)
        c.store(0, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu);
    gauges.clear();
    dists.clear();
}

std::map<std::string, double>
Registry::gaugeValues() const
{
    std::lock_guard<std::mutex> lock(mu);
    return gauges;
}

Distribution
Registry::distribution(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mu);
    auto it = dists.find(name);
    return it == dists.end() ? Distribution{} : it->second;
}

std::vector<std::string>
Registry::distributionNames() const
{
    std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> out;
    out.reserve(dists.size());
    for (const auto &[name, dist] : dists)
        out.push_back(name);
    return out;
}

namespace
{

void
writeJsonNumber(std::ostream &os, double v)
{
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    // Integers print without a fraction so counters stay greppable.
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
        os << static_cast<long long>(v);
    } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v);
        os << buf;
    }
}

} // namespace

void
Registry::writeJson(std::ostream &os) const
{
    os << "{\n  \"version\": 1,\n  \"counters\": {";
    for (unsigned i = 0; i < counters.size(); ++i) {
        os << (i ? ",\n    " : "\n    ") << '"'
           << counterName(static_cast<Cid>(i)) << "\": "
           << counters[i].load(std::memory_order_relaxed);
    }
    os << "\n  },\n  \"gauges\": {";
    {
        std::lock_guard<std::mutex> lock(mu);
        bool first = true;
        for (const auto &[name, value] : gauges) {
            os << (first ? "\n    " : ",\n    ") << '"' << name
               << "\": ";
            writeJsonNumber(os, value);
            first = false;
        }
        os << (first ? "},\n" : "\n  },\n");
        os << "  \"distributions\": {";
        first = true;
        for (const auto &[name, d] : dists) {
            os << (first ? "\n    " : ",\n    ") << '"' << name
               << "\": {\"count\": " << d.count() << ", \"min\": ";
            writeJsonNumber(os, d.min());
            os << ", \"max\": ";
            writeJsonNumber(os, d.max());
            os << ", \"mean\": ";
            writeJsonNumber(os, d.mean());
            os << ", \"p50\": ";
            writeJsonNumber(os, d.quantile(0.5));
            os << ", \"p99\": ";
            writeJsonNumber(os, d.quantile(0.99));
            os << "}";
            first = false;
        }
        os << (first ? "}\n" : "\n  }\n");
    }
    os << "}\n";
}

void
Registry::writeText(std::ostream &os) const
{
    os << "--- runtime stats ---\n";
    for (unsigned i = 0; i < counters.size(); ++i) {
        const std::uint64_t v =
            counters[i].load(std::memory_order_relaxed);
        if (v)
            os << counterName(static_cast<Cid>(i)) << " = " << v
               << "\n";
    }
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[name, value] : gauges)
        os << name << " (max) = " << value << "\n";
    for (const auto &[name, d] : dists) {
        os << name << ": count " << d.count() << ", min " << d.min()
           << ", mean " << d.mean() << ", p50 " << d.quantile(0.5)
           << ", p99 " << d.quantile(0.99) << ", max " << d.max()
           << "\n";
    }
}

namespace
{

/** "serve.http.bytes_in" -> "vp_serve_http_bytes_in". */
std::string
promName(const std::string &dotted)
{
    std::string out = "vp_";
    for (const char c : dotted)
        out += (c == '.' || c == '-') ? '_' : c;
    return out;
}

void
writePromNumber(std::ostream &os, double v)
{
    writeJsonNumber(os, v); // same rendering rules suit both formats
}

} // namespace

void
Registry::writeProm(std::ostream &os) const
{
    for (unsigned i = 0; i < counters.size(); ++i) {
        const std::string name =
            promName(counterName(static_cast<Cid>(i))) + "_total";
        os << "# TYPE " << name << " counter\n"
           << name << ' '
           << counters[i].load(std::memory_order_relaxed) << '\n';
    }
    std::lock_guard<std::mutex> lock(mu);
    for (const auto &[dotted, value] : gauges) {
        const std::string name = promName(dotted);
        os << "# TYPE " << name << " gauge\n" << name << ' ';
        writePromNumber(os, value);
        os << '\n';
    }
    for (const auto &[dotted, d] : dists) {
        const std::string name = promName(dotted);
        os << "# TYPE " << name << " summary\n";
        os << name << "{quantile=\"0.5\"} ";
        writePromNumber(os, d.quantile(0.5));
        os << '\n' << name << "{quantile=\"0.99\"} ";
        writePromNumber(os, d.quantile(0.99));
        os << '\n' << name << "_sum ";
        writePromNumber(os, d.mean() * static_cast<double>(d.count()));
        os << '\n' << name << "_count " << d.count() << '\n';
    }
}

// ---------------------------------------------------------------------
// Current-registry plumbing
// ---------------------------------------------------------------------

namespace
{
thread_local Registry *tlsCurrent = nullptr;
} // namespace

Registry &
global()
{
    static Registry reg;
    return reg;
}

Registry &
current()
{
    return tlsCurrent ? *tlsCurrent : global();
}

ScopedRegistry::ScopedRegistry(Registry &reg) : prev(tlsCurrent)
{
    tlsCurrent = &reg;
}

ScopedRegistry::~ScopedRegistry()
{
    tlsCurrent = prev;
}

void
setEnabled(bool on)
{
    detail::collectionEnabled.store(on, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const char *dist_name)
    : name(dist_name), sink(enabled() ? &current() : nullptr)
{
    if (sink)
        start = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (!sink)
        return;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    sink->observe(name, static_cast<double>(us.count()));
}

} // namespace vp::stats
