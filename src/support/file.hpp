/**
 * @file
 * Atomic file writes: the tmp-then-rename pattern used by
 * core::ProfileSnapshot::saveToFile, factored out so every artifact a
 * crash could tear (stats sidecars, trace timelines, bench reports)
 * can use it. A reader of `path` sees either the previous complete
 * file or the new one — never a torn prefix — because rename(2) within
 * a directory is atomic on POSIX.
 */

#ifndef VP_SUPPORT_FILE_HPP
#define VP_SUPPORT_FILE_HPP

#include <cstddef>
#include <string>

namespace vp
{

/**
 * Write `bytes` to `path` atomically: the contents go to `path.tmp`,
 * are flushed, and the tmp file is renamed over `path` only once the
 * write fully succeeded. On any failure the tmp file is removed (the
 * simulated-crash test hook excepted) and `path` is untouched.
 * @return true on success; false with a diagnosis in `error`.
 */
bool atomicWriteFile(const std::string &path, const std::string &bytes,
                     std::string &error);

namespace testing
{
/**
 * Crash-injection hook: when nonzero, atomicWriteFile aborts after
 * writing this many bytes to the tmp file, before the rename — the
 * torn prefix stays in the tmp file and the target is untouched.
 * Always zero outside tests.
 */
extern std::size_t atomicWriteAbortAfterBytes;
} // namespace testing

} // namespace vp

#endif // VP_SUPPORT_FILE_HPP
