/**
 * @file
 * CRC-32 (IEEE 802.3, reflected) — shared by the wire framing and the
 * v2 binary snapshot footer, so a file written by one layer checks out
 * identically in the other.
 */

#ifndef VP_SUPPORT_CRC32_HPP
#define VP_SUPPORT_CRC32_HPP

#include <array>
#include <cstddef>
#include <cstdint>

namespace vp
{

/**
 * CRC-32 of a byte range. Pass the previous return value as `seed` to
 * continue a running CRC over discontiguous ranges.
 */
inline std::uint32_t
crc32(const std::uint8_t *data, std::size_t len, std::uint32_t seed = 0)
{
    // Table-driven CRC-32 (IEEE 802.3 reflected polynomial).
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t i = 0; i < 256; ++i) {
            std::uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
    return ~crc;
}

} // namespace vp

#endif // VP_SUPPORT_CRC32_HPP
