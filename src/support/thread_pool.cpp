#include "support/thread_pool.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/trace.hpp"

namespace vp
{

unsigned
ThreadPool::hardwareThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = hardwareThreads();
    workers.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        // Lane 0 is the main thread; workers get 1..N so trace
        // timelines show one named lane per pool worker.
        workers.emplace_back([this, i] {
            trace::setWorkerId(static_cast<int>(i) + 1);
            workerLoop();
        });
    }
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mtx);
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    vp_assert(task != nullptr, "null task submitted to thread pool");
    std::size_t depth = 0;
    {
        std::lock_guard<std::mutex> lock(mtx);
        vp_assert(!stopping, "submit() on a stopping thread pool");
        queue.push_back(std::move(task));
        depth = queue.size();
    }
    VP_STAT_GAUGE_MAX("support.pool.queue_depth",
                      static_cast<double>(depth));
    taskReady.notify_one();
}

std::size_t
ThreadPool::queueDepth() const
{
    std::lock_guard<std::mutex> lock(mtx);
    return queue.size();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    allDone.wait(lock,
                 [this] { return queue.empty() && inFlight == 0; });
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mtx);
    while (true) {
        taskReady.wait(lock,
                       [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return; // stopping and drained
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        ++inFlight;
        lock.unlock();
        task();
        lock.lock();
        --inFlight;
        if (queue.empty() && inFlight == 0)
            allDone.notify_all();
    }
}

void
ThreadPool::parallelFor(unsigned threads, std::size_t n,
                        const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (threads == 0)
        threads = hardwareThreads();
    threads = static_cast<unsigned>(
        std::min<std::size_t>(threads, n));
    if (threads <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace vp
