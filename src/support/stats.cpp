#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.hpp"

namespace vp
{

void
RunningStat::add(double x)
{
    addWeighted(x, 1.0);
}

void
RunningStat::addWeighted(double x, double weight)
{
    vp_assert(weight >= 0.0, "negative weight %f", weight);
    if (weight == 0.0)
        return;
    if (n == 0) {
        lo = hi = x;
    } else {
        lo = std::min(lo, x);
        hi = std::max(hi, x);
    }
    ++n;
    // Weighted Welford update (West 1979).
    wsum += weight;
    const double delta = x - mu;
    mu += (weight / wsum) * delta;
    m2 += weight * delta * (x - mu);
}

double
RunningStat::variance() const
{
    return wsum > 0.0 ? m2 / wsum : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

UnitHistogram::UnitHistogram(std::size_t num_buckets)
    : weights(num_buckets, 0.0)
{
    vp_assert(num_buckets > 0, "histogram needs at least one bucket");
}

void
UnitHistogram::add(double x, double weight)
{
    x = std::clamp(x, 0.0, 1.0);
    std::size_t idx = static_cast<std::size_t>(x * weights.size());
    if (idx == weights.size())
        idx = weights.size() - 1; // x == 1.0 lands in the top bucket
    weights[idx] += weight;
    totalWeight += weight;
}

double
UnitHistogram::bucketWeight(std::size_t i) const
{
    vp_assert(i < weights.size(), "bucket %zu out of range", i);
    return weights[i];
}

double
UnitHistogram::bucketFraction(std::size_t i) const
{
    return totalWeight > 0.0 ? bucketWeight(i) / totalWeight : 0.0;
}

std::string
UnitHistogram::bucketLabel(std::size_t i) const
{
    vp_assert(i < weights.size(), "bucket %zu out of range", i);
    const double width = 100.0 / static_cast<double>(weights.size());
    char buf[48];
    if (i + 1 == weights.size()) {
        std::snprintf(buf, sizeof(buf), "[%.0f,100]", width * i);
    } else {
        std::snprintf(buf, sizeof(buf), "[%.0f,%.0f)", width * i,
                      width * (i + 1));
    }
    return buf;
}

double
pearsonCorrelation(const std::vector<double> &xs,
                   const std::vector<double> &ys)
{
    vp_assert(xs.size() == ys.size(), "series length mismatch %zu vs %zu",
              xs.size(), ys.size());
    const std::size_t n = xs.size();
    if (n < 2)
        return 0.0;
    double mx = 0.0, my = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        mx += xs[i];
        my += ys[i];
    }
    mx /= n;
    my /= n;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

double
weightedMean(const std::vector<double> &values,
             const std::vector<double> &weights)
{
    vp_assert(values.size() == weights.size(),
              "series length mismatch %zu vs %zu", values.size(),
              weights.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
        num += values[i] * weights[i];
        den += weights[i];
    }
    return den > 0.0 ? num / den : 0.0;
}

} // namespace vp
