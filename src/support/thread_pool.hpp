/**
 * @file
 * A small fixed-size worker-thread pool for sharded profiling.
 *
 * The profiling engine parallelizes at the granularity of whole
 * (workload, input) jobs: each job owns its Cpu, InstrumentManager and
 * profiler shard, so workers share no mutable state and the pool needs
 * no cleverness — a mutex-protected FIFO queue and a pair of condition
 * variables. Results are written into caller-owned slots indexed by
 * job, which keeps output deterministic regardless of completion
 * order.
 */

#ifndef VP_SUPPORT_THREAD_POOL_HPP
#define VP_SUPPORT_THREAD_POOL_HPP

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vp
{

/** Fixed-size pool of worker threads consuming a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * Start `threads` workers; 0 means one per hardware thread.
     */
    explicit ThreadPool(unsigned threads = 0);

    /**
     * Shutdown is deterministic: the destructor first wait()s — every
     * task already submitted runs to completion — and only then stops
     * the workers. Tasks are never abandoned; conversely, submit()
     * after destruction begins is a programming error (asserted), so
     * there is no racing "maybe it runs, maybe not" window.
     */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a task. Safe to call from any thread. Exports the
     * post-enqueue backlog high-water mark as the
     * `support.pool.queue_depth` gauge.
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    /** Tasks queued but not yet started. */
    std::size_t queueDepth() const;

    unsigned threadCount() const
    {
        return static_cast<unsigned>(workers.size());
    }

    /** std::thread::hardware_concurrency with a sane floor of 1. */
    static unsigned hardwareThreads();

    /**
     * Run fn(0) .. fn(n-1) across up to `threads` workers and block
     * until all calls return. With threads <= 1 (or n <= 1) the calls
     * run inline on the calling thread, making sequential runs exactly
     * reproduce the pre-pool behavior.
     */
    static void parallelFor(unsigned threads, std::size_t n,
                            const std::function<void(std::size_t)> &fn);

  private:
    void workerLoop();

    mutable std::mutex mtx;
    std::condition_variable taskReady; ///< queue became non-empty
    std::condition_variable allDone;   ///< inFlight + queue hit zero
    std::deque<std::function<void()>> queue;
    std::vector<std::thread> workers;
    std::size_t inFlight = 0; ///< tasks currently executing
    bool stopping = false;
};

} // namespace vp

#endif // VP_SUPPORT_THREAD_POOL_HPP
