/**
 * @file
 * Lightweight statistics helpers used by the profilers and benches:
 * running summaries, fixed-bucket histograms, and correlation.
 */

#ifndef VP_SUPPORT_STATS_HPP
#define VP_SUPPORT_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vp
{

/**
 * Running univariate summary: count, mean, min, max, variance
 * (Welford's online algorithm, numerically stable).
 */
class RunningStat
{
  public:
    /** Add one observation. */
    void add(double x);
    /** Add one observation with a nonnegative weight. */
    void addWeighted(double x, double weight);

    std::uint64_t count() const { return n; }
    double totalWeight() const { return wsum; }
    double mean() const { return n ? mu : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    /** Population variance of the (weighted) observations. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t n = 0;
    double wsum = 0.0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
};

/**
 * Histogram over [0, 1] with a fixed number of equal-width buckets.
 *
 * Used for the paper's execution-weighted invariance distribution
 * figures (thesis section III.D): each profiled entity contributes its
 * invariance, weighted by how often it executed.
 */
class UnitHistogram
{
  public:
    explicit UnitHistogram(std::size_t num_buckets = 10);

    /** Add a sample x in [0,1] with the given weight. */
    void add(double x, double weight = 1.0);

    std::size_t numBuckets() const { return weights.size(); }
    /** Raw weight accumulated in bucket i. */
    double bucketWeight(std::size_t i) const;
    /** Bucket weight as a fraction of total weight (0 if empty). */
    double bucketFraction(std::size_t i) const;
    double total() const { return totalWeight; }

    /** Label like "[20,30)" for bucket i (percent). */
    std::string bucketLabel(std::size_t i) const;

  private:
    std::vector<double> weights;
    double totalWeight = 0.0;
};

/** Pearson correlation coefficient of two equal-length series. */
double pearsonCorrelation(const std::vector<double> &xs,
                          const std::vector<double> &ys);

/** Weighted arithmetic mean; returns 0 when the total weight is 0. */
double weightedMean(const std::vector<double> &values,
                    const std::vector<double> &weights);

} // namespace vp

#endif // VP_SUPPORT_STATS_HPP
