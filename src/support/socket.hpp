/**
 * @file
 * Thin POSIX socket helpers shared by the profile-streaming daemon
 * and client (src/serve). Addresses are strings in one of two forms:
 *
 *   "host:port"   — TCP (IPv4); port 0 asks the kernel for an
 *                   ephemeral port, boundAddress() reports the result.
 *   "unix:PATH"   — a unix-domain stream socket at PATH.
 *
 * All helpers are non-throwing: failures return -1 / false with the
 * diagnosis in an `error` out-parameter, because both the daemon and
 * the client must survive peers dying mid-conversation.
 */

#ifndef VP_SUPPORT_SOCKET_HPP
#define VP_SUPPORT_SOCKET_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace vp::net
{

/** A parsed endpoint address. */
struct Address
{
    enum class Kind { Tcp, Unix };

    Kind kind = Kind::Tcp;
    std::string host;       ///< TCP only
    std::uint16_t port = 0; ///< TCP only
    std::string path;       ///< unix only

    /** Render back to the canonical string form. */
    std::string str() const;
};

/**
 * Parse "host:port" or "unix:PATH".
 * @return true on success; false with a diagnosis in `error`.
 */
bool parseAddress(const std::string &text, Address &out,
                  std::string &error);

/**
 * Create a listening socket for `addr` (backlog applied). For a unix
 * address any stale socket file at the path is removed first. For TCP
 * port 0 the bound port is written back into `addr`.
 * @return the listening fd, or -1 with a diagnosis in `error`.
 */
int listenOn(Address &addr, std::string &error, int backlog = 16);

/** Connect to `addr`. @return the fd, or -1 with a diagnosis. */
int connectTo(const Address &addr, std::string &error);

/** Report the locally bound address of a TCP socket (after port 0). */
bool localAddress(int fd, Address &out, std::string &error);

/**
 * Write the whole buffer, retrying on short writes and EINTR. Sends
 * with MSG_NOSIGNAL so a dead peer surfaces as an error, not SIGPIPE.
 * @return true when every byte was written.
 */
bool sendAll(int fd, const void *data, std::size_t len,
             std::string &error);

/**
 * Read up to `cap` bytes. @return bytes read (0 = orderly peer close),
 * or -1 with a diagnosis in `error`. EINTR is retried.
 */
long recvSome(int fd, void *buf, std::size_t cap, std::string &error);

/** Mark an fd non-blocking. @return false with a diagnosis. */
bool setNonBlocking(int fd, std::string &error);

/** close(2) ignoring EINTR; safe on -1. */
void closeFd(int fd);

/** RAII fd owner for the helpers above. */
class FdGuard
{
  public:
    explicit FdGuard(int fd = -1) : fd_(fd) {}
    ~FdGuard() { closeFd(fd_); }

    FdGuard(const FdGuard &) = delete;
    FdGuard &operator=(const FdGuard &) = delete;
    FdGuard(FdGuard &&other) noexcept : fd_(other.release()) {}
    FdGuard &
    operator=(FdGuard &&other) noexcept
    {
        if (this != &other) {
            closeFd(fd_);
            fd_ = other.release();
        }
        return *this;
    }

    int get() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    int
    release()
    {
        const int fd = fd_;
        fd_ = -1;
        return fd;
    }

    void
    reset(int fd = -1)
    {
        if (fd != fd_) {
            closeFd(fd_);
            fd_ = fd;
        }
    }

  private:
    int fd_;
};

} // namespace vp::net

#endif // VP_SUPPORT_SOCKET_HPP
