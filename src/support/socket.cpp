#include "support/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "support/strings.hpp"

namespace vp::net
{

std::string
Address::str() const
{
    if (kind == Kind::Unix)
        return "unix:" + path;
    return vp::format("%s:%u", host.c_str(),
                      static_cast<unsigned>(port));
}

bool
parseAddress(const std::string &text, Address &out, std::string &error)
{
    if (vp::startsWith(text, "unix:")) {
        const std::string path = text.substr(5);
        if (path.empty()) {
            error = "unix address has an empty path";
            return false;
        }
        sockaddr_un probe{};
        if (path.size() >= sizeof(probe.sun_path)) {
            error = vp::format("unix socket path exceeds %zu bytes",
                               sizeof(probe.sun_path) - 1);
            return false;
        }
        out = Address{Address::Kind::Unix, "", 0, path};
        return true;
    }
    const auto colon = text.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == text.size()) {
        error = vp::format("'%s' is not host:port or unix:PATH",
                           text.c_str());
        return false;
    }
    std::int64_t port = 0;
    if (!vp::parseInt(text.substr(colon + 1), port) || port < 0 ||
        port > 65535) {
        error = vp::format("'%s' has a bad port", text.c_str());
        return false;
    }
    out = Address{Address::Kind::Tcp, text.substr(0, colon),
                  static_cast<std::uint16_t>(port), ""};
    return true;
}

namespace
{

bool
fillSockaddrIn(const Address &addr, sockaddr_in &sin, std::string &error)
{
    std::memset(&sin, 0, sizeof(sin));
    sin.sin_family = AF_INET;
    sin.sin_port = htons(addr.port);
    const std::string &host =
        addr.host == "localhost" ? std::string("127.0.0.1") : addr.host;
    if (::inet_pton(AF_INET, host.c_str(), &sin.sin_addr) != 1) {
        error = vp::format("'%s' is not an IPv4 address (use dotted "
                           "quad or localhost)",
                           addr.host.c_str());
        return false;
    }
    return true;
}

void
fillSockaddrUn(const Address &addr, sockaddr_un &sun)
{
    std::memset(&sun, 0, sizeof(sun));
    sun.sun_family = AF_UNIX;
    std::memcpy(sun.sun_path, addr.path.c_str(), addr.path.size());
}

std::string
errnoText(const char *what)
{
    return vp::format("%s: %s", what, std::strerror(errno));
}

} // namespace

int
listenOn(Address &addr, std::string &error, int backlog)
{
    const int family =
        addr.kind == Address::Kind::Unix ? AF_UNIX : AF_INET;
    FdGuard fd(::socket(family, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoText("socket");
        return -1;
    }
    if (addr.kind == Address::Kind::Tcp) {
        const int one = 1;
        ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof(one));
        sockaddr_in sin;
        if (!fillSockaddrIn(addr, sin, error))
            return -1;
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sin),
                   sizeof(sin)) != 0) {
            error = errnoText("bind");
            return -1;
        }
    } else {
        ::unlink(addr.path.c_str()); // stale socket from a dead daemon
        sockaddr_un sun;
        fillSockaddrUn(addr, sun);
        if (::bind(fd.get(), reinterpret_cast<sockaddr *>(&sun),
                   sizeof(sun)) != 0) {
            error = errnoText("bind");
            return -1;
        }
    }
    if (::listen(fd.get(), backlog) != 0) {
        error = errnoText("listen");
        return -1;
    }
    if (addr.kind == Address::Kind::Tcp && addr.port == 0) {
        Address bound;
        if (!localAddress(fd.get(), bound, error))
            return -1;
        addr.port = bound.port;
    }
    return fd.release();
}

int
connectTo(const Address &addr, std::string &error)
{
    const int family =
        addr.kind == Address::Kind::Unix ? AF_UNIX : AF_INET;
    FdGuard fd(::socket(family, SOCK_STREAM, 0));
    if (!fd.valid()) {
        error = errnoText("socket");
        return -1;
    }
    int rc;
    if (addr.kind == Address::Kind::Tcp) {
        sockaddr_in sin;
        if (!fillSockaddrIn(addr, sin, error))
            return -1;
        do {
            rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&sin),
                           sizeof(sin));
        } while (rc != 0 && errno == EINTR);
    } else {
        sockaddr_un sun;
        fillSockaddrUn(addr, sun);
        do {
            rc = ::connect(fd.get(), reinterpret_cast<sockaddr *>(&sun),
                           sizeof(sun));
        } while (rc != 0 && errno == EINTR);
    }
    if (rc != 0) {
        error = errnoText("connect");
        return -1;
    }
    return fd.release();
}

bool
localAddress(int fd, Address &out, std::string &error)
{
    sockaddr_in sin{};
    socklen_t len = sizeof(sin);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&sin), &len) !=
            0 ||
        sin.sin_family != AF_INET) {
        error = errnoText("getsockname");
        return false;
    }
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &sin.sin_addr, buf, sizeof(buf));
    out = Address{Address::Kind::Tcp, buf, ntohs(sin.sin_port), ""};
    return true;
}

bool
sendAll(int fd, const void *data, std::size_t len, std::string &error)
{
    const auto *p = static_cast<const unsigned char *>(data);
    while (len > 0) {
        const long n = ::send(fd, p, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = errnoText("send");
            return false;
        }
        p += n;
        len -= static_cast<std::size_t>(n);
    }
    return true;
}

long
recvSome(int fd, void *buf, std::size_t cap, std::string &error)
{
    while (true) {
        const long n = ::recv(fd, buf, cap, 0);
        if (n >= 0)
            return n;
        if (errno == EINTR)
            continue;
        error = errnoText("recv");
        return -1;
    }
}

bool
setNonBlocking(int fd, std::string &error)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
        error = errnoText("fcntl(O_NONBLOCK)");
        return false;
    }
    return true;
}

void
closeFd(int fd)
{
    if (fd >= 0)
        ::close(fd);
}

} // namespace vp::net
