/**
 * @file
 * FlatSet64 — a flat, allocation-light set of uint64 keys for the
 * profiling hot path.
 *
 * The per-entity distinct-value tracker (ValueProfile's Diff metric)
 * used to be a std::unordered_set, which pays a node allocation per
 * element and two dependent cache misses per probe. Most entities are
 * near-invariant — a handful of distinct values — so FlatSet64 keeps
 * the first few keys in a small inline array (one cache line, no heap
 * at all) and spills to a single open-addressing table only when an
 * entity turns out to be value-rich.
 *
 * The spill table stores bare keys, 8 bytes per slot, with 0 as the
 * empty sentinel (key 0 is tracked by a separate flag): a probe costs
 * one data-dependent load, and a value-rich entity's table is half
 * the size an explicit-occupancy layout would need — the difference
 * between staying in L2 and thrashing it for entities with hundreds
 * of thousands of distinct values.
 *
 * Iteration order is deterministic for a given insertion history
 * (key 0 first if present, inline slots in insertion order, then
 * table slots in probe order), which keeps merged profiles
 * reproducible. Not thread-safe; one set belongs to one profiling
 * shard, like every other profile structure.
 */

#ifndef VP_SUPPORT_FLAT_SET_HPP
#define VP_SUPPORT_FLAT_SET_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vp
{

/** Flat set of uint64 keys: inline up to 8 elements, then open
 *  addressing with power-of-two capacity and 0 as empty sentinel. */
class FlatSet64
{
  public:
    FlatSet64() = default;

    /** Insert a key; true if it was not present before. */
    bool
    insert(std::uint64_t key)
    {
        if (key == 0) {
            if (hasZero)
                return false;
            hasZero = true;
            ++count;
            return true;
        }
        if (slots.empty()) {
            for (std::size_t i = 0; i < inlineCount; ++i)
                if (inlineKeys[i] == key)
                    return false;
            if (inlineCount < kInlineCap) {
                inlineKeys[inlineCount++] = key;
                ++count;
                return true;
            }
            spill();
        }
        return tableInsert(key);
    }

    /** True if the key has been inserted. */
    bool
    contains(std::uint64_t key) const
    {
        if (key == 0)
            return hasZero;
        if (slots.empty()) {
            for (std::size_t i = 0; i < inlineCount; ++i)
                if (inlineKeys[i] == key)
                    return true;
            return false;
        }
        const std::size_t mask = slots.size() - 1;
        for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
            if (slots[i] == 0)
                return false;
            if (slots[i] == key)
                return true;
        }
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    /** Visit every key, deterministically for a given history. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        if (hasZero)
            fn(std::uint64_t{0});
        for (std::size_t i = 0; i < inlineCount; ++i)
            fn(inlineKeys[i]);
        for (const std::uint64_t key : slots)
            if (key != 0)
                fn(key);
    }

    void
    clear()
    {
        inlineCount = 0;
        hasZero = false;
        count = 0;
        slots.clear();
        slots.shrink_to_fit();
    }

  private:
    static constexpr std::size_t kInlineCap = 8;

    static std::size_t
    mix(std::uint64_t x)
    {
        // splitmix64 finalizer — full-avalanche, cheap.
        x ^= x >> 30;
        x *= 0xBF58476D1CE4E5B9ull;
        x ^= x >> 27;
        x *= 0x94D049BB133111EBull;
        x ^= x >> 31;
        return static_cast<std::size_t>(x);
    }

    bool
    tableInsert(std::uint64_t key)
    {
        const std::size_t mask = slots.size() - 1;
        for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
            if (slots[i] == 0) {
                slots[i] = key;
                ++count;
                // Grow at ~70% occupancy. `count` includes the inline
                // elements (rehashed into the table at spill) and at
                // most one zero key, which occupies no slot — close
                // enough for a load-factor bound.
                if (count * 10 >= slots.size() * 7)
                    grow(slots.size() * 2);
                return true;
            }
            if (slots[i] == key)
                return false;
        }
    }

    void
    spill()
    {
        grow(64);
    }

    void
    grow(std::size_t new_cap)
    {
        std::vector<std::uint64_t> old = std::move(slots);
        slots.assign(new_cap, 0);
        const std::size_t mask = new_cap - 1;
        auto place = [&](std::uint64_t key) {
            for (std::size_t i = mix(key) & mask;; i = (i + 1) & mask) {
                if (slots[i] == 0) {
                    slots[i] = key;
                    return;
                }
            }
        };
        for (std::size_t i = 0; i < inlineCount; ++i)
            place(inlineKeys[i]);
        inlineCount = 0;
        for (const std::uint64_t key : old)
            if (key != 0)
                place(key);
    }

    std::uint64_t inlineKeys[kInlineCap] = {};
    std::uint8_t inlineCount = 0;
    bool hasZero = false;
    std::size_t count = 0;
    std::vector<std::uint64_t> slots;  ///< empty until the inline
                                       ///< array spills; 0 = free slot
};

} // namespace vp

#endif // VP_SUPPORT_FLAT_SET_HPP
