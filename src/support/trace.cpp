#include "support/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <ostream>

namespace vp::trace
{

namespace
{

thread_local int tlsWorkerId = 0;

/** Minimal JSON string escape (names and args are mostly ASCII). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

} // namespace

int
workerId()
{
    return tlsWorkerId;
}

void
setWorkerId(int id)
{
    tlsWorkerId = id;
}

TraceCollector &
TraceCollector::global()
{
    static TraceCollector collector;
    return collector;
}

void
TraceCollector::setEnabled(bool enable)
{
    if (enable) {
        std::lock_guard<std::mutex> lock(mu);
        epoch = std::chrono::steady_clock::now();
    }
    on.store(enable, std::memory_order_relaxed);
}

std::uint64_t
TraceCollector::nowUs() const
{
    if (!enabled())
        return 0;
    std::lock_guard<std::mutex> lock(mu);
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch)
            .count());
}

void
TraceCollector::addComplete(TraceEvent event)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu);
    recorded.push_back(std::move(event));
}

void
TraceCollector::clear()
{
    std::lock_guard<std::mutex> lock(mu);
    recorded.clear();
}

std::size_t
TraceCollector::size() const
{
    std::lock_guard<std::mutex> lock(mu);
    return recorded.size();
}

std::vector<TraceEvent>
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mu);
    return recorded;
}

void
TraceCollector::writeJson(std::ostream &os) const
{
    std::vector<TraceEvent> evs = events();
    std::sort(evs.begin(), evs.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  return a.tid < b.tid;
              });

    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    // Label each lane so Perfetto shows "main" / "worker N" tracks.
    std::map<int, bool> lanes;
    for (const auto &e : evs)
        lanes.emplace(e.tid, true);
    for (const auto &[tid, unused] : lanes) {
        os << (first ? "\n" : ",\n")
           << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
              "\"tid\": "
           << tid << ", \"args\": {\"name\": \""
           << (tid == 0 ? std::string("main")
                        : "worker " + std::to_string(tid))
           << "\"}}";
        first = false;
    }
    for (const auto &e : evs) {
        os << (first ? "\n" : ",\n") << "  {\"name\": ";
        writeJsonString(os, e.name);
        os << ", \"cat\": \"vp\", \"ph\": \"X\", \"pid\": 1, \"tid\": "
           << e.tid << ", \"ts\": " << e.tsUs
           << ", \"dur\": " << e.durUs;
        if (!e.args.empty()) {
            os << ", \"args\": {";
            bool first_arg = true;
            for (const auto &[key, value] : e.args) {
                if (!first_arg)
                    os << ", ";
                writeJsonString(os, key);
                os << ": ";
                writeJsonString(os, value);
                first_arg = false;
            }
            os << "}";
        }
        os << "}";
        first = false;
    }
    os << "\n]}\n";
}

ScopedSpan::ScopedSpan(std::string name)
    : active(TraceCollector::global().enabled())
{
    if (!active)
        return;
    event.name = std::move(name);
    event.tid = workerId();
    event.tsUs = TraceCollector::global().nowUs();
    start = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (!active)
        return;
    event.durUs = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - start)
            .count());
    TraceCollector::global().addComplete(std::move(event));
}

void
ScopedSpan::arg(std::string key, std::string value)
{
    if (!active)
        return;
    event.args.emplace_back(std::move(key), std::move(value));
}

} // namespace vp::trace
