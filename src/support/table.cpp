#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "support/logging.hpp"

namespace vp
{

TextTable::TextTable(std::vector<std::string> hdrs)
    : headers(std::move(hdrs))
{
    vp_assert(!headers.empty(), "table needs at least one column");
}

TextTable &
TextTable::row()
{
    rows.emplace_back();
    return *this;
}

void
TextTable::push(Cell cell)
{
    vp_assert(!rows.empty(), "cell() before row()");
    vp_assert(rows.back().size() < headers.size(),
              "too many cells in row %zu", rows.size() - 1);
    rows.back().push_back(std::move(cell));
}

TextTable &
TextTable::cell(const std::string &text)
{
    push({text, false});
    return *this;
}

TextTable &
TextTable::cell(const char *text)
{
    push({std::string(text), false});
    return *this;
}

TextTable &
TextTable::cell(std::int64_t v)
{
    push({std::to_string(v), true});
    return *this;
}

TextTable &
TextTable::cell(std::uint64_t v)
{
    push({std::to_string(v), true});
    return *this;
}

TextTable &
TextTable::cell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    push({buf, true});
    return *this;
}

TextTable &
TextTable::percent(double fraction, int precision)
{
    return cell(fraction * 100.0, precision);
}

void
TextTable::print(std::ostream &os, const std::string &title) const
{
    std::vector<std::size_t> width(headers.size(), 0);
    for (std::size_t c = 0; c < headers.size(); ++c)
        width[c] = headers[c].size();
    for (const auto &r : rows)
        for (std::size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].text.size());

    if (!title.empty())
        os << title << "\n";

    auto rule = [&] {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            for (std::size_t i = 0; i < width[c] + 2; ++i)
                os << '-';
        }
        os << "\n";
    };

    rule();
    for (std::size_t c = 0; c < headers.size(); ++c) {
        os << headers[c];
        for (std::size_t i = headers[c].size(); i < width[c] + 2; ++i)
            os << ' ';
    }
    os << "\n";
    rule();

    for (const auto &r : rows) {
        for (std::size_t c = 0; c < headers.size(); ++c) {
            const std::string text = c < r.size() ? r[c].text : "";
            const bool right = c < r.size() && r[c].rightAlign;
            if (right) {
                for (std::size_t i = text.size(); i < width[c]; ++i)
                    os << ' ';
                os << text << "  ";
            } else {
                os << text;
                for (std::size_t i = text.size(); i < width[c] + 2; ++i)
                    os << ' ';
            }
        }
        os << "\n";
    }
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::string &s, bool last) {
        const bool quote = s.find_first_of(",\"\n") != std::string::npos;
        if (quote) {
            os << '"';
            for (char ch : s) {
                if (ch == '"')
                    os << '"';
                os << ch;
            }
            os << '"';
        } else {
            os << s;
        }
        os << (last ? "\n" : ",");
    };
    for (std::size_t c = 0; c < headers.size(); ++c)
        emit(headers[c], c + 1 == headers.size());
    for (const auto &r : rows) {
        for (std::size_t c = 0; c < headers.size(); ++c)
            emit(c < r.size() ? r[c].text : "", c + 1 == headers.size());
    }
}

} // namespace vp
