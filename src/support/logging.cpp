#include "support/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace vp
{

namespace
{
std::atomic<bool> quietFlag{false};

thread_local int tlsShard = -1;

/**
 * All report paths funnel through one mutex and emit each message as
 * a single write, so concurrent shard output never interleaves
 * mid-line. (A function-local static, so it is usable during static
 * init/teardown.)
 */
std::mutex &
logMutex()
{
    static std::mutex m;
    return m;
}

/**
 * Compose "tag: [shard N] message\n" into one buffer and write it
 * with a single fputs under the log mutex.
 */
void
vreport(const char *prefix, const char *fmt, va_list ap)
{
    char head[128];
    if (tlsShard >= 0)
        std::snprintf(head, sizeof(head), "%s[shard %d] ", prefix,
                      tlsShard);
    else
        std::snprintf(head, sizeof(head), "%s", prefix);

    va_list ap_count;
    va_copy(ap_count, ap);
    const int body_len = std::vsnprintf(nullptr, 0, fmt, ap_count);
    va_end(ap_count);
    if (body_len < 0)
        return;

    std::vector<char> buf(std::strlen(head) + body_len + 2);
    char *p = buf.data();
    std::memcpy(p, head, std::strlen(head));
    p += std::strlen(head);
    std::vsnprintf(p, static_cast<std::size_t>(body_len) + 1, fmt, ap);
    p += body_len;
    *p++ = '\n';
    *p = '\0';

    std::lock_guard<std::mutex> lock(logMutex());
    std::fputs(buf.data(), stderr);
}

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
setLogShard(int shard)
{
    tlsShard = shard;
}

int
logShard()
{
    return tlsShard;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    char prefix[256];
    std::snprintf(prefix, sizeof(prefix), "panic: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    vreport(prefix, fmt, ap);
    va_end(ap);
    std::abort();
}

void
assertFailImpl(const char *file, int line, const char *cond,
               const char *fmt, ...)
{
    char prefix[512];
    std::snprintf(prefix, sizeof(prefix),
                  "panic: %s:%d: assertion '%s' failed: ", file, line,
                  cond);
    va_list ap;
    va_start(ap, fmt);
    vreport(prefix, fmt, ap);
    va_end(ap);
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    char prefix[256];
    std::snprintf(prefix, sizeof(prefix), "fatal: %s:%d: ", file, line);
    va_list ap;
    va_start(ap, fmt);
    vreport(prefix, fmt, ap);
    va_end(ap);
    std::exit(1);
}

void
warnImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("warn: ", fmt, ap);
    va_end(ap);
}

void
informImpl(const char *fmt, ...)
{
    if (isQuiet())
        return;
    va_list ap;
    va_start(ap, fmt);
    vreport("info: ", fmt, ap);
    va_end(ap);
}

} // namespace vp
