/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component in the repository (input-set generators,
 * synthetic value streams for tests) draws from this generator so that
 * experiments are exactly reproducible across runs and machines.
 */

#ifndef VP_SUPPORT_RNG_HPP
#define VP_SUPPORT_RNG_HPP

#include <cstdint>

namespace vp
{

/**
 * A small, fast, deterministic RNG (xoshiro256** seeded via splitmix64).
 *
 * Not cryptographic; statistically solid for workload generation.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 expansion of the seed into the four state words.
        std::uint64_t x = seed;
        for (auto &word : state) {
            x += 0x9E3779B97F4A7C15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
            word = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state[1] * 5, 7) * 9;
        const std::uint64_t t = state[1] << 17;
        state[2] ^= state[0];
        state[3] ^= state[1];
        state[1] ^= state[2];
        state[0] ^= state[3];
        state[2] ^= t;
        state[3] = rotl(state[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Multiply-shift rejection-free mapping (Lemire); bias is
        // negligible for the bounds used here.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state[4];
};

} // namespace vp

#endif // VP_SUPPORT_RNG_HPP
