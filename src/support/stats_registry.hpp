/**
 * @file
 * Runtime statistics registry — the profiling engine's
 * self-instrumentation (see DESIGN.md, "Observability").
 *
 * A Registry holds three kinds of metrics:
 *
 *  - counters       : monotonically increasing 64-bit values, identified
 *                     by a fixed enum (Cid) so the hot paths pay one
 *                     array index + relaxed atomic add. Counters merge
 *                     exactly (sum), so totals are independent of how a
 *                     run was sharded.
 *  - gauges         : named high-water marks (merge = max).
 *  - distributions  : named sample summaries (count/min/max/mean and
 *                     nearest-rank p50/p99 over a bounded sample
 *                     reservoir). Moments merge exactly; quantiles are
 *                     approximate once the reservoir decimates.
 *
 * Registries are mergeable across shards like the TNV tables: each
 * parallel profiling job collects into its own registry (installed as
 * the thread's *current* registry via ScopedRegistry) and the runner
 * merges it into the parent when the job finishes.
 *
 * Cost model: every hot-path hook is a macro that first reads one
 * relaxed atomic bool; collection is off by default, so unprofiled
 * runs pay a single predictable branch. Defining VP_NO_STATS (CMake
 * -DVP_STATS=OFF) compiles the macros away entirely.
 */

#ifndef VP_SUPPORT_STATS_REGISTRY_HPP
#define VP_SUPPORT_STATS_REGISTRY_HPP

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace vp::stats
{

/**
 * Well-known counters. Names follow the `layer.subsystem.event`
 * scheme documented in DESIGN.md; counterName() returns them.
 */
enum class Cid : unsigned
{
    TnvInserts,             ///< core.tnv.inserts — new value entered a table
    TnvEvictions,           ///< core.tnv.evictions — replacement victims
    TnvClears,              ///< core.tnv.clears — bottom-half clear ops
    TnvClearEvictions,      ///< core.tnv.clear_evictions — entries dropped
    TnvMerges,              ///< core.tnv.merges — shard-table merges
    TnvMergeDroppedEntries, ///< core.tnv.merge_dropped_entries
    TnvMergeDroppedCount,   ///< core.tnv.merge_dropped_count — counts lost
    SamplerBursts,          ///< core.sampler.bursts — bursts completed
    SamplerConvergences,    ///< core.sampler.convergences
    SamplerRetriggers,      ///< core.sampler.retriggers — phase changes
    SamplerBackoffs,        ///< core.sampler.backoffs — skip growth
    SimInsts,               ///< vpsim.insts — instructions retired
    SimLoads,               ///< vpsim.loads — loads retired
    SimStores,              ///< vpsim.stores — stores retired
    RunnerJobs,             ///< runner.jobs — profiling jobs completed
    PredictTagEvictions,    ///< predict.tag_evictions — table churn
    PredictSlotReplacements,///< predict.slot_replacements — value churn
    SpecializeGuardsEmitted,///< specialize.guards_emitted
    SpecializeGuardHits,    ///< specialize.guard_hits — dispatches to clone
    SpecializeGuardMisses,  ///< specialize.guard_misses — fallback path
    ServeFramesIn,          ///< serve.frames_in — frames decoded by vpd
    ServeFramesOut,         ///< serve.frames_out — replies queued by vpd
    ServeBytesIn,           ///< serve.bytes_in — payload+header bytes read
    ServeBytesOut,          ///< serve.bytes_out — reply bytes queued
    ServeDeltasMerged,      ///< serve.deltas_merged — applied exactly once
    ServeDeltaDuplicates,   ///< serve.delta_duplicates — re-acked, not merged
    ServeDecodeErrors,      ///< serve.decode_errors — corrupt/unknown frames
    ServeSnapshotsSaved,    ///< serve.snapshots_saved — atomic persists
    ServeAccepts,           ///< serve.accepts — client connections accepted
    ServeClientBatches,     ///< serve.client.batches — batches delivered
    ServeClientFramesSent,  ///< serve.client.frames_sent
    ServeClientBytesSent,   ///< serve.client.bytes_sent
    ServeClientRetries,     ///< serve.client.retries — reconnect/backoff
    ServeClientSpilledDeltas,///< serve.client.spilled_deltas — local fallback
    ServeFramesInV1,        ///< serve.frames_in_v1 — wire-v1 frames decoded
    ServeFramesInV2,        ///< serve.frames_in_v2 — wire-v2 frames decoded
    ServeHttpAccepts,       ///< serve.http.accepts — HTTP sessions accepted
    ServeHttpRequests,      ///< serve.http.requests — HTTP requests served
    ServeHttpErrors,        ///< serve.http.errors — 4xx/5xx responses
    ServeHttpTimeouts,      ///< serve.http.timeouts — slowloris kills (408)
    ServeHttpBytesIn,       ///< serve.http.bytes_in — request bytes read
    ServeHttpBytesOut,      ///< serve.http.bytes_out — response bytes queued
    ServeHttpWatchWakeups,  ///< serve.http.watch_wakeups — long-polls answered
    ServeForwardPartials,   ///< serve.forward_partials — partials re-emitted upstream
    ServeForwardFlushes,    ///< serve.forward_flushes — forward ticks that sent data
    ServeForwardAcked,      ///< serve.forward_acked — forwarded deltas acked upstream
    ServeForwardSpilled,    ///< serve.forward_spilled — forwarded deltas spilled
    ServeForwardReplayed,   ///< serve.forward_replayed — spill frames replayed at start
    ServeForwardHellos,     ///< serve.forward_hellos — HELLO frames accepted
    ServeForwardApplied,    ///< serve.forward_applied — forwarded partials applied
    ServeForwardDuplicates, ///< serve.forward_duplicates — stale forwards re-acked
    ServeForwardLoops,      ///< serve.forward_loops — forwarding cycles rejected
    ServeForwardIdClash,    ///< serve.forward_id_clash — producer-id ownership clashes
    AdaptInstalls,          ///< adapt.installs — specializations hot-patched in
    AdaptGuardHits,         ///< adapt.guard_hits — calls matching the bindings
    AdaptGuardMisses,       ///< adapt.guard_misses — calls taking the fallback
    AdaptDeopts,            ///< adapt.deopts — redirects torn out (miss rate)
    AdaptBlacklists,        ///< adapt.blacklists — sites given up on
    AdaptRespecializations, ///< adapt.respecializations — re-installs after phase change

    NumCounters
};

/** Canonical dotted name of a well-known counter. */
const char *counterName(Cid id);

/**
 * Sample summary: exact count/min/max/mean (Welford), plus a bounded
 * reservoir for nearest-rank quantiles. Beyond kSampleCap samples the
 * reservoir decimates deterministically (keeps every 2nd, then every
 * 4th, ...), so quantiles of very long streams are approximate while
 * the moments stay exact.
 */
class Distribution
{
  public:
    static constexpr std::size_t kSampleCap = 8192;

    void add(double x);

    /** Merge another distribution (moments exact, samples unioned). */
    void merge(const Distribution &other);

    std::uint64_t count() const { return n; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }
    double mean() const { return n ? mu : 0.0; }

    /** Nearest-rank quantile over the reservoir, q in [0,1]. */
    double quantile(double q) const;

    const std::vector<double> &samples() const { return reservoir; }

  private:
    void keep(double x);

    std::uint64_t n = 0;
    double mu = 0.0;
    double m2 = 0.0;
    double lo = 0.0;
    double hi = 0.0;
    std::vector<double> reservoir;
    std::uint64_t sampleEvery = 1; ///< reservoir decimation stride
    std::uint64_t sinceSample = 0; ///< adds since last kept sample
};

/** A mergeable set of counters, gauges, and distributions. */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &other);
    Registry &operator=(const Registry &other);

    /** Add to a well-known counter. Thread-safe, wait-free. */
    void
    add(Cid id, std::uint64_t delta = 1)
    {
        counters[static_cast<unsigned>(id)].fetch_add(
            delta, std::memory_order_relaxed);
    }

    /** Current value of a well-known counter. */
    std::uint64_t
    counter(Cid id) const
    {
        return counters[static_cast<unsigned>(id)].load(
            std::memory_order_relaxed);
    }

    /** Raise a named high-water mark. Thread-safe. */
    void gaugeMax(const std::string &name, double value);

    /** Record one sample into a named distribution. Thread-safe. */
    void observe(const std::string &name, double value);

    /**
     * Merge another registry into this one: counters sum, gauges take
     * the max, distributions merge. Thread-safe on the destination;
     * the source must be quiescent.
     */
    void merge(const Registry &other);

    /** Zero every metric (tests and tool reuse). */
    void reset();

    /** Named gauges, for reporting. */
    std::map<std::string, double> gaugeValues() const;

    /** Copy of a named distribution (empty if absent). */
    Distribution distribution(const std::string &name) const;

    /** Names of all distributions recorded so far. */
    std::vector<std::string> distributionNames() const;

    /**
     * Write as JSON: {"version":1,"counters":{...},"gauges":{...},
     * "distributions":{name:{count,min,max,mean,p50,p99}}}. Every
     * well-known counter appears (zeros included) so the schema is
     * stable across runs.
     */
    void writeJson(std::ostream &os) const;

    /** Human-readable dump, nonzero metrics only. */
    void writeText(std::ostream &os) const;

    /**
     * Prometheus text exposition (format 0.0.4) of the whole registry:
     * every counter as `vp_<name>_total` (dots become underscores, one
     * `# TYPE` line each, zeros included so scrapes have a stable
     * shape), every gauge as `vp_<name>`, every distribution as a
     * summary (`{quantile="0.5"|"0.99"}`, `_sum`, `_count`). Callers
     * append their own subsystem-specific gauge lines after it.
     */
    void writeProm(std::ostream &os) const;

  private:
    std::array<std::atomic<std::uint64_t>,
               static_cast<unsigned>(Cid::NumCounters)>
        counters{};
    mutable std::mutex mu;
    std::map<std::string, double> gauges;
    std::map<std::string, Distribution> dists;
};

/** The process-wide default registry. */
Registry &global();

/**
 * The calling thread's current registry — the sink every VP_STAT_*
 * macro writes to. Defaults to global(); ScopedRegistry redirects it
 * for a shard's lifetime.
 */
Registry &current();

/** Redirect the calling thread's current registry for a scope. */
class ScopedRegistry
{
  public:
    explicit ScopedRegistry(Registry &reg);
    ~ScopedRegistry();

    ScopedRegistry(const ScopedRegistry &) = delete;
    ScopedRegistry &operator=(const ScopedRegistry &) = delete;

  private:
    Registry *prev;
};

namespace detail
{
extern std::atomic<bool> collectionEnabled;
} // namespace detail

/** True when runtime stats collection is on (default off). */
inline bool
enabled()
{
    return detail::collectionEnabled.load(std::memory_order_relaxed);
}

/** Turn runtime stats collection on or off. */
void setEnabled(bool on);

/**
 * RAII timer: measures wall time from construction to destruction and
 * records it, in microseconds, into the named distribution of the
 * registry that was current at construction. No-op when collection is
 * disabled at construction time.
 */
class ScopedTimer
{
  public:
    explicit ScopedTimer(const char *dist_name);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer &) = delete;
    ScopedTimer &operator=(const ScopedTimer &) = delete;

  private:
    const char *name;
    Registry *sink; ///< nullptr when disabled at construction
    std::chrono::steady_clock::time_point start;
};

} // namespace vp::stats

/*
 * Hot-path hooks. Each checks the runtime enable flag first; with
 * VP_NO_STATS defined they compile to nothing.
 */
#ifdef VP_NO_STATS
#define VP_STAT_INC(id) ((void)0)
#define VP_STAT_ADD(id, delta) ((void)0)
#define VP_STAT_OBSERVE(name, value) ((void)0)
#define VP_STAT_GAUGE_MAX(name, value) ((void)0)
#define VP_STAT_TIMER(var, name) ((void)0)
#else
#define VP_STAT_INC(id)                                                      \
    do {                                                                     \
        if (::vp::stats::enabled())                                          \
            ::vp::stats::current().add(id);                                  \
    } while (0)
#define VP_STAT_ADD(id, delta)                                               \
    do {                                                                     \
        if (::vp::stats::enabled())                                          \
            ::vp::stats::current().add(id, delta);                           \
    } while (0)
#define VP_STAT_OBSERVE(name, value)                                         \
    do {                                                                     \
        if (::vp::stats::enabled())                                          \
            ::vp::stats::current().observe(name, value);                     \
    } while (0)
#define VP_STAT_GAUGE_MAX(name, value)                                       \
    do {                                                                     \
        if (::vp::stats::enabled())                                          \
            ::vp::stats::current().gaugeMax(name, value);                    \
    } while (0)
#define VP_STAT_TIMER(var, name) ::vp::stats::ScopedTimer var(name)
#endif

#endif // VP_SUPPORT_STATS_REGISTRY_HPP
