/**
 * @file
 * Fixed-width text table and CSV emission.
 *
 * Every bench binary prints its table/figure through this class so the
 * output format matches across experiments and can be diffed against
 * EXPERIMENTS.md. Columns are sized to their widest cell; numeric cells
 * are right-aligned, text cells left-aligned.
 */

#ifndef VP_SUPPORT_TABLE_HPP
#define VP_SUPPORT_TABLE_HPP

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vp
{

/** A simple column-aligned table builder. */
class TextTable
{
  public:
    /** Start a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    TextTable &row();

    /** Append a text cell (left aligned). */
    TextTable &cell(const std::string &text);
    TextTable &cell(const char *text);
    /** Append an integer cell (right aligned). */
    TextTable &cell(std::int64_t v);
    TextTable &cell(std::uint64_t v);
    /** Append a fixed-precision floating cell (right aligned). */
    TextTable &cell(double v, int precision = 2);
    /** Append a percentage cell rendered as "12.3" (right aligned). */
    TextTable &percent(double fraction, int precision = 1);

    /** Number of data rows so far. */
    std::size_t numRows() const { return rows.size(); }

    /** Render with aligned columns to the stream. */
    void print(std::ostream &os, const std::string &title = "") const;

    /** Render as CSV (no alignment padding). */
    void printCsv(std::ostream &os) const;

  private:
    struct Cell
    {
        std::string text;
        bool rightAlign = false;
    };

    void push(Cell cell);

    std::vector<std::string> headers;
    std::vector<std::vector<Cell>> rows;
};

} // namespace vp

#endif // VP_SUPPORT_TABLE_HPP
