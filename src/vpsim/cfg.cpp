#include "vpsim/cfg.hpp"

#include <algorithm>
#include <set>

#include "support/logging.hpp"

namespace vpsim
{

Cfg::Cfg(const Program &prog, std::uint32_t begin, std::uint32_t end)
    : lo(begin), hi(end)
{
    vp_assert(begin <= end && end <= prog.code.size(),
              "bad CFG range [%u,%u)", begin, end);
    if (begin == end)
        return;

    // Leaders: the range entry, every in-range control-flow target,
    // and every instruction following a control transfer.
    std::set<std::uint32_t> leaders;
    leaders.insert(begin);
    for (std::uint32_t pc = begin; pc < end; ++pc) {
        const Inst &inst = prog.code[pc];
        if (!isControl(inst.op))
            continue;
        if (inst.op != Opcode::JALR && inst.op != Opcode::JAL) {
            const auto target = static_cast<std::uint32_t>(inst.imm);
            if (target >= begin && target < end)
                leaders.insert(target);
        }
        if (pc + 1 < end)
            leaders.insert(pc + 1);
    }

    // Carve blocks in address order.
    blockIndex.assign(end - begin, 0);
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        auto next = std::next(it);
        BasicBlock bb;
        bb.begin = *it;
        bb.end = next == leaders.end() ? end : *next;
        const auto id = static_cast<std::uint32_t>(blockList.size());
        for (std::uint32_t pc = bb.begin; pc < bb.end; ++pc)
            blockIndex[pc - lo] = id;
        blockList.push_back(std::move(bb));
    }

    // Wire successors/predecessors.
    for (std::uint32_t id = 0; id < blockList.size(); ++id) {
        BasicBlock &bb = blockList[id];
        const Inst &last = prog.code[bb.end - 1];
        auto link = [&](std::uint32_t target_pc) {
            if (target_pc < begin || target_pc >= end)
                return; // leaves the region (e.g. a return path)
            const std::uint32_t succ = blockIndex[target_pc - lo];
            bb.succs.push_back(succ);
            blockList[succ].preds.push_back(id);
        };
        switch (last.op) {
          case Opcode::JMP:
            link(static_cast<std::uint32_t>(last.imm));
            break;
          case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
          case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
            link(static_cast<std::uint32_t>(last.imm));
            link(bb.end);
            break;
          case Opcode::JALR:
            // Computed jump or return: no static successors, except
            // that a linking JALR (a call) falls through on return.
            if (last.rd != regZero)
                link(bb.end);
            break;
          case Opcode::JAL:
            // A call within the region: control returns to the next
            // instruction.
            link(bb.end);
            break;
          case Opcode::SYSCALL:
            // exit never falls through; other syscalls do. Be
            // conservative and link the fall-through.
            link(bb.end);
            break;
          default:
            link(bb.end);
            break;
        }
    }
}

std::uint32_t
Cfg::blockOf(std::uint32_t pc) const
{
    vp_assert(pc >= lo && pc < hi, "pc %u outside CFG range", pc);
    return blockIndex[pc - lo];
}

} // namespace vpsim
