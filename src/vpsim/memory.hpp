/**
 * @file
 * Flat little-endian byte-addressed data memory for the VM.
 *
 * Accessors are bounds-checked; out-of-range accesses set a sticky
 * fault flag that the Cpu turns into a trap, so buggy guest programs
 * cannot corrupt host state.
 */

#ifndef VP_VPSIM_MEMORY_HPP
#define VP_VPSIM_MEMORY_HPP

#include <cstdint>
#include <cstring>
#include <vector>

namespace vpsim
{

/** Flat guest data memory. */
class Memory
{
  public:
    explicit Memory(std::size_t bytes) : data(bytes, 0) {}

    std::size_t size() const { return data.size(); }

    /** Clear contents (to zero) without resizing. */
    void
    clear()
    {
        std::memset(data.data(), 0, data.size());
        faulted = false;
    }

    /** True once any access has gone out of bounds. */
    bool hasFault() const { return faulted; }
    std::uint64_t faultAddress() const { return faultAddr; }

    /** Load an unsigned little-endian value of 1/2/4/8 bytes. */
    std::uint64_t
    load(std::uint64_t addr, unsigned bytes)
    {
        if (!inBounds(addr, bytes)) {
            fault(addr);
            return 0;
        }
        std::uint64_t v = 0;
        std::memcpy(&v, data.data() + addr, bytes);
        return v;
    }

    /** Store the low `bytes` bytes of value, little-endian. */
    void
    store(std::uint64_t addr, unsigned bytes, std::uint64_t value)
    {
        if (!inBounds(addr, bytes)) {
            fault(addr);
            return;
        }
        std::memcpy(data.data() + addr, &value, bytes);
    }

    /** Host-side bulk write (input injection); fatal on overflow. */
    void writeBlock(std::uint64_t addr, const void *src, std::size_t len);

    /** Host-side bulk read (output extraction); fatal on overflow. */
    void readBlock(std::uint64_t addr, void *dst, std::size_t len) const;

  private:
    bool
    inBounds(std::uint64_t addr, unsigned bytes) const
    {
        return addr + bytes <= data.size() && addr + bytes >= addr;
    }

    void
    fault(std::uint64_t addr)
    {
        if (!faulted) {
            faulted = true;
            faultAddr = addr;
        }
    }

    std::vector<std::uint8_t> data;
    bool faulted = false;
    std::uint64_t faultAddr = 0;
};

} // namespace vpsim

#endif // VP_VPSIM_MEMORY_HPP
