/**
 * @file
 * Side-effect-free evaluation of pure register-computing instructions.
 *
 * Used by the specializer's constant folder. Semantics must match
 * Cpu::exec() exactly; tests/vpsim/cpu_test.cpp contains a property
 * test that cross-checks the two on random instructions.
 */

#ifndef VP_VPSIM_EVAL_HPP
#define VP_VPSIM_EVAL_HPP

#include <cstdint>

#include "vpsim/isa.hpp"

namespace vpsim
{

/**
 * True if the instruction computes its destination purely from its
 * register/immediate inputs (no memory, control, or system effects).
 * DIV/REM with a constant zero divisor are excluded (they trap).
 */
bool isPureCompute(Opcode op);

/**
 * Evaluate a pure compute instruction.
 * @param inst  the instruction (op + imm are used)
 * @param a     value of inst.ra
 * @param b     value of inst.rb
 * @param out   receives the destination value
 * @return false if the instruction is not pure or would trap
 *         (divide/remainder by zero).
 */
bool evalPure(const Inst &inst, std::uint64_t a, std::uint64_t b,
              std::uint64_t &out);

/**
 * Evaluate a conditional branch's predicate.
 * @return false if the opcode is not a conditional branch; otherwise
 *         sets `taken`.
 */
bool evalBranch(Opcode op, std::uint64_t a, std::uint64_t b,
                bool &taken);

} // namespace vpsim

#endif // VP_VPSIM_EVAL_HPP
