#include "vpsim/disasm.hpp"

#include "support/strings.hpp"

namespace vpsim
{

namespace
{

std::string
targetText(const Program *prog, std::int64_t target)
{
    if (prog) {
        for (const auto &[name, idx] : prog->codeLabels)
            if (idx == static_cast<std::uint64_t>(target))
                return name;
    }
    return vp::format("%lld", static_cast<long long>(target));
}

std::string
disasmImpl(const Inst &inst, const Program *prog)
{
    const char *name = opcodeName(inst.op);
    const std::string rd = regName(inst.rd);
    const std::string ra = regName(inst.ra);
    const std::string rb = regName(inst.rb);
    const long long imm = static_cast<long long>(inst.imm);

    switch (opcodeClass(inst.op)) {
      case InstClass::Load:
        return vp::format("%-6s %s, %lld(%s)", name, rd.c_str(), imm,
                          ra.c_str());
      case InstClass::Store:
        return vp::format("%-6s %s, %lld(%s)", name, rb.c_str(), imm,
                          ra.c_str());
      case InstClass::Branch:
        return vp::format("%-6s %s, %s, %s", name, ra.c_str(),
                          rb.c_str(), targetText(prog, inst.imm).c_str());
      case InstClass::Jump:
        if (inst.op == Opcode::JMP)
            return vp::format("%-6s %s", name,
                              targetText(prog, inst.imm).c_str());
        if (inst.op == Opcode::JAL)
            return vp::format("%-6s %s, %s", name, rd.c_str(),
                              targetText(prog, inst.imm).c_str());
        return vp::format("%-6s %s, %s", name, rd.c_str(), ra.c_str());
      case InstClass::System:
        return vp::format("%-6s %lld", name, imm);
      case InstClass::Nop:
        return name;
      default:
        break;
    }

    switch (inst.op) {
      case Opcode::LI:
        return vp::format("%-6s %s, %lld", name, rd.c_str(), imm);
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::SEQ: case Opcode::SNE:
        return vp::format("%-6s %s, %s, %s", name, rd.c_str(),
                          ra.c_str(), rb.c_str());
      default:
        // Remaining ALU-immediate forms.
        return vp::format("%-6s %s, %s, %lld", name, rd.c_str(),
                          ra.c_str(), imm);
    }
}

} // namespace

std::string
disassemble(const Inst &inst)
{
    return disasmImpl(inst, nullptr);
}

std::string
disassemble(const Program &prog, std::uint32_t pc)
{
    return disasmImpl(prog.code[pc], &prog);
}

std::string
disassembleRange(const Program &prog, std::uint32_t begin,
                 std::uint32_t end)
{
    std::string out;
    for (std::uint32_t pc = begin; pc < end && pc < prog.code.size();
         ++pc) {
        for (const auto &[name, idx] : prog.codeLabels)
            if (idx == pc)
                out += vp::format("%s:\n", name.c_str());
        out += vp::format("  %4u: %s\n", pc,
                          disassemble(prog, pc).c_str());
    }
    return out;
}

} // namespace vpsim
