#include "vpsim/program.hpp"

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace vpsim
{

std::uint64_t
Program::dataAddress(const std::string &symbol) const
{
    auto it = dataSymbols.find(symbol);
    if (it == dataSymbols.end())
        vp_fatal("unknown data symbol '%s'", symbol.c_str());
    return it->second;
}

std::uint32_t
Program::codeAddress(const std::string &label) const
{
    auto it = codeLabels.find(label);
    if (it == codeLabels.end())
        vp_fatal("unknown code label '%s'", label.c_str());
    return it->second;
}

const Procedure *
Program::findProc(const std::string &name) const
{
    for (const auto &p : procs)
        if (p.name == name)
            return &p;
    return nullptr;
}

const Procedure *
Program::procContaining(std::uint32_t pc) const
{
    for (const auto &p : procs)
        if (pc >= p.entry && pc < p.end)
            return &p;
    return nullptr;
}

std::string
Program::validate() const
{
    const std::size_t n = code.size();
    for (std::size_t i = 0; i < n; ++i) {
        const Inst &inst = code[i];
        if (inst.rd >= numRegs || inst.ra >= numRegs || inst.rb >= numRegs)
            return vp::format("inst %zu: register out of range", i);
        if (isControl(inst.op) && inst.op != Opcode::JALR) {
            if (inst.imm < 0 ||
                static_cast<std::uint64_t>(inst.imm) >= n) {
                return vp::format("inst %zu (%s): target %lld out of "
                                  "range", i, opcodeName(inst.op),
                                  static_cast<long long>(inst.imm));
            }
        }
    }
    for (const auto &p : procs) {
        if (p.entry > p.end || p.end > n)
            return vp::format("proc '%s': bad range [%u,%u)",
                              p.name.c_str(), p.entry, p.end);
        if (p.numArgs > maxArgRegs)
            return vp::format("proc '%s': %u args exceeds ABI limit",
                              p.name.c_str(), p.numArgs);
    }
    if (entryPoint >= n && n > 0)
        return "entry point out of range";
    return "";
}

} // namespace vpsim
