/**
 * @file
 * Program container: decoded instructions, procedure table, data
 * segment image and symbols. Produced by the Assembler (or by the
 * Specializer, which clones and rewrites programs).
 */

#ifndef VP_VPSIM_PROGRAM_HPP
#define VP_VPSIM_PROGRAM_HPP

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "vpsim/isa.hpp"

namespace vpsim
{

/** A procedure (contiguous instruction range) with ABI metadata. */
struct Procedure
{
    std::string name;
    std::uint32_t entry = 0;  ///< index of the first instruction
    std::uint32_t end = 0;    ///< one past the last instruction
    unsigned numArgs = 0;     ///< declared register arguments (a0..)
};

/**
 * A complete VPSim program.
 *
 * Code addresses are instruction indices (Harvard-style instruction
 * memory); data addresses are byte offsets into the flat data/stack
 * memory, with the initialized data image loaded at dataBase.
 */
class Program
{
  public:
    /** Default base address of the initialized data segment (the
     *  region below it acts as a null-pointer guard). */
    static constexpr std::uint64_t defaultDataBase = 0x1000;

    std::vector<Inst> code;
    std::vector<Procedure> procs;

    /** Initialized data image, loaded at dataBase before execution. */
    std::vector<std::uint8_t> dataInit;
    std::uint64_t dataBase = defaultDataBase;

    /** Data labels: symbol name -> absolute byte address. */
    std::unordered_map<std::string, std::uint64_t> dataSymbols;
    /** Code labels: symbol name -> instruction index. */
    std::unordered_map<std::string, std::uint32_t> codeLabels;

    /** Instruction index where execution starts ("main" if present). */
    std::uint32_t entryPoint = 0;

    std::size_t numInsts() const { return code.size(); }

    /** Look up a data symbol's address; fatal() if missing. */
    std::uint64_t dataAddress(const std::string &symbol) const;

    /** Look up a code label; fatal() if missing. */
    std::uint32_t codeAddress(const std::string &label) const;

    /** Find a procedure by name (nullptr if absent). */
    const Procedure *findProc(const std::string &name) const;

    /** Procedure containing the given instruction (nullptr if none). */
    const Procedure *procContaining(std::uint32_t pc) const;

    /**
     * Validate structural invariants: branch targets in range,
     * registers in range, procedures non-overlapping and in bounds.
     * Returns an error description, or empty if valid.
     */
    std::string validate() const;
};

} // namespace vpsim

#endif // VP_VPSIM_PROGRAM_HPP
