#include "vpsim/cpu.hpp"

#include <algorithm>
#include <limits>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

/*
 * Dispatch strategy (see DESIGN.md, "Hot path").
 *
 * The interpreter compiles its opcode bodies once, from shared macros,
 * under one of two dispatch skeletons:
 *
 *  - threaded (computed goto): every opcode body ends by fetching the
 *    next instruction and jumping straight to its body through a label
 *    table. Each opcode gets its own indirect branch, so the host's
 *    branch predictor learns per-opcode successor patterns instead of
 *    sharing one mispredicting switch branch across the whole stream.
 *    Requires the GNU labels-as-values extension (GCC/Clang).
 *
 *  - switch fallback: a conventional for(;;)+switch loop, fully
 *    portable, selected when VP_THREADED_DISPATCH is off (CMake
 *    option) or the compiler lacks the extension.
 *
 * Both skeletons run the same macro-expanded bodies, so their
 * architectural behaviour is identical by construction; the tier-1
 * suite is run against both in CI.
 */
#if defined(VP_THREADED_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define VP_USE_COMPUTED_GOTO 1
#else
#define VP_USE_COMPUTED_GOTO 0
#endif

namespace vpsim
{

Cpu::Cpu(const Program &program, CpuConfig config)
    : prog(program), cfg(config), mem(config.memBytes)
{
    const std::string err = prog.validate();
    if (!err.empty())
        vp_fatal("invalid program: %s", err.c_str());
    if (!prog.dataInit.empty() &&
        prog.dataBase + prog.dataInit.size() > mem.size())
        vp_fatal("data segment does not fit in %zu bytes of memory",
                 mem.size());
    reset();
}

void
Cpu::reset()
{
    regs.fill(0);
    mem.clear();
    if (!prog.dataInit.empty())
        mem.writeBlock(prog.dataBase, prog.dataInit.data(),
                       prog.dataInit.size());
    // Stack grows down from the top of memory, 16-byte aligned.
    regs[regSp] = mem.size() & ~std::uint64_t(15);
    pcReg = prog.entryPoint;
    icount = loadCount = storeCount = 0;
    exitCode = 0;
    haltReason.reset();
    outputText.clear();
    outputInts.clear();
    evCount = 0;
    // Host-side patch state: a pending patch point dies with the run
    // it was requested in; installed redirects survive (like
    // listeners, they are host configuration, not guest state).
    patchRequested = false;
}

void
Cpu::addListener(ExecListener *listener)
{
    vp_assert(listener != nullptr, "null listener");
    listeners.push_back(listener);
}

void
Cpu::removeListener(ExecListener *listener)
{
    listeners.erase(
        std::remove(listeners.begin(), listeners.end(), listener),
        listeners.end());
}

void
Cpu::halt(StopReason reason)
{
    haltReason = reason;
}

void
Cpu::flushEvents()
{
    if (evCount == 0)
        return;
    for (auto *l : listeners)
        l->onEvents(evbuf, evCount, &regs[regA0]);
    evCount = 0;
}

void
Cpu::requestPatchPoint()
{
    patchRequested = true;
    // Zeroing the soft stop pulls a running interpret() out at its
    // next instruction boundary; run() services the request and
    // resumes. Harmless when the loop is not running.
    softStop = 0;
}

void
Cpu::setCallRedirect(std::uint32_t entry, std::uint32_t target)
{
    if (redirects.size() < prog.code.size())
        redirects.resize(prog.code.size(), 0);
    vp_assert(entry < redirects.size(),
              "redirect entry out of program bounds");
    redirects[entry] = target;
}

void
Cpu::clearCallRedirect(std::uint32_t entry)
{
    if (entry < redirects.size())
        redirects[entry] = 0;
}

std::uint32_t
Cpu::callRedirect(std::uint32_t entry) const
{
    return entry < redirects.size() ? redirects[entry] : 0;
}

void
Cpu::servicePatchPoint()
{
    patchRequested = false;
    for (auto *l : listeners)
        l->onPatchPoint(*this);
}

void
Cpu::step()
{
    if (halted())
        return;
    if (patchRequested)
        servicePatchPoint();
    interpret(icount + 1);
}

RunResult
Cpu::run()
{
    [[maybe_unused]] const std::uint64_t start_insts = icount;
    [[maybe_unused]] const std::uint64_t start_loads = loadCount;
    [[maybe_unused]] const std::uint64_t start_stores = storeCount;

    // interpret() exits early, without halting, when a listener
    // requests a patch point; the request is serviced here, where no
    // latched code pointer is live, and the loop re-entered.
    for (;;) {
        if (patchRequested)
            servicePatchPoint();
        interpret(std::numeric_limits<std::uint64_t>::max());
        if (halted())
            break;
    }

    // Simulator work is accounted in one shot at run end so the hot
    // loop never touches a counter.
    VP_STAT_ADD(vp::stats::Cid::SimInsts, icount - start_insts);
    VP_STAT_ADD(vp::stats::Cid::SimLoads, loadCount - start_loads);
    VP_STAT_ADD(vp::stats::Cid::SimStores, storeCount - start_stores);

    RunResult res;
    res.reason = *haltReason;
    res.exitCode = exitCode;
    res.dynamicInsts = icount;
    res.dynamicLoads = loadCount;
    res.dynamicStores = storeCount;
    return res;
}

/*
 * The opcode bodies, shared by both dispatch skeletons.
 *
 * Conventions inside the macros: `pc` is the current instruction
 * index, `next_pc` its default successor (already pc + 1), `inst` the
 * decoded instruction. A body either retires (bumps n_insts, records
 * its events when instrumented, advances pc, dispatches the next
 * instruction) or halts and jumps to `done` without retiring — the
 * same instructions the pre-batching interpreter counted and reported
 * retire here, and the ones it suppressed are suppressed here.
 */

// True when the retiring instruction's event should be materialized:
// some listener wants instruction events and the per-pc filter (when
// present) admits this pc.
#define VM_INST_WANTED()                                               \
    (want_inst && (!inst_filter || inst_filter[pc]))

// Write the destination register (r0 stays hardwired to zero) and
// retire. The event's value is the written value, 0 when nothing was
// written — the exact contract of the old onInst hook.
#define VM_WRITE_RD_RETIRE(expr)                                       \
    do {                                                               \
        const std::uint64_t result_ = (expr);                          \
        const bool wrote_ = inst->rd != regZero;                       \
        if (wrote_)                                                    \
            regs[inst->rd] = result_;                                  \
        ++n_insts;                                                     \
        if (VM_INST_WANTED()) {                                        \
            pushInst(pc, inst, wrote_, wrote_ ? result_ : 0);          \
            if (evCount >= kEventFlushMark)                            \
                flushEvents();                                         \
        }                                                              \
        pc = next_pc;                                                  \
    } while (0)

// Retire an instruction that writes no register.
#define VM_RETIRE_NO_RD()                                              \
    do {                                                               \
        ++n_insts;                                                     \
        if (VM_INST_WANTED()) {                                        \
            pushInst(pc, inst, false, 0);                              \
            if (evCount >= kEventFlushMark)                            \
                flushEvents();                                         \
        }                                                              \
        pc = next_pc;                                                  \
    } while (0)

// Register-register ALU: expr over a/b (unsigned) and sa/sb (signed).
#define VM_ALU_RR(name, expr)                                          \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t a = regs[inst->ra];                        \
        const std::uint64_t b = regs[inst->rb];                        \
        const auto sa = static_cast<std::int64_t>(a);                  \
        const auto sb = static_cast<std::int64_t>(b);                  \
        (void)a; (void)b; (void)sa; (void)sb;                          \
        VM_WRITE_RD_RETIRE(expr);                                      \
    }                                                                  \
    VM_NEXT()

// Register-immediate ALU: expr over a/sa and imm.
#define VM_ALU_RI(name, expr)                                          \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t a = regs[inst->ra];                        \
        const auto sa = static_cast<std::int64_t>(a);                  \
        const std::int64_t imm = inst->imm;                            \
        (void)a; (void)sa; (void)imm;                                  \
        VM_WRITE_RD_RETIRE(expr);                                      \
    }                                                                  \
    VM_NEXT()

// DIV/REM trap instead of invoking host UB: divide by zero, and the
// one overflowing case, INT64_MIN / -1, whose quotient is not
// representable (hardware integer dividers fault on both).
#define VM_DIV_REM(name, expr)                                         \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t b = regs[inst->rb];                        \
        const auto sa = static_cast<std::int64_t>(regs[inst->ra]);     \
        const auto sb = static_cast<std::int64_t>(b);                  \
        if (b == 0 ||                                                  \
            (sa == std::numeric_limits<std::int64_t>::min() &&         \
             sb == -1)) {                                              \
            halt(StopReason::BadInst);                                 \
            goto done;                                                 \
        }                                                              \
        VM_WRITE_RD_RETIRE(static_cast<std::uint64_t>(expr));          \
    }                                                                  \
    VM_NEXT()

// Sized load; `extend` widens the raw value (sign extension for the
// signed narrow loads). The load event carries the extended value and
// precedes the retirement event, as the fine-grained hooks always did.
#define VM_LOAD(name, width, extend)                                   \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t addr =                                     \
            regs[inst->ra] + static_cast<std::uint64_t>(inst->imm);    \
        const std::uint64_t raw = mem.load(addr, width);               \
        if (mem.hasFault()) {                                          \
            halt(StopReason::MemFault);                                \
            goto done;                                                 \
        }                                                              \
        const std::uint64_t v = (extend);                              \
        const bool wrote_ = inst->rd != regZero;                       \
        if (wrote_)                                                    \
            regs[inst->rd] = v;                                        \
        ++n_loads;                                                     \
        ++n_insts;                                                     \
        if (want_load)                                                 \
            pushMem(ExecEvent::Kind::Load, pc, addr, width, v);        \
        if (VM_INST_WANTED())                                          \
            pushInst(pc, inst, wrote_, wrote_ ? v : 0);                \
        if (evCount >= kEventFlushMark)                                \
            flushEvents();                                             \
        pc = next_pc;                                                  \
    }                                                                  \
    VM_NEXT()

#define VM_SEXT32(v)                                                   \
    static_cast<std::uint64_t>(                                        \
        static_cast<std::int64_t>(static_cast<std::int32_t>(v)))
#define VM_SEXT16(v)                                                   \
    static_cast<std::uint64_t>(                                        \
        static_cast<std::int64_t>(static_cast<std::int16_t>(v)))
#define VM_SEXT8(v)                                                    \
    static_cast<std::uint64_t>(                                        \
        static_cast<std::int64_t>(static_cast<std::int8_t>(v)))

// Sized store: rb's value masked to the access width.
#define VM_STORE(name, width)                                          \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t addr =                                     \
            regs[inst->ra] + static_cast<std::uint64_t>(inst->imm);    \
        const std::uint64_t mask_ =                                    \
            (width) == 8 ? ~std::uint64_t(0)                           \
                         : ((std::uint64_t(1) << ((width) * 8)) - 1);  \
        const std::uint64_t v = regs[inst->rb] & mask_;                \
        mem.store(addr, width, v);                                     \
        if (mem.hasFault()) {                                          \
            halt(StopReason::MemFault);                                \
            goto done;                                                 \
        }                                                              \
        ++n_stores;                                                    \
        ++n_insts;                                                     \
        if (want_store)                                                \
            pushMem(ExecEvent::Kind::Store, pc, addr, width, v);       \
        if (VM_INST_WANTED())                                          \
            pushInst(pc, inst, false, 0);                              \
        if (evCount >= kEventFlushMark)                                \
            flushEvents();                                             \
        pc = next_pc;                                                  \
    }                                                                  \
    VM_NEXT()

// Compare-and-branch on (a, b) / (sa, sb); target in imm.
#define VM_BRANCH(name, cond)                                          \
    VM_CASE(name)                                                      \
    {                                                                  \
        const std::uint64_t a = regs[inst->ra];                        \
        const std::uint64_t b = regs[inst->rb];                        \
        const auto sa = static_cast<std::int64_t>(a);                  \
        const auto sb = static_cast<std::int64_t>(b);                  \
        (void)sa; (void)sb;                                            \
        if (cond)                                                      \
            next_pc = static_cast<std::uint32_t>(inst->imm);           \
        VM_RETIRE_NO_RD();                                             \
    }                                                                  \
    VM_NEXT()

void
Cpu::interpret(std::uint64_t stop_after)
{
    if (halted())
        return;

    const Inst *const code = prog.code.data();
    const std::uint64_t code_size = prog.code.size();
    const std::uint64_t max_insts = cfg.maxInsts;

    // Latch the union of listener interests for this entry (see
    // ExecListener::eventInterest): only wanted kinds are materialized,
    // so an attached listener whose routing tables are empty costs the
    // loop nothing but these predictable never-taken branches.
    unsigned interest = 0;
    for (const auto *l : listeners)
        interest |= l->eventInterest();
    const bool want_inst = (interest & ExecListener::kInterestInst) != 0;
    const bool want_load = (interest & ExecListener::kInterestLoad) != 0;
    const bool want_store =
        (interest & ExecListener::kInterestStore) != 0;
    const bool want_call = (interest & ExecListener::kInterestCall) != 0;
    // Per-pc instruction-event filter (sole-listener case only; see
    // ExecListener::instEventFilter). null = no filtering.
    const std::uint8_t *const inst_filter =
        listeners.size() == 1 ? listeners[0]->instEventFilter()
                              : nullptr;

    // The soft stop lives in a member so requestPatchPoint() can zero
    // it from a listener callback mid-loop. A request already pending
    // at entry keeps the stop at "now": the caller must service it
    // before any instruction executes.
    softStop = patchRequested ? icount : stop_after;

    // Call-redirect table (empty = feature off). Latched as a raw
    // pointer for the whole entry: installs/resizes happen only at
    // patch points, and mid-run clears write in place, so the pointer
    // cannot dangle. Resize here covers a program grown since the
    // table was installed.
    if (!redirects.empty() && redirects.size() < prog.code.size())
        redirects.resize(prog.code.size(), 0);
    const std::uint32_t *const redirect =
        redirects.empty() ? nullptr : redirects.data();

    // Architectural position and counters live in locals for the
    // duration of the loop and are written back at `done`. Every exit
    // path goes through `done`.
    std::uint32_t pc = pcReg;
    std::uint32_t next_pc = 0;
    const Inst *inst = nullptr;
    std::uint64_t n_insts = icount;
    std::uint64_t n_loads = loadCount;
    std::uint64_t n_stores = storeCount;

    // Loop-top checks, in the order the pre-batching interpreter
    // applied them: the soft stop (no halt — covers both step()'s
    // stop_after and a patch-point request zeroing the member), then a
    // pc outside the code (BadInst), then the runaway budget
    // (MaxInsts).
#define VM_CHECKS()                                                    \
    do {                                                               \
        if (n_insts >= softStop)                                       \
            goto done;                                                 \
        if (pc >= code_size)                                           \
            goto bad_pc;                                               \
        if (n_insts >= max_insts)                                      \
            goto out_of_budget;                                        \
        inst = code + pc;                                              \
        next_pc = pc + 1;                                              \
    } while (0)

#if VP_USE_COMPUTED_GOTO

    // Label table, indexed by Opcode — must mirror the enum exactly.
    static const void *const kOpLabels[] = {
        &&L_ADD, &&L_SUB, &&L_MUL, &&L_DIV, &&L_REM, &&L_AND, &&L_OR,
        &&L_XOR, &&L_SLL, &&L_SRL, &&L_SRA, &&L_SLT, &&L_SLTU,
        &&L_SEQ, &&L_SNE,
        &&L_ADDI, &&L_MULI, &&L_ANDI, &&L_ORI, &&L_XORI,
        &&L_SLLI, &&L_SRLI, &&L_SRAI, &&L_SLTI, &&L_SEQI, &&L_SNEI,
        &&L_LI,
        &&L_LD, &&L_LW, &&L_LWU, &&L_LH, &&L_LHU, &&L_LB, &&L_LBU,
        &&L_ST, &&L_SW, &&L_SH, &&L_SB,
        &&L_BEQ, &&L_BNE, &&L_BLT, &&L_BGE, &&L_BLTU, &&L_BGEU,
        &&L_JMP, &&L_JAL, &&L_JALR,
        &&L_SYSCALL, &&L_NOP,
    };
    static_assert(sizeof(kOpLabels) / sizeof(kOpLabels[0]) ==
                      static_cast<std::size_t>(Opcode::NumOpcodes),
                  "label table must cover every opcode");

    // Opcode validity is a Program::validate() invariant, so the
    // indexed jump needs no range check here.
#define VM_CASE(name) L_##name:
#define VM_NEXT()                                                      \
    do {                                                               \
        VM_CHECKS();                                                   \
        goto *kOpLabels[static_cast<unsigned>(inst->op)];              \
    } while (0)

    VM_NEXT();

#else // !VP_USE_COMPUTED_GOTO

#define VM_CASE(name) case Opcode::name:
#define VM_NEXT() break

    for (;;) {
        VM_CHECKS();
        switch (inst->op) {

#endif

    VM_ALU_RR(ADD, a + b);
    VM_ALU_RR(SUB, a - b);
    VM_ALU_RR(MUL, a * b);
    VM_DIV_REM(DIV, sa / sb);
    VM_DIV_REM(REM, sa % sb);
    VM_ALU_RR(AND, a & b);
    VM_ALU_RR(OR, a | b);
    VM_ALU_RR(XOR, a ^ b);
    VM_ALU_RR(SLL, a << (b & 63));
    VM_ALU_RR(SRL, a >> (b & 63));
    VM_ALU_RR(SRA, static_cast<std::uint64_t>(sa >> (b & 63)));
    VM_ALU_RR(SLT, sa < sb ? 1 : 0);
    VM_ALU_RR(SLTU, a < b ? 1 : 0);
    VM_ALU_RR(SEQ, a == b ? 1 : 0);
    VM_ALU_RR(SNE, a != b ? 1 : 0);

    VM_ALU_RI(ADDI, a + static_cast<std::uint64_t>(imm));
    VM_ALU_RI(MULI, a * static_cast<std::uint64_t>(imm));
    VM_ALU_RI(ANDI, a & static_cast<std::uint64_t>(imm));
    VM_ALU_RI(ORI, a | static_cast<std::uint64_t>(imm));
    VM_ALU_RI(XORI, a ^ static_cast<std::uint64_t>(imm));
    VM_ALU_RI(SLLI, a << (imm & 63));
    VM_ALU_RI(SRLI, a >> (imm & 63));
    VM_ALU_RI(SRAI, static_cast<std::uint64_t>(sa >> (imm & 63)));
    VM_ALU_RI(SLTI, sa < imm ? 1 : 0);
    VM_ALU_RI(SEQI, sa == imm ? 1 : 0);
    VM_ALU_RI(SNEI, sa != imm ? 1 : 0);

    VM_ALU_RI(LI, static_cast<std::uint64_t>(imm));

    VM_LOAD(LD, 8, raw);
    VM_LOAD(LW, 4, VM_SEXT32(raw));
    VM_LOAD(LWU, 4, raw);
    VM_LOAD(LH, 2, VM_SEXT16(raw));
    VM_LOAD(LHU, 2, raw);
    VM_LOAD(LB, 1, VM_SEXT8(raw));
    VM_LOAD(LBU, 1, raw);

    VM_STORE(ST, 8);
    VM_STORE(SW, 4);
    VM_STORE(SH, 2);
    VM_STORE(SB, 1);

    VM_BRANCH(BEQ, a == b);
    VM_BRANCH(BNE, a != b);
    VM_BRANCH(BLT, sa < sb);
    VM_BRANCH(BGE, sa >= sb);
    VM_BRANCH(BLTU, a < b);
    VM_BRANCH(BGEU, a >= b);

    VM_CASE(JMP)
    {
        next_pc = static_cast<std::uint32_t>(inst->imm);
        VM_RETIRE_NO_RD();
    }
    VM_NEXT();

    // Calls are reported after the linking jump retires so argument
    // registers are architecturally final; the batch is flushed at
    // once so they still are when the listener looks.
    VM_CASE(JAL)
    {
        const std::uint64_t link = next_pc;
        const bool wrote_ = inst->rd != regZero;
        if (wrote_)
            regs[inst->rd] = link;
        next_pc = static_cast<std::uint32_t>(inst->imm);
        ++n_insts;
        if (VM_INST_WANTED())
            pushInst(pc, inst, wrote_, wrote_ ? link : 0);
        if (want_call) {
            pushCall(pc, next_pc);
            flushEvents();
        } else if (evCount >= kEventFlushMark) {
            flushEvents();
        }
        // Redirect installed *after* the Call event, so profilers
        // always see the original callee — and a listener clearing
        // the redirect during the flush reverts even this call.
        if (redirect && next_pc < code_size && redirect[next_pc])
            next_pc = redirect[next_pc];
        pc = next_pc;
    }
    VM_NEXT();

    VM_CASE(JALR)
    {
        // Target is read before the link write so `jalr ra, ra` jumps
        // to the old value; the link write persists even when the
        // target is bad (the halted instruction does not retire).
        const std::uint64_t target = regs[inst->ra];
        const std::uint64_t link = next_pc;
        const bool wrote_ = inst->rd != regZero;
        if (wrote_)
            regs[inst->rd] = link;
        if (target >= code_size) {
            halt(StopReason::BadInst);
            goto done;
        }
        next_pc = static_cast<std::uint32_t>(target);
        ++n_insts;
        if (VM_INST_WANTED())
            pushInst(pc, inst, wrote_, wrote_ ? link : 0);
        // A JALR with rd == zero is a return (the `ret` pseudo-op),
        // not a call.
        if (want_call && wrote_) {
            pushCall(pc, next_pc);
            flushEvents();
        } else if (evCount >= kEventFlushMark) {
            flushEvents();
        }
        // Calls only (a JALR return must go where ra points), and
        // after the Call event — same contract as JAL above.
        if (redirect && wrote_ && redirect[next_pc])
            next_pc = redirect[next_pc];
        pc = next_pc;
    }
    VM_NEXT();

    VM_CASE(SYSCALL)
    {
        switch (static_cast<Syscall>(inst->imm)) {
          case Syscall::Exit:
            exitCode = static_cast<std::int64_t>(regs[regA0]);
            halt(StopReason::Exited);
            // The exit syscall itself retires (and is observed), but
            // pc stays on it.
            ++n_insts;
            if (VM_INST_WANTED())
                pushInst(pc, inst, false, 0);
            goto done;
          case Syscall::Putc:
            outputText.push_back(static_cast<char>(regs[regA0]));
            break;
          case Syscall::Puti: {
            const auto v = static_cast<std::int64_t>(regs[regA0]);
            outputText += vp::format("%lld", static_cast<long long>(v));
            outputInts.push_back(v);
            break;
          }
          default:
            halt(StopReason::BadInst);
            goto done;
        }
        VM_RETIRE_NO_RD();
    }
    VM_NEXT();

    VM_CASE(NOP)
    {
        VM_RETIRE_NO_RD();
    }
    VM_NEXT();

#if !VP_USE_COMPUTED_GOTO

          case Opcode::NumOpcodes:
          default:
            vp_panic("unhandled opcode %d",
                     static_cast<int>(inst->op));
        }
    }

#endif

  bad_pc:
    halt(StopReason::BadInst);
    goto done;

  out_of_budget:
    halt(StopReason::MaxInsts);
    // fall through to done

  done:
    pcReg = pc;
    icount = n_insts;
    loadCount = n_loads;
    storeCount = n_stores;
    flushEvents();
}

#undef VM_CASE
#undef VM_NEXT
#undef VM_CHECKS
#undef VM_INST_WANTED
#undef VM_WRITE_RD_RETIRE
#undef VM_RETIRE_NO_RD
#undef VM_ALU_RR
#undef VM_ALU_RI
#undef VM_DIV_REM
#undef VM_LOAD
#undef VM_STORE
#undef VM_BRANCH
#undef VM_SEXT32
#undef VM_SEXT16
#undef VM_SEXT8

} // namespace vpsim
