#include "vpsim/cpu.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"

namespace vpsim
{

Cpu::Cpu(const Program &program, CpuConfig config)
    : prog(program), cfg(config), mem(config.memBytes)
{
    const std::string err = prog.validate();
    if (!err.empty())
        vp_fatal("invalid program: %s", err.c_str());
    if (!prog.dataInit.empty() &&
        prog.dataBase + prog.dataInit.size() > mem.size())
        vp_fatal("data segment does not fit in %zu bytes of memory",
                 mem.size());
    reset();
}

void
Cpu::reset()
{
    regs.fill(0);
    mem.clear();
    if (!prog.dataInit.empty())
        mem.writeBlock(prog.dataBase, prog.dataInit.data(),
                       prog.dataInit.size());
    // Stack grows down from the top of memory, 16-byte aligned.
    regs[regSp] = mem.size() & ~std::uint64_t(15);
    pcReg = prog.entryPoint;
    icount = loadCount = storeCount = 0;
    exitCode = 0;
    haltReason.reset();
    outputText.clear();
    outputInts.clear();
}

void
Cpu::addListener(ExecListener *listener)
{
    vp_assert(listener != nullptr, "null listener");
    listeners.push_back(listener);
}

void
Cpu::removeListener(ExecListener *listener)
{
    listeners.erase(
        std::remove(listeners.begin(), listeners.end(), listener),
        listeners.end());
}

void
Cpu::halt(StopReason reason)
{
    haltReason = reason;
}

void
Cpu::notifyCall(std::uint32_t caller_pc, std::uint32_t callee)
{
    for (auto *l : listeners)
        l->onCall(caller_pc, callee, &regs[regA0]);
}

void
Cpu::step()
{
    if (halted())
        return;
    if (pcReg >= prog.code.size()) {
        halt(StopReason::BadInst);
        return;
    }
    if (icount >= cfg.maxInsts) {
        halt(StopReason::MaxInsts);
        return;
    }
    exec(prog.code[pcReg]);
}

RunResult
Cpu::run()
{
    [[maybe_unused]] const std::uint64_t start_insts = icount;
    [[maybe_unused]] const std::uint64_t start_loads = loadCount;
    [[maybe_unused]] const std::uint64_t start_stores = storeCount;

    // Hot loop: keep the per-instruction work minimal; the listener
    // fan-out below models the instrumentation overhead the paper
    // measures, so it must only be paid when observers are attached.
    while (!halted()) {
        if (pcReg >= prog.code.size()) {
            halt(StopReason::BadInst);
            break;
        }
        if (icount >= cfg.maxInsts) {
            halt(StopReason::MaxInsts);
            break;
        }
        exec(prog.code[pcReg]);
    }
    // Simulator work is accounted in one shot at run end so the hot
    // loop never touches a counter.
    VP_STAT_ADD(vp::stats::Cid::SimInsts, icount - start_insts);
    VP_STAT_ADD(vp::stats::Cid::SimLoads, loadCount - start_loads);
    VP_STAT_ADD(vp::stats::Cid::SimStores, storeCount - start_stores);

    RunResult res;
    res.reason = *haltReason;
    res.exitCode = exitCode;
    res.dynamicInsts = icount;
    res.dynamicLoads = loadCount;
    res.dynamicStores = storeCount;
    return res;
}

void
Cpu::exec(const Inst &inst)
{
    const std::uint32_t cur_pc = pcReg;
    std::uint32_t next_pc = cur_pc + 1;
    bool wrote = false;
    std::uint64_t result = 0;

    auto setRd = [&](std::uint64_t v) {
        if (inst.rd != regZero) {
            regs[inst.rd] = v;
            wrote = true;
            result = v;
        }
    };

    const std::uint64_t a = regs[inst.ra];
    const std::uint64_t b = regs[inst.rb];
    const std::int64_t sa = static_cast<std::int64_t>(a);
    const std::int64_t sb = static_cast<std::int64_t>(b);
    const std::int64_t imm = inst.imm;

    switch (inst.op) {
      case Opcode::ADD: setRd(a + b); break;
      case Opcode::SUB: setRd(a - b); break;
      case Opcode::MUL: setRd(a * b); break;
      case Opcode::DIV:
        if (b == 0) { halt(StopReason::BadInst); return; }
        setRd(static_cast<std::uint64_t>(sa / sb));
        break;
      case Opcode::REM:
        if (b == 0) { halt(StopReason::BadInst); return; }
        setRd(static_cast<std::uint64_t>(sa % sb));
        break;
      case Opcode::AND: setRd(a & b); break;
      case Opcode::OR: setRd(a | b); break;
      case Opcode::XOR: setRd(a ^ b); break;
      case Opcode::SLL: setRd(a << (b & 63)); break;
      case Opcode::SRL: setRd(a >> (b & 63)); break;
      case Opcode::SRA: setRd(static_cast<std::uint64_t>(sa >> (b & 63)));
        break;
      case Opcode::SLT: setRd(sa < sb ? 1 : 0); break;
      case Opcode::SLTU: setRd(a < b ? 1 : 0); break;
      case Opcode::SEQ: setRd(a == b ? 1 : 0); break;
      case Opcode::SNE: setRd(a != b ? 1 : 0); break;

      case Opcode::ADDI: setRd(a + static_cast<std::uint64_t>(imm)); break;
      case Opcode::MULI: setRd(a * static_cast<std::uint64_t>(imm)); break;
      case Opcode::ANDI: setRd(a & static_cast<std::uint64_t>(imm)); break;
      case Opcode::ORI: setRd(a | static_cast<std::uint64_t>(imm)); break;
      case Opcode::XORI: setRd(a ^ static_cast<std::uint64_t>(imm)); break;
      case Opcode::SLLI: setRd(a << (imm & 63)); break;
      case Opcode::SRLI: setRd(a >> (imm & 63)); break;
      case Opcode::SRAI: setRd(static_cast<std::uint64_t>(sa >> (imm & 63)));
        break;
      case Opcode::SLTI: setRd(sa < imm ? 1 : 0); break;
      case Opcode::SEQI: setRd(sa == imm ? 1 : 0); break;
      case Opcode::SNEI: setRd(sa != imm ? 1 : 0); break;

      case Opcode::LI: setRd(static_cast<std::uint64_t>(imm)); break;

      case Opcode::LD: case Opcode::LW: case Opcode::LWU:
      case Opcode::LH: case Opcode::LHU: case Opcode::LB:
      case Opcode::LBU: {
        const std::uint64_t addr = a + static_cast<std::uint64_t>(imm);
        const unsigned size = memAccessSize(inst.op);
        std::uint64_t v = mem.load(addr, size);
        if (mem.hasFault()) { halt(StopReason::MemFault); return; }
        // Sign extension for the signed narrow loads.
        switch (inst.op) {
          case Opcode::LW:
            v = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(v)));
            break;
          case Opcode::LH:
            v = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int16_t>(v)));
            break;
          case Opcode::LB:
            v = static_cast<std::uint64_t>(
                static_cast<std::int64_t>(static_cast<std::int8_t>(v)));
            break;
          default:
            break;
        }
        setRd(v);
        ++loadCount;
        for (auto *l : listeners)
            l->onLoad(cur_pc, addr, size, v);
        break;
      }

      case Opcode::ST: case Opcode::SW: case Opcode::SH:
      case Opcode::SB: {
        const std::uint64_t addr = a + static_cast<std::uint64_t>(imm);
        const unsigned size = memAccessSize(inst.op);
        const std::uint64_t mask =
            size == 8 ? ~std::uint64_t(0)
                      : ((std::uint64_t(1) << (size * 8)) - 1);
        const std::uint64_t v = b & mask;
        mem.store(addr, size, v);
        if (mem.hasFault()) { halt(StopReason::MemFault); return; }
        ++storeCount;
        for (auto *l : listeners)
            l->onStore(cur_pc, addr, size, v);
        break;
      }

      case Opcode::BEQ: if (a == b) next_pc = std::uint32_t(imm); break;
      case Opcode::BNE: if (a != b) next_pc = std::uint32_t(imm); break;
      case Opcode::BLT: if (sa < sb) next_pc = std::uint32_t(imm); break;
      case Opcode::BGE: if (sa >= sb) next_pc = std::uint32_t(imm); break;
      case Opcode::BLTU: if (a < b) next_pc = std::uint32_t(imm); break;
      case Opcode::BGEU: if (a >= b) next_pc = std::uint32_t(imm); break;

      case Opcode::JMP: next_pc = std::uint32_t(imm); break;
      case Opcode::JAL:
        setRd(next_pc);
        next_pc = std::uint32_t(imm);
        break;
      case Opcode::JALR: {
        const std::uint64_t target = a;
        setRd(next_pc);
        if (target >= prog.code.size()) {
            halt(StopReason::BadInst);
            return;
        }
        next_pc = static_cast<std::uint32_t>(target);
        break;
      }

      case Opcode::SYSCALL:
        switch (static_cast<Syscall>(imm)) {
          case Syscall::Exit:
            exitCode = static_cast<std::int64_t>(regs[regA0]);
            halt(StopReason::Exited);
            break;
          case Syscall::Putc:
            outputText.push_back(static_cast<char>(regs[regA0]));
            break;
          case Syscall::Puti: {
            const auto v = static_cast<std::int64_t>(regs[regA0]);
            outputText += vp::format("%lld", static_cast<long long>(v));
            outputInts.push_back(v);
            break;
          }
          default:
            halt(StopReason::BadInst);
            return;
        }
        break;

      case Opcode::NOP:
        break;

      default:
        vp_panic("unhandled opcode %d", static_cast<int>(inst.op));
    }

    ++icount;
    if (!listeners.empty()) {
        for (auto *l : listeners)
            l->onInst(cur_pc, inst, wrote, result);
        // Calls are reported after the linking jump retires so argument
        // registers are architecturally final. A JALR with rd == zero
        // is a return (the `ret` pseudo-op), not a call.
        const bool is_call =
            inst.op == Opcode::JAL ||
            (inst.op == Opcode::JALR && inst.rd != regZero);
        if (is_call && !halted())
            notifyCall(cur_pc, next_pc);
    }
    if (!halted())
        pcReg = next_pc;
}

} // namespace vpsim
