#include "vpsim/eval.hpp"

#include <limits>

namespace vpsim
{

bool
isPureCompute(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::SEQ: case Opcode::SNE:
      case Opcode::ADDI: case Opcode::MULI: case Opcode::ANDI:
      case Opcode::ORI: case Opcode::XORI: case Opcode::SLLI:
      case Opcode::SRLI: case Opcode::SRAI: case Opcode::SLTI:
      case Opcode::SEQI: case Opcode::SNEI: case Opcode::LI:
        return true;
      default:
        return false;
    }
}

bool
evalPure(const Inst &inst, std::uint64_t a, std::uint64_t b,
         std::uint64_t &out)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    const std::int64_t imm = inst.imm;

    switch (inst.op) {
      case Opcode::ADD: out = a + b; return true;
      case Opcode::SUB: out = a - b; return true;
      case Opcode::MUL: out = a * b; return true;
      case Opcode::DIV:
        // Mirrors the interpreter's trap conditions: divide by zero
        // and the unrepresentable INT64_MIN / -1 quotient.
        if (b == 0 || (sa == std::numeric_limits<std::int64_t>::min() &&
                       sb == -1))
            return false;
        out = static_cast<std::uint64_t>(sa / sb);
        return true;
      case Opcode::REM:
        if (b == 0 || (sa == std::numeric_limits<std::int64_t>::min() &&
                       sb == -1))
            return false;
        out = static_cast<std::uint64_t>(sa % sb);
        return true;
      case Opcode::AND: out = a & b; return true;
      case Opcode::OR: out = a | b; return true;
      case Opcode::XOR: out = a ^ b; return true;
      case Opcode::SLL: out = a << (b & 63); return true;
      case Opcode::SRL: out = a >> (b & 63); return true;
      case Opcode::SRA:
        out = static_cast<std::uint64_t>(sa >> (b & 63));
        return true;
      case Opcode::SLT: out = sa < sb ? 1 : 0; return true;
      case Opcode::SLTU: out = a < b ? 1 : 0; return true;
      case Opcode::SEQ: out = a == b ? 1 : 0; return true;
      case Opcode::SNE: out = a != b ? 1 : 0; return true;
      case Opcode::ADDI:
        out = a + static_cast<std::uint64_t>(imm);
        return true;
      case Opcode::MULI:
        out = a * static_cast<std::uint64_t>(imm);
        return true;
      case Opcode::ANDI:
        out = a & static_cast<std::uint64_t>(imm);
        return true;
      case Opcode::ORI:
        out = a | static_cast<std::uint64_t>(imm);
        return true;
      case Opcode::XORI:
        out = a ^ static_cast<std::uint64_t>(imm);
        return true;
      case Opcode::SLLI: out = a << (imm & 63); return true;
      case Opcode::SRLI: out = a >> (imm & 63); return true;
      case Opcode::SRAI:
        out = static_cast<std::uint64_t>(sa >> (imm & 63));
        return true;
      case Opcode::SLTI: out = sa < imm ? 1 : 0; return true;
      case Opcode::SEQI: out = sa == imm ? 1 : 0; return true;
      case Opcode::SNEI: out = sa != imm ? 1 : 0; return true;
      case Opcode::LI:
        out = static_cast<std::uint64_t>(imm);
        return true;
      default:
        return false;
    }
}

bool
evalBranch(Opcode op, std::uint64_t a, std::uint64_t b, bool &taken)
{
    const auto sa = static_cast<std::int64_t>(a);
    const auto sb = static_cast<std::int64_t>(b);
    switch (op) {
      case Opcode::BEQ: taken = a == b; return true;
      case Opcode::BNE: taken = a != b; return true;
      case Opcode::BLT: taken = sa < sb; return true;
      case Opcode::BGE: taken = sa >= sb; return true;
      case Opcode::BLTU: taken = a < b; return true;
      case Opcode::BGEU: taken = a >= b; return true;
      default: return false;
    }
}

} // namespace vpsim
