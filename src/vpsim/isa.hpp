/**
 * @file
 * Instruction-set definition for VPSim, the RISC virtual machine that
 * stands in for the paper's DEC Alpha substrate.
 *
 * The ISA is a conventional 64-bit load/store design: 32 integer
 * registers (r0 hardwired to zero), three-operand ALU instructions,
 * immediate forms, sized loads and stores, compare-and-branch, and
 * jump-and-link. Instructions are held decoded (no bit-level encoding)
 * since value profiling only observes architected state.
 */

#ifndef VP_VPSIM_ISA_HPP
#define VP_VPSIM_ISA_HPP

#include <cstdint>
#include <string>

namespace vpsim
{

/** Number of architected integer registers. */
constexpr unsigned numRegs = 32;

/** ABI register assignments (by convention only; nothing is enforced). */
enum AbiReg : std::uint8_t
{
    regZero = 0,  ///< hardwired zero
    regA0 = 4,    ///< first argument / return value
    regA1 = 5,
    regA2 = 6,
    regA3 = 7,
    regA4 = 8,
    regA5 = 9,    ///< last argument register
    regT0 = 10,   ///< first caller-saved temporary (t0..t9 = r10..r19)
    regS0 = 20,   ///< first callee-saved register (s0..s7 = r20..r27)
    regGp = 28,   ///< global pointer
    regSp = 29,   ///< stack pointer
    regFp = 30,   ///< frame pointer
    regRa = 31,   ///< return address
};

/** Maximum number of register arguments in the calling convention. */
constexpr unsigned maxArgRegs = 6;

/** VPSim opcodes. */
enum class Opcode : std::uint8_t
{
    // ALU register-register
    ADD, SUB, MUL, DIV, REM, AND, OR, XOR,
    SLL, SRL, SRA,
    SLT, SLTU, SEQ, SNE,
    // ALU register-immediate
    ADDI, MULI, ANDI, ORI, XORI,
    SLLI, SRLI, SRAI,
    SLTI, SEQI, SNEI,
    // Load full immediate (64-bit)
    LI,
    // Memory: rd <- mem[ra + imm] / mem[ra + imm] <- rb
    LD, LW, LWU, LH, LHU, LB, LBU,
    ST, SW, SH, SB,
    // Control: compare-and-branch on (ra, rb), target in imm
    BEQ, BNE, BLT, BGE, BLTU, BGEU,
    JMP,   ///< unconditional jump to imm
    JAL,   ///< jump to imm, link in rd
    JALR,  ///< jump to register ra, link in rd
    // System
    SYSCALL,
    NOP,
    NumOpcodes,
};

/** System-call numbers (held in the SYSCALL immediate). */
enum class Syscall : std::int64_t
{
    Exit = 0,  ///< terminate; exit code in a0
    Putc = 1,  ///< append char a0 to the program output
    Puti = 2,  ///< append decimal a0 to the program output
};

/**
 * Coarse instruction classes used by the per-class invariance
 * experiment (E4) and the predictors.
 */
enum class InstClass : std::uint8_t
{
    Load, Store, IntAlu, IntMul, IntDiv, Shift, Compare,
    Branch, Jump, System, Nop,
    NumClasses,
};

/**
 * One decoded instruction.
 *
 * The imm field holds, depending on the opcode: an ALU immediate, a
 * memory displacement, a branch/jump target (instruction index), or a
 * syscall number.
 */
struct Inst
{
    Opcode op = Opcode::NOP;
    std::uint8_t rd = 0;  ///< destination register
    std::uint8_t ra = 0;  ///< first source register
    std::uint8_t rb = 0;  ///< second source register
    std::int64_t imm = 0;
};

/** Mnemonic for an opcode, e.g. "add". */
const char *opcodeName(Opcode op);

/** Class of an opcode for the per-class breakdowns. */
InstClass opcodeClass(Opcode op);

/** Printable name of an instruction class, e.g. "IntAlu". */
const char *instClassName(InstClass cls);

/** True if the opcode is a memory load. */
bool isLoad(Opcode op);
/** True if the opcode is a memory store. */
bool isStore(Opcode op);
/** True if the opcode is a conditional branch. */
bool isCondBranch(Opcode op);
/** True for any instruction that may transfer control (branch/jump). */
bool isControl(Opcode op);

/** Access width in bytes for a load/store opcode. */
unsigned memAccessSize(Opcode op);

/**
 * True if the instruction architecturally writes its destination
 * register (and the destination is not r0). These are the instructions
 * the paper value-profiles (thesis section III.E).
 */
bool writesDest(const Inst &inst);

/** Canonical ABI name of a register, e.g. "a0", "sp", "r3". */
std::string regName(unsigned reg);

/** Parse a register name ("r7", "a0", "sp", ...); returns false on error. */
bool parseRegName(const std::string &name, std::uint8_t &out);

} // namespace vpsim

#endif // VP_VPSIM_ISA_HPP
