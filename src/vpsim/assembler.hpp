/**
 * @file
 * Two-phase textual assembler for VPSim programs.
 *
 * Syntax overview (see tests/vpsim/assembler_test.cpp for examples):
 *
 *     # comment                ; comment
 *     .data
 *     tbl:    .word 1, 2, 3       # 64-bit words
 *             .byte 0x41, 'b'
 *             .space 128          # zero-filled
 *             .asciiz "text"
 *             .align 8
 *     .text
 *     .proc main args=0
 *     main:
 *         li   t0, 5
 *     loop:
 *         addi t0, t0, -1
 *         bne  t0, zero, loop
 *         li   a0, 0
 *         syscall exit
 *     .endp
 *
 * Pseudo-instructions (each expands to exactly one instruction):
 *     la rd, sym      -> li rd, <address of sym>
 *     mov rd, rs      -> add rd, rs, zero
 *     neg rd, rs      -> sub rd, zero, rs
 *     not rd, rs      -> xori rd, rs, -1
 *     call label      -> jal ra, label
 *     ret             -> jalr zero, ra
 *     b label         -> jmp label
 *     beqz/bnez r, l  -> beq/bne r, zero, l
 *
 * Immediates accept decimal, 0x/0b literals, character literals, data
 * symbols (resolved to addresses) and code labels (resolved to
 * instruction indices).
 */

#ifndef VP_VPSIM_ASSEMBLER_HPP
#define VP_VPSIM_ASSEMBLER_HPP

#include <string>

#include "vpsim/program.hpp"

namespace vpsim
{

/**
 * Assemble source text into a Program.
 * @return true on success; on failure `error` describes the first
 *         problem with its line number.
 */
bool tryAssemble(const std::string &source, Program &out,
                 std::string &error);

/** Assemble or die: fatal() with the error on malformed source. */
Program assemble(const std::string &source);

} // namespace vpsim

#endif // VP_VPSIM_ASSEMBLER_HPP
