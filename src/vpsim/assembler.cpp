#include "vpsim/assembler.hpp"

#include <cctype>
#include <cstdarg>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace vpsim
{

namespace
{

/** Operand shapes an instruction mnemonic can take. */
enum class Form
{
    RRR,      ///< op rd, ra, rb
    RRI,      ///< op rd, ra, imm
    RI,       ///< op rd, imm            (li / la)
    LoadMem,  ///< op rd, imm(ra)
    StoreMem, ///< op rb, imm(ra)
    BrRRL,    ///< op ra, rb, label
    BrRL,     ///< op ra, label          (beqz/bnez)
    Label,    ///< op label              (jmp/jal/call/b)
    RegOnly,  ///< op ra                 (jalr r)
    None,     ///< op                    (nop/ret)
    Sys,      ///< syscall name-or-number
};

struct MnemonicInfo
{
    Opcode op;
    Form form;
};

const std::unordered_map<std::string, MnemonicInfo> &
mnemonicTable()
{
    static const std::unordered_map<std::string, MnemonicInfo> table = {
        {"add", {Opcode::ADD, Form::RRR}},
        {"sub", {Opcode::SUB, Form::RRR}},
        {"mul", {Opcode::MUL, Form::RRR}},
        {"div", {Opcode::DIV, Form::RRR}},
        {"rem", {Opcode::REM, Form::RRR}},
        {"and", {Opcode::AND, Form::RRR}},
        {"or", {Opcode::OR, Form::RRR}},
        {"xor", {Opcode::XOR, Form::RRR}},
        {"sll", {Opcode::SLL, Form::RRR}},
        {"srl", {Opcode::SRL, Form::RRR}},
        {"sra", {Opcode::SRA, Form::RRR}},
        {"slt", {Opcode::SLT, Form::RRR}},
        {"sltu", {Opcode::SLTU, Form::RRR}},
        {"seq", {Opcode::SEQ, Form::RRR}},
        {"sne", {Opcode::SNE, Form::RRR}},
        {"addi", {Opcode::ADDI, Form::RRI}},
        {"muli", {Opcode::MULI, Form::RRI}},
        {"andi", {Opcode::ANDI, Form::RRI}},
        {"ori", {Opcode::ORI, Form::RRI}},
        {"xori", {Opcode::XORI, Form::RRI}},
        {"slli", {Opcode::SLLI, Form::RRI}},
        {"srli", {Opcode::SRLI, Form::RRI}},
        {"srai", {Opcode::SRAI, Form::RRI}},
        {"slti", {Opcode::SLTI, Form::RRI}},
        {"seqi", {Opcode::SEQI, Form::RRI}},
        {"snei", {Opcode::SNEI, Form::RRI}},
        {"li", {Opcode::LI, Form::RI}},
        {"la", {Opcode::LI, Form::RI}},
        {"ld", {Opcode::LD, Form::LoadMem}},
        {"lw", {Opcode::LW, Form::LoadMem}},
        {"lwu", {Opcode::LWU, Form::LoadMem}},
        {"lh", {Opcode::LH, Form::LoadMem}},
        {"lhu", {Opcode::LHU, Form::LoadMem}},
        {"lb", {Opcode::LB, Form::LoadMem}},
        {"lbu", {Opcode::LBU, Form::LoadMem}},
        {"st", {Opcode::ST, Form::StoreMem}},
        {"sw", {Opcode::SW, Form::StoreMem}},
        {"sh", {Opcode::SH, Form::StoreMem}},
        {"sb", {Opcode::SB, Form::StoreMem}},
        {"beq", {Opcode::BEQ, Form::BrRRL}},
        {"bne", {Opcode::BNE, Form::BrRRL}},
        {"blt", {Opcode::BLT, Form::BrRRL}},
        {"bge", {Opcode::BGE, Form::BrRRL}},
        {"bltu", {Opcode::BLTU, Form::BrRRL}},
        {"bgeu", {Opcode::BGEU, Form::BrRRL}},
        {"beqz", {Opcode::BEQ, Form::BrRL}},
        {"bnez", {Opcode::BNE, Form::BrRL}},
        {"jmp", {Opcode::JMP, Form::Label}},
        {"b", {Opcode::JMP, Form::Label}},
        {"jal", {Opcode::JAL, Form::Label}},
        {"call", {Opcode::JAL, Form::Label}},
        {"jalr", {Opcode::JALR, Form::RegOnly}},
        {"ret", {Opcode::JALR, Form::None}},
        {"nop", {Opcode::NOP, Form::None}},
        {"syscall", {Opcode::SYSCALL, Form::Sys}},
        // Single-instruction pseudo-ops.
        {"mov", {Opcode::ADD, Form::RRI}},   // handled specially
        {"neg", {Opcode::SUB, Form::RRI}},   // handled specially
        {"not", {Opcode::XORI, Form::RRI}},  // handled specially
    };
    return table;
}

/** A symbol reference awaiting resolution after all labels are known. */
struct Fixup
{
    std::size_t instIndex;
    std::string symbol;
    int line;
};

class AssemblerImpl
{
  public:
    bool
    run(const std::string &source, Program &out, std::string &error)
    {
        prog = Program{};
        errorOut = &error;

        const auto lines = vp::split(source, '\n');
        int line_no = 0;
        for (auto raw : lines) {
            ++line_no;
            curLine = line_no;
            if (!parseLine(raw))
                return false;
        }
        if (inProc)
            return fail("missing .endp for procedure '%s'",
                        curProcName.c_str());
        if (!resolveFixups())
            return false;

        if (const auto *main_proc = prog.findProc("main"))
            prog.entryPoint = main_proc->entry;
        else if (auto it = prog.codeLabels.find("main");
                 it != prog.codeLabels.end())
            prog.entryPoint = it->second;
        else
            prog.entryPoint = 0;

        const std::string verr = prog.validate();
        if (!verr.empty())
            return fail("validation failed: %s", verr.c_str());
        out = std::move(prog);
        return true;
    }

  private:
    bool
    fail(const char *fmt, ...) __attribute__((format(printf, 2, 3)))
    {
        va_list ap;
        va_start(ap, fmt);
        char buf[512];
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        *errorOut = vp::format("line %d: %s", curLine, buf);
        return false;
    }

    static std::string_view
    stripComment(std::string_view s)
    {
        // Comments start at '#' or ';' outside of quotes.
        bool in_str = false;
        bool in_chr = false;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const char ch = s[i];
            if (in_str) {
                if (ch == '\\')
                    ++i;
                else if (ch == '"')
                    in_str = false;
            } else if (in_chr) {
                if (ch == '\\')
                    ++i;
                else if (ch == '\'')
                    in_chr = false;
            } else if (ch == '"') {
                in_str = true;
            } else if (ch == '\'') {
                in_chr = true;
            } else if (ch == '#' || ch == ';') {
                return s.substr(0, i);
            }
        }
        return s;
    }

    bool
    parseLine(std::string_view raw)
    {
        std::string_view s = vp::trim(stripComment(raw));
        if (s.empty())
            return true;

        // Leading labels (possibly several on one line).
        while (true) {
            std::size_t colon = std::string_view::npos;
            for (std::size_t i = 0; i < s.size(); ++i) {
                const char ch = s[i];
                if (ch == ':') {
                    colon = i;
                    break;
                }
                if (!std::isalnum(static_cast<unsigned char>(ch)) &&
                    ch != '_' && ch != '.')
                    break;
            }
            if (colon == std::string_view::npos || colon == 0)
                break;
            std::string label(vp::trim(s.substr(0, colon)));
            if (!defineLabel(label))
                return false;
            s = vp::trim(s.substr(colon + 1));
            if (s.empty())
                return true;
        }

        if (s.front() == '.')
            return parseDirective(s);
        return parseInstruction(s);
    }

    bool
    defineLabel(const std::string &label)
    {
        if (inData) {
            if (prog.dataSymbols.count(label) ||
                prog.codeLabels.count(label))
                return fail("duplicate label '%s'", label.c_str());
            prog.dataSymbols[label] =
                prog.dataBase + prog.dataInit.size();
        } else {
            const auto here =
                static_cast<std::uint32_t>(prog.code.size());
            if (prog.dataSymbols.count(label))
                return fail("duplicate label '%s'", label.c_str());
            // A `.proc name` directive pre-registers its name at the
            // procedure entry; the conventional `name:` on the next
            // line is the same definition, not a duplicate.
            if (auto it = prog.codeLabels.find(label);
                it != prog.codeLabels.end()) {
                if (it->second == here)
                    return true;
                return fail("duplicate label '%s'", label.c_str());
            }
            prog.codeLabels[label] = here;
        }
        return true;
    }

    bool
    parseDirective(std::string_view s)
    {
        const std::size_t sp = s.find_first_of(" \t");
        std::string name(s.substr(0, sp));
        std::string_view rest =
            sp == std::string_view::npos ? std::string_view{}
                                         : vp::trim(s.substr(sp));

        if (name == ".data") { inData = true; return true; }
        if (name == ".text") { inData = false; return true; }

        if (name == ".proc") {
            if (inData)
                return fail(".proc inside .data");
            if (inProc)
                return fail("nested .proc");
            auto parts = vp::splitWhitespace(rest);
            if (parts.empty())
                return fail(".proc needs a name");
            curProcName = std::string(parts[0]);
            curProcArgs = 0;
            for (std::size_t i = 1; i < parts.size(); ++i) {
                std::string_view p = parts[i];
                if (vp::startsWith(p, "args=")) {
                    std::int64_t v;
                    if (!vp::parseInt(p.substr(5), v) || v < 0 ||
                        v > static_cast<std::int64_t>(maxArgRegs))
                        return fail("bad args= in .proc");
                    curProcArgs = static_cast<unsigned>(v);
                } else {
                    return fail("unknown .proc attribute '%.*s'",
                                static_cast<int>(p.size()), p.data());
                }
            }
            curProcEntry = static_cast<std::uint32_t>(prog.code.size());
            inProc = true;
            // The procedure name doubles as a code label if not
            // separately defined.
            if (!prog.codeLabels.count(curProcName) &&
                !prog.dataSymbols.count(curProcName))
                prog.codeLabels[curProcName] = curProcEntry;
            return true;
        }

        if (name == ".endp") {
            if (!inProc)
                return fail(".endp without .proc");
            Procedure p;
            p.name = curProcName;
            p.entry = curProcEntry;
            p.end = static_cast<std::uint32_t>(prog.code.size());
            p.numArgs = curProcArgs;
            prog.procs.push_back(std::move(p));
            inProc = false;
            return true;
        }

        if (!inData)
            return fail("data directive '%s' outside .data",
                        name.c_str());

        if (name == ".word" || name == ".byte") {
            const unsigned width = name == ".word" ? 8 : 1;
            for (auto field : vp::split(rest, ',')) {
                field = vp::trim(field);
                if (field.empty())
                    return fail("empty %s operand", name.c_str());
                std::int64_t v = 0;
                if (!vp::parseInt(field, v)) {
                    // Could be a (possibly forward) symbol: only legal
                    // at word width. Record a data fixup.
                    if (width != 8)
                        return fail("symbol operand needs .word");
                    dataFixups.push_back(
                        {prog.dataInit.size(), std::string(field),
                         curLine});
                }
                for (unsigned b = 0; b < width; ++b) {
                    prog.dataInit.push_back(
                        static_cast<std::uint8_t>(
                            (static_cast<std::uint64_t>(v) >> (8 * b)) &
                            0xff));
                }
            }
            return true;
        }

        if (name == ".space") {
            std::int64_t v = 0;
            if (!vp::parseInt(rest, v) || v < 0)
                return fail("bad .space size");
            prog.dataInit.insert(prog.dataInit.end(),
                                 static_cast<std::size_t>(v), 0);
            return true;
        }

        if (name == ".align") {
            std::int64_t v = 0;
            if (!vp::parseInt(rest, v) || v <= 0 || (v & (v - 1)))
                return fail("bad .align (need a power of two)");
            while ((prog.dataBase + prog.dataInit.size()) %
                   static_cast<std::uint64_t>(v))
                prog.dataInit.push_back(0);
            return true;
        }

        if (name == ".asciiz") {
            std::string text;
            if (!parseStringLiteral(rest, text))
                return fail("bad string literal");
            for (char ch : text)
                prog.dataInit.push_back(static_cast<std::uint8_t>(ch));
            prog.dataInit.push_back(0);
            return true;
        }

        return fail("unknown directive '%s'", name.c_str());
    }

    static bool
    parseStringLiteral(std::string_view s, std::string &out)
    {
        s = vp::trim(s);
        if (s.size() < 2 || s.front() != '"' || s.back() != '"')
            return false;
        s = s.substr(1, s.size() - 2);
        out.clear();
        for (std::size_t i = 0; i < s.size(); ++i) {
            char ch = s[i];
            if (ch == '\\' && i + 1 < s.size()) {
                ++i;
                switch (s[i]) {
                  case 'n': ch = '\n'; break;
                  case 't': ch = '\t'; break;
                  case 'r': ch = '\r'; break;
                  case '0': ch = '\0'; break;
                  case '\\': ch = '\\'; break;
                  case '"': ch = '"'; break;
                  default: return false;
                }
            }
            out.push_back(ch);
        }
        return true;
    }

    bool
    parseReg(std::string_view token, std::uint8_t &out)
    {
        if (!parseRegName(std::string(vp::trim(token)), out))
            return fail("bad register '%.*s'",
                        static_cast<int>(token.size()), token.data());
        return true;
    }

    /**
     * Parse an immediate operand: integer literal, or symbol (deferred
     * to fixup resolution). instIndex is where the fixup applies.
     */
    bool
    parseImmOperand(std::string_view token, Inst &inst, bool &symbolic)
    {
        token = vp::trim(token);
        std::int64_t v = 0;
        if (vp::parseInt(token, v)) {
            inst.imm = v;
            symbolic = false;
            return true;
        }
        if (token.empty())
            return fail("missing immediate operand");
        instFixups.push_back({prog.code.size(), std::string(token),
                              curLine});
        symbolic = true;
        return true;
    }

    bool
    parseMemOperand(std::string_view token, Inst &inst)
    {
        // Forms: imm(reg), (reg), sym(reg), imm, sym  (absolute).
        token = vp::trim(token);
        const std::size_t open = token.rfind('(');
        std::string_view off = token;
        std::string_view reg;
        if (open != std::string_view::npos) {
            if (token.back() != ')')
                return fail("bad memory operand '%.*s'",
                            static_cast<int>(token.size()), token.data());
            off = vp::trim(token.substr(0, open));
            reg = vp::trim(
                token.substr(open + 1, token.size() - open - 2));
        }
        if (reg.empty()) {
            inst.ra = regZero;
        } else if (!parseReg(reg, inst.ra)) {
            return false;
        }
        if (off.empty()) {
            inst.imm = 0;
            return true;
        }
        bool symbolic = false;
        return parseImmOperand(off, inst, symbolic);
    }

    bool
    parseInstruction(std::string_view s)
    {
        if (inData)
            return fail("instruction inside .data");
        const std::size_t sp = s.find_first_of(" \t");
        std::string mnemonic(s.substr(0, sp));
        std::string_view rest =
            sp == std::string_view::npos ? std::string_view{}
                                         : vp::trim(s.substr(sp));

        const auto &table = mnemonicTable();
        auto it = table.find(mnemonic);
        if (it == table.end())
            return fail("unknown mnemonic '%s'", mnemonic.c_str());
        const MnemonicInfo info = it->second;

        Inst inst;
        inst.op = info.op;
        auto ops = vp::split(rest, ',');
        if (rest.empty())
            ops.clear();

        auto expect = [&](std::size_t n) {
            if (ops.size() != n)
                return fail("'%s' expects %zu operands, got %zu",
                            mnemonic.c_str(), n, ops.size());
            return true;
        };

        // The three register pseudo-ops share forms with real
        // instructions but take two operands.
        if (mnemonic == "mov" || mnemonic == "neg" || mnemonic == "not") {
            if (!expect(2))
                return false;
            if (!parseReg(ops[0], inst.rd))
                return false;
            std::uint8_t rs;
            if (!parseReg(ops[1], rs))
                return false;
            if (mnemonic == "mov") {
                inst.op = Opcode::ADD;
                inst.ra = rs;
                inst.rb = regZero;
            } else if (mnemonic == "neg") {
                inst.op = Opcode::SUB;
                inst.ra = regZero;
                inst.rb = rs;
            } else {
                inst.op = Opcode::XORI;
                inst.ra = rs;
                inst.imm = -1;
            }
            prog.code.push_back(inst);
            return true;
        }

        switch (info.form) {
          case Form::RRR:
            if (!expect(3) || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.ra) || !parseReg(ops[2], inst.rb))
                return false;
            break;
          case Form::RRI: {
            if (!expect(3) || !parseReg(ops[0], inst.rd) ||
                !parseReg(ops[1], inst.ra))
                return false;
            bool symbolic = false;
            if (!parseImmOperand(ops[2], inst, symbolic))
                return false;
            break;
          }
          case Form::RI: {
            if (!expect(2) || !parseReg(ops[0], inst.rd))
                return false;
            bool symbolic = false;
            if (!parseImmOperand(ops[1], inst, symbolic))
                return false;
            break;
          }
          case Form::LoadMem:
            if (!expect(2) || !parseReg(ops[0], inst.rd) ||
                !parseMemOperand(ops[1], inst))
                return false;
            break;
          case Form::StoreMem:
            if (!expect(2) || !parseReg(ops[0], inst.rb) ||
                !parseMemOperand(ops[1], inst))
                return false;
            break;
          case Form::BrRRL: {
            if (!expect(3) || !parseReg(ops[0], inst.ra) ||
                !parseReg(ops[1], inst.rb))
                return false;
            bool symbolic = false;
            if (!parseImmOperand(ops[2], inst, symbolic))
                return false;
            break;
          }
          case Form::BrRL: {
            if (!expect(2) || !parseReg(ops[0], inst.ra))
                return false;
            inst.rb = regZero;
            bool symbolic = false;
            if (!parseImmOperand(ops[1], inst, symbolic))
                return false;
            break;
          }
          case Form::Label: {
            // jal/call link to ra unless an explicit rd is given:
            //   jal label | jal rd, label | jmp label
            if (inst.op == Opcode::JAL) {
                if (ops.size() == 2) {
                    if (!parseReg(ops[0], inst.rd))
                        return false;
                    ops.erase(ops.begin());
                } else {
                    inst.rd = regRa;
                }
            }
            if (!expect(1))
                return false;
            bool symbolic = false;
            if (!parseImmOperand(ops[0], inst, symbolic))
                return false;
            break;
          }
          case Form::RegOnly:
            // jalr target | jalr rd, target
            if (ops.size() == 2) {
                if (!parseReg(ops[0], inst.rd) ||
                    !parseReg(ops[1], inst.ra))
                    return false;
            } else {
                if (!expect(1))
                    return false;
                inst.rd = regRa;
                if (!parseReg(ops[0], inst.ra))
                    return false;
            }
            break;
          case Form::None:
            if (!expect(0))
                return false;
            if (mnemonic == "ret") {
                inst.rd = regZero;
                inst.ra = regRa;
            }
            break;
          case Form::Sys: {
            auto parts = vp::splitWhitespace(rest);
            if (parts.size() != 1)
                return fail("syscall expects one operand");
            std::string which(parts[0]);
            if (which == "exit")
                inst.imm = static_cast<std::int64_t>(Syscall::Exit);
            else if (which == "putc")
                inst.imm = static_cast<std::int64_t>(Syscall::Putc);
            else if (which == "puti")
                inst.imm = static_cast<std::int64_t>(Syscall::Puti);
            else if (std::int64_t v; vp::parseInt(which, v))
                inst.imm = v;
            else
                return fail("unknown syscall '%s'", which.c_str());
            break;
          }
          default:
            vp_panic("unhandled operand form");
        }

        prog.code.push_back(inst);
        return true;
    }

    bool
    lookupSymbol(const std::string &symbol, std::uint64_t &value) const
    {
        if (auto it = prog.dataSymbols.find(symbol);
            it != prog.dataSymbols.end()) {
            value = it->second;
            return true;
        }
        if (auto it = prog.codeLabels.find(symbol);
            it != prog.codeLabels.end()) {
            value = it->second;
            return true;
        }
        return false;
    }

    bool
    resolveFixups()
    {
        for (const auto &fx : instFixups) {
            std::uint64_t v = 0;
            if (!lookupSymbol(fx.symbol, v)) {
                curLine = fx.line;
                return fail("undefined symbol '%s'", fx.symbol.c_str());
            }
            prog.code[fx.instIndex].imm = static_cast<std::int64_t>(v);
        }
        for (const auto &fx : dataFixups) {
            std::uint64_t v = 0;
            if (!lookupSymbol(fx.symbol, v)) {
                curLine = fx.line;
                return fail("undefined symbol '%s'", fx.symbol.c_str());
            }
            for (unsigned b = 0; b < 8; ++b)
                prog.dataInit[fx.instIndex + b] =
                    static_cast<std::uint8_t>((v >> (8 * b)) & 0xff);
        }
        return true;
    }

    Program prog;
    std::string *errorOut = nullptr;
    int curLine = 0;
    bool inData = false;
    bool inProc = false;
    std::string curProcName;
    unsigned curProcArgs = 0;
    std::uint32_t curProcEntry = 0;
    std::vector<Fixup> instFixups;
    /// For data fixups, instIndex is the byte offset in dataInit.
    std::vector<Fixup> dataFixups;
};

} // namespace

bool
tryAssemble(const std::string &source, Program &out, std::string &error)
{
    AssemblerImpl impl;
    return impl.run(source, out, error);
}

Program
assemble(const std::string &source)
{
    Program prog;
    std::string error;
    if (!tryAssemble(source, prog, error))
        vp_fatal("assembly failed: %s", error.c_str());
    return prog;
}

} // namespace vpsim
