/**
 * @file
 * Basic-block discovery and control-flow graphs over a Program.
 *
 * Used by the ATOM-like Image interface (block iteration) and by the
 * specializer's dataflow passes.
 */

#ifndef VP_VPSIM_CFG_HPP
#define VP_VPSIM_CFG_HPP

#include <cstdint>
#include <vector>

#include "vpsim/program.hpp"

namespace vpsim
{

/** A maximal straight-line instruction sequence. */
struct BasicBlock
{
    std::uint32_t begin = 0;  ///< first instruction index
    std::uint32_t end = 0;    ///< one past the last instruction
    std::vector<std::uint32_t> succs;  ///< successor block ids
    std::vector<std::uint32_t> preds;  ///< predecessor block ids

    std::uint32_t size() const { return end - begin; }
};

/**
 * Control-flow graph over a contiguous instruction range (usually a
 * procedure). Blocks are numbered in address order.
 *
 * Indirect jumps (JALR used as a computed jump) get no static
 * successors; clients must treat blocks ending in JALR conservatively.
 * JAL calls are treated as fall-through (call returns), matching how
 * ATOM iterates blocks within a procedure.
 */
class Cfg
{
  public:
    /** Build the CFG for instructions [begin, end) of prog. */
    Cfg(const Program &prog, std::uint32_t begin, std::uint32_t end);

    /** Build the CFG for a whole procedure. */
    Cfg(const Program &prog, const Procedure &proc)
        : Cfg(prog, proc.entry, proc.end)
    {}

    const std::vector<BasicBlock> &blocks() const { return blockList; }
    std::uint32_t rangeBegin() const { return lo; }
    std::uint32_t rangeEnd() const { return hi; }

    /** Block id containing instruction index pc (must be in range). */
    std::uint32_t blockOf(std::uint32_t pc) const;

  private:
    std::uint32_t lo, hi;
    std::vector<BasicBlock> blockList;
    std::vector<std::uint32_t> blockIndex;  ///< pc-lo -> block id
};

} // namespace vpsim

#endif // VP_VPSIM_CFG_HPP
