#include "vpsim/memory.hpp"

#include "support/logging.hpp"

namespace vpsim
{

void
Memory::writeBlock(std::uint64_t addr, const void *src, std::size_t len)
{
    if (!inBounds(addr, 0) || addr + len > data.size())
        vp_fatal("host writeBlock out of bounds: addr=0x%llx len=%zu",
                 static_cast<unsigned long long>(addr), len);
    std::memcpy(data.data() + addr, src, len);
}

void
Memory::readBlock(std::uint64_t addr, void *dst, std::size_t len) const
{
    if (addr + len > data.size() || addr + len < addr)
        vp_fatal("host readBlock out of bounds: addr=0x%llx len=%zu",
                 static_cast<unsigned long long>(addr), len);
    std::memcpy(dst, data.data() + addr, len);
}

} // namespace vpsim
