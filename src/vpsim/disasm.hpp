/**
 * @file
 * Instruction and program pretty-printing (for reports and examples).
 */

#ifndef VP_VPSIM_DISASM_HPP
#define VP_VPSIM_DISASM_HPP

#include <string>

#include "vpsim/program.hpp"

namespace vpsim
{

/** Render one instruction as assembly text, e.g. "addi t0, t0, -1". */
std::string disassemble(const Inst &inst);

/**
 * Render one instruction with label-aware branch targets when the
 * owning program is supplied.
 */
std::string disassemble(const Program &prog, std::uint32_t pc);

/** Render an instruction range, one line per instruction. */
std::string disassembleRange(const Program &prog, std::uint32_t begin,
                             std::uint32_t end);

} // namespace vpsim

#endif // VP_VPSIM_DISASM_HPP
