/**
 * @file
 * The VPSim interpreter.
 *
 * Executes a Program over a flat data Memory. Observers register an
 * ExecListener to receive per-instruction, per-memory-access, and
 * call/return events — the hook points the instrumentation layer (and
 * through it the value profilers) attach to, mirroring how ATOM-
 * instrumented binaries call analysis routines.
 */

#ifndef VP_VPSIM_CPU_HPP
#define VP_VPSIM_CPU_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vpsim/isa.hpp"
#include "vpsim/memory.hpp"
#include "vpsim/program.hpp"

namespace vpsim
{

/**
 * One recorded architectural event, produced by the interpreter into
 * a per-block batch (see ExecListener::onEvents).
 *
 * The interpreter does not cross the instrumentation boundary per
 * instruction: it records events into a buffer and delivers the whole
 * batch in one virtual call. 32 bytes, two per cache line.
 */
struct ExecEvent
{
    enum class Kind : std::uint8_t
    {
        Inst,       ///< retired without writing a destination register
        InstWrote,  ///< retired and wrote `value` to its destination
        Load,       ///< memory read: `size` bytes at `addr` gave `value`
        Store,      ///< memory write: `size` bytes of `value` at `addr`
        Call,       ///< control entered procedure `addr` from pc
    };

    Kind kind;
    std::uint8_t size;    ///< access width (Load/Store only)
    std::uint32_t pc;     ///< instruction index (Call: the caller's)
    const Inst *inst;     ///< the instruction (Inst/InstWrote only)
    std::uint64_t addr;   ///< address (Load/Store) or callee entry (Call)
    std::uint64_t value;  ///< result / loaded / stored value
};

class Cpu;

/**
 * Observer of architectural events during interpretation.
 *
 * All callbacks fire *after* the instruction has executed, so result
 * values are architected state — exactly what the paper's "after"
 * instrumentation point sees (thesis section III.E).
 */
class ExecListener
{
  public:
    virtual ~ExecListener() = default;

    /** Bits for eventInterest(). */
    enum : unsigned
    {
        kInterestInst = 1u << 0,   ///< Inst and InstWrote events
        kInterestLoad = 1u << 1,   ///< Load events
        kInterestStore = 1u << 2,  ///< Store events
        kInterestCall = 1u << 3,   ///< Call events
        kInterestAll = 0xFu,
    };

    /**
     * Which event kinds this listener wants, as a bitmask of the
     * kInterest* bits. The interpreter latches the union over all
     * attached listeners each time it enters its loop and never
     * materializes events no listener asked for — a listener that
     * narrows its interest (the InstrumentManager reports exactly the
     * kinds with a registered tool) makes the unwanted kinds cost
     * zero, and an attached listener wanting nothing runs at native
     * speed. Latched, not polled: register routing before run()/
     * step(); a change takes effect on the next entry.
     *
     * Interest is a licence to drop, not a routing guarantee: with
     * several listeners attached each receives the union's events, so
     * a listener must tolerate kinds it did not request (per-kind
     * routing tables do this naturally).
     */
    virtual unsigned eventInterest() const { return kInterestAll; }

    /**
     * Optional per-pc filter for Inst/InstWrote events: nullptr means
     * "every pc" (the default); otherwise a byte array covering every
     * pc of the bound program, where zero means events from that pc
     * are never materialized — selective insertion pushed down into
     * the interpreter, so retirements of uninstrumented instructions
     * cost one predictable array test instead of an event. Honoured
     * only when this is the Cpu's sole listener (with several, their
     * filters would have to be unioned per entry — not worth it for a
     * configuration the hot benchmarks never use). Latched together
     * with eventInterest(); the same licence-to-drop caveat applies.
     */
    virtual const std::uint8_t *instEventFilter() const
    {
        return nullptr;
    }

    /**
     * A batch of retired events, in retirement order.
     *
     * This is the only entry point the interpreter calls; the default
     * implementation replays the batch through the fine-grained hooks
     * below, so subclasses may override either this (one virtual call
     * per batch — the fast path) or the per-event hooks (simple), and
     * behave identically.
     *
     * Batches are delivered at basic-block granularity or better: the
     * interpreter flushes when the buffer fills, when a call retires,
     * and before returning to the caller, so `arg_regs` (the live
     * argument-register file, regA0 upward) is architecturally final
     * for the at-most-one Call event a batch carries — a Call is
     * always the batch's last event. Events of one instruction are
     * adjacent: its Load/Store precedes its Inst/InstWrote, matching
     * the order the fine-grained hooks always fired in.
     */
    virtual void
    onEvents(const ExecEvent *events, std::size_t n,
             const std::uint64_t *arg_regs)
    {
        for (std::size_t i = 0; i < n; ++i) {
            const ExecEvent &e = events[i];
            switch (e.kind) {
              case ExecEvent::Kind::Inst:
                onInst(e.pc, *e.inst, false, 0);
                break;
              case ExecEvent::Kind::InstWrote:
                onInst(e.pc, *e.inst, true, e.value);
                break;
              case ExecEvent::Kind::Load:
                onLoad(e.pc, e.addr, e.size, e.value);
                break;
              case ExecEvent::Kind::Store:
                onStore(e.pc, e.addr, e.size, e.value);
                break;
              case ExecEvent::Kind::Call:
                onCall(e.pc, static_cast<std::uint32_t>(e.addr),
                       arg_regs);
                break;
            }
        }
    }

    /**
     * An instruction retired.
     * @param pc       instruction index
     * @param inst     the decoded instruction
     * @param wrote    true if a destination register was written
     * @param value    the written value (undefined when !wrote)
     */
    virtual void
    onInst(std::uint32_t pc, const Inst &inst, bool wrote,
           std::uint64_t value)
    {
        (void)pc; (void)inst; (void)wrote; (void)value;
    }

    /** A load retired: value read from [addr, addr+size). */
    virtual void
    onLoad(std::uint32_t pc, std::uint64_t addr, unsigned size,
           std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /** A store retired: value written to [addr, addr+size). */
    virtual void
    onStore(std::uint32_t pc, std::uint64_t addr, unsigned size,
            std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /**
     * A call (JAL/JALR used as a call) transferred control to a
     * procedure entry. Argument registers hold the arguments.
     */
    virtual void
    onCall(std::uint32_t caller_pc, std::uint32_t callee_entry,
           const std::uint64_t *arg_regs)
    {
        (void)caller_pc; (void)callee_entry; (void)arg_regs;
    }

    /**
     * The interpreter reached a patch point: it is parked between
     * instructions with no latched code pointer live, in response to a
     * Cpu::requestPatchPoint(). This is the only moment the bound
     * Program may be mutated (grown — existing instructions are
     * immutable forever) and call redirects installed; interpret()
     * re-latches everything when execution resumes. All pending events
     * have been flushed before this fires.
     */
    virtual void onPatchPoint(Cpu &cpu) { (void)cpu; }
};

/** Why run() stopped. */
enum class StopReason
{
    Exited,       ///< guest executed syscall exit
    MaxInsts,     ///< instruction budget exhausted
    MemFault,     ///< out-of-bounds data access
    BadInst,      ///< divide by zero or malformed instruction
};

/** Execution summary returned by Cpu::run(). */
struct RunResult
{
    StopReason reason = StopReason::Exited;
    std::int64_t exitCode = 0;
    std::uint64_t dynamicInsts = 0;
    std::uint64_t dynamicLoads = 0;
    std::uint64_t dynamicStores = 0;

    bool exited() const { return reason == StopReason::Exited; }
};

/** Cpu construction parameters. */
struct CpuConfig
{
    std::size_t memBytes = 16u << 20;          ///< guest memory size
    std::uint64_t maxInsts = 4'000'000'000ull; ///< runaway budget
};

/** The interpreter. */
class Cpu
{
  public:
    /**
     * Bind a program. The program must outlive the Cpu. reset() is
     * called implicitly.
     */
    explicit Cpu(const Program &prog, CpuConfig cfg = {});

    /**
     * Reload architectural state: zero the registers, clear memory,
     * reload the data image, point sp at the top of memory and pc at
     * the entry point. Guest input must be re-injected after reset.
     */
    void reset();

    /** Run until exit, fault, or the instruction budget. */
    RunResult run();

    /** Execute exactly one instruction (for tests and debuggers). */
    void step();

    /** True once the guest has exited or trapped. */
    bool halted() const { return haltReason.has_value(); }

    /** Attach an observer (not owned). */
    void addListener(ExecListener *listener);
    /** Detach a previously attached observer. */
    void removeListener(ExecListener *listener);

    // --- host access to guest state -----------------------------------

    std::uint64_t readReg(unsigned r) const { return regs[r]; }
    void
    writeReg(unsigned r, std::uint64_t v)
    {
        if (r != regZero)
            regs[r] = v;
    }
    std::uint32_t pc() const { return pcReg; }
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    const Program &program() const { return prog; }

    /** Output accumulated via putc/puti syscalls. */
    const std::string &output() const { return outputText; }
    /** Values emitted via puti, in order (convenient for tests). */
    const std::vector<std::int64_t> &outputValues() const
    {
        return outputInts;
    }

    std::uint64_t dynamicInsts() const { return icount; }

    // --- online patching ----------------------------------------------
    //
    // The adaptive specialization engine (src/adapt) hot-patches a
    // running guest: it appends guarded clones to the Program and
    // steers calls into them. Both mutations are only legal at a patch
    // point, because interpret() latches the code pointer for a whole
    // entry; the protocol is requestPatchPoint() → the loop exits at
    // the next instruction boundary → run() fires
    // ExecListener::onPatchPoint on every listener → resume.

    /**
     * Ask the interpreter to stop at the next instruction boundary and
     * deliver ExecListener::onPatchPoint before resuming. Safe to call
     * from inside a listener callback while the loop is running (this
     * is the intended use: decide during an event flush, mutate at the
     * patch point).
     */
    void requestPatchPoint();

    /**
     * Redirect calls (JAL, and JALR used as a call) that target
     * procedure entry `entry` to `target` instead. The redirect is
     * applied *after* the Call event is reported, so listeners always
     * observe the original callee entry. May reallocate the table:
     * only call at a patch point (or before run()).
     */
    void setCallRedirect(std::uint32_t entry, std::uint32_t target);

    /**
     * Remove a call redirect. Writes in place and never reallocates,
     * so this is safe to call from inside a listener callback mid-run:
     * the next call to `entry` already takes the original path.
     */
    void clearCallRedirect(std::uint32_t entry);

    /** Current redirect target for `entry` (0 = none installed). */
    std::uint32_t callRedirect(std::uint32_t entry) const;

  private:
    /**
     * The interpreter loop: execute until halt or until `stop_after`
     * instructions have retired in total (a soft stop — no halt
     * reason). run() passes "never", step() passes icount + 1.
     */
    void interpret(std::uint64_t stop_after);

    void halt(StopReason reason);

    /** Deliver a pending patch point to every listener. */
    void servicePatchPoint();

    // --- event batching ------------------------------------------------
    //
    // Retired events are recorded here and handed to listeners in
    // batches (ExecListener::onEvents). The capacity bounds a batch;
    // the flush mark leaves headroom for the at-most-two events one
    // instruction can add (its memory access plus its retirement).

    static constexpr std::size_t kEventCap = 256;
    static constexpr std::size_t kEventFlushMark = kEventCap - 2;

    /** Deliver buffered events to every listener and empty the buffer. */
    void flushEvents();

    void
    pushInst(std::uint32_t pc, const Inst *inst, bool wrote,
             std::uint64_t value)
    {
        ExecEvent &e = evbuf[evCount++];
        e.kind = wrote ? ExecEvent::Kind::InstWrote
                       : ExecEvent::Kind::Inst;
        e.size = 0;
        e.pc = pc;
        e.inst = inst;
        e.addr = 0;
        e.value = value;
    }

    void
    pushMem(ExecEvent::Kind kind, std::uint32_t pc, std::uint64_t addr,
            unsigned size, std::uint64_t value)
    {
        ExecEvent &e = evbuf[evCount++];
        e.kind = kind;
        e.size = static_cast<std::uint8_t>(size);
        e.pc = pc;
        e.inst = nullptr;
        e.addr = addr;
        e.value = value;
    }

    void
    pushCall(std::uint32_t caller_pc, std::uint32_t callee)
    {
        ExecEvent &e = evbuf[evCount++];
        e.kind = ExecEvent::Kind::Call;
        e.size = 0;
        e.pc = caller_pc;
        e.inst = nullptr;
        e.addr = callee;
        e.value = 0;
    }

    const Program &prog;
    CpuConfig cfg;
    Memory mem;
    std::array<std::uint64_t, numRegs> regs{};
    std::uint32_t pcReg = 0;
    std::uint64_t icount = 0;
    std::uint64_t loadCount = 0;
    std::uint64_t storeCount = 0;
    std::int64_t exitCode = 0;
    std::optional<StopReason> haltReason;

    std::string outputText;
    std::vector<std::int64_t> outputInts;

    std::vector<ExecListener *> listeners;

    /**
     * Soft-stop mark for the interpreter loop: the loop exits, without
     * setting a halt reason, once the retired-instruction count
     * reaches it. A member (not a parameter) so requestPatchPoint()
     * can pull a running loop out early by zeroing it from inside a
     * listener callback; interpret() re-derives it at every entry.
     */
    std::uint64_t softStop = 0;
    /** A patch point was requested and not yet delivered. */
    bool patchRequested = false;
    /**
     * Call-redirect table indexed by callee entry pc; 0 = no redirect.
     * Empty means the feature is unused — the common case, and the
     * one the hot path tests with a single pointer comparison.
     */
    std::vector<std::uint32_t> redirects;

    ExecEvent evbuf[kEventCap];
    std::size_t evCount = 0;
};

} // namespace vpsim

#endif // VP_VPSIM_CPU_HPP
