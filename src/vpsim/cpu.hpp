/**
 * @file
 * The VPSim interpreter.
 *
 * Executes a Program over a flat data Memory. Observers register an
 * ExecListener to receive per-instruction, per-memory-access, and
 * call/return events — the hook points the instrumentation layer (and
 * through it the value profilers) attach to, mirroring how ATOM-
 * instrumented binaries call analysis routines.
 */

#ifndef VP_VPSIM_CPU_HPP
#define VP_VPSIM_CPU_HPP

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "vpsim/isa.hpp"
#include "vpsim/memory.hpp"
#include "vpsim/program.hpp"

namespace vpsim
{

/**
 * Observer of architectural events during interpretation.
 *
 * All callbacks fire *after* the instruction has executed, so result
 * values are architected state — exactly what the paper's "after"
 * instrumentation point sees (thesis section III.E).
 */
class ExecListener
{
  public:
    virtual ~ExecListener() = default;

    /**
     * An instruction retired.
     * @param pc       instruction index
     * @param inst     the decoded instruction
     * @param wrote    true if a destination register was written
     * @param value    the written value (undefined when !wrote)
     */
    virtual void
    onInst(std::uint32_t pc, const Inst &inst, bool wrote,
           std::uint64_t value)
    {
        (void)pc; (void)inst; (void)wrote; (void)value;
    }

    /** A load retired: value read from [addr, addr+size). */
    virtual void
    onLoad(std::uint32_t pc, std::uint64_t addr, unsigned size,
           std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /** A store retired: value written to [addr, addr+size). */
    virtual void
    onStore(std::uint32_t pc, std::uint64_t addr, unsigned size,
            std::uint64_t value)
    {
        (void)pc; (void)addr; (void)size; (void)value;
    }

    /**
     * A call (JAL/JALR used as a call) transferred control to a
     * procedure entry. Argument registers hold the arguments.
     */
    virtual void
    onCall(std::uint32_t caller_pc, std::uint32_t callee_entry,
           const std::uint64_t *arg_regs)
    {
        (void)caller_pc; (void)callee_entry; (void)arg_regs;
    }
};

/** Why run() stopped. */
enum class StopReason
{
    Exited,       ///< guest executed syscall exit
    MaxInsts,     ///< instruction budget exhausted
    MemFault,     ///< out-of-bounds data access
    BadInst,      ///< divide by zero or malformed instruction
};

/** Execution summary returned by Cpu::run(). */
struct RunResult
{
    StopReason reason = StopReason::Exited;
    std::int64_t exitCode = 0;
    std::uint64_t dynamicInsts = 0;
    std::uint64_t dynamicLoads = 0;
    std::uint64_t dynamicStores = 0;

    bool exited() const { return reason == StopReason::Exited; }
};

/** Cpu construction parameters. */
struct CpuConfig
{
    std::size_t memBytes = 16u << 20;          ///< guest memory size
    std::uint64_t maxInsts = 4'000'000'000ull; ///< runaway budget
};

/** The interpreter. */
class Cpu
{
  public:
    /**
     * Bind a program. The program must outlive the Cpu. reset() is
     * called implicitly.
     */
    explicit Cpu(const Program &prog, CpuConfig cfg = {});

    /**
     * Reload architectural state: zero the registers, clear memory,
     * reload the data image, point sp at the top of memory and pc at
     * the entry point. Guest input must be re-injected after reset.
     */
    void reset();

    /** Run until exit, fault, or the instruction budget. */
    RunResult run();

    /** Execute exactly one instruction (for tests and debuggers). */
    void step();

    /** True once the guest has exited or trapped. */
    bool halted() const { return haltReason.has_value(); }

    /** Attach an observer (not owned). */
    void addListener(ExecListener *listener);
    /** Detach a previously attached observer. */
    void removeListener(ExecListener *listener);

    // --- host access to guest state -----------------------------------

    std::uint64_t readReg(unsigned r) const { return regs[r]; }
    void
    writeReg(unsigned r, std::uint64_t v)
    {
        if (r != regZero)
            regs[r] = v;
    }
    std::uint32_t pc() const { return pcReg; }
    Memory &memory() { return mem; }
    const Memory &memory() const { return mem; }
    const Program &program() const { return prog; }

    /** Output accumulated via putc/puti syscalls. */
    const std::string &output() const { return outputText; }
    /** Values emitted via puti, in order (convenient for tests). */
    const std::vector<std::int64_t> &outputValues() const
    {
        return outputInts;
    }

    std::uint64_t dynamicInsts() const { return icount; }

  private:
    void exec(const Inst &inst);
    void notifyCall(std::uint32_t caller_pc, std::uint32_t callee);
    void halt(StopReason reason);

    const Program &prog;
    CpuConfig cfg;
    Memory mem;
    std::array<std::uint64_t, numRegs> regs{};
    std::uint32_t pcReg = 0;
    std::uint64_t icount = 0;
    std::uint64_t loadCount = 0;
    std::uint64_t storeCount = 0;
    std::int64_t exitCode = 0;
    std::optional<StopReason> haltReason;

    std::string outputText;
    std::vector<std::int64_t> outputInts;

    std::vector<ExecListener *> listeners;
};

} // namespace vpsim

#endif // VP_VPSIM_CPU_HPP
