#include "vpsim/isa.hpp"

#include <cctype>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace vpsim
{

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return "add";
      case Opcode::SUB: return "sub";
      case Opcode::MUL: return "mul";
      case Opcode::DIV: return "div";
      case Opcode::REM: return "rem";
      case Opcode::AND: return "and";
      case Opcode::OR: return "or";
      case Opcode::XOR: return "xor";
      case Opcode::SLL: return "sll";
      case Opcode::SRL: return "srl";
      case Opcode::SRA: return "sra";
      case Opcode::SLT: return "slt";
      case Opcode::SLTU: return "sltu";
      case Opcode::SEQ: return "seq";
      case Opcode::SNE: return "sne";
      case Opcode::ADDI: return "addi";
      case Opcode::MULI: return "muli";
      case Opcode::ANDI: return "andi";
      case Opcode::ORI: return "ori";
      case Opcode::XORI: return "xori";
      case Opcode::SLLI: return "slli";
      case Opcode::SRLI: return "srli";
      case Opcode::SRAI: return "srai";
      case Opcode::SLTI: return "slti";
      case Opcode::SEQI: return "seqi";
      case Opcode::SNEI: return "snei";
      case Opcode::LI: return "li";
      case Opcode::LD: return "ld";
      case Opcode::LW: return "lw";
      case Opcode::LWU: return "lwu";
      case Opcode::LH: return "lh";
      case Opcode::LHU: return "lhu";
      case Opcode::LB: return "lb";
      case Opcode::LBU: return "lbu";
      case Opcode::ST: return "st";
      case Opcode::SW: return "sw";
      case Opcode::SH: return "sh";
      case Opcode::SB: return "sb";
      case Opcode::BEQ: return "beq";
      case Opcode::BNE: return "bne";
      case Opcode::BLT: return "blt";
      case Opcode::BGE: return "bge";
      case Opcode::BLTU: return "bltu";
      case Opcode::BGEU: return "bgeu";
      case Opcode::JMP: return "jmp";
      case Opcode::JAL: return "jal";
      case Opcode::JALR: return "jalr";
      case Opcode::SYSCALL: return "syscall";
      case Opcode::NOP: return "nop";
      default: vp_panic("bad opcode %d", static_cast<int>(op));
    }
}

InstClass
opcodeClass(Opcode op)
{
    switch (op) {
      case Opcode::LD: case Opcode::LW: case Opcode::LWU:
      case Opcode::LH: case Opcode::LHU: case Opcode::LB:
      case Opcode::LBU:
        return InstClass::Load;
      case Opcode::ST: case Opcode::SW: case Opcode::SH:
      case Opcode::SB:
        return InstClass::Store;
      case Opcode::MUL: case Opcode::MULI:
        return InstClass::IntMul;
      case Opcode::DIV: case Opcode::REM:
        return InstClass::IntDiv;
      case Opcode::SLL: case Opcode::SRL: case Opcode::SRA:
      case Opcode::SLLI: case Opcode::SRLI: case Opcode::SRAI:
        return InstClass::Shift;
      case Opcode::SLT: case Opcode::SLTU: case Opcode::SEQ:
      case Opcode::SNE: case Opcode::SLTI: case Opcode::SEQI:
      case Opcode::SNEI:
        return InstClass::Compare;
      case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT:
      case Opcode::BGE: case Opcode::BLTU: case Opcode::BGEU:
        return InstClass::Branch;
      case Opcode::JMP: case Opcode::JAL: case Opcode::JALR:
        return InstClass::Jump;
      case Opcode::SYSCALL:
        return InstClass::System;
      case Opcode::NOP:
        return InstClass::Nop;
      default:
        return InstClass::IntAlu;
    }
}

const char *
instClassName(InstClass cls)
{
    switch (cls) {
      case InstClass::Load: return "Load";
      case InstClass::Store: return "Store";
      case InstClass::IntAlu: return "IntAlu";
      case InstClass::IntMul: return "IntMul";
      case InstClass::IntDiv: return "IntDiv";
      case InstClass::Shift: return "Shift";
      case InstClass::Compare: return "Compare";
      case InstClass::Branch: return "Branch";
      case InstClass::Jump: return "Jump";
      case InstClass::System: return "System";
      case InstClass::Nop: return "Nop";
      default: vp_panic("bad class %d", static_cast<int>(cls));
    }
}

bool
isLoad(Opcode op)
{
    return opcodeClass(op) == InstClass::Load;
}

bool
isStore(Opcode op)
{
    return opcodeClass(op) == InstClass::Store;
}

bool
isCondBranch(Opcode op)
{
    return opcodeClass(op) == InstClass::Branch;
}

bool
isControl(Opcode op)
{
    const InstClass cls = opcodeClass(op);
    return cls == InstClass::Branch || cls == InstClass::Jump;
}

unsigned
memAccessSize(Opcode op)
{
    switch (op) {
      case Opcode::LD: case Opcode::ST: return 8;
      case Opcode::LW: case Opcode::LWU: case Opcode::SW: return 4;
      case Opcode::LH: case Opcode::LHU: case Opcode::SH: return 2;
      case Opcode::LB: case Opcode::LBU: case Opcode::SB: return 1;
      default: vp_panic("%s is not a memory opcode", opcodeName(op));
    }
}

bool
writesDest(const Inst &inst)
{
    if (inst.rd == regZero)
        return false;
    switch (opcodeClass(inst.op)) {
      case InstClass::Store:
      case InstClass::Branch:
      case InstClass::System:
      case InstClass::Nop:
        return false;
      case InstClass::Jump:
        // Only linking jumps write a register.
        return inst.op == Opcode::JAL || inst.op == Opcode::JALR;
      default:
        return true;
    }
}

std::string
regName(unsigned reg)
{
    vp_assert(reg < numRegs, "register %u out of range", reg);
    switch (reg) {
      case regZero: return "zero";
      case regGp: return "gp";
      case regSp: return "sp";
      case regFp: return "fp";
      case regRa: return "ra";
      default: break;
    }
    if (reg >= regA0 && reg <= regA5)
        return vp::format("a%u", reg - regA0);
    if (reg >= regT0 && reg < regS0)
        return vp::format("t%u", reg - regT0);
    if (reg >= regS0 && reg < regGp)
        return vp::format("s%u", reg - regS0);
    return vp::format("r%u", reg);
}

bool
parseRegName(const std::string &name, std::uint8_t &out)
{
    if (name == "zero") { out = regZero; return true; }
    if (name == "gp") { out = regGp; return true; }
    if (name == "sp") { out = regSp; return true; }
    if (name == "fp") { out = regFp; return true; }
    if (name == "ra") { out = regRa; return true; }
    if (name.size() < 2)
        return false;
    const char kind = name[0];
    unsigned idx = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(name[i])))
            return false;
        idx = idx * 10 + static_cast<unsigned>(name[i] - '0');
    }
    switch (kind) {
      case 'r':
        if (idx >= numRegs)
            return false;
        out = static_cast<std::uint8_t>(idx);
        return true;
      case 'a':
        if (idx >= maxArgRegs)
            return false;
        out = static_cast<std::uint8_t>(regA0 + idx);
        return true;
      case 't':
        if (idx >= 10)
            return false;
        out = static_cast<std::uint8_t>(regT0 + idx);
        return true;
      case 's':
        if (idx >= 8)
            return false;
        out = static_cast<std::uint8_t>(regS0 + idx);
        return true;
      default:
        return false;
    }
}

} // namespace vpsim
