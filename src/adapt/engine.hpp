/**
 * @file
 * Online adaptive specialization — closing the PGO loop in the VM.
 *
 * The offline pipeline (profile → specialize → rerun) proves value-
 * profile-driven specialization wins; this engine performs the same
 * transformation *while the program runs*, the way the PGO survey and
 * the adaptive-JIT literature frame profiling: as an input to online
 * optimization, not an endpoint.
 *
 * The AdaptiveEngine is an instrumentation Tool that watches procedure
 * calls. Per procedure it runs the paper's convergent sampler over the
 * argument values; when the sampler reports convergence and the best
 * argument's Inv-Top clears the invariance threshold, the engine asks
 * the Cpu for a patch point, appends a guarded specialized clone
 * (specialize::appendGuardedClone) to the live Program, and installs a
 * call redirect steering future calls through the guard. The guard
 * re-tests the bindings on every call, so the transformation stays
 * architecturally transparent whatever values arrive.
 *
 * Lifecycle per site (see DESIGN.md, "Adaptive specialization"):
 *
 *   PROFILING --converged & Inv-Top >= threshold--> INSTALLED
 *   INSTALLED --miss-rate window tripped--> deopt --> PROFILING
 *   INSTALLED --sampler retrigger (phase change)--> deopt --> PROFILING
 *   PROFILING --K deopts--> BLACKLISTED (terminal)
 *
 * Deoptimization is purely a *performance* decision: the guard already
 * routes mismatching calls to the untouched original body, so a stale
 * specialization is never incorrect, only useless. Clones are
 * append-only — a deoptimized clone's code stays in the program (pcs
 * are immutable once issued; the redirect just stops sending calls
 * there) and a re-specialization appends a fresh generation under a
 * unique label suffix.
 */

#ifndef VP_ADAPT_ENGINE_HPP
#define VP_ADAPT_ENGINE_HPP

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/sampler.hpp"
#include "core/snapshot.hpp"
#include "core/value_profile.hpp"
#include "instrument/manager.hpp"
#include "specialize/specializer.hpp"
#include "vpsim/cpu.hpp"

namespace adapt
{

/** AdaptiveEngine tuning knobs. */
struct AdaptConfig
{
    /** Inv-Top an argument must reach for its value to be bound. */
    double invariance = 0.90;
    /** Calls a procedure must accumulate before installing. */
    std::uint64_t minCalls = 64;
    /** Per-procedure convergent-sampling parameters. */
    core::SamplerConfig sampler;
    /** Per-argument value-profile parameters. */
    core::ProfileConfig profile;
    /** Calls per guard miss-rate accounting window. */
    std::uint64_t deoptWindow = 64;
    /** Window miss fraction at which the redirect is torn out. */
    double deoptMissRate = 0.5;
    /** Deopts after which a site is blacklisted for good. */
    unsigned blacklistAfter = 4;
    /** Cap on appended clones, bounding program growth. */
    std::uint32_t maxClones = 64;
};

/** The online engine; one instance per (Program, Cpu, manager) shard. */
class AdaptiveEngine final : public instr::Tool
{
  public:
    /** Per-procedure adaptation state, exposed for tests/reports. */
    struct Site
    {
        std::string procName;
        std::uint32_t entry = 0;
        unsigned numArgs = 0;

        core::SamplerState sampler;
        std::vector<core::ValueProfile> args;
        std::uint64_t calls = 0;

        bool installed = false;
        bool pendingInstall = false;
        bool everInstalled = false;
        bool blacklisted = false;
        std::vector<specialize::Binding> bindings;
        std::uint32_t guardEntry = 0;
        std::uint32_t cloneEntry = 0;

        std::uint64_t windowCalls = 0;
        std::uint64_t windowMisses = 0;
        unsigned deopts = 0;
        std::uint64_t guardHits = 0;
        std::uint64_t guardMisses = 0;
        std::uint64_t installs = 0;
        std::uint64_t respecializations = 0;

        explicit Site(const core::SamplerConfig &sc) : sampler(sc) {}
    };

    /**
     * Bind the engine to the mutable program it may grow, the manager
     * routing events to it, and the Cpu it patches. All three must
     * outlive the engine; `prog` must be the same Program the Cpu and
     * the manager's Image were built from. Registers itself for call
     * events — the caller still attaches the manager to the Cpu.
     */
    AdaptiveEngine(vpsim::Program &prog, instr::InstrumentManager &mgr,
                   vpsim::Cpu &cpu, const AdaptConfig &config = {});

    // Tool interface ---------------------------------------------------
    void onProcCall(const vpsim::Procedure &proc,
                    const std::uint64_t *args,
                    std::uint32_t caller_pc) override;
    void onPatchPoint(vpsim::Cpu &cpu) override;

    // Introspection ----------------------------------------------------

    /** Site state for a procedure entry pc, or nullptr. */
    const Site *siteAt(std::uint32_t entry) const;
    /** Site state for a procedure name, or nullptr. */
    const Site *siteFor(const std::string &proc_name) const;
    /** All sites, by entry pc. */
    const std::map<std::uint32_t, Site> &sites() const
    {
        return siteMap;
    }

    std::uint64_t installs() const { return nInstalls; }
    std::uint64_t deopts() const { return nDeopts; }
    std::uint64_t blacklists() const { return nBlacklists; }
    std::uint64_t respecializations() const { return nRespecs; }
    std::uint64_t guardHits() const { return nGuardHits; }
    std::uint64_t guardMisses() const { return nGuardMisses; }

    /** One-line per-site report for CLI output. */
    std::string report() const;

    // Fleet-wide PGO ---------------------------------------------------
    //
    // Adaptive parameter profiles travel through vpd under their own
    // tagged entity keys, so one replica's convergence can pre-seed
    // specialization on every other replica (ROADMAP stretch goal).

    /** Snapshot entity key for (procedure entry, argument index). */
    static std::uint64_t entityKey(std::uint32_t entry, unsigned arg)
    {
        return (std::uint64_t(1) << 63) |
               (std::uint64_t(entry) << 8) | (arg & 0xff);
    }

    /** Export the per-argument profiles under tagged keys. */
    void exportProfiles(core::ProfileSnapshot &snap) const;

    /**
     * Pre-seed installs from an aggregate snapshot (a vpd QUERY
     * reply): every tagged entity whose Inv-Top clears the threshold
     * and whose entry names a known procedure becomes a pending
     * install, applied at the first patch point — which this call
     * requests, so seeding before run() takes effect before the first
     * guest instruction.
     * @return number of sites seeded.
     */
    std::size_t preseedFrom(const core::ProfileSnapshot &snap);

    // Test hooks -------------------------------------------------------

    /**
     * Mutation canary (vpcheck --canary=adapt): install redirects
     * aimed straight at the clone entry, skipping the guard — a stale
     * specialization that goes architecturally wrong the moment a
     * bound value shifts. Never enable outside the harness.
     */
    static void setStaleGuardCanaryForTest(bool enabled);

  private:
    Site &siteForProc(const vpsim::Procedure &proc);
    void deoptimize(Site &site, const char *why);
    void scheduleInstall(Site &site);
    void installPending(vpsim::Cpu &cpu);

    vpsim::Program &prog;
    instr::InstrumentManager &mgr;
    vpsim::Cpu &cpu;
    AdaptConfig cfg;

    std::map<std::uint32_t, Site> siteMap;
    std::uint32_t clonesAppended = 0;
    std::uint64_t generation = 0;
    bool anyPending = false;

    std::uint64_t nInstalls = 0;
    std::uint64_t nDeopts = 0;
    std::uint64_t nBlacklists = 0;
    std::uint64_t nRespecs = 0;
    std::uint64_t nGuardHits = 0;
    std::uint64_t nGuardMisses = 0;
};

} // namespace adapt

#endif // VP_ADAPT_ENGINE_HPP
