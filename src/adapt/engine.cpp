#include "adapt/engine.hpp"

#include <algorithm>

#include "support/logging.hpp"
#include "support/stats_registry.hpp"
#include "support/strings.hpp"
#include "support/trace.hpp"

namespace adapt
{

namespace
{
bool g_staleGuardCanary = false;
} // namespace

void
AdaptiveEngine::setStaleGuardCanaryForTest(bool enabled)
{
    g_staleGuardCanary = enabled;
}

AdaptiveEngine::AdaptiveEngine(vpsim::Program &program,
                               instr::InstrumentManager &manager,
                               vpsim::Cpu &cpu_ref,
                               const AdaptConfig &config)
    : prog(program), mgr(manager), cpu(cpu_ref), cfg(config)
{
    vp_assert(cfg.invariance > 0.0 && cfg.invariance <= 1.0,
              "invariance threshold must be in (0,1]");
    vp_assert(cfg.deoptWindow >= 1, "deopt window must be positive");
    mgr.instrumentCalls(this);
}

AdaptiveEngine::Site &
AdaptiveEngine::siteForProc(const vpsim::Procedure &proc)
{
    auto it = siteMap.find(proc.entry);
    if (it == siteMap.end()) {
        it = siteMap.emplace(proc.entry, Site(cfg.sampler)).first;
        Site &s = it->second;
        s.procName = proc.name;
        s.entry = proc.entry;
        s.numArgs = std::min(proc.numArgs, vpsim::maxArgRegs);
        s.args.assign(s.numArgs, core::ValueProfile(cfg.profile));
    }
    return it->second;
}

const AdaptiveEngine::Site *
AdaptiveEngine::siteAt(std::uint32_t entry) const
{
    auto it = siteMap.find(entry);
    return it == siteMap.end() ? nullptr : &it->second;
}

const AdaptiveEngine::Site *
AdaptiveEngine::siteFor(const std::string &proc_name) const
{
    for (const auto &[entry, site] : siteMap)
        if (site.procName == proc_name)
            return &site;
    return nullptr;
}

void
AdaptiveEngine::deoptimize(Site &site, const char *why)
{
    // Tearing out the redirect is safe mid-run (in-place write); it
    // takes effect for the very call being reported, which has not
    // been redirected yet.
    cpu.clearCallRedirect(site.entry);
    site.installed = false;
    site.windowCalls = site.windowMisses = 0;
    ++site.deopts;
    ++nDeopts;
    VP_STAT_INC(vp::stats::Cid::AdaptDeopts);

    // Forget the stale phase and restart full-rate sampling so the
    // new value distribution is learned from scratch.
    for (auto &p : site.args)
        p.reset();
    site.sampler = core::SamplerState(cfg.sampler);

    if (site.deopts >= cfg.blacklistAfter) {
        site.blacklisted = true;
        ++nBlacklists;
        VP_STAT_INC(vp::stats::Cid::AdaptBlacklists);
    }
    (void)why;
}

void
AdaptiveEngine::scheduleInstall(Site &site)
{
    // Bind every argument whose profile cleared the threshold; the
    // guard tests them all, so more bindings mean a stronger clone at
    // the price of a pickier guard.
    std::vector<specialize::Binding> bindings;
    for (unsigned i = 0; i < site.numArgs; ++i) {
        const core::ValueProfile &p = site.args[i];
        if (p.executions() == 0 || p.invTop() < cfg.invariance)
            continue;
        const auto top = p.tnv().top();
        if (!top)
            continue;
        bindings.push_back(
            {static_cast<std::uint8_t>(vpsim::regA0 + i),
             top->value});
    }
    if (bindings.empty())
        return;
    site.bindings = std::move(bindings);
    site.pendingInstall = true;
    anyPending = true;
    cpu.requestPatchPoint();
}

void
AdaptiveEngine::installPending(vpsim::Cpu &patched)
{
    if (!anyPending)
        return;
    anyPending = false;
    for (auto &[entry, site] : siteMap) {
        if (!site.pendingInstall)
            continue;
        site.pendingInstall = false;
        if (site.installed || site.blacklisted ||
            clonesAppended >= cfg.maxClones)
            continue;

        vp::trace::ScopedSpan span("adapt.install");
        span.arg("proc", site.procName);

        // Each generation gets a unique label suffix: deoptimized
        // clones stay in the program (pcs are immutable), so a
        // re-specialization must not collide with its predecessors.
        specialize::CloneOptions opts;
        opts.retargetCalls = false;
        // No ABI assumption online: the guest may pass values through
        // scratch registers, so only provably dead code is removed.
        opts.assumeAbi = false;
        opts.labelSuffix = vp::format("$a%llu",
                                      static_cast<unsigned long long>(
                                          ++generation));
        const specialize::GuardedClone clone =
            specialize::appendGuardedClone(prog, site.procName,
                                           site.bindings, opts);
        ++clonesAppended;

        // The program grew: widen the routing tables before the
        // interpreter re-latches its per-pc filter.
        mgr.growTo(prog.code.size());

        site.guardEntry = clone.guardEntry;
        site.cloneEntry = clone.specializedEntry;
        patched.setCallRedirect(site.entry,
                                g_staleGuardCanary
                                    ? clone.specializedEntry
                                    : clone.guardEntry);
        site.installed = true;
        site.windowCalls = site.windowMisses = 0;
        ++site.installs;
        ++nInstalls;
        VP_STAT_INC(vp::stats::Cid::AdaptInstalls);
        if (site.everInstalled) {
            ++site.respecializations;
            ++nRespecs;
            VP_STAT_INC(vp::stats::Cid::AdaptRespecializations);
        }
        site.everInstalled = true;
    }
}

void
AdaptiveEngine::onPatchPoint(vpsim::Cpu &patched)
{
    installPending(patched);
}

void
AdaptiveEngine::onProcCall(const vpsim::Procedure &proc,
                           const std::uint64_t *args, std::uint32_t)
{
    if (proc.numArgs == 0)
        return;
    // A host-side Cpu::reset() (workload harnesses reset before
    // injecting input) drops any pending patch-point request. Re-arm
    // while installs are queued so pre-seeded specializations still
    // land, instead of wedging the site in pendingInstall forever.
    if (anyPending)
        cpu.requestPatchPoint();
    Site &site = siteForProc(proc);
    ++site.calls;

    // Guard accounting. The interpreter reports the *original* callee
    // (redirects apply after the Call event), so the engine sees every
    // call and can mirror the guard's register tests exactly.
    if (site.installed) {
        bool match = true;
        for (const auto &b : site.bindings) {
            if (args[b.reg - vpsim::regA0] != b.value) {
                match = false;
                break;
            }
        }
        if (match) {
            ++site.guardHits;
            ++nGuardHits;
            VP_STAT_INC(vp::stats::Cid::AdaptGuardHits);
        } else {
            ++site.guardMisses;
            ++nGuardMisses;
            VP_STAT_INC(vp::stats::Cid::AdaptGuardMisses);
        }
        ++site.windowCalls;
        if (!match)
            ++site.windowMisses;
        if (site.windowCalls >= cfg.deoptWindow) {
            const double miss_rate =
                static_cast<double>(site.windowMisses) /
                static_cast<double>(site.windowCalls);
            if (miss_rate >= cfg.deoptMissRate) {
                deoptimize(site, "miss-rate");
                return;
            }
            site.windowCalls = site.windowMisses = 0;
        }
    }

    if (site.blacklisted)
        return;

    // Convergent sampling over the argument values, one sampler step
    // per call (the procedure is the entity, as in the paper's
    // parameter profiling).
    if (site.sampler.step()) {
        for (unsigned i = 0; i < site.numArgs; ++i)
            site.args[i].record(args[i]);
    }
    if (!site.sampler.burstJustEnded())
        return;

    double best_inv = 0.0;
    for (const auto &p : site.args)
        best_inv = std::max(best_inv, p.invTop());
    switch (site.sampler.noteBurstEnd(best_inv)) {
      case core::BurstEvent::Converged:
        if (!site.installed && !site.pendingInstall &&
            site.calls >= cfg.minCalls)
            scheduleInstall(site);
        break;
      case core::BurstEvent::Retriggered:
        // Phase change detected by the wake-up burst. If the miss-rate
        // window has not already torn the redirect out, do it now and
        // relearn; an uninstalled site just keeps re-profiling.
        if (site.installed)
            deoptimize(site, "phase-change");
        break;
      case core::BurstEvent::None:
        break;
    }
}

std::string
AdaptiveEngine::report() const
{
    std::string out;
    for (const auto &[entry, s] : siteMap) {
        if (s.calls == 0)
            continue;
        out += vp::format(
            "%-16s calls=%-8llu installs=%llu deopts=%u "
            "guard=%llu/%llu%s%s\n",
            s.procName.c_str(),
            static_cast<unsigned long long>(s.calls),
            static_cast<unsigned long long>(s.installs), s.deopts,
            static_cast<unsigned long long>(s.guardHits),
            static_cast<unsigned long long>(s.guardHits +
                                            s.guardMisses),
            s.installed ? " [installed]" : "",
            s.blacklisted ? " [blacklisted]" : "");
    }
    return out;
}

void
AdaptiveEngine::exportProfiles(core::ProfileSnapshot &snap) const
{
    for (const auto &[entry, s] : siteMap) {
        for (unsigned i = 0; i < s.numArgs; ++i) {
            if (s.args[i].executions() == 0)
                continue;
            snap.entities[entityKey(s.entry, i)] =
                core::ProfileSnapshot::summarize(s.args[i], s.calls);
        }
    }
}

std::size_t
AdaptiveEngine::preseedFrom(const core::ProfileSnapshot &snap)
{
    // Collect bindings per procedure entry from the tagged entities.
    std::map<std::uint32_t, std::vector<specialize::Binding>> seeds;
    for (const auto &[key, summary] : snap.entities) {
        if (!(key >> 63))
            continue;
        const auto entry =
            static_cast<std::uint32_t>((key >> 8) &
                                       0xffffffffull);
        const auto arg = static_cast<unsigned>(key & 0xff);
        if (summary.invTop < cfg.invariance ||
            summary.topValues.empty())
            continue;
        const vpsim::Procedure *proc = nullptr;
        for (const auto &p : prog.procs)
            if (p.entry == entry) {
                proc = &p;
                break;
            }
        if (!proc || arg >= std::min(proc->numArgs,
                                     vpsim::maxArgRegs))
            continue;
        seeds[entry].push_back(
            {static_cast<std::uint8_t>(vpsim::regA0 + arg),
             summary.topValue()});
    }

    std::size_t seeded = 0;
    for (auto &[entry, bindings] : seeds) {
        const vpsim::Procedure *proc = nullptr;
        for (const auto &p : prog.procs)
            if (p.entry == entry) {
                proc = &p;
                break;
            }
        Site &site = siteForProc(*proc);
        if (site.installed || site.pendingInstall || site.blacklisted)
            continue;
        site.bindings = std::move(bindings);
        site.pendingInstall = true;
        anyPending = true;
        ++seeded;
    }
    if (seeded) {
        // Seeding before run(): the request is serviced at the loop
        // top, so the installs land before the first guest
        // instruction.
        cpu.requestPatchPoint();
    }
    return seeded;
}

} // namespace adapt
