/**
 * @file
 * Reproducibility helpers for randomized tests and the vpcheck
 * harness.
 *
 * Every randomized suite in the repository derives its RNG seed
 * through testSeed(), so a single environment variable —
 * VP_TEST_SEED — re-runs any CI failure locally with the exact
 * stream that failed, and every failure message carries the seed to
 * paste into that variable.
 */

#ifndef VP_CHECK_SEED_HPP
#define VP_CHECK_SEED_HPP

#include <cstdint>
#include <string>

namespace vp::check
{

/**
 * The seed a randomized test should use: the VP_TEST_SEED environment
 * variable when it is set (decimal or 0x hex), otherwise `fallback`
 * (the test's own deterministic choice). fatal() on a malformed
 * override, so a typo'd reproduction attempt cannot silently run a
 * different stream.
 */
std::uint64_t testSeed(std::uint64_t fallback);

/**
 * One-line reproduction hint for failure messages, e.g.
 * "re-run with VP_TEST_SEED=42 to reproduce". Tests put this in a
 * SCOPED_TRACE so every assertion failure prints it.
 */
std::string seedMessage(std::uint64_t seed);

/**
 * Derive the generator seed of trial `index` from a base seed
 * (splitmix64 of base+index, so neighbouring trials get uncorrelated
 * generator states). trialSeed(S, i) == trialSeed(S+i, 0): any trial
 * of a multi-trial run replays exactly as `--trials 1 --seed S+i`.
 */
std::uint64_t trialSeed(std::uint64_t base, std::uint64_t index);

} // namespace vp::check

#endif // VP_CHECK_SEED_HPP
