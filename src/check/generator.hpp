/**
 * @file
 * Structure-aware random program generation for differential testing.
 *
 * The generator grows a VPSim assembly program from a single 64-bit
 * seed: a `main` that issues a batch of calls with random arguments,
 * plus a chain of procedures f0..fP-1 whose bodies mix ALU work,
 * bounded counter loops, loads and stores into an initialized data
 * segment, forward conditional branches, and calls to later
 * procedures (no recursion). Every generated program is guaranteed to
 * assemble, validate, and terminate: loops decrement a dedicated
 * counter and exit on any non-positive value, calls only go "down"
 * the procedure chain, and all other control flow is forward.
 *
 * This is the promotion of the one-off generators that used to live
 * in tests/fuzz/fuzz_test.cpp into a reusable library: the fuzz
 * tests, the vpcheck differential harness, and the bench drivers all
 * draw their synthetic programs from here, reproducible from the seed
 * alone.
 */

#ifndef VP_CHECK_GENERATOR_HPP
#define VP_CHECK_GENERATOR_HPP

#include <cstdint>
#include <string>

#include "support/rng.hpp"
#include "vpsim/program.hpp"

namespace vp::check
{

/** Shape parameters for generate(). Defaults exercise everything. */
struct GenConfig
{
    /** Procedures besides main (f0..fP-1); at most 4 so each depth
     *  gets its own callee-saved link register (s2..s5). */
    unsigned minProcs = 1, maxProcs = 3;
    /** Basic blocks per procedure. */
    unsigned minBlocks = 2, maxBlocks = 6;
    /** Straight-line instructions per block. */
    unsigned minInstsPerBlock = 2, maxInstsPerBlock = 6;
    /** Calls issued by main. */
    unsigned calls = 24;
    /** 64-bit words in the initialized data segment. */
    unsigned dataWords = 16;
    /** Chance a block's instruction run becomes a bounded loop. */
    double loopChance = 0.35;
    /** Iterations of a bounded loop (uniform in [1, maxLoopTrip]). */
    unsigned maxLoopTrip = 5;
    /** Chance an instruction slot becomes a load or store. */
    double memChance = 0.25;
    /** Chance a block (in a non-last procedure) calls a later proc. */
    double callChance = 0.3;
    /**
     * Value the specializer fuzz binds for a1, and the fraction of
     * main's calls that actually pass it — so guarded specialization
     * of f0 on {a1 = bindValue} sees both matching and missing calls.
     */
    long long bindValue = 7;
    double bindChance = 0.5;
    /**
     * Phases the bound value moves through across main's call
     * sequence: phase p (0-based) binds bindValue + 1001*p, switching
     * every calls/bindPhases calls. 1 (the default) keeps the classic
     * single invariant value; >1 produces the phase-shifting programs
     * the adaptive checker uses to force deopt + re-specialization.
     */
    unsigned bindPhases = 1;

    /** The old specializer-fuzz envelope: one straight-line procedure,
     *  no loops, no memory traffic. */
    static GenConfig straightLine();
};

/** A generated program with its provenance. */
struct Generated
{
    std::uint64_t seed = 0;
    std::string source;      ///< assembly text (reassembles to program)
    vpsim::Program program;  ///< assembled and validated
};

/** Generate the program for `seed`. Identical (seed, cfg) pairs yield
 *  byte-identical source on every platform. panic()s if the generated
 *  source fails to assemble — that is a generator bug by contract. */
Generated generate(std::uint64_t seed, const GenConfig &cfg = {});

/** The assembly text only (used by shrinking and golden tests). */
std::string generateSource(std::uint64_t seed, const GenConfig &cfg = {});

/**
 * A random *decoded* program (raw Inst list, no assembler): arbitrary
 * opcodes with in-range operands and branch targets. Not guaranteed
 * to terminate or behave — callers pair it with an instruction budget
 * to check the Cpu halts gracefully on anything structurally valid.
 */
vpsim::Program randomRawProgram(vp::Rng &rng, std::size_t min_insts = 4,
                                std::size_t max_insts = 64);

/** Apply `edits` random single-character mutations (overwrite, erase,
 *  insert) to assembly source — assembler robustness fuzzing. */
std::string mutateSource(vp::Rng &rng, std::string source,
                         unsigned edits);

/** Uniformly random bytes of length < max_len (assembler garbage). */
std::string garbageSource(vp::Rng &rng, std::size_t max_len);

} // namespace vp::check

#endif // VP_CHECK_GENERATOR_HPP
