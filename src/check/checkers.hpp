/**
 * @file
 * Differential checkers: each one profiles a program two ways and
 * verifies that the lossy, fast path stays inside the documented
 * envelope of the exhaustive reference oracle (see DESIGN.md,
 * "Differential testing & replay", for the exact bounds).
 *
 *  - FullVsOracle      full TNV profiling vs the exact histogram:
 *                      TNV counts never exceed truth, LVP/%Zero/Diff
 *                      are exact, and an un-evicted pure-LFU table
 *                      *equals* the histogram.
 *  - ShardMerge        K independent shards merged vs one sequential
 *                      profile of the concatenated stream, serially
 *                      and on a thread pool (results must be
 *                      byte-identical); merge tolerance per DESIGN.md
 *                      "Shard-and-merge semantics".
 *  - SampledVsFull     convergent sampling vs full profiling: totals
 *                      exact, sampled observations a sub-stream of
 *                      the truth, invariant entities stay invariant.
 *  - SnapshotRoundTrip save -> load -> save is a byte-level fixed
 *                      point, and truncated input is rejected
 *                      gracefully.
 *  - ServeLoopback     K shard snapshots streamed as wire deltas by K
 *                      concurrent emitters through a live vpd daemon
 *                      vs the same snapshots folded serially: the
 *                      served aggregate must be byte-identical (the
 *                      streaming service's determinism contract, see
 *                      serve/server.hpp).
 *  - Adapt             the same program run plain and under the online
 *                      adaptive specialization engine (src/adapt),
 *                      tuned so tiny generated programs still install,
 *                      deopt and re-specialize: stop reason, exit code
 *                      and all guest output must be identical —
 *                      specialization is architecturally transparent
 *                      (dynamic instruction counts legitimately
 *                      differ; that is the point).
 *
 * Checkers return structured failures instead of asserting so the
 * vpcheck harness can shrink the offending program and emit a replay
 * bundle.
 */

#ifndef VP_CHECK_CHECKERS_HPP
#define VP_CHECK_CHECKERS_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "adapt/engine.hpp"
#include "core/instruction_profiler.hpp"
#include "vpsim/cpu.hpp"
#include "vpsim/program.hpp"

namespace vp::check
{

/** Outcome of one checker on one program. */
struct CheckResult
{
    bool ok = true;
    std::string detail;  ///< first divergence, human-readable

    static CheckResult pass() { return {}; }
    static CheckResult
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/** Knobs shared by the checkers. */
struct CheckOptions
{
    /** Table config for the paper-default (lossy) profiler leg. */
    core::TnvConfig tnv;
    /** Capacity of the pure-LFU exactness leg: entities with at most
     *  this many distinct values must be profiled *exactly*. */
    unsigned exactCapacity = 64;
    /** Shards for the merge checker. */
    unsigned shards = 3;
    /** Worker threads for the parallel-merge leg. */
    unsigned mergeJobs = 3;
    core::SamplerConfig sampler;
    /**
     * Statistical bound for SampledVsFull: execution-weighted mean
     * |invTop(sampled) - invTop(full)| over entities with at least
     * sampledMinExecs executions. Loose by design — the sound
     * per-entity bounds do the heavy lifting.
     */
    double sampledInvTolerance = 0.35;
    std::uint64_t sampledMinExecs = 1024;
    vpsim::CpuConfig cpu{1u << 20, 16'000'000};
    /**
     * Engine knobs for the `adapt` checker, scaled down so the few
     * hundred calls a generated program makes are enough to converge,
     * install, trip the miss-rate window, and re-specialize — the
     * production defaults would never fire inside one trial.
     */
    adapt::AdaptConfig adapt = smallAdaptConfig();

    /** The scaled-down adaptive envelope used as the default above. */
    static adapt::AdaptConfig smallAdaptConfig();
};

/** The six differential checkers, in canonical order. */
enum class Checker
{
    FullVsOracle,
    ShardMerge,
    SampledVsFull,
    SnapshotRoundTrip,
    ServeLoopback,
    Adapt,
};

/** Short CLI name: "oracle", "merge", "sampled", "snapshot",
 *  "serve", "adapt". */
const char *checkerName(Checker c);

/** Parse a CLI name; returns false on unknown names. */
bool parseCheckerName(const std::string &name, Checker &out);

/** All checkers in canonical order. */
const std::vector<Checker> &allCheckers();

CheckResult checkFullVsOracle(const vpsim::Program &prog,
                              const CheckOptions &opts = {});
CheckResult checkShardMerge(const vpsim::Program &prog,
                            const CheckOptions &opts = {});
CheckResult checkSampledVsFull(const vpsim::Program &prog,
                               const CheckOptions &opts = {});
CheckResult checkSnapshotRoundTrip(const vpsim::Program &prog,
                                   const CheckOptions &opts = {});
CheckResult checkServeLoopback(const vpsim::Program &prog,
                               const CheckOptions &opts = {});
CheckResult checkAdaptive(const vpsim::Program &prog,
                          const CheckOptions &opts = {});

/** Dispatch by enum. */
CheckResult runChecker(Checker c, const vpsim::Program &prog,
                       const CheckOptions &opts = {});

} // namespace vp::check

#endif // VP_CHECK_CHECKERS_HPP
