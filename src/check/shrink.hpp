/**
 * @file
 * Greedy test-case reduction for failing generated programs.
 *
 * A classic ddmin-style loop over source lines: try deleting chunks of
 * decreasing size, keep any deletion after which the program still
 * fails the checker, and stop when no single line can be removed (or
 * the attempt budget runs out). The predicate owns all the semantics —
 * typically "still assembles AND the checker still reports a
 * divergence" — so the shrinker itself never needs to understand
 * assembly.
 */

#ifndef VP_CHECK_SHRINK_HPP
#define VP_CHECK_SHRINK_HPP

#include <cstddef>
#include <functional>
#include <string>

namespace vp::check
{

/**
 * Decides whether a candidate source still exhibits the failure being
 * minimized. Must return false for candidates that no longer assemble.
 */
using ShrinkPredicate = std::function<bool(const std::string &source)>;

/** Outcome of a shrink run. */
struct ShrinkResult
{
    std::string source;        ///< smallest still-failing source
    std::size_t attempts = 0;  ///< predicate evaluations spent
    std::size_t originalLines = 0;
    std::size_t finalLines = 0;

    bool
    shrank() const
    {
        return finalLines < originalLines;
    }
};

/**
 * Minimize `source` under `still_fails`, which must hold for `source`
 * itself (callers should have observed the failure already). Spends at
 * most `max_attempts` predicate evaluations; the result is always a
 * source for which the predicate held, even when the budget runs out.
 */
ShrinkResult shrinkSource(const std::string &source,
                          const ShrinkPredicate &still_fails,
                          std::size_t max_attempts = 2000);

} // namespace vp::check

#endif // VP_CHECK_SHRINK_HPP
