/**
 * @file
 * The reference oracle for differential testing.
 *
 * A deliberately naive value profiler: one exhaustive
 * unordered_map<value, count> per profiled entity, no TNV eviction,
 * no bottom-half clearing, no sampling. Memory is unbounded and the
 * hot path is slow — which is exactly the point: its metrics are
 * ground truth, so every lossy mechanism in the real engine (LFU
 * eviction, clear intervals, shard merging, convergent sampling) can
 * be bounded against it. The bench TNV-ablation table measures
 * estimation error against the same oracle.
 */

#ifndef VP_CHECK_ORACLE_HPP
#define VP_CHECK_ORACLE_HPP

#include <cstdint>
#include <unordered_map>

#include "instrument/manager.hpp"

namespace vp::check
{

/** Exact value statistics of one profiled entity. */
struct OracleEntity
{
    /** Exhaustive histogram: every value, every occurrence. */
    std::unordered_map<std::uint64_t, std::uint64_t> counts;
    std::uint64_t total = 0;
    std::uint64_t zeros = 0;
    std::uint64_t lastHits = 0;  ///< exact LVP hit count
    std::uint64_t lastValue = 0;
    bool hasLast = false;

    void record(std::uint64_t value);

    /** Occurrences of `value` (0 if never seen). */
    std::uint64_t countFor(std::uint64_t value) const;

    /** Count of the most frequent value (0 when empty). */
    std::uint64_t topCount() const;

    /** The exact most frequent value (smallest value wins ties, so
     *  the answer is deterministic across platforms). */
    std::uint64_t topValue() const;

    /** Exact number of distinct values. */
    std::uint64_t distinct() const { return counts.size(); }

    /** Exact Inv-Top in [0,1]; 0 when nothing was recorded. */
    double invTop() const;
    /** Exact LVP in [0,1]. */
    double lvp() const;
    /** Exact fraction of zero values. */
    double zeroFraction() const;
};

/** Oracle over static instructions, keyed by pc. Instrument it on the
 *  same pcs as the profiler under test and compare after the run. */
class OracleProfiler : public instr::Tool
{
  public:
    void
    onInstValue(std::uint32_t pc, const vpsim::Inst &,
                std::uint64_t value) override
    {
        stats[pc].record(value);
    }

    /** Entity for a pc, or nullptr if it never executed. */
    const OracleEntity *entityFor(std::uint32_t pc) const;

    const std::unordered_map<std::uint32_t, OracleEntity> &
    all() const
    {
        return stats;
    }

  private:
    std::unordered_map<std::uint32_t, OracleEntity> stats;
};

} // namespace vp::check

#endif // VP_CHECK_ORACLE_HPP
