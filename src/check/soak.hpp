/**
 * @file
 * The hostile-world soak harness behind `vpcheck --checker soak`: a
 * scenario driver that spawns a real 2–3 level vpd aggregation tree
 * (separate `vpd` processes forwarding over unix sockets) plus a
 * fleet of emitter child processes, injects faults from a seeded
 * schedule — producers SIGKILLed mid-batch and respawned, corrupt and
 * truncated frames spliced into daemon sockets, leaf/mid daemons
 * SIGTERMed and restored from their persisted state files, wire v1
 * and v2 emitters mixed — and then asserts the surviving root
 * aggregate is byte-identical to a serial oracle merge of every
 * producer's deltas.
 *
 * Everything is deterministic from the seed: producer content comes
 * from the seeded program generator (soakProducerDeltas), and the
 * fault schedule from buildSoakSchedule. Fault *timing* interacts
 * with real process scheduling, so which faults actually land varies
 * — but the final root aggregate cannot: the harness drives every
 * producer incarnation to full acknowledgement before comparing, and
 * the replace-relay keeps the root fold equal to the serial merge no
 * matter how deliveries interleaved (serve/server.hpp, "Determinism
 * contract"). Same seed, same root bytes, every run.
 */

#ifndef VP_CHECK_SOAK_HPP
#define VP_CHECK_SOAK_HPP

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.hpp"

namespace vp::check
{

/** Soak scenario shape. Defaults are CI-sized; the acceptance run
 *  uses >= 16 producers with every fault class on. */
struct SoakConfig
{
    std::uint64_t seed = 1;
    /** Tree depth: 2 = producers -> leaves -> root, 3 inserts a mid
     *  tier between the leaves and the root. */
    unsigned levels = 2;
    unsigned producers = 8;
    unsigned leaves = 2;
    /** Mid-tier daemons (levels == 3 only). */
    unsigned mids = 1;
    unsigned deltasPerProducer = 4;
    /** Fault-schedule length. */
    unsigned faultEvents = 8;
    bool killProducers = true;
    bool corruptFrames = true;
    bool killDaemons = true;
    /** Odd-indexed producers speak wire v1, the rest v2. */
    bool mixedVersions = true;
    /** Mean gap between schedule events (the schedule draws each gap
     *  from [gap/2, gap*3/2)). */
    unsigned eventGapMs = 60;
    /** Producers sleep this long between deltas so kills can land
     *  mid-stream. */
    unsigned producerDwellMs = 30;
    /** Root-vs-oracle convergence budget after quiesce. */
    unsigned convergeTimeoutMs = 30000;
    std::string vpdPath;     ///< vpd binary to exec
    std::string vpcheckPath; ///< self, for --soak-producer children
    /** Scratch directory ("" = mkdtemp under TMPDIR). Kept on
     *  failure, or always with keepArtifacts. */
    std::string workDir;
    bool keepArtifacts = false;
    bool verbose = false;
};

/** One scheduled fault. */
struct SoakEvent
{
    enum class Kind
    {
        KillProducer, ///< SIGKILL producer `target` (respawned)
        KillDaemon,   ///< SIGTERM non-root daemon `target` (restored)
        CorruptFrame, ///< splice garbage into daemon `target`'s socket
    };
    Kind kind = Kind::KillProducer;
    unsigned target = 0;  ///< producer index or daemon index
    unsigned afterMs = 0; ///< delay after the previous event
};

/** The full seeded fault schedule. */
struct SoakSchedule
{
    std::vector<SoakEvent> events;
    /** One line per event, stable across runs of the same seed — the
     *  determinism test compares this text. */
    std::string text() const;
};

/** Derive the fault schedule from the config, deterministically. */
SoakSchedule buildSoakSchedule(const SoakConfig &cfg);

/** Soak outcome. */
struct SoakResult
{
    bool ok = false;
    std::string detail;       ///< first failure, human-readable
    std::string scheduleText; ///< the schedule that ran
    std::string rootText;     ///< final root aggregate (snapshot text)
    std::string workDir;      ///< scratch dir (kept on failure)
    unsigned producerRestarts = 0;
    unsigned daemonRestarts = 0;
    unsigned corruptInjected = 0;
};

/** Run one soak scenario end to end. */
SoakResult runSoak(const SoakConfig &cfg);

/**
 * Producer `index`'s delta stream, derived purely from (seed, index):
 * deltasPerProducer seeded generator programs — bindValue shifts
 * every second delta, so the value distribution phase-changes
 * mid-stream — each profiled in full mode and snapshotted. seq is
 * stamped 1-based. A respawned producer regenerates the identical
 * stream, which is what makes kill-anywhere safe: the daemon
 * deduplicates the prefix it already applied.
 */
std::vector<serve::Delta> soakProducerDeltas(std::uint64_t seed,
                                             unsigned index,
                                             unsigned count);

/** Options for the hidden `vpcheck --soak-producer` child mode. */
struct SoakProducerOptions
{
    std::uint64_t seed = 1;
    unsigned index = 0;
    unsigned count = 4;
    std::string addr;      ///< leaf daemon to emit to
    std::string spillPath; ///< spill file (replayed+unlinked on start)
    std::uint16_t wireVersion = serve::kWireVersion;
    unsigned dwellMs = 30;
    unsigned maxRetries = 4;
};

/**
 * The child-process body: replay any spill left by a previous
 * incarnation, then emit the full deterministic delta stream.
 * @return the process exit code — 0 when every delta was
 * acknowledged, 3 when any spilled (the driver respawns until 0).
 */
int runSoakProducer(const SoakProducerOptions &opt);

} // namespace vp::check

#endif // VP_CHECK_SOAK_HPP
