#include "check/checkers.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <sstream>
#include <sys/socket.h>
#include <thread>

#include "check/oracle.hpp"
#include "core/snapshot.hpp"
#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "support/logging.hpp"
#include "support/socket.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace vp::check
{

namespace
{

/** The pcs every checker instruments: all register writers, the same
 *  set InstructionProfiler::profileAllWrites uses. */
std::vector<std::uint32_t>
profiledPcs(const instr::Image &img)
{
    return img.regWritingInsts();
}

vpsim::RunResult
runProgram(const vpsim::Program &prog, instr::InstrumentManager &mgr,
           const vpsim::CpuConfig &cfg)
{
    vpsim::Cpu cpu(prog, cfg);
    mgr.attach(cpu);
    return cpu.run();
}

core::InstProfilerConfig
fullConfig(const core::TnvConfig &tnv)
{
    core::InstProfilerConfig cfg;
    cfg.mode = core::ProfileMode::Full;
    cfg.profile.tnv = tnv;
    return cfg;
}

core::TnvConfig
pureLfuConfig(unsigned capacity)
{
    core::TnvConfig tnv;
    tnv.policy = core::TnvConfig::Policy::PureLfu;
    tnv.capacity = capacity;
    return tnv;
}

/**
 * One profiling shard: its own image, manager, profiler, and run —
 * exactly the isolation contract of workloads::ParallelRunner, so
 * shards can execute on any thread.
 */
struct ShardRun
{
    instr::Image image;
    instr::InstrumentManager mgr;
    core::InstructionProfiler prof;
    vpsim::RunResult result;

    ShardRun(const vpsim::Program &prog,
             const core::InstProfilerConfig &cfg,
             const std::vector<std::uint32_t> &pcs,
             const vpsim::CpuConfig &ccfg)
        : image(prog), mgr(image), prof(image, cfg)
    {
        prof.profileInsts(mgr, pcs);
        result = runProgram(prog, mgr, ccfg);
    }
};

std::string
snapshotText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

} // namespace

adapt::AdaptConfig
CheckOptions::smallAdaptConfig()
{
    adapt::AdaptConfig cfg;
    // A generated main issues a few dozen to a few hundred calls per
    // procedure; size the sampler and windows so convergence, install,
    // miss-rate deopt and retrigger can all happen inside one trial.
    cfg.invariance = 0.55;
    cfg.minCalls = 8;
    cfg.deoptWindow = 8;
    cfg.deoptMissRate = 0.5;
    cfg.blacklistAfter = 3;
    cfg.sampler.burstSize = 6;
    cfg.sampler.initialSkip = 2;
    cfg.sampler.convergeRounds = 2;
    cfg.sampler.maxSkip = 32;
    cfg.sampler.retriggerDelta = 0.05;
    return cfg;
}

const char *
checkerName(Checker c)
{
    switch (c) {
      case Checker::FullVsOracle: return "oracle";
      case Checker::ShardMerge: return "merge";
      case Checker::SampledVsFull: return "sampled";
      case Checker::SnapshotRoundTrip: return "snapshot";
      case Checker::ServeLoopback: return "serve";
      case Checker::Adapt: return "adapt";
    }
    return "?";
}

bool
parseCheckerName(const std::string &name, Checker &out)
{
    for (const Checker c : allCheckers()) {
        if (name == checkerName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

const std::vector<Checker> &
allCheckers()
{
    static const std::vector<Checker> all = {
        Checker::FullVsOracle,
        Checker::ShardMerge,
        Checker::SampledVsFull,
        Checker::SnapshotRoundTrip,
        Checker::ServeLoopback,
        Checker::Adapt,
    };
    return all;
}

CheckResult
checkFullVsOracle(const vpsim::Program &prog, const CheckOptions &opts)
{
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    const auto pcs = profiledPcs(img);

    // One run, three observers of the identical value stream: the
    // paper-default lossy table, an un-evictable pure-LFU table, and
    // the exhaustive oracle.
    core::InstructionProfiler lossy(img, fullConfig(opts.tnv));
    lossy.profileInsts(mgr, pcs);
    core::InstructionProfiler exact(
        img, fullConfig(pureLfuConfig(opts.exactCapacity)));
    exact.profileInsts(mgr, pcs);
    OracleProfiler oracle;
    mgr.instrumentInsts(pcs, &oracle);

    runProgram(prog, mgr, opts.cpu);

    for (const auto pc : pcs) {
        const auto *truth = oracle.entityFor(pc);
        const auto *rec = lossy.recordFor(pc);
        vp_assert(rec, "instrumented pc %u has no record", pc);
        const std::uint64_t truth_total = truth ? truth->total : 0;
        if (rec->profile.executions() != truth_total)
            return CheckResult::fail(vp::format(
                "pc %u: full profile recorded %llu executions, oracle "
                "saw %llu",
                pc,
                static_cast<unsigned long long>(
                    rec->profile.executions()),
                static_cast<unsigned long long>(truth_total)));
        if (!truth)
            continue;

        // Exact side counters are oblivious to TNV eviction.
        if (rec->profile.zeroCount() != truth->zeros)
            return CheckResult::fail(vp::format(
                "pc %u: zero count %llu != oracle %llu", pc,
                static_cast<unsigned long long>(
                    rec->profile.zeroCount()),
                static_cast<unsigned long long>(truth->zeros)));
        if (rec->profile.lvpHits() != truth->lastHits)
            return CheckResult::fail(vp::format(
                "pc %u: LVP hits %llu != oracle %llu", pc,
                static_cast<unsigned long long>(
                    rec->profile.lvpHits()),
                static_cast<unsigned long long>(truth->lastHits)));
        if (!rec->profile.distinctSaturated() &&
            rec->profile.distinct() != truth->distinct())
            return CheckResult::fail(vp::format(
                "pc %u: distinct %llu != oracle %llu", pc,
                static_cast<unsigned long long>(
                    rec->profile.distinct()),
                static_cast<unsigned long long>(truth->distinct())));

        // The TNV table may forget counts (eviction, clearing) but
        // can never invent them: every entry's count is bounded by
        // the true frequency of that value, and coverage by totals.
        std::uint64_t covered = 0;
        for (const auto &e : rec->profile.tnv().raw()) {
            const std::uint64_t exact_count = truth->countFor(e.value);
            if (e.count > exact_count)
                return CheckResult::fail(vp::format(
                    "pc %u: TNV credits value %llu with %llu "
                    "occurrences but the oracle counted %llu",
                    pc, static_cast<unsigned long long>(e.value),
                    static_cast<unsigned long long>(e.count),
                    static_cast<unsigned long long>(exact_count)));
            covered += e.count;
        }
        if (covered > truth->total)
            return CheckResult::fail(vp::format(
                "pc %u: TNV covers %llu of %llu executions", pc,
                static_cast<unsigned long long>(covered),
                static_cast<unsigned long long>(truth->total)));

        // Pure LFU with spare capacity is lossless: the table must
        // *be* the histogram, value for value, count for count.
        const auto *erec = exact.recordFor(pc);
        vp_assert(erec, "exact-leg pc %u has no record", pc);
        if (truth->distinct() <= opts.exactCapacity) {
            if (erec->profile.tnv().size() != truth->distinct())
                return CheckResult::fail(vp::format(
                    "pc %u: un-evicted pure-LFU table holds %zu "
                    "values, oracle saw %llu distinct",
                    pc, erec->profile.tnv().size(),
                    static_cast<unsigned long long>(
                        truth->distinct())));
            for (const auto &[value, count] : truth->counts) {
                if (erec->profile.tnv().countFor(value) != count)
                    return CheckResult::fail(vp::format(
                        "pc %u: un-evicted pure-LFU count for value "
                        "%llu is %llu, oracle counted %llu",
                        pc, static_cast<unsigned long long>(value),
                        static_cast<unsigned long long>(
                            erec->profile.tnv().countFor(value)),
                        static_cast<unsigned long long>(count)));
            }
        }
    }
    return CheckResult::pass();
}

CheckResult
checkShardMerge(const vpsim::Program &prog, const CheckOptions &opts)
{
    vp_assert(opts.shards >= 2, "merge checking needs >= 2 shards");
    instr::Image img(prog);
    const auto pcs = profiledPcs(img);
    const unsigned K = opts.shards;

    const core::InstProfilerConfig lossy_cfg = fullConfig(opts.tnv);
    const core::InstProfilerConfig exact_cfg =
        fullConfig(pureLfuConfig(opts.exactCapacity));

    // --- serial shards -----------------------------------------------
    std::vector<std::unique_ptr<ShardRun>> serial;
    for (unsigned k = 0; k < K; ++k)
        serial.push_back(std::make_unique<ShardRun>(prog, lossy_cfg,
                                                    pcs, opts.cpu));

    // --- the same shards, fanned out over a worker pool --------------
    std::vector<std::unique_ptr<ShardRun>> parallel(K);
    {
        vp::ThreadPool pool(opts.mergeJobs);
        for (unsigned k = 0; k < K; ++k) {
            pool.submit([&, k] {
                parallel[k] = std::make_unique<ShardRun>(
                    prog, lossy_cfg, pcs, opts.cpu);
            });
        }
        pool.wait();
    }

    // Merged snapshots must be byte-identical no matter where the
    // shards ran — the determinism contract of the parallel engine.
    auto foldSnapshots =
        [](const std::vector<std::unique_ptr<ShardRun>> &shards) {
            core::ProfileSnapshot merged;
            for (const auto &s : shards)
                merged.merge(
                    core::ProfileSnapshot::fromInstructionProfiler(
                        s->prof));
            return merged;
        };
    const std::string serial_text = snapshotText(foldSnapshots(serial));
    const std::string parallel_text =
        snapshotText(foldSnapshots(parallel));
    if (serial_text != parallel_text)
        return CheckResult::fail(
            "merged snapshot differs between serial and thread-pool "
            "shard execution");

    // --- sequential reference: one profiler over K concatenated runs,
    // and an oracle over a single run (sequential truth = K * oracle).
    auto sequentialRun = [&](const core::InstProfilerConfig &cfg) {
        auto run = std::make_unique<ShardRun>(prog, cfg, pcs, opts.cpu);
        for (unsigned k = 1; k < K; ++k)
            runProgram(prog, run->mgr, opts.cpu);
        return run;
    };
    const auto seq_lossy = sequentialRun(lossy_cfg);
    const auto seq_exact = sequentialRun(exact_cfg);

    instr::Image oracle_img(prog);
    instr::InstrumentManager oracle_mgr(oracle_img);
    OracleProfiler oracle;
    oracle_mgr.instrumentInsts(pcs, &oracle);
    runProgram(prog, oracle_mgr, opts.cpu);

    // --- exact-leg shards for the lossless-merge regime --------------
    std::vector<std::unique_ptr<ShardRun>> exact_shards;
    for (unsigned k = 0; k < K; ++k)
        exact_shards.push_back(std::make_unique<ShardRun>(
            prog, exact_cfg, pcs, opts.cpu));

    for (const auto pc : pcs) {
        const auto *seq = seq_lossy->prof.recordFor(pc);
        vp_assert(seq, "sequential pc %u has no record", pc);

        // Fold the K shard profiles with ValueProfile::merge — the
        // production shard-aggregation path.
        core::ValueProfile merged =
            serial[0]->prof.recordFor(pc)->profile;
        for (unsigned k = 1; k < K; ++k)
            merged.merge(serial[k]->prof.recordFor(pc)->profile);

        // Exactly-summed counters (DESIGN.md tolerance items).
        if (merged.executions() != seq->profile.executions())
            return CheckResult::fail(vp::format(
                "pc %u: merged executions %llu != sequential %llu", pc,
                static_cast<unsigned long long>(merged.executions()),
                static_cast<unsigned long long>(
                    seq->profile.executions())));
        if (merged.zeroCount() != seq->profile.zeroCount())
            return CheckResult::fail(vp::format(
                "pc %u: merged zero count %llu != sequential %llu", pc,
                static_cast<unsigned long long>(merged.zeroCount()),
                static_cast<unsigned long long>(
                    seq->profile.zeroCount())));
        if (!merged.distinctSaturated() &&
            merged.distinct() != seq->profile.distinct())
            return CheckResult::fail(vp::format(
                "pc %u: merged distinct %llu != sequential %llu", pc,
                static_cast<unsigned long long>(merged.distinct()),
                static_cast<unsigned long long>(
                    seq->profile.distinct())));

        // LVP loses at most one hit per shard boundary, never gains.
        if (merged.lvpHits() > seq->profile.lvpHits() ||
            seq->profile.lvpHits() - merged.lvpHits() > K - 1)
            return CheckResult::fail(vp::format(
                "pc %u: merged LVP hits %llu vs sequential %llu "
                "violates the (K-1)=%u boundary-loss bound",
                pc, static_cast<unsigned long long>(merged.lvpHits()),
                static_cast<unsigned long long>(
                    seq->profile.lvpHits()),
                K - 1));

        // Merged TNV counts are bounded by K times the single-run
        // truth (the sequential stream is the run repeated K times).
        const auto *truth = oracle.entityFor(pc);
        for (const auto &e : merged.tnv().raw()) {
            const std::uint64_t exact_count =
                truth ? truth->countFor(e.value) * K : 0;
            if (e.count > exact_count)
                return CheckResult::fail(vp::format(
                    "pc %u: merged TNV credits value %llu with %llu "
                    "occurrences, exact concatenated count is %llu",
                    pc, static_cast<unsigned long long>(e.value),
                    static_cast<unsigned long long>(e.count),
                    static_cast<unsigned long long>(exact_count)));
        }

        // Lossless regime: when no pure-LFU table ever evicted, the
        // merge must equal the sequential table value-for-value —
        // this is the leg that catches a mis-summing TnvTable::merge.
        if (truth && truth->distinct() <= opts.exactCapacity) {
            core::ValueProfile emerged =
                exact_shards[0]->prof.recordFor(pc)->profile;
            for (unsigned k = 1; k < K; ++k)
                emerged.merge(
                    exact_shards[k]->prof.recordFor(pc)->profile);
            const auto *eseq = seq_exact->prof.recordFor(pc);
            for (const auto &[value, count] : truth->counts) {
                const std::uint64_t merged_count =
                    emerged.tnv().countFor(value);
                const std::uint64_t seq_count =
                    eseq->profile.tnv().countFor(value);
                if (merged_count != seq_count ||
                    merged_count != count * K)
                    return CheckResult::fail(vp::format(
                        "pc %u: lossless merge diverges for value "
                        "%llu: merged %llu, sequential %llu, exact "
                        "%llu",
                        pc, static_cast<unsigned long long>(value),
                        static_cast<unsigned long long>(merged_count),
                        static_cast<unsigned long long>(seq_count),
                        static_cast<unsigned long long>(count * K)));
            }
        }
    }
    return CheckResult::pass();
}

CheckResult
checkSampledVsFull(const vpsim::Program &prog, const CheckOptions &opts)
{
    instr::Image img(prog);
    const auto pcs = profiledPcs(img);

    // Full + oracle observe one run; the sampled profiler observes an
    // identical second run (profiling never perturbs execution).
    instr::InstrumentManager full_mgr(img);
    core::InstructionProfiler full(img, fullConfig(opts.tnv));
    full.profileInsts(full_mgr, pcs);
    OracleProfiler oracle;
    full_mgr.instrumentInsts(pcs, &oracle);
    runProgram(prog, full_mgr, opts.cpu);

    instr::Image simg(prog);
    instr::InstrumentManager sampled_mgr(simg);
    core::InstProfilerConfig scfg = fullConfig(opts.tnv);
    scfg.mode = core::ProfileMode::Sampled;
    scfg.sampler = opts.sampler;
    core::InstructionProfiler sampled(simg, scfg);
    sampled.profileInsts(sampled_mgr, pcs);
    runProgram(prog, sampled_mgr, opts.cpu);

    double err_num = 0.0, err_den = 0.0;
    for (const auto pc : pcs) {
        const auto *frec = full.recordFor(pc);
        const auto *srec = sampled.recordFor(pc);
        vp_assert(frec && srec, "instrumented pc %u lost a record", pc);

        // The cheap total check counts every execution, sampled or
        // not — totals must match full profiling exactly.
        if (srec->totalExecutions != frec->totalExecutions)
            return CheckResult::fail(vp::format(
                "pc %u: sampled-mode total %llu != full-mode total "
                "%llu",
                pc,
                static_cast<unsigned long long>(srec->totalExecutions),
                static_cast<unsigned long long>(
                    frec->totalExecutions)));
        const std::uint64_t profiled = srec->profile.executions();
        if (profiled > srec->totalExecutions)
            return CheckResult::fail(vp::format(
                "pc %u: sampled %llu of %llu executions", pc,
                static_cast<unsigned long long>(profiled),
                static_cast<unsigned long long>(
                    srec->totalExecutions)));
        // The sampler opens in a burst: the first min(total, burst)
        // executions are always profiled.
        const std::uint64_t floor = std::min<std::uint64_t>(
            srec->totalExecutions, opts.sampler.burstSize);
        if (profiled < floor)
            return CheckResult::fail(vp::format(
                "pc %u: sampled only %llu executions, below the "
                "opening-burst floor %llu",
                pc, static_cast<unsigned long long>(profiled),
                static_cast<unsigned long long>(floor)));

        const auto *truth = oracle.entityFor(pc);
        if (!truth)
            continue;

        // Sampled observations are a sub-stream of the truth.
        if (srec->profile.distinct() > truth->distinct())
            return CheckResult::fail(vp::format(
                "pc %u: sampling saw %llu distinct values, the full "
                "stream only has %llu",
                pc,
                static_cast<unsigned long long>(
                    srec->profile.distinct()),
                static_cast<unsigned long long>(truth->distinct())));
        if (srec->profile.zeroCount() > truth->zeros)
            return CheckResult::fail(vp::format(
                "pc %u: sampling counted %llu zeros, the full stream "
                "only has %llu",
                pc,
                static_cast<unsigned long long>(
                    srec->profile.zeroCount()),
                static_cast<unsigned long long>(truth->zeros)));
        for (const auto &e : srec->profile.tnv().raw()) {
            if (e.count > truth->countFor(e.value))
                return CheckResult::fail(vp::format(
                    "pc %u: sampled TNV credits value %llu with %llu "
                    "occurrences, oracle counted %llu",
                    pc, static_cast<unsigned long long>(e.value),
                    static_cast<unsigned long long>(e.count),
                    static_cast<unsigned long long>(
                        truth->countFor(e.value))));
        }

        // An invariant entity stays invariant under any subsampling.
        if (truth->distinct() == 1 && profiled > 0 &&
            (srec->profile.tnv().size() != 1 ||
             srec->profile.invTop() != 1.0))
            return CheckResult::fail(vp::format(
                "pc %u: invariant entity (single value) sampled to "
                "invTop %.6f",
                pc, srec->profile.invTop()));

        // Statistical envelope over well-executed entities.
        if (srec->totalExecutions >= opts.sampledMinExecs) {
            const auto w =
                static_cast<double>(srec->totalExecutions);
            err_num += w * std::fabs(srec->profile.invTop() -
                                     frec->profile.invTop());
            err_den += w;
        }
    }
    if (err_den > 0.0 && err_num / err_den > opts.sampledInvTolerance)
        return CheckResult::fail(vp::format(
            "execution-weighted |invTop(sampled) - invTop(full)| = "
            "%.4f exceeds the %.4f tolerance",
            err_num / err_den, opts.sampledInvTolerance));
    return CheckResult::pass();
}

CheckResult
checkSnapshotRoundTrip(const vpsim::Program &prog,
                       const CheckOptions &opts)
{
    instr::Image img(prog);
    instr::InstrumentManager mgr(img);
    core::InstructionProfiler prof(img, fullConfig(opts.tnv));
    prof.profileInsts(mgr, profiledPcs(img));
    runProgram(prog, mgr, opts.cpu);

    const auto snap = core::ProfileSnapshot::fromInstructionProfiler(prof);

    // Both on-disk encodings must hold the fixed point: v1 (text) and
    // v2 (compressed binary). A reload must re-save in the version it
    // was checked in, so the version-pinned text helper is local.
    const auto textV = [](const core::ProfileSnapshot &s, int version) {
        std::ostringstream os;
        s.save(os, version);
        return os.str();
    };
    for (int version = core::ProfileSnapshot::kMinFormatVersion;
         version <= core::ProfileSnapshot::kFormatVersion; ++version) {
        const std::string first = textV(snap, version);

        std::istringstream in1(first);
        core::ProfileSnapshot loaded;
        std::string err;
        if (!core::ProfileSnapshot::tryLoad(in1, loaded, err))
            return CheckResult::fail(vp::format(
                "v%d snapshot failed to load its own save output: %s",
                version, err.c_str()));
        if (loaded.size() != snap.size())
            return CheckResult::fail(vp::format(
                "loaded v%d snapshot has %zu entities, saved %zu",
                version, loaded.size(), snap.size()));
        const std::string second = textV(loaded, version);
        if (second != first)
            return CheckResult::fail(vp::format(
                "v%d save -> load -> save is not a fixed point",
                version));

        std::istringstream in2(second);
        core::ProfileSnapshot reloaded;
        if (!core::ProfileSnapshot::tryLoad(in2, reloaded, err))
            return CheckResult::fail(vp::format(
                "second load of the v%d fixed point failed: %s",
                version, err.c_str()));
        if (textV(reloaded, version) != second)
            return CheckResult::fail(vp::format(
                "third v%d save diverged from the fixed point",
                version));

        // Corrupt and truncated inputs must be rejected with a
        // diagnosis, never accepted and never fatal.
        std::istringstream bad_header("not a snapshot\n" + first);
        core::ProfileSnapshot scratch;
        if (core::ProfileSnapshot::tryLoad(bad_header, scratch, err) ||
            err.empty())
            return CheckResult::fail(vp::format(
                "corrupt v%d header was accepted by tryLoad", version));
        std::istringstream truncated(
            first.substr(0, first.size() / 2));
        if (core::ProfileSnapshot::tryLoad(truncated, scratch, err) ||
            err.empty())
            return CheckResult::fail(vp::format(
                "truncated v%d snapshot was accepted by tryLoad",
                version));
    }

    // Cross-version: a v1 save of the v2 load (and vice versa) must
    // describe the same profile.
    {
        std::istringstream in(textV(snap, 2));
        core::ProfileSnapshot viaV2;
        std::string err;
        if (!core::ProfileSnapshot::tryLoad(in, viaV2, err))
            return CheckResult::fail("v2 reload failed: " + err);
        if (textV(viaV2, 1) != textV(snap, 1))
            return CheckResult::fail(
                "v2 round trip changed the v1 text rendering");
    }
    return CheckResult::pass();
}

namespace
{

/**
 * Minimal blocking HTTP GET against the vpd query plane. Speaks
 * HTTP/1.0 on purpose: the server then never chunks and closes after
 * the response, so "read to EOF" delimits the body.
 */
bool
httpGet(const std::string &addr_text, const std::string &target,
        int &status, std::string &body, std::string &error)
{
    net::Address addr;
    if (!net::parseAddress(addr_text, addr, error))
        return false;
    const int fd = net::connectTo(addr, error);
    if (fd < 0)
        return false;
    net::FdGuard guard(fd);
    const std::string req = "GET " + target + " HTTP/1.0\r\n\r\n";
    std::size_t sent = 0;
    while (sent < req.size()) {
        const long n = ::send(fd, req.data() + sent,
                              req.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = vp::format("send: %s", std::strerror(errno));
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char buf[4096];
    while (true) {
        const long n = ::recv(fd, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            error = vp::format("recv: %s", std::strerror(errno));
            return false;
        }
        if (n == 0)
            break;
        reply.append(buf, static_cast<std::size_t>(n));
    }
    if (reply.rfind("HTTP/1.", 0) != 0 || reply.size() < 12) {
        error = "malformed HTTP reply";
        return false;
    }
    status = std::atoi(reply.c_str() + 9);
    const auto head_end = reply.find("\r\n\r\n");
    body = head_end == std::string::npos ? ""
                                         : reply.substr(head_end + 4);
    return true;
}

/** Extract "key N" from a control QUERY reply. */
bool
queryField(const std::string &text, const std::string &key,
           std::uint64_t &out)
{
    std::istringstream is(text);
    std::string word;
    while (is >> word) {
        std::uint64_t value;
        if (!(is >> value))
            return false;
        if (word == key) {
            out = value;
            return true;
        }
    }
    return false;
}

/** Extract `"key":N` from a JSON body (first occurrence). */
bool
jsonField(const std::string &json, const std::string &key,
          std::uint64_t &out)
{
    const std::string needle = "\"" + key + "\":";
    const auto p = json.find(needle);
    if (p == std::string::npos)
        return false;
    out = std::strtoull(json.c_str() + p + needle.size(), nullptr, 10);
    return true;
}

} // namespace

CheckResult
checkServeLoopback(const vpsim::Program &prog, const CheckOptions &opts)
{
    vp_assert(opts.shards >= 2, "serve checking needs >= 2 shards");
    instr::Image img(prog);
    const auto pcs = profiledPcs(img);
    const unsigned K = opts.shards;
    const core::InstProfilerConfig cfg = fullConfig(opts.tnv);

    // K serial shard runs — the delta stream both sides will consume.
    std::vector<core::ProfileSnapshot> shard_snaps;
    for (unsigned k = 0; k < K; ++k) {
        ShardRun run(prog, cfg, pcs, opts.cpu);
        shard_snaps.push_back(
            core::ProfileSnapshot::fromInstructionProfiler(run.prof));
    }

    // Serial reference: fold the shard snapshots in producer-id order
    // (shard k is producer k+1) — the canonical fold the daemon must
    // reproduce no matter how the clients raced.
    core::ProfileSnapshot reference;
    for (const auto &snap : shard_snaps)
        reference.merge(snap);
    const std::string want = snapshotText(reference);

    // Byte-identity must hold whichever wire version the emitters
    // speak — v1 (fixed-width) and v2 (compressed) deltas fold to the
    // same aggregate.
    for (std::uint16_t wireVersion = serve::kMinWireVersion;
         wireVersion <= serve::kWireVersion; ++wireVersion) {
    serve::ServerConfig scfg;
    scfg.listenAddrs = {"127.0.0.1:0"};
    scfg.httpAddrs = {"127.0.0.1:0"};
    serve::VpdServer server(scfg);
    std::string err;
    if (!server.start(err))
        return CheckResult::fail("vpd server failed to start: " + err);
    const std::string addr = server.boundAddresses().front().str();
    const std::string http_addr =
        server.boundHttpAddresses().front().str();
    std::string loop_err;
    std::thread loop([&] {
        if (!server.run(loop_err))
            vp_warn("vpd loop: %s", loop_err.c_str());
    });

    // While the emitters race, hammer the query plane from concurrent
    // HTTP clients. Every reply must be 200 — and the queries must not
    // perturb the aggregate: the byte-identity check below still has
    // to hold with them running.
    std::atomic<bool> emitting{true};
    std::atomic<unsigned> http_failures{0};
    static const char *const kTargets[] = {"/metrics", "/top?n=5",
                                           "/producers",
                                           "/stats.json"};
    std::vector<std::thread> queriers;
    for (unsigned q = 0; q < 3; ++q) {
        queriers.emplace_back([&, q] {
            unsigned i = q;
            while (emitting.load(std::memory_order_relaxed)) {
                int status = 0;
                std::string body, qerr;
                if (!httpGet(http_addr, kTargets[i++ % 4], status,
                             body, qerr) ||
                    status != 200)
                    http_failures.fetch_add(1);
            }
        });
    }
    std::thread watcher([&] {
        // Parks until the first delta applies, then must report change.
        int status = 0;
        std::string body, qerr;
        if (!httpGet(http_addr, "/watch?since=0", status, body,
                     qerr) ||
            status != 200 ||
            body.find("\"changed\":true") == std::string::npos)
            http_failures.fetch_add(1);
    });

    // K concurrent emitters, each streaming its shard snapshot as
    // several entity-disjoint deltas (a delta always carries whole
    // entities, so chunking cannot perturb the merge).
    std::atomic<unsigned> undelivered{0};
    std::vector<std::thread> emitters;
    for (unsigned k = 0; k < K; ++k) {
        emitters.emplace_back([&, k] {
            serve::EmitterConfig ecfg;
            ecfg.addr = addr;
            ecfg.producerId = k + 1;
            ecfg.wireVersion = wireVersion;
            serve::ProfileEmitter emitter(ecfg);
            constexpr std::size_t kChunks = 3;
            std::vector<core::ProfileSnapshot> chunks(kChunks);
            std::size_t i = 0;
            for (const auto &[key, summary] : shard_snaps[k].entities)
                chunks[i++ % kChunks].entities.emplace(key, summary);
            for (auto &chunk : chunks)
                if (!chunk.entities.empty())
                    emitter.emit(std::move(chunk));
            if (!emitter.close())
                undelivered.fetch_add(1);
        });
    }
    for (auto &t : emitters)
        t.join();
    emitting.store(false);
    for (auto &t : queriers)
        t.join();
    watcher.join();

    // Quiescent cross-check: the HTTP /stats.json server totals must
    // agree with the control-protocol QUERY reply field for field.
    std::string cross_err;
    {
        std::string qtext;
        int status = 0;
        std::string sjson, herr;
        if (!serve::requestQuery(addr, qtext, err)) {
            cross_err = "QUERY failed: " + err;
        } else if (!httpGet(http_addr, "/stats.json", status, sjson,
                            herr) ||
                   status != 200) {
            cross_err = "GET /stats.json failed: " + herr;
        } else {
            for (const char *key :
                 {"producers", "deltas", "entities", "dropped_stores",
                  "dropped_loads"}) {
                std::uint64_t via_query = 0, via_http = 0;
                if (!queryField(qtext, key, via_query) ||
                    !jsonField(sjson, key, via_http)) {
                    cross_err = vp::format(
                        "field '%s' missing from a status reply", key);
                    break;
                }
                if (via_query != via_http) {
                    cross_err = vp::format(
                        "'%s' disagrees: QUERY says %llu, "
                        "/stats.json says %llu",
                        key,
                        static_cast<unsigned long long>(via_query),
                        static_cast<unsigned long long>(via_http));
                    break;
                }
            }
        }
    }

    core::ProfileSnapshot served;
    const bool fetched = serve::requestSnapshot(addr, served, err);

    // Exercise the wire SHUTDOWN path; fall back to the in-process
    // stop so a failed fetch can never hang the checker.
    std::string shutdown_err;
    if (!serve::requestShutdown(addr, shutdown_err))
        server.requestStop();
    loop.join();

    if (undelivered.load() != 0)
        return CheckResult::fail(vp::format(
            "%u of %u wire-v%u emitters failed to deliver every delta",
            undelivered.load(), K, unsigned(wireVersion)));
    if (http_failures.load() != 0)
        return CheckResult::fail(vp::format(
            "%u HTTP queries failed while wire-v%u emitters raced",
            http_failures.load(), unsigned(wireVersion)));
    if (!cross_err.empty())
        return CheckResult::fail(
            vp::format("wire v%u: ", unsigned(wireVersion)) +
            cross_err);
    if (!fetched)
        return CheckResult::fail(vp::format(
            "SNAPSHOT request failed (wire v%u): %s",
            unsigned(wireVersion), err.c_str()));
    const std::string got = snapshotText(served);
    if (got != want)
        return CheckResult::fail(vp::format(
            "served aggregate (%zu entities, wire v%u) is not "
            "byte-identical to the serial merge (%zu entities)",
            served.size(), unsigned(wireVersion), reference.size()));
    } // wireVersion
    return CheckResult::pass();
}

namespace
{

const char *
stopReasonName(vpsim::StopReason r)
{
    switch (r) {
      case vpsim::StopReason::Exited: return "exited";
      case vpsim::StopReason::MaxInsts: return "max-insts";
      case vpsim::StopReason::MemFault: return "mem-fault";
      case vpsim::StopReason::BadInst: return "bad-inst";
    }
    return "?";
}

} // namespace

CheckResult
checkAdaptive(const vpsim::Program &prog, const CheckOptions &opts)
{
    // Plain architectural reference: no instrumentation at all.
    vpsim::Cpu plain(prog, opts.cpu);
    const vpsim::RunResult pref = plain.run();
    if (pref.reason == vpsim::StopReason::MaxInsts)
        // The reference never finished; the adaptive leg would stop at
        // a different architectural point (guards cost instructions),
        // so there is nothing sound to compare.
        return CheckResult::pass();

    // Adaptive leg. Its own mutable program copy — the engine appends
    // guarded clones to it — and generous instruction headroom: the
    // guard blocks add work, and a too-small budget would turn that
    // overhead into a spurious stop-reason divergence. A redirect loop,
    // by contrast, blows through even this budget and is reported.
    vpsim::Program aprog = prog;
    instr::Image aimg(aprog);
    instr::InstrumentManager amgr(aimg);
    vpsim::CpuConfig acpu = opts.cpu;
    acpu.maxInsts = opts.cpu.maxInsts * 4;
    vpsim::Cpu cpu(aprog, acpu);
    adapt::AdaptiveEngine engine(aprog, amgr, cpu, opts.adapt);
    amgr.attach(cpu);
    const vpsim::RunResult ares = cpu.run();

    // Architectural transparency: everything the guest can observe
    // about itself must match. dynamicInsts is *expected* to differ —
    // that difference is the speedup.
    if (ares.reason != pref.reason)
        return CheckResult::fail(vp::format(
            "adaptive run stopped with %s, plain run with %s "
            "(installs=%llu deopts=%llu)",
            stopReasonName(ares.reason), stopReasonName(pref.reason),
            static_cast<unsigned long long>(engine.installs()),
            static_cast<unsigned long long>(engine.deopts())));
    if (ares.exitCode != pref.exitCode)
        return CheckResult::fail(vp::format(
            "adaptive exit code %lld != plain %lld (installs=%llu "
            "guard=%llu/%llu deopts=%llu)",
            static_cast<long long>(ares.exitCode),
            static_cast<long long>(pref.exitCode),
            static_cast<unsigned long long>(engine.installs()),
            static_cast<unsigned long long>(engine.guardHits()),
            static_cast<unsigned long long>(engine.guardHits() +
                                            engine.guardMisses()),
            static_cast<unsigned long long>(engine.deopts())));
    if (cpu.output() != plain.output())
        return CheckResult::fail(vp::format(
            "adaptive guest output (%zu bytes) differs from plain "
            "(%zu bytes) after %llu installs",
            cpu.output().size(), plain.output().size(),
            static_cast<unsigned long long>(engine.installs())));
    if (cpu.outputValues() != plain.outputValues())
        return CheckResult::fail(vp::format(
            "adaptive guest printed %zu values, plain %zu, or the "
            "sequences diverge (installs=%llu)",
            cpu.outputValues().size(), plain.outputValues().size(),
            static_cast<unsigned long long>(engine.installs())));

    // Engine self-consistency: guard accounting only exists while a
    // redirect is installed, and every respecialization implies both a
    // prior install and a deopt.
    if (engine.installs() == 0 &&
        (engine.guardHits() + engine.guardMisses()) != 0)
        return CheckResult::fail(
            "guard hits/misses recorded without any install");
    if (engine.respecializations() > 0 && engine.deopts() == 0)
        return CheckResult::fail(
            "respecialization recorded without a deopt");
    for (const auto &[entry, site] : engine.sites()) {
        if (site.blacklisted &&
            site.deopts < opts.adapt.blacklistAfter)
            return CheckResult::fail(vp::format(
                "site %s blacklisted after only %u deopts (K=%u)",
                site.procName.c_str(), site.deopts,
                opts.adapt.blacklistAfter));
        if (site.installed && site.blacklisted)
            return CheckResult::fail(vp::format(
                "site %s both installed and blacklisted",
                site.procName.c_str()));
    }
    return CheckResult::pass();
}

CheckResult
runChecker(Checker c, const vpsim::Program &prog,
           const CheckOptions &opts)
{
    switch (c) {
      case Checker::FullVsOracle:
        return checkFullVsOracle(prog, opts);
      case Checker::ShardMerge:
        return checkShardMerge(prog, opts);
      case Checker::SampledVsFull:
        return checkSampledVsFull(prog, opts);
      case Checker::SnapshotRoundTrip:
        return checkSnapshotRoundTrip(prog, opts);
      case Checker::ServeLoopback:
        return checkServeLoopback(prog, opts);
      case Checker::Adapt:
        return checkAdaptive(prog, opts);
    }
    vp_panic("unknown checker %d", static_cast<int>(c));
}

} // namespace vp::check
