#include "check/soak.hpp"

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fcntl.h>
#include <map>
#include <sstream>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>

#include "check/generator.hpp"
#include "check/seed.hpp"
#include "core/instruction_profiler.hpp"
#include "core/snapshot.hpp"
#include "instrument/image.hpp"
#include "instrument/manager.hpp"
#include "serve/client.hpp"
#include "support/file.hpp"
#include "support/logging.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"
#include "support/strings.hpp"
#include "vpsim/cpu.hpp"

namespace vp::check
{

namespace
{

using clock_t_ = std::chrono::steady_clock;

void
sleepMs(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::string
snapText(const core::ProfileSnapshot &snap)
{
    std::ostringstream os;
    snap.save(os);
    return os.str();
}

/** Fork + exec with stdout/stderr appended to a per-process log. */
pid_t
spawnProcess(const std::vector<std::string> &args,
             const std::string &log_path)
{
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    const int fd = ::open(log_path.c_str(),
                          O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (fd >= 0) {
        ::dup2(fd, 1);
        ::dup2(fd, 2);
        if (fd > 2)
            ::close(fd);
    }
    ::execv(argv[0], argv.data());
    _exit(127);
}

/** Wait until `addr_text` accepts a connection (a freshly exec'd vpd
 *  binding its unix socket). */
bool
probeAddr(const std::string &addr_text, unsigned timeout_ms)
{
    net::Address addr;
    std::string err;
    if (!net::parseAddress(addr_text, addr, err))
        return false;
    const auto deadline =
        clock_t_::now() + std::chrono::milliseconds(timeout_ms);
    while (clock_t_::now() < deadline) {
        const int fd = net::connectTo(addr, err);
        if (fd >= 0) {
            net::closeFd(fd);
            return true;
        }
        sleepMs(10);
    }
    return false;
}

/** What the daemon actually applies from a delta encoded in
 *  `version`: the encode/decode round trip (v1 drops the
 *  dropped-access counters; v2 is bit-exact). */
core::ProfileSnapshot
roundTripped(const serve::Delta &d, std::uint16_t version)
{
    const auto bytes = serve::encodeDelta(d, version);
    serve::Frame frame;
    std::size_t consumed = 0;
    std::string err;
    const auto st = serve::tryDecode(bytes.data(), bytes.size(),
                                     frame, consumed, err);
    vp_assert(st == serve::DecodeStatus::Ok,
              "soak oracle: encoded delta failed to decode");
    serve::Delta back;
    const bool ok = serve::decodeDelta(frame, back, err);
    vp_assert(ok, "soak oracle: delta payload failed to decode");
    return std::move(back.entities);
}

/** Best-effort recursive removal of the flat scratch directory. */
void
removeWorkDir(const std::string &dir)
{
    DIR *d = ::opendir(dir.c_str());
    if (d != nullptr) {
        while (const dirent *ent = ::readdir(d)) {
            const std::string name = ent->d_name;
            if (name == "." || name == "..")
                continue;
            ::unlink((dir + "/" + name).c_str());
        }
        ::closedir(d);
    }
    ::rmdir(dir.c_str());
}

} // namespace

std::string
SoakSchedule::text() const
{
    std::ostringstream os;
    for (const auto &e : events) {
        os << "after " << e.afterMs << "ms ";
        switch (e.kind) {
          case SoakEvent::Kind::KillProducer:
            os << "kill-producer " << e.target;
            break;
          case SoakEvent::Kind::KillDaemon:
            os << "kill-daemon " << e.target;
            break;
          case SoakEvent::Kind::CorruptFrame:
            os << "corrupt-frame " << e.target;
            break;
        }
        os << "\n";
    }
    return os.str();
}

SoakSchedule
buildSoakSchedule(const SoakConfig &cfg)
{
    SoakSchedule sched;
    std::vector<SoakEvent::Kind> kinds;
    if (cfg.killProducers && cfg.producers > 0)
        kinds.push_back(SoakEvent::Kind::KillProducer);
    if (cfg.killDaemons)
        kinds.push_back(SoakEvent::Kind::KillDaemon);
    if (cfg.corruptFrames)
        kinds.push_back(SoakEvent::Kind::CorruptFrame);
    if (kinds.empty())
        return sched;
    const unsigned nonroot =
        cfg.leaves + (cfg.levels >= 3 ? cfg.mids : 0);
    vp::Rng rng(cfg.seed ^ 0x50414B5C4A0ull);
    for (unsigned i = 0; i < cfg.faultEvents; ++i) {
        SoakEvent e;
        e.kind = kinds[rng.below(kinds.size())];
        e.afterMs =
            cfg.eventGapMs / 2 +
            static_cast<unsigned>(
                rng.below(std::max(1u, cfg.eventGapMs)));
        switch (e.kind) {
          case SoakEvent::Kind::KillProducer:
            e.target = static_cast<unsigned>(
                rng.below(cfg.producers));
            break;
          case SoakEvent::Kind::KillDaemon:
            e.target = static_cast<unsigned>(
                rng.below(std::max(1u, nonroot)));
            break;
          case SoakEvent::Kind::CorruptFrame:
            // 0 targets the root, 1.. the non-root daemons.
            e.target = static_cast<unsigned>(
                rng.below(1 + nonroot));
            break;
        }
        sched.events.push_back(e);
    }
    return sched;
}

std::vector<serve::Delta>
soakProducerDeltas(std::uint64_t seed, unsigned index, unsigned count)
{
    std::vector<serve::Delta> out;
    out.reserve(count);
    for (unsigned k = 0; k < count; ++k) {
        GenConfig gc;
        gc.minProcs = 1;
        gc.maxProcs = 2;
        gc.minBlocks = 2;
        gc.maxBlocks = 4;
        gc.minInstsPerBlock = 2;
        gc.maxInstsPerBlock = 5;
        gc.calls = 8;
        gc.dataWords = 8;
        // Phase shift: the bound hot value moves every second delta,
        // so a producer's value distribution changes mid-stream.
        gc.bindValue = 7 + static_cast<long long>(k / 2);
        const Generated gen = generate(
            trialSeed(seed,
                      static_cast<std::uint64_t>(index) * 1000 + k),
            gc);
        instr::Image image(gen.program);
        instr::InstrumentManager mgr(image);
        core::InstProfilerConfig pcfg;
        pcfg.mode = core::ProfileMode::Full;
        core::InstructionProfiler prof(image, pcfg);
        prof.profileInsts(mgr, image.regWritingInsts());
        vpsim::Cpu cpu(gen.program, vpsim::CpuConfig{});
        mgr.attach(cpu);
        cpu.run();
        serve::Delta d;
        d.producerId = index + 1;
        d.seq = k + 1;
        d.entities =
            core::ProfileSnapshot::fromInstructionProfiler(prof);
        out.push_back(std::move(d));
    }
    return out;
}

int
runSoakProducer(const SoakProducerOptions &opt)
{
    auto deltas = soakProducerDeltas(opt.seed, opt.index, opt.count);
    // A previous incarnation may have left a spill: replay it first
    // (original ids and seqs), then re-emit the whole deterministic
    // stream — the daemon deduplicates whatever already landed.
    std::vector<serve::Delta> replay;
    if (!opt.spillPath.empty()) {
        std::string why;
        if (serve::readSpill(opt.spillPath, replay, why)) {
            ::unlink(opt.spillPath.c_str());
            if (!why.empty())
                vp_warn("soak producer %u: spill tail: %s",
                        opt.index, why.c_str());
        }
    }
    serve::EmitterConfig ec;
    ec.addr = opt.addr;
    ec.producerId = opt.index + 1;
    ec.spillPath = opt.spillPath;
    ec.wireVersion = opt.wireVersion;
    ec.maxRetries = opt.maxRetries;
    ec.backoffBaseMs = 20;
    ec.backoffMaxMs = 250;
    ec.batchIntervalMs = 5;
    serve::ProfileEmitter emitter(ec);
    for (auto &d : replay)
        emitter.emitDelta(std::move(d));
    for (auto &d : deltas) {
        emitter.emitDelta(std::move(d));
        if (opt.dwellMs > 0)
            sleepMs(opt.dwellMs); // leave a window for SIGKILL
    }
    return emitter.close() ? 0 : 3;
}

SoakResult
runSoak(const SoakConfig &cfg)
{
    SoakResult res;
    const SoakSchedule sched = buildSoakSchedule(cfg);
    res.scheduleText = sched.text();

    if (cfg.producers == 0 || cfg.leaves == 0 ||
        cfg.deltasPerProducer == 0 || cfg.levels < 2 ||
        cfg.levels > 3 || (cfg.levels == 3 && cfg.mids == 0)) {
        res.detail = "bad soak config: producers/leaves/deltas must "
                     "be >= 1 and levels 2 or 3 (with mids >= 1)";
        return res;
    }
    if (cfg.vpdPath.empty() ||
        ::access(cfg.vpdPath.c_str(), X_OK) != 0) {
        res.detail = "vpd binary not executable: '" + cfg.vpdPath +
                     "' (pass --vpd)";
        return res;
    }
    if (cfg.vpcheckPath.empty() ||
        ::access(cfg.vpcheckPath.c_str(), X_OK) != 0) {
        res.detail =
            "vpcheck binary not executable: '" + cfg.vpcheckPath + "'";
        return res;
    }

    std::string wd = cfg.workDir;
    if (wd.empty()) {
        const char *tmp = std::getenv("TMPDIR");
        std::string tmpl =
            std::string(tmp && *tmp ? tmp : "/tmp") + "/vpsoak-XXXXXX";
        std::vector<char> buf(tmpl.begin(), tmpl.end());
        buf.push_back('\0');
        if (::mkdtemp(buf.data()) == nullptr) {
            res.detail = vp::format("mkdtemp: %s",
                                    std::strerror(errno));
            return res;
        }
        wd.assign(buf.data());
    } else {
        ::mkdir(wd.c_str(), 0755);
    }
    res.workDir = wd;

    const auto wireFor = [&](unsigned i) -> std::uint16_t {
        return (cfg.mixedVersions && i % 2 == 1)
                   ? 1
                   : serve::kWireVersion;
    };

    // The serial oracle: per producer, fold the round-tripped deltas
    // in seq order; then fold the producers in ascending-id order —
    // exactly the merge tree the daemon hierarchy preserves.
    core::ProfileSnapshot oracle;
    for (unsigned i = 0; i < cfg.producers; ++i) {
        core::ProfileSnapshot part;
        for (const auto &d :
             soakProducerDeltas(cfg.seed, i, cfg.deltasPerProducer))
            part.merge(roundTripped(d, wireFor(i)));
        oracle.merge(part);
    }
    const std::string want = snapText(oracle);

    // --- process bookkeeping ------------------------------------
    struct DaemonState
    {
        std::string name;
        std::string addrText;
        std::vector<std::string> args;
        std::string logPath;
        pid_t pid = -1;
        bool running = false;
        bool terminating = false; ///< we SIGTERMed it on purpose
    };
    struct ProducerState
    {
        unsigned index = 0;
        std::vector<std::string> args;
        std::string logPath;
        pid_t pid = -1;
        bool running = false;
        bool done = false;
        unsigned restarts = 0;
        clock_t_::time_point respawnAt{};
        bool needsRespawn = false;
    };

    const unsigned mids = cfg.levels >= 3 ? cfg.mids : 0;
    const std::string root_addr = "unix:" + wd + "/root.sock";
    const auto mid_addr = [&](unsigned k) {
        return "unix:" + wd + "/mid" + std::to_string(k) + ".sock";
    };
    const auto leaf_addr = [&](unsigned j) {
        return "unix:" + wd + "/leaf" + std::to_string(j) + ".sock";
    };

    // daemons[0] = root, [1..leaves] = leaves, then mids — the same
    // indexing the schedule's corrupt-frame targets use.
    std::vector<DaemonState> daemons;
    {
        DaemonState root;
        root.name = "root";
        root.addrText = root_addr;
        root.args = {cfg.vpdPath,  "--listen",
                     root_addr,    "--state",
                     wd + "/root.state", "--snapshot-interval",
                     "0.25"};
        root.logPath = wd + "/root.log";
        daemons.push_back(std::move(root));
    }
    for (unsigned j = 0; j < cfg.leaves; ++j) {
        DaemonState d;
        d.name = "leaf" + std::to_string(j);
        d.addrText = leaf_addr(j);
        const std::string upstream =
            mids > 0 ? mid_addr(j % mids) : root_addr;
        d.args = {cfg.vpdPath,
                  "--listen",
                  d.addrText,
                  "--forward",
                  upstream,
                  "--forward-id",
                  std::to_string(200 + j),
                  "--forward-interval",
                  "0.1",
                  "--forward-spill",
                  wd + "/" + d.name + ".fwdspill",
                  "--state",
                  wd + "/" + d.name + ".state",
                  "--snapshot-interval",
                  "0.25"};
        d.logPath = wd + "/" + d.name + ".log";
        daemons.push_back(std::move(d));
    }
    for (unsigned k = 0; k < mids; ++k) {
        DaemonState d;
        d.name = "mid" + std::to_string(k);
        d.addrText = mid_addr(k);
        d.args = {cfg.vpdPath,
                  "--listen",
                  d.addrText,
                  "--forward",
                  root_addr,
                  "--forward-id",
                  std::to_string(100 + k),
                  "--forward-interval",
                  "0.1",
                  "--forward-spill",
                  wd + "/" + d.name + ".fwdspill",
                  "--state",
                  wd + "/" + d.name + ".state",
                  "--snapshot-interval",
                  "0.25"};
        d.logPath = wd + "/" + d.name + ".log";
        daemons.push_back(std::move(d));
    }

    std::vector<ProducerState> producers(cfg.producers);
    for (unsigned i = 0; i < cfg.producers; ++i) {
        ProducerState &p = producers[i];
        p.index = i;
        p.args = {cfg.vpcheckPath,
                  "--soak-producer",
                  "--soak-seed",
                  std::to_string(cfg.seed),
                  "--soak-index",
                  std::to_string(i),
                  "--soak-deltas",
                  std::to_string(cfg.deltasPerProducer),
                  "--soak-addr",
                  leaf_addr(i % cfg.leaves),
                  "--soak-spill",
                  wd + "/producer" + std::to_string(i) + ".spill",
                  "--soak-wire",
                  std::to_string(wireFor(i)),
                  "--soak-dwell",
                  std::to_string(cfg.producerDwellMs)};
        p.logPath = wd + "/producer" + std::to_string(i) + ".log";
    }

    std::string abort_detail; ///< first unrecoverable driver failure
    constexpr unsigned kMaxProducerRestarts = 200;

    const auto note = [&](const std::string &msg) {
        if (cfg.verbose)
            std::fprintf(stderr, "soak: %s\n", msg.c_str());
    };

    const auto spawnDaemon = [&](DaemonState &d) {
        d.pid = spawnProcess(d.args, d.logPath);
        d.running = probeAddr(d.addrText, 8000);
        if (!d.running && abort_detail.empty())
            abort_detail = "daemon " + d.name +
                           " never bound its socket (see " +
                           d.logPath + ")";
    };
    const auto spawnProducer = [&](ProducerState &p) {
        p.pid = spawnProcess(p.args, p.logPath);
        p.running = true;
        p.needsRespawn = false;
    };

    /** Reap exited children; respawn failed producers (after a short
     *  cool-down) and unexpectedly dead daemons. */
    const auto reap = [&] {
        const auto now = clock_t_::now();
        for (auto &p : producers) {
            if (p.running) {
                int st = 0;
                if (::waitpid(p.pid, &st, WNOHANG) != p.pid)
                    continue;
                p.running = false;
                if (WIFEXITED(st) && WEXITSTATUS(st) == 0) {
                    p.done = true;
                    continue;
                }
                note(vp::format(
                    "producer %u exited %d (signal %d)", p.index,
                    WIFEXITED(st) ? WEXITSTATUS(st) : -1,
                    WIFSIGNALED(st) ? WTERMSIG(st) : 0));
                p.needsRespawn = true;
                p.respawnAt =
                    now + std::chrono::milliseconds(100);
            }
            if (p.needsRespawn && now >= p.respawnAt) {
                if (p.restarts >= kMaxProducerRestarts) {
                    if (abort_detail.empty())
                        abort_detail = vp::format(
                            "producer %u burned %u restarts without "
                            "full acknowledgement",
                            p.index, p.restarts);
                    p.needsRespawn = false;
                    continue;
                }
                p.restarts += 1;
                res.producerRestarts += 1;
                spawnProducer(p);
            }
        }
        for (auto &d : daemons) {
            if (!d.running || d.terminating)
                continue;
            int st = 0;
            if (::waitpid(d.pid, &st, WNOHANG) != d.pid)
                continue;
            d.running = false;
            vp_warn("soak: daemon %s died unexpectedly; restoring",
                    d.name.c_str());
            res.daemonRestarts += 1;
            spawnDaemon(d);
        }
    };

    /** Sleep `ms` wall-clock while keeping the fleet reaped. */
    const auto waitMs = [&](unsigned ms) {
        const auto deadline =
            clock_t_::now() + std::chrono::milliseconds(ms);
        while (clock_t_::now() < deadline && abort_detail.empty()) {
            reap();
            sleepMs(5);
        }
    };

    const auto teardown = [&] {
        for (auto &p : producers) {
            if (p.running)
                ::kill(p.pid, SIGKILL);
        }
        for (auto &p : producers) {
            if (p.running) {
                ::waitpid(p.pid, nullptr, 0);
                p.running = false;
            }
        }
        for (auto &d : daemons) {
            if (d.running)
                ::kill(d.pid, SIGTERM);
        }
        for (auto &d : daemons) {
            if (!d.running)
                continue;
            const auto deadline = clock_t_::now() +
                                  std::chrono::milliseconds(5000);
            int st = 0;
            while (::waitpid(d.pid, &st, WNOHANG) != d.pid) {
                if (clock_t_::now() >= deadline) {
                    ::kill(d.pid, SIGKILL);
                    ::waitpid(d.pid, nullptr, 0);
                    break;
                }
                sleepMs(5);
            }
            d.running = false;
        }
    };

    const auto finish = [&](bool ok,
                            std::string detail) -> SoakResult {
        teardown();
        res.ok = ok;
        res.detail = std::move(detail);
        if (ok && !cfg.keepArtifacts)
            removeWorkDir(wd);
        return res;
    };

    // --- bring the tree up: root, mids, leaves, then producers ---
    spawnDaemon(daemons[0]);
    for (unsigned k = 0; k < mids; ++k)
        spawnDaemon(daemons[1 + cfg.leaves + k]);
    for (unsigned j = 0; j < cfg.leaves; ++j)
        spawnDaemon(daemons[1 + j]);
    if (!abort_detail.empty())
        return finish(false, abort_detail);
    for (auto &p : producers)
        spawnProducer(p);
    note(vp::format("tree up: %zu daemons, %u producers",
                    daemons.size(), cfg.producers));

    // --- run the fault schedule ----------------------------------
    for (std::size_t ei = 0;
         ei < sched.events.size() && abort_detail.empty(); ++ei) {
        const SoakEvent &e = sched.events[ei];
        waitMs(e.afterMs);
        switch (e.kind) {
          case SoakEvent::Kind::KillProducer: {
            ProducerState &p = producers[e.target];
            if (p.running) {
                note(vp::format("SIGKILL producer %u", p.index));
                ::kill(p.pid, SIGKILL);
            }
            break;
          }
          case SoakEvent::Kind::KillDaemon: {
            DaemonState &d = daemons[1 + e.target];
            if (!d.running)
                break;
            note("SIGTERM daemon " + d.name);
            d.terminating = true;
            ::kill(d.pid, SIGTERM);
            const auto deadline = clock_t_::now() +
                                  std::chrono::milliseconds(8000);
            int st = 0;
            bool exited = false;
            while (clock_t_::now() < deadline) {
                if (::waitpid(d.pid, &st, WNOHANG) == d.pid) {
                    exited = true;
                    break;
                }
                reap(); // keep producers flowing meanwhile
                sleepMs(5);
            }
            if (!exited) {
                // A hung shutdown is itself a daemon bug; killing it
                // now would lose acked state and make the final
                // comparison meaningless, so fail loudly instead.
                abort_detail = "daemon " + d.name +
                               " did not exit within 8s of SIGTERM";
                break;
            }
            d.running = false;
            d.terminating = false;
            res.daemonRestarts += 1;
            spawnDaemon(d); // restore from its persisted state
            break;
          }
          case SoakEvent::Kind::CorruptFrame: {
            const DaemonState &d = daemons[e.target];
            net::Address addr;
            std::string err;
            if (!net::parseAddress(d.addrText, addr, err))
                break;
            const int fd = net::connectTo(addr, err);
            if (fd < 0)
                break; // daemon mid-restart: the splice just misses
            // Alternate corruption shapes: a CRC-broken frame (the
            // daemon must answer ERROR and drop the connection) and
            // a truncated frame (the daemon must wait, then shrug
            // off the close) — spliced from a real encoded delta.
            vp::Rng crng(cfg.seed ^
                         (0xC0447ull + static_cast<std::uint64_t>(ei)));
            serve::Delta junk;
            junk.producerId = 1 + crng.below(cfg.producers);
            junk.seq = 1 + crng.below(5);
            auto frame = serve::encodeDelta(junk);
            std::size_t len = frame.size();
            if (ei % 2 == 0)
                frame[16 + crng.below(frame.size() - 16)] ^= 0x5A;
            else
                len = frame.size() / 2;
            std::string serr;
            net::sendAll(fd, frame.data(), len, serr);
            net::closeFd(fd);
            res.corruptInjected += 1;
            note(std::string("spliced ") +
                 (ei % 2 == 0 ? "corrupt" : "truncated") +
                 " frame into " + d.name);
            break;
          }
        }
    }
    if (!abort_detail.empty())
        return finish(false, abort_detail);

    // --- quiesce: every producer incarnation must fully ack -------
    {
        const auto deadline =
            clock_t_::now() +
            std::chrono::milliseconds(30000 + cfg.producers * 500);
        while (abort_detail.empty()) {
            reap();
            bool all_done = true;
            for (const auto &p : producers)
                all_done = all_done && p.done;
            if (all_done)
                break;
            if (clock_t_::now() >= deadline) {
                std::string stuck;
                for (const auto &p : producers)
                    if (!p.done)
                        stuck += (stuck.empty() ? "" : ",") +
                                 std::to_string(p.index);
                abort_detail = "producers {" + stuck +
                               "} never reached full acknowledgement";
                break;
            }
            sleepMs(10);
        }
        if (!abort_detail.empty())
            return finish(false, abort_detail);
    }
    note(vp::format("quiesced after %u producer restart(s), %u "
                    "daemon restore(s)",
                    res.producerRestarts, res.daemonRestarts));

    // --- converge: flush the relay hop by hop, poll the root ------
    std::string got;
    {
        const auto deadline =
            clock_t_::now() +
            std::chrono::milliseconds(cfg.convergeTimeoutMs);
        while (abort_detail.empty()) {
            std::string err;
            for (unsigned j = 0; j < cfg.leaves; ++j)
                serve::requestFlush(leaf_addr(j), err);
            if (mids > 0) {
                sleepMs(50);
                for (unsigned k = 0; k < mids; ++k)
                    serve::requestFlush(mid_addr(k), err);
            }
            sleepMs(100);
            core::ProfileSnapshot snap;
            if (serve::requestSnapshot(root_addr, snap, err)) {
                got = snapText(snap);
                if (got == want)
                    break;
            }
            if (clock_t_::now() >= deadline) {
                abort_detail = "root did not converge to the oracle "
                               "within the timeout";
                break;
            }
            reap();
        }
    }
    res.rootText = got;
    if (!abort_detail.empty() || got != want) {
        // Keep the evidence: both snapshots next to the daemon logs.
        std::string werr;
        vp::atomicWriteFile(wd + "/oracle.snap", want, werr);
        vp::atomicWriteFile(wd + "/root-final.snap", got, werr);
        return finish(
            false,
            (abort_detail.empty() ? std::string("root != oracle")
                                  : abort_detail) +
                vp::format(" (root %zu bytes, oracle %zu bytes; "
                           "snapshots kept in %s)",
                           got.size(), want.size(), wd.c_str()));
    }
    return finish(true, "");
}

} // namespace vp::check
