#include "check/shrink.hpp"

#include <vector>

namespace vp::check
{

namespace
{

std::vector<std::string>
splitLines(const std::string &source)
{
    std::vector<std::string> lines;
    std::string cur;
    for (const char c : source) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        lines.push_back(cur);
    return lines;
}

std::string
joinLines(const std::vector<std::string> &lines)
{
    std::string out;
    for (const auto &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

} // namespace

ShrinkResult
shrinkSource(const std::string &source,
             const ShrinkPredicate &still_fails,
             std::size_t max_attempts)
{
    std::vector<std::string> lines = splitLines(source);
    ShrinkResult res;
    res.originalLines = lines.size();

    // ddmin-lite: sweep with chunks of decreasing size. A successful
    // deletion restarts the sweep at the same chunk size (greedy);
    // only a full fruitless pass at size 1 terminates.
    std::size_t chunk = lines.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (res.attempts < max_attempts && !lines.empty()) {
        bool removed_any = false;
        for (std::size_t at = 0;
             at < lines.size() && res.attempts < max_attempts;) {
            const std::size_t len =
                std::min(chunk, lines.size() - at);
            std::vector<std::string> candidate;
            candidate.reserve(lines.size() - len);
            candidate.insert(candidate.end(), lines.begin(),
                             lines.begin() + static_cast<long>(at));
            candidate.insert(candidate.end(),
                             lines.begin() +
                                 static_cast<long>(at + len),
                             lines.end());
            ++res.attempts;
            if (still_fails(joinLines(candidate))) {
                lines = std::move(candidate);
                removed_any = true;
                // Do not advance: the next chunk slid into place.
            } else {
                at += len;
            }
        }
        if (!removed_any) {
            if (chunk == 1)
                break;
            chunk = (chunk + 1) / 2;
        }
    }

    res.source = joinLines(lines);
    res.finalLines = lines.size();
    return res;
}

} // namespace vp::check
