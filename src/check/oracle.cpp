#include "check/oracle.hpp"

namespace vp::check
{

void
OracleEntity::record(std::uint64_t value)
{
    ++counts[value];
    ++total;
    if (value == 0)
        ++zeros;
    if (hasLast && value == lastValue)
        ++lastHits;
    lastValue = value;
    hasLast = true;
}

std::uint64_t
OracleEntity::countFor(std::uint64_t value) const
{
    const auto it = counts.find(value);
    return it == counts.end() ? 0 : it->second;
}

std::uint64_t
OracleEntity::topCount() const
{
    std::uint64_t best = 0;
    for (const auto &[v, c] : counts)
        if (c > best)
            best = c;
    return best;
}

std::uint64_t
OracleEntity::topValue() const
{
    std::uint64_t best_value = 0, best_count = 0;
    bool first = true;
    for (const auto &[v, c] : counts) {
        if (first || c > best_count ||
            (c == best_count && v < best_value)) {
            best_value = v;
            best_count = c;
            first = false;
        }
    }
    return best_value;
}

double
OracleEntity::invTop() const
{
    return total ? static_cast<double>(topCount()) /
                       static_cast<double>(total)
                 : 0.0;
}

double
OracleEntity::lvp() const
{
    return total ? static_cast<double>(lastHits) /
                       static_cast<double>(total)
                 : 0.0;
}

double
OracleEntity::zeroFraction() const
{
    return total ? static_cast<double>(zeros) /
                       static_cast<double>(total)
                 : 0.0;
}

const OracleEntity *
OracleProfiler::entityFor(std::uint32_t pc) const
{
    const auto it = stats.find(pc);
    return it == stats.end() ? nullptr : &it->second;
}

} // namespace vp::check
