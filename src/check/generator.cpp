#include "check/generator.hpp"

#include <iterator>

#include "support/logging.hpp"
#include "support/strings.hpp"
#include "vpsim/assembler.hpp"

namespace vp::check
{

GenConfig
GenConfig::straightLine()
{
    GenConfig cfg;
    cfg.minProcs = 1;
    cfg.maxProcs = 1;
    cfg.minBlocks = 3;
    cfg.maxBlocks = 7;
    cfg.loopChance = 0.0;
    cfg.memChance = 0.0;
    cfg.callChance = 0.0;
    return cfg;
}

namespace
{

/** Registers the generator reads from (arguments + scratch). s0/s1
 *  are reserved: data base pointer and loop counter. */
const char *const source_regs[] = {"a0", "a1", "a2", "t0", "t1",
                                   "t2", "t3", "t4", "t5"};

/** Registers the generator writes to. Never s0/s1 (reserved), never
 *  zero; a0 is allowed so results feed the output. */
const char *const dest_regs[] = {"a0", "t0", "t1", "t2",
                                 "t3", "t4", "t5"};

const char *
anyReg(vp::Rng &rng)
{
    return source_regs[rng.below(std::size(source_regs))];
}

const char *
destReg(vp::Rng &rng)
{
    // Bias destinations toward scratch but allow a0 so the printed
    // result depends on the computation.
    return rng.chance(0.3) ? "a0"
                           : dest_regs[1 + rng.below(
                                 std::size(dest_regs) - 1)];
}

/** One random straight-line instruction (ALU or memory). */
void
emitInst(vp::Rng &rng, const GenConfig &cfg, std::string &body)
{
    if (cfg.memChance > 0.0 && rng.chance(cfg.memChance)) {
        // 8-aligned displacement into the data segment (s0 = &d0).
        const unsigned long long off =
            8ull * rng.below(cfg.dataWords);
        if (rng.chance(0.5))
            body += vp::format("    ld   %s, %llu(s0)\n", destReg(rng),
                               off);
        else
            body += vp::format("    st   %s, %llu(s0)\n", anyReg(rng),
                               off);
        return;
    }
    switch (rng.below(9)) {
      case 0:
        body += vp::format("    add  %s, %s, %s\n", destReg(rng),
                           anyReg(rng), anyReg(rng));
        break;
      case 1:
        body += vp::format("    sub  %s, %s, %s\n", destReg(rng),
                           anyReg(rng), anyReg(rng));
        break;
      case 2:
        body += vp::format("    mul  %s, %s, %s\n", destReg(rng),
                           anyReg(rng), anyReg(rng));
        break;
      case 3:
        body += vp::format("    xor  %s, %s, %s\n", destReg(rng),
                           anyReg(rng), anyReg(rng));
        break;
      case 4:
        body += vp::format("    and  %s, %s, %s\n", destReg(rng),
                           anyReg(rng), anyReg(rng));
        break;
      case 5:
        body += vp::format("    addi %s, %s, %lld\n", destReg(rng),
                           anyReg(rng),
                           static_cast<long long>(rng.range(-64, 64)));
        break;
      case 6:
        body += vp::format("    andi %s, %s, %llu\n", destReg(rng),
                           anyReg(rng),
                           static_cast<unsigned long long>(
                               rng.below(256)));
        break;
      case 7:
        body += vp::format("    slli %s, %s, %llu\n", destReg(rng),
                           anyReg(rng),
                           static_cast<unsigned long long>(
                               rng.below(8)));
        break;
      default:
        // Mostly small constants (invariant-friendly), occasionally a
        // full-width value so TNV tables see wide-value traffic too.
        if (rng.chance(0.15))
            body += vp::format("    li   %s, %lld\n", destReg(rng),
                               static_cast<long long>(rng.next()));
        else
            body += vp::format("    li   %s, %lld\n", destReg(rng),
                               static_cast<long long>(
                                   rng.range(-100, 100)));
        break;
    }
}

/**
 * Emit procedure f<index> of `num_procs`. Procedures may only call
 * strictly later ones, so the call graph is a DAG and termination
 * reduces to each body terminating. Depth `index` saves its return
 * address in s<2+index>, private to that depth by construction.
 */
void
emitProc(vp::Rng &rng, const GenConfig &cfg, unsigned index,
         unsigned num_procs, std::string &out)
{
    const unsigned num_blocks =
        cfg.minBlocks +
        static_cast<unsigned>(
            rng.below(cfg.maxBlocks - cfg.minBlocks + 1));
    const bool may_call =
        cfg.callChance > 0.0 && index + 1 < num_procs;

    out += vp::format("    .proc f%u args=3\nf%u:\n", index, index);
    if (may_call)
        out += vp::format("    mov  s%u, ra\n", 2 + index);
    if (cfg.memChance > 0.0)
        out += "    la   s0, d0\n";
    // Initialize scratch from the arguments: the ABI contract the
    // optimizer relies on is that scratch is dead across procedure
    // boundaries, so never read what the previous call left behind.
    out += "    mov  t0, a0\n"
           "    mov  t1, a1\n"
           "    mov  t2, a2\n"
           "    xor  t3, a0, a1\n"
           "    add  t4, a1, a2\n"
           "    li   t5, 17\n";

    for (unsigned b = 0; b < num_blocks; ++b) {
        out += vp::format("f%u_b%u:\n", index, b);
        const bool loop = cfg.loopChance > 0.0 &&
                          rng.chance(cfg.loopChance);
        if (loop) {
            out += vp::format(
                "    li   s1, %llu\nf%u_b%u_loop:\n",
                static_cast<unsigned long long>(
                    1 + rng.below(cfg.maxLoopTrip)),
                index, b);
        }
        const unsigned num_insts =
            cfg.minInstsPerBlock +
            static_cast<unsigned>(rng.below(
                cfg.maxInstsPerBlock - cfg.minInstsPerBlock + 1));
        for (unsigned i = 0; i < num_insts; ++i)
            emitInst(rng, cfg, out);
        if (loop) {
            // Exit on any non-positive counter: even if a callee
            // elsewhere clobbered s1, the loop still terminates.
            out += vp::format(
                "    addi s1, s1, -1\n"
                "    blt  zero, s1, f%u_b%u_loop\n",
                index, b);
        }
        // At most one call per block, outside the loop, so a whole
        // invocation makes at most num_blocks calls — the dynamic
        // instruction count stays polynomial in the config bounds.
        if (may_call && rng.chance(cfg.callChance)) {
            const unsigned callee =
                index + 1 +
                static_cast<unsigned>(
                    rng.below(num_procs - index - 1));
            out += vp::format("    call f%u\n", callee);
        }
        // Forward conditional branch to a strictly later block.
        if (b + 1 < num_blocks && rng.chance(0.7)) {
            const unsigned target =
                b + 1 +
                static_cast<unsigned>(rng.below(num_blocks - b - 1));
            static const char *const cond[] = {"beq", "bne", "blt",
                                               "bge"};
            out += vp::format("    %s  %s, %s, f%u_b%u\n",
                              cond[rng.below(4)], anyReg(rng),
                              anyReg(rng), index, target);
        }
    }
    if (may_call)
        out += vp::format("    mov  ra, s%u\n", 2 + index);
    out += "    ret\n    .endp\n";
}

} // namespace

std::string
generateSource(std::uint64_t seed, const GenConfig &cfg)
{
    vp_assert(cfg.maxProcs >= 1 && cfg.maxProcs <= 4 &&
                  cfg.minProcs >= 1 && cfg.minProcs <= cfg.maxProcs,
              "generator supports 1..4 procedures");
    vp_assert(cfg.minBlocks >= 1 && cfg.minBlocks <= cfg.maxBlocks,
              "bad block bounds");
    vp_assert(cfg.minInstsPerBlock >= 1 &&
                  cfg.minInstsPerBlock <= cfg.maxInstsPerBlock,
              "bad instruction bounds");
    vp_assert(cfg.dataWords >= 1, "data segment must be non-empty");
    vp_assert(cfg.maxLoopTrip >= 1, "loop trip bound must be positive");
    vp_assert(cfg.bindPhases >= 1, "bindPhases must be positive");

    vp::Rng rng(seed);
    const unsigned num_procs =
        cfg.minProcs + static_cast<unsigned>(rng.below(
                           cfg.maxProcs - cfg.minProcs + 1));

    std::string out = vp::format(
        "# generated by vp::check (seed %llu)\n",
        static_cast<unsigned long long>(seed));

    if (cfg.memChance > 0.0) {
        out += "    .data\nd0:     .word ";
        for (unsigned w = 0; w < cfg.dataWords; ++w) {
            out += vp::format(
                "%s%lld", w ? ", " : "",
                static_cast<long long>(rng.range(-1000, 1000)));
        }
        out += "\n    .text\n";
    }

    out += "    .proc main args=0\nmain:\n";
    for (unsigned c = 0; c < cfg.calls; ++c) {
        const long long a0 = rng.range(-50, 50);
        // The bound value steps to a new constant each phase (a no-op
        // at the default bindPhases = 1, keeping golden sources
        // byte-identical). The RNG draw order never changes.
        const long long phase = static_cast<long long>(
            static_cast<unsigned long long>(c) * cfg.bindPhases /
            cfg.calls);
        const long long a1 = rng.chance(cfg.bindChance)
                                 ? cfg.bindValue + 1001 * phase
                                 : rng.range(-50, 50);
        const long long a2 = rng.range(-50, 50);
        // Half of main's calls hit f0 (the procedure the specializer
        // fuzz binds), the rest spread over the chain.
        const unsigned callee =
            rng.chance(0.5)
                ? 0
                : static_cast<unsigned>(rng.below(num_procs));
        out += vp::format("    li   a0, %lld\n", a0);
        out += vp::format("    li   a1, %lld\n", a1);
        out += vp::format("    li   a2, %lld\n", a2);
        out += vp::format("    call f%u\n", callee);
        out += "    syscall puti\n";
        out += "    li   a0, 10\n    syscall putc\n";
    }
    out += "    li   a0, 0\n    syscall exit\n    .endp\n";

    for (unsigned p = 0; p < num_procs; ++p)
        emitProc(rng, cfg, p, num_procs, out);
    return out;
}

Generated
generate(std::uint64_t seed, const GenConfig &cfg)
{
    Generated gen;
    gen.seed = seed;
    gen.source = generateSource(seed, cfg);
    std::string err;
    if (!vpsim::tryAssemble(gen.source, gen.program, err))
        vp_panic("generated program (seed %llu) failed to assemble: "
                 "%s",
                 static_cast<unsigned long long>(seed), err.c_str());
    const std::string invalid = gen.program.validate();
    if (!invalid.empty())
        vp_panic("generated program (seed %llu) failed validation: "
                 "%s",
                 static_cast<unsigned long long>(seed),
                 invalid.c_str());
    return gen;
}

vpsim::Program
randomRawProgram(vp::Rng &rng, std::size_t min_insts,
                 std::size_t max_insts)
{
    vp_assert(min_insts >= 1 && min_insts <= max_insts,
              "bad raw-program size bounds");
    vpsim::Program prog;
    const std::size_t n =
        min_insts + rng.below(max_insts - min_insts + 1);
    for (std::size_t i = 0; i < n; ++i) {
        vpsim::Inst inst;
        inst.op = static_cast<vpsim::Opcode>(
            rng.below(static_cast<std::uint64_t>(
                vpsim::Opcode::NumOpcodes)));
        inst.rd = static_cast<std::uint8_t>(rng.below(vpsim::numRegs));
        inst.ra = static_cast<std::uint8_t>(rng.below(vpsim::numRegs));
        inst.rb = static_cast<std::uint8_t>(rng.below(vpsim::numRegs));
        if (vpsim::isControl(inst.op) &&
            inst.op != vpsim::Opcode::JALR) {
            inst.imm = static_cast<std::int64_t>(rng.below(n));
        } else if (inst.op == vpsim::Opcode::SYSCALL) {
            inst.imm = static_cast<std::int64_t>(rng.below(4));
        } else {
            inst.imm = static_cast<std::int64_t>(rng.next() >> 40);
        }
        prog.code.push_back(inst);
    }
    return prog;
}

std::string
mutateSource(vp::Rng &rng, std::string source, unsigned edits)
{
    for (unsigned e = 0; e < edits && !source.empty(); ++e) {
        const std::size_t pos = rng.below(source.size());
        switch (rng.below(3)) {
          case 0:
            source[pos] = static_cast<char>(rng.below(128));
            break;
          case 1:
            source.erase(pos, 1);
            break;
          default:
            source.insert(pos, 1,
                          static_cast<char>(32 + rng.below(95)));
            break;
        }
    }
    return source;
}

std::string
garbageSource(vp::Rng &rng, std::size_t max_len)
{
    std::string garbage;
    const std::size_t len = rng.below(max_len);
    garbage.reserve(len);
    for (std::size_t i = 0; i < len; ++i)
        garbage.push_back(static_cast<char>(rng.below(256)));
    return garbage;
}

} // namespace vp::check
