#include "check/seed.hpp"

#include <cstdlib>

#include "support/logging.hpp"
#include "support/strings.hpp"

namespace vp::check
{

std::uint64_t
testSeed(std::uint64_t fallback)
{
    const char *env = std::getenv("VP_TEST_SEED");
    if (!env || !*env)
        return fallback;
    std::int64_t parsed = 0;
    if (!vp::parseInt(env, parsed))
        vp_fatal("VP_TEST_SEED: '%s' is not a seed (use a decimal or "
                 "0x-hex 64-bit integer)",
                 env);
    return static_cast<std::uint64_t>(parsed);
}

std::string
seedMessage(std::uint64_t seed)
{
    return vp::format("re-run with VP_TEST_SEED=%llu to reproduce",
                      static_cast<unsigned long long>(seed));
}

std::uint64_t
trialSeed(std::uint64_t base, std::uint64_t index)
{
    // splitmix64 of (base + index): adjacent trial indices map to
    // statistically independent seeds, and trial i of --seed S equals
    // trial 0 of --seed S+i, so any trial replays as a one-trial run.
    std::uint64_t z = base + index;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace vp::check
