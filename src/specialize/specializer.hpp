/**
 * @file
 * Profile-guided code specialization (thesis chapter X).
 *
 * Given a procedure and a set of register->constant bindings (found by
 * the value/parameter profilers), the specializer:
 *
 *  1. clones the procedure body to the end of the program, remapping
 *     intra-procedure control flow;
 *  2. optimizes the clone with the bindings seeded as constants
 *     (constant folding, branch folding, ABI-based DCE, compaction);
 *  3. appends a guard block that tests each bound register against its
 *     profiled value, dispatching to the specialized clone on a full
 *     match and to the untouched original body otherwise — and then
 *     retargets every direct call site (including the clone's own
 *     recursive calls, whose arguments need not satisfy the bindings)
 *     at the guard.
 *
 * Because the guard re-tests on every call, the transformation is
 * semantically transparent whatever values arrive at run time — the
 * paper's requirement that specialization on *semi*-invariant values
 * must keep a general path. Indirect calls through function pointers
 * are not retargeted; they keep using the original body.
 */

#ifndef VP_SPECIALIZE_SPECIALIZER_HPP
#define VP_SPECIALIZE_SPECIALIZER_HPP

#include <string>
#include <vector>

#include "specialize/passes.hpp"
#include "vpsim/cpu.hpp"
#include "vpsim/program.hpp"

namespace specialize
{

/** Outcome of appending one guarded clone in place. */
struct GuardedClone
{
    std::uint32_t guardEntry = 0;       ///< first instruction of the guard
    std::uint32_t specializedEntry = 0; ///< entry of the optimized clone
    std::uint32_t specializedEnd = 0;   ///< one past the clone
    std::uint32_t guardLength = 0;      ///< instructions in the guard block
    PassStats stats;                    ///< optimization counters
};

/** Options for appendGuardedClone. */
struct CloneOptions
{
    /**
     * Rewrite every direct JAL to the procedure so it enters through
     * the guard (the offline transformation). The adaptive engine
     * turns this off and steers calls through the Cpu's redirect
     * table instead, which it can revert at run time.
     */
    bool retargetCalls = true;
    /**
     * Appended to the "$spec"/"$guard" procedure and label names.
     * Program::validate() rejects duplicate procedures, so online
     * re-specialization must pass a fresh suffix per generation.
     */
    std::string labelSuffix;
    /**
     * Assume the documented calling convention when eliminating dead
     * code in the clone (temporaries dead at procedure exit). The
     * offline CLI transformation keeps this on; the adaptive engine
     * turns it off, because a running guest is free to pass values to
     * its caller through scratch registers and the online clone must
     * stay architecturally transparent regardless.
     */
    bool assumeAbi = true;
};

/**
 * Append a guarded specialized clone of `proc_name` to `prog` in
 * place: steps 1–3 of the pipeline above, minus the call retargeting
 * when opts.retargetCalls is off. The original body is never touched,
 * and existing instructions keep their pcs — the property the online
 * engine relies on to grow a program mid-run. fatal() on an unknown/
 * empty procedure or invalid bindings.
 */
GuardedClone appendGuardedClone(vpsim::Program &prog,
                                const std::string &proc_name,
                                const std::vector<Binding> &bindings,
                                const CloneOptions &opts = {});

/** Outcome of specializing one procedure. */
struct SpecializeResult
{
    vpsim::Program program;          ///< the rewritten program
    std::uint32_t guardEntry = 0;    ///< first instruction of the guard
    std::uint32_t specializedEntry = 0; ///< entry of the optimized clone
    std::uint32_t specializedEnd = 0;   ///< one past the clone
    PassStats stats;                 ///< optimization counters
    std::uint32_t guardLength = 0;   ///< instructions in the guard block
};

/**
 * Specialize `proc_name` in `prog` under `bindings`.
 *
 * Bindings refer to register contents at procedure entry (argument
 * registers for parameter-profile-driven specialization). fatal() if
 * the procedure does not exist or has an empty body.
 */
SpecializeResult specializeProcedure(const vpsim::Program &prog,
                                     const std::string &proc_name,
                                     const std::vector<Binding> &bindings);

/** Dynamic-cost comparison of original vs specialized program. */
struct SpeedupReport
{
    std::uint64_t originalInsts = 0;
    std::uint64_t specializedInsts = 0;
    bool outputsMatch = false;

    /**
     * Guard dispatch counts, populated when compareRuns is given the
     * SpecializeResult: invocations is how often the guard block was
     * entered, hits how often every binding matched and control
     * reached the specialized clone.
     */
    std::uint64_t guardInvocations = 0;
    std::uint64_t guardHits = 0;

    std::uint64_t
    guardMisses() const
    {
        return guardInvocations - guardHits;
    }

    double
    speedup() const
    {
        return specializedInsts
                   ? static_cast<double>(originalInsts) /
                         static_cast<double>(specializedInsts)
                   : 0.0;
    }
};

/**
 * Run both programs with identical initial memory contents (prepared
 * by the caller via the two Cpus) and compare outputs and dynamic
 * instruction counts.
 *
 * When `spec` (the result that built the specialized program) is
 * given, the run also counts guard invocations and hits — exactly:
 * the guard's first instruction retires once per invocation and its
 * final jump retires only on a full binding match.
 */
SpeedupReport compareRuns(vpsim::Cpu &original, vpsim::Cpu &specialized,
                          const SpecializeResult *spec = nullptr);

} // namespace specialize

#endif // VP_SPECIALIZE_SPECIALIZER_HPP
