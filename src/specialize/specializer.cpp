#include "specialize/specializer.hpp"

#include "support/logging.hpp"
#include "support/stats_registry.hpp"

namespace specialize
{

using vpsim::Inst;
using vpsim::Opcode;

namespace
{

/**
 * Counts guard dispatches while the specialized program runs. The
 * guard block is only entered at its first instruction (every BNE in
 * it jumps *out*), so that pc retiring counts invocations exactly;
 * its final JMP retires only when every binding test passed, so that
 * pc counts hits exactly.
 */
class GuardWatch final : public vpsim::ExecListener
{
  public:
    GuardWatch(std::uint32_t guard_entry, std::uint32_t guard_length)
        : entryPc(guard_entry), jumpPc(guard_entry + guard_length - 1)
    {
    }

    void
    onInst(std::uint32_t pc, const Inst &, bool, std::uint64_t) override
    {
        if (pc == entryPc)
            ++invocations;
        else if (pc == jumpPc)
            ++hits;
    }

    std::uint64_t invocations = 0;
    std::uint64_t hits = 0;

  private:
    std::uint32_t entryPc;
    std::uint32_t jumpPc;
};

} // namespace

GuardedClone
appendGuardedClone(vpsim::Program &out, const std::string &proc_name,
                   const std::vector<Binding> &bindings,
                   const CloneOptions &opts)
{
    const vpsim::Procedure *proc = out.findProc(proc_name);
    if (!proc)
        vp_fatal("cannot specialize unknown procedure '%s'",
                 proc_name.c_str());
    if (proc->entry >= proc->end)
        vp_fatal("procedure '%s' has an empty body", proc_name.c_str());
    if (bindings.empty())
        vp_fatal("specializing '%s' with no bindings", proc_name.c_str());
    for (const auto &b : bindings) {
        if (b.reg == vpsim::regZero || b.reg >= vpsim::numRegs)
            vp_fatal("binding register r%u is not specializable", b.reg);
    }

    GuardedClone result;

    // ------------------------------------------------------------------
    // 1. Clone the body to the end of the program.
    //
    // Intra-procedure branches and plain jumps are remapped into the
    // clone. Calls (JAL) are deliberately NOT remapped, even
    // self-recursive ones: a recursive call's arguments need not
    // satisfy the bindings, so recursion must re-enter through the
    // guard, which step 3 arranges by retargeting every call to the
    // procedure.
    // ------------------------------------------------------------------
    // The Procedure pointer aims into out.procs, which step 4 grows;
    // copy what we need first.
    const std::uint32_t proc_entry = proc->entry;
    const std::uint32_t proc_end = proc->end;
    const unsigned proc_args = proc->numArgs;

    const auto clone_begin = static_cast<std::uint32_t>(out.code.size());
    const std::uint32_t body_len = proc_end - proc_entry;
    for (std::uint32_t pc = proc_entry; pc < proc_end; ++pc) {
        Inst inst = out.code[pc];
        if (vpsim::isControl(inst.op) && inst.op != Opcode::JALR &&
            inst.op != Opcode::JAL) {
            const auto target = static_cast<std::uint32_t>(inst.imm);
            if (target >= proc_entry && target < proc_end)
                inst.imm = clone_begin + (target - proc_entry);
        }
        out.code.push_back(inst);
    }

    // ------------------------------------------------------------------
    // 2. Optimize the clone under the bindings.
    // ------------------------------------------------------------------
    // The clone is single-entry: nothing outside jumps into it (jump
    // tables keep addressing the original body), so unreachable arms
    // cut off by branch folding can be deleted outright.
    result.stats = optimizeRegion(out, clone_begin,
                                  clone_begin + body_len, bindings,
                                  /*single_entry=*/true,
                                  /*conservative_exit=*/!opts.assumeAbi);
    const auto clone_end = static_cast<std::uint32_t>(out.code.size());

    // ------------------------------------------------------------------
    // 3. Append the guard and retarget call sites.
    //
    // The guard tests each bound register and falls back to the
    // untouched original entry on any mismatch. It clobbers only t9,
    // which the ABI leaves dead at procedure entry (temporaries are
    // caller-saved).
    // ------------------------------------------------------------------
    const auto guard_begin = static_cast<std::uint32_t>(out.code.size());
    for (const auto &b : bindings) {
        out.code.push_back(Inst{Opcode::LI, vpsim::regT0 + 9, 0, 0,
                                static_cast<std::int64_t>(b.value)});
        out.code.push_back(
            Inst{Opcode::BNE, 0, b.reg, vpsim::regT0 + 9,
                 static_cast<std::int64_t>(proc_entry)});
    }
    out.code.push_back(
        Inst{Opcode::JMP, 0, 0, 0,
             static_cast<std::int64_t>(clone_begin)});
    const auto guard_end = static_cast<std::uint32_t>(out.code.size());

    // Retarget every direct call to the procedure (the original code,
    // other procedures, the clone's own recursion). Indirect calls and
    // function-pointer tables keep reaching the original entry, which
    // stays fully functional.
    if (opts.retargetCalls) {
        for (std::uint32_t pc = 0; pc < guard_begin; ++pc) {
            Inst &inst = out.code[pc];
            if (inst.op == Opcode::JAL &&
                static_cast<std::uint32_t>(inst.imm) == proc_entry)
                inst.imm = guard_begin;
        }
    }

    // ------------------------------------------------------------------
    // 4. Bookkeeping: procedure records and labels for the new code.
    // ------------------------------------------------------------------
    vpsim::Procedure spec_proc;
    spec_proc.name = proc_name + "$spec" + opts.labelSuffix;
    spec_proc.entry = clone_begin;
    spec_proc.end = clone_end;
    spec_proc.numArgs = proc_args;
    out.procs.push_back(spec_proc);
    out.codeLabels[spec_proc.name] = clone_begin;
    out.codeLabels[proc_name + "$guard" + opts.labelSuffix] =
        guard_begin;

    result.guardEntry = guard_begin;
    result.specializedEntry = clone_begin;
    result.specializedEnd = clone_end;
    result.guardLength = guard_end - guard_begin;
    VP_STAT_INC(vp::stats::Cid::SpecializeGuardsEmitted);

    const std::string err = out.validate();
    if (!err.empty())
        vp_fatal("specialized program invalid: %s", err.c_str());
    return result;
}

SpecializeResult
specializeProcedure(const vpsim::Program &prog,
                    const std::string &proc_name,
                    const std::vector<Binding> &bindings)
{
    SpecializeResult result;
    result.program = prog;
    const GuardedClone clone =
        appendGuardedClone(result.program, proc_name, bindings);
    result.guardEntry = clone.guardEntry;
    result.specializedEntry = clone.specializedEntry;
    result.specializedEnd = clone.specializedEnd;
    result.guardLength = clone.guardLength;
    result.stats = clone.stats;
    return result;
}

SpeedupReport
compareRuns(vpsim::Cpu &original, vpsim::Cpu &specialized,
            const SpecializeResult *spec_info)
{
    SpeedupReport report;
    const vpsim::RunResult orig = original.run();

    GuardWatch watch(spec_info ? spec_info->guardEntry : 0,
                     spec_info ? spec_info->guardLength : 1);
    if (spec_info)
        specialized.addListener(&watch);
    const vpsim::RunResult spec = specialized.run();
    if (spec_info) {
        specialized.removeListener(&watch);
        report.guardInvocations = watch.invocations;
        report.guardHits = watch.hits;
        VP_STAT_ADD(vp::stats::Cid::SpecializeGuardHits, watch.hits);
        VP_STAT_ADD(vp::stats::Cid::SpecializeGuardMisses,
                    watch.invocations - watch.hits);
    }

    report.originalInsts = orig.dynamicInsts;
    report.specializedInsts = spec.dynamicInsts;
    report.outputsMatch = orig.exited() && spec.exited() &&
                          orig.exitCode == spec.exitCode &&
                          original.output() == specialized.output();
    return report;
}

} // namespace specialize
