#include "specialize/purity.hpp"

#include "support/logging.hpp"

namespace specialize
{

using vpsim::Inst;
using vpsim::Opcode;

const char *
purityName(Purity purity)
{
    switch (purity) {
      case Purity::Pure: return "pure";
      case Purity::HasLoad: return "loads memory";
      case Purity::HasStore: return "stores memory";
      case Purity::HasSyscall: return "makes syscalls";
      case Purity::HasComputedJump: return "computed jump";
      case Purity::CallsImpure: return "calls impure";
      case Purity::EscapesBody: return "escapes body";
      default: vp_panic("bad purity %d", static_cast<int>(purity));
    }
}

PurityAnalysis::PurityAnalysis(const vpsim::Program &prog)
{
    // Pass 1: local verdicts, treating every call as potentially pure.
    struct Local
    {
        Purity purity = Purity::Pure;
        std::vector<const vpsim::Procedure *> callees;
    };
    std::unordered_map<std::string, Local> locals;

    for (const auto &proc : prog.procs) {
        Local local;
        for (std::uint32_t pc = proc.entry;
             pc < proc.end && local.purity == Purity::Pure; ++pc) {
            const Inst &inst = prog.code[pc];
            if (vpsim::isLoad(inst.op)) {
                local.purity = Purity::HasLoad;
            } else if (vpsim::isStore(inst.op)) {
                local.purity = Purity::HasStore;
            } else if (inst.op == Opcode::SYSCALL) {
                local.purity = Purity::HasSyscall;
            } else if (inst.op == Opcode::JALR) {
                // A non-linking JALR through ra is a return; anything
                // else is a computed jump or indirect call.
                if (!(inst.rd == vpsim::regZero &&
                      inst.ra == vpsim::regRa))
                    local.purity = Purity::HasComputedJump;
            } else if (inst.op == Opcode::JAL) {
                const auto target =
                    static_cast<std::uint32_t>(inst.imm);
                const vpsim::Procedure *callee =
                    prog.procContaining(target);
                if (!callee || callee->entry != target)
                    local.purity = Purity::EscapesBody;
                else
                    local.callees.push_back(callee);
            } else if (vpsim::isControl(inst.op)) {
                const auto target =
                    static_cast<std::uint32_t>(inst.imm);
                if (target < proc.entry || target >= proc.end)
                    local.purity = Purity::EscapesBody;
            }
        }
        locals[proc.name] = std::move(local);
        verdicts[proc.name] = locals[proc.name].purity;
    }

    // Pass 2: propagate impurity through calls to fixpoint.
    bool changed = true;
    while (changed) {
        changed = false;
        for (const auto &proc : prog.procs) {
            Purity &verdict = verdicts[proc.name];
            if (verdict != Purity::Pure)
                continue;
            for (const auto *callee : locals[proc.name].callees) {
                if (verdicts[callee->name] != Purity::Pure) {
                    verdict = Purity::CallsImpure;
                    changed = true;
                    break;
                }
            }
        }
    }
}

Purity
PurityAnalysis::verdict(const std::string &proc_name) const
{
    auto it = verdicts.find(proc_name);
    return it == verdicts.end() ? Purity::EscapesBody : it->second;
}

} // namespace specialize
