/**
 * @file
 * Optimization passes used by the profile-guided specializer: sparse
 * constant propagation/folding (seeded with profiled values), branch
 * folding, ABI-based liveness with dead-code elimination, and NOP
 * compaction. All passes operate on a contiguous instruction region —
 * in practice the freshly-cloned copy of the procedure being
 * specialized — and keep indices stable except compactNops(), which is
 * only safe on a region nothing external jumps into (other than its
 * entry, which it remaps for the caller).
 */

#ifndef VP_SPECIALIZE_PASSES_HPP
#define VP_SPECIALIZE_PASSES_HPP

#include <cstdint>
#include <vector>

#include "vpsim/program.hpp"

namespace specialize
{

/** A register known to hold a constant at region entry. */
struct Binding
{
    std::uint8_t reg = 0;
    std::uint64_t value = 0;
};

/** Counters reported by the rewriting passes. */
struct PassStats
{
    unsigned foldedToConst = 0;   ///< instructions rewritten to LI
    unsigned immediated = 0;      ///< reg-reg ops rewritten to reg-imm
    unsigned branchesFolded = 0;  ///< conditional branches decided
    unsigned removedDead = 0;     ///< instructions NOPed by DCE
    unsigned nopsCompacted = 0;   ///< NOPs deleted by compaction

    unsigned
    total() const
    {
        return foldedToConst + immediated + branchesFolded +
               removedDead + nopsCompacted;
    }
};

/**
 * Constant propagation + folding over [begin, end) of prog.
 *
 * Seeds the region entry with `bindings` (and r0 = 0 everywhere),
 * runs a forward dataflow to fixpoint, then rewrites:
 *  - pure computations with fully-known inputs  -> LI rd, value
 *  - reg-reg ALU ops with one known input       -> immediate form
 *  - conditional branches with a known outcome  -> JMP or NOP
 *
 * Calls (JAL, linking JALR) conservatively invalidate every register
 * except sp. Loads always produce unknown values (memory is not
 * tracked). Computed jumps (non-linking JALR) end constant tracking
 * for their block.
 */
PassStats constantFold(vpsim::Program &prog, std::uint32_t begin,
                       std::uint32_t end,
                       const std::vector<Binding> &bindings);

/**
 * Dead-code elimination over [begin, end).
 *
 * Backward liveness under the documented ABI: at region exits
 * (returns, jumps leaving the region, falling off the end) the
 * caller-visible registers {a0-a5, s0-s7, gp, sp, fp, ra} are live and
 * temporaries are dead. Pure computations whose destination is dead
 * are replaced with NOP.
 *
 * With `conservative_exit` every register is live at region exits: the
 * ABI assumption is dropped entirely. Required whenever the code being
 * specialized is not known to follow the convention — a running guest
 * may pass values to its caller through scratch registers, and the
 * online adaptive engine must stay architecturally transparent on such
 * programs (the `adapt` differential checker found exactly this).
 */
PassStats deadCodeEliminate(vpsim::Program &prog, std::uint32_t begin,
                            std::uint32_t end,
                            bool conservative_exit = false);

/**
 * Replace instructions unreachable from the region entry (via static
 * control flow) with NOPs. Only sound for single-entry regions that
 * nothing jumps into from outside and that contain no computed-jump
 * *targets* — true for freshly cloned procedure bodies, whose interior
 * cannot be addressed by jump tables (those keep pointing at the
 * original code). Branch folding creates exactly such dead arms.
 */
PassStats removeUnreachable(vpsim::Program &prog, std::uint32_t begin,
                            std::uint32_t end);

/**
 * Delete NOPs from [begin, end), shifting the tail of the region and
 * remapping all control-flow targets that point into it (from inside
 * and outside the region). Also rewrites prog.procs/codeLabels and
 * shrinks prog.code. Only correct when nothing jumps into the interior
 * of the compacted region from outside — true for freshly appended
 * clones. Returns the number of instructions removed.
 */
PassStats compactNops(vpsim::Program &prog, std::uint32_t begin,
                      std::uint32_t end);

/**
 * Run constantFold + deadCodeEliminate (iterated to fixpoint), then —
 * when `single_entry` asserts the region is a fresh clone nothing
 * external jumps into — removeUnreachable, and finally compactNops.
 * The convenience used by the Specializer.
 */
PassStats optimizeRegion(vpsim::Program &prog, std::uint32_t begin,
                         std::uint32_t end,
                         const std::vector<Binding> &bindings,
                         bool single_entry = false,
                         bool conservative_exit = false);

} // namespace specialize

#endif // VP_SPECIALIZE_PASSES_HPP
