/**
 * @file
 * Static purity analysis over procedures.
 *
 * A procedure is *pure* when its result depends only on its register
 * arguments and it has no side effects: no stores, no syscalls, no
 * computed jumps, no loads (memory may change between calls), and
 * only calls to procedures already known pure. Pure procedures are
 * the legal targets for memoization (Richardson [32], thesis §IV.C.4)
 * and can be constant-folded away entirely when all arguments are
 * profiled invariant.
 *
 * The analysis is a fixpoint over the call graph: procedures start
 * optimistically pure and are demoted by offending instructions or by
 * calling an impure/unknown target.
 */

#ifndef VP_SPECIALIZE_PURITY_HPP
#define VP_SPECIALIZE_PURITY_HPP

#include <string>
#include <unordered_map>

#include "vpsim/program.hpp"

namespace specialize
{

/** Why a procedure is impure (Pure if none). */
enum class Purity
{
    Pure,
    HasLoad,
    HasStore,
    HasSyscall,
    HasComputedJump,
    CallsImpure,
    EscapesBody,  ///< branches outside its own range
};

/** Printable name for a purity verdict. */
const char *purityName(Purity purity);

/** Per-procedure purity verdicts for a whole program. */
class PurityAnalysis
{
  public:
    explicit PurityAnalysis(const vpsim::Program &prog);

    /** Verdict for a procedure (EscapesBody if unknown name). */
    Purity verdict(const std::string &proc_name) const;

    bool
    isPure(const std::string &proc_name) const
    {
        return verdict(proc_name) == Purity::Pure;
    }

    const std::unordered_map<std::string, Purity> &
    all() const
    {
        return verdicts;
    }

  private:
    std::unordered_map<std::string, Purity> verdicts;
};

} // namespace specialize

#endif // VP_SPECIALIZE_PURITY_HPP
