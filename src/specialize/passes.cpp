#include "specialize/passes.hpp"

#include <algorithm>
#include <deque>

#include "support/logging.hpp"
#include "vpsim/cfg.hpp"
#include "vpsim/eval.hpp"

namespace specialize
{

using vpsim::Inst;
using vpsim::Opcode;

namespace
{

// ---------------------------------------------------------------------
// Constant lattice
// ---------------------------------------------------------------------

/** Lattice value for one register. */
struct Lat
{
    enum Kind : std::uint8_t { Unknown, Const, Varying };
    Kind kind = Unknown;
    std::uint64_t value = 0;

    static Lat varying() { return {Varying, 0}; }
    static Lat constant(std::uint64_t v) { return {Const, v}; }

    bool
    operator==(const Lat &o) const
    {
        return kind == o.kind && (kind != Const || value == o.value);
    }
};

/** Register-file abstract state. */
struct RegState
{
    Lat regs[vpsim::numRegs];

    bool
    meetWith(const RegState &other)
    {
        bool changed = false;
        for (unsigned r = 0; r < vpsim::numRegs; ++r) {
            Lat &mine = regs[r];
            const Lat &theirs = other.regs[r];
            Lat merged = mine;
            if (mine.kind == Lat::Unknown)
                merged = theirs;
            else if (theirs.kind == Lat::Unknown)
                merged = mine;
            else if (mine.kind == Lat::Const &&
                     theirs.kind == Lat::Const &&
                     mine.value == theirs.value)
                merged = mine;
            else
                merged = Lat::varying();
            if (!(merged == mine)) {
                mine = merged;
                changed = true;
            }
        }
        return changed;
    }
};

/** True when the opcode reads inst.ra as a register operand. */
bool
readsRa(Opcode op)
{
    switch (op) {
      case Opcode::LI:
      case Opcode::JMP:
      case Opcode::JAL:
      case Opcode::SYSCALL:
      case Opcode::NOP:
        return false;
      default:
        return true;
    }
}

/** True when the opcode reads inst.rb as a register operand. */
bool
readsRb(Opcode op)
{
    switch (vpsim::opcodeClass(op)) {
      case vpsim::InstClass::Store:
      case vpsim::InstClass::Branch:
        return true;
      default:
        break;
    }
    switch (op) {
      case Opcode::ADD: case Opcode::SUB: case Opcode::MUL:
      case Opcode::DIV: case Opcode::REM: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SLL:
      case Opcode::SRL: case Opcode::SRA: case Opcode::SLT:
      case Opcode::SLTU: case Opcode::SEQ: case Opcode::SNE:
        return true;
      default:
        return false;
    }
}

/** True for call-like instructions (clobber the world, minus sp). */
bool
isCall(const Inst &inst)
{
    return inst.op == Opcode::JAL ||
           (inst.op == Opcode::JALR && inst.rd != vpsim::regZero);
}

Lat
readReg(const RegState &st, unsigned r)
{
    if (r == vpsim::regZero)
        return Lat::constant(0);
    return st.regs[r];
}

/** Abstract transfer of one instruction. */
void
transfer(const Inst &inst, RegState &st)
{
    if (isCall(inst)) {
        // ABI: a call may clobber anything except the stack pointer
        // (which every procedure in this repository restores).
        for (unsigned r = 0; r < vpsim::numRegs; ++r)
            if (r != vpsim::regSp && r != vpsim::regZero)
                st.regs[r] = Lat::varying();
        return;
    }
    if (!vpsim::writesDest(inst))
        return;
    Lat result = Lat::varying();
    if (vpsim::isPureCompute(inst.op)) {
        const Lat va = readReg(st, inst.ra);
        const Lat vb = readReg(st, inst.rb);
        const bool need_a = readsRa(inst.op);
        const bool need_b = readsRb(inst.op);
        if ((!need_a || va.kind == Lat::Const) &&
            (!need_b || vb.kind == Lat::Const)) {
            std::uint64_t out = 0;
            if (vpsim::evalPure(inst, va.value, vb.value, out))
                result = Lat::constant(out);
        }
    }
    st.regs[inst.rd] = result;
}

/** Immediate-form twin of a reg-reg ALU opcode (NOP if none). */
Opcode
immediateForm(Opcode op)
{
    switch (op) {
      case Opcode::ADD: return Opcode::ADDI;
      case Opcode::MUL: return Opcode::MULI;
      case Opcode::AND: return Opcode::ANDI;
      case Opcode::OR: return Opcode::ORI;
      case Opcode::XOR: return Opcode::XORI;
      case Opcode::SLL: return Opcode::SLLI;
      case Opcode::SRL: return Opcode::SRLI;
      case Opcode::SRA: return Opcode::SRAI;
      case Opcode::SLT: return Opcode::SLTI;
      case Opcode::SEQ: return Opcode::SEQI;
      case Opcode::SNE: return Opcode::SNEI;
      default: return Opcode::NOP;
    }
}

bool
isCommutative(Opcode op)
{
    switch (op) {
      case Opcode::ADD: case Opcode::MUL: case Opcode::AND:
      case Opcode::OR: case Opcode::XOR: case Opcode::SEQ:
      case Opcode::SNE:
        return true;
      default:
        return false;
    }
}

} // namespace

// ---------------------------------------------------------------------
// Constant propagation + folding
// ---------------------------------------------------------------------

PassStats
constantFold(vpsim::Program &prog, std::uint32_t begin, std::uint32_t end,
             const std::vector<Binding> &bindings)
{
    PassStats stats;
    if (begin >= end)
        return stats;
    const vpsim::Cfg cfg(prog, begin, end);
    const auto &blocks = cfg.blocks();

    // Dataflow to fixpoint over block entry states.
    std::vector<RegState> in(blocks.size());
    RegState entry;
    for (auto &lat : entry.regs)
        lat = Lat::varying();
    for (const auto &b : bindings) {
        vp_assert(b.reg < vpsim::numRegs, "bad binding register %u",
                  b.reg);
        entry.regs[b.reg] = Lat::constant(b.value);
    }
    const std::uint32_t entry_block = cfg.blockOf(begin);
    in[entry_block] = entry;

    std::deque<std::uint32_t> work;
    std::vector<bool> queued(blocks.size(), false);
    work.push_back(entry_block);
    queued[entry_block] = true;
    while (!work.empty()) {
        const std::uint32_t id = work.front();
        work.pop_front();
        queued[id] = false;
        RegState st = in[id];
        for (std::uint32_t pc = blocks[id].begin; pc < blocks[id].end;
             ++pc)
            transfer(prog.code[pc], st);
        for (std::uint32_t succ : blocks[id].succs) {
            if (in[succ].meetWith(st) && !queued[succ]) {
                work.push_back(succ);
                queued[succ] = true;
            }
        }
    }

    // Rewrite walk: recompute states per instruction inside each block.
    for (std::uint32_t id = 0; id < blocks.size(); ++id) {
        // Unreached blocks keep Unknown states; skip them (they are
        // dead anyway and folding on Unknown would be unsound).
        bool reached = id == entry_block;
        if (!reached) {
            for (unsigned r = 1; r < vpsim::numRegs && !reached; ++r)
                reached = in[id].regs[r].kind != Lat::Unknown;
        }
        if (!reached)
            continue;
        RegState st = in[id];
        for (std::uint32_t pc = blocks[id].begin; pc < blocks[id].end;
             ++pc) {
            Inst &inst = prog.code[pc];
            const Lat va = readReg(st, inst.ra);
            const Lat vb = readReg(st, inst.rb);

            if (vpsim::isCondBranch(inst.op) &&
                va.kind == Lat::Const && vb.kind == Lat::Const) {
                bool taken = false;
                const bool ok = vpsim::evalBranch(inst.op, va.value,
                                                  vb.value, taken);
                vp_assert(ok, "branch eval failed");
                inst = taken ? Inst{Opcode::JMP, 0, 0, 0, inst.imm}
                             : Inst{Opcode::NOP, 0, 0, 0, 0};
                ++stats.branchesFolded;
                transfer(inst, st);
                continue;
            }

            if (vpsim::isPureCompute(inst.op) &&
                inst.rd != vpsim::regZero) {
                const bool need_a = readsRa(inst.op);
                const bool need_b = readsRb(inst.op);
                std::uint64_t out = 0;
                if ((!need_a || va.kind == Lat::Const) &&
                    (!need_b || vb.kind == Lat::Const) &&
                    vpsim::evalPure(inst, va.value, vb.value, out)) {
                    if (inst.op != Opcode::LI) {
                        inst = Inst{Opcode::LI, inst.rd, 0, 0,
                                    static_cast<std::int64_t>(out)};
                        ++stats.foldedToConst;
                    }
                } else if (need_a && need_b) {
                    // One known operand: prefer an immediate form.
                    Lat known = vb;
                    bool known_is_b = true;
                    if (known.kind != Lat::Const &&
                        isCommutative(inst.op)) {
                        known = va;
                        known_is_b = false;
                    }
                    const Opcode imm_op = immediateForm(inst.op);
                    if (known.kind == Lat::Const &&
                        imm_op != Opcode::NOP &&
                        !(inst.op == Opcode::SLT && !known_is_b)) {
                        const std::uint8_t src =
                            known_is_b ? inst.ra : inst.rb;
                        inst = Inst{imm_op, inst.rd, src, 0,
                                    static_cast<std::int64_t>(
                                        known.value)};
                        ++stats.immediated;
                    } else if (inst.op == Opcode::SUB &&
                               vb.kind == Lat::Const) {
                        inst = Inst{Opcode::ADDI, inst.rd, inst.ra, 0,
                                    -static_cast<std::int64_t>(
                                        vb.value)};
                        ++stats.immediated;
                    }
                }
            }
            transfer(prog.code[pc], st);
        }
    }
    return stats;
}

// ---------------------------------------------------------------------
// Liveness + dead-code elimination
// ---------------------------------------------------------------------

namespace
{

using LiveSet = std::uint32_t; // bit per register

constexpr LiveSet
bit(unsigned r)
{
    return LiveSet(1) << r;
}

/** Registers the caller may observe after the region exits. */
LiveSet
exitLiveSet()
{
    LiveSet s = 0;
    for (unsigned r = vpsim::regA0; r <= vpsim::regA5; ++r)
        s |= bit(r);
    for (unsigned r = vpsim::regS0; r < vpsim::regGp; ++r)
        s |= bit(r);
    s |= bit(vpsim::regGp) | bit(vpsim::regSp) | bit(vpsim::regFp) |
         bit(vpsim::regRa);
    return s;
}

/** Caller-saved registers a call may clobber. */
LiveSet
callClobberSet()
{
    LiveSet s = bit(vpsim::regRa);
    for (unsigned r = vpsim::regA0; r <= vpsim::regA5; ++r)
        s |= bit(r);
    for (unsigned r = vpsim::regT0; r < vpsim::regS0; ++r)
        s |= bit(r);
    return s;
}

/** use/def sets of one instruction for liveness purposes. */
void
useDef(const Inst &inst, LiveSet &use, LiveSet &def)
{
    use = def = 0;
    if (isCall(inst)) {
        // The callee reads its arguments and everything it is required
        // to preserve; it clobbers the caller-saved set.
        use = exitLiveSet() & ~bit(vpsim::regRa);
        if (inst.op == Opcode::JALR)
            use |= bit(inst.ra);
        def = callClobberSet() | bit(inst.rd);
        return;
    }
    if (readsRa(inst.op))
        use |= bit(inst.ra);
    if (readsRb(inst.op))
        use |= bit(inst.rb);
    if (inst.op == Opcode::SYSCALL)
        use |= bit(vpsim::regA0);
    if (vpsim::writesDest(inst))
        def |= bit(inst.rd);
}

} // namespace

PassStats
deadCodeEliminate(vpsim::Program &prog, std::uint32_t begin,
                  std::uint32_t end, bool conservative_exit)
{
    PassStats stats;
    if (begin >= end)
        return stats;
    const vpsim::Cfg cfg(prog, begin, end);
    const auto &blocks = cfg.blocks();
    const LiveSet all_live = ~LiveSet(0);
    const LiveSet exit_live =
        conservative_exit ? all_live : exitLiveSet();

    // Backward liveness to fixpoint at block granularity.
    std::vector<LiveSet> live_in(blocks.size(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::size_t i = blocks.size(); i-- > 0;) {
            const auto &bb = blocks[i];
            const Inst &last = prog.code[bb.end - 1];
            LiveSet live = exit_live;
            if (last.op == Opcode::JALR &&
                last.rd == vpsim::regZero &&
                last.ra != vpsim::regRa) {
                // Computed jump: be fully conservative.
                live = all_live;
            }
            for (std::uint32_t succ : bb.succs)
                live |= live_in[succ];
            for (std::uint32_t pc = bb.end; pc-- > bb.begin;) {
                LiveSet use = 0, def = 0;
                useDef(prog.code[pc], use, def);
                live = (live & ~def) | use;
            }
            if (live != live_in[i]) {
                live_in[i] = live;
                changed = true;
            }
        }
    }

    // Removal walk: recompute per-instruction live-out backwards.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        const auto &bb = blocks[i];
        const Inst &last = prog.code[bb.end - 1];
        LiveSet live = exit_live;
        if (last.op == Opcode::JALR && last.rd == vpsim::regZero &&
            last.ra != vpsim::regRa)
            live = all_live;
        for (std::uint32_t succ : bb.succs)
            live |= live_in[succ];
        for (std::uint32_t pc = bb.end; pc-- > bb.begin;) {
            Inst &inst = prog.code[pc];
            if (vpsim::isPureCompute(inst.op) &&
                inst.rd != vpsim::regZero &&
                (live & bit(inst.rd)) == 0) {
                inst = Inst{Opcode::NOP, 0, 0, 0, 0};
                ++stats.removedDead;
                continue; // a NOP neither uses nor defines
            }
            LiveSet use = 0, def = 0;
            useDef(inst, use, def);
            live = (live & ~def) | use;
        }
    }
    return stats;
}

// ---------------------------------------------------------------------
// Unreachable-code elimination (single-entry regions only)
// ---------------------------------------------------------------------

PassStats
removeUnreachable(vpsim::Program &prog, std::uint32_t begin,
                  std::uint32_t end)
{
    PassStats stats;
    if (begin >= end)
        return stats;
    const vpsim::Cfg cfg(prog, begin, end);
    const auto &blocks = cfg.blocks();

    std::vector<bool> reachable(blocks.size(), false);
    std::vector<std::uint32_t> work{cfg.blockOf(begin)};
    reachable[work.front()] = true;
    while (!work.empty()) {
        const std::uint32_t id = work.back();
        work.pop_back();
        for (std::uint32_t succ : blocks[id].succs) {
            if (!reachable[succ]) {
                reachable[succ] = true;
                work.push_back(succ);
            }
        }
    }

    for (std::uint32_t id = 0; id < blocks.size(); ++id) {
        if (reachable[id])
            continue;
        for (std::uint32_t pc = blocks[id].begin; pc < blocks[id].end;
             ++pc) {
            if (prog.code[pc].op != Opcode::NOP) {
                prog.code[pc] = Inst{Opcode::NOP, 0, 0, 0, 0};
                ++stats.removedDead;
            }
        }
    }
    return stats;
}

// ---------------------------------------------------------------------
// NOP compaction
// ---------------------------------------------------------------------

PassStats
compactNops(vpsim::Program &prog, std::uint32_t begin, std::uint32_t end)
{
    PassStats stats;
    vp_assert(begin <= end && end <= prog.code.size(),
              "bad region [%u,%u)", begin, end);

    // survivors_before[i]: surviving region instructions before index
    // begin+i; plus a final entry for "all of them".
    std::vector<std::uint32_t> survivors_before(end - begin + 1, 0);
    std::uint32_t kept = 0;
    for (std::uint32_t pc = begin; pc < end; ++pc) {
        survivors_before[pc - begin] = kept;
        if (prog.code[pc].op != Opcode::NOP)
            ++kept;
    }
    survivors_before[end - begin] = kept;
    const std::uint32_t removed = (end - begin) - kept;
    if (removed == 0)
        return stats;
    stats.nopsCompacted = removed;

    auto remap = [&](std::int64_t target) -> std::int64_t {
        const auto t = static_cast<std::uint64_t>(target);
        if (t < begin)
            return target;
        if (t >= end)
            return target - removed;
        // Targets that landed on a removed NOP slide to the next
        // surviving instruction.
        return static_cast<std::int64_t>(begin +
                                         survivors_before[t - begin]);
    };

    // Rewrite control-flow targets program-wide (before moving code).
    for (auto &inst : prog.code) {
        if (vpsim::isControl(inst.op) && inst.op != Opcode::JALR)
            inst.imm = remap(inst.imm);
    }

    // Compact the instruction vector.
    std::vector<Inst> code;
    code.reserve(prog.code.size() - removed);
    for (std::uint32_t pc = 0; pc < prog.code.size(); ++pc) {
        if (pc >= begin && pc < end && prog.code[pc].op == Opcode::NOP)
            continue;
        code.push_back(prog.code[pc]);
    }
    prog.code = std::move(code);

    // Fix symbol tables, procedures, and the entry point.
    for (auto &[name, idx] : prog.codeLabels)
        idx = static_cast<std::uint32_t>(remap(idx));
    for (auto &proc : prog.procs) {
        proc.entry = static_cast<std::uint32_t>(remap(proc.entry));
        // `end` is one-past: remap as an exclusive bound.
        proc.end = static_cast<std::uint32_t>(
            proc.end >= end ? proc.end - removed
            : proc.end <= begin
                ? proc.end
                : begin + survivors_before[proc.end - begin]);
    }
    prog.entryPoint = static_cast<std::uint32_t>(remap(prog.entryPoint));
    return stats;
}

PassStats
optimizeRegion(vpsim::Program &prog, std::uint32_t begin,
               std::uint32_t end, const std::vector<Binding> &bindings,
               bool single_entry, bool conservative_exit)
{
    PassStats total;
    for (int iter = 0; iter < 10; ++iter) {
        const PassStats cf = constantFold(prog, begin, end, bindings);
        const PassStats dce =
            deadCodeEliminate(prog, begin, end, conservative_exit);
        total.foldedToConst += cf.foldedToConst;
        total.immediated += cf.immediated;
        total.branchesFolded += cf.branchesFolded;
        total.removedDead += dce.removedDead;
        if (cf.total() + dce.total() == 0)
            break;
    }
    if (single_entry)
        total.removedDead +=
            removeUnreachable(prog, begin, end).removedDead;
    const PassStats compact = compactNops(prog, begin, end);
    total.nopsCompacted = compact.nopsCompacted;
    return total;
}

} // namespace specialize
