/**
 * @file
 * "matmul" workload — integer matrix multiply with a post-scale
 * procedure, standing in for dense numeric kernels. scale()'s factor
 * argument comes from a data-segment word that stays fixed for the
 * whole run — a perfectly semi-invariant parameter, and the repo's
 * showcase target for profile-guided code specialization (E12): with
 * the factor known, scale()'s multiply/divide/branch chain folds to
 * almost nothing.
 */

#include "workloads/workload.hpp"

#include "support/rng.hpp"
#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const matmulAsm = R"(
# matmul: C = scale(A x B), integer
    .data
dim:         .word 0
repeats:     .word 0
scale_rounds: .word 0
factor:      .word 0
mat_a:       .space 8192           # dim*dim words
mat_b:       .space 8192
mat_c:       .space 8192

    .text
    .proc main args=0
main:
    addi sp, sp, -16
    st   ra, 0(sp)
    st   s0, 8(sp)
    la   t0, repeats
    ld   s0, 0(t0)
    li   s5, 0                 # checksum accumulator
mm_pass:
    beqz s0, mm_all_done
    call multiply
    la   t0, scale_rounds
    ld   s6, 0(t0)
scale_pass:
    beqz s6, scales_done
    call scale_matrix
    addi s6, s6, -1
    jmp  scale_pass
scales_done:
    call mat_checksum          # a0 = checksum of C
    add  s5, s5, a0
    addi s0, s0, -1
    jmp  mm_pass
mm_all_done:
    mov  a0, s5
    syscall puti
    li   a0, 0
    ld   s0, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 16
    syscall exit
    .endp

# multiply: C = A x B (all dim x dim, row major)
    .proc multiply args=0
multiply:
    la   t9, dim
    ld   t9, 0(t9)
    li   s1, 0                 # i
mul_i:
    bge  s1, t9, mul_done
    li   s2, 0                 # j
mul_j:
    bge  s2, t9, mul_i_next
    li   t6, 0                 # acc
    li   s3, 0                 # k
mul_k:
    bge  s3, t9, mul_k_done
    mul  t0, s1, t9
    add  t0, t0, s3
    slli t0, t0, 3
    la   t1, mat_a
    add  t1, t1, t0
    ld   t2, 0(t1)             # A[i][k]
    mul  t0, s3, t9
    add  t0, t0, s2
    slli t0, t0, 3
    la   t1, mat_b
    add  t1, t1, t0
    ld   t3, 0(t1)             # B[k][j]
    mul  t4, t2, t3
    add  t6, t6, t4
    addi s3, s3, 1
    jmp  mul_k
mul_k_done:
    mul  t0, s1, t9
    add  t0, t0, s2
    slli t0, t0, 3
    la   t1, mat_c
    add  t1, t1, t0
    st   t6, 0(t1)
    addi s2, s2, 1
    jmp  mul_j
mul_i_next:
    addi s1, s1, 1
    jmp  mul_i
mul_done:
    ret
    .endp

# scale_matrix: C[i] = scale(C[i], factor) for all elements
    .proc scale_matrix args=0
scale_matrix:
    addi sp, sp, -8
    st   ra, 0(sp)
    la   t9, dim
    ld   t9, 0(t9)
    mul  s1, t9, t9            # element count
    li   s2, 0                 # index
    la   s3, mat_c
    la   t0, factor
    ld   s4, 0(t0)             # semi-invariant factor
sm_loop:
    bge  s2, s1, sm_done
    slli t1, s2, 3
    add  t1, s3, t1
    ld   a0, 0(t1)
    mov  a1, s4
    call scale                 # a0 = scaled value
    slli t1, s2, 3
    add  t1, s3, t1
    st   a0, 0(t1)
    addi s2, s2, 1
    jmp  sm_loop
sm_done:
    ld   ra, 0(sp)
    addi sp, sp, 8
    ret
    .endp

# scale(x, f): a mode-dispatch chain on the factor f. Once f is bound
# to a constant by the specializer, every mode test folds and a single
# arithmetic arm survives — the paper's code-specialization pattern.
    .proc scale args=2
scale:
    beqz a1, sc_zero          # f == 0: identity
    andi t1, a1, 1
    beqz t1, sc_even
    # odd factor: t0 = x*f + (x >> 4)
    mul  t0, a0, a1
    srai t2, a0, 4
    add  t0, t0, t2
    jmp  sc_mode_done
sc_even:
    # even factor: t0 = x*f - (x >> 2)
    mul  t0, a0, a1
    srai t2, a0, 2
    sub  t0, t0, t2
sc_mode_done:
    li   t3, 8
    blt  a1, t3, sc_small
    srai t0, t0, 2            # large factors get damped
sc_small:
    seqi t4, a1, 7            # the "lucky factor" tweak
    beqz t4, sc_noluck
    addi t0, t0, 1
sc_noluck:
    li   t3, 0x10000000000
    blt  t0, t3, sc_ok
    mov  t0, t3
sc_ok:
    mov  a0, t0
    ret
sc_zero:
    ret
    .endp

# mat_checksum() -> rotating xor over C
    .proc mat_checksum args=0
mat_checksum:
    la   t9, dim
    ld   t9, 0(t9)
    mul  t0, t9, t9
    la   t1, mat_c
    li   t2, 0
    li   t3, 0
mc_loop:
    bge  t3, t0, mc_done
    slli t4, t3, 3
    add  t4, t1, t4
    ld   t5, 0(t4)
    slli t6, t2, 9
    srli t2, t2, 55
    or   t2, t6, t2
    xor  t2, t2, t5
    addi t3, t3, 1
    jmp  mc_loop
mc_done:
    mov  a0, t2
    ret
    .endp
)";

class MatmulWorkload : public Workload
{
  public:
    std::string name() const override { return "matmul"; }

    std::string
    description() const override
    {
        return "integer matrix multiply + scale (numeric kernel "
               "stand-in)";
    }

    std::string source() const override { return matmulAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        vp::Rng rng(datasetSeed(name(), dataset));
        const bool train = dataset == "train";
        const std::uint64_t dim = train ? 20 : 17;
        std::vector<std::uint64_t> a(dim * dim), b(dim * dim);
        for (auto &x : a)
            x = rng.below(256);
        for (auto &x : b)
            x = rng.below(256);
        pokeWords(cpu, "mat_a", a);
        pokeWords(cpu, "mat_b", b);
        pokeWord(cpu, "dim", dim);
        pokeWord(cpu, "repeats", train ? 5 : 4);
        pokeWord(cpu, "scale_rounds", train ? 3 : 2);
        // The factor is fixed per data set — the semi-invariant value
        // the specialization experiment binds.
        pokeWord(cpu, "factor", train ? 3 : 5);
    }
};

} // namespace

const Workload &
matmulWorkload()
{
    static const MatmulWorkload instance;
    return instance;
}

} // namespace workloads
