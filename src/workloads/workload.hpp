/**
 * @file
 * The benchmark-workload suite — this repository's stand-in for the
 * paper's SPEC95 programs (see DESIGN.md, substitution table).
 *
 * A Workload bundles a VPSim assembly program with deterministic input
 * generators for the paper's two data sets ("train" and "test"). Every
 * program reads its input from data-segment symbols the host fills in
 * via inject(), runs, emits a checksum through the puti syscall, and
 * exits with code 0 — so tests can assert correctness and the
 * specializer can prove semantic equivalence.
 */

#ifndef VP_WORKLOADS_WORKLOAD_HPP
#define VP_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "vpsim/cpu.hpp"
#include "vpsim/program.hpp"

namespace workloads
{

/** One benchmark program plus its input-set generators. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, e.g. "compress". */
    virtual std::string name() const = 0;

    /** One-line description for the benchmark table. */
    virtual std::string description() const = 0;

    /** The VPSim assembly source. */
    virtual std::string source() const = 0;

    /**
     * Write the named data set's input into guest memory. Called after
     * Cpu::reset(); uses the program's data symbols.
     */
    virtual void inject(vpsim::Cpu &cpu,
                        const std::string &dataset) const = 0;

    /** Available data sets (the paper uses train and test). */
    virtual std::vector<std::string>
    datasets() const
    {
        return {"train", "test"};
    }

    /**
     * The assembled program (cached; assembled on first use). The
     * reference stays valid for the lifetime of the Workload. Safe to
     * call concurrently — parallel profiling shards share Workload
     * instances, so the lazy assembly is guarded by a once-flag. The
     * returned Program is immutable and may be read from any thread.
     */
    const vpsim::Program &program() const;

  private:
    mutable std::once_flag programOnce;
    mutable std::unique_ptr<vpsim::Program> cachedProgram;
};

/** All registered workloads, in canonical order. */
const std::vector<const Workload *> &allWorkloads();

/** Find a workload by name; fatal() if unknown. */
const Workload &findWorkload(const std::string &name);

/**
 * Convenience: reset the cpu, inject the data set, and run to
 * completion; fatal() if the program does not exit cleanly.
 */
vpsim::RunResult runToCompletion(vpsim::Cpu &cpu,
                                 const Workload &workload,
                                 const std::string &dataset);

} // namespace workloads

#endif // VP_WORKLOADS_WORKLOAD_HPP
