/**
 * @file
 * "nqueens" workload — backtracking N-queens solver, standing in for
 * search-tree integer codes (099.go flavour). Deep recursion with a
 * row argument, conflict-flag loads that are overwhelmingly zero, and
 * a call graph whose parameter profiles are variant — the counterpoint
 * to matmul's invariant factor.
 */

#include "workloads/workload.hpp"

#include "workloads/inject.hpp"

namespace workloads
{

namespace
{

const char *const nqueensAsm = R"(
# nqueens: count all solutions by backtracking
    .data
nsize:       .word 0
solutions:   .word 0
cols:        .space 16             # column-occupied flags
diag1:       .space 32             # (row+col) diagonal flags
diag2:       .space 32             # (row-col+N-1) diagonal flags

    .text
    .proc main args=0
main:
    addi sp, sp, -8
    st   ra, 0(sp)
    li   a0, 0                 # start at row 0
    call place
    la   t0, solutions
    ld   a0, 0(t0)
    syscall puti
    li   a0, 0
    ld   ra, 0(sp)
    addi sp, sp, 8
    syscall exit
    .endp

# place(row): try every column in this row, recurse
    .proc place args=1
place:
    la   t0, nsize
    ld   t0, 0(t0)
    blt  a0, t0, pl_work
    # row == N: found a solution
    la   t1, solutions
    ld   t2, 0(t1)
    addi t2, t2, 1
    st   t2, 0(t1)
    ret
pl_work:
    addi sp, sp, -24
    st   ra, 0(sp)
    st   s1, 8(sp)             # row
    st   s2, 16(sp)            # col
    mov  s1, a0
    li   s2, 0
pl_col:
    la   t0, nsize
    ld   t0, 0(t0)
    bge  s2, t0, pl_done
    mov  a0, s1
    mov  a1, s2
    call safe                  # a0 = 1 if (row,col) is free
    beqz a0, pl_next
    mov  a0, s1
    mov  a1, s2
    li   a2, 1
    call set_flags             # occupy
    addi a0, s1, 1
    call place
    mov  a0, s1
    mov  a1, s2
    li   a2, 0
    call set_flags             # release
pl_next:
    addi s2, s2, 1
    jmp  pl_col
pl_done:
    ld   s2, 16(sp)
    ld   s1, 8(sp)
    ld   ra, 0(sp)
    addi sp, sp, 24
    ret
    .endp

# safe(row, col) -> 1 if no conflicting flag is set
    .proc safe args=2
safe:
    la   t0, cols
    add  t1, t0, a1
    lbu  t1, 0(t1)             # column flag (mostly zero)
    bnez t1, sf_no
    add  t2, a0, a1
    la   t0, diag1
    add  t2, t0, t2
    lbu  t2, 0(t2)
    bnez t2, sf_no
    la   t0, nsize
    ld   t0, 0(t0)
    sub  t3, a0, a1
    add  t3, t3, t0
    addi t3, t3, -1
    la   t0, diag2
    add  t3, t0, t3
    lbu  t3, 0(t3)
    bnez t3, sf_no
    li   a0, 1
    ret
sf_no:
    li   a0, 0
    ret
    .endp

# set_flags(row, col, value): set/clear the three conflict flags
    .proc set_flags args=3
set_flags:
    la   t0, cols
    add  t1, t0, a1
    sb   a2, 0(t1)
    add  t2, a0, a1
    la   t0, diag1
    add  t2, t0, t2
    sb   a2, 0(t2)
    la   t0, nsize
    ld   t0, 0(t0)
    sub  t3, a0, a1
    add  t3, t3, t0
    addi t3, t3, -1
    la   t0, diag2
    add  t3, t0, t3
    sb   a2, 0(t3)
    ret
    .endp
)";

class NqueensWorkload : public Workload
{
  public:
    std::string name() const override { return "nqueens"; }

    std::string
    description() const override
    {
        return "N-queens backtracking search (search-tree stand-in)";
    }

    std::string source() const override { return nqueensAsm; }

    void
    inject(vpsim::Cpu &cpu, const std::string &dataset) const override
    {
        // The board size IS the data set.
        pokeWord(cpu, "nsize", dataset == "train" ? 9 : 8);
    }
};

} // namespace

const Workload &
nqueensWorkload()
{
    static const NqueensWorkload instance;
    return instance;
}

} // namespace workloads
