#include "workloads/inject.hpp"

namespace workloads
{

void
pokeWord(vpsim::Cpu &cpu, const std::string &symbol, std::uint64_t value,
         std::uint64_t index)
{
    const std::uint64_t addr =
        cpu.program().dataAddress(symbol) + index * 8;
    cpu.memory().writeBlock(addr, &value, 8);
}

void
pokeBytes(vpsim::Cpu &cpu, const std::string &symbol,
          const std::vector<std::uint8_t> &bytes)
{
    if (bytes.empty())
        return;
    cpu.memory().writeBlock(cpu.program().dataAddress(symbol),
                            bytes.data(), bytes.size());
}

void
pokeWords(vpsim::Cpu &cpu, const std::string &symbol,
          const std::vector<std::uint64_t> &words)
{
    if (words.empty())
        return;
    cpu.memory().writeBlock(cpu.program().dataAddress(symbol),
                            words.data(), words.size() * 8);
}

std::uint64_t
datasetSeed(const std::string &workload, const std::string &dataset)
{
    // FNV-1a over "workload/dataset" so every pair gets a stable,
    // distinct seed.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](const std::string &s) {
        for (char ch : s) {
            h ^= static_cast<std::uint8_t>(ch);
            h *= 1099511628211ull;
        }
    };
    mix(workload);
    h ^= '/';
    h *= 1099511628211ull;
    mix(dataset);
    return h;
}

} // namespace workloads
