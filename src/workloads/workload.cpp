#include "workloads/workload.hpp"

#include "support/logging.hpp"
#include "vpsim/assembler.hpp"

namespace workloads
{

// Factories defined one per workload translation unit. Explicit
// enumeration (rather than self-registration) keeps the list immune to
// static-library dead-stripping and fixes the canonical order used by
// every experiment table.
const Workload &compressWorkload();
const Workload &crcWorkload();
const Workload &lispWorkload();
const Workload &anagramWorkload();
const Workload &lifeWorkload();
const Workload &dijkstraWorkload();
const Workload &qsortWorkload();
const Workload &matmulWorkload();
const Workload &huffmanWorkload();
const Workload &nqueensWorkload();

const vpsim::Program &
Workload::program() const
{
    std::call_once(programOnce, [this] {
        cachedProgram =
            std::make_unique<vpsim::Program>(vpsim::assemble(source()));
    });
    return *cachedProgram;
}

const std::vector<const Workload *> &
allWorkloads()
{
    static const std::vector<const Workload *> list = {
        &compressWorkload(), &crcWorkload(),      &lispWorkload(),
        &anagramWorkload(),  &lifeWorkload(),     &dijkstraWorkload(),
        &qsortWorkload(),    &matmulWorkload(),   &huffmanWorkload(),
        &nqueensWorkload(),
    };
    return list;
}

const Workload &
findWorkload(const std::string &name)
{
    for (const auto *w : allWorkloads())
        if (w->name() == name)
            return *w;
    vp_fatal("unknown workload '%s'", name.c_str());
}

vpsim::RunResult
runToCompletion(vpsim::Cpu &cpu, const Workload &workload,
                const std::string &dataset)
{
    cpu.reset();
    workload.inject(cpu, dataset);
    const vpsim::RunResult res = cpu.run();
    if (!res.exited())
        vp_fatal("workload '%s' (%s) did not exit cleanly (reason %d, "
                 "pc %u, %llu insts)",
                 workload.name().c_str(), dataset.c_str(),
                 static_cast<int>(res.reason), cpu.pc(),
                 static_cast<unsigned long long>(res.dynamicInsts));
    if (res.exitCode != 0)
        vp_fatal("workload '%s' (%s) exited with code %lld",
                 workload.name().c_str(), dataset.c_str(),
                 static_cast<long long>(res.exitCode));
    return res;
}

} // namespace workloads
